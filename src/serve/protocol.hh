/**
 * @file
 * Wire protocol of the prism_serve evaluation daemon: length-prefixed
 * binary frames over TCP.
 *
 * Framing. Every message — request or reply — is one frame:
 *
 *     u32  payloadLen   (little-endian, <= kMaxFrameBytes)
 *     u8[] payload      (payloadLen bytes)
 *
 * A request payload is `u8 op` followed by the op-specific body; a
 * reply payload is `u8 status` followed by the status/op-specific
 * body (Error replies carry a human-readable message, Busy replies
 * are empty). The length prefix is validated *before* any allocation:
 * a prefix above kMaxFrameBytes is a protocol error, never an
 * allocation attempt, so a hostile client cannot OOM the daemon.
 *
 * Encoding. Fixed-width little-endian integers; f64 as the
 * bit-pattern of the IEEE double (bit-exact round trip, matching the
 * artifact cache's convention); short strings as u16 length + bytes;
 * long strings (rendered tables) as u32 length + bytes. All decoding
 * is bounds-checked: WireReader never reads past the frame, and a
 * malformed body yields a clean Error reply, not a crash.
 *
 * Replies are deterministic: an Eval reply's payload is a pure
 * function of (workload, config, mask, scheduler, budget), so the
 * serve-correctness tests compare reply bytes against a local
 * buildModelCached() evaluation.
 */

#ifndef PRISM_SERVE_PROTOCOL_HH
#define PRISM_SERVE_PROTOCOL_HH

#include <bit>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "tdg/exocore.hh"
#include "uarch/core_config.hh"

namespace prism::serve
{

/** Bumped on any wire-format change; echoed in Ping replies. */
inline constexpr std::uint8_t kProtocolVersion = 1;

/** Hard cap on one frame's payload bytes (requests and replies). */
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

/** Request opcodes. */
enum class Op : std::uint8_t
{
    Ping = 1,  ///< liveness + protocol version
    Eval = 2,  ///< evaluate (workload, config, mask, sched, budget)
    Rank = 3,  ///< order all BSA subsets for (workload, config)
    Sweep = 4, ///< per-budget Pareto frontier over the fixed cores
    Stats = 5, ///< server + RAM-cache counters
    List = 6,  ///< resident workload names
};

/** Reply status byte. */
enum class Status : std::uint8_t
{
    Ok = 0,
    Error = 1, ///< body: u16-string message; connection stays usable
    Busy = 2,  ///< admission control rejected the request; empty body
};

/** Append-only little-endian encoder. */
class WireWriter
{
  public:
    void clear() { buf_.clear(); }

    void u8(std::uint8_t v) { buf_.push_back(v); }

    void
    u16(std::uint16_t v)
    {
        buf_.push_back(static_cast<std::uint8_t>(v));
        buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

    /** Short string: u16 length + bytes (names, error messages). */
    void str(std::string_view s);

    /** Long string: u32 length + bytes (rendered tables). */
    void lstr(std::string_view s);

    std::span<const std::uint8_t>
    bytes() const
    {
        return {buf_.data(), buf_.size()};
    }

    std::size_t size() const { return buf_.size(); }

  private:
    std::vector<std::uint8_t> buf_;
};

/** Bounds-checked cursor over one frame; every read reports
 *  success, and a failed read leaves the reader poisoned. */
class WireReader
{
  public:
    explicit WireReader(std::span<const std::uint8_t> data)
        : data_(data)
    {
    }

    bool u8(std::uint8_t &v);
    bool u16(std::uint16_t &v);
    bool u32(std::uint32_t &v);
    bool u64(std::uint64_t &v);
    bool f64(double &v);
    bool str(std::string &s);  ///< u16 length + bytes
    bool lstr(std::string &s); ///< u32 length + bytes

    /** True when every byte of the frame was consumed cleanly. */
    bool
    done() const
    {
        return ok_ && pos_ == data_.size();
    }

    bool ok() const { return ok_; }

  private:
    bool take(std::size_t n, const std::uint8_t *&p);

    std::span<const std::uint8_t> data_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

/** A machine configuration by fixed kind or explicit parameters. */
struct ConfigRef
{
    bool parametric = false;
    CoreKind kind = CoreKind::OOO2; ///< when !parametric
    CoreParams params;              ///< when parametric
};

/** EVAL: one (workload, config, BSA subset) point. */
struct EvalRequest
{
    std::string workload;
    ConfigRef config;
    unsigned mask = 0; ///< BSA subset, [0, 16)
    SchedulerKind sched = SchedulerKind::Oracle;
    double areaBudget = 0; ///< <= 0: unbounded
};

struct EvalReply
{
    std::uint64_t cycles = 0;
    double energy = 0; ///< pJ
    double area = 0;   ///< mm^2, core + attached BSAs
    bool withinBudget = true;
};

/** RANK: order all 16 BSA subsets for (workload, config). */
struct RankRequest
{
    std::string workload;
    ConfigRef config;
    SchedulerKind sched = SchedulerKind::Oracle;
    double areaBudget = 0;
};

struct RankEntry
{
    unsigned mask = 0;
    double speedup = 1;   ///< vs the same core, no BSAs
    double energyEff = 1; ///< vs the same core, no BSAs
    double area = 0;
    bool withinBudget = true;
};

struct RankReply
{
    std::vector<RankEntry> entries; ///< speedup-descending
};

/** SWEEP: fixed cores x masks x budgets, Pareto frontier per
 *  budget (tdg/search's paretoFrontier over the resident models). */
struct SweepRequest
{
    std::string workload;
    unsigned numMasks = 16; ///< masks [0, numMasks)
    SchedulerKind sched = SchedulerKind::Oracle;
    std::vector<double> budgets; ///< empty = one unbounded budget
};

struct SweepReply
{
    std::uint32_t totalPoints = 0;
    std::uint32_t frontierPoints = 0;
    std::string table; ///< renderSearchTable(paretoFrontier(...))
};

/** STATS: a snapshot of the server's monotone counters. */
struct StatsReply
{
    std::uint64_t uptimeMs = 0;
    std::uint64_t evalQueries = 0;  ///< completed (replied) evals
    std::uint64_t rankQueries = 0;
    std::uint64_t sweepQueries = 0;
    std::uint64_t pingQueries = 0;
    std::uint64_t statsQueries = 0;
    std::uint64_t listQueries = 0;
    std::uint64_t busyRejected = 0;   ///< admission-control rejects
    std::uint64_t protocolErrors = 0; ///< malformed frames/bodies
    std::uint64_t disconnects = 0;    ///< mid-frame or mid-reply drops
    std::uint64_t batches = 0;
    std::uint64_t batchedRequests = 0;
    std::uint64_t maxBatch = 0;
    std::uint64_t queueCapacity = 0;
    std::uint64_t queueHighWater = 0;
    std::uint64_t serviceNsTotal = 0; ///< arrival -> reply written
    std::uint64_t residentWorkloads = 0;
    std::uint64_t residentModels = 0;
    std::uint64_t poolContexts = 0;
    // RAM LRU tier (common/memo_cache.hh), the STATS view of the
    // MemoCache observability counters.
    std::uint64_t ramHits = 0;
    std::uint64_t ramMisses = 0;
    std::uint64_t ramInsertions = 0;
    std::uint64_t ramEvictions = 0;
    std::uint64_t ramBytes = 0;
    std::uint64_t ramMaxBytes = 0;
};

struct ListReply
{
    std::vector<std::string> workloads;
};

// ---- Body encode/decode (the leading op/status byte is part of the
// frame, not of these bodies). Decoders validate ranges (mask < 16,
// known scheduler, known core kind) and full consumption.

void encodeEvalRequest(WireWriter &w, const EvalRequest &r);
bool decodeEvalRequest(WireReader &r, EvalRequest &out);
void encodeEvalReply(WireWriter &w, const EvalReply &r);
bool decodeEvalReply(WireReader &r, EvalReply &out);

void encodeRankRequest(WireWriter &w, const RankRequest &r);
bool decodeRankRequest(WireReader &r, RankRequest &out);
void encodeRankReply(WireWriter &w, const RankReply &r);
bool decodeRankReply(WireReader &r, RankReply &out);

void encodeSweepRequest(WireWriter &w, const SweepRequest &r);
bool decodeSweepRequest(WireReader &r, SweepRequest &out);
void encodeSweepReply(WireWriter &w, const SweepReply &r);
bool decodeSweepReply(WireReader &r, SweepReply &out);

void encodeStatsReply(WireWriter &w, const StatsReply &r);
bool decodeStatsReply(WireReader &r, StatsReply &out);

void encodeListReply(WireWriter &w, const ListReply &r);
bool decodeListReply(WireReader &r, ListReply &out);

// ---- Frame I/O over a connected socket (blocking, EINTR-safe).

enum class FrameResult
{
    Ok,
    Eof,       ///< clean close at a frame boundary
    Truncated, ///< peer closed mid-frame
    TooLarge,  ///< length prefix above kMaxFrameBytes (no alloc)
    IoError,
};

/** Read one frame's payload (allocates only after validating the
 *  length prefix). */
FrameResult readFrame(int fd, std::vector<std::uint8_t> &payload);

/** Write `u32 len` + payload; false on any I/O failure. */
bool writeFrame(int fd, std::span<const std::uint8_t> payload);

/** Write a request frame: op byte + body. */
bool writeRequestFrame(int fd, Op op,
                       std::span<const std::uint8_t> body);

/** Write a reply frame: status byte + body. */
bool writeReplyFrame(int fd, Status status,
                     std::span<const std::uint8_t> body);

/** Write an Error reply carrying `message`. */
bool writeErrorReply(int fd, std::string_view message);

} // namespace prism::serve

#endif // PRISM_SERVE_PROTOCOL_HH
