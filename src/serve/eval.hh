/**
 * @file
 * Query evaluation against a ResidentSuite: the pure, connectionless
 * core of the daemon. The server's batch workers call these; the
 * serve-correctness tests call them directly to produce the expected
 * reply bytes for byte-identity checks against socket replies.
 *
 * All three are read-phase over const resident state (plus the
 * process-wide component caches for parametric configs) and safe to
 * call from any number of threads concurrently. Outcomes are
 * deterministic: the same request against the same suite always
 * yields the same reply, bit for bit.
 */

#ifndef PRISM_SERVE_EVAL_HH
#define PRISM_SERVE_EVAL_HH

#include <string>

#include "serve/protocol.hh"
#include "serve/state.hh"

namespace prism::serve
{

/** Evaluation outcome: Ok, or Error with a client-facing message. */
struct QueryOutcome
{
    Status status = Status::Ok;
    std::string error;

    static QueryOutcome ok() { return {}; }

    static QueryOutcome
    fail(std::string message)
    {
        return {Status::Error, std::move(message)};
    }
};

/** EVAL: one (workload, config, mask) point. */
QueryOutcome runEval(const ResidentSuite &suite,
                     const EvalRequest &req, EvalReply &out);

/** RANK: all 16 BSA subsets for (workload, config), speedup order. */
QueryOutcome runRank(const ResidentSuite &suite,
                     const RankRequest &req, RankReply &out);

/** SWEEP: fixed cores x masks x budgets -> per-budget Pareto
 *  frontier (tdg/search's paretoFrontier/renderSearchTable). */
QueryOutcome runSweep(const ResidentSuite &suite,
                      const SweepRequest &req, SweepReply &out);

} // namespace prism::serve

#endif // PRISM_SERVE_EVAL_HH
