#include "serve/state.hh"

#include "common/artifact_cache.hh"
#include "common/logging.hh"
#include "tdg/artifacts.hh"
#include "uarch/pipeline_model.hh"

namespace prism::serve
{

void
ResidentSuite::loadAndPrepare(const std::vector<std::string> &names,
                              ThreadPool &pool)
{
    prism_assert(items_.empty(), "suite already prepared");
    if (names.empty()) {
        for (const WorkloadSpec &spec : allWorkloads()) {
            items_.push_back({});
            items_.back().spec = &spec;
        }
    } else {
        for (const std::string &name : names) {
            items_.push_back({});
            items_.back().spec = &findWorkload(name); // fatal if bad
        }
    }
    for (std::size_t i = 0; i < items_.size(); ++i)
        index_.emplace(items_[i].spec->name, i);

    // Mutate phase, two waves like the sweep drivers: loads first
    // (each task owns one slot), then one task per (workload, kind)
    // model so a long-pole workload doesn't serialize its six models
    // on one worker.
    pool.parallelFor(items_.size(), [&](std::size_t i) {
        items_[i].lw = LoadedWorkload::load(*items_[i].spec);
    });
    const std::size_t kinds = kAllCoreKinds.size();
    pool.parallelFor(items_.size() * kinds, [&](std::size_t t) {
        ResidentWorkload &w = items_[t / kinds];
        const CoreKind kind = kAllCoreKinds[t % kinds];
        w.fixed[t % kinds] = buildModelCached(
            ArtifactCache::global(), w.lw->name(), w.lw->tdg(),
            w.lw->maxInsts(),
            PipelineConfig{.core = coreConfig(kind)});
    });
}

const ResidentWorkload *
ResidentSuite::find(std::string_view name) const
{
    const auto it = index_.find(std::string(name));
    return it == index_.end() ? nullptr : &items_[it->second];
}

std::size_t
ResidentSuite::loadedInsts() const
{
    std::size_t total = 0;
    for (const ResidentWorkload &w : items_) {
        if (w.lw)
            total += w.lw->tdg().trace().size();
    }
    return total;
}

} // namespace prism::serve
