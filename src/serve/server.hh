/**
 * @file
 * prism_serve's network front end: a resident evaluation daemon over
 * the length-prefixed TCP protocol (serve/protocol.hh).
 *
 * Architecture (DESIGN.md §11):
 *
 *   acceptor ──> one reader thread per connection
 *                   │  PING/STATS/LIST answered inline (cheap, never
 *                   │  queued — liveness survives overload)
 *                   ▼
 *             BoundedQueue (admission control: tryPush fails when
 *                   │  full -> immediate BUSY reply, bounded latency)
 *                   ▼
 *             batch dispatcher: drains up to batchMax requests per
 *             wakeup and fans the batch out on the ThreadPool —
 *             per-task ArtifactCacheHandle stat batching, per-thread
 *             ModelScratch inside any cold component build, replies
 *             written under each connection's write lock.
 *
 * Shutdown protocol: requestStop() is async-signal-safe (one atomic
 * store — the SIGINT/SIGTERM handlers call it). Worker loops poll
 * the flag (<= 100 ms ticks): the acceptor closes the listen socket,
 * readers stop consuming frames, the dispatcher drains every
 * admitted request and writes its reply, and only then are
 * connections closed. drainAndJoin() blocks until that sequence
 * completes, so an admitted query is never dropped by shutdown.
 */

#ifndef PRISM_SERVE_SERVER_HH
#define PRISM_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hh"
#include "serve/eval.hh"
#include "serve/protocol.hh"
#include "serve/state.hh"

namespace prism::serve
{

/** Daemon configuration (flag defaults in prism_serve.cc). */
struct ServeOptions
{
    /** Workload names to hold resident; empty = the full suite. */
    std::vector<std::string> workloads;
    /** Evaluation pool contexts; 0 = defaultThreadCount(). */
    unsigned threads = 0;
    /** TCP port on 127.0.0.1; 0 = ephemeral (start() returns it). */
    std::uint16_t port = 0;
    /** Admission-control bound on queued (not yet replied) work. */
    std::size_t queueDepth = 1024;
    /** Most requests coalesced into one pool fan-out. */
    std::size_t batchMax = 64;
    /** Connections beyond this are refused with a BUSY reply. */
    std::size_t maxConns = 64;
};

/** One client connection. Replies may be written concurrently by
 *  the reader (inline ops, BUSY) and by batch workers, so every
 *  frame write holds writeMu. */
struct Connection
{
    explicit Connection(int fd) : fd(fd) {}
    ~Connection();

    Connection(const Connection &) = delete;
    Connection &operator=(const Connection &) = delete;

    int fd = -1;
    std::mutex writeMu;
    std::atomic<bool> open{true};
};

/** One admitted request, owned by the queue then a batch worker. */
struct Request
{
    std::shared_ptr<Connection> conn;
    Op op = Op::Ping;
    std::vector<std::uint8_t> body;
    std::chrono::steady_clock::time_point arrival;
};

/**
 * Bounded MPMC request queue: producers (connection readers) never
 * block — tryPush() fails when the queue is at capacity and the
 * caller replies BUSY instead, which is what keeps worst-case queue
 * wait (and thus tail latency) bounded under overload.
 */
class BoundedQueue
{
  public:
    explicit BoundedQueue(std::size_t capacity)
        : capacity_(capacity)
    {
    }

    /** False when full (the request is left untouched). */
    bool tryPush(Request &&r);

    /**
     * Block until at least one request is queued or `stop` becomes
     * true, then move up to `max` requests into `out` (cleared
     * first) in arrival order. Returns the batch size; 0 only when
     * stopping and empty.
     */
    std::size_t popBatch(std::vector<Request> &out, std::size_t max,
                         const std::atomic<bool> &stop);

    std::size_t depth() const;
    std::size_t capacity() const { return capacity_; }
    std::uint64_t highWater() const;

  private:
    const std::size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<Request> q_;
    std::uint64_t highWater_ = 0;
};

/**
 * The daemon. Lifecycle:
 *
 *     Server s(opts);
 *     s.loadAndPrepare();        // blocking: suite + models resident
 *     std::uint16_t port = s.start();
 *     ... (requestStop() from a signal handler or another thread)
 *     s.drainAndJoin();          // drain admitted work, flush, join
 */
class Server
{
  public:
    explicit Server(ServeOptions opts);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Load every workload and build all fixed-kind models. */
    void loadAndPrepare();

    /** Bind 127.0.0.1:<port>, listen, spawn the acceptor and batch
     *  dispatcher. Returns the bound port (the ephemeral one when
     *  opts.port == 0). */
    std::uint16_t start();

    /** Async-signal-safe stop request (atomic store only). */
    void
    requestStop()
    {
        stop_.store(true, std::memory_order_release);
    }

    bool
    stopRequested() const
    {
        return stop_.load(std::memory_order_acquire);
    }

    /** Stop accepting, drain every admitted request, flush replies,
     *  close connections, join every thread. Idempotent. */
    void drainAndJoin();

    /** Monotone counters + RAM-tier stats (also the STATS reply). */
    StatsReply statsSnapshot() const;

    const ResidentSuite &suite() const { return suite_; }

    /**
     * Test hook: while held, the batch dispatcher parks without
     * draining, so admission control (queue-full -> BUSY) can be
     * exercised deterministically. Never set in production.
     */
    void
    debugHoldBatches(bool hold)
    {
        holdBatches_.store(hold, std::memory_order_release);
    }

  private:
    struct Stats; // padded atomics, defined in server.cc

    void acceptorMain();
    void readerMain(std::shared_ptr<Connection> conn);
    void dispatcherMain();
    void processRequest(Request &req);
    void handleInline(const std::shared_ptr<Connection> &conn,
                      Op op, std::span<const std::uint8_t> body);

    ServeOptions opts_;
    ResidentSuite suite_;
    ThreadPool pool_;
    BoundedQueue queue_;

    int listenFd_ = -1;
    std::atomic<bool> stop_{false};
    std::atomic<bool> holdBatches_{false};
    bool started_ = false;
    bool joined_ = false;

    std::thread acceptor_;
    std::thread dispatcher_;
    std::mutex connsMu_;
    std::vector<std::shared_ptr<Connection>> conns_;
    std::vector<std::thread> readers_;

    std::chrono::steady_clock::time_point startTime_;
    std::unique_ptr<Stats> stats_;
};

} // namespace prism::serve

#endif // PRISM_SERVE_SERVER_HH
