#include "serve/client.hh"

#include <cerrno>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace prism::serve
{

Client::~Client()
{
    close();
}

Client::Client(Client &&other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      lastError_(std::move(other.lastError_))
{
}

Client &
Client::operator=(Client &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
        lastError_ = std::move(other.lastError_);
    }
    return *this;
}

bool
Client::connect(const std::string &host, std::uint16_t port)
{
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
        lastError_ = std::strerror(errno);
        return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        lastError_ = "bad address: " + host;
        close();
        return false;
    }
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        lastError_ = std::strerror(errno);
        close();
        return false;
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return true;
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
Client::sendRaw(std::span<const std::uint8_t> bytes)
{
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t r = ::send(fd_, bytes.data() + sent,
                                 bytes.size() - sent, MSG_NOSIGNAL);
        if (r >= 0) {
            sent += static_cast<std::size_t>(r);
            continue;
        }
        if (errno == EINTR)
            continue;
        lastError_ = std::strerror(errno);
        return false;
    }
    return true;
}

std::optional<RawReply>
Client::readReply()
{
    std::vector<std::uint8_t> payload;
    const FrameResult res = readFrame(fd_, payload);
    if (res != FrameResult::Ok) {
        lastError_ = res == FrameResult::Eof ? "connection closed"
                                             : "frame read failed";
        return std::nullopt;
    }
    if (payload.empty()) {
        lastError_ = "empty reply frame";
        return std::nullopt;
    }
    RawReply reply;
    const std::uint8_t status = payload[0];
    if (status > static_cast<std::uint8_t>(Status::Busy)) {
        lastError_ = "unknown reply status";
        return std::nullopt;
    }
    reply.status = static_cast<Status>(status);
    reply.body.assign(payload.begin() + 1, payload.end());
    if (reply.status == Status::Error) {
        WireReader r({reply.body.data(), reply.body.size()});
        if (!r.str(reply.error) || !r.done())
            reply.error = "(malformed error reply)";
    }
    return reply;
}

std::optional<RawReply>
Client::roundTrip(Op op, std::span<const std::uint8_t> body)
{
    if (!writeRequestFrame(fd_, op, body)) {
        lastError_ = "frame write failed";
        return std::nullopt;
    }
    return readReply();
}

namespace
{

/** Shared Ok-reply plumbing: round trip, surface Busy/Error as a
 *  false return with a message, hand an Ok body to `decode`. */
template <typename DecodeFn>
bool
okRoundTrip(Client &c, Op op, std::span<const std::uint8_t> body,
            std::string &lastError, DecodeFn &&decode)
{
    std::optional<RawReply> reply = c.roundTrip(op, body);
    if (!reply)
        return false;
    if (reply->status == Status::Busy) {
        lastError = "server busy";
        return false;
    }
    if (reply->status == Status::Error) {
        lastError = reply->error;
        return false;
    }
    WireReader r({reply->body.data(), reply->body.size()});
    if (!decode(r)) {
        lastError = "malformed reply body";
        return false;
    }
    return true;
}

} // namespace

bool
Client::ping(std::uint8_t &version)
{
    return okRoundTrip(*this, Op::Ping, {}, lastError_,
                       [&](WireReader &r) {
                           return r.u8(version) && r.done();
                       });
}

bool
Client::eval(const EvalRequest &req, EvalReply &out)
{
    WireWriter w;
    encodeEvalRequest(w, req);
    return okRoundTrip(*this, Op::Eval, w.bytes(), lastError_,
                       [&](WireReader &r) {
                           return decodeEvalReply(r, out);
                       });
}

bool
Client::rank(const RankRequest &req, RankReply &out)
{
    WireWriter w;
    encodeRankRequest(w, req);
    return okRoundTrip(*this, Op::Rank, w.bytes(), lastError_,
                       [&](WireReader &r) {
                           return decodeRankReply(r, out);
                       });
}

bool
Client::sweep(const SweepRequest &req, SweepReply &out)
{
    WireWriter w;
    encodeSweepRequest(w, req);
    return okRoundTrip(*this, Op::Sweep, w.bytes(), lastError_,
                       [&](WireReader &r) {
                           return decodeSweepReply(r, out);
                       });
}

bool
Client::stats(StatsReply &out)
{
    return okRoundTrip(*this, Op::Stats, {}, lastError_,
                       [&](WireReader &r) {
                           return decodeStatsReply(r, out);
                       });
}

bool
Client::list(ListReply &out)
{
    return okRoundTrip(*this, Op::List, {}, lastError_,
                       [&](WireReader &r) {
                           return decodeListReply(r, out);
                       });
}

} // namespace prism::serve
