/**
 * @file
 * Blocking client for the prism_serve protocol: one TCP connection,
 * synchronous request/reply. Used by prism_loadgen (one Client per
 * closed-loop connection thread) and by the serve tests (which also
 * poke the socket directly via sendRaw() to exercise malformed
 * frames).
 *
 * Not thread-safe: a Client wraps one socket with an in-order
 * request/reply discipline; give each thread its own.
 */

#ifndef PRISM_SERVE_CLIENT_HH
#define PRISM_SERVE_CLIENT_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "serve/protocol.hh"

namespace prism::serve
{

/** One reply frame, decoded to status + raw body bytes. */
struct RawReply
{
    Status status = Status::Ok;
    std::vector<std::uint8_t> body;
    std::string error; ///< decoded message when status == Error
};

class Client
{
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;
    Client(Client &&other) noexcept;
    Client &operator=(Client &&other) noexcept;

    /** Connect to host:port; false (with lastError()) on failure. */
    bool connect(const std::string &host, std::uint16_t port);

    bool connected() const { return fd_ >= 0; }

    void close();

    /** Liveness probe; fills the server's protocol version. */
    bool ping(std::uint8_t &version);

    /** EVAL round trip. On an Error reply, returns false and stores
     *  the server's message in lastError(). */
    bool eval(const EvalRequest &req, EvalReply &out);

    bool rank(const RankRequest &req, RankReply &out);

    bool sweep(const SweepRequest &req, SweepReply &out);

    bool stats(StatsReply &out);

    bool list(ListReply &out);

    /**
     * Send one request frame and read back the raw reply —
     * status byte + undecoded body. Exposes BUSY and Error replies
     * to callers that care (the load generator counts them; the
     * admission-control test asserts them).
     */
    std::optional<RawReply> roundTrip(Op op,
                                      std::span<const std::uint8_t>
                                          body);

    /** Write arbitrary bytes to the socket (malformed-frame tests). */
    bool sendRaw(std::span<const std::uint8_t> bytes);

    /** Read one reply frame without sending anything first. */
    std::optional<RawReply> readReply();

    const std::string &lastError() const { return lastError_; }

    int fd() const { return fd_; }

  private:
    int fd_ = -1;
    std::string lastError_;
};

} // namespace prism::serve

#endif // PRISM_SERVE_CLIENT_HH
