#include "serve/eval.hh"

#include <algorithm>

#include "common/artifact_cache.hh"
#include "common/table.hh"
#include "energy/area_model.hh"
#include "tdg/artifacts.hh"
#include "tdg/search.hh"
#include "tdg/transform.hh"
#include "uarch/pipeline_model.hh"

namespace prism::serve
{

namespace
{

/** Resolve a request's model: resident for fixed kinds, assembled
 *  from the tiered component caches for parametric points (warm in
 *  RAM this is ~10 µs / 1 allocation). Exactly one of the two
 *  returns is non-null. */
const BenchmarkModel *
resolveModel(const ResidentWorkload &w, const ConfigRef &config,
             std::unique_ptr<BenchmarkModel> &owned)
{
    if (!config.parametric)
        return &w.model(config.kind);
    owned = buildModelCached(ArtifactCache::global(), w.lw->name(),
                             w.lw->tdg(), w.lw->maxInsts(),
                             pipelineConfigFrom(config.params));
    return owned.get();
}

double
configArea(const ConfigRef &config, unsigned mask)
{
    return config.parametric ? exoCoreArea(config.params, mask)
                             : exoCoreArea(config.kind, mask);
}

/** Figure 12 style display name for a sweep point. */
std::string
sweepPointName(CoreKind core, unsigned mask, double budget)
{
    std::string name = coreConfig(core).name;
    if (mask != 0) {
        name += "-";
        for (std::size_t i = 0; i < kAllBsas.size(); ++i) {
            if (mask & (1u << i))
                name += bsaLetter(kAllBsas[i]);
        }
    }
    if (budget > 0) {
        name += '@';
        name += fmt(budget, 1);
    }
    return name;
}

} // namespace

QueryOutcome
runEval(const ResidentSuite &suite, const EvalRequest &req,
        EvalReply &out)
{
    const ResidentWorkload *w = suite.find(req.workload);
    if (!w)
        return QueryOutcome::fail("unknown workload '" +
                                  req.workload + "'");
    std::unique_ptr<BenchmarkModel> owned;
    const BenchmarkModel *model =
        resolveModel(*w, req.config, owned);
    const ExoResult res = model->evaluate(req.mask, req.sched);
    out.cycles = res.cycles;
    out.energy = res.energy;
    out.area = configArea(req.config, req.mask);
    out.withinBudget =
        req.areaBudget <= 0 || out.area <= req.areaBudget;
    return QueryOutcome::ok();
}

QueryOutcome
runRank(const ResidentSuite &suite, const RankRequest &req,
        RankReply &out)
{
    const ResidentWorkload *w = suite.find(req.workload);
    if (!w)
        return QueryOutcome::fail("unknown workload '" +
                                  req.workload + "'");
    std::unique_ptr<BenchmarkModel> owned;
    const BenchmarkModel *model =
        resolveModel(*w, req.config, owned);
    const ExoResult &base = model->baseline();
    out.entries.clear();
    out.entries.reserve(16);
    for (unsigned mask = 0; mask < 16; ++mask) {
        const ExoResult res = model->evaluate(mask, req.sched);
        RankEntry e;
        e.mask = mask;
        e.speedup = static_cast<double>(base.cycles) /
                    static_cast<double>(res.cycles);
        e.energyEff = base.energy / res.energy;
        e.area = configArea(req.config, mask);
        e.withinBudget =
            req.areaBudget <= 0 || e.area <= req.areaBudget;
        out.entries.push_back(e);
    }
    std::sort(out.entries.begin(), out.entries.end(),
              [](const RankEntry &a, const RankEntry &b) {
                  if (a.speedup != b.speedup)
                      return a.speedup > b.speedup;
                  return a.mask < b.mask;
              });
    return QueryOutcome::ok();
}

QueryOutcome
runSweep(const ResidentSuite &suite, const SweepRequest &req,
         SweepReply &out)
{
    const ResidentWorkload *w = suite.find(req.workload);
    if (!w)
        return QueryOutcome::fail("unknown workload '" +
                                  req.workload + "'");
    const std::vector<double> budgets =
        req.budgets.empty() ? std::vector<double>{0.0}
                            : req.budgets;
    // The search engine's grid order (core-major, budget-mid,
    // mask-minor) over the six resident fixed cores, normalized to
    // the IO2 baseline like SearchSpace's default reference core.
    const ExoResult &ref = w->model(CoreKind::IO2).baseline();
    std::vector<SearchPoint> points;
    points.reserve(kAllCoreKinds.size() * budgets.size() *
                   req.numMasks);
    std::size_t gi = 0;
    for (std::size_t ci = 0; ci < kAllCoreKinds.size(); ++ci) {
        const CoreKind core = kAllCoreKinds[ci];
        const BenchmarkModel &model = w->model(core);
        for (double budget : budgets) {
            for (unsigned mask = 0; mask < req.numMasks;
                 ++mask, ++gi) {
                const ExoResult res =
                    model.evaluate(mask, req.sched);
                SearchPoint p;
                p.gridIndex = gi;
                p.coreIdx = ci;
                p.mask = mask;
                p.areaBudget = budget;
                p.name = sweepPointName(core, mask, budget);
                p.speedup = static_cast<double>(ref.cycles) /
                            static_cast<double>(res.cycles);
                p.energyEff = ref.energy / res.energy;
                p.area = exoCoreArea(core, mask);
                p.withinBudget =
                    budget <= 0 || p.area <= budget;
                points.push_back(std::move(p));
            }
        }
    }
    const std::vector<SearchPoint> frontier =
        paretoFrontier(points);
    out.totalPoints = static_cast<std::uint32_t>(points.size());
    out.frontierPoints =
        static_cast<std::uint32_t>(frontier.size());
    out.table = renderSearchTable(frontier);
    return QueryOutcome::ok();
}

} // namespace prism::serve
