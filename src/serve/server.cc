#include "serve/server.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "common/artifact_cache.hh"
#include "common/logging.hh"
#include "common/memo_cache.hh"

namespace prism::serve
{

// ---- Connection ---------------------------------------------------

Connection::~Connection()
{
    if (fd >= 0)
        ::close(fd);
}

// ---- BoundedQueue -------------------------------------------------

bool
BoundedQueue::tryPush(Request &&r)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (q_.size() >= capacity_)
            return false;
        q_.push_back(std::move(r));
        highWater_ = std::max<std::uint64_t>(highWater_, q_.size());
    }
    cv_.notify_one();
    return true;
}

std::size_t
BoundedQueue::popBatch(std::vector<Request> &out, std::size_t max,
                       const std::atomic<bool> &stop)
{
    out.clear();
    std::unique_lock<std::mutex> lock(mu_);
    // Timed wait: `stop` is flipped from a signal handler, which
    // cannot notify a condition variable, so the consumer must tick.
    cv_.wait_for(lock, std::chrono::milliseconds(100), [&] {
        return !q_.empty() ||
               stop.load(std::memory_order_acquire);
    });
    const std::size_t n = std::min(max, q_.size());
    for (std::size_t i = 0; i < n; ++i) {
        out.push_back(std::move(q_.front()));
        q_.pop_front();
    }
    return n;
}

std::size_t
BoundedQueue::depth() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return q_.size();
}

std::uint64_t
BoundedQueue::highWater() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return highWater_;
}

// ---- Server stats -------------------------------------------------

struct Server::Stats
{
    std::atomic<std::uint64_t> evalQueries{0};
    std::atomic<std::uint64_t> rankQueries{0};
    std::atomic<std::uint64_t> sweepQueries{0};
    std::atomic<std::uint64_t> pingQueries{0};
    std::atomic<std::uint64_t> statsQueries{0};
    std::atomic<std::uint64_t> listQueries{0};
    std::atomic<std::uint64_t> busyRejected{0};
    std::atomic<std::uint64_t> protocolErrors{0};
    std::atomic<std::uint64_t> disconnects{0};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> batchedRequests{0};
    std::atomic<std::uint64_t> maxBatch{0};
    std::atomic<std::uint64_t> serviceNsTotal{0};
};

namespace
{

void
bump(std::atomic<std::uint64_t> &c, std::uint64_t by = 1)
{
    c.fetch_add(by, std::memory_order_relaxed);
}

/** recv() variant of protocol.cc's readExact for server-side reader
 *  threads: connection sockets carry a 100 ms SO_RCVTIMEO, so a
 *  blocked recv wakes periodically and the loop can notice a stop
 *  request even when a client parked mid-frame. */
enum class RecvStatus
{
    Ok,
    Eof,
    Truncated,
    IoError,
    Stopped,
};

RecvStatus
recvExactTick(int fd, std::uint8_t *buf, std::size_t n,
              const std::atomic<bool> &stop)
{
    std::size_t got = 0;
    while (got < n) {
        const ssize_t r = ::recv(fd, buf + got, n - got, 0);
        if (r > 0) {
            got += static_cast<std::size_t>(r);
            continue;
        }
        if (r == 0)
            return got == 0 ? RecvStatus::Eof
                            : RecvStatus::Truncated;
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            if (stop.load(std::memory_order_acquire))
                return RecvStatus::Stopped;
            continue;
        }
        return RecvStatus::IoError;
    }
    return RecvStatus::Ok;
}

/** readFrame with the same validation order as protocol.cc (length
 *  prefix checked before any allocation), but stop-aware. */
RecvStatus
readFrameTick(int fd, std::vector<std::uint8_t> &payload,
              const std::atomic<bool> &stop)
{
    std::uint8_t hdr[4];
    RecvStatus res = recvExactTick(fd, hdr, sizeof hdr, stop);
    if (res != RecvStatus::Ok)
        return res;
    const std::uint32_t len = static_cast<std::uint32_t>(
        hdr[0] | (hdr[1] << 8) | (hdr[2] << 16) |
        (static_cast<std::uint32_t>(hdr[3]) << 24));
    if (len > kMaxFrameBytes)
        return RecvStatus::IoError; // caller reports "frame too large"
    payload.resize(len);
    if (len == 0)
        return RecvStatus::Ok;
    res = recvExactTick(fd, payload.data(), len, stop);
    return res == RecvStatus::Eof ? RecvStatus::Truncated : res;
}

bool
replyLocked(const std::shared_ptr<Connection> &conn, Status status,
            std::span<const std::uint8_t> body)
{
    std::lock_guard<std::mutex> lock(conn->writeMu);
    if (!conn->open.load(std::memory_order_acquire))
        return false;
    if (writeReplyFrame(conn->fd, status, body))
        return true;
    conn->open.store(false, std::memory_order_release);
    return false;
}

bool
errorReplyLocked(const std::shared_ptr<Connection> &conn,
                 std::string_view message)
{
    WireWriter w;
    w.str(message);
    return replyLocked(conn, Status::Error, w.bytes());
}

} // namespace

// ---- Server -------------------------------------------------------

Server::Server(ServeOptions opts)
    : opts_(std::move(opts)),
      pool_(opts_.threads),
      queue_(std::max<std::size_t>(1, opts_.queueDepth)),
      startTime_(std::chrono::steady_clock::now()),
      stats_(std::make_unique<Stats>())
{
    opts_.batchMax = std::max<std::size_t>(1, opts_.batchMax);
    opts_.maxConns = std::max<std::size_t>(1, opts_.maxConns);
}

Server::~Server()
{
    drainAndJoin();
}

void
Server::loadAndPrepare()
{
    suite_.loadAndPrepare(opts_.workloads, pool_);
}

std::uint16_t
Server::start()
{
    prism_assert(!started_, "server already started");
    started_ = true;

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        fatal("socket(): %s", std::strerror(errno));
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(opts_.port);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0)
        fatal("bind(127.0.0.1:%u): %s", unsigned(opts_.port),
              std::strerror(errno));
    if (::listen(listenFd_, 128) != 0)
        fatal("listen(): %s", std::strerror(errno));

    socklen_t len = sizeof addr;
    ::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                  &len);
    const std::uint16_t port = ntohs(addr.sin_port);

    acceptor_ = std::thread([this] { acceptorMain(); });
    dispatcher_ = std::thread([this] { dispatcherMain(); });
    return port;
}

void
Server::acceptorMain()
{
    while (!stopRequested()) {
        pollfd pfd{listenFd_, POLLIN, 0};
        const int pr = ::poll(&pfd, 1, 100);
        if (pr <= 0)
            continue;
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;

        // Tiny request/reply frames must not sit in Nagle buffers;
        // the receive timeout is what makes reader threads stoppable.
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        timeval tv{0, 100 * 1000};
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);

        auto conn = std::make_shared<Connection>(fd);
        {
            std::lock_guard<std::mutex> lock(connsMu_);
            if (conns_.size() >= opts_.maxConns) {
                // Over the connection cap: admission control at the
                // accept layer. One BUSY frame, then close.
                bump(stats_->busyRejected);
                writeReplyFrame(fd, Status::Busy, {});
                continue; // conn destructor closes fd
            }
            conns_.push_back(conn);
            readers_.emplace_back(
                [this, conn] { readerMain(conn); });
        }
    }
    ::close(listenFd_);
    listenFd_ = -1;
}

void
Server::readerMain(std::shared_ptr<Connection> conn)
{
    std::vector<std::uint8_t> payload;
    while (!stopRequested() &&
           conn->open.load(std::memory_order_acquire)) {
        const RecvStatus res =
            readFrameTick(conn->fd, payload, stop_);
        if (res == RecvStatus::Stopped || res == RecvStatus::Eof)
            break;
        if (res == RecvStatus::Truncated) {
            bump(stats_->disconnects);
            break;
        }
        if (res == RecvStatus::IoError) {
            // Either a socket error or an oversized length prefix;
            // both leave the byte stream unsynchronized, so reply
            // (best effort) and drop the connection.
            bump(stats_->protocolErrors);
            errorReplyLocked(conn, "malformed or oversized frame");
            break;
        }
        if (payload.empty()) {
            bump(stats_->protocolErrors);
            if (!errorReplyLocked(conn, "empty frame"))
                break;
            continue;
        }

        const std::uint8_t opByte = payload[0];
        if (opByte < static_cast<std::uint8_t>(Op::Ping) ||
            opByte > static_cast<std::uint8_t>(Op::List)) {
            bump(stats_->protocolErrors);
            if (!errorReplyLocked(conn, "unknown opcode"))
                break;
            continue;
        }
        const Op op = static_cast<Op>(opByte);
        const std::span<const std::uint8_t> body{
            payload.data() + 1, payload.size() - 1};

        if (op == Op::Ping || op == Op::Stats || op == Op::List) {
            // Inline: cheap, never queued, so liveness probes and
            // stats stay responsive even when the queue is full.
            handleInline(conn, op, body);
            continue;
        }

        Request req;
        req.conn = conn;
        req.op = op;
        req.body.assign(body.begin(), body.end());
        req.arrival = std::chrono::steady_clock::now();
        if (!queue_.tryPush(std::move(req))) {
            bump(stats_->busyRejected);
            if (!replyLocked(conn, Status::Busy, {}))
                break;
        }
    }

    // Unregister; the fd itself closes when the last shared_ptr
    // (possibly held by a still-queued request) goes away.
    std::lock_guard<std::mutex> lock(connsMu_);
    std::erase(conns_, conn);
}

void
Server::handleInline(const std::shared_ptr<Connection> &conn, Op op,
                     std::span<const std::uint8_t> body)
{
    if (!body.empty()) {
        bump(stats_->protocolErrors);
        errorReplyLocked(conn, "unexpected request body");
        return;
    }
    WireWriter w;
    switch (op) {
    case Op::Ping:
        bump(stats_->pingQueries);
        w.u8(kProtocolVersion);
        break;
    case Op::Stats: {
        bump(stats_->statsQueries);
        encodeStatsReply(w, statsSnapshot());
        break;
    }
    case Op::List: {
        bump(stats_->listQueries);
        ListReply reply;
        for (const ResidentWorkload &rw : suite_.workloads())
            reply.workloads.push_back(rw.spec->name);
        encodeListReply(w, reply);
        break;
    }
    default:
        return;
    }
    replyLocked(conn, Status::Ok, w.bytes());
}

void
Server::dispatcherMain()
{
    std::vector<Request> batch;
    batch.reserve(opts_.batchMax);
    while (true) {
        if (holdBatches_.load(std::memory_order_acquire) &&
            !stopRequested()) {
            // Test hook: park without draining (ignored once a stop
            // is requested so drain can never deadlock on it).
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
            continue;
        }
        const std::size_t n =
            queue_.popBatch(batch, opts_.batchMax, stop_);
        if (n == 0) {
            if (stopRequested() && queue_.depth() == 0)
                break;
            continue;
        }
        bump(stats_->batches);
        bump(stats_->batchedRequests, n);
        if (n > stats_->maxBatch.load(std::memory_order_relaxed))
            stats_->maxBatch.store(n, std::memory_order_relaxed);
        // Grain 1: each request is one stealable unit — requests are
        // heavyweight relative to claim overhead, and a coarse grain
        // would serialize a batch behind one worker.
        pool_.parallelFor(
            n, [&](std::size_t i) { processRequest(batch[i]); }, 1);
        batch.clear();
    }
}

void
Server::processRequest(Request &req)
{
    // One stat-batching handle per request: disk-tier counters are
    // flushed once on destruction instead of per lookup.
    ArtifactCacheHandle cacheHandle(ArtifactCache::global());

    thread_local WireWriter w;
    w.clear();
    WireReader r({req.body.data(), req.body.size()});
    QueryOutcome outcome;

    switch (req.op) {
    case Op::Eval: {
        EvalRequest er;
        if (!decodeEvalRequest(r, er)) {
            outcome = QueryOutcome::fail("malformed EVAL body");
            break;
        }
        EvalReply reply;
        outcome = runEval(suite_, er, reply);
        if (outcome.status == Status::Ok) {
            encodeEvalReply(w, reply);
            bump(stats_->evalQueries);
        }
        break;
    }
    case Op::Rank: {
        RankRequest rr;
        if (!decodeRankRequest(r, rr)) {
            outcome = QueryOutcome::fail("malformed RANK body");
            break;
        }
        RankReply reply;
        outcome = runRank(suite_, rr, reply);
        if (outcome.status == Status::Ok) {
            encodeRankReply(w, reply);
            bump(stats_->rankQueries);
        }
        break;
    }
    case Op::Sweep: {
        SweepRequest sr;
        if (!decodeSweepRequest(r, sr)) {
            outcome = QueryOutcome::fail("malformed SWEEP body");
            break;
        }
        SweepReply reply;
        outcome = runSweep(suite_, sr, reply);
        if (outcome.status == Status::Ok) {
            encodeSweepReply(w, reply);
            bump(stats_->sweepQueries);
        }
        break;
    }
    default:
        outcome = QueryOutcome::fail("unknown opcode");
        break;
    }

    bool wrote;
    if (outcome.status == Status::Ok) {
        wrote = replyLocked(req.conn, Status::Ok, w.bytes());
    } else {
        bump(stats_->protocolErrors);
        wrote = errorReplyLocked(req.conn, outcome.error);
    }
    if (!wrote)
        bump(stats_->disconnects);

    const auto now = std::chrono::steady_clock::now();
    bump(stats_->serviceNsTotal,
         static_cast<std::uint64_t>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(
                 now - req.arrival)
                 .count()));
}

void
Server::drainAndJoin()
{
    if (!started_ || joined_)
        return;
    joined_ = true;
    requestStop();

    // Order matters: acceptor first (no new connections), readers
    // next (no new requests), dispatcher last — it drains every
    // admitted request and writes its reply before exiting. Only
    // then do connection fds close.
    if (acceptor_.joinable())
        acceptor_.join();
    for (;;) {
        std::thread reader;
        {
            std::lock_guard<std::mutex> lock(connsMu_);
            if (readers_.empty())
                break;
            reader = std::move(readers_.back());
            readers_.pop_back();
        }
        if (reader.joinable())
            reader.join();
    }
    if (dispatcher_.joinable())
        dispatcher_.join();
    std::lock_guard<std::mutex> lock(connsMu_);
    conns_.clear();
}

StatsReply
Server::statsSnapshot() const
{
    StatsReply s;
    s.uptimeMs = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - startTime_)
            .count());
    const Stats &st = *stats_;
    s.evalQueries = st.evalQueries.load(std::memory_order_relaxed);
    s.rankQueries = st.rankQueries.load(std::memory_order_relaxed);
    s.sweepQueries = st.sweepQueries.load(std::memory_order_relaxed);
    s.pingQueries = st.pingQueries.load(std::memory_order_relaxed);
    s.statsQueries = st.statsQueries.load(std::memory_order_relaxed);
    s.listQueries = st.listQueries.load(std::memory_order_relaxed);
    s.busyRejected = st.busyRejected.load(std::memory_order_relaxed);
    s.protocolErrors =
        st.protocolErrors.load(std::memory_order_relaxed);
    s.disconnects = st.disconnects.load(std::memory_order_relaxed);
    s.batches = st.batches.load(std::memory_order_relaxed);
    s.batchedRequests =
        st.batchedRequests.load(std::memory_order_relaxed);
    s.maxBatch = st.maxBatch.load(std::memory_order_relaxed);
    s.queueCapacity = queue_.capacity();
    s.queueHighWater = queue_.highWater();
    s.serviceNsTotal =
        st.serviceNsTotal.load(std::memory_order_relaxed);
    s.residentWorkloads = suite_.workloads().size();
    s.residentModels = suite_.residentModels();
    s.poolContexts = pool_.effectiveContexts();
    const MemoCache::Stats ram = MemoCache::global().stats();
    s.ramHits = ram.hits;
    s.ramMisses = ram.misses;
    s.ramInsertions = ram.insertions;
    s.ramEvictions = ram.evictions;
    s.ramBytes = ram.bytes;
    s.ramMaxBytes = MemoCache::global().maxBytes();
    return s;
}

} // namespace prism::serve
