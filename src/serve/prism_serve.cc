/**
 * @file
 * prism_serve: the resident evaluation daemon. Loads the workload
 * suite once, holds every (workload, fixed core) model warm, and
 * answers EVAL/RANK/SWEEP queries over the length-prefixed TCP
 * protocol until SIGINT/SIGTERM, then drains admitted work and
 * exits cleanly.
 *
 * Usage:
 *   prism_serve [--port=N] [--workloads=a,b,c] [--threads=N]
 *               [--cache-dir=DIR] [--max-insts=N]
 *               [--queue-depth=N] [--batch-max=N] [--max-conns=N]
 *
 * Prints `listening on 127.0.0.1:<port>` (the bound port, also for
 * --port=0 ephemeral binds) and `ready (...)` once serving; scripts
 * parse those lines.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/artifact_cache.hh"
#include "common/logging.hh"
#include "serve/server.hh"
#include "workloads/suite.hh"

using namespace prism;
using namespace prism::serve;

namespace
{

Server *g_server = nullptr;

/** Async-signal-safe: requestStop() is one atomic store. */
void
onSignal(int)
{
    if (g_server)
        g_server->requestStop();
}

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: prism_serve [--port=N] [--workloads=a,b,c]\n"
        "                   [--threads=N] [--cache-dir=DIR]\n"
        "                   [--max-insts=N] [--queue-depth=N]\n"
        "                   [--batch-max=N] [--max-conns=N]\n");
    std::exit(2);
}

bool
flagValue(const char *arg, const char *name, std::string &out)
{
    const std::size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) != 0)
        return false;
    if (arg[n] == '=') {
        out = arg + n + 1;
        return true;
    }
    return false;
}

std::uint64_t
parseCount(const std::string &value, const char *name)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        fatal("%s: expected a non-negative integer, got '%s'", name,
              value.c_str());
    return v;
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        const std::size_t comma = s.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? s.size() : comma;
        if (end > start)
            out.push_back(s.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    ServeOptions opts;
    std::string cacheDir;
    std::uint64_t maxInsts = 0;

    for (int i = 1; i < argc; ++i) {
        std::string v;
        if (flagValue(argv[i], "--port", v))
            opts.port = static_cast<std::uint16_t>(
                parseCount(v, "--port"));
        else if (flagValue(argv[i], "--workloads", v))
            opts.workloads = splitCommas(v);
        else if (flagValue(argv[i], "--threads", v))
            opts.threads =
                static_cast<unsigned>(parseCount(v, "--threads"));
        else if (flagValue(argv[i], "--cache-dir", v))
            cacheDir = v;
        else if (flagValue(argv[i], "--max-insts", v))
            maxInsts = parseCount(v, "--max-insts");
        else if (flagValue(argv[i], "--queue-depth", v))
            opts.queueDepth = static_cast<std::size_t>(
                parseCount(v, "--queue-depth"));
        else if (flagValue(argv[i], "--batch-max", v))
            opts.batchMax = static_cast<std::size_t>(
                parseCount(v, "--batch-max"));
        else if (flagValue(argv[i], "--max-conns", v))
            opts.maxConns = static_cast<std::size_t>(
                parseCount(v, "--max-conns"));
        else
            usage();
    }

    if (!cacheDir.empty())
        ArtifactCache::setGlobalDir(cacheDir);
    if (maxInsts > 0)
        setMaxInstsOverride(maxInsts);

    Server server(opts);
    g_server = &server;

    struct sigaction sa = {};
    sa.sa_handler = onSignal;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);

    const auto t0 = std::chrono::steady_clock::now();
    server.loadAndPrepare();
    const auto loadMs =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();

    const std::uint16_t port = server.start();
    std::printf("prism_serve: listening on 127.0.0.1:%u\n",
                unsigned(port));
    const StatsReply s = server.statsSnapshot();
    std::printf("prism_serve: ready (%llu workloads, %llu models, "
                "%llu contexts, load %lld ms)\n",
                static_cast<unsigned long long>(s.residentWorkloads),
                static_cast<unsigned long long>(s.residentModels),
                static_cast<unsigned long long>(s.poolContexts),
                static_cast<long long>(loadMs));
    std::fflush(stdout);

    while (!server.stopRequested())
        std::this_thread::sleep_for(std::chrono::milliseconds(100));

    server.drainAndJoin();
    const StatsReply end = server.statsSnapshot();
    std::printf(
        "prism_serve: drained and stopped (%llu eval, %llu rank, "
        "%llu sweep, %llu busy, %llu protocol errors)\n",
        static_cast<unsigned long long>(end.evalQueries),
        static_cast<unsigned long long>(end.rankQueries),
        static_cast<unsigned long long>(end.sweepQueries),
        static_cast<unsigned long long>(end.busyRejected),
        static_cast<unsigned long long>(end.protocolErrors));
    return 0;
}
