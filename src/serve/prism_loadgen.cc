/**
 * @file
 * prism_loadgen: closed-loop load generator for prism_serve. Opens
 * --conns connections, each driving synchronous queries back-to-back
 * for --secs seconds, then reports throughput and latency
 * percentiles as JSON (the BENCH_serve.json format).
 *
 * Usage:
 *   prism_loadgen --port=N [--host=127.0.0.1] [--conns=8]
 *                 [--secs=5] [--mix=eval|mixed] [--seed=1]
 *                 [--json=FILE] [--perf-check=FILE]
 *
 * --mix=eval    EVAL-only over (resident workload, fixed core, mask)
 *               picked per query from a seeded deterministic RNG.
 * --mix=mixed   85%% EVAL / 10%% RANK / 4%% PING / 1%% STATS.
 *
 * --perf-check=FILE compares this run against committed numbers:
 * fail when qps < 0.5x committed or p99 > 3x committed. The absolute
 * targets (>= 10,000 EVAL q/s, p99 < 10 ms at 8 connections) are
 * additionally enforced only on hosts with >= 4 CPUs — a 1-CPU CI
 * container reports its own honest numbers instead of pretending
 * (same policy as the framework bench's scaling check).
 * PRISM_SKIP_PERF_CHECK=1 skips the comparison; a missing committed
 * file is a bootstrap pass.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "serve/client.hh"
#include "uarch/core_config.hh"

using namespace prism;
using namespace prism::serve;

namespace
{

struct LoadgenOptions
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    unsigned conns = 8;
    double secs = 5.0;
    std::string mix = "eval";
    std::uint64_t seed = 1;
    std::string jsonPath;
    std::string perfCheckPath;
};

/** Per-connection results, merged after the run. */
struct ConnResult
{
    std::uint64_t ok = 0;
    std::uint64_t busy = 0;
    std::uint64_t errors = 0;
    std::vector<std::uint64_t> latencyNs; ///< successful queries
};

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: prism_loadgen --port=N [--host=H] "
                 "[--conns=N] [--secs=S] [--mix=eval|mixed] "
                 "[--seed=N] [--json=FILE] [--perf-check=FILE]\n");
    std::exit(2);
}

bool
flagValue(const char *arg, const char *name, std::string &out)
{
    const std::size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) != 0 || arg[n] != '=')
        return false;
    out = arg + n + 1;
    return true;
}

/** One connection's closed loop. */
ConnResult
runConnection(const LoadgenOptions &opts, unsigned idx,
              const std::vector<std::string> &workloads,
              std::chrono::steady_clock::time_point deadline)
{
    ConnResult res;
    Client client;
    if (!client.connect(opts.host, opts.port)) {
        res.errors = 1;
        return res;
    }
    Rng rng(opts.seed * 0x9E3779B97F4A7C15ull + idx);
    const bool mixed = opts.mix == "mixed";
    res.latencyNs.reserve(1 << 16);

    while (std::chrono::steady_clock::now() < deadline) {
        const double roll = mixed ? rng.uniform() : 0.0;
        const auto t0 = std::chrono::steady_clock::now();
        bool ok = false;
        bool busy = false;
        if (roll < 0.85) {
            EvalRequest req;
            req.workload =
                workloads[rng.below(workloads.size())];
            req.config.kind = kAllCoreKinds[rng.below(
                kAllCoreKinds.size())];
            req.mask = static_cast<unsigned>(rng.below(16));
            WireWriter w;
            encodeEvalRequest(w, req);
            if (auto reply = client.roundTrip(Op::Eval, w.bytes())) {
                ok = reply->status == Status::Ok;
                busy = reply->status == Status::Busy;
            }
        } else if (roll < 0.95) {
            RankRequest req;
            req.workload =
                workloads[rng.below(workloads.size())];
            req.config.kind = kAllCoreKinds[rng.below(
                kAllCoreKinds.size())];
            WireWriter w;
            encodeRankRequest(w, req);
            if (auto reply = client.roundTrip(Op::Rank, w.bytes())) {
                ok = reply->status == Status::Ok;
                busy = reply->status == Status::Busy;
            }
        } else if (roll < 0.99) {
            std::uint8_t version = 0;
            ok = client.ping(version);
        } else {
            StatsReply stats;
            ok = client.stats(stats);
        }
        const auto t1 = std::chrono::steady_clock::now();
        if (ok) {
            ++res.ok;
            res.latencyNs.push_back(static_cast<std::uint64_t>(
                std::chrono::duration_cast<
                    std::chrono::nanoseconds>(t1 - t0)
                    .count()));
        } else if (busy) {
            ++res.busy;
        } else {
            ++res.errors;
            if (!client.connected() ||
                client.lastError() == "connection closed" ||
                client.lastError() == "frame read failed")
                break; // dead socket: stop this connection's loop
        }
    }
    return res;
}

double
percentileUs(const std::vector<std::uint64_t> &sortedNs, double p)
{
    if (sortedNs.empty())
        return 0;
    const std::size_t idx = std::min(
        sortedNs.size() - 1,
        static_cast<std::size_t>(p * double(sortedNs.size())));
    return double(sortedNs[idx]) / 1000.0;
}

/** Minimal flat-JSON number lookup (BENCH_*.json convention). */
bool
jsonNumber(const std::string &text, const std::string &key,
           double &out)
{
    const std::string needle = "\"" + key + "\"";
    const std::size_t at = text.find(needle);
    if (at == std::string::npos)
        return false;
    const std::size_t colon = text.find(':', at + needle.size());
    if (colon == std::string::npos)
        return false;
    char *end = nullptr;
    out = std::strtod(text.c_str() + colon + 1, &end);
    return end != text.c_str() + colon + 1;
}

int
perfCheck(const LoadgenOptions &opts, double qps, double p99Us)
{
    if (std::getenv("PRISM_SKIP_PERF_CHECK")) {
        std::printf("perf-check: skipped "
                    "(PRISM_SKIP_PERF_CHECK set)\n");
        return 0;
    }
    std::ifstream in(opts.perfCheckPath);
    if (!in) {
        std::printf("perf-check: no committed baseline at %s "
                    "(bootstrap pass)\n",
                    opts.perfCheckPath.c_str());
        return 0;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();

    double committedQps = 0, committedP99 = 0;
    if (!jsonNumber(text, "qps", committedQps) ||
        !jsonNumber(text, "p99_us", committedP99)) {
        std::fprintf(stderr,
                     "perf-check: FAIL — %s is missing qps/p99_us\n",
                     opts.perfCheckPath.c_str());
        return 1;
    }

    int failures = 0;
    // Relative guards hold on any host: a regression against the
    // committed numbers is a regression regardless of CPU count.
    if (qps < 0.5 * committedQps) {
        std::fprintf(stderr,
                     "perf-check: FAIL — qps %.0f < 0.5x committed "
                     "%.0f\n",
                     qps, committedQps);
        ++failures;
    }
    if (committedP99 > 0 && p99Us > 3.0 * committedP99) {
        std::fprintf(stderr,
                     "perf-check: FAIL — p99 %.0f us > 3x committed "
                     "%.0f us\n",
                     p99Us, committedP99);
        ++failures;
    }
    // Absolute targets only where the hardware can express them.
    if (availableParallelism() >= 4 && opts.conns >= 8) {
        if (qps < 10000) {
            std::fprintf(stderr,
                         "perf-check: FAIL — qps %.0f < 10000 "
                         "absolute target\n",
                         qps);
            ++failures;
        }
        if (p99Us > 10000) {
            std::fprintf(stderr,
                         "perf-check: FAIL — p99 %.0f us > 10 ms "
                         "absolute target\n",
                         p99Us);
            ++failures;
        }
    } else {
        std::printf("perf-check: absolute targets skipped "
                    "(%u CPUs, %u conns)\n",
                    availableParallelism(), opts.conns);
    }
    if (failures == 0)
        std::printf("perf-check: OK (committed qps %.0f, "
                    "p99 %.0f us)\n",
                    committedQps, committedP99);
    return failures ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    LoadgenOptions opts;
    for (int i = 1; i < argc; ++i) {
        std::string v;
        if (flagValue(argv[i], "--host", v))
            opts.host = v;
        else if (flagValue(argv[i], "--port", v))
            opts.port = static_cast<std::uint16_t>(
                std::strtoul(v.c_str(), nullptr, 10));
        else if (flagValue(argv[i], "--conns", v))
            opts.conns = static_cast<unsigned>(
                std::strtoul(v.c_str(), nullptr, 10));
        else if (flagValue(argv[i], "--secs", v))
            opts.secs = std::strtod(v.c_str(), nullptr);
        else if (flagValue(argv[i], "--mix", v))
            opts.mix = v;
        else if (flagValue(argv[i], "--seed", v))
            opts.seed = std::strtoull(v.c_str(), nullptr, 10);
        else if (flagValue(argv[i], "--json", v))
            opts.jsonPath = v;
        else if (flagValue(argv[i], "--perf-check", v))
            opts.perfCheckPath = v;
        else
            usage();
    }
    if (opts.port == 0 || opts.conns == 0 || opts.secs <= 0)
        usage();
    if (opts.mix != "eval" && opts.mix != "mixed")
        fatal("--mix: expected 'eval' or 'mixed', got '%s'",
              opts.mix.c_str());

    // The query space comes from the server itself: LIST the
    // resident workloads so the generator works for any --workloads
    // configuration of the daemon.
    std::vector<std::string> workloads;
    {
        Client probe;
        if (!probe.connect(opts.host, opts.port))
            fatal("connect %s:%u: %s", opts.host.c_str(),
                  unsigned(opts.port), probe.lastError().c_str());
        ListReply list;
        if (!probe.list(list) || list.workloads.empty())
            fatal("LIST failed or server has no resident workloads");
        workloads = std::move(list.workloads);
    }

    const auto start = std::chrono::steady_clock::now();
    const auto deadline =
        start + std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(opts.secs));

    std::vector<ConnResult> results(opts.conns);
    std::vector<std::thread> threads;
    threads.reserve(opts.conns);
    for (unsigned i = 0; i < opts.conns; ++i) {
        threads.emplace_back([&, i] {
            results[i] = runConnection(opts, i, workloads, deadline);
        });
    }
    for (std::thread &t : threads)
        t.join();
    const double elapsed =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();

    std::uint64_t ok = 0, busy = 0, errors = 0;
    std::vector<std::uint64_t> lat;
    for (ConnResult &r : results) {
        ok += r.ok;
        busy += r.busy;
        errors += r.errors;
        lat.insert(lat.end(), r.latencyNs.begin(),
                   r.latencyNs.end());
    }
    std::sort(lat.begin(), lat.end());

    const double qps = elapsed > 0 ? double(ok) / elapsed : 0;
    const double p50 = percentileUs(lat, 0.50);
    const double p95 = percentileUs(lat, 0.95);
    const double p99 = percentileUs(lat, 0.99);
    const double meanUs =
        lat.empty() ? 0
                    : double(std::accumulate(lat.begin(), lat.end(),
                                             std::uint64_t{0})) /
                          (1000.0 * double(lat.size()));

    char json[1024];
    std::snprintf(
        json, sizeof json,
        "{\n"
        "  \"mix\": \"%s\",\n"
        "  \"conns\": %u,\n"
        "  \"secs\": %.2f,\n"
        "  \"cpus\": %u,\n"
        "  \"queries\": %llu,\n"
        "  \"busy\": %llu,\n"
        "  \"errors\": %llu,\n"
        "  \"qps\": %.1f,\n"
        "  \"mean_us\": %.1f,\n"
        "  \"p50_us\": %.1f,\n"
        "  \"p95_us\": %.1f,\n"
        "  \"p99_us\": %.1f\n"
        "}\n",
        opts.mix.c_str(), opts.conns, elapsed,
        availableParallelism(),
        static_cast<unsigned long long>(ok),
        static_cast<unsigned long long>(busy),
        static_cast<unsigned long long>(errors), qps, meanUs, p50,
        p95, p99);
    std::fputs(json, stdout);

    if (!opts.jsonPath.empty()) {
        std::ofstream out(opts.jsonPath);
        if (!out)
            fatal("cannot write %s", opts.jsonPath.c_str());
        out << json;
    }

    if (errors > 0) {
        std::fprintf(stderr, "loadgen: %llu queries failed\n",
                     static_cast<unsigned long long>(errors));
        return 1;
    }
    if (!opts.perfCheckPath.empty())
        return perfCheck(opts, qps, p99);
    return 0;
}
