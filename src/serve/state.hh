/**
 * @file
 * The daemon's resident evaluation state: every served workload
 * loaded once at startup (trace + TDG, trace/tdgprof cache aware)
 * with one warm BenchmarkModel per fixed CoreKind held for the
 * process lifetime. Component tables flow through the usual tiers
 * (RAM LRU in front of the disk artifact cache, common/memo_cache),
 * so parametric-core queries that miss the fixed set still assemble
 * in ~10 µs once their components are warm.
 *
 * Thread-safety: loadAndPrepare() is a mutate phase (call once,
 * before serving); afterwards every accessor is const and the models
 * are safe to evaluate() from any number of request workers
 * concurrently (scheduler-only composition over immutable tables).
 */

#ifndef PRISM_SERVE_STATE_HH
#define PRISM_SERVE_STATE_HH

#include <array>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.hh"
#include "tdg/exocore.hh"
#include "workloads/suite.hh"

namespace prism::serve
{

/** One resident workload: loaded trace/TDG + per-fixed-kind models. */
struct ResidentWorkload
{
    const WorkloadSpec *spec = nullptr;
    std::unique_ptr<LoadedWorkload> lw;
    std::array<std::unique_ptr<BenchmarkModel>,
               kAllCoreKinds.size()>
        fixed; ///< indexed by CoreKind

    const BenchmarkModel &
    model(CoreKind kind) const
    {
        return *fixed[static_cast<std::size_t>(kind)];
    }
};

/** The full resident suite, indexed by workload name. */
class ResidentSuite
{
  public:
    /**
     * Load `names` (empty = the full Table 3 suite) and build every
     * (workload, fixed kind) model, fanned out on `pool` with one
     * task per unit of work. Fatal on unknown names.
     */
    void loadAndPrepare(const std::vector<std::string> &names,
                        ThreadPool &pool);

    /** Lookup by name; nullptr when not resident. */
    const ResidentWorkload *find(std::string_view name) const;

    const std::vector<ResidentWorkload> &
    workloads() const
    {
        return items_;
    }

    /** Resident model count (workloads x fixed kinds). */
    std::size_t
    residentModels() const
    {
        return items_.size() * kAllCoreKinds.size();
    }

    /** Total trace instructions resident. */
    std::size_t loadedInsts() const;

  private:
    std::vector<ResidentWorkload> items_;
    std::unordered_map<std::string, std::size_t> index_;
};

} // namespace prism::serve

#endif // PRISM_SERVE_STATE_HH
