#include "serve/protocol.hh"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

namespace prism::serve
{

namespace
{

/** Scheduler <-> wire byte. */
constexpr std::uint8_t
schedByte(SchedulerKind s)
{
    return s == SchedulerKind::AmdahlTree ? 1 : 0;
}

bool
schedFrom(std::uint8_t b, SchedulerKind &out)
{
    if (b == 0)
        out = SchedulerKind::Oracle;
    else if (b == 1)
        out = SchedulerKind::AmdahlTree;
    else
        return false;
    return true;
}

void
encodeConfig(WireWriter &w, const ConfigRef &c)
{
    w.u8(c.parametric ? 1 : 0);
    if (!c.parametric) {
        w.u8(static_cast<std::uint8_t>(c.kind));
        return;
    }
    const CoreParams &p = c.params;
    w.u8(p.inorder ? 1 : 0);
    w.u32(p.width);
    w.u32(p.robSize);
    w.u32(p.instWindow);
    w.u32(p.dcachePorts);
    w.u32(p.numAlu);
    w.u32(p.numMulDiv);
    w.u32(p.numFp);
    w.u32(p.frontendDepth);
    w.u32(p.simdLanes);
    w.u32(p.l1HitLatency);
    w.u32(p.l2HitLatency);
}

bool
decodeConfig(WireReader &r, ConfigRef &c)
{
    std::uint8_t tag = 0;
    if (!r.u8(tag) || tag > 1)
        return false;
    c.parametric = tag == 1;
    if (!c.parametric) {
        std::uint8_t kind = 0;
        if (!r.u8(kind) || kind >= kAllCoreKinds.size())
            return false;
        c.kind = static_cast<CoreKind>(kind);
        return true;
    }
    std::uint8_t inorder = 0;
    CoreParams &p = c.params;
    bool ok = r.u8(inorder) && inorder <= 1;
    p.inorder = inorder == 1;
    ok = ok && r.u32(p.width) && r.u32(p.robSize) &&
         r.u32(p.instWindow) && r.u32(p.dcachePorts) &&
         r.u32(p.numAlu) && r.u32(p.numMulDiv) && r.u32(p.numFp) &&
         r.u32(p.frontendDepth) && r.u32(p.simdLanes) &&
         r.u32(p.l1HitLatency) && r.u32(p.l2HitLatency);
    return ok;
}

} // namespace

// ---- WireWriter / WireReader --------------------------------------

void
WireWriter::str(std::string_view s)
{
    const std::size_t n = std::min<std::size_t>(s.size(), 0xFFFF);
    u16(static_cast<std::uint16_t>(n));
    buf_.insert(buf_.end(), s.begin(), s.begin() + n);
}

void
WireWriter::lstr(std::string_view s)
{
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
}

bool
WireReader::take(std::size_t n, const std::uint8_t *&p)
{
    if (!ok_ || data_.size() - pos_ < n) {
        ok_ = false;
        return false;
    }
    p = data_.data() + pos_;
    pos_ += n;
    return true;
}

bool
WireReader::u8(std::uint8_t &v)
{
    const std::uint8_t *p;
    if (!take(1, p))
        return false;
    v = p[0];
    return true;
}

bool
WireReader::u16(std::uint16_t &v)
{
    const std::uint8_t *p;
    if (!take(2, p))
        return false;
    v = static_cast<std::uint16_t>(p[0] | (p[1] << 8));
    return true;
}

bool
WireReader::u32(std::uint32_t &v)
{
    const std::uint8_t *p;
    if (!take(4, p))
        return false;
    v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | p[i];
    return true;
}

bool
WireReader::u64(std::uint64_t &v)
{
    const std::uint8_t *p;
    if (!take(8, p))
        return false;
    v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | p[i];
    return true;
}

bool
WireReader::f64(double &v)
{
    std::uint64_t bits;
    if (!u64(bits))
        return false;
    v = std::bit_cast<double>(bits);
    return true;
}

bool
WireReader::str(std::string &s)
{
    std::uint16_t n;
    if (!u16(n))
        return false;
    const std::uint8_t *p;
    if (!take(n, p))
        return false;
    s.assign(reinterpret_cast<const char *>(p), n);
    return true;
}

bool
WireReader::lstr(std::string &s)
{
    std::uint32_t n;
    // A long string still lives inside one frame, so its length can
    // never legitimately exceed the frame cap.
    if (!u32(n) || n > kMaxFrameBytes) {
        ok_ = false;
        return false;
    }
    const std::uint8_t *p;
    if (!take(n, p))
        return false;
    s.assign(reinterpret_cast<const char *>(p), n);
    return true;
}

// ---- Request/reply bodies -----------------------------------------

void
encodeEvalRequest(WireWriter &w, const EvalRequest &r)
{
    w.str(r.workload);
    encodeConfig(w, r.config);
    w.u8(static_cast<std::uint8_t>(r.mask));
    w.u8(schedByte(r.sched));
    w.f64(r.areaBudget);
}

bool
decodeEvalRequest(WireReader &r, EvalRequest &out)
{
    std::uint8_t mask = 0, sched = 0;
    if (!r.str(out.workload) || !decodeConfig(r, out.config) ||
        !r.u8(mask) || mask >= 16 || !r.u8(sched) ||
        !schedFrom(sched, out.sched) || !r.f64(out.areaBudget))
        return false;
    out.mask = mask;
    return r.done();
}

void
encodeEvalReply(WireWriter &w, const EvalReply &r)
{
    w.u64(r.cycles);
    w.f64(r.energy);
    w.f64(r.area);
    w.u8(r.withinBudget ? 1 : 0);
}

bool
decodeEvalReply(WireReader &r, EvalReply &out)
{
    std::uint8_t within = 0;
    if (!r.u64(out.cycles) || !r.f64(out.energy) ||
        !r.f64(out.area) || !r.u8(within) || within > 1)
        return false;
    out.withinBudget = within == 1;
    return r.done();
}

void
encodeRankRequest(WireWriter &w, const RankRequest &r)
{
    w.str(r.workload);
    encodeConfig(w, r.config);
    w.u8(schedByte(r.sched));
    w.f64(r.areaBudget);
}

bool
decodeRankRequest(WireReader &r, RankRequest &out)
{
    std::uint8_t sched = 0;
    if (!r.str(out.workload) || !decodeConfig(r, out.config) ||
        !r.u8(sched) || !schedFrom(sched, out.sched) ||
        !r.f64(out.areaBudget))
        return false;
    return r.done();
}

void
encodeRankReply(WireWriter &w, const RankReply &r)
{
    w.u8(static_cast<std::uint8_t>(r.entries.size()));
    for (const RankEntry &e : r.entries) {
        w.u8(static_cast<std::uint8_t>(e.mask));
        w.f64(e.speedup);
        w.f64(e.energyEff);
        w.f64(e.area);
        w.u8(e.withinBudget ? 1 : 0);
    }
}

bool
decodeRankReply(WireReader &r, RankReply &out)
{
    std::uint8_t n = 0;
    if (!r.u8(n) || n > 16)
        return false;
    out.entries.resize(n);
    for (RankEntry &e : out.entries) {
        std::uint8_t mask = 0, within = 0;
        if (!r.u8(mask) || mask >= 16 || !r.f64(e.speedup) ||
            !r.f64(e.energyEff) || !r.f64(e.area) || !r.u8(within) ||
            within > 1)
            return false;
        e.mask = mask;
        e.withinBudget = within == 1;
    }
    return r.done();
}

void
encodeSweepRequest(WireWriter &w, const SweepRequest &r)
{
    w.str(r.workload);
    w.u8(static_cast<std::uint8_t>(r.numMasks));
    w.u8(schedByte(r.sched));
    w.u8(static_cast<std::uint8_t>(r.budgets.size()));
    for (double b : r.budgets)
        w.f64(b);
}

bool
decodeSweepRequest(WireReader &r, SweepRequest &out)
{
    std::uint8_t masks = 0, sched = 0, nbudgets = 0;
    if (!r.str(out.workload) || !r.u8(masks) || masks < 1 ||
        masks > 16 || !r.u8(sched) || !schedFrom(sched, out.sched) ||
        !r.u8(nbudgets) || nbudgets > 16)
        return false;
    out.numMasks = masks;
    out.budgets.resize(nbudgets);
    for (double &b : out.budgets) {
        if (!r.f64(b))
            return false;
    }
    return r.done();
}

void
encodeSweepReply(WireWriter &w, const SweepReply &r)
{
    w.u32(r.totalPoints);
    w.u32(r.frontierPoints);
    w.lstr(r.table);
}

bool
decodeSweepReply(WireReader &r, SweepReply &out)
{
    if (!r.u32(out.totalPoints) || !r.u32(out.frontierPoints) ||
        !r.lstr(out.table))
        return false;
    return r.done();
}

void
encodeStatsReply(WireWriter &w, const StatsReply &r)
{
    // Fixed field order; the count up front lets a newer client read
    // an older server's snapshot prefix.
    const std::uint64_t fields[] = {
        r.uptimeMs,       r.evalQueries,    r.rankQueries,
        r.sweepQueries,   r.pingQueries,    r.statsQueries,
        r.listQueries,    r.busyRejected,   r.protocolErrors,
        r.disconnects,    r.batches,        r.batchedRequests,
        r.maxBatch,       r.queueCapacity,  r.queueHighWater,
        r.serviceNsTotal, r.residentWorkloads, r.residentModels,
        r.poolContexts,   r.ramHits,        r.ramMisses,
        r.ramInsertions,  r.ramEvictions,   r.ramBytes,
        r.ramMaxBytes,
    };
    w.u8(static_cast<std::uint8_t>(std::size(fields)));
    for (std::uint64_t f : fields)
        w.u64(f);
}

bool
decodeStatsReply(WireReader &r, StatsReply &out)
{
    std::uint8_t n = 0;
    if (!r.u8(n))
        return false;
    std::uint64_t *fields[] = {
        &out.uptimeMs,       &out.evalQueries,
        &out.rankQueries,    &out.sweepQueries,
        &out.pingQueries,    &out.statsQueries,
        &out.listQueries,    &out.busyRejected,
        &out.protocolErrors, &out.disconnects,
        &out.batches,        &out.batchedRequests,
        &out.maxBatch,       &out.queueCapacity,
        &out.queueHighWater, &out.serviceNsTotal,
        &out.residentWorkloads, &out.residentModels,
        &out.poolContexts,   &out.ramHits,
        &out.ramMisses,      &out.ramInsertions,
        &out.ramEvictions,   &out.ramBytes,
        &out.ramMaxBytes,
    };
    if (n != std::size(fields))
        return false;
    for (std::uint64_t *f : fields) {
        if (!r.u64(*f))
            return false;
    }
    return r.done();
}

void
encodeListReply(WireWriter &w, const ListReply &r)
{
    w.u16(static_cast<std::uint16_t>(r.workloads.size()));
    for (const std::string &name : r.workloads)
        w.str(name);
}

bool
decodeListReply(WireReader &r, ListReply &out)
{
    std::uint16_t n = 0;
    if (!r.u16(n))
        return false;
    out.workloads.resize(n);
    for (std::string &name : out.workloads) {
        if (!r.str(name))
            return false;
    }
    return r.done();
}

// ---- Frame I/O ----------------------------------------------------

namespace
{

/** Read exactly `n` bytes. Returns Ok, Eof (0 bytes read), Truncated
 *  (partial), or IoError. */
FrameResult
readExact(int fd, std::uint8_t *buf, std::size_t n)
{
    std::size_t got = 0;
    while (got < n) {
        const ssize_t r = ::recv(fd, buf + got, n - got, 0);
        if (r > 0) {
            got += static_cast<std::size_t>(r);
            continue;
        }
        if (r == 0)
            return got == 0 ? FrameResult::Eof
                            : FrameResult::Truncated;
        if (errno == EINTR)
            continue;
        return FrameResult::IoError;
    }
    return FrameResult::Ok;
}

bool
writeExact(int fd, const std::uint8_t *buf, std::size_t n)
{
    std::size_t sent = 0;
    while (sent < n) {
        // MSG_NOSIGNAL: a peer that vanished mid-reply must surface
        // as EPIPE, never as a process-killing SIGPIPE.
        const ssize_t r =
            ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
        if (r >= 0) {
            sent += static_cast<std::size_t>(r);
            continue;
        }
        if (errno == EINTR)
            continue;
        return false;
    }
    return true;
}

} // namespace

FrameResult
readFrame(int fd, std::vector<std::uint8_t> &payload)
{
    std::uint8_t hdr[4];
    FrameResult res = readExact(fd, hdr, sizeof hdr);
    if (res != FrameResult::Ok)
        return res;
    const std::uint32_t len = static_cast<std::uint32_t>(
        hdr[0] | (hdr[1] << 8) | (hdr[2] << 16) |
        (static_cast<std::uint32_t>(hdr[3]) << 24));
    if (len > kMaxFrameBytes)
        return FrameResult::TooLarge;
    payload.resize(len);
    if (len == 0)
        return FrameResult::Ok;
    res = readExact(fd, payload.data(), len);
    // A clean close between header and body is still a mid-frame cut.
    return res == FrameResult::Eof ? FrameResult::Truncated : res;
}

bool
writeFrame(int fd, std::span<const std::uint8_t> payload)
{
    std::uint8_t hdr[4];
    const std::uint32_t len =
        static_cast<std::uint32_t>(payload.size());
    for (int i = 0; i < 4; ++i)
        hdr[i] = static_cast<std::uint8_t>(len >> (8 * i));
    return writeExact(fd, hdr, sizeof hdr) &&
           (payload.empty() ||
            writeExact(fd, payload.data(), payload.size()));
}

namespace
{

bool
writeTaggedFrame(int fd, std::uint8_t tag,
                 std::span<const std::uint8_t> body)
{
    // One send per frame (header + tag + body contiguous) keeps the
    // syscall count at one per reply and avoids partial-frame
    // interleaving hazards at the TCP layer. The staging buffer is
    // thread-local so the steady-state hot path reuses its capacity.
    thread_local std::vector<std::uint8_t> frame;
    frame.clear();
    frame.reserve(5 + body.size());
    const std::uint32_t len =
        static_cast<std::uint32_t>(1 + body.size());
    for (int i = 0; i < 4; ++i)
        frame.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
    frame.push_back(tag);
    frame.insert(frame.end(), body.begin(), body.end());
    return writeExact(fd, frame.data(), frame.size());
}

} // namespace

bool
writeRequestFrame(int fd, Op op, std::span<const std::uint8_t> body)
{
    return writeTaggedFrame(fd, static_cast<std::uint8_t>(op), body);
}

bool
writeReplyFrame(int fd, Status status,
                std::span<const std::uint8_t> body)
{
    return writeTaggedFrame(fd, static_cast<std::uint8_t>(status),
                            body);
}

bool
writeErrorReply(int fd, std::string_view message)
{
    WireWriter w;
    w.str(message);
    return writeReplyFrame(fd, Status::Error, w.bytes());
}

} // namespace prism::serve
