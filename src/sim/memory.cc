#include "sim/memory.hh"

#include <bit>

namespace prism
{

std::uint8_t
SimMemory::readByte(Addr addr) const
{
    const std::uint8_t *p = pageForRead(addr >> kPageBits);
    if (!p)
        return 0;
    return p[addr & kPageMask];
}

void
SimMemory::writeByte(Addr addr, std::uint8_t v)
{
    pageForWrite(addr >> kPageBits)[addr & kPageMask] = v;
}

std::uint64_t
SimMemory::readSlow(Addr addr, unsigned size) const
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < size; ++i)
        v |= static_cast<std::uint64_t>(readByte(addr + i)) << (8 * i);
    return v;
}

void
SimMemory::writeSlow(Addr addr, std::uint64_t value, unsigned size)
{
    for (unsigned i = 0; i < size; ++i)
        writeByte(addr + i, static_cast<std::uint8_t>(value >> (8 * i)));
}

std::int64_t
SimMemory::readI64(Addr addr) const
{
    return static_cast<std::int64_t>(read(addr, 8));
}

void
SimMemory::writeI64(Addr addr, std::int64_t v)
{
    write(addr, static_cast<std::uint64_t>(v), 8);
}

double
SimMemory::readF64(Addr addr) const
{
    return std::bit_cast<double>(read(addr, 8));
}

void
SimMemory::writeF64(Addr addr, double v)
{
    write(addr, std::bit_cast<std::uint64_t>(v), 8);
}

std::int32_t
SimMemory::readI32(Addr addr) const
{
    return static_cast<std::int32_t>(read(addr, 4));
}

void
SimMemory::writeI32(Addr addr, std::int32_t v)
{
    write(addr, static_cast<std::uint32_t>(v), 4);
}

} // namespace prism
