/**
 * @file
 * Sparse byte-addressed guest memory for the functional simulator,
 * with typed host-side accessors workloads use to stage input data.
 */

#ifndef PRISM_SIM_MEMORY_HH
#define PRISM_SIM_MEMORY_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace prism
{

/**
 * Sparse paged memory. Reads of untouched memory return zero, like a
 * fresh BSS segment. Unaligned accesses are supported (they cross
 * pages transparently).
 *
 * The common case — an access that stays within one page — takes a
 * single page lookup, served from a one-entry last-page cache when the
 * access stream has locality. Pages are never resized or removed once
 * created and unordered_map never invalidates element references on
 * insert, so the cached data pointers stay valid for the lifetime of
 * the SimMemory.
 */
class SimMemory
{
  public:
    /** Read `size` (1/2/4/8) bytes, zero-extended into 64 bits. */
    std::uint64_t
    read(Addr addr, unsigned size) const
    {
        prism_assert(size == 1 || size == 2 || size == 4 || size == 8,
                     "bad access size %u", size);
        const Addr off = addr & kPageMask;
        if (off + size <= kPageSize) [[likely]] {
            const std::uint8_t *p = pageForRead(addr >> kPageBits);
            if (!p)
                return 0;
            std::uint64_t v = 0;
            for (unsigned i = 0; i < size; ++i)
                v |= static_cast<std::uint64_t>(p[off + i]) << (8 * i);
            return v;
        }
        return readSlow(addr, size);
    }

    /** Write the low `size` bytes of value. */
    void
    write(Addr addr, std::uint64_t value, unsigned size)
    {
        prism_assert(size == 1 || size == 2 || size == 4 || size == 8,
                     "bad access size %u", size);
        const Addr off = addr & kPageMask;
        if (off + size <= kPageSize) [[likely]] {
            std::uint8_t *p = pageForWrite(addr >> kPageBits);
            for (unsigned i = 0; i < size; ++i)
                p[off + i] = static_cast<std::uint8_t>(value >> (8 * i));
            return;
        }
        writeSlow(addr, value, size);
    }

    // Typed conveniences for staging workload inputs.
    std::int64_t readI64(Addr addr) const;
    void writeI64(Addr addr, std::int64_t v);
    double readF64(Addr addr) const;
    void writeF64(Addr addr, double v);
    std::int32_t readI32(Addr addr) const;
    void writeI32(Addr addr, std::int32_t v);

    /** Number of allocated pages (test/diagnostic aid). */
    std::size_t numPages() const { return pages_.size(); }

  private:
    static constexpr Addr kPageBits = 12;
    static constexpr Addr kPageSize = Addr{1} << kPageBits;
    static constexpr Addr kPageMask = kPageSize - 1;
    static constexpr Addr kNoPage = ~Addr{0};

    using Page = std::vector<std::uint8_t>;

    /** Data of `page` if it exists, else nullptr. Absent pages are
     *  not cached: a later write may create them. */
    const std::uint8_t *
    pageForRead(Addr page) const
    {
        if (page == lastReadPage_)
            return lastRead_;
        const auto it = pages_.find(page);
        if (it == pages_.end())
            return nullptr;
        lastReadPage_ = page;
        lastRead_ = it->second.data();
        return lastRead_;
    }

    /** Data of `page`, creating (zero-filled) if needed. */
    std::uint8_t *
    pageForWrite(Addr page)
    {
        if (page == lastWritePage_)
            return lastWrite_;
        Page &pg = pages_[page];
        if (pg.empty())
            pg.resize(kPageSize, 0);
        lastWritePage_ = page;
        lastWrite_ = pg.data();
        return lastWrite_;
    }

    std::uint64_t readSlow(Addr addr, unsigned size) const;
    void writeSlow(Addr addr, std::uint64_t value, unsigned size);

    std::uint8_t readByte(Addr addr) const;
    void writeByte(Addr addr, std::uint8_t v);

    std::unordered_map<Addr, Page> pages_;
    mutable Addr lastReadPage_ = kNoPage;
    mutable const std::uint8_t *lastRead_ = nullptr;
    Addr lastWritePage_ = kNoPage;
    std::uint8_t *lastWrite_ = nullptr;
};

} // namespace prism

#endif // PRISM_SIM_MEMORY_HH
