/**
 * @file
 * Sparse byte-addressed guest memory for the functional simulator,
 * with typed host-side accessors workloads use to stage input data.
 */

#ifndef PRISM_SIM_MEMORY_HH
#define PRISM_SIM_MEMORY_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace prism
{

/**
 * Sparse paged memory. Reads of untouched memory return zero, like a
 * fresh BSS segment. Unaligned accesses are supported (they cross
 * pages transparently).
 */
class SimMemory
{
  public:
    /** Read `size` (1/2/4/8) bytes, zero-extended into 64 bits. */
    std::uint64_t read(Addr addr, unsigned size) const;

    /** Write the low `size` bytes of value. */
    void write(Addr addr, std::uint64_t value, unsigned size);

    // Typed conveniences for staging workload inputs.
    std::int64_t readI64(Addr addr) const;
    void writeI64(Addr addr, std::int64_t v);
    double readF64(Addr addr) const;
    void writeF64(Addr addr, double v);
    std::int32_t readI32(Addr addr) const;
    void writeI32(Addr addr, std::int32_t v);

    /** Number of allocated pages (test/diagnostic aid). */
    std::size_t numPages() const { return pages_.size(); }

  private:
    static constexpr Addr kPageBits = 12;
    static constexpr Addr kPageSize = Addr{1} << kPageBits;
    static constexpr Addr kPageMask = kPageSize - 1;

    using Page = std::vector<std::uint8_t>;

    std::uint8_t readByte(Addr addr) const;
    void writeByte(Addr addr, std::uint8_t v);

    std::unordered_map<Addr, Page> pages_;
};

} // namespace prism

#endif // PRISM_SIM_MEMORY_HH
