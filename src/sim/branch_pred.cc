#include "sim/branch_pred.hh"

#include "common/logging.hh"

namespace prism
{

namespace
{

/** 2-bit saturating counter helpers; >=2 means predicted taken. */
inline bool counterTaken(std::uint8_t c) { return c >= 2; }

inline std::uint8_t
counterUpdate(std::uint8_t c, bool taken)
{
    if (taken)
        return c < 3 ? c + 1 : 3;
    return c > 0 ? c - 1 : 0;
}

} // namespace

// ---- Bimodal ----

BimodalPredictor::BimodalPredictor(unsigned table_bits)
    : table_(std::size_t{1} << table_bits, 2),
      mask_((1u << table_bits) - 1)
{
    prism_assert(table_bits > 0 && table_bits < 28, "bad table size");
}

bool
BimodalPredictor::predict(StaticId pc) const
{
    return counterTaken(table_[pc & mask_]);
}

void
BimodalPredictor::update(StaticId pc, bool taken)
{
    std::uint8_t &c = table_[pc & mask_];
    c = counterUpdate(c, taken);
}

void
BimodalPredictor::reset()
{
    for (auto &c : table_)
        c = 2;
}

// ---- Gshare ----

GsharePredictor::GsharePredictor(unsigned table_bits,
                                 unsigned history_bits)
    : table_(std::size_t{1} << table_bits, 2),
      mask_((1u << table_bits) - 1),
      historyMask_((1u << history_bits) - 1)
{
    prism_assert(table_bits > 0 && table_bits < 28, "bad table size");
    prism_assert(history_bits <= table_bits, "history exceeds index");
}

std::size_t
GsharePredictor::index(StaticId pc) const
{
    return (pc ^ history_) & mask_;
}

bool
GsharePredictor::predict(StaticId pc) const
{
    return counterTaken(table_[index(pc)]);
}

void
GsharePredictor::update(StaticId pc, bool taken)
{
    std::uint8_t &c = table_[index(pc)];
    c = counterUpdate(c, taken);
    history_ = ((history_ << 1) | (taken ? 1u : 0u)) & historyMask_;
}

void
GsharePredictor::reset()
{
    for (auto &c : table_)
        c = 2;
    history_ = 0;
}

// ---- Tournament ----

TournamentPredictor::TournamentPredictor(unsigned table_bits)
    : bimodal_(table_bits),
      gshare_(table_bits, table_bits - 2),
      chooser_(std::size_t{1} << table_bits, 2),
      mask_((1u << table_bits) - 1)
{
}

bool
TournamentPredictor::predict(StaticId pc) const
{
    const bool use_gshare = counterTaken(chooser_[pc & mask_]);
    return use_gshare ? gshare_.predict(pc) : bimodal_.predict(pc);
}

void
TournamentPredictor::update(StaticId pc, bool taken)
{
    const bool bim = bimodal_.predict(pc);
    const bool gsh = gshare_.predict(pc);
    if (bim != gsh) {
        // Train the chooser toward the component that was right.
        std::uint8_t &c = chooser_[pc & mask_];
        c = counterUpdate(c, gsh == taken);
    }
    bimodal_.update(pc, taken);
    gshare_.update(pc, taken);
}

void
TournamentPredictor::reset()
{
    bimodal_.reset();
    gshare_.reset();
    for (auto &c : chooser_)
        c = 2;
}

std::unique_ptr<BranchPredictor>
makeDefaultPredictor()
{
    return std::make_unique<TournamentPredictor>();
}

} // namespace prism
