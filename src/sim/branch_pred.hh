/**
 * @file
 * Branch-direction predictors. Prediction outcomes are embedded into
 * the trace as mispredict events, which the µDG turns into fetch
 * redirect edges. Targets are always known in the guest ISA, so only
 * direction prediction is modeled (returns use an implicit RAS).
 */

#ifndef PRISM_SIM_BRANCH_PRED_HH
#define PRISM_SIM_BRANCH_PRED_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"

namespace prism
{

/** Direction-predictor interface. */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /** Predicted direction for the branch at `pc` (no state change). */
    virtual bool predict(StaticId pc) const = 0;

    /** Train with the real outcome. */
    virtual void update(StaticId pc, bool taken) = 0;

    /** Clear all state. */
    virtual void reset() = 0;

    /**
     * Predict, then train with the real outcome.
     * @return true if the prediction was correct.
     */
    bool
    predictAndUpdate(StaticId pc, bool taken)
    {
        const bool correct = predict(pc) == taken;
        update(pc, taken);
        return correct;
    }
};

/** Always-taken baseline (useful as a pessimistic reference). */
class StaticTakenPredictor final : public BranchPredictor
{
  public:
    bool predict(StaticId) const override { return true; }
    void update(StaticId, bool) override {}
    void reset() override {}
};

/** Classic bimodal table of 2-bit saturating counters. */
class BimodalPredictor final : public BranchPredictor
{
  public:
    explicit BimodalPredictor(unsigned table_bits = 12);

    bool predict(StaticId pc) const override;
    void update(StaticId pc, bool taken) override;
    void reset() override;

  private:
    std::vector<std::uint8_t> table_;
    unsigned mask_;
};

/** Gshare: global history XOR pc indexing a 2-bit counter table. */
class GsharePredictor final : public BranchPredictor
{
  public:
    explicit GsharePredictor(unsigned table_bits = 14,
                             unsigned history_bits = 12);

    bool predict(StaticId pc) const override;
    void update(StaticId pc, bool taken) override;
    void reset() override;

  private:
    std::size_t index(StaticId pc) const;

    std::vector<std::uint8_t> table_;
    unsigned mask_;
    unsigned historyMask_;
    unsigned history_ = 0;
};

/**
 * Tournament predictor: a chooser table selects between a bimodal and
 * a gshare component (an approximation of the Alpha 21264 style
 * predictor the paper's baseline cores descend from).
 */
class TournamentPredictor final : public BranchPredictor
{
  public:
    explicit TournamentPredictor(unsigned table_bits = 13);

    bool predict(StaticId pc) const override;
    void update(StaticId pc, bool taken) override;
    void reset() override;

  private:
    BimodalPredictor bimodal_;
    GsharePredictor gshare_;
    std::vector<std::uint8_t> chooser_;
    unsigned mask_;
};

/** Construct the default predictor used for trace generation. */
std::unique_ptr<BranchPredictor> makeDefaultPredictor();

} // namespace prism

#endif // PRISM_SIM_BRANCH_PRED_HH
