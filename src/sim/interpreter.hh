/**
 * @file
 * Functional simulator for guest programs. Executes a Program against
 * a SimMemory, tracking true register and memory dependences, and
 * hands retired instructions to a sink. This is Prism's equivalent of
 * the paper's gem5 front-end: it produces the dynamic information
 * stream the TDG constructor consumes.
 *
 * The hot path is `runStream`: a templated batch callback (so the loop
 * inlines, no std::function dispatch per retirement) executing a
 * predecoded program image (per-block PInst records with operand slots,
 * memory sizes and branch targets resolved once at construction)
 * against a reusable InterpScratch. Retired DynInsts accumulate in a
 * scratch batch buffer and are handed to the callback in blocks, which
 * lets downstream consumers (cache model, branch predictor, TDG
 * builder) run tight batched loops instead of one virtual/indirect
 * call per instruction. Steady-state reuse of one scratch performs no
 * heap allocation.
 */

#ifndef PRISM_SIM_INTERPRETER_HH
#define PRISM_SIM_INTERPRETER_HH

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "common/logging.hh"
#include "prog/program.hh"
#include "sim/memory.hh"
#include "trace/dyn_inst.hh"

namespace prism
{

/**
 * Guest integer arithmetic wraps two's-complement (the modeled
 * machine's semantics); routing it through unsigned keeps the host
 * computation defined for UBSan while producing identical values.
 */
inline std::int64_t
wrapAdd(std::int64_t a, std::int64_t b)
{
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                     static_cast<std::uint64_t>(b));
}

inline std::int64_t
wrapSub(std::int64_t a, std::int64_t b)
{
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                     static_cast<std::uint64_t>(b));
}

inline std::int64_t
wrapMul(std::int64_t a, std::int64_t b)
{
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                     static_cast<std::uint64_t>(b));
}

/** Execution budget limits. */
struct RunLimits
{
    std::uint64_t maxInsts = 10'000'000;
    unsigned maxCallDepth = 128;
};

/** Result of an interpreter run. */
struct RunResult
{
    std::int64_t returnValue = 0;
    std::uint64_t instsExecuted = 0;
    bool hitInstLimit = false;
};

/**
 * Last-store-to-byte tracker for memory dependences.
 *
 * Page-granular: each touched page gets 4096 producer slots from a
 * pooled arena, located through a small open-addressing table. This
 * replaces the per-byte unordered_map the interpreter used to pay a
 * hash lookup per accessed byte for; stores fill slots directly and
 * loads take the max over the covered slots. Reused across runs with
 * no steady-state allocation once the pool reaches its high-water mark.
 */
class StoreTracker
{
  public:
    /** Forget all stores; keeps capacity. */
    void
    beginRun()
    {
        if (table_.empty())
            table_.resize(kMinTable);
        std::fill(table_.begin(), table_.end(), Entry{});
        used_ = 0;
    }

    /** Producer index for a load of [addr, addr+size): max last-store
     *  dynamic index over the covered bytes, kNoProducer if none. */
    std::int64_t
    loadProducer(Addr addr, unsigned size)
    {
        std::int64_t prod = kNoProducer;
        while (size > 0) {
            const Addr off = addr & kPageMask;
            const unsigned chunk = static_cast<unsigned>(
                std::min<Addr>(size, kPageSize - off));
            if (const std::int64_t *s = find(addr >> kPageBits)) {
                for (unsigned b = 0; b < chunk; ++b)
                    prod = std::max(prod, s[off + b]);
            }
            addr += chunk;
            size -= chunk;
        }
        return prod;
    }

    /** Record a store of [addr, addr+size) by dynamic inst `idx`. */
    void
    recordStore(Addr addr, unsigned size, std::int64_t idx)
    {
        while (size > 0) {
            const Addr off = addr & kPageMask;
            const unsigned chunk = static_cast<unsigned>(
                std::min<Addr>(size, kPageSize - off));
            std::int64_t *s = acquire(addr >> kPageBits);
            for (unsigned b = 0; b < chunk; ++b)
                s[off + b] = idx;
            addr += chunk;
            size -= chunk;
        }
    }

  private:
    static constexpr Addr kPageBits = 12;
    static constexpr Addr kPageSize = Addr{1} << kPageBits;
    static constexpr Addr kPageMask = kPageSize - 1;
    static constexpr std::size_t kPageSlots = kPageSize;
    static constexpr std::size_t kMinTable = 64; // power of two

    struct Entry
    {
        Addr key = 0; // page id + 1; 0 = empty
        std::uint32_t slot = 0;
    };

    static std::size_t
    hash(Addr page)
    {
        // Fibonacci hashing; pages are sequential in practice.
        return static_cast<std::size_t>(page * 0x9E3779B97F4A7C15ull >> 32);
    }

    /** Slots of `page`, nullptr if never stored to this run. */
    std::int64_t *
    find(Addr page)
    {
        const std::size_t mask = table_.size() - 1;
        std::size_t h = hash(page) & mask;
        while (table_[h].key != 0) {
            if (table_[h].key == page + 1) {
                return pool_.data() +
                       std::size_t{table_[h].slot} * kPageSlots;
            }
            h = (h + 1) & mask;
        }
        return nullptr;
    }

    /** Slots of `page`, creating (all kNoProducer) if needed. */
    std::int64_t *
    acquire(Addr page)
    {
        if (std::int64_t *s = find(page))
            return s;
        if ((used_ + 1) * 2 > table_.size())
            grow();
        const std::size_t mask = table_.size() - 1;
        std::size_t h = hash(page) & mask;
        while (table_[h].key != 0)
            h = (h + 1) & mask;
        table_[h].key = page + 1;
        table_[h].slot = static_cast<std::uint32_t>(used_);
        if (pool_.size() < (used_ + 1) * kPageSlots)
            pool_.resize((used_ + 1) * kPageSlots);
        std::int64_t *s = pool_.data() + used_ * kPageSlots;
        std::fill_n(s, kPageSlots, kNoProducer);
        ++used_;
        return s;
    }

    void
    grow()
    {
        std::vector<Entry> old = std::move(table_);
        table_.assign(old.size() * 2, Entry{});
        const std::size_t mask = table_.size() - 1;
        for (const Entry &e : old) {
            if (e.key == 0)
                continue;
            std::size_t h = hash(e.key - 1) & mask;
            while (table_[h].key != 0)
                h = (h + 1) & mask;
            table_[h] = e;
        }
    }

    std::vector<Entry> table_;
    std::vector<std::int64_t> pool_;
    std::size_t used_ = 0;
};

/**
 * Reusable execution state for Interpreter::runStream: the register
 * stack (flat arrays shared by all frames), call frames, store tracker
 * and the retired-instruction batch buffer. Constructed once and
 * reused, runs allocate nothing once sized.
 */
class InterpScratch
{
  public:
    InterpScratch() = default;

  private:
    friend class Interpreter;

    struct Frame
    {
        std::int32_t func = 0;
        std::uint32_t regBase = 0; // offset into regs_/lastWriter_
        RegId retDst = kNoReg;     // caller reg for return
        std::int32_t retBlock = 0; // caller resume point
        std::int32_t retIndex = 0;
    };

    void
    beginRun()
    {
        frames_.clear();
        regTop_ = 0;
        stores_.beginRun();
    }

    /** Push a frame with `nregs` zeroed registers; returns it. */
    Frame &
    pushFrame(std::int32_t func, std::uint32_t nregs, RegId retDst,
              std::int32_t retBlock, std::int32_t retIndex)
    {
        Frame f;
        f.func = func;
        f.regBase = regTop_;
        f.retDst = retDst;
        f.retBlock = retBlock;
        f.retIndex = retIndex;
        regTop_ += nregs;
        if (regs_.size() < regTop_) {
            regs_.resize(regTop_);
            lastWriter_.resize(regTop_);
        }
        std::fill_n(regs_.begin() + f.regBase, nregs, std::int64_t{0});
        std::fill_n(lastWriter_.begin() + f.regBase, nregs, kNoProducer);
        frames_.push_back(f);
        return frames_.back();
    }

    void
    popFrame()
    {
        regTop_ = frames_.back().regBase;
        frames_.pop_back();
    }

    std::vector<Frame> frames_;
    std::vector<std::int64_t> regs_;
    std::vector<std::int64_t> lastWriter_;
    std::uint32_t regTop_ = 0;
    StoreTracker stores_;
    std::vector<DynInst> buf_;
};

/**
 * Executes guest programs. Loads of sizes < 8 are sign-extended. Each
 * retired DynInst carries all architectural fields and dependence
 * indices; microarchitectural annotation (cache latency, branch
 * prediction) is layered on by the FrontEnd in trace_gen.
 */
class Interpreter
{
  public:
    using Sink = std::function<void(DynInst &)>;

    Interpreter(const Program &prog, SimMemory &mem);

    /**
     * Run the entry function with the given integer arguments.
     * @param sink invoked once per retired instruction (may be empty).
     */
    RunResult run(const std::vector<std::int64_t> &args,
                  const Sink &sink = {}, const RunLimits &limits = {});

    /** Retired instructions per batch handed to the runStream callback. */
    static constexpr std::size_t kBatch = 1024;

    /**
     * Streaming run: retired DynInsts are delivered in batches as
     * `emit(DynInst *batch, std::size_t n, DynId base)` where `base`
     * is the dynamic index of batch[0]. The callback is a template
     * parameter so the whole loop inlines. `sc` is reused across runs
     * and owns all mutable state.
     */
    template <class BatchFn>
    RunResult
    runStream(const std::vector<std::int64_t> &args, InterpScratch &sc,
              BatchFn &&emit, const RunLimits &limits = {}) const
    {
        RunResult result;

        sc.beginRun();
        if (sc.buf_.size() < kBatch)
            sc.buf_.resize(kBatch);

        const std::int32_t entry = prog_.entryFunction();
        {
            const Function &fn = prog_.function(entry);
            prism_assert(args.size() == fn.numArgs,
                         "entry expects %d args, got %zu",
                         static_cast<int>(fn.numArgs), args.size());
            InterpScratch::Frame &f =
                sc.pushFrame(entry, numRegs_[entry], kNoReg, 0, 0);
            for (std::size_t i = 0; i < args.size(); ++i)
                sc.regs_[f.regBase + i] = args[i];
        }

        DynInst *const buf = sc.buf_.data();
        std::size_t bn = 0;

        std::int32_t block = 0;
        std::int32_t index = 0;
        DynId dyn_idx = 0;

        while (!sc.frames_.empty()) {
            if (dyn_idx >= limits.maxInsts) {
                result.hitInstLimit = true;
                break;
            }
            const InterpScratch::Frame &frame = sc.frames_.back();
            const PBlock &pb = pblocks_[blockBase_[frame.func] + block];
            prism_assert(index < static_cast<std::int32_t>(pb.count),
                         "fell off the end of bb%d in '%s'", block,
                         prog_.function(frame.func).name.c_str());
            const PInst &in = pinsts_[pb.first + index];

            std::int64_t *const regs = sc.regs_.data() + frame.regBase;
            std::int64_t *const lastw =
                sc.lastWriter_.data() + frame.regBase;

            DynInst &di = buf[bn];
            di = DynInst{};
            di.sid = in.sid;
            di.op = in.op;
            di.memSize = in.memSize;

            // Record register-source dependences.
            for (int s = 0; s < 3; ++s) {
                if (in.src[s] != kNoReg)
                    di.srcProd[s] = lastw[in.src[s]];
            }

            const auto rd = [regs](RegId r) { return regs[r]; };
            const auto asF = [](std::int64_t v) {
                return std::bit_cast<double>(v);
            };
            const auto asI = [](double v) {
                return std::bit_cast<std::int64_t>(v);
            };

            std::int64_t value = 0;
            bool writes = in.writes;
            std::int32_t next_block = block;
            std::int32_t next_index = index + 1;
            bool frame_switched = false;

            switch (in.op) {
              case Opcode::Movi: value = in.imm; break;
              case Opcode::Mov: value = rd(in.src[0]); break;
              case Opcode::Add:
                value = wrapAdd(rd(in.src[0]), rd(in.src[1]));
                break;
              case Opcode::Sub:
                value = wrapSub(rd(in.src[0]), rd(in.src[1]));
                break;
              case Opcode::And: value = rd(in.src[0]) & rd(in.src[1]); break;
              case Opcode::Or: value = rd(in.src[0]) | rd(in.src[1]); break;
              case Opcode::Xor: value = rd(in.src[0]) ^ rd(in.src[1]); break;
              case Opcode::Shl:
                value = rd(in.src[0]) << (rd(in.src[1]) & 63);
                break;
              case Opcode::Shr:
                value = static_cast<std::int64_t>(
                    static_cast<std::uint64_t>(rd(in.src[0])) >>
                    (rd(in.src[1]) & 63));
                break;
              case Opcode::Mul:
                value = wrapMul(rd(in.src[0]), rd(in.src[1]));
                break;
              case Opcode::Div: {
                // d == -1 wraps (INT64_MIN / -1 overflows the host op).
                const std::int64_t d = rd(in.src[1]);
                value = d == 0    ? 0
                        : d == -1 ? wrapSub(0, rd(in.src[0]))
                                  : rd(in.src[0]) / d;
                break;
              }
              case Opcode::Rem: {
                const std::int64_t d = rd(in.src[1]);
                value = (d == 0 || d == -1) ? 0 : rd(in.src[0]) % d;
                break;
              }
              case Opcode::CmpEq:
                value = rd(in.src[0]) == rd(in.src[1]);
                break;
              case Opcode::CmpLt:
                value = rd(in.src[0]) < rd(in.src[1]);
                break;
              case Opcode::CmpLe:
                value = rd(in.src[0]) <= rd(in.src[1]);
                break;
              case Opcode::Sel:
                value = rd(in.src[0]) != 0 ? rd(in.src[1]) : rd(in.src[2]);
                break;

              case Opcode::Fadd:
                value = asI(asF(rd(in.src[0])) + asF(rd(in.src[1])));
                break;
              case Opcode::Fsub:
                value = asI(asF(rd(in.src[0])) - asF(rd(in.src[1])));
                break;
              case Opcode::Fmul:
                value = asI(asF(rd(in.src[0])) * asF(rd(in.src[1])));
                break;
              case Opcode::Fdiv:
                value = asI(asF(rd(in.src[0])) / asF(rd(in.src[1])));
                break;
              case Opcode::Fsqrt:
                value = asI(std::sqrt(asF(rd(in.src[0]))));
                break;
              case Opcode::Fma:
                value = asI(asF(rd(in.src[0])) * asF(rd(in.src[1])) +
                            asF(rd(in.src[2])));
                break;
              case Opcode::FcmpLt:
                value = asF(rd(in.src[0])) < asF(rd(in.src[1]));
                break;
              case Opcode::FcmpEq:
                value = asF(rd(in.src[0])) == asF(rd(in.src[1]));
                break;
              case Opcode::CvtIF:
                value = asI(static_cast<double>(rd(in.src[0])));
                break;
              case Opcode::CvtFI: {
                // Saturate out-of-range and NaN inputs; the bare host
                // cast is undefined there.
                const double f = asF(rd(in.src[0]));
                constexpr double kMax = 9223372036854775808.0;
                value = std::isnan(f) ? 0
                        : f >= kMax   ? std::numeric_limits<std::int64_t>::max()
                        : f < -kMax   ? std::numeric_limits<std::int64_t>::min()
                                      : static_cast<std::int64_t>(f);
                break;
              }

              case Opcode::Ld: {
                const Addr addr =
                    static_cast<Addr>(wrapAdd(rd(in.src[0]), in.imm));
                di.effAddr = addr;
                const std::uint64_t raw = mem_.read(addr, in.memSize);
                // Sign-extend via the predecoded shift (64 - 8*size).
                value = static_cast<std::int64_t>(raw << in.signShift) >>
                        in.signShift;
                di.memProd = sc.stores_.loadProducer(addr, in.memSize);
                break;
              }
              case Opcode::St: {
                const Addr addr =
                    static_cast<Addr>(wrapAdd(rd(in.src[0]), in.imm));
                di.effAddr = addr;
                value = rd(in.src[1]);
                mem_.write(addr, static_cast<std::uint64_t>(value),
                           in.memSize);
                sc.stores_.recordStore(addr, in.memSize,
                                       static_cast<std::int64_t>(dyn_idx));
                break;
              }

              case Opcode::Br: {
                const bool taken = rd(in.src[0]) != 0;
                di.branchTaken = taken;
                value = taken;
                next_block = taken ? in.target : in.fallthrough;
                next_index = 0;
                break;
              }
              case Opcode::Jmp:
                di.branchTaken = true;
                next_block = in.target;
                next_index = 0;
                break;

              case Opcode::Call: {
                if (sc.frames_.size() >= limits.maxCallDepth)
                    fatal("guest call depth exceeds %u",
                          limits.maxCallDepth);
                di.branchTaken = true;
                // Latch argument values before the frame push can
                // reallocate the register stack.
                std::array<std::int64_t, 3> argv{};
                int na = 0;
                for (RegId s : in.src) {
                    if (s != kNoReg)
                        argv[na++] = regs[s];
                }
                InterpScratch::Frame &nf =
                    sc.pushFrame(in.target, numRegs_[in.target], in.dst,
                                 next_block, next_index);
                for (int a = 0; a < na; ++a) {
                    sc.regs_[nf.regBase + a] = argv[a];
                    // Values flow through the call instruction.
                    sc.lastWriter_[nf.regBase + a] =
                        static_cast<std::int64_t>(dyn_idx);
                }
                writes = false; // dst written by the matching Ret
                next_block = 0;
                next_index = 0;
                frame_switched = true;
                break;
              }
              case Opcode::Ret: {
                di.branchTaken = true;
                const std::int64_t ret_val =
                    in.src[0] != kNoReg ? rd(in.src[0]) : 0;
                value = ret_val;
                const InterpScratch::Frame done = sc.frames_.back();
                sc.popFrame();
                if (sc.frames_.empty()) {
                    result.returnValue = ret_val;
                    next_block = -1;
                } else {
                    const InterpScratch::Frame &caller =
                        sc.frames_.back();
                    if (done.retDst != kNoReg) {
                        sc.regs_[caller.regBase + done.retDst] = ret_val;
                        sc.lastWriter_[caller.regBase + done.retDst] =
                            static_cast<std::int64_t>(dyn_idx);
                    }
                    next_block = done.retBlock;
                    next_index = done.retIndex;
                }
                frame_switched = true;
                break;
              }

              case Opcode::Nop:
                break;

              default:
                panic("interpreter cannot execute synthetic opcode '%s'",
                      std::string(opName(in.op)).c_str());
            }

            di.value = value;
            if (writes && !frame_switched) {
                regs[in.dst] = value;
                lastw[in.dst] = static_cast<std::int64_t>(dyn_idx);
            }

            ++bn;
            ++dyn_idx;
            ++result.instsExecuted;
            if (bn == kBatch) {
                emit(buf, bn, dyn_idx - bn);
                bn = 0;
            }

            if (sc.frames_.empty())
                break;
            block = next_block;
            index = next_index;
        }

        if (bn > 0)
            emit(buf, bn, dyn_idx - bn);
        return result;
    }

  private:
    /**
     * Predecoded instruction: everything the hot loop needs, resolved
     * once at construction (operand slots, mem size, sign-extension
     * shift, writeback flag, branch targets including the containing
     * block's fallthrough).
     */
    struct PInst
    {
        Opcode op = Opcode::Nop;
        std::uint8_t memSize = 0;   // 0 for non-memory ops
        std::uint8_t signShift = 0; // 64 - 8*memSize, for load sext
        std::uint8_t writes = 0;    // writesDst && dst != kNoReg
        RegId dst = kNoReg;
        std::array<RegId, 3> src{kNoReg, kNoReg, kNoReg};
        std::int32_t target = -1;
        std::int32_t fallthrough = -1;
        std::int64_t imm = 0;
        StaticId sid = kNoStatic;
    };

    struct PBlock
    {
        std::uint32_t first = 0; // index into pinsts_
        std::uint32_t count = 0;
    };

    const Program &prog_;
    SimMemory &mem_;

    // Predecode cache, indexed by blockBase_[func] + block.
    std::vector<PInst> pinsts_;
    std::vector<PBlock> pblocks_;
    std::vector<std::uint32_t> blockBase_;
    std::vector<std::uint32_t> numRegs_;
};

} // namespace prism

#endif // PRISM_SIM_INTERPRETER_HH
