/**
 * @file
 * Functional simulator for guest programs. Executes a Program against
 * a SimMemory, tracking true register and memory dependences, and
 * hands each retired instruction to a sink. This is Prism's equivalent
 * of the paper's gem5 front-end: it produces the dynamic information
 * stream the TDG constructor consumes.
 */

#ifndef PRISM_SIM_INTERPRETER_HH
#define PRISM_SIM_INTERPRETER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "prog/program.hh"
#include "sim/memory.hh"
#include "trace/dyn_inst.hh"

namespace prism
{

/** Execution budget limits. */
struct RunLimits
{
    std::uint64_t maxInsts = 10'000'000;
    unsigned maxCallDepth = 128;
};

/** Result of an interpreter run. */
struct RunResult
{
    std::int64_t returnValue = 0;
    std::uint64_t instsExecuted = 0;
    bool hitInstLimit = false;
};

/**
 * Executes guest programs instruction-at-a-time. Loads of sizes < 8
 * are sign-extended. The per-instruction sink receives a DynInst with
 * all architectural fields and dependence indices filled in;
 * microarchitectural annotation (cache latency, branch prediction) is
 * layered on by TraceGen.
 */
class Interpreter
{
  public:
    using Sink = std::function<void(DynInst &)>;

    Interpreter(const Program &prog, SimMemory &mem);

    /**
     * Run the entry function with the given integer arguments.
     * @param sink invoked once per retired instruction (may be empty).
     */
    RunResult run(const std::vector<std::int64_t> &args,
                  const Sink &sink = {}, const RunLimits &limits = {});

  private:
    struct Frame
    {
        std::int32_t func = 0;
        std::vector<std::int64_t> regs;
        std::vector<std::int64_t> lastWriter; // dyn idx, kNoProducer
        RegId retDst = kNoReg;                // caller reg for return
        std::int32_t retBlock = 0;            // caller resume point
        std::int32_t retIndex = 0;
    };

    const Program &prog_;
    SimMemory &mem_;
};

} // namespace prism

#endif // PRISM_SIM_INTERPRETER_HH
