/**
 * @file
 * Set-associative cache model with LRU replacement, composed into the
 * two-level hierarchy of the paper's methodology (Section 4): 64KiB
 * 2-way L1D / 32KiB 2-way L1I with 4-cycle latency, 2MB 8-way L2 with
 * 22-cycle hit latency. Load latencies produced here are embedded in
 * the trace, making the TDG input-dependent.
 */

#ifndef PRISM_SIM_CACHE_HH
#define PRISM_SIM_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace prism
{

/** Geometry and timing of one cache level. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 64 * 1024;
    unsigned assoc = 2;
    unsigned lineBytes = 64;
    unsigned hitLatency = 4;
};

/** One level of set-associative, write-allocate, LRU cache. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    /** Access a line; returns true on hit and updates LRU/contents. */
    bool access(Addr addr);

    /** True if the line is currently resident (no state change). */
    bool probe(Addr addr) const;

    const CacheConfig &config() const { return cfg_; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    /** Fraction of accesses that missed. */
    double missRate() const;

    /** Drop all contents and statistics. */
    void reset();

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        std::uint64_t lruStamp = 0;
    };

    std::size_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    CacheConfig cfg_;
    unsigned numSets_;
    unsigned lineShift_;
    std::vector<Line> lines_; // numSets_ x assoc, row-major
    std::uint64_t stamp_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

/** Timing parameters of the full hierarchy. */
struct HierarchyConfig
{
    CacheConfig l1d{64 * 1024, 2, 64, 4};
    CacheConfig l2{2 * 1024 * 1024, 8, 64, 22};
    unsigned memLatency = 100;
};

/**
 * Two-level data hierarchy. Returns full load-use latency for loads;
 * stores update cache state but retire through the store buffer.
 */
class CacheHierarchy
{
  public:
    explicit CacheHierarchy(const HierarchyConfig &cfg = {});

    /** Perform a load; returns its load-use latency in cycles. */
    unsigned load(Addr addr);

    /** Perform a store (write-allocate; no latency contribution). */
    void store(Addr addr);

    const Cache &l1d() const { return l1d_; }
    const Cache &l2() const { return l2_; }

    void reset();

  private:
    HierarchyConfig cfg_;
    Cache l1d_;
    Cache l2_;
};

} // namespace prism

#endif // PRISM_SIM_CACHE_HH
