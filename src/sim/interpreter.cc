#include "sim/interpreter.hh"

#include <bit>
#include <cmath>
#include <unordered_map>

#include "common/logging.hh"

namespace prism
{

namespace
{

double asF(std::int64_t v) { return std::bit_cast<double>(v); }
std::int64_t asI(double v) { return std::bit_cast<std::int64_t>(v); }

std::int64_t
signExtend(std::uint64_t raw, unsigned size)
{
    switch (size) {
      case 1: return static_cast<std::int8_t>(raw);
      case 2: return static_cast<std::int16_t>(raw);
      case 4: return static_cast<std::int32_t>(raw);
      default: return static_cast<std::int64_t>(raw);
    }
}

} // namespace

Interpreter::Interpreter(const Program &prog, SimMemory &mem)
    : prog_(prog), mem_(mem)
{
    prism_assert(prog.finalized(), "program must be finalized");
}

RunResult
Interpreter::run(const std::vector<std::int64_t> &args, const Sink &sink,
                 const RunLimits &limits)
{
    RunResult result;

    std::vector<Frame> stack;
    const std::int32_t entry = prog_.entryFunction();
    {
        const Function &fn = prog_.function(entry);
        prism_assert(args.size() == fn.numArgs,
                     "entry expects %d args, got %zu",
                     static_cast<int>(fn.numArgs), args.size());
        Frame f;
        f.func = entry;
        f.regs.assign(fn.numRegs, 0);
        f.lastWriter.assign(fn.numRegs, kNoProducer);
        for (std::size_t i = 0; i < args.size(); ++i)
            f.regs[i] = args[i];
        stack.push_back(std::move(f));
    }

    // Last store to each byte address, for memory-dependence tracking.
    std::unordered_map<Addr, std::int64_t> last_store;

    std::int32_t block = 0;
    std::int32_t index = 0;
    DynId dyn_idx = 0;

    while (!stack.empty()) {
        if (dyn_idx >= limits.maxInsts) {
            result.hitInstLimit = true;
            break;
        }
        Frame &frame = stack.back();
        const Function &fn = prog_.function(frame.func);
        const BasicBlock &bb = fn.blocks[block];
        prism_assert(index < static_cast<std::int32_t>(bb.instrs.size()),
                     "fell off the end of bb%d in '%s'", block,
                     fn.name.c_str());
        const Instr &in = bb.instrs[index];
        const OpInfo &oi = opInfo(in.op);

        DynInst di;
        di.sid = in.sid;
        di.op = in.op;
        di.memSize = (oi.isLoad || oi.isStore) ? in.memSize : 0;

        // Record register-source dependences.
        for (int s = 0; s < 3; ++s) {
            if (in.src[s] != kNoReg)
                di.srcProd[s] = frame.lastWriter[in.src[s]];
        }

        auto rd = [&frame](RegId r) { return frame.regs[r]; };

        std::int64_t value = 0;
        bool writes = oi.writesDst && in.dst != kNoReg;
        std::int32_t next_block = block;
        std::int32_t next_index = index + 1;
        bool frame_switched = false;

        switch (in.op) {
          case Opcode::Movi: value = in.imm; break;
          case Opcode::Mov: value = rd(in.src[0]); break;
          case Opcode::Add: value = rd(in.src[0]) + rd(in.src[1]); break;
          case Opcode::Sub: value = rd(in.src[0]) - rd(in.src[1]); break;
          case Opcode::And: value = rd(in.src[0]) & rd(in.src[1]); break;
          case Opcode::Or: value = rd(in.src[0]) | rd(in.src[1]); break;
          case Opcode::Xor: value = rd(in.src[0]) ^ rd(in.src[1]); break;
          case Opcode::Shl:
            value = rd(in.src[0]) << (rd(in.src[1]) & 63);
            break;
          case Opcode::Shr:
            value = static_cast<std::int64_t>(
                static_cast<std::uint64_t>(rd(in.src[0])) >>
                (rd(in.src[1]) & 63));
            break;
          case Opcode::Mul: value = rd(in.src[0]) * rd(in.src[1]); break;
          case Opcode::Div: {
            const std::int64_t d = rd(in.src[1]);
            value = d == 0 ? 0 : rd(in.src[0]) / d;
            break;
          }
          case Opcode::Rem: {
            const std::int64_t d = rd(in.src[1]);
            value = d == 0 ? 0 : rd(in.src[0]) % d;
            break;
          }
          case Opcode::CmpEq:
            value = rd(in.src[0]) == rd(in.src[1]);
            break;
          case Opcode::CmpLt:
            value = rd(in.src[0]) < rd(in.src[1]);
            break;
          case Opcode::CmpLe:
            value = rd(in.src[0]) <= rd(in.src[1]);
            break;
          case Opcode::Sel:
            value = rd(in.src[0]) != 0 ? rd(in.src[1]) : rd(in.src[2]);
            break;

          case Opcode::Fadd:
            value = asI(asF(rd(in.src[0])) + asF(rd(in.src[1])));
            break;
          case Opcode::Fsub:
            value = asI(asF(rd(in.src[0])) - asF(rd(in.src[1])));
            break;
          case Opcode::Fmul:
            value = asI(asF(rd(in.src[0])) * asF(rd(in.src[1])));
            break;
          case Opcode::Fdiv:
            value = asI(asF(rd(in.src[0])) / asF(rd(in.src[1])));
            break;
          case Opcode::Fsqrt:
            value = asI(std::sqrt(asF(rd(in.src[0]))));
            break;
          case Opcode::Fma:
            value = asI(asF(rd(in.src[0])) * asF(rd(in.src[1])) +
                        asF(rd(in.src[2])));
            break;
          case Opcode::FcmpLt:
            value = asF(rd(in.src[0])) < asF(rd(in.src[1]));
            break;
          case Opcode::FcmpEq:
            value = asF(rd(in.src[0])) == asF(rd(in.src[1]));
            break;
          case Opcode::CvtIF:
            value = asI(static_cast<double>(rd(in.src[0])));
            break;
          case Opcode::CvtFI:
            value = static_cast<std::int64_t>(asF(rd(in.src[0])));
            break;

          case Opcode::Ld: {
            const Addr addr =
                static_cast<Addr>(rd(in.src[0]) + in.imm);
            di.effAddr = addr;
            value = signExtend(mem_.read(addr, in.memSize), in.memSize);
            std::int64_t prod = kNoProducer;
            for (unsigned b = 0; b < in.memSize; ++b) {
                const auto it = last_store.find(addr + b);
                if (it != last_store.end() && it->second > prod)
                    prod = it->second;
            }
            di.memProd = prod;
            break;
          }
          case Opcode::St: {
            const Addr addr =
                static_cast<Addr>(rd(in.src[0]) + in.imm);
            di.effAddr = addr;
            value = rd(in.src[1]);
            mem_.write(addr, static_cast<std::uint64_t>(value),
                       in.memSize);
            for (unsigned b = 0; b < in.memSize; ++b)
                last_store[addr + b] = static_cast<std::int64_t>(dyn_idx);
            break;
          }

          case Opcode::Br: {
            const bool taken = rd(in.src[0]) != 0;
            di.branchTaken = taken;
            value = taken;
            if (taken) {
                next_block = in.target;
                next_index = 0;
            } else {
                next_block = bb.fallthrough;
                next_index = 0;
            }
            break;
          }
          case Opcode::Jmp:
            di.branchTaken = true;
            next_block = in.target;
            next_index = 0;
            break;

          case Opcode::Call: {
            if (stack.size() >= limits.maxCallDepth)
                fatal("guest call depth exceeds %u", limits.maxCallDepth);
            di.branchTaken = true;
            const Function &callee = prog_.function(in.target);
            Frame nf;
            nf.func = in.target;
            nf.regs.assign(callee.numRegs, 0);
            nf.lastWriter.assign(callee.numRegs, kNoProducer);
            int a = 0;
            for (RegId s : in.src) {
                if (s != kNoReg) {
                    nf.regs[a] = frame.regs[s];
                    // Values flow through the call instruction.
                    nf.lastWriter[a] =
                        static_cast<std::int64_t>(dyn_idx);
                    ++a;
                }
            }
            nf.retDst = in.dst;
            nf.retBlock = next_block;
            nf.retIndex = next_index;
            writes = false; // dst written by the matching Ret
            stack.push_back(std::move(nf));
            next_block = 0;
            next_index = 0;
            frame_switched = true;
            break;
          }
          case Opcode::Ret: {
            di.branchTaken = true;
            const std::int64_t ret_val =
                in.src[0] != kNoReg ? rd(in.src[0]) : 0;
            value = ret_val;
            const RegId ret_dst = frame.retDst;
            const std::int32_t ret_block = frame.retBlock;
            const std::int32_t ret_index = frame.retIndex;
            stack.pop_back();
            if (stack.empty()) {
                result.returnValue = ret_val;
                next_block = -1;
            } else {
                Frame &caller = stack.back();
                if (ret_dst != kNoReg) {
                    caller.regs[ret_dst] = ret_val;
                    caller.lastWriter[ret_dst] =
                        static_cast<std::int64_t>(dyn_idx);
                }
                next_block = ret_block;
                next_index = ret_index;
            }
            frame_switched = true;
            break;
          }

          case Opcode::Nop:
            break;

          default:
            panic("interpreter cannot execute synthetic opcode '%s'",
                  std::string(opName(in.op)).c_str());
        }

        di.value = value;
        if (writes && !frame_switched) {
            frame.regs[in.dst] = value;
            frame.lastWriter[in.dst] =
                static_cast<std::int64_t>(dyn_idx);
        }

        if (sink)
            sink(di);
        ++dyn_idx;
        ++result.instsExecuted;

        if (stack.empty())
            break;
        block = next_block;
        index = next_index;
    }

    return result;
}

} // namespace prism
