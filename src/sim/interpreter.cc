#include "sim/interpreter.hh"

namespace prism
{

Interpreter::Interpreter(const Program &prog, SimMemory &mem)
    : prog_(prog), mem_(mem)
{
    prism_assert(prog.finalized(), "program must be finalized");

    const auto &fns = prog.functions();
    std::size_t nblocks = 0;
    std::size_t ninsts = 0;
    for (const Function &fn : fns) {
        nblocks += fn.blocks.size();
        for (const BasicBlock &bb : fn.blocks)
            ninsts += bb.instrs.size();
    }
    blockBase_.reserve(fns.size());
    numRegs_.reserve(fns.size());
    pblocks_.reserve(nblocks);
    pinsts_.reserve(ninsts);

    for (const Function &fn : fns) {
        blockBase_.push_back(static_cast<std::uint32_t>(pblocks_.size()));
        numRegs_.push_back(fn.numRegs);
        for (const BasicBlock &bb : fn.blocks) {
            PBlock pb;
            pb.first = static_cast<std::uint32_t>(pinsts_.size());
            pb.count = static_cast<std::uint32_t>(bb.instrs.size());
            pblocks_.push_back(pb);
            for (const Instr &in : bb.instrs) {
                const OpInfo &oi = opInfo(in.op);
                PInst pi;
                pi.op = in.op;
                pi.memSize =
                    (oi.isLoad || oi.isStore) ? in.memSize : 0;
                pi.signShift = static_cast<std::uint8_t>(
                    pi.memSize != 0 ? 64 - 8 * pi.memSize : 0);
                pi.writes = oi.writesDst && in.dst != kNoReg;
                pi.dst = in.dst;
                pi.src = in.src;
                pi.target = in.target;
                pi.fallthrough = bb.fallthrough;
                pi.imm = in.imm;
                pi.sid = in.sid;
                pinsts_.push_back(pi);
            }
        }
    }
}

RunResult
Interpreter::run(const std::vector<std::int64_t> &args, const Sink &sink,
                 const RunLimits &limits)
{
    InterpScratch sc;
    if (!sink) {
        return runStream(
            args, sc, [](DynInst *, std::size_t, DynId) {}, limits);
    }
    return runStream(
        args, sc,
        [&sink](DynInst *d, std::size_t n, DynId) {
            for (std::size_t i = 0; i < n; ++i)
                sink(d[i]);
        },
        limits);
}

} // namespace prism
