#include "sim/trace_gen.hh"

#include "common/logging.hh"

namespace prism
{

std::unique_ptr<BranchPredictor>
makePredictor(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::Tournament:
        return std::make_unique<TournamentPredictor>();
      case PredictorKind::Gshare:
        return std::make_unique<GsharePredictor>();
      case PredictorKind::Bimodal:
        return std::make_unique<BimodalPredictor>();
      case PredictorKind::AlwaysTaken:
        return std::make_unique<StaticTakenPredictor>();
    }
    panic("unknown predictor kind");
}

TraceGenResult
generateTrace(const Program &prog, SimMemory &mem,
              const std::vector<std::int64_t> &args, Trace &out,
              const TraceGenConfig &cfg)
{
    FrontEnd fe(prog, mem, cfg);
    return fe.run(args, [&out](const DynInst *d, std::size_t n, DynId) {
        out.append(d, n);
    });
}

} // namespace prism
