#include "sim/trace_gen.hh"

#include "common/logging.hh"

namespace prism
{

std::unique_ptr<BranchPredictor>
makePredictor(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::Tournament:
        return std::make_unique<TournamentPredictor>();
      case PredictorKind::Gshare:
        return std::make_unique<GsharePredictor>();
      case PredictorKind::Bimodal:
        return std::make_unique<BimodalPredictor>();
      case PredictorKind::AlwaysTaken:
        return std::make_unique<StaticTakenPredictor>();
    }
    panic("unknown predictor kind");
}

TraceGenResult
generateTrace(const Program &prog, SimMemory &mem,
              const std::vector<std::int64_t> &args, Trace &out,
              const TraceGenConfig &cfg)
{
    CacheHierarchy caches(cfg.hierarchy);
    auto pred = makePredictor(cfg.predictor);

    Interpreter interp(prog, mem);
    RunLimits limits;
    limits.maxInsts = cfg.maxInsts;

    auto sink = [&](DynInst &di) {
        const OpInfo &oi = opInfo(di.op);
        if (oi.isLoad) {
            di.memLat =
                static_cast<std::uint16_t>(caches.load(di.effAddr));
        } else if (oi.isStore) {
            caches.store(di.effAddr);
            di.memLat = 1;
        }
        if (oi.isCondBranch) {
            di.mispredicted =
                !pred->predictAndUpdate(di.sid, di.branchTaken);
        }
        out.push(di);
    };

    const RunResult rr = interp.run(args, sink, limits);

    TraceGenResult res;
    res.returnValue = rr.returnValue;
    res.hitInstLimit = rr.hitInstLimit;
    res.l1dMissRate = caches.l1d().missRate();
    res.l2MissRate = caches.l2().missRate();
    return res;
}

} // namespace prism
