/**
 * @file
 * Trace generation: functional execution plus microarchitectural
 * annotation (cache-model load latencies, branch-predictor outcomes).
 * The result is the original, untransformed trace from which
 * TDG(GPP, none) is constructed — the paper's Figure 2 left edge.
 */

#ifndef PRISM_SIM_TRACE_GEN_HH
#define PRISM_SIM_TRACE_GEN_HH

#include <cstdint>
#include <vector>

#include "sim/branch_pred.hh"
#include "sim/cache.hh"
#include "sim/interpreter.hh"
#include "trace/dyn_inst.hh"

namespace prism
{

/** Which direction predictor annotates the trace. */
enum class PredictorKind { Tournament, Gshare, Bimodal, AlwaysTaken };

/** Trace-generation parameters. */
struct TraceGenConfig
{
    HierarchyConfig hierarchy{};
    PredictorKind predictor = PredictorKind::Tournament;
    std::uint64_t maxInsts = 2'000'000;
};

/** Outcome of trace generation. */
struct TraceGenResult
{
    std::int64_t returnValue = 0;
    bool hitInstLimit = false;
    double l1dMissRate = 0.0;
    double l2MissRate = 0.0;
};

/** Construct the predictor selected by `kind`. */
std::unique_ptr<BranchPredictor> makePredictor(PredictorKind kind);

/**
 * Execute the program's entry function with `args` against `mem`,
 * appending annotated dynamic instructions to `out`.
 */
TraceGenResult generateTrace(const Program &prog, SimMemory &mem,
                             const std::vector<std::int64_t> &args,
                             Trace &out,
                             const TraceGenConfig &cfg = {});

} // namespace prism

#endif // PRISM_SIM_TRACE_GEN_HH
