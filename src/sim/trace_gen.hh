/**
 * @file
 * Trace generation: functional execution plus microarchitectural
 * annotation (cache-model load latencies, branch-predictor outcomes).
 * The result is the original, untransformed trace from which
 * TDG(GPP, none) is constructed — the paper's Figure 2 left edge.
 *
 * FrontEnd is the streaming form: it owns the predecoded Interpreter,
 * the cache hierarchy, the predictors and a reusable InterpScratch,
 * and annotates retired DynInsts batch-at-a-time before handing them
 * to a templated consumer (the TDG builder, an MStream appender, or a
 * materializing Trace). Annotation is batched per retired block and
 * the predictor is dispatched once per run onto a concrete (final)
 * type, so the whole path inlines with zero steady-state allocations.
 */

#ifndef PRISM_SIM_TRACE_GEN_HH
#define PRISM_SIM_TRACE_GEN_HH

#include <cstdint>
#include <vector>

#include "sim/branch_pred.hh"
#include "sim/cache.hh"
#include "sim/interpreter.hh"
#include "trace/dyn_inst.hh"

namespace prism
{

/** Which direction predictor annotates the trace. */
enum class PredictorKind { Tournament, Gshare, Bimodal, AlwaysTaken };

/** Trace-generation parameters. */
struct TraceGenConfig
{
    HierarchyConfig hierarchy{};
    PredictorKind predictor = PredictorKind::Tournament;
    std::uint64_t maxInsts = 2'000'000;
};

/** Outcome of trace generation. */
struct TraceGenResult
{
    std::int64_t returnValue = 0;
    bool hitInstLimit = false;
    double l1dMissRate = 0.0;
    double l2MissRate = 0.0;
};

/** Construct the predictor selected by `kind`. */
std::unique_ptr<BranchPredictor> makePredictor(PredictorKind kind);

/**
 * Fused streaming front end: interpret → annotate in one pass.
 * Construct once per (program, memory) pair and reuse: repeated runs
 * reset the µarch models in place and allocate nothing once the
 * scratch reaches its high-water mark.
 */
class FrontEnd
{
  public:
    FrontEnd(const Program &prog, SimMemory &mem,
             const TraceGenConfig &cfg = {})
        : cfg_(cfg), interp_(prog, mem), caches_(cfg.hierarchy)
    {
    }

    /**
     * Execute the entry function with `args`, streaming annotated
     * DynInsts to `consume(DynInst *batch, std::size_t n, DynId base)`
     * where `base` is the dynamic index of batch[0].
     */
    template <class Consume>
    TraceGenResult
    run(const std::vector<std::int64_t> &args, Consume &&consume)
    {
        caches_.reset();
        RunLimits limits;
        limits.maxInsts = cfg_.maxInsts;

        RunResult rr;
        switch (cfg_.predictor) {
          case PredictorKind::Tournament:
            tournament_.reset();
            rr = runWith(tournament_, args, consume, limits);
            break;
          case PredictorKind::Gshare:
            gshare_.reset();
            rr = runWith(gshare_, args, consume, limits);
            break;
          case PredictorKind::Bimodal:
            bimodal_.reset();
            rr = runWith(bimodal_, args, consume, limits);
            break;
          case PredictorKind::AlwaysTaken:
            taken_.reset();
            rr = runWith(taken_, args, consume, limits);
            break;
        }

        TraceGenResult res;
        res.returnValue = rr.returnValue;
        res.hitInstLimit = rr.hitInstLimit;
        res.l1dMissRate = caches_.l1d().missRate();
        res.l2MissRate = caches_.l2().missRate();
        return res;
    }

    const TraceGenConfig &config() const { return cfg_; }

  private:
    /** Run with a concrete predictor type so annotation devirtualizes. */
    template <class Pred, class Consume>
    RunResult
    runWith(Pred &pred, const std::vector<std::int64_t> &args,
            Consume &consume, const RunLimits &limits)
    {
        return interp_.runStream(
            args, scratch_,
            [this, &pred, &consume](DynInst *d, std::size_t n,
                                    DynId base) {
                for (std::size_t i = 0; i < n; ++i) {
                    DynInst &di = d[i];
                    const OpInfo &oi = opInfo(di.op);
                    if (oi.isLoad) {
                        di.memLat = static_cast<std::uint16_t>(
                            caches_.load(di.effAddr));
                    } else if (oi.isStore) {
                        caches_.store(di.effAddr);
                        di.memLat = 1;
                    }
                    if (oi.isCondBranch) {
                        di.mispredicted =
                            !pred.predictAndUpdate(di.sid,
                                                   di.branchTaken);
                    }
                }
                consume(static_cast<const DynInst *>(d), n, base);
            },
            limits);
    }

    TraceGenConfig cfg_;
    Interpreter interp_;
    InterpScratch scratch_;
    CacheHierarchy caches_;
    TournamentPredictor tournament_;
    GsharePredictor gshare_;
    BimodalPredictor bimodal_;
    StaticTakenPredictor taken_;
};

/**
 * Execute the program's entry function with `args` against `mem`,
 * appending annotated dynamic instructions to `out`.
 */
TraceGenResult generateTrace(const Program &prog, SimMemory &mem,
                             const std::vector<std::int64_t> &args,
                             Trace &out,
                             const TraceGenConfig &cfg = {});

} // namespace prism

#endif // PRISM_SIM_TRACE_GEN_HH
