#include "sim/cache.hh"

#include <bit>

#include "common/logging.hh"

namespace prism
{

namespace
{

unsigned
log2Exact(std::uint64_t v)
{
    prism_assert(v != 0 && (v & (v - 1)) == 0, "value must be power of 2");
    return static_cast<unsigned>(std::countr_zero(v));
}

} // namespace

Cache::Cache(const CacheConfig &cfg) : cfg_(cfg)
{
    prism_assert(cfg.assoc > 0, "associativity must be positive");
    const std::uint64_t num_lines = cfg.sizeBytes / cfg.lineBytes;
    prism_assert(num_lines % cfg.assoc == 0, "geometry mismatch");
    numSets_ = static_cast<unsigned>(num_lines / cfg.assoc);
    prism_assert((numSets_ & (numSets_ - 1)) == 0,
                 "set count must be a power of two");
    lineShift_ = log2Exact(cfg.lineBytes);
    lines_.resize(static_cast<std::size_t>(numSets_) * cfg.assoc);
}

std::size_t
Cache::setIndex(Addr addr) const
{
    return static_cast<std::size_t>((addr >> lineShift_) & (numSets_ - 1));
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr >> lineShift_;
}

bool
Cache::access(Addr addr)
{
    const std::size_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    Line *base = &lines_[set * cfg_.assoc];
    ++stamp_;

    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lruStamp = stamp_;
            ++hits_;
            return true;
        }
    }

    Line *victim = nullptr;
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        Line &line = base[w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (victim == nullptr || line.lruStamp < victim->lruStamp)
            victim = &line;
    }

    ++misses_;
    victim->valid = true;
    victim->tag = tag;
    victim->lruStamp = stamp_;
    return false;
}

bool
Cache::probe(Addr addr) const
{
    const std::size_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    const Line *base = &lines_[set * cfg_.assoc];
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

double
Cache::missRate() const
{
    const std::uint64_t total = hits_ + misses_;
    return total ? static_cast<double>(misses_) /
                       static_cast<double>(total)
                 : 0.0;
}

void
Cache::reset()
{
    for (Line &line : lines_)
        line = Line{};
    stamp_ = hits_ = misses_ = 0;
}

CacheHierarchy::CacheHierarchy(const HierarchyConfig &cfg)
    : cfg_(cfg), l1d_(cfg.l1d), l2_(cfg.l2)
{
}

unsigned
CacheHierarchy::load(Addr addr)
{
    if (l1d_.access(addr))
        return cfg_.l1d.hitLatency;
    if (l2_.access(addr))
        return cfg_.l1d.hitLatency + cfg_.l2.hitLatency;
    return cfg_.l1d.hitLatency + cfg_.l2.hitLatency + cfg_.memLatency;
}

void
CacheHierarchy::store(Addr addr)
{
    if (!l1d_.access(addr))
        l2_.access(addr);
}

void
CacheHierarchy::reset()
{
    l1d_.reset();
    l2_.reset();
}

} // namespace prism
