#include "ir/dfg.hh"

#include <algorithm>
#include <set>

#include "common/logging.hh"

namespace prism
{

const std::vector<StaticId> Dfg::kEmpty{};

Dfg
Dfg::build(const Program &prog, std::int32_t func)
{
    Dfg dfg;
    dfg.func_ = func;
    const Function &fn = prog.function(func);
    dfg.defs_.resize(fn.numRegs);
    dfg.uses_.resize(fn.numRegs);

    for (const BasicBlock &bb : fn.blocks) {
        for (const Instr &in : bb.instrs) {
            if (in.dst != kNoReg)
                dfg.defs_[in.dst].push_back(in.sid);
            for (RegId s : in.src) {
                if (s != kNoReg)
                    dfg.uses_[s].push_back(in.sid);
            }
        }
    }
    return dfg;
}

const std::vector<StaticId> &
Dfg::defsOf(RegId r) const
{
    if (r >= defs_.size())
        return kEmpty;
    return defs_[r];
}

const std::vector<StaticId> &
Dfg::usesOf(RegId r) const
{
    if (r >= uses_.size())
        return kEmpty;
    return uses_[r];
}

bool
Dfg::invariantIn(const Program &prog, RegId r, const Loop &loop) const
{
    for (StaticId sid : defsOf(r)) {
        const InstrRef &ref = prog.locate(sid);
        if (ref.func == loop.func && loop.containsBlock(ref.block))
            return false;
    }
    return true;
}

std::vector<StaticId>
Dfg::backwardSlice(const Program &prog,
                   const std::vector<std::int32_t> &blocks,
                   const std::vector<StaticId> &seeds) const
{
    std::set<std::int32_t> block_set(blocks.begin(), blocks.end());
    auto in_region = [&](StaticId sid) {
        const InstrRef &ref = prog.locate(sid);
        return ref.func == func_ && block_set.count(ref.block) != 0;
    };

    std::set<StaticId> slice;
    std::vector<StaticId> work;
    for (StaticId s : seeds) {
        if (in_region(s) && slice.insert(s).second)
            work.push_back(s);
    }
    while (!work.empty()) {
        const StaticId sid = work.back();
        work.pop_back();
        const Instr &in = prog.instr(sid);
        for (RegId r : in.src) {
            if (r == kNoReg)
                continue;
            for (StaticId def : defsOf(r)) {
                if (in_region(def) && slice.insert(def).second)
                    work.push_back(def);
            }
        }
    }
    return {slice.begin(), slice.end()};
}

} // namespace prism
