/**
 * @file
 * Loop-carried register-dependence classification: induction
 * variables, reductions, and disqualifying recurrences. The SIMD
 * analysis excludes loops whose inter-iteration data dependences are
 * not inductions or reductions (paper Section 3.2).
 */

#ifndef PRISM_IR_INDUCTION_HH
#define PRISM_IR_INDUCTION_HH

#include <cstdint>
#include <vector>

#include "ir/dfg.hh"
#include "ir/loops.hh"
#include "prog/program.hh"
#include "trace/dyn_inst.hh"

namespace prism
{

/** Loop-carried register dependence summary for one innermost loop. */
struct LoopDepProfile
{
    std::int32_t loopId = -1;
    std::uint64_t carriedDeps = 0;        ///< dynamic carried edges seen
    std::vector<StaticId> inductions;     ///< i = i + invariant
    std::vector<StaticId> reductions;     ///< acc = acc (+|*) x
    bool otherRecurrence = false;         ///< disqualifying recurrence

    bool isInduction(StaticId sid) const;
    bool isReduction(StaticId sid) const;

    /** All carried dependences are vectorizable idioms. */
    bool vectorizableDeps() const { return !otherRecurrence; }
};

/**
 * Classify loop-carried register dependences of every innermost loop
 * from the trace. `dfgs` must hold one Dfg per function (indexed by
 * function id). Indexed by loop id.
 */
std::vector<LoopDepProfile> profileDeps(const Program &prog,
                                        const Trace &trace,
                                        const LoopForest &forest,
                                        const TraceLoopMap &map,
                                        const std::vector<Dfg> &dfgs);

/** Convenience: build per-function Dfgs for profileDeps. */
std::vector<Dfg> buildAllDfgs(const Program &prog);

} // namespace prism

#endif // PRISM_IR_INDUCTION_HH
