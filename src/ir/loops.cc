#include "ir/loops.hh"

#include <algorithm>
#include <map>
#include <set>

#include "common/logging.hh"

namespace prism
{

bool
Loop::containsBlock(std::int32_t block) const
{
    return std::binary_search(blocks.begin(), blocks.end(), block);
}

LoopForest
LoopForest::build(const Program &prog)
{
    LoopForest forest;
    forest.innermost_.resize(prog.functions().size());

    for (std::size_t fi = 0; fi < prog.functions().size(); ++fi) {
        const Function &fn = prog.functions()[fi];
        forest.innermost_[fi].assign(fn.blocks.size(), -1);

        const Cfg cfg = Cfg::reconstruct(prog,
                                         static_cast<std::int32_t>(fi));
        const Dominators dom = Dominators::compute(cfg);

        // Collect back edges grouped by header.
        std::map<std::int32_t, std::vector<std::int32_t>> latches_of;
        for (std::size_t b = 0; b < cfg.numNodes(); ++b) {
            for (std::int32_t s : cfg.node(b).succs) {
                if (dom.dominates(s, static_cast<std::int32_t>(b))) {
                    latches_of[s].push_back(
                        static_cast<std::int32_t>(b));
                }
            }
        }

        std::vector<Loop> fn_loops;
        for (const auto &[header, latches] : latches_of) {
            Loop loop;
            loop.func = static_cast<std::int32_t>(fi);
            loop.header = header;
            loop.latches = latches;

            // Natural loop body: reverse reachability from latches,
            // stopping at the header.
            std::set<std::int32_t> body{header};
            std::vector<std::int32_t> work(latches.begin(),
                                           latches.end());
            while (!work.empty()) {
                const std::int32_t b = work.back();
                work.pop_back();
                if (!body.insert(b).second)
                    continue;
                for (std::int32_t p : cfg.node(b).preds)
                    work.push_back(p);
            }
            loop.blocks.assign(body.begin(), body.end());

            for (std::int32_t b : loop.blocks) {
                for (std::int32_t s : cfg.node(b).succs) {
                    if (!body.count(s)) {
                        loop.exitBlocks.push_back(b);
                        break;
                    }
                }
                const BasicBlock &bb = fn.blocks[b];
                loop.numStaticInstrs +=
                    static_cast<std::uint32_t>(bb.instrs.size());
                for (const Instr &in : bb.instrs) {
                    if (opInfo(in.op).isCall)
                        loop.containsCall = true;
                }
            }
            fn_loops.push_back(std::move(loop));
        }

        // Nesting: parent = the smallest strictly-containing loop.
        for (std::size_t i = 0; i < fn_loops.size(); ++i) {
            std::int32_t best = -1;
            std::size_t best_size = SIZE_MAX;
            for (std::size_t j = 0; j < fn_loops.size(); ++j) {
                if (i == j)
                    continue;
                const Loop &outer = fn_loops[j];
                if (outer.blocks.size() <= fn_loops[i].blocks.size())
                    continue;
                if (outer.containsBlock(fn_loops[i].header) &&
                    std::includes(outer.blocks.begin(),
                                  outer.blocks.end(),
                                  fn_loops[i].blocks.begin(),
                                  fn_loops[i].blocks.end()) &&
                    outer.blocks.size() < best_size) {
                    best = static_cast<std::int32_t>(j);
                    best_size = outer.blocks.size();
                }
            }
            fn_loops[i].parent = best; // local index for now
        }

        // Assign global ids and fix up parent/children links.
        const std::int32_t base =
            static_cast<std::int32_t>(forest.loops_.size());
        for (std::size_t i = 0; i < fn_loops.size(); ++i) {
            fn_loops[i].id = base + static_cast<std::int32_t>(i);
            if (fn_loops[i].parent >= 0)
                fn_loops[i].parent += base;
        }
        for (auto &loop : fn_loops)
            forest.loops_.push_back(std::move(loop));
        for (std::int32_t id = base;
             id < static_cast<std::int32_t>(forest.loops_.size());
             ++id) {
            Loop &loop = forest.loops_[id];
            if (loop.parent >= 0) {
                forest.loops_[loop.parent].children.push_back(id);
                forest.loops_[loop.parent].innermost = false;
            }
        }
        // Depth: walk up parents.
        for (std::int32_t id = base;
             id < static_cast<std::int32_t>(forest.loops_.size());
             ++id) {
            Loop &loop = forest.loops_[id];
            loop.depth = 1;
            std::int32_t p = loop.parent;
            while (p >= 0) {
                ++loop.depth;
                p = forest.loops_[p].parent;
            }
        }
        // Innermost lookup: deepest loop containing each block.
        for (std::int32_t id = base;
             id < static_cast<std::int32_t>(forest.loops_.size());
             ++id) {
            const Loop &loop = forest.loops_[id];
            for (std::int32_t b : loop.blocks) {
                std::int32_t &slot = forest.innermost_[fi][b];
                if (slot == -1 ||
                    forest.loops_[slot].depth < loop.depth) {
                    slot = id;
                }
            }
        }
    }
    return forest;
}

std::int32_t
LoopForest::innermostAt(std::int32_t func, std::int32_t block) const
{
    return innermost_.at(func).at(block);
}

std::int32_t
LoopForest::innermostAtSid(const Program &prog, StaticId sid) const
{
    const InstrRef &ref = prog.locate(sid);
    return innermostAt(ref.func, ref.block);
}

std::vector<std::int32_t>
LoopForest::roots() const
{
    std::vector<std::int32_t> r;
    for (const Loop &loop : loops_) {
        if (loop.parent == -1)
            r.push_back(loop.id);
    }
    return r;
}

bool
LoopForest::nestedIn(std::int32_t inner, std::int32_t outer) const
{
    while (inner != -1) {
        if (inner == outer)
            return true;
        inner = loops_.at(inner).parent;
    }
    return false;
}

TraceLoopMap
mapTraceToLoops(const Program &prog, const Trace &trace,
                const LoopForest &forest)
{
    TraceLoopMap map;
    map.loopOf.assign(trace.size(), -1);
    map.occOf.assign(trace.size(), -1);

    struct Active
    {
        std::int32_t loopId;
        std::int32_t occIndex;
        unsigned entryDepth;
    };
    std::vector<Active> stack;
    unsigned depth = 0;

    auto close_top = [&](DynId end) {
        map.occurrences[stack.back().occIndex].end = end;
        stack.pop_back();
    };

    for (DynId i = 0; i < trace.size(); ++i) {
        const DynInst &di = trace[i];
        const InstrRef &ref = prog.locate(di.sid);

        // Pop loops whose frame has returned.
        while (!stack.empty() && depth < stack.back().entryDepth)
            close_top(i);

        const bool inherited =
            !stack.empty() && depth > stack.back().entryDepth;

        if (!inherited) {
            // Compute the chain of loops containing this block,
            // outermost first.
            std::vector<std::int32_t> chain;
            for (std::int32_t l = forest.innermostAt(ref.func,
                                                     ref.block);
                 l != -1; l = forest.loop(l).parent) {
                chain.push_back(l);
            }
            std::reverse(chain.begin(), chain.end());

            // Pop stack entries (at this depth) not in the chain.
            while (!stack.empty() &&
                   stack.back().entryDepth == depth) {
                const std::int32_t top = stack.back().loopId;
                const bool keep =
                    std::find(chain.begin(), chain.end(), top) !=
                    chain.end();
                if (keep)
                    break;
                close_top(i);
            }

            // Push chain entries not yet on the stack.
            std::size_t matched = 0;
            for (const Active &a : stack) {
                if (a.entryDepth == depth && matched < chain.size() &&
                    a.loopId == chain[matched]) {
                    ++matched;
                }
            }
            for (std::size_t c = matched; c < chain.size(); ++c) {
                LoopOccurrence occ;
                occ.loopId = chain[c];
                occ.begin = i;
                occ.end = i; // finalized on close
                map.occurrences.push_back(occ);
                stack.push_back(Active{
                    chain[c],
                    static_cast<std::int32_t>(map.occurrences.size()) -
                        1,
                    depth});
            }

            // Header-entry instructions begin iterations.
            if (!stack.empty() && ref.index == 0) {
                for (const Active &a : stack) {
                    const Loop &loop = forest.loop(a.loopId);
                    if (loop.func == ref.func &&
                        loop.header == ref.block) {
                        map.occurrences[a.occIndex].iterStarts
                            .push_back(i);
                    }
                }
            }
        }

        if (!stack.empty()) {
            map.loopOf[i] = stack.back().loopId;
            map.occOf[i] = stack.back().occIndex;
        }

        if (opInfo(di.op).isCall)
            ++depth;
        else if (opInfo(di.op).isRet && depth > 0)
            --depth;
    }

    const DynId end = trace.size();
    while (!stack.empty())
        close_top(end);

    return map;
}

} // namespace prism
