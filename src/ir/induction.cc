#include "ir/induction.hh"

#include <algorithm>
#include <memory>

#include "common/logging.hh"
#include "ir/dominators.hh"

namespace prism
{

namespace
{

bool
contains(const std::vector<StaticId> &v, StaticId s)
{
    return std::find(v.begin(), v.end(), s) != v.end();
}

/** dst is also one of the sources: the self-update idiom. */
bool
isSelfDep(const Instr &in)
{
    if (in.dst == kNoReg)
        return false;
    for (RegId s : in.src) {
        if (s != kNoReg && s == in.dst)
            return true;
    }
    return false;
}

/** The non-dst operand of a self-dep instruction (kNoReg if none). */
RegId
otherOperand(const Instr &in)
{
    for (RegId s : in.src) {
        if (s != kNoReg && s != in.dst)
            return s;
    }
    return kNoReg;
}

bool
isReductionOp(Opcode op)
{
    switch (op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Fadd:
      case Opcode::Fsub:
      case Opcode::Fmul:
      case Opcode::Fma:
        return true;
      default:
        return false;
    }
}

} // namespace

bool
LoopDepProfile::isInduction(StaticId sid) const
{
    return contains(inductions, sid);
}

bool
LoopDepProfile::isReduction(StaticId sid) const
{
    return contains(reductions, sid);
}

std::vector<Dfg>
buildAllDfgs(const Program &prog)
{
    std::vector<Dfg> dfgs;
    dfgs.reserve(prog.functions().size());
    for (std::size_t f = 0; f < prog.functions().size(); ++f)
        dfgs.push_back(Dfg::build(prog, static_cast<std::int32_t>(f)));
    return dfgs;
}

std::vector<LoopDepProfile>
profileDeps(const Program &prog, const Trace &trace,
            const LoopForest &forest, const TraceLoopMap &map,
            const std::vector<Dfg> &dfgs)
{
    std::vector<LoopDepProfile> profiles(forest.numLoops());
    for (const Loop &loop : forest.loops())
        profiles[loop.id].loopId = loop.id;

    // Dominator info per function, for the once-per-iteration check.
    std::vector<std::unique_ptr<Dominators>> doms(
        prog.functions().size());
    std::vector<std::unique_ptr<Cfg>> cfgs(prog.functions().size());
    auto dom_of = [&](std::int32_t func) -> const Dominators & {
        if (!doms[func]) {
            cfgs[func] = std::make_unique<Cfg>(
                Cfg::reconstruct(prog, func));
            doms[func] = std::make_unique<Dominators>(
                Dominators::compute(*cfgs[func]));
        }
        return *doms[func];
    };

    // Pass 1: statically classify self-dependent updates per loop.
    // A valid induction/reduction must execute exactly once per
    // iteration: its block has to dominate every latch (conditional
    // updates, as in a merge loop's index advances, disqualify).
    for (const Loop &loop : forest.loops()) {
        if (!loop.innermost)
            continue;
        LoopDepProfile &prof = profiles[loop.id];
        const Function &fn = prog.function(loop.func);
        const Dfg &dfg = dfgs.at(loop.func);
        const Dominators &dom = dom_of(loop.func);
        for (std::int32_t b : loop.blocks) {
            bool every_iteration = true;
            for (std::int32_t latch : loop.latches)
                every_iteration &= dom.dominates(b, latch);
            if (!every_iteration)
                continue;
            for (const Instr &in : fn.blocks[b].instrs) {
                if (!isSelfDep(in))
                    continue;
                const RegId other = otherOperand(in);
                const bool other_inv =
                    other == kNoReg ||
                    dfg.invariantIn(prog, other, loop);
                if ((in.op == Opcode::Add || in.op == Opcode::Sub) &&
                    other_inv) {
                    prof.inductions.push_back(in.sid);
                } else if (isReductionOp(in.op)) {
                    prof.reductions.push_back(in.sid);
                }
                // Self-dep with a non-arithmetic op is handled in
                // pass 2 as an observed recurrence.
            }
        }
    }

    // Pass 2: walk dynamic carried dependences; anything whose
    // producer is not an induction and that is not itself a
    // classified self-update is a disqualifying recurrence.
    for (const LoopOccurrence &occ : map.occurrences) {
        const Loop &loop = forest.loop(occ.loopId);
        if (!loop.innermost)
            continue;
        LoopDepProfile &prof = profiles[loop.id];

        auto iter_of = [&occ](DynId idx) -> std::int64_t {
            const auto it = std::upper_bound(occ.iterStarts.begin(),
                                             occ.iterStarts.end(), idx);
            return static_cast<std::int64_t>(
                       it - occ.iterStarts.begin()) - 1;
        };

        for (DynId i = occ.begin; i < occ.end; ++i) {
            const DynInst &di = trace[i];
            const InstrRef &ref = prog.locate(di.sid);
            if (ref.func != loop.func || !loop.containsBlock(ref.block))
                continue;
            const std::int64_t my_iter = iter_of(i);
            for (std::int64_t p : di.srcProd) {
                if (p == kNoProducer ||
                    static_cast<DynId>(p) < occ.begin ||
                    static_cast<DynId>(p) >= i) {
                    continue;
                }
                const std::int64_t prod_iter =
                    iter_of(static_cast<DynId>(p));
                if (prod_iter < 0 || prod_iter >= my_iter)
                    continue; // same-iteration dependence
                ++prof.carriedDeps;

                const StaticId prod_sid = trace[p].sid;
                if (prof.isInduction(prod_sid))
                    continue; // reading an induction is benign
                if (prod_sid == di.sid &&
                    (prof.isInduction(di.sid) ||
                     prof.isReduction(di.sid))) {
                    continue; // the classified self-update itself
                }
                prof.otherRecurrence = true;
            }
        }
    }
    return profiles;
}

} // namespace prism
