/**
 * @file
 * Ball-Larus path profiling over innermost loops. The Trace-P BSA
 * uses this to identify hot traces (the paper cites Ball-Larus [4]
 * and requires loop-back probability > 80%); SIMD uses the per-path
 * instruction counts for its if-conversion profitability estimate.
 */

#ifndef PRISM_IR_PATH_PROFILE_HH
#define PRISM_IR_PATH_PROFILE_HH

#include <cstdint>
#include <map>
#include <vector>

#include "ir/loops.hh"
#include "prog/program.hh"
#include "trace/dyn_inst.hh"

namespace prism
{

/**
 * Ball-Larus numbering of the acyclic paths of one innermost loop's
 * body (back edges removed; every edge leaving the body or returning
 * to the header terminates a path).
 */
class BallLarusDag
{
  public:
    /** Build the numbering for an innermost loop. */
    BallLarusDag(const Program &prog, const Cfg &cfg, const Loop &loop);

    /** Total number of distinct acyclic paths through the body. */
    std::uint64_t numPaths() const { return numPaths_; }

    /**
     * Path-sum increment for the in-body transition from block `from`
     * to block `to`; -1 if there is no such DAG edge.
     */
    std::int64_t edgeValue(std::int32_t from, std::int32_t to) const;

    /**
     * Increment for the path-terminating edge out of `from` (back
     * edge to the header or loop exit toward `to`; `to` may be any
     * non-body block or the header).
     */
    std::int64_t exitValue(std::int32_t from, std::int32_t to) const;

    /** Recover the block sequence of a path id (starts at header). */
    std::vector<std::int32_t> decode(std::uint64_t path_id) const;

  private:
    struct DagEdge
    {
        std::int32_t to;      ///< body block, or -1 for EXIT
        std::int32_t cfgTo;   ///< underlying CFG successor
        std::uint64_t value;
    };

    const Loop &loop_;
    std::int32_t header_;
    std::map<std::int32_t, std::vector<DagEdge>> succs_; // per block
    std::map<std::int32_t, std::uint64_t> numPathsFrom_;
    std::uint64_t numPaths_ = 0;
};

/** Execution-frequency profile of one loop's acyclic paths. */
struct PathProfile
{
    std::int32_t loopId = -1;
    std::uint64_t totalIters = 0;   ///< completed path instances
    std::uint64_t backEdgeTaken = 0;///< iterations continuing the loop
    std::uint64_t numStaticPaths = 0;

    struct PathInfo
    {
        std::uint64_t id = 0;
        std::uint64_t count = 0;
        std::vector<std::int32_t> blocks;
    };
    std::vector<PathInfo> paths;    ///< sorted by count, descending

    /** Probability an iteration loops back rather than exits. */
    double loopBackProbability() const;

    /** Fraction of iterations following the hottest path. */
    double hotPathFraction() const;

    /** The most frequent path, or nullptr if never executed. */
    const PathInfo *hottest() const;
};

/**
 * Profile every innermost loop of the program over a trace.
 * Returned vector is indexed by loop id (non-innermost loops get an
 * empty profile with numStaticPaths == 0).
 */
std::vector<PathProfile> profilePaths(const Program &prog,
                                      const Trace &trace,
                                      const LoopForest &forest,
                                      const TraceLoopMap &map);

} // namespace prism

#endif // PRISM_IR_PATH_PROFILE_HH
