/**
 * @file
 * Static data-flow facts reconstructed from the binary view: register
 * definition sites per function, and loop-invariance queries used by
 * the induction/reduction classifier and the DP-CGRA slicer.
 */

#ifndef PRISM_IR_DFG_HH
#define PRISM_IR_DFG_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ir/loops.hh"
#include "prog/program.hh"

namespace prism
{

/** Per-function def/use index. */
class Dfg
{
  public:
    /** Build for one function. */
    static Dfg build(const Program &prog, std::int32_t func);

    std::int32_t funcId() const { return func_; }

    /** Static ids of instructions writing register r. */
    const std::vector<StaticId> &defsOf(RegId r) const;

    /** Static ids of instructions reading register r. */
    const std::vector<StaticId> &usesOf(RegId r) const;

    /** True if r has no definition inside the given loop's body. */
    bool invariantIn(const Program &prog, RegId r,
                     const Loop &loop) const;

    /**
     * Backward slice within a block set: starting from `seeds`,
     * repeatedly add in-set instructions that define registers the
     * slice reads. Returns the slice as a set of static ids (sorted).
     */
    std::vector<StaticId> backwardSlice(
        const Program &prog, const std::vector<std::int32_t> &blocks,
        const std::vector<StaticId> &seeds) const;

  private:
    std::int32_t func_ = -1;
    std::vector<std::vector<StaticId>> defs_; // per reg
    std::vector<std::vector<StaticId>> uses_; // per reg
    static const std::vector<StaticId> kEmpty;
};

} // namespace prism

#endif // PRISM_IR_DFG_HH
