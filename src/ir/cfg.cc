#include "ir/cfg.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace prism
{

Cfg
Cfg::reconstruct(const Program &prog, std::int32_t func)
{
    prism_assert(prog.finalized(), "program must be finalized");
    const Function &fn = prog.function(func);

    Cfg cfg;
    cfg.func_ = func;
    cfg.nodes_.resize(fn.blocks.size());

    for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
        const BasicBlock &bb = fn.blocks[b];
        CfgNode &node = cfg.nodes_[b];
        node.block = static_cast<std::int32_t>(b);
        node.firstSid = bb.instrs.front().sid;
        node.lastSid = bb.instrs.back().sid;

        const Instr *term = bb.terminator();
        prism_assert(term != nullptr, "unterminated block reached CFG");
        switch (term->op) {
          case Opcode::Br:
            node.succs.push_back(term->target);
            if (bb.fallthrough != term->target)
                node.succs.push_back(bb.fallthrough);
            break;
          case Opcode::Jmp:
            node.succs.push_back(term->target);
            break;
          case Opcode::Ret:
            break;
          default:
            panic("unexpected terminator");
        }
    }

    for (std::size_t b = 0; b < cfg.nodes_.size(); ++b) {
        for (std::int32_t s : cfg.nodes_[b].succs)
            cfg.nodes_[s].preds.push_back(static_cast<std::int32_t>(b));
    }

    // Iterative DFS to compute postorder, then reverse it.
    std::vector<std::int32_t> postorder;
    std::vector<std::uint8_t> state(cfg.nodes_.size(), 0); // 0/1/2
    std::vector<std::pair<std::int32_t, std::size_t>> stack;
    stack.emplace_back(0, 0);
    state[0] = 1;
    while (!stack.empty()) {
        auto &[n, edge] = stack.back();
        const CfgNode &node = cfg.nodes_[n];
        if (edge < node.succs.size()) {
            const std::int32_t s = node.succs[edge++];
            if (state[s] == 0) {
                state[s] = 1;
                stack.emplace_back(s, 0);
            }
        } else {
            state[n] = 2;
            postorder.push_back(n);
            stack.pop_back();
        }
    }
    cfg.rpo_.assign(postorder.rbegin(), postorder.rend());
    cfg.rpoIndex_.assign(cfg.nodes_.size(), -1);
    for (std::size_t i = 0; i < cfg.rpo_.size(); ++i)
        cfg.rpoIndex_[cfg.rpo_[i]] = static_cast<std::int32_t>(i);

    return cfg;
}

std::string
Cfg::toDot() const
{
    std::ostringstream os;
    os << "digraph cfg_f" << func_ << " {\n";
    for (const CfgNode &n : nodes_) {
        os << "  bb" << n.block << ";\n";
        for (std::int32_t s : n.succs)
            os << "  bb" << n.block << " -> bb" << s << ";\n";
    }
    os << "}\n";
    return os.str();
}

} // namespace prism
