/**
 * @file
 * Dynamic memory profiling per innermost loop: per-static-access
 * stride detection (contiguity for SIMD), and detection of
 * loop-carried store-to-load dependences, which the paper's SIMD
 * analysis uses to (optimistically) decide vectorization legality
 * from the trace (Section 2.7).
 */

#ifndef PRISM_IR_MEM_PROFILE_HH
#define PRISM_IR_MEM_PROFILE_HH

#include <cstdint>
#include <vector>

#include "ir/loops.hh"
#include "prog/program.hh"
#include "trace/dyn_inst.hh"

namespace prism
{

/** Observed dynamic address pattern of one static memory access. */
struct MemAccessPattern
{
    StaticId sid = kNoStatic;
    bool isLoad = false;
    std::uint8_t memSize = 0;
    std::uint64_t count = 0;     ///< dynamic executions inside the loop

    bool strideKnown = false;    ///< no inconsistent stride was observed
    bool strideSet = false;      ///< some occurrence measured a stride
    std::int64_t stride = 0;     ///< bytes between consecutive accesses

    /** Unit-stride access (stride == access size): vectorizable
     *  without packing. */
    bool contiguous() const
    {
        return strideKnown && stride == static_cast<std::int64_t>(memSize);
    }

    /** Address is invariant across iterations. */
    bool invariantAddress() const { return strideKnown && stride == 0; }
};

/** Memory behavior of one innermost loop. */
struct LoopMemProfile
{
    std::int32_t loopId = -1;
    std::uint64_t itersObserved = 0;
    bool loopCarriedStoreToLoad = false;
    std::vector<MemAccessPattern> accesses;

    /** Pattern for a static access, or nullptr. */
    const MemAccessPattern *find(StaticId sid) const;

    /** Fraction of accesses that are unit-stride. */
    double contiguousFraction() const;
};

/**
 * Profile all innermost loops over a trace. Indexed by loop id;
 * non-innermost loops get a default-constructed profile.
 */
std::vector<LoopMemProfile> profileMemory(const Program &prog,
                                          const Trace &trace,
                                          const LoopForest &forest,
                                          const TraceLoopMap &map);

} // namespace prism

#endif // PRISM_IR_MEM_PROFILE_HH
