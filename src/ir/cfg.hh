/**
 * @file
 * Control-flow graph reconstruction. The paper's TDG constructor
 * rebuilds a Program IR (CFG + DFG + loop nests) from the binary and
 * the instruction stream; this module is that reconstruction, working
 * from the flattened binary-like view of a guest Program.
 */

#ifndef PRISM_IR_CFG_HH
#define PRISM_IR_CFG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "prog/program.hh"

namespace prism
{

/** One CFG node (a basic block of one function). */
struct CfgNode
{
    std::int32_t block = -1;            ///< block index in the function
    std::vector<std::int32_t> succs;    ///< successor block indices
    std::vector<std::int32_t> preds;    ///< predecessor block indices
    StaticId firstSid = kNoStatic;
    StaticId lastSid = kNoStatic;
};

/** The CFG of a single function. Node i corresponds to block i. */
class Cfg
{
  public:
    /** Rebuild the CFG of `func` from terminators in the flat view. */
    static Cfg reconstruct(const Program &prog, std::int32_t func);

    std::int32_t funcId() const { return func_; }
    std::size_t numNodes() const { return nodes_.size(); }
    const CfgNode &node(std::int32_t i) const { return nodes_.at(i); }
    std::int32_t entry() const { return 0; }

    /** Reverse postorder from the entry (unreachable blocks absent). */
    const std::vector<std::int32_t> &rpo() const { return rpo_; }

    /** Position of each block in rpo(); -1 when unreachable. */
    std::int32_t rpoIndex(std::int32_t block) const
    {
        return rpoIndex_.at(block);
    }

    /** Graphviz dump for debugging. */
    std::string toDot() const;

  private:
    std::int32_t func_ = -1;
    std::vector<CfgNode> nodes_;
    std::vector<std::int32_t> rpo_;
    std::vector<std::int32_t> rpoIndex_;
};

} // namespace prism

#endif // PRISM_IR_CFG_HH
