#include "ir/dominators.hh"

#include "common/logging.hh"

namespace prism
{

Dominators
Dominators::compute(const Cfg &cfg)
{
    const std::size_t n = cfg.numNodes();
    Dominators dom;
    dom.idom_.assign(n, -1);

    const auto &rpo = cfg.rpo();
    const std::int32_t entry = cfg.entry();
    dom.idom_[entry] = entry;

    auto intersect = [&](std::int32_t a, std::int32_t b) {
        while (a != b) {
            while (cfg.rpoIndex(a) > cfg.rpoIndex(b))
                a = dom.idom_[a];
            while (cfg.rpoIndex(b) > cfg.rpoIndex(a))
                b = dom.idom_[b];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (std::int32_t b : rpo) {
            if (b == entry)
                continue;
            std::int32_t new_idom = -1;
            for (std::int32_t p : cfg.node(b).preds) {
                if (dom.idom_[p] == -1)
                    continue; // pred not yet processed / unreachable
                new_idom = new_idom == -1 ? p : intersect(p, new_idom);
            }
            if (new_idom != -1 && dom.idom_[b] != new_idom) {
                dom.idom_[b] = new_idom;
                changed = true;
            }
        }
    }

    dom.depth_.assign(n, -1);
    dom.depth_[entry] = 0;
    // rpo order guarantees idom precedes its children in depth calc.
    for (std::int32_t b : rpo) {
        if (b == entry || dom.idom_[b] == -1)
            continue;
        dom.depth_[b] = dom.depth_[dom.idom_[b]] + 1;
    }
    return dom;
}

bool
Dominators::dominates(std::int32_t a, std::int32_t b) const
{
    if (idom_.at(b) == -1 || idom_.at(a) == -1)
        return false; // unreachable
    while (true) {
        if (a == b)
            return true;
        const std::int32_t up = idom_[b];
        if (up == b)
            return false; // reached entry
        b = up;
    }
}

} // namespace prism
