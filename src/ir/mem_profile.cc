#include "ir/mem_profile.hh"

#include <algorithm>
#include <unordered_map>

#include "common/logging.hh"

namespace prism
{

const MemAccessPattern *
LoopMemProfile::find(StaticId sid) const
{
    for (const MemAccessPattern &p : accesses) {
        if (p.sid == sid)
            return &p;
    }
    return nullptr;
}

double
LoopMemProfile::contiguousFraction() const
{
    if (accesses.empty())
        return 0.0;
    std::uint64_t total = 0;
    std::uint64_t contig = 0;
    for (const MemAccessPattern &p : accesses) {
        total += p.count;
        if (p.contiguous())
            contig += p.count;
    }
    return total ? static_cast<double>(contig) /
                       static_cast<double>(total)
                 : 0.0;
}

std::vector<LoopMemProfile>
profileMemory(const Program &prog, const Trace &trace,
              const LoopForest &forest, const TraceLoopMap &map)
{
    std::vector<LoopMemProfile> profiles(forest.numLoops());
    for (const Loop &loop : forest.loops())
        profiles[loop.id].loopId = loop.id;

    // Scratch per static access: last address + current stride state.
    struct Scratch
    {
        Addr lastAddr = 0;
        bool seen = false;
        bool strideSet = false;
        std::int64_t stride = 0;
        bool inconsistent = false;
        std::uint64_t count = 0;
    };

    for (const LoopOccurrence &occ : map.occurrences) {
        const Loop &loop = forest.loop(occ.loopId);
        if (!loop.innermost)
            continue;
        LoopMemProfile &prof = profiles[loop.id];
        prof.itersObserved += occ.numIters();

        std::unordered_map<StaticId, Scratch> scratch;
        std::size_t iter_cursor = 0;

        auto iter_of = [&occ](DynId idx) -> std::int64_t {
            // Index of the iteration containing dyn idx (binary search).
            const auto it = std::upper_bound(occ.iterStarts.begin(),
                                             occ.iterStarts.end(), idx);
            return static_cast<std::int64_t>(
                       it - occ.iterStarts.begin()) - 1;
        };

        for (DynId i = occ.begin; i < occ.end; ++i) {
            while (iter_cursor < occ.iterStarts.size() &&
                   occ.iterStarts[iter_cursor] <= i) {
                ++iter_cursor;
            }
            const DynInst &di = trace[i];
            const OpInfo &oi = opInfo(di.op);
            if (!oi.isLoad && !oi.isStore)
                continue;
            const InstrRef &ref = prog.locate(di.sid);
            if (ref.func != loop.func || !loop.containsBlock(ref.block))
                continue; // inherited callee instruction

            Scratch &s = scratch[di.sid];
            ++s.count;
            if (s.seen) {
                const std::int64_t delta =
                    static_cast<std::int64_t>(di.effAddr) -
                    static_cast<std::int64_t>(s.lastAddr);
                if (!s.strideSet) {
                    s.stride = delta;
                    s.strideSet = true;
                } else if (delta != s.stride) {
                    s.inconsistent = true;
                }
            }
            s.seen = true;
            s.lastAddr = di.effAddr;

            // Loop-carried store-to-load dependence check.
            if (oi.isLoad && di.memProd != kNoProducer &&
                static_cast<DynId>(di.memProd) >= occ.begin &&
                static_cast<DynId>(di.memProd) < i) {
                const std::int64_t prod_iter =
                    iter_of(static_cast<DynId>(di.memProd));
                const std::int64_t my_iter = iter_of(i);
                if (prod_iter >= 0 && prod_iter < my_iter)
                    prof.loopCarriedStoreToLoad = true;
            }
        }

        // Merge occurrence-local scratch into the loop profile.
        for (const auto &[sid, s] : scratch) {
            MemAccessPattern *p = nullptr;
            for (MemAccessPattern &cand : prof.accesses) {
                if (cand.sid == sid) {
                    p = &cand;
                    break;
                }
            }
            if (p == nullptr) {
                MemAccessPattern np;
                np.sid = sid;
                const Instr &in = prog.instr(sid);
                np.isLoad = opInfo(in.op).isLoad;
                np.memSize = in.memSize;
                np.strideKnown = true; // refined below
                prof.accesses.push_back(np);
                p = &prof.accesses.back();
            }
            p->count += s.count;
            if (s.inconsistent || !s.strideSet) {
                // One execution gives no stride evidence; keep known
                // only if a stride was consistently observed.
                if (s.inconsistent)
                    p->strideKnown = false;
            } else if (p->strideKnown) {
                // `strideSet`, not a count comparison: an earlier
                // occurrence may have contributed single executions
                // without ever measuring a stride.
                if (!p->strideSet) {
                    p->stride = s.stride;
                    p->strideSet = true;
                } else if (p->stride != s.stride) {
                    p->strideKnown = false;
                }
            }
        }
    }
    return profiles;
}

} // namespace prism
