#include "ir/path_profile.hh"

#include <algorithm>
#include <memory>

#include "common/logging.hh"

namespace prism
{

BallLarusDag::BallLarusDag(const Program &prog, const Cfg &cfg,
                           const Loop &loop)
    : loop_(loop), header_(loop.header)
{
    // DAG successor lists: body edges stay, edges to the header (back
    // edges) and out of the body become EXIT edges.
    for (std::int32_t b : loop.blocks) {
        auto &out = succs_[b];
        for (std::int32_t s : cfg.node(b).succs) {
            DagEdge e;
            e.cfgTo = s;
            e.to = (s != header_ && loop.containsBlock(s)) ? s : -1;
            e.value = 0;
            out.push_back(e);
        }
        (void)prog;
    }

    // Reverse topological order via DFS over body edges.
    std::vector<std::int32_t> order;
    std::map<std::int32_t, std::uint8_t> state;
    std::vector<std::pair<std::int32_t, std::size_t>> stack;
    stack.emplace_back(header_, 0);
    state[header_] = 1;
    while (!stack.empty()) {
        auto &[n, edge] = stack.back();
        auto &out = succs_[n];
        if (edge < out.size()) {
            const DagEdge &e = out[edge++];
            if (e.to != -1 && state[e.to] == 0) {
                state[e.to] = 1;
                stack.emplace_back(e.to, 0);
            }
        } else {
            order.push_back(n);
            stack.pop_back();
        }
    }

    // numPathsFrom in postorder (children before parents), and edge
    // values as running prefix sums.
    for (std::int32_t b : order) {
        std::uint64_t sum = 0;
        for (DagEdge &e : succs_[b]) {
            e.value = sum;
            sum += e.to == -1 ? 1 : numPathsFrom_.at(e.to);
        }
        numPathsFrom_[b] = sum;
    }
    numPaths_ = numPathsFrom_.count(header_) ? numPathsFrom_[header_]
                                             : 0;
}

std::int64_t
BallLarusDag::edgeValue(std::int32_t from, std::int32_t to) const
{
    const auto it = succs_.find(from);
    if (it == succs_.end())
        return -1;
    for (const DagEdge &e : it->second) {
        if (e.to == to && e.to != -1)
            return static_cast<std::int64_t>(e.value);
    }
    return -1;
}

std::int64_t
BallLarusDag::exitValue(std::int32_t from, std::int32_t to) const
{
    const auto it = succs_.find(from);
    if (it == succs_.end())
        return -1;
    for (const DagEdge &e : it->second) {
        if (e.to == -1 && e.cfgTo == to)
            return static_cast<std::int64_t>(e.value);
    }
    return -1;
}

std::vector<std::int32_t>
BallLarusDag::decode(std::uint64_t path_id) const
{
    std::vector<std::int32_t> blocks{header_};
    std::int32_t cur = header_;
    std::uint64_t rem = path_id;

    while (true) {
        const auto it = succs_.find(cur);
        prism_assert(it != succs_.end(), "decode walked out of loop");
        // Choose the last edge whose value is <= rem.
        const DagEdge *chosen = nullptr;
        for (const DagEdge &e : it->second) {
            if (e.value <= rem)
                chosen = &e;
        }
        prism_assert(chosen != nullptr, "bad path id");
        rem -= chosen->value;
        if (chosen->to == -1)
            return blocks;
        cur = chosen->to;
        blocks.push_back(cur);
    }
}

double
PathProfile::loopBackProbability() const
{
    return totalIters ? static_cast<double>(backEdgeTaken) /
                            static_cast<double>(totalIters)
                      : 0.0;
}

double
PathProfile::hotPathFraction() const
{
    const PathInfo *h = hottest();
    return h && totalIters ? static_cast<double>(h->count) /
                                 static_cast<double>(totalIters)
                           : 0.0;
}

const PathProfile::PathInfo *
PathProfile::hottest() const
{
    return paths.empty() ? nullptr : &paths.front();
}

std::vector<PathProfile>
profilePaths(const Program &prog, const Trace &trace,
             const LoopForest &forest, const TraceLoopMap &map)
{
    std::vector<PathProfile> profiles(forest.numLoops());
    std::vector<std::unique_ptr<BallLarusDag>> dags(forest.numLoops());
    std::vector<std::map<std::uint64_t, std::uint64_t>> counts(
        forest.numLoops());

    // Build DAGs for innermost loops (one Cfg per function, lazily).
    std::vector<std::unique_ptr<Cfg>> cfgs(prog.functions().size());
    for (const Loop &loop : forest.loops()) {
        profiles[loop.id].loopId = loop.id;
        if (!loop.innermost)
            continue;
        if (!cfgs[loop.func]) {
            cfgs[loop.func] = std::make_unique<Cfg>(
                Cfg::reconstruct(prog, loop.func));
        }
        dags[loop.id] =
            std::make_unique<BallLarusDag>(prog, *cfgs[loop.func], loop);
        profiles[loop.id].numStaticPaths = dags[loop.id]->numPaths();
    }

    for (const LoopOccurrence &occ : map.occurrences) {
        const Loop &loop = forest.loop(occ.loopId);
        if (!loop.innermost)
            continue;
        const BallLarusDag &dag = *dags[loop.id];
        PathProfile &prof = profiles[loop.id];

        std::uint64_t path_sum = 0;
        bool in_path = false;
        for (DynId i = occ.begin; i < occ.end; ++i) {
            const DynInst &di = trace[i];
            const InstrRef &ref = prog.locate(di.sid);
            if (ref.func != loop.func ||
                !loop.containsBlock(ref.block)) {
                continue; // inherited callee instruction
            }
            if (ref.block == loop.header && ref.index == 0) {
                in_path = true;
                path_sum = 0;
            }
            if (!in_path)
                continue;

            const Instr &in = prog.instr(di.sid);
            const bool is_term =
                in.op == Opcode::Br || in.op == Opcode::Jmp;
            if (!is_term)
                continue;

            const std::int32_t next =
                in.op == Opcode::Jmp
                    ? in.target
                    : (di.branchTaken
                           ? in.target
                           : prog.function(ref.func)
                                 .blocks[ref.block]
                                 .fallthrough);

            if (next != loop.header && loop.containsBlock(next)) {
                const std::int64_t v = dag.edgeValue(ref.block, next);
                prism_assert(v >= 0, "missing BL edge");
                path_sum += static_cast<std::uint64_t>(v);
            } else {
                const std::int64_t v = dag.exitValue(ref.block, next);
                prism_assert(v >= 0, "missing BL exit edge");
                ++prof.totalIters;
                if (next == loop.header)
                    ++prof.backEdgeTaken;
                ++counts[loop.id][path_sum +
                                  static_cast<std::uint64_t>(v)];
                in_path = false;
                path_sum = 0;
            }
        }
    }

    for (const Loop &loop : forest.loops()) {
        if (!loop.innermost)
            continue;
        PathProfile &prof = profiles[loop.id];
        for (const auto &[id, count] : counts[loop.id]) {
            PathProfile::PathInfo pi;
            pi.id = id;
            pi.count = count;
            pi.blocks = dags[loop.id]->decode(id);
            prof.paths.push_back(std::move(pi));
        }
        std::sort(prof.paths.begin(), prof.paths.end(),
                  [](const auto &a, const auto &b) {
                      return a.count > b.count;
                  });
    }
    return profiles;
}

} // namespace prism
