/**
 * @file
 * Natural-loop detection and the program-wide loop forest, plus the
 * mapping between the dynamic trace and loop structure (occurrences
 * and iteration boundaries). BSA candidate regions in the paper are
 * loops/loop nests; schedulers and transforms operate on this forest.
 */

#ifndef PRISM_IR_LOOPS_HH
#define PRISM_IR_LOOPS_HH

#include <cstdint>
#include <vector>

#include "ir/cfg.hh"
#include "ir/dominators.hh"
#include "trace/dyn_inst.hh"

namespace prism
{

/** One natural loop. Ids are global across all functions. */
struct Loop
{
    std::int32_t id = -1;
    std::int32_t func = -1;
    std::int32_t header = -1;             ///< header block index
    std::vector<std::int32_t> blocks;     ///< body incl. header, sorted
    std::vector<std::int32_t> latches;    ///< blocks with back edges
    std::vector<std::int32_t> exitBlocks; ///< in-loop blocks w/ exit arc
    std::int32_t parent = -1;             ///< enclosing loop id or -1
    std::vector<std::int32_t> children;   ///< directly nested loop ids
    std::int32_t depth = 1;               ///< 1 = outermost
    bool innermost = true;
    bool containsCall = false;            ///< has Call instructions
    std::uint32_t numStaticInstrs = 0;    ///< static size of the body

    /** True if `block` belongs to this loop's body. */
    bool containsBlock(std::int32_t block) const;
};

/**
 * All natural loops of a program, with per-(func,block) innermost-loop
 * lookup. Loops with shared headers are merged, per convention.
 */
class LoopForest
{
  public:
    /** Detect loops in every function of the program. */
    static LoopForest build(const Program &prog);

    std::size_t numLoops() const { return loops_.size(); }
    const Loop &loop(std::int32_t id) const { return loops_.at(id); }
    const std::vector<Loop> &loops() const { return loops_; }

    /** Innermost loop containing (func, block), or -1. */
    std::int32_t innermostAt(std::int32_t func,
                             std::int32_t block) const;

    /** Innermost loop containing a static instruction, or -1. */
    std::int32_t innermostAtSid(const Program &prog, StaticId sid) const;

    /** Ids of loops with no parent (outermost), in id order. */
    std::vector<std::int32_t> roots() const;

    /** True if `inner` is `outer` or nested (at any depth) inside it. */
    bool nestedIn(std::int32_t inner, std::int32_t outer) const;

  private:
    std::vector<Loop> loops_;
    // innermost loop id per function per block; -1 if none
    std::vector<std::vector<std::int32_t>> innermost_;
};

/**
 * One contiguous execution of a loop in the trace: from entering the
 * header until leaving the loop body (or trace end). `iterStarts`
 * records the dynamic index of each header execution.
 */
struct LoopOccurrence
{
    std::int32_t loopId = -1;
    DynId begin = 0;                 ///< first dyn index inside
    DynId end = 0;                   ///< one past last dyn index inside
    std::vector<DynId> iterStarts;   ///< header entries (ascending)

    std::uint64_t numIters() const { return iterStarts.size(); }
    std::uint64_t numInsts() const { return end - begin; }
};

/**
 * Segment a trace into *innermost*-loop occurrences plus the dynamic
 * loop id of every instruction (outermost-to-innermost nesting is
 * recoverable through the forest). Instructions outside any loop have
 * loop id -1. A call inside a loop keeps attribution to that loop
 * (callee instructions inherit the caller's active loop), matching
 * how offload regions subsume inlined callees.
 */
struct TraceLoopMap
{
    std::vector<std::int32_t> loopOf;      ///< per dyn index, or -1
    std::vector<LoopOccurrence> occurrences;

    /** Occurrence index per dyn index, or -1. */
    std::vector<std::int32_t> occOf;
};

/** Build the loop <-> trace mapping. */
TraceLoopMap mapTraceToLoops(const Program &prog, const Trace &trace,
                             const LoopForest &forest);

} // namespace prism

#endif // PRISM_IR_LOOPS_HH
