/**
 * @file
 * Dominator-tree computation (Cooper-Harvey-Kennedy iterative
 * algorithm). Needed to identify natural loops for the loop-nest tree
 * the paper's analyses operate over.
 */

#ifndef PRISM_IR_DOMINATORS_HH
#define PRISM_IR_DOMINATORS_HH

#include <cstdint>
#include <vector>

#include "ir/cfg.hh"

namespace prism
{

/** Immediate-dominator table for one CFG. */
class Dominators
{
  public:
    /** Compute dominators; unreachable blocks get idom -1. */
    static Dominators compute(const Cfg &cfg);

    /** Immediate dominator of `block`; entry's idom is itself. */
    std::int32_t idom(std::int32_t block) const
    {
        return idom_.at(block);
    }

    /** True if a dominates b (reflexive). */
    bool dominates(std::int32_t a, std::int32_t b) const;

    /** Depth of a block in the dominator tree (entry = 0). */
    std::int32_t depth(std::int32_t block) const
    {
        return depth_.at(block);
    }

  private:
    std::vector<std::int32_t> idom_;
    std::vector<std::int32_t> depth_;
};

} // namespace prism

#endif // PRISM_IR_DOMINATORS_HH
