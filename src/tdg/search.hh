/**
 * @file
 * Generalized design-space search: the sharded sweep's
 * workloads x cores x BSA-subsets grid, extended from the six fixed
 * CoreKinds to arbitrary parametric CoreParams points and crossed
 * with an area-budget axis — thousands of configurations per
 * workload instead of Figure 12's 96.
 *
 * What makes that affordable is component-level memoization (see
 * tdg/artifacts.hh): the expensive timing work of a point factors
 * into (a) baseline core timing per (workload, core-timing params)
 * and (b) four per-BSA region-eval tables per (workload, core,
 * own-BSA params), both fetched through the RAM-LRU/disk tiers. The
 * only per-point work left is the scheduler composition over cached
 * tables — microseconds against the ~tens-of-milliseconds cold
 * build — so a 1000-point search costs little more than its unique
 * (workload, core) component builds.
 *
 * Determinism contract (extends sweep.hh's): the grid order is
 * core-major, budget-mid, mask-minor over the lists as given
 * (gridIndex = (core*|budgets| + budget)*numMasks + mask); shard s
 * of n takes indices i with i % n == s; every aggregate accumulates
 * in workload order. Rendered tables, frontiers, and exported
 * datasets for a given (space, shard) are byte-identical across
 * thread counts.
 */

#ifndef PRISM_TDG_SEARCH_HH
#define PRISM_TDG_SEARCH_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.hh"
#include "tdg/exocore.hh"
#include "workloads/suite.hh"

namespace prism
{

/** What to search: parametric cores, subsets, budgets, shard. */
struct SearchSpace
{
    /** Core points to cross with BSA subsets (empty = the default
     *  16-point grid, defaultCoreGrid()). */
    std::vector<CoreParams> cores;
    /** BSA subset masks [0, numMasks); 16 = every subset. */
    unsigned numMasks = 16;
    /** Area budgets in absolute mm^2; <= 0 entries mean unbounded.
     *  Empty = one unbounded budget. The budget axis never changes a
     *  point's metrics, only its withinBudget flag and its Pareto
     *  grouping — composition is still evaluated per point, which is
     *  exactly the scheduler-only recomputation being amortized. */
    std::vector<double> areaBudgets;
    /** Region-selection policy for every point. */
    SchedulerKind sched = SchedulerKind::Oracle;
    /** Baseline for speedup/energy normalization. */
    CoreParams refCore = coreParams(CoreKind::IO2);
    /** Shard slice: this process takes grid indices i with
     *  i % shardCount == shardIndex. */
    unsigned shardIndex = 0;
    unsigned shardCount = 1;
};

/** One evaluated (core, budget, BSA-subset) point. */
struct SearchPoint
{
    std::size_t gridIndex = 0; ///< position in the full grid order
    std::size_t coreIdx = 0;   ///< index into the space's core list
    unsigned mask = 0;
    double areaBudget = 0;  ///< <= 0: unbounded
    std::string name;       ///< e.g. "ooo4.r128q48.p2a3m1f2.d6-SD"
    double speedup = 1.0;   ///< geomean vs refCore alone
    double energyEff = 1.0; ///< geomean refCore energy / energy
    double area = 0;        ///< absolute mm^2 (core + attached BSAs)
    bool withinBudget = true;
};

/**
 * The default 16-point core grid: the six fixed kinds' parameter
 * points plus ten parametric variants spanning width, window, FU
 * mix, SIMD lanes, and cache-latency axes.
 */
std::vector<CoreParams> defaultCoreGrid();

/**
 * `n` deterministic low-discrepancy random core points (splitmix64
 * over `seed`; same (n, seed) yields the same list on every platform
 * and thread count). Points are plausible machines: widths 1..8,
 * ROB/window scaled to width, 1..3 cache ports.
 */
std::vector<CoreParams> sampleCoreParams(std::size_t n,
                                         std::uint64_t seed);

/** Total point count of the full (unsharded) space. */
std::size_t searchGridSize(const SearchSpace &space);

/**
 * A design-space search over a set of workloads. Usage mirrors
 * DesignSpaceSweep:
 *
 *     DesignSearch search(space, allWorkloads());
 *     search.load(pool);              // traces + TDGs
 *     search.prepare(pool);           // components per (wl, core)
 *     auto points = search.run(pool); // this shard's points
 *
 * load/prepare are mutate phases (each task writes its own slot);
 * run is a read phase over const models.
 */
class DesignSearch
{
  public:
    DesignSearch(SearchSpace space,
                 std::span<const WorkloadSpec> workloads);
    ~DesignSearch();

    const SearchSpace &space() const { return space_; }

    /** Grid points of this shard, in grid order, metrics unset. */
    std::vector<SearchPoint> shardPoints() const;

    /** Core-list indices this shard needs models for (its points'
     *  cores; the reference core is tracked separately). */
    std::vector<std::size_t> shardCoreIndices() const;

    /** Load every workload (parallel; trace-cache-aware). */
    void load(ThreadPool &pool);

    /** Total trace instructions across loaded workloads. */
    std::size_t loadedInsts() const;

    /** Build every (workload, shard core) model from the tiered
     *  component caches, one task each. */
    void prepare(ThreadPool &pool);

    /** Drop built models (between timed legs). The component tables
     *  stay resident in the RAM tier. */
    void dropModels();

    /** Evaluate this shard's points (requires load + prepare). */
    std::vector<SearchPoint> run(ThreadPool &pool) const;

    /**
     * Write the per-(workload, configuration) dataset for this
     * shard's points: one CSV row per (workload, point) holding the
     * full machine feature vector and the evaluated outcomes
     * (cycles, energy, area, normalized metrics). Stable order
     * (workload-major, gridIndex-minor) and fixed formatting; the
     * header documents the schema version. Requires load + prepare.
     */
    void exportDataset(std::ostream &os) const;

  private:
    struct Workload;

    const BenchmarkModel &model(std::size_t wl,
                                std::size_t core_idx) const;

    SearchSpace space_;
    std::vector<const WorkloadSpec *> specs_;
    std::vector<std::unique_ptr<Workload>> workloads_;
};

/**
 * The Pareto-optimal subset per budget group: within each budget,
 * over points with withinBudget, keep those not dominated on
 * (speedup max, energyEff max, area min). Output is sorted by
 * (budget, speedup desc, gridIndex) — deterministic for a given
 * point set regardless of input order.
 */
std::vector<SearchPoint>
paretoFrontier(const std::vector<SearchPoint> &points);

/**
 * Render points as a fixed-format table (sorted by speedup,
 * descending; ties by grid index; `limit` = 0 keeps all rows). Used
 * as the byte-identity witness across thread counts and shards.
 */
std::string renderSearchTable(std::vector<SearchPoint> points,
                              std::size_t limit = 0);

/** paretoFrontier + renderSearchTable in one deterministic step. */
std::string
renderParetoFrontier(const std::vector<SearchPoint> &points);

/**
 * Strict `--shard I/N` parser: exactly `<digits>/<digits>` with
 * N > 0 and I < N. Rejects trailing garbage, signs, and empty
 * fields. On failure returns false and fills `error` with a
 * human-readable reason (the flag handler prepends the flag name).
 */
bool parseShardSpec(const std::string &spec, unsigned &index,
                    unsigned &count, std::string &error);

/**
 * Strict `--budgets a,b,c` parser: each entry must be a fully
 * consumed positive number (mm^2). Empty list, non-numeric entries,
 * zero, and negatives are errors — an unbounded search is requested
 * by omitting the flag, not by passing 0.
 */
bool parseAreaBudgets(const std::string &csv,
                      std::vector<double> &budgets,
                      std::string &error);

} // namespace prism

#endif // PRISM_TDG_SEARCH_HH
