/**
 * @file
 * Region scheduling: picks a non-overlapping set of (loop, BSA)
 * assignments over the loop tree and composes program-level metrics.
 *
 * The Oracle scheduler (paper Section 4) selects by *measured*
 * energy-delay with a 10% per-region slowdown allowance. The
 * Amdahl-Tree scheduler (Section 3.3, Figure 9) labels each tree node
 * with per-BSA speedup *estimates* from static/profile information
 * and applies Amdahl's law bottom-up; it is deliberately optimistic
 * about BSA benefits, reproducing the paper's observation that it
 * over-selects accelerators relative to the oracle (Figure 15).
 */

#ifndef PRISM_TDG_SCHEDULER_HH
#define PRISM_TDG_SCHEDULER_HH

#include "tdg/exocore.hh"

namespace prism
{

/** Compose an ExoCore result for a BSA subset under a scheduler. */
ExoResult scheduleExoCore(const BenchmarkModel &bm, const Tdg &tdg,
                          unsigned bsa_mask, SchedulerKind sched);

/**
 * Amdahl-Tree speedup estimate of running `loop` entirely on `bsa`
 * (static/profile-based; used by the Amdahl scheduler and exposed for
 * tests/examples).
 */
double amdahlSpeedupEstimate(const BenchmarkModel &bm, const Tdg &tdg,
                             std::int32_t loop, BsaKind bsa);

/** Amdahl-Tree relative-energy estimate (accelerated / GPP). */
double amdahlEnergyEstimate(BsaKind bsa);

} // namespace prism

#endif // PRISM_TDG_SCHEDULER_HH
