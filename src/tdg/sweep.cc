#include "tdg/sweep.hh"

#include <algorithm>
#include <array>

#include "common/artifact_cache.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "energy/area_model.hh"
#include "tdg/artifacts.hh"

namespace prism
{

/** One workload slot: the loaded trace/TDG plus per-core models.
 *  load() and buildModel() follow the mutate-phase discipline of
 *  bench_util's Entry: distinct tasks write distinct slots. */
struct DesignSpaceSweep::Workload
{
    const WorkloadSpec *spec = nullptr;
    std::unique_ptr<LoadedWorkload> lw;
    std::array<std::unique_ptr<BenchmarkModel>,
               kAllCoreKinds.size()>
        models;

    void
    load()
    {
        if (!lw)
            lw = LoadedWorkload::load(*spec);
    }

    void
    buildModel(CoreKind core)
    {
        prism_assert(lw != nullptr, "workload '%s' not loaded",
                     spec->name);
        auto &slot = models[static_cast<std::size_t>(core)];
        if (slot)
            return;
        // Tiered component fetch (RAM LRU -> disk -> compute); the
        // handle inside buildModelCached batches this task's cache-
        // stats traffic.
        slot = buildModelCached(
            ArtifactCache::global(), lw->name(), lw->tdg(),
            lw->maxInsts(), PipelineConfig{.core = coreConfig(core)});
    }

    const BenchmarkModel &
    model(CoreKind core) const
    {
        const auto &slot = models[static_cast<std::size_t>(core)];
        prism_assert(slot != nullptr,
                     "model for '%s' core %d not prepared",
                     spec->name, static_cast<int>(core));
        return *slot;
    }
};

DesignSpaceSweep::DesignSpaceSweep(
    SweepGrid grid, std::span<const WorkloadSpec> workloads)
    : grid_(std::move(grid))
{
    if (grid_.cores.empty())
        grid_.cores.assign(kAllCoreKinds.begin(),
                           kAllCoreKinds.end());
    prism_assert(grid_.numMasks >= 1 && grid_.numMasks <= 16,
                 "numMasks must be in [1, 16], got %u",
                 grid_.numMasks);
    prism_assert(grid_.shardCount >= 1 &&
                     grid_.shardIndex < grid_.shardCount,
                 "bad shard %u/%u", grid_.shardIndex,
                 grid_.shardCount);
    for (const WorkloadSpec &spec : workloads) {
        specs_.push_back(&spec);
        workloads_.push_back(std::make_unique<Workload>());
        workloads_.back()->spec = &spec;
    }
    prism_assert(!specs_.empty(), "sweep needs at least one workload");
}

DesignSpaceSweep::~DesignSpaceSweep() = default;

std::size_t
sweepGridSize(const SweepGrid &grid)
{
    const std::size_t cores =
        grid.cores.empty() ? kAllCoreKinds.size() : grid.cores.size();
    return cores * grid.numMasks;
}

std::vector<SweepPoint>
DesignSpaceSweep::shardPoints() const
{
    std::vector<SweepPoint> points;
    std::size_t gi = 0;
    for (CoreKind core : grid_.cores) {
        for (unsigned mask = 0; mask < grid_.numMasks;
             ++mask, ++gi) {
            if (gi % grid_.shardCount != grid_.shardIndex)
                continue;
            SweepPoint p;
            p.gridIndex = gi;
            p.core = core;
            p.mask = mask;
            p.name = coreConfig(core).name;
            if (mask != 0) {
                p.name += "-";
                for (std::size_t i = 0; i < kAllBsas.size(); ++i) {
                    if (mask & (1u << i))
                        p.name += bsaLetter(kAllBsas[i]);
                }
            }
            points.push_back(std::move(p));
        }
    }
    return points;
}

std::vector<CoreKind>
DesignSpaceSweep::shardCores() const
{
    std::array<bool, kAllCoreKinds.size()> need{};
    need[static_cast<std::size_t>(grid_.refCore)] = true;
    for (const SweepPoint &p : shardPoints())
        need[static_cast<std::size_t>(p.core)] = true;
    std::vector<CoreKind> cores;
    for (CoreKind core : kAllCoreKinds) {
        if (need[static_cast<std::size_t>(core)])
            cores.push_back(core);
    }
    return cores;
}

void
DesignSpaceSweep::load(ThreadPool &pool)
{
    pool.parallelFor(workloads_.size(),
                     [&](std::size_t i) { workloads_[i]->load(); });
}

std::size_t
DesignSpaceSweep::loadedInsts() const
{
    std::size_t total = 0;
    for (const auto &w : workloads_) {
        if (w->lw)
            total += w->lw->tdg().trace().size();
    }
    return total;
}

void
DesignSpaceSweep::prepare(ThreadPool &pool)
{
    load(pool);
    const std::vector<CoreKind> cores = shardCores();
    // One task per (workload, core): a long-pole workload does not
    // serialize its core models on one worker.
    pool.parallelFor(
        workloads_.size() * cores.size(), [&](std::size_t t) {
            workloads_[t / cores.size()]->buildModel(
                cores[t % cores.size()]);
        });
}

void
DesignSpaceSweep::dropModels()
{
    for (auto &w : workloads_) {
        for (auto &m : w->models)
            m.reset();
    }
}

std::vector<SweepPoint>
DesignSpaceSweep::run(ThreadPool &pool) const
{
    std::vector<SweepPoint> points = shardPoints();
    const CoreKind ref = grid_.refCore;
    pool.parallelFor(points.size(), [&](std::size_t i) {
        SweepPoint &p = points[i];
        std::vector<double> perf;
        std::vector<double> eff;
        perf.reserve(workloads_.size());
        eff.reserve(workloads_.size());
        for (const auto &w : workloads_) {
            const ExoResult res = w->model(p.core).evaluate(p.mask);
            const ExoResult &base = w->model(ref).baseline();
            perf.push_back(static_cast<double>(base.cycles) /
                           static_cast<double>(res.cycles));
            eff.push_back(base.energy / res.energy);
        }
        p.speedup = geomean(perf);
        p.energyEff = geomean(eff);
        p.area = exoCoreArea(p.core, p.mask) / coreArea(ref);
    });
    return points;
}

std::string
renderSweepTable(std::vector<SweepPoint> points)
{
    std::sort(points.begin(), points.end(),
              [](const SweepPoint &a, const SweepPoint &b) {
                  if (a.speedup != b.speedup)
                      return a.speedup > b.speedup;
                  return a.gridIndex < b.gridIndex;
              });
    Table t({"config", "speedup", "energy eff.", "area"});
    for (const SweepPoint &p : points) {
        t.addRow({p.name, fmt(p.speedup, 2), fmt(p.energyEff, 2),
                  fmt(p.area, 2)});
    }
    return t.render();
}

} // namespace prism
