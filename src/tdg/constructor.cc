#include "tdg/constructor.hh"

#include "analysis/check_ir.hh"
#include "common/logging.hh"

namespace prism
{

namespace
{

/**
 * PRISM_CHECK_IR hook: assert the layer-2 stream invariants of
 * analysis/stream_verify on one just-appended core instruction with
 * absolute dependence indexing. Compiled away when kCheckIr is off.
 */
inline void
checkCoreInst(const MInst &mi, DynId i)
{
    if constexpr (kCheckIr) {
        for (int s = 0; s < 3; ++s) {
            prism_assert(mi.dep[s] == -1 ||
                             (mi.dep[s] >= 0 &&
                              static_cast<DynId>(mi.dep[s]) < i),
                         "CHECK_IR: dep slot %d of inst %llu not "
                         "strictly backward",
                         s, static_cast<unsigned long long>(i));
        }
        prism_assert(mi.memDep == -1 ||
                         (mi.isLoad && mi.memDep >= 0 &&
                          static_cast<DynId>(mi.memDep) < i),
                     "CHECK_IR: memory dep of inst %llu invalid "
                     "or on a non-load",
                     static_cast<unsigned long long>(i));
        prism_assert(!mi.isLoad || mi.memLat > 0,
                     "CHECK_IR: load at %llu without memory latency",
                     static_cast<unsigned long long>(i));
        prism_assert(!(mi.isLoad && mi.isStore),
                     "CHECK_IR: inst %llu both load and store",
                     static_cast<unsigned long long>(i));
    } else {
        (void)mi;
        (void)i;
    }
}

} // namespace

MInst
toCoreInst(const DynInst &di)
{
    MInst mi = MInst::core(di.op);
    mi.memLat = di.memLat;
    mi.mispredicted = di.mispredicted;
    mi.takenBranch = opInfo(di.op).isBranch && di.branchTaken;
    mi.sid = di.sid;
    return mi;
}

namespace
{

void
appendRange(const Trace &trace, DynId begin, DynId end, MStream &out)
{
    const std::size_t base = out.size();
    for (DynId i = begin; i < end; ++i) {
        const DynInst &di = trace[i];
        MInst mi = toCoreInst(di);
        for (int s = 0; s < 3; ++s) {
            const std::int64_t p = di.srcProd[s];
            if (p != kNoProducer && static_cast<DynId>(p) >= begin &&
                static_cast<DynId>(p) < i) {
                mi.dep[s] = static_cast<std::int64_t>(
                    base + (static_cast<DynId>(p) - begin));
            }
        }
        const std::int64_t mp = di.memProd;
        if (mi.isLoad && mp != kNoProducer &&
            static_cast<DynId>(mp) >= begin &&
            static_cast<DynId>(mp) < i) {
            mi.memDep = static_cast<std::int64_t>(
                base + (static_cast<DynId>(mp) - begin));
        }
        out.push_back(std::move(mi));
    }
}

} // namespace

MStream
buildCoreStream(const Trace &trace, DynId begin, DynId end)
{
    prism_assert(end <= trace.size() && begin <= end, "bad range");
    MStream out;
    out.reserve(end - begin);
    appendRange(trace, begin, end, out);
    return out;
}

MStream
buildCoreStream(const Trace &trace)
{
    return buildCoreStream(trace, 0, trace.size());
}

void
appendCoreWindow(const Trace &trace, DynId b, DynId e, MStream &out)
{
    prism_assert(e <= trace.size() && b <= e, "bad range");
    for (DynId i = b; i < e; ++i) {
        const DynInst &di = trace[i];
        MInst mi = toCoreInst(di);
        for (int s = 0; s < 3; ++s) {
            const std::int64_t p = di.srcProd[s];
            if (p != kNoProducer && static_cast<DynId>(p) < i)
                mi.dep[s] = static_cast<std::int32_t>(p);
        }
        const std::int64_t mp = di.memProd;
        if (mi.isLoad && mp != kNoProducer &&
            static_cast<DynId>(mp) < i) {
            mi.memDep = static_cast<std::int32_t>(mp);
        }
        checkCoreInst(mi, i);
        out.push_back(std::move(mi));
    }
}

void
appendCoreBatch(const DynInst *d, std::size_t n, DynId base,
                MStream &out)
{
    for (std::size_t k = 0; k < n; ++k) {
        const DynInst &di = d[k];
        const DynId i = base + k;
        MInst mi = toCoreInst(di);
        for (int s = 0; s < 3; ++s) {
            const std::int64_t p = di.srcProd[s];
            if (p != kNoProducer && static_cast<DynId>(p) < i)
                mi.dep[s] = static_cast<std::int32_t>(p);
        }
        const std::int64_t mp = di.memProd;
        if (mi.isLoad && mp != kNoProducer &&
            static_cast<DynId>(mp) < i) {
            mi.memDep = static_cast<std::int32_t>(mp);
        }
        checkCoreInst(mi, i);
        out.push_back(std::move(mi));
    }
}

MStream
buildCoreStreamRanges(
    const Trace &trace,
    const std::vector<std::pair<DynId, DynId>> &ranges,
    std::vector<std::size_t> &boundaries)
{
    MStream out;
    boundaries.clear();
    std::size_t total = 0;
    for (const auto &[b, e] : ranges)
        total += e - b;
    out.reserve(total);
    for (const auto &[b, e] : ranges) {
        boundaries.push_back(out.size());
        appendRange(trace, b, e, out);
        if (!out.empty() && boundaries.back() < out.size())
            out[boundaries.back()].startRegion = true;
    }
    return out;
}

namespace
{

void
tallyOne(const MInst &mi, unsigned l1_hit, unsigned l2_hit,
         EventCounts &ev)
{
    {
        if (mi.unit == ExecUnit::Core) {
            ++ev.coreFetches;
            ++ev.coreDispatches;
            ++ev.coreIssues;
            ++ev.coreCommits;
            const OpInfo &oi = opInfo(mi.op);
            ev.coreRegReads += oi.numSrcs;
            if (oi.writesDst)
                ++ev.coreRegWrites;
            if (mi.fu != FuClass::None) {
                ev.fuOps[static_cast<std::size_t>(ExecUnit::Core)]
                        [fuPoolIndex(mi.fu)] += mi.lanes;
            }
            ++ev.unitInsts[static_cast<std::size_t>(ExecUnit::Core)];
        } else {
            if (mi.fu != FuClass::None) {
                ev.fuOps[static_cast<std::size_t>(mi.unit)]
                        [fuPoolIndex(mi.fu)] += mi.lanes;
            }
            ++ev.unitInsts[static_cast<std::size_t>(mi.unit)];
            if (mi.op == Opcode::CfuOp)
                ++ev.cfuOps;
            if (mi.op == Opcode::DfSwitch)
                ++ev.dfSwitches;
            if (mi.isStore && mi.unit == ExecUnit::Tracep)
                ++ev.storeBufWrites;
            const OpInfo &oi = opInfo(mi.op);
            if (oi.writesDst)
                ++ev.accelWbBusXfers;
        }
        switch (mi.op) {
          case Opcode::AccelCfg: ++ev.accelConfigs; break;
          case Opcode::AccelSend:
          case Opcode::AccelRecv: ++ev.accelComms; break;
          default: break;
        }
        if (mi.isLoad) {
            ++ev.loads;
            if (mi.memLat > l1_hit)
                ++ev.l2Accesses;
            if (mi.memLat > l1_hit + l2_hit)
                ++ev.memAccesses;
        }
        if (mi.isStore)
            ++ev.stores;
        if (mi.isCondBranch) {
            ++ev.branches;
            if (mi.mispredicted)
                ++ev.mispredicts;
        }
    }
}

} // namespace

EventCounts
tallyEvents(const MStream &stream, unsigned l1_hit, unsigned l2_hit)
{
    EventCounts ev;
    for (const MInst &mi : stream)
        tallyOne(mi, l1_hit, l2_hit, ev);
    return ev;
}

EventCounts
tallyEvents(const Trace &trace, DynId b, DynId e, unsigned l1_hit,
            unsigned l2_hit)
{
    prism_assert(e <= trace.size() && b <= e, "bad range");
    EventCounts ev;
    for (DynId i = b; i < e; ++i)
        tallyOne(toCoreInst(trace[i]), l1_hit, l2_hit, ev);
    return ev;
}

} // namespace prism
