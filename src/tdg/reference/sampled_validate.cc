#include "tdg/reference/sampled_validate.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "tdg/constructor.hh"
#include "tdg/reference/ref_models.hh"
#include "uarch/pipeline_model.hh"

namespace prism
{

namespace
{

/** splitmix64: cheap deterministic PRNG for sample selection. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * Two-sided Student-t quantile at the requested confidence for small
 * degrees of freedom, normal quantile beyond the table.
 */
double
tQuantile(double confidence, std::size_t df)
{
    static const double t975[] = {
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
        2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
        2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
    static const double t995[] = {
        63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355,
        3.250,  3.169, 3.106, 3.055, 3.012, 2.977, 2.947, 2.921,
        2.898,  2.878, 2.861, 2.845, 2.831, 2.819, 2.807, 2.797,
        2.787,  2.779, 2.771, 2.763, 2.756, 2.750};
    const bool wide = confidence >= 0.985;
    const double *table = wide ? t995 : t975;
    if (df == 0)
        return wide ? 63.657 : 12.706; // degenerate; widest row
    if (df <= 30)
        return table[df - 1];
    return wide ? 2.576 : 1.960;
}

struct UnitSpan
{
    std::size_t stratum = 0;
    std::size_t begin = 0; ///< first measured trace index
    std::size_t end = 0;   ///< one past last measured index
    std::size_t warm = 0;  ///< warmup start (warm <= begin)
};

/**
 * Completion-frontier difference over a standalone warmup+window
 * run: the window's cycles are frontier(end) - frontier(end of
 * warmup). Measuring the warmup boundary by its in-flight frontier
 * (not a drained run) keeps machine overlap across the boundary,
 * the same way consecutive windows overlap in a full-trace run.
 */
double
frontierDiff(const std::vector<Cycle> &done, std::size_t warm_insts,
             std::size_t total)
{
    Cycle warm_frontier = 0;
    for (std::size_t j = 0; j < warm_insts; ++j)
        warm_frontier = std::max(warm_frontier, done[j]);
    Cycle frontier = warm_frontier;
    for (std::size_t j = warm_insts; j < total; ++j)
        frontier = std::max(frontier, done[j]);
    return static_cast<double>(frontier - warm_frontier);
}

} // namespace

SampledCpi
sampledCpiEstimate(const Trace &trace, const CoreConfig &core,
                   const SampleConfig &cfg, ThreadPool *pool)
{
    SampledCpi out;
    const std::size_t n = trace.size();
    out.insts = n;
    if (n == 0)
        return out;

    const PipelineModel model(PipelineConfig{core});

    // ---- Derive the sampling plan from the coverage budget ----
    const std::size_t min_unit = std::max<std::size_t>(
        std::min(cfg.minUnitInsts, cfg.maxUnitInsts), 1);
    const std::size_t budget = std::max<std::size_t>(
        static_cast<std::size_t>(cfg.coverageBudget *
                                 static_cast<double>(n)),
        2 * min_unit);
    const std::size_t target =
        std::max<std::size_t>(cfg.targetUnits, 1);

    // Degenerate short trace: the budget covers (nearly) all of it,
    // so sampling has nothing to offer — run the whole trace in the
    // reference simulator and report the exact answer.
    if (budget + 2 * min_unit >= n) {
        const MStream full = buildCoreStream(trace);
        RefSimScratch scratch;
        const Cycle cycles = CycleCoreSim(core).run(full, scratch);
        out.cpi = static_cast<double>(cycles) /
                  static_cast<double>(n);
        out.ciLow = out.cpi;
        out.ciHigh = out.cpi;
        out.modelCpi =
            static_cast<double>(model.run(full).cycles) /
            static_cast<double>(n);
        out.coverage = 1.0;
        out.unitsSimulated = 1;
        out.strataUsed = 1;
        return out;
    }

    // Window size: spend the budget over ~targetUnits windows, each
    // costing warmup+unit simulated instructions. When the trace is
    // short enough that windows hit the minimum size and the draw
    // count suffers, shorten the warmup instead (the paired
    // difference d is warmup-insensitive well below the default —
    // both engines lose the same boundary state) — more draws beat
    // longer warmup for the variance.
    const std::size_t want_unit =
        budget / target > cfg.warmupInsts
            ? budget / target - cfg.warmupInsts
            : 0;
    const std::size_t unit = std::clamp(
        want_unit, min_unit,
        std::max<std::size_t>(cfg.maxUnitInsts, min_unit));
    std::size_t warmup = cfg.warmupInsts;
    if (budget / (unit + warmup) < 24 && warmup > 125) {
        const std::size_t per_draw = budget / 24;
        warmup = std::clamp(per_draw > unit ? per_draw - unit
                                            : std::size_t{0},
                            std::size_t{125}, cfg.warmupInsts);
    }
    const std::size_t cost = unit + warmup;
    const std::size_t nu = (n + unit - 1) / unit;
    const std::size_t draws = std::min(
        nu, std::max<std::size_t>(budget / cost, 2));
    // Prefer >= 3 draws per stratum: with only two, one outlier
    // window both skews the stratum mean and collapses its variance
    // estimate in the same direction, which is how confidence
    // intervals go wrong on heavy-tailed workloads.
    const std::size_t num_strata = std::max<std::size_t>(
        1, std::min({cfg.strata, draws / 3, nu}));
    out.strataUsed = num_strata;

    // ---- Model pass: predicted cycles for EVERY window ----
    // Same warmup and frontier-difference protocol as the reference
    // measurement below, so the per-window difference d = sim -
    // model is a pure deterministic model error.
    auto spanOf = [&](std::size_t u) {
        UnitSpan s;
        s.begin = u * unit;
        s.end = std::min(s.begin + unit, n);
        s.warm = s.begin - std::min(s.begin, warmup);
        return s;
    };
    auto modelCycles = [&](std::size_t u) -> double {
        const UnitSpan s = spanOf(u);
        const MStream ws = buildCoreStream(
            trace, static_cast<DynId>(s.warm),
            static_cast<DynId>(s.end));
        const PipelineResult pr = model.run(ws, true);
        return frontierDiff(pr.completeAt, s.begin - s.warm,
                            ws.size());
    };
    std::vector<double> x;
    if (pool != nullptr)
        x = parallelMapIndex(*pool, nu, modelCycles);
    else {
        x.reserve(nu);
        for (std::size_t u = 0; u < nu; ++u)
            x.push_back(modelCycles(u));
    }

    // Anchor the estimate on the model's FULL-TRACE run, not the
    // sum of its windows. Cutting a trace into windows loses some
    // cross-boundary overlap, and that decomposition bias is
    // workload-dependent (up to a few cycles per boundary, either
    // sign). Both engines cut the same dependences at the same
    // boundaries with the same warmup, so the model's own
    // decomposition bias — measurable exactly as sum(windows) minus
    // full run — tracks the simulator's closely; anchoring on the
    // full model run cancels it from the estimate, leaving only the
    // small sim-vs-model mismatch covered by the CI floor below.
    const double x_full =
        static_cast<double>(model.run(buildCoreStream(trace))
                                .cycles);
    out.modelCpi = x_full / static_cast<double>(n);
    const double model_decomp_bias =
        std::accumulate(x.begin(), x.end(), 0.0) - x_full;

    // ---- Stratify by predicted cycles, draw without replacement --
    // Equal-count strata over the x-sorted order put like-behaving
    // windows together; the residual d varies far less within a
    // stratum than across the trace. Extra draws beyond an even
    // split go to the highest-x strata, where d is most dispersed.
    std::vector<std::uint32_t> order(nu);
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(),
              [&x](std::uint32_t a, std::uint32_t b) {
                  if (x[a] != x[b])
                      return x[a] < x[b];
                  return a < b;
              });
    std::vector<UnitSpan> drawn;
    std::vector<std::size_t> stratum_pop(num_strata, 0);
    const std::size_t base_per = draws / num_strata;
    const std::size_t extra = draws % num_strata;
    for (std::size_t h = 0; h < num_strata; ++h) {
        const std::size_t lo = h * nu / num_strata;
        const std::size_t hi = (h + 1) * nu / num_strata;
        const std::size_t pop = hi - lo;
        stratum_pop[h] = pop;
        if (pop == 0)
            continue;
        const std::size_t want = std::min(
            pop, std::max<std::size_t>(
                     base_per +
                         (h >= num_strata - extra ? 1 : 0),
                     2));
        std::uint64_t rng =
            mix64(cfg.seed ^ (h * 1315423911ull));
        for (std::size_t i = 0; i < want; ++i) {
            rng = mix64(rng);
            const std::size_t j = i + rng % (pop - i);
            std::swap(order[lo + i], order[lo + j]);
            UnitSpan u = spanOf(order[lo + i]);
            u.stratum = h;
            drawn.push_back(u);
        }
    }
    out.unitsSimulated = drawn.size();

    // ---- Reference-simulate the drawn windows (parallel) ----
    auto measure = [&trace, &core](const UnitSpan &u) -> double {
        static thread_local RefSimScratch scratch;
        CycleCoreSim sim(core);
        const MStream us = buildCoreStream(
            trace, static_cast<DynId>(u.warm),
            static_cast<DynId>(u.end));
        sim.run(us, scratch);
        return frontierDiff(scratch.doneAt, u.begin - u.warm,
                            us.size());
    };
    std::vector<double> y;
    if (pool != nullptr) {
        y = parallelMapIndex(
            *pool, drawn.size(),
            [&](std::size_t i) { return measure(drawn[i]); });
    } else {
        y.reserve(drawn.size());
        for (const UnitSpan &u : drawn)
            y.push_back(measure(u));
    }

    // ---- Stratified difference estimator + variance ----
    const std::size_t k = drawn.size();
    std::vector<double> d(k);
    for (std::size_t i = 0; i < k; ++i) {
        const std::size_t u = drawn[i].begin / unit;
        d[i] = y[i] - x[u];
    }
    std::vector<std::size_t> cnt(num_strata, 0);
    std::vector<double> d_sum(num_strata, 0.0);
    std::vector<double> d_sumsq(num_strata, 0.0);
    for (std::size_t i = 0; i < k; ++i) {
        const std::size_t h = drawn[i].stratum;
        ++cnt[h];
        d_sum[h] += d[i];
        d_sumsq[h] += d[i] * d[i];
    }
    double d_total = 0.0;
    double var_total = 0.0;
    std::size_t df = 0;
    for (std::size_t h = 0; h < num_strata; ++h) {
        if (cnt[h] == 0 || stratum_pop[h] == 0)
            continue;
        const double pop = static_cast<double>(stratum_pop[h]);
        const double m =
            d_sum[h] / static_cast<double>(cnt[h]);
        d_total += pop * m;
        if (cnt[h] >= 2) {
            df += cnt[h] - 1;
            if (stratum_pop[h] > cnt[h]) {
                const double s2 =
                    (d_sumsq[h] - d_sum[h] * m) /
                    static_cast<double>(cnt[h] - 1);
                const double fpc =
                    1.0 - static_cast<double>(cnt[h]) / pop;
                var_total += pop * pop * fpc * s2 /
                             static_cast<double>(cnt[h]);
            }
        }
    }
    // Small samples: the stratified variance estimate is fragile (a
    // stratum that happens to draw only quiet windows reports a
    // near-zero spread). Bound it below by the simple-random-sample
    // variance over all draws, which at least sees the full
    // between-strata dispersion of the sample.
    if (k >= 2 && k < 24 && k < nu) {
        const double all_sum =
            std::accumulate(d.begin(), d.end(), 0.0);
        double all_sq = 0.0;
        for (double v : d)
            all_sq += v * v;
        const double am = all_sum / static_cast<double>(k);
        const double s2_all =
            (all_sq - all_sum * am) / static_cast<double>(k - 1);
        const double nu_d = static_cast<double>(nu);
        const double srs =
            nu_d * nu_d * (1.0 - static_cast<double>(k) / nu_d) *
            s2_all / static_cast<double>(k);
        var_total = std::max(var_total, srs);
    }

    std::size_t covered = 0;
    for (const UnitSpan &u : drawn)
        covered += u.end - u.warm;

    // CI: Student-t on the sampling variance, plus a deterministic
    // floor — two cycles per window boundary for the decomposition
    // granularity, plus the model's own (exactly known)
    // decomposition bias, since the anchor cancellation is only
    // trusted up to the magnitude of the bias being cancelled.
    const double insts_d = static_cast<double>(n);
    out.cpi = (x_full + d_total) / insts_d;
    out.coverage = static_cast<double>(covered) / insts_d;
    const double t = tQuantile(cfg.confidence, df);
    const double half =
        (t * std::sqrt(std::max(var_total, 0.0)) +
         2.0 * static_cast<double>(nu - 1) +
         std::fabs(model_decomp_bias)) /
        insts_d;
    out.ciLow = out.cpi - half;
    out.ciHigh = out.cpi + half;
    out.relHalfWidth = out.cpi > 0.0 ? half / out.cpi : 0.0;
    return out;
}

} // namespace prism
