#include "tdg/reference/tick_sim.hh"

#include <algorithm>

#include "common/logging.hh"

namespace prism
{

namespace
{

std::size_t
pow2AtLeast(std::size_t n)
{
    std::size_t cap = 1;
    while (cap < n)
        cap <<= 1;
    return cap;
}

} // namespace

void
TickCycleCoreSim::begin(TickSimScratch &ss) const
{
    ss.done.clear();
    ss.doneAt.clear();

    ss.robCap = core_.inorder ? 2 * core_.width : core_.robSize;
    ss.iqCap = core_.inorder ? core_.width : core_.instWindow;
    const std::size_t rob_store =
        pow2AtLeast(std::max<std::size_t>(ss.robCap, 1));
    if (ss.rob.size() < rob_store)
        ss.rob.resize(rob_store);
    ss.robMask = rob_store - 1;
    ss.robHead = 0;
    ss.robCount = 0;

    ss.fbCap = 3 * core_.width;
    const std::size_t fb_store =
        pow2AtLeast(std::max<std::size_t>(ss.fbCap, 1));
    if (ss.fetchBuf.size() < fb_store)
        ss.fetchBuf.resize(fb_store);
    ss.fbMask = fb_store - 1;
    ss.fbHead = 0;
    ss.fbCount = 0;

    ss.fus[0].assign(core_.numAlu, 0);
    ss.fus[1].assign(core_.numMulDiv, 0);
    ss.fus[2].assign(core_.numFp, 0);
    ss.fus[3].assign(core_.dcachePorts, 0);

    const AccelParams *params[3] = {&cgra_, &nsdf_, &tracep_};
    for (int k = 0; k < 3; ++k) {
        ss.engines[k].params = *params[k];
        ss.engines[k].pool.clear();
        ss.engines[k].pool.reserve(params[k]->window);
    }

    ss.blockingBranch = -1;
    ss.fetchAllowedAt = 0;
    ss.nextIntake = 0;
    ss.prefixDone = 0;
    ss.remaining = 0;
    ss.now = 0;
    ss.fetched = 0;
    ss.midIntake = false;
    ss.finalized = false;
}

void
TickCycleCoreSim::feed(TickSimScratch &ss, const MStream &stream,
                       std::size_t b, std::size_t e) const
{
    prism_assert(b == ss.done.size(),
                 "reference sim windows must be consecutive");
    prism_assert(e <= stream.size(), "window beyond stream");
    if (e <= b)
        return;
    ss.done.resize(e, 0);
    ss.doneAt.resize(e, 0);
    ss.remaining += e - b;
    advance(ss, stream);
}

Cycle
TickCycleCoreSim::finishRun(TickSimScratch &ss,
                            const MStream &stream) const
{
    ss.finalized = true;
    advance(ss, stream);
    prism_assert(ss.remaining == 0 &&
                     ss.nextIntake == ss.done.size(),
                 "reference sim did not drain");
    return ss.now;
}

void
TickCycleCoreSim::advance(TickSimScratch &ss,
                          const MStream &stream) const
{
    using Entry = TickSimScratch::Entry;
    using St = TickSimScratch::St;

    const std::size_t navail = ss.done.size();
    const Cycle hard_limit =
        static_cast<Cycle>(navail) * 600 + 100000;

    auto engine_of =
        [&ss](ExecUnit u) -> TickSimScratch::EnginePool & {
        switch (u) {
          case ExecUnit::Cgra: return ss.engines[0];
          case ExecUnit::Nsdf: return ss.engines[1];
          case ExecUnit::Tracep: return ss.engines[2];
          default: panic("not an engine unit");
        }
    };

    auto deps_ready = [&](std::size_t idx) {
        const MInst &mi = stream[idx];
        for (std::int32_t d : mi.dep) {
            if (d >= 0 &&
                !(ss.done[d] && ss.doneAt[d] <= ss.now)) {
                return false;
            }
        }
        if (mi.memDep >= 0 &&
            !(ss.done[mi.memDep] &&
              ss.doneAt[mi.memDep] <= ss.now)) {
            return false;
        }
        for (const ExtraDep &xd : stream.extraDeps(idx)) {
            if (xd.idx >= 0 &&
                !(ss.done[xd.idx] &&
                  ss.doneAt[xd.idx] + xd.lat <= ss.now)) {
                return false;
            }
        }
        return true;
    };

    for (;;) {
        if (!ss.midIntake) {
            if (ss.remaining == 0)
                return;
            prism_assert(ss.now < hard_limit, "cycle sim deadlock");

            // ---- Completion / writeback ----
            for (std::size_t k = 0; k < ss.robCount; ++k) {
                Entry &e =
                    ss.rob[(ss.robHead + k) & ss.robMask];
                if (e.state == St::Issued && !ss.done[e.idx] &&
                    e.doneAt <= ss.now) {
                    ss.done[e.idx] = 1;
                    ss.doneAt[e.idx] = e.doneAt;
                    if (static_cast<std::int64_t>(e.idx) ==
                        ss.blockingBranch) {
                        ss.blockingBranch = -1;
                        ss.fetchAllowedAt =
                            e.doneAt + core_.mispredictPenalty;
                    }
                }
            }
            for (TickSimScratch::EnginePool &eng : ss.engines) {
                unsigned wb_used = 0;
                for (Entry &e : eng.pool) {
                    if (e.state != St::Issued || e.doneAt > ss.now)
                        continue;
                    const MInst &mi = stream[e.idx];
                    const bool needs_wb =
                        opInfo(mi.op).writesDst &&
                        eng.params.wbBusWidth > 0;
                    if (needs_wb &&
                        wb_used >= eng.params.wbBusWidth) {
                        continue; // bus full; retry next cycle
                    }
                    if (needs_wb)
                        ++wb_used;
                    ss.done[e.idx] = 1;
                    ss.doneAt[e.idx] = ss.now;
                    --ss.remaining;
                }
                eng.pool.erase(
                    std::remove_if(eng.pool.begin(),
                                   eng.pool.end(),
                                   [&ss](const Entry &e) {
                                       return ss.done[e.idx] != 0;
                                   }),
                    eng.pool.end());
            }

            // ---- Core commit ----
            for (unsigned k = 0;
                 k < core_.width && ss.robCount > 0; ++k) {
                if (!ss.done[ss.rob[ss.robHead & ss.robMask].idx])
                    break;
                ss.robHead = (ss.robHead + 1) & ss.robMask;
                --ss.robCount;
                --ss.remaining;
            }

            // ---- Core issue ----
            unsigned issued = 0;
            unsigned iq_scanned = 0;
            for (std::size_t k = 0; k < ss.robCount; ++k) {
                Entry &e =
                    ss.rob[(ss.robHead + k) & ss.robMask];
                if (issued >= core_.width)
                    break;
                if (e.state != St::Waiting)
                    continue;
                if (++iq_scanned > ss.iqCap)
                    break;
                const MInst &mi = stream[e.idx];
                if (!deps_ready(e.idx)) {
                    if (core_.inorder)
                        break;
                    continue;
                }
                Cycle *unit = nullptr;
                if (mi.fu != FuClass::None) {
                    auto &pool = ss.fus[fuPoolIndex(mi.fu)];
                    for (Cycle &u : pool) {
                        if (u <= ss.now) {
                            unit = &u;
                            break;
                        }
                    }
                    if (unit == nullptr) {
                        if (core_.inorder)
                            break;
                        continue;
                    }
                }
                const Cycle lat = std::max<Cycle>(
                    mi.isLoad ? mi.memLat : mi.lat, 1);
                e.state = St::Issued;
                e.doneAt = ss.now + lat;
                if (unit != nullptr)
                    *unit = ss.now + 1;
                ++issued;
            }

            // ---- Engine issue ----
            for (TickSimScratch::EnginePool &eng : ss.engines) {
                unsigned eng_issued = 0;
                unsigned mem_issued = 0;
                for (Entry &e : eng.pool) {
                    if (eng_issued >= eng.params.issueWidth)
                        break;
                    if (e.state != St::Waiting)
                        continue;
                    const MInst &mi = stream[e.idx];
                    const bool is_mem = mi.isLoad || mi.isStore;
                    if (is_mem && eng.params.memPorts > 0 &&
                        mem_issued >= eng.params.memPorts) {
                        continue;
                    }
                    if (!deps_ready(e.idx))
                        continue;
                    const Cycle lat = std::max<Cycle>(
                        mi.isLoad ? mi.memLat : mi.lat, 1);
                    e.state = St::Issued;
                    e.doneAt = ss.now + lat;
                    ++eng_issued;
                    if (is_mem)
                        ++mem_issued;
                }
            }

            // ---- Core dispatch (gated by ROB/IQ occupancy) ----
            unsigned waiting = 0;
            if (!core_.inorder) {
                for (std::size_t k = 0; k < ss.robCount; ++k) {
                    waiting +=
                        ss.rob[(ss.robHead + k) & ss.robMask]
                            .state == St::Waiting;
                }
            }
            for (unsigned k = 0;
                 k < core_.width && ss.fbCount > 0 &&
                 ss.robCount < ss.robCap &&
                 (core_.inorder || waiting < ss.iqCap);
                 ++k) {
                Entry e;
                e.idx = ss.fetchBuf[ss.fbHead & ss.fbMask];
                ss.fbHead = (ss.fbHead + 1) & ss.fbMask;
                --ss.fbCount;
                ss.rob[(ss.robHead + ss.robCount) & ss.robMask] = e;
                ++ss.robCount;
                ++waiting;
            }

            while (ss.prefixDone < navail &&
                   ss.done[ss.prefixDone]) {
                ++ss.prefixDone;
            }
            ss.fetched = 0;
            ss.midIntake = true;
        }

        // ---- Unified intake (fetch / engine injection) ----
        bool stalled = false;
        while (ss.nextIntake < navail) {
            const MInst &mi = stream[ss.nextIntake];
            if (mi.startRegion && ss.prefixDone < ss.nextIntake) {
                stalled = true; // region boundary drains machine
                break;
            }
            if (mi.unit == ExecUnit::Core) {
                if (ss.blockingBranch != -1 ||
                    ss.now < ss.fetchAllowedAt) {
                    stalled = true;
                    break;
                }
                if (ss.fetched >= core_.width ||
                    ss.fbCount >= ss.fbCap) {
                    stalled = true;
                    break;
                }
                ss.fetchBuf[(ss.fbHead + ss.fbCount) & ss.fbMask] =
                    ss.nextIntake;
                ++ss.fbCount;
                ++ss.fetched;
                if (mi.isCondBranch && mi.mispredicted) {
                    ss.blockingBranch =
                        static_cast<std::int64_t>(ss.nextIntake);
                }
                ++ss.nextIntake;
                if (ss.blockingBranch != -1) {
                    stalled = true;
                    break;
                }
                if (mi.takenBranch) {
                    // Fetch group ends at a taken branch.
                    ss.fetched = core_.width;
                    stalled = true;
                    break;
                }
            } else {
                TickSimScratch::EnginePool &eng =
                    engine_of(mi.unit);
                if (eng.pool.size() >= eng.params.window) {
                    stalled = true;
                    break;
                }
                Entry e;
                e.idx = ss.nextIntake;
                eng.pool.push_back(e);
                ++ss.nextIntake;
            }
        }
        if (!stalled && ss.nextIntake == navail && !ss.finalized)
            return; // out of input mid-cycle; resume on next feed
        ss.midIntake = false;

        ++ss.now;
    }
}

Cycle
TickCycleCoreSim::run(const MStream &stream,
                      TickSimScratch &ss) const
{
    if (stream.empty())
        return 0;
    begin(ss);
    feed(ss, stream, 0, stream.size());
    return finishRun(ss, stream);
}

} // namespace prism
