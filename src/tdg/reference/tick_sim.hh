/**
 * @file
 * The original tick-every-cycle reference simulator, preserved
 * verbatim as the differential oracle for the event-driven
 * CycleCoreSim (ref_models.hh). Every cycle is visited and every
 * waiting entry's dependences are rescanned — O(cycles × window ×
 * deps), slow but trivially auditable. tests/test_reference.cc
 * asserts the event-driven engine is cycle-identical to this one
 * across workload classes, core configs and window sizes; it is not
 * used on any hot path.
 */

#ifndef PRISM_TDG_REFERENCE_TICK_SIM_HH
#define PRISM_TDG_REFERENCE_TICK_SIM_HH

#include <array>
#include <cstdint>
#include <vector>

#include "uarch/core_config.hh"
#include "uarch/pipeline_model.hh"
#include "uarch/udg.hh"

namespace prism
{

/** All machine state of one tick-loop simulation run. */
struct TickSimScratch
{
    enum class St : std::uint8_t { Waiting, Issued };

    struct Entry
    {
        std::size_t idx = 0;
        St state = St::Waiting;
        Cycle doneAt = 0;
    };

    std::vector<std::uint8_t> done;
    std::vector<Cycle> doneAt;

    std::vector<Entry> rob;
    std::size_t robMask = 0;
    std::size_t robHead = 0;
    std::size_t robCount = 0;
    unsigned robCap = 0;
    unsigned iqCap = 0;

    std::vector<std::size_t> fetchBuf;
    std::size_t fbMask = 0;
    std::size_t fbHead = 0;
    std::size_t fbCount = 0;
    std::size_t fbCap = 0;

    std::array<std::vector<Cycle>, 4> fus;

    struct EnginePool
    {
        AccelParams params;
        std::vector<Entry> pool;
    };
    std::array<EnginePool, 3> engines;

    std::int64_t blockingBranch = -1;
    Cycle fetchAllowedAt = 0;
    std::size_t nextIntake = 0;
    std::size_t prefixDone = 0;
    std::size_t remaining = 0;
    Cycle now = 0;
    unsigned fetched = 0;
    bool midIntake = false;
    bool finalized = false;
};

/**
 * Tick-loop twin of CycleCoreSim with the identical windowed API
 * (begin/feed/finishRun) and identical cycle semantics.
 */
class TickCycleCoreSim
{
  public:
    explicit TickCycleCoreSim(const CoreConfig &cfg) : core_(cfg) {}

    explicit TickCycleCoreSim(const PipelineConfig &cfg)
        : core_(cfg.core), cgra_(cfg.cgra), nsdf_(cfg.nsdf),
          tracep_(cfg.tracep)
    {
    }

    void begin(TickSimScratch &ss) const;
    void feed(TickSimScratch &ss, const MStream &stream,
              std::size_t b, std::size_t e) const;
    Cycle finishRun(TickSimScratch &ss, const MStream &stream) const;
    Cycle run(const MStream &stream, TickSimScratch &ss) const;

  private:
    void advance(TickSimScratch &ss, const MStream &stream) const;

    CoreConfig core_;
    AccelParams cgra_ = dpCgraParams();
    AccelParams nsdf_ = nsdfParams();
    AccelParams tracep_ = tracepParams();
};

} // namespace prism

#endif // PRISM_TDG_REFERENCE_TICK_SIM_HH
