/**
 * @file
 * Independent reference model used to validate the TDG (paper
 * Table 1 / Figure 5). The paper validates its graph-transformation
 * models against an independent source of truth (published results /
 * detailed simulation); Prism substitutes a **discrete-event,
 * structure-accurate cycle simulator** built with entirely different
 * machinery than the µDG's streaming longest-path computation:
 *
 *  - core-context instructions flow through an explicit fetch buffer
 *    (gated by unresolved mispredicted branches), ROB, issue-queue
 *    scan, FU/port busy tracking and in-order commit;
 *  - accelerator-context operations enter a per-engine dataflow pool
 *    bounded by the engine's operand window, issue when operands
 *    arrive subject to per-cycle issue/memory-port limits, and
 *    retire through a bandwidth-limited writeback bus;
 *  - region boundaries (MInst::startRegion) drain the whole machine.
 *
 * Both the baseline and every transformed core+accelerator stream
 * can be executed by this simulator, so each BSA model's projected
 * speedup/energy is validated against event-driven execution of the
 * same rewritten graph (the validation recipe of Appendix A).
 *
 * Like the µDG engine, the simulator runs windowed through a
 * caller-owned RefSimScratch: begin() arms the machine, feed() makes
 * consecutive slices of a persistent stream available for intake, and
 * finishRun() drains. Pausing happens *mid-cycle* when intake runs
 * out of fed input, so resuming with the next window continues intake
 * within the same simulated cycle — windowing is cycle-identical to a
 * whole-stream run by construction.
 */

#ifndef PRISM_TDG_REFERENCE_REF_MODELS_HH
#define PRISM_TDG_REFERENCE_REF_MODELS_HH

#include <array>
#include <cstdint>
#include <vector>

#include "uarch/core_config.hh"
#include "uarch/pipeline_model.hh"
#include "uarch/udg.hh"

namespace prism
{

/**
 * All machine state of one discrete-event simulation run. Reusable
 * across runs; every container retains capacity, so steady-state
 * simulation is allocation-free. Treat as opaque.
 */
struct RefSimScratch
{
    enum class St : std::uint8_t { Waiting, Issued };

    struct Entry
    {
        std::size_t idx = 0;
        St state = St::Waiting;
        Cycle doneAt = 0;
    };

    /** Writeback status per stream index (grows with feed()). */
    std::vector<std::uint8_t> done;
    std::vector<Cycle> doneAt;

    /** ROB as a ring (power-of-two storage, logical cap robCap). */
    std::vector<Entry> rob;
    std::size_t robMask = 0;
    std::size_t robHead = 0;
    std::size_t robCount = 0;
    unsigned robCap = 0;
    unsigned iqCap = 0;

    /** Fetch buffer as a ring. */
    std::vector<std::size_t> fetchBuf;
    std::size_t fbMask = 0;
    std::size_t fbHead = 0;
    std::size_t fbCount = 0;
    std::size_t fbCap = 0;

    /** Per-pool FU busy-until times. */
    std::array<std::vector<Cycle>, 4> fus;

    struct EnginePool
    {
        AccelParams params;
        std::vector<Entry> pool;
    };
    std::array<EnginePool, 3> engines;

    std::int64_t blockingBranch = -1;
    Cycle fetchAllowedAt = 0;
    std::size_t nextIntake = 0;
    std::size_t prefixDone = 0; ///< first index not yet done
    std::size_t remaining = 0;  ///< fed but not yet retired
    Cycle now = 0;
    unsigned fetched = 0;       ///< intake progress within `now`
    bool midIntake = false;     ///< paused inside the intake phase
    bool finalized = false;
};

/**
 * Discrete-event cycle-level simulation of a core plus attached
 * accelerator engines over an MInst stream.
 */
class CycleCoreSim
{
  public:
    explicit CycleCoreSim(const CoreConfig &cfg) : core_(cfg) {}

    /** Full machine configuration (cores + engines). */
    explicit CycleCoreSim(const PipelineConfig &cfg)
        : core_(cfg.core), cgra_(cfg.cgra), nsdf_(cfg.nsdf),
          tracep_(cfg.tracep)
    {
    }

    /** Arm `ss` for a fresh run under this configuration. */
    void begin(RefSimScratch &ss) const;

    /**
     * Make stream[b..e) available for intake and simulate as far as
     * the input allows. Windowing contract: every feed() of one run
     * must pass the *same persistent* MStream (in-flight entries
     * index into it), and ranges must be consecutive from 0.
     */
    void feed(RefSimScratch &ss, const MStream &stream,
              std::size_t b, std::size_t e) const;

    /** Drain the machine; returns total cycles. */
    Cycle finishRun(RefSimScratch &ss, const MStream &stream) const;

    /** One-shot: simulate the whole stream via caller scratch. */
    Cycle run(const MStream &stream, RefSimScratch &ss) const;

    /** One-shot convenience over a thread-local scratch. */
    Cycle run(const MStream &stream) const;

  private:
    /** Simulate until drained, or paused awaiting more input. */
    void advance(RefSimScratch &ss, const MStream &stream) const;

    CoreConfig core_;
    AccelParams cgra_ = dpCgraParams();
    AccelParams nsdf_ = nsdfParams();
    AccelParams tracep_ = tracepParams();
};

} // namespace prism

#endif // PRISM_TDG_REFERENCE_REF_MODELS_HH
