/**
 * @file
 * Independent reference model used to validate the TDG (paper
 * Table 1 / Figure 5). The paper validates its graph-transformation
 * models against an independent source of truth (published results /
 * detailed simulation); Prism substitutes a **discrete-event,
 * structure-accurate cycle simulator** built with entirely different
 * machinery than the µDG's streaming longest-path computation:
 *
 *  - core-context instructions flow through an explicit fetch buffer
 *    (gated by unresolved mispredicted branches), ROB, issue-queue
 *    scan, FU/port busy tracking and in-order commit;
 *  - accelerator-context operations enter a per-engine dataflow pool
 *    bounded by the engine's operand window, issue when operands
 *    arrive subject to per-cycle issue/memory-port limits, and
 *    retire through a bandwidth-limited writeback bus;
 *  - region boundaries (MInst::startRegion) drain the whole machine.
 *
 * Both the baseline and every transformed core+accelerator stream
 * can be executed by this simulator, so each BSA model's projected
 * speedup/energy is validated against event-driven execution of the
 * same rewritten graph (the validation recipe of Appendix A).
 */

#ifndef PRISM_TDG_REFERENCE_REF_MODELS_HH
#define PRISM_TDG_REFERENCE_REF_MODELS_HH

#include "uarch/core_config.hh"
#include "uarch/pipeline_model.hh"
#include "uarch/udg.hh"

namespace prism
{

/**
 * Discrete-event cycle-level simulation of a core plus attached
 * accelerator engines over an MInst stream.
 */
class CycleCoreSim
{
  public:
    explicit CycleCoreSim(const CoreConfig &cfg) : core_(cfg) {}

    /** Full machine configuration (cores + engines). */
    explicit CycleCoreSim(const PipelineConfig &cfg)
        : core_(cfg.core), cgra_(cfg.cgra), nsdf_(cfg.nsdf),
          tracep_(cfg.tracep)
    {
    }

    /** Simulate the stream; returns total cycles. */
    Cycle run(const MStream &stream) const;

  private:
    CoreConfig core_;
    AccelParams cgra_ = dpCgraParams();
    AccelParams nsdf_ = nsdfParams();
    AccelParams tracep_ = tracepParams();
};

} // namespace prism

#endif // PRISM_TDG_REFERENCE_REF_MODELS_HH
