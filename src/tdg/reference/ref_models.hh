/**
 * @file
 * Independent reference model used to validate the TDG (paper
 * Table 1 / Figure 5). The paper validates its graph-transformation
 * models against an independent source of truth (published results /
 * detailed simulation); Prism substitutes a **discrete-event,
 * structure-accurate cycle simulator** built with entirely different
 * machinery than the µDG's streaming longest-path computation:
 *
 *  - core-context instructions flow through an explicit fetch buffer
 *    (gated by unresolved mispredicted branches), ROB, issue-queue
 *    scan, FU/port busy tracking and in-order commit;
 *  - accelerator-context operations enter a per-engine dataflow pool
 *    bounded by the engine's operand window, issue when operands
 *    arrive subject to per-cycle issue/memory-port limits, and
 *    retire through a bandwidth-limited writeback bus;
 *  - region boundaries (MInst::startRegion) drain the whole machine.
 *
 * Both the baseline and every transformed core+accelerator stream
 * can be executed by this simulator, so each BSA model's projected
 * speedup/energy is validated against event-driven execution of the
 * same rewritten graph (the validation recipe of Appendix A).
 *
 * The engine is event-driven (DESIGN.md §9): producer→consumer wakeup
 * lists built per fed window replace per-cycle dependence rescans, a
 * bucketed event calendar records every in-flight completion and
 * future ready time, and when a cycle ends with no machine activity
 * `now` jumps straight to the next calendar event instead of ticking
 * through stall cycles. Results are cycle-identical to the original
 * tick-every-cycle simulator (kept as TickCycleCoreSim, the
 * differential oracle in tests/test_reference.cc).
 *
 * Like the µDG engine, the simulator runs windowed through a
 * caller-owned RefSimScratch: begin() arms the machine, feed() makes
 * consecutive slices of a persistent stream available for intake, and
 * finishRun() drains. Pausing happens *mid-cycle* when intake runs
 * out of fed input, so resuming with the next window continues intake
 * within the same simulated cycle — windowing is cycle-identical to a
 * whole-stream run by construction.
 */

#ifndef PRISM_TDG_REFERENCE_REF_MODELS_HH
#define PRISM_TDG_REFERENCE_REF_MODELS_HH

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "uarch/core_config.hh"
#include "uarch/pipeline_model.hh"
#include "uarch/udg.hh"

namespace prism
{

/**
 * All machine state of one discrete-event simulation run. Reusable
 * across runs; every container retains capacity, so steady-state
 * simulation is allocation-free. Treat as opaque (except `doneAt`,
 * which sampled validation reads as the per-instruction completion
 * frontier after a run).
 */
struct RefSimScratch
{
    static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

    /** Calendar payload meaning "visit this cycle" (no completion). */
    static constexpr std::uint32_t kWakeMarker = 0xFFFFFFFFu;

    static constexpr Cycle kNever = std::numeric_limits<Cycle>::max();

    /** Calendar ring horizon (power of two, cycles). */
    static constexpr std::size_t kHorizon = 2048;

    // Hoisted per-inst metadata bits (filled at feed()).
    static constexpr std::uint8_t kMetaFuMask = 0x03;
    static constexpr std::uint8_t kMetaHasFu = 0x04;
    static constexpr std::uint8_t kMetaIsMem = 0x08;
    static constexpr std::uint8_t kMetaWritesDst = 0x10;

    // ---- Per-stream-index tables (grow with feed()) ----
    std::vector<std::uint8_t> done;
    std::vector<Cycle> doneAt;
    /** Max over resolved producers of availability (+ edge latency). */
    std::vector<Cycle> readyAt;
    /** Unresolved producer edges still owed a wakeup. */
    std::vector<std::uint32_t> depCount;
    /** Head of this producer's waiter-edge list (kNil = none). */
    std::vector<std::uint32_t> waiterHead;
    /** Core issue-queue waiting-list links (program order). */
    std::vector<std::uint32_t> nextWaiting;
    /** max(isLoad ? memLat : lat, 1), hoisted. */
    std::vector<std::uint16_t> effLat;
    std::vector<std::uint8_t> meta;

    /** Wakeup edge pool (head-linked per producer via waiterHead). */
    struct WaiterEdge
    {
        std::uint32_t consumer = 0;
        std::uint32_t next = kNil;
        std::uint16_t lat = 0;
    };
    std::vector<WaiterEdge> edges;

    /** ROB as a ring of stream indices (logical cap robCap). */
    std::vector<std::uint32_t> rob;
    std::size_t robMask = 0;
    std::size_t robHead = 0;
    std::size_t robCount = 0;
    unsigned robCap = 0;
    unsigned iqCap = 0;

    /** Core waiting list (not-yet-issued ROB entries, program order). */
    std::uint32_t waitHead = kNil;
    std::uint32_t waitTail = kNil;
    std::size_t waitCount = 0;

    /** Fetch buffer as a ring. */
    std::vector<std::uint32_t> fetchBuf;
    std::size_t fbMask = 0;
    std::size_t fbHead = 0;
    std::size_t fbCount = 0;
    std::size_t fbCap = 0;

    /** Per-pool FU busy-until times. */
    std::array<std::vector<Cycle>, 4> fus;

    struct EngineEntry
    {
        std::uint32_t idx = 0;
        std::uint8_t issued = 0;
        Cycle doneAt = 0;
    };
    struct EnginePool
    {
        AccelParams params;
        std::vector<EngineEntry> pool;
        std::size_t issuedCount = 0;
        Cycle minDoneAt = kNever;
    };
    std::array<EnginePool, 3> engines;

    /**
     * Event calendar: ring of per-cycle buckets (slot = cycle mod
     * kHorizon; every pending bucket is within kHorizon of `now`, so
     * a slot maps to one cycle), an occupancy bitset for O(1) bucket
     * tests and fast next-event scans, and an unsorted overflow list
     * for events at or beyond the horizon.
     */
    std::vector<std::vector<std::uint32_t>> calendar;
    std::array<std::uint64_t, kHorizon / 64> calBits{};
    std::vector<std::pair<Cycle, std::uint32_t>> farEvents;
    Cycle farMin = kNever;

    std::int64_t blockingBranch = -1;
    Cycle fetchAllowedAt = 0;
    std::size_t nextIntake = 0;
    std::size_t prefixDone = 0; ///< first index not yet done
    std::size_t remaining = 0;  ///< fed but not yet retired
    Cycle now = 0;
    unsigned fetched = 0;       ///< intake progress within `now`
    bool midIntake = false;     ///< paused inside the intake phase
    bool finalized = false;
    /** Did any phase of cycle `now` change machine state? Persisted
     *  across a mid-intake pause so resume keeps the cycle's verdict. */
    bool cycleActivity = false;
    /** Intake blocked on now < fetchAllowedAt (skip target). */
    bool fetchWait = false;
};

/**
 * Discrete-event cycle-level simulation of a core plus attached
 * accelerator engines over an MInst stream.
 */
class CycleCoreSim
{
  public:
    explicit CycleCoreSim(const CoreConfig &cfg) : core_(cfg) {}

    /** Full machine configuration (cores + engines). */
    explicit CycleCoreSim(const PipelineConfig &cfg)
        : core_(cfg.core), cgra_(cfg.cgra), nsdf_(cfg.nsdf),
          tracep_(cfg.tracep)
    {
    }

    /** Arm `ss` for a fresh run under this configuration. */
    void begin(RefSimScratch &ss) const;

    /**
     * Make stream[b..e) available for intake and simulate as far as
     * the input allows. Windowing contract: every feed() of one run
     * must pass the *same persistent* MStream (in-flight entries
     * index into it), and ranges must be consecutive from 0.
     */
    void feed(RefSimScratch &ss, const MStream &stream,
              std::size_t b, std::size_t e) const;

    /** Drain the machine; returns total cycles. */
    Cycle finishRun(RefSimScratch &ss, const MStream &stream) const;

    /** One-shot: simulate the whole stream via caller scratch. */
    Cycle run(const MStream &stream, RefSimScratch &ss) const;

    /** One-shot convenience over a thread-local scratch. */
    Cycle run(const MStream &stream) const;

  private:
    /** Simulate until drained, or paused awaiting more input. */
    void advance(RefSimScratch &ss, const MStream &stream) const;

    CoreConfig core_;
    AccelParams cgra_ = dpCgraParams();
    AccelParams nsdf_ = nsdfParams();
    AccelParams tracep_ = tracepParams();
};

} // namespace prism

#endif // PRISM_TDG_REFERENCE_REF_MODELS_HH
