#include "tdg/reference/ref_models.hh"

#include <algorithm>

#include "common/logging.hh"

namespace prism
{

namespace
{

std::size_t
pow2AtLeast(std::size_t n)
{
    std::size_t cap = 1;
    while (cap < n)
        cap <<= 1;
    return cap;
}

constexpr std::uint32_t kNil = RefSimScratch::kNil;
constexpr std::uint32_t kWakeMarker = RefSimScratch::kWakeMarker;
constexpr Cycle kNever = RefSimScratch::kNever;
constexpr std::size_t kHorizon = RefSimScratch::kHorizon;
constexpr std::size_t kSlotMask = kHorizon - 1;

/**
 * Schedule a calendar visit at cycle `c` (> now). Completion events
 * carry the retiring stream index; kWakeMarker just forces a visit
 * (engine completions and future ready times), and is dropped when
 * the bucket is already occupied — one visit suffices.
 */
void
pushEvent(RefSimScratch &ss, Cycle c, std::uint32_t payload)
{
    if (c - ss.now >= kHorizon) {
        ss.farEvents.emplace_back(c, payload);
        if (c < ss.farMin)
            ss.farMin = c;
        return;
    }
    const std::size_t slot = c & kSlotMask;
    std::vector<std::uint32_t> &bucket = ss.calendar[slot];
    if (bucket.empty())
        ss.calBits[slot >> 6] |= 1ull << (slot & 63);
    else if (payload == kWakeMarker)
        return;
    bucket.push_back(payload);
}

/**
 * Producer `idx` became available at cycle `avail`: fold the
 * availability (+ edge latency) into every waiter's readyAt and
 * release its dependence count. Wakes only happen on cycles with
 * machine activity, so the following cycle is always visited and its
 * issue scans will see (and, if needed, schedule markers for) the
 * newly resolved consumers.
 */
void
wakeWaiters(RefSimScratch &ss, std::uint32_t idx, Cycle avail)
{
    std::uint32_t e = ss.waiterHead[idx];
    ss.waiterHead[idx] = kNil;
    while (e != kNil) {
        const RefSimScratch::WaiterEdge &ed = ss.edges[e];
        const Cycle t = avail + ed.lat;
        if (t > ss.readyAt[ed.consumer])
            ss.readyAt[ed.consumer] = t;
        --ss.depCount[ed.consumer];
        e = ed.next;
    }
}

/** Cycle of the earliest pending calendar event, or kNever. */
Cycle
nextEventCycle(const RefSimScratch &ss)
{
    Cycle best = ss.farMin;
    const std::size_t start = (ss.now + 1) & kSlotMask;
    std::size_t best_dist = kHorizon;
    for (std::size_t w = 0; w < kHorizon / 64; ++w) {
        std::uint64_t word = ss.calBits[w];
        while (word != 0) {
            const unsigned bit =
                static_cast<unsigned>(__builtin_ctzll(word));
            word &= word - 1;
            const std::size_t slot = w * 64 + bit;
            const std::size_t dist = (slot - start) & kSlotMask;
            if (dist < best_dist)
                best_dist = dist;
        }
    }
    if (best_dist < kHorizon) {
        const Cycle ring_next = ss.now + 1 + best_dist;
        if (ring_next < best)
            best = ring_next;
    }
    return best;
}

} // namespace

void
CycleCoreSim::begin(RefSimScratch &ss) const
{
    ss.done.clear();
    ss.doneAt.clear();
    ss.readyAt.clear();
    ss.depCount.clear();
    ss.waiterHead.clear();
    ss.nextWaiting.clear();
    ss.effLat.clear();
    ss.meta.clear();
    ss.edges.clear();

    ss.robCap = core_.inorder ? 2 * core_.width : core_.robSize;
    ss.iqCap = core_.inorder ? core_.width : core_.instWindow;
    const std::size_t rob_store =
        pow2AtLeast(std::max<std::size_t>(ss.robCap, 1));
    if (ss.rob.size() < rob_store)
        ss.rob.resize(rob_store);
    ss.robMask = rob_store - 1;
    ss.robHead = 0;
    ss.robCount = 0;
    ss.waitHead = kNil;
    ss.waitTail = kNil;
    ss.waitCount = 0;

    ss.fbCap = 3 * core_.width;
    const std::size_t fb_store =
        pow2AtLeast(std::max<std::size_t>(ss.fbCap, 1));
    if (ss.fetchBuf.size() < fb_store)
        ss.fetchBuf.resize(fb_store);
    ss.fbMask = fb_store - 1;
    ss.fbHead = 0;
    ss.fbCount = 0;

    ss.fus[0].assign(core_.numAlu, 0);
    ss.fus[1].assign(core_.numMulDiv, 0);
    ss.fus[2].assign(core_.numFp, 0);
    ss.fus[3].assign(core_.dcachePorts, 0);

    const AccelParams *params[3] = {&cgra_, &nsdf_, &tracep_};
    for (int k = 0; k < 3; ++k) {
        ss.engines[k].params = *params[k];
        ss.engines[k].pool.clear();
        ss.engines[k].pool.reserve(params[k]->window);
        ss.engines[k].issuedCount = 0;
        ss.engines[k].minDoneAt = kNever;
    }

    if (ss.calendar.size() != kHorizon)
        ss.calendar.resize(kHorizon);
    for (std::size_t w = 0; w < kHorizon / 64; ++w) {
        std::uint64_t word = ss.calBits[w];
        while (word != 0) {
            const unsigned bit =
                static_cast<unsigned>(__builtin_ctzll(word));
            word &= word - 1;
            ss.calendar[w * 64 + bit].clear();
        }
        ss.calBits[w] = 0;
    }
    ss.farEvents.clear();
    ss.farMin = kNever;

    ss.blockingBranch = -1;
    ss.fetchAllowedAt = 0;
    ss.nextIntake = 0;
    ss.prefixDone = 0;
    ss.remaining = 0;
    ss.now = 0;
    ss.fetched = 0;
    ss.midIntake = false;
    ss.finalized = false;
    ss.cycleActivity = false;
    ss.fetchWait = false;
}

void
CycleCoreSim::feed(RefSimScratch &ss, const MStream &stream,
                   std::size_t b, std::size_t e) const
{
    prism_assert(b == ss.done.size(),
                 "reference sim windows must be consecutive");
    prism_assert(e <= stream.size(), "window beyond stream");
    prism_assert(e < static_cast<std::size_t>(kNil),
                 "stream too large for 32-bit sim indices");
    if (e <= b)
        return;
    ss.done.resize(e, 0);
    ss.doneAt.resize(e, 0);
    ss.readyAt.resize(e, 0);
    ss.depCount.resize(e, 0);
    ss.waiterHead.resize(e, kNil);
    ss.nextWaiting.resize(e, kNil);
    ss.effLat.resize(e, 0);
    ss.meta.resize(e, 0);

    // Hoist per-inst metadata and build the wakeup table: producers
    // already done fold straight into readyAt; in-flight producers
    // get a waiter edge and a pending dependence count.
    for (std::size_t i = b; i < e; ++i) {
        const MInst &mi = stream[i];
        ss.effLat[i] = static_cast<std::uint16_t>(std::max<Cycle>(
            mi.isLoad ? mi.memLat : mi.lat, 1));
        std::uint8_t m = 0;
        if (mi.fu != FuClass::None) {
            m |= RefSimScratch::kMetaHasFu |
                 static_cast<std::uint8_t>(fuPoolIndex(mi.fu));
        }
        if (mi.isLoad || mi.isStore)
            m |= RefSimScratch::kMetaIsMem;
        if (opInfo(mi.op).writesDst)
            m |= RefSimScratch::kMetaWritesDst;
        ss.meta[i] = m;

        auto link = [&ss, i](std::int32_t d, std::uint16_t lat) {
            if (d < 0)
                return;
            if (ss.done[d]) {
                const Cycle t = ss.doneAt[d] + lat;
                if (t > ss.readyAt[i])
                    ss.readyAt[i] = t;
            } else {
                ss.edges.push_back(
                    {static_cast<std::uint32_t>(i),
                     ss.waiterHead[d], lat});
                ss.waiterHead[d] =
                    static_cast<std::uint32_t>(ss.edges.size() - 1);
                ++ss.depCount[i];
            }
        };
        for (std::int32_t d : mi.dep)
            link(d, 0);
        link(mi.memDep, 0);
        for (const ExtraDep &xd : stream.extraDeps(i))
            link(xd.idx, xd.lat);
    }

    ss.remaining += e - b;
    advance(ss, stream);
}

Cycle
CycleCoreSim::finishRun(RefSimScratch &ss,
                        const MStream &stream) const
{
    ss.finalized = true;
    advance(ss, stream);
    prism_assert(ss.remaining == 0 &&
                     ss.nextIntake == ss.done.size(),
                 "reference sim did not drain");
    return ss.now;
}

void
CycleCoreSim::advance(RefSimScratch &ss,
                      const MStream &stream) const
{
    const std::size_t navail = ss.done.size();
    const Cycle hard_limit =
        static_cast<Cycle>(navail) * 600 + 100000;

    auto engine_of = [&ss](ExecUnit u) -> RefSimScratch::EnginePool & {
        switch (u) {
          case ExecUnit::Cgra: return ss.engines[0];
          case ExecUnit::Nsdf: return ss.engines[1];
          case ExecUnit::Tracep: return ss.engines[2];
          default: panic("not an engine unit");
        }
    };

    // Completion of core-context index `idx` (calendar payload).
    auto complete_core = [this, &ss](std::uint32_t idx) {
        ss.done[idx] = 1;
        wakeWaiters(ss, idx, ss.doneAt[idx]);
        if (static_cast<std::int64_t>(idx) == ss.blockingBranch) {
            ss.blockingBranch = -1;
            ss.fetchAllowedAt =
                ss.doneAt[idx] + core_.mispredictPenalty;
        }
        ss.cycleActivity = true;
    };

    for (;;) {
        if (!ss.midIntake) {
            // Everything fed has retired: finished, or idle until
            // the next window arrives.
            if (ss.remaining == 0)
                return;
            prism_assert(ss.now < hard_limit, "cycle sim deadlock");
            ss.cycleActivity = false;
            ss.fetchWait = false;

            // ---- Completion / writeback ----
            // Drain this cycle's calendar bucket: core completions
            // wake their waiters; markers only forced the visit.
            {
                const std::size_t slot = ss.now & kSlotMask;
                if (ss.calBits[slot >> 6] & (1ull << (slot & 63))) {
                    std::vector<std::uint32_t> &bucket =
                        ss.calendar[slot];
                    for (std::uint32_t p : bucket) {
                        if (p != kWakeMarker)
                            complete_core(p);
                    }
                    bucket.clear();
                    ss.calBits[slot >> 6] &= ~(1ull << (slot & 63));
                }
                if (ss.farMin <= ss.now) {
                    Cycle nmin = kNever;
                    std::size_t w = 0;
                    for (std::size_t i = 0; i < ss.farEvents.size();
                         ++i) {
                        if (ss.farEvents[i].first <= ss.now) {
                            if (ss.farEvents[i].second != kWakeMarker)
                                complete_core(ss.farEvents[i].second);
                        } else {
                            if (ss.farEvents[i].first < nmin)
                                nmin = ss.farEvents[i].first;
                            ss.farEvents[w++] = ss.farEvents[i];
                        }
                    }
                    ss.farEvents.resize(w);
                    ss.farMin = nmin;
                }
            }
            for (RefSimScratch::EnginePool &eng : ss.engines) {
                if (eng.issuedCount == 0 || eng.minDoneAt > ss.now)
                    continue;
                unsigned wb_used = 0;
                Cycle nmin = kNever;
                bool retired = false;
                for (RefSimScratch::EngineEntry &e : eng.pool) {
                    if (!e.issued)
                        continue;
                    if (e.doneAt > ss.now) {
                        if (e.doneAt < nmin)
                            nmin = e.doneAt;
                        continue;
                    }
                    const bool needs_wb =
                        (ss.meta[e.idx] &
                         RefSimScratch::kMetaWritesDst) != 0 &&
                        eng.params.wbBusWidth > 0;
                    if (needs_wb &&
                        wb_used >= eng.params.wbBusWidth) {
                        // Bus full; retry next cycle (doneAt <= now
                        // keeps the retire trigger armed).
                        if (e.doneAt < nmin)
                            nmin = e.doneAt;
                        continue;
                    }
                    if (needs_wb)
                        ++wb_used;
                    ss.done[e.idx] = 1;
                    ss.doneAt[e.idx] = ss.now;
                    wakeWaiters(ss, e.idx, ss.now);
                    --ss.remaining;
                    --eng.issuedCount;
                    retired = true;
                    ss.cycleActivity = true;
                }
                eng.minDoneAt = nmin;
                if (retired) {
                    eng.pool.erase(
                        std::remove_if(
                            eng.pool.begin(), eng.pool.end(),
                            [&ss](const RefSimScratch::EngineEntry
                                      &e) {
                                return ss.done[e.idx] != 0;
                            }),
                        eng.pool.end());
                }
            }

            // ---- Core commit ----
            for (unsigned k = 0;
                 k < core_.width && ss.robCount > 0; ++k) {
                if (!ss.done[ss.rob[ss.robHead & ss.robMask]])
                    break;
                ss.robHead = (ss.robHead + 1) & ss.robMask;
                --ss.robCount;
                --ss.remaining;
                ss.cycleActivity = true;
            }

            // ---- Core issue ----
            // Walk only the waiting list (program order), at most
            // iqCap entries — identical scan semantics to the
            // original full-ROB pass, which skipped issued entries.
            {
                unsigned issued = 0;
                unsigned iq_scanned = 0;
                Cycle min_future = kNever;
                std::uint32_t prev = kNil;
                std::uint32_t cur = ss.waitHead;
                while (cur != kNil && issued < core_.width) {
                    if (++iq_scanned > ss.iqCap)
                        break;
                    const std::uint32_t nxt = ss.nextWaiting[cur];
                    if (ss.depCount[cur] != 0) {
                        if (core_.inorder)
                            break;
                        prev = cur;
                        cur = nxt;
                        continue;
                    }
                    if (ss.readyAt[cur] > ss.now) {
                        if (ss.readyAt[cur] < min_future)
                            min_future = ss.readyAt[cur];
                        if (core_.inorder)
                            break;
                        prev = cur;
                        cur = nxt;
                        continue;
                    }
                    Cycle *unit = nullptr;
                    const std::uint8_t m = ss.meta[cur];
                    if (m & RefSimScratch::kMetaHasFu) {
                        auto &pool =
                            ss.fus[m & RefSimScratch::kMetaFuMask];
                        for (Cycle &u : pool) {
                            if (u <= ss.now) {
                                unit = &u;
                                break;
                            }
                        }
                        if (unit == nullptr) {
                            // FU busy-until is only ever now+1, so a
                            // blocked pool implies an issue happened
                            // this cycle: next cycle is visited.
                            if (core_.inorder)
                                break;
                            prev = cur;
                            cur = nxt;
                            continue;
                        }
                    }
                    ss.doneAt[cur] = ss.now + ss.effLat[cur];
                    pushEvent(ss, ss.doneAt[cur], cur);
                    if (unit != nullptr)
                        *unit = ss.now + 1;
                    ++issued;
                    ss.cycleActivity = true;
                    if (prev == kNil)
                        ss.waitHead = nxt;
                    else
                        ss.nextWaiting[prev] = nxt;
                    if (cur == ss.waitTail)
                        ss.waitTail = prev;
                    --ss.waitCount;
                    cur = nxt;
                }
                if (min_future != kNever)
                    pushEvent(ss, min_future, kWakeMarker);
            }

            // ---- Engine issue ----
            for (RefSimScratch::EnginePool &eng : ss.engines) {
                if (eng.pool.size() == eng.issuedCount)
                    continue; // nothing waiting
                unsigned eng_issued = 0;
                unsigned mem_issued = 0;
                Cycle min_future = kNever;
                for (RefSimScratch::EngineEntry &e : eng.pool) {
                    if (eng_issued >= eng.params.issueWidth)
                        break;
                    if (e.issued)
                        continue;
                    const bool is_mem =
                        (ss.meta[e.idx] &
                         RefSimScratch::kMetaIsMem) != 0;
                    if (is_mem && eng.params.memPorts > 0 &&
                        mem_issued >= eng.params.memPorts) {
                        continue;
                    }
                    if (ss.depCount[e.idx] != 0)
                        continue;
                    if (ss.readyAt[e.idx] > ss.now) {
                        if (ss.readyAt[e.idx] < min_future)
                            min_future = ss.readyAt[e.idx];
                        continue;
                    }
                    e.issued = 1;
                    e.doneAt = ss.now + ss.effLat[e.idx];
                    if (e.doneAt < eng.minDoneAt)
                        eng.minDoneAt = e.doneAt;
                    ++eng.issuedCount;
                    pushEvent(ss, e.doneAt, kWakeMarker);
                    ++eng_issued;
                    if (is_mem)
                        ++mem_issued;
                    ss.cycleActivity = true;
                }
                if (min_future != kNever)
                    pushEvent(ss, min_future, kWakeMarker);
            }

            // ---- Core dispatch (gated by ROB/IQ occupancy) ----
            for (unsigned k = 0;
                 k < core_.width && ss.fbCount > 0 &&
                 ss.robCount < ss.robCap &&
                 (core_.inorder || ss.waitCount < ss.iqCap);
                 ++k) {
                const std::uint32_t idx =
                    ss.fetchBuf[ss.fbHead & ss.fbMask];
                ss.fbHead = (ss.fbHead + 1) & ss.fbMask;
                --ss.fbCount;
                ss.rob[(ss.robHead + ss.robCount) & ss.robMask] =
                    idx;
                ++ss.robCount;
                ss.nextWaiting[idx] = kNil;
                if (ss.waitTail == kNil)
                    ss.waitHead = idx;
                else
                    ss.nextWaiting[ss.waitTail] = idx;
                ss.waitTail = idx;
                ++ss.waitCount;
                ss.cycleActivity = true;
            }

            while (ss.prefixDone < navail &&
                   ss.done[ss.prefixDone]) {
                ++ss.prefixDone;
            }
            ss.fetched = 0;
            ss.midIntake = true;
        }

        // ---- Unified intake (fetch / engine injection) ----
        // The only phase that consumes input. When it runs dry and
        // the run is not finalized, pause *here*, inside cycle
        // `now`: the next feed() resumes intake in the same cycle,
        // which is what makes windowing cycle-identical.
        bool stalled = false;
        while (ss.nextIntake < navail) {
            const MInst &mi = stream[ss.nextIntake];
            if (mi.startRegion && ss.prefixDone < ss.nextIntake) {
                stalled = true; // region boundary drains machine
                break;
            }
            if (mi.unit == ExecUnit::Core) {
                if (ss.blockingBranch != -1 ||
                    ss.now < ss.fetchAllowedAt) {
                    if (ss.blockingBranch == -1)
                        ss.fetchWait = true;
                    stalled = true;
                    break;
                }
                if (ss.fetched >= core_.width ||
                    ss.fbCount >= ss.fbCap) {
                    stalled = true;
                    break;
                }
                ss.fetchBuf[(ss.fbHead + ss.fbCount) & ss.fbMask] =
                    static_cast<std::uint32_t>(ss.nextIntake);
                ++ss.fbCount;
                ++ss.fetched;
                ss.cycleActivity = true;
                if (mi.isCondBranch && mi.mispredicted) {
                    ss.blockingBranch =
                        static_cast<std::int64_t>(ss.nextIntake);
                }
                ++ss.nextIntake;
                if (ss.blockingBranch != -1) {
                    stalled = true;
                    break;
                }
                if (mi.takenBranch) {
                    // Fetch group ends at a taken branch.
                    ss.fetched = core_.width;
                    stalled = true;
                    break;
                }
            } else {
                RefSimScratch::EnginePool &eng =
                    engine_of(mi.unit);
                if (eng.pool.size() >= eng.params.window) {
                    stalled = true;
                    break;
                }
                RefSimScratch::EngineEntry e;
                e.idx = static_cast<std::uint32_t>(ss.nextIntake);
                eng.pool.push_back(e);
                ++ss.nextIntake;
                ss.cycleActivity = true;
            }
        }
        if (!stalled && ss.nextIntake == navail && !ss.finalized)
            return; // out of input mid-cycle; resume on next feed
        ss.midIntake = false;

        // ---- Advance time ----
        // Any state change this cycle can enable work next cycle:
        // tick. Otherwise every cycle up to the next calendar event
        // (or the fetch-allowed time intake is stalled on) is
        // provably identical no-op, so jump straight there.
        if (ss.cycleActivity) {
            ++ss.now;
            continue;
        }
        Cycle next = nextEventCycle(ss);
        if (ss.fetchWait && ss.fetchAllowedAt < next)
            next = ss.fetchAllowedAt;
        prism_assert(next != kNever,
                     "cycle sim deadlock: no pending events");
        ss.now = next;
    }
}

Cycle
CycleCoreSim::run(const MStream &stream, RefSimScratch &ss) const
{
    if (stream.empty())
        return 0;
    begin(ss);
    feed(ss, stream, 0, stream.size());
    return finishRun(ss, stream);
}

Cycle
CycleCoreSim::run(const MStream &stream) const
{
    // One scratch per thread: safe under the thread pool, no
    // reentrancy (the simulator never calls back into user code).
    static thread_local RefSimScratch scratch;
    return run(stream, scratch);
}

} // namespace prism
