#include "tdg/reference/ref_models.hh"

#include <algorithm>
#include <deque>
#include <vector>

#include "common/logging.hh"

namespace prism
{

Cycle
CycleCoreSim::run(const MStream &stream) const
{
    if (stream.empty())
        return 0;
    const std::size_t n = stream.size();

    enum class St : std::uint8_t { Waiting, Issued };
    struct Entry
    {
        std::size_t idx;
        St state = St::Waiting;
        Cycle doneAt = 0;
    };

    const unsigned rob_cap = core_.inorder ? 2 * core_.width
                                           : core_.robSize;
    const unsigned iq_cap = core_.inorder ? core_.width
                                          : core_.instWindow;

    std::vector<Cycle> done_at(n, 0);
    std::vector<bool> done(n, false);

    // Core structures.
    std::deque<Entry> rob;
    std::deque<std::size_t> fetch_buf;
    const std::size_t fetch_buf_cap = 3 * core_.width;
    std::int64_t blocking_branch = -1;
    Cycle fetch_allowed_at = 0;

    std::array<std::vector<Cycle>, 4> fus;
    fus[0].assign(core_.numAlu, 0);
    fus[1].assign(core_.numMulDiv, 0);
    fus[2].assign(core_.numFp, 0);
    fus[3].assign(core_.dcachePorts, 0);

    // Accelerator engines: one dataflow pool per unit.
    struct Engine
    {
        const AccelParams *params = nullptr;
        std::deque<Entry> pool;
    };
    Engine engines[3];
    engines[0].params = &cgra_;
    engines[1].params = &nsdf_;
    engines[2].params = &tracep_;
    auto engine_of = [&engines](ExecUnit u) -> Engine & {
        switch (u) {
          case ExecUnit::Cgra: return engines[0];
          case ExecUnit::Nsdf: return engines[1];
          case ExecUnit::Tracep: return engines[2];
          default: panic("not an engine unit");
        }
    };

    std::size_t next_intake = 0;
    std::size_t prefix_done = 0; // first index not yet done
    std::size_t remaining = n;
    Cycle now = 0;

    auto deps_ready = [&](const MInst &mi) {
        for (std::int64_t d : mi.dep) {
            if (d >= 0 && !(done[d] && done_at[d] <= now))
                return false;
        }
        if (mi.memDep >= 0 &&
            !(done[mi.memDep] && done_at[mi.memDep] <= now)) {
            return false;
        }
        for (const ExtraDep &xd : mi.extraDeps) {
            if (xd.idx >= 0 &&
                !(done[xd.idx] && done_at[xd.idx] + xd.lat <= now)) {
                return false;
            }
        }
        return true;
    };

    const Cycle hard_limit = static_cast<Cycle>(n) * 600 + 100000;

    while (remaining > 0) {
        prism_assert(now < hard_limit, "cycle sim deadlock");

        // ---- Completion / writeback ----
        for (Entry &e : rob) {
            if (e.state == St::Issued && !done[e.idx] &&
                e.doneAt <= now) {
                done[e.idx] = true;
                done_at[e.idx] = e.doneAt;
                if (static_cast<std::int64_t>(e.idx) ==
                    blocking_branch) {
                    blocking_branch = -1;
                    fetch_allowed_at =
                        e.doneAt + core_.mispredictPenalty;
                }
            }
        }
        for (Engine &eng : engines) {
            unsigned wb_used = 0;
            for (Entry &e : eng.pool) {
                if (e.state != St::Issued || e.doneAt > now)
                    continue;
                const MInst &mi = stream[e.idx];
                const bool needs_wb =
                    opInfo(mi.op).writesDst &&
                    eng.params->wbBusWidth > 0;
                if (needs_wb && wb_used >= eng.params->wbBusWidth)
                    continue; // bus full; retry next cycle
                if (needs_wb)
                    ++wb_used;
                done[e.idx] = true;
                done_at[e.idx] = now;
                --remaining;
            }
            eng.pool.erase(
                std::remove_if(eng.pool.begin(), eng.pool.end(),
                               [&done](const Entry &e) {
                                   return done[e.idx];
                               }),
                eng.pool.end());
        }

        // ---- Core commit ----
        for (unsigned k = 0; k < core_.width && !rob.empty(); ++k) {
            if (!done[rob.front().idx])
                break;
            rob.pop_front();
            --remaining;
        }

        // ---- Core issue ----
        unsigned issued = 0;
        unsigned iq_scanned = 0;
        for (Entry &e : rob) {
            if (issued >= core_.width)
                break;
            if (e.state != St::Waiting)
                continue;
            if (++iq_scanned > iq_cap)
                break;
            const MInst &mi = stream[e.idx];
            if (!deps_ready(mi)) {
                if (core_.inorder)
                    break;
                continue;
            }
            Cycle *unit = nullptr;
            if (mi.fu != FuClass::None) {
                auto &pool = fus[fuPoolIndex(mi.fu)];
                for (Cycle &u : pool) {
                    if (u <= now) {
                        unit = &u;
                        break;
                    }
                }
                if (unit == nullptr) {
                    if (core_.inorder)
                        break;
                    continue;
                }
            }
            const Cycle lat = std::max<Cycle>(
                mi.isLoad ? mi.memLat : mi.lat, 1);
            e.state = St::Issued;
            e.doneAt = now + lat;
            if (unit != nullptr)
                *unit = now + 1;
            ++issued;
        }

        // ---- Engine issue ----
        for (Engine &eng : engines) {
            unsigned eng_issued = 0;
            unsigned mem_issued = 0;
            for (Entry &e : eng.pool) {
                if (eng_issued >= eng.params->issueWidth)
                    break;
                if (e.state != St::Waiting)
                    continue;
                const MInst &mi = stream[e.idx];
                const bool is_mem = mi.isLoad || mi.isStore;
                if (is_mem && eng.params->memPorts > 0 &&
                    mem_issued >= eng.params->memPorts) {
                    continue;
                }
                if (!deps_ready(mi))
                    continue;
                const Cycle lat = std::max<Cycle>(
                    mi.isLoad ? mi.memLat : mi.lat, 1);
                e.state = St::Issued;
                e.doneAt = now + lat;
                ++eng_issued;
                if (is_mem)
                    ++mem_issued;
            }
        }

        // ---- Core dispatch (gated by ROB and IQ occupancy) ----
        unsigned waiting = 0;
        if (!core_.inorder) {
            for (const Entry &e : rob)
                waiting += e.state == St::Waiting;
        }
        for (unsigned k = 0;
             k < core_.width && !fetch_buf.empty() &&
             rob.size() < rob_cap &&
             (core_.inorder || waiting < iq_cap);
             ++k) {
            Entry e;
            e.idx = fetch_buf.front();
            fetch_buf.pop_front();
            rob.push_back(e);
            ++waiting;
        }

        // ---- Unified intake (fetch / engine injection) ----
        while (prefix_done < n && done[prefix_done])
            ++prefix_done;
        unsigned fetched = 0;
        while (next_intake < n) {
            const MInst &mi = stream[next_intake];
            if (mi.startRegion && prefix_done < next_intake)
                break; // region boundary drains the machine
            if (mi.unit == ExecUnit::Core) {
                if (blocking_branch != -1 || now < fetch_allowed_at)
                    break;
                if (fetched >= core_.width ||
                    fetch_buf.size() >= fetch_buf_cap) {
                    break;
                }
                fetch_buf.push_back(next_intake);
                ++fetched;
                if (mi.isCondBranch && mi.mispredicted) {
                    blocking_branch =
                        static_cast<std::int64_t>(next_intake);
                }
                ++next_intake;
                if (blocking_branch != -1)
                    break;
                if (mi.takenBranch) {
                    // Fetch group ends at a taken branch.
                    fetched = core_.width;
                    break;
                }
            } else {
                Engine &eng = engine_of(mi.unit);
                if (eng.pool.size() >= eng.params->window)
                    break;
                Entry e;
                e.idx = next_intake;
                eng.pool.push_back(e);
                ++next_intake;
            }
        }

        ++now;
    }
    return now;
}

} // namespace prism
