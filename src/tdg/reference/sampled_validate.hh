/**
 * @file
 * Sampled cross-validation: estimate a workload's full-trace
 * reference-simulator CPI from a small, stratified sample of the
 * trace, with a confidence interval (DESIGN.md §9.3).
 *
 * The design is model-assisted (difference estimation, in survey
 * terms): the trace is cut into fixed-size windows of consecutive
 * dynamic instructions, and the cheap µDG timing model predicts the
 * cycles of EVERY window, while the expensive reference simulator
 * runs only on a stratified sample of them. Both engines measure a
 * window the same way — a short detached warmup prefix, then the
 * completion-frontier difference across the measured span — so the
 * per-window difference d = sim − model is a deterministic model
 * error, free of boundary noise. The estimate is
 *
 *     total ≈ model(full trace) + expansion of sampled d
 *
 * Anchoring on the model's full-trace run (rather than the sum of
 * its windows) cancels the window-decomposition bias: both engines
 * lose the same cross-boundary overlap when the trace is cut, so
 * the model's own decomposition error tracks the simulator's, and
 * what remains of it is exactly measurable (sum of model windows
 * minus full model run) and folded into the interval as a
 * deterministic floor. The estimator is unbiased regardless of model
 * quality; the model only has to be *correlated* with the simulator
 * for the variance to collapse. Windows are stratified by predicted
 * cycles (equal-count strata over the model ordering) and sampled
 * without replacement by a deterministic PRNG. The confidence
 * interval is Student-t over the finite-population-corrected
 * within-stratum residual variance — bounded below by the
 * simple-random-sample variance when the draw count is small — plus
 * the deterministic floor (decomposition granularity + measured
 * model decomposition bias).
 *
 * Sample-window simulations are independent, so they fan out on the
 * thread pool; results are bit-identical for a given (trace, config,
 * seed) regardless of thread count.
 */

#ifndef PRISM_TDG_REFERENCE_SAMPLED_VALIDATE_HH
#define PRISM_TDG_REFERENCE_SAMPLED_VALIDATE_HH

#include <cstddef>
#include <cstdint>

#include "common/thread_pool.hh"
#include "trace/dyn_inst.hh"
#include "uarch/core_config.hh"

namespace prism
{

struct SampleConfig
{
    /**
     * Fraction of trace instructions the reference simulator may
     * touch (warmup prefixes included). Window size and draw counts
     * are derived from this budget and the trace length, so coverage
     * stays bounded on long traces while short traces are sampled
     * more densely (exactly, in the limit).
     */
    double coverageBudget = 0.095;
    /** Measured instructions per sample window (clamp range). */
    std::size_t maxUnitInsts = 1000;
    std::size_t minUnitInsts = 250;
    /** Detached warmup prefix before each measured window. */
    std::size_t warmupInsts = 250;
    /** Preferred number of simulated windows within the budget. */
    std::size_t targetUnits = 32;
    /** Equal-count strata over the model-predicted ordering (cap). */
    std::size_t strata = 8;
    /** Two-sided confidence level: 0.95 or 0.99. */
    double confidence = 0.99;
    std::uint64_t seed = 0x5eedf00dull;
};

struct SampledCpi
{
    double cpi = 0.0;    ///< model-assisted CPI estimate
    double ciLow = 0.0;  ///< confidence interval on cpi
    double ciHigh = 0.0;
    double relHalfWidth = 0.0; ///< (ciHigh-ciLow)/2 / cpi
    /** Full-trace CPI predicted by the µDG model alone (the
     *  estimator's anchor before the sampled correction). */
    double modelCpi = 0.0;
    /** Fraction of trace instructions the reference simulator ran
     *  (warmup prefixes included). The model pass over all windows
     *  is not counted: it is the cheap engine under validation, not
     *  detailed simulation. */
    double coverage = 0.0;
    std::size_t insts = 0;          ///< trace length
    std::size_t unitsSimulated = 0; ///< sampled windows
    std::size_t strataUsed = 0;
};

/**
 * Estimate the reference-simulator CPI of `core` on the baseline
 * stream of `trace` by model-assisted stratified sampling. `pool`
 * fans the window simulations out; pass nullptr to run serially.
 */
SampledCpi sampledCpiEstimate(const Trace &trace,
                              const CoreConfig &core,
                              const SampleConfig &cfg,
                              ThreadPool *pool = nullptr);

} // namespace prism

#endif // PRISM_TDG_REFERENCE_SAMPLED_VALIDATE_HH
