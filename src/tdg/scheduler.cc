#include "tdg/scheduler.hh"

#include <algorithm>

#include "common/logging.hh"

namespace prism
{

namespace
{

/** DP value for one subtree: actual composition + decision metrics. */
struct DpOut
{
    Cycle cycles = 0;
    PicoJoule energy = 0;
    std::array<Cycle, kNumUnits> unitCycles{};
    std::array<PicoJoule, kNumUnits> unitEnergy{};
    std::vector<ExoChoice> choices;

    // What the scheduler *believes* (equals actuals for the oracle).
    double decCycles = 0;
    double decEnergy = 0;

    double score() const { return decCycles * decEnergy; } // EDP
};

struct Dp
{
    const BenchmarkModel &bm;
    const Tdg &tdg;
    unsigned mask;
    SchedulerKind sched;

    DpOut
    solve(std::int32_t loop_id) const
    {
        const Loop &loop = tdg.loops().loop(loop_id);
        const Cycle gpp_c = bm.gppLoopCycles(loop_id);
        const PicoJoule gpp_e = bm.gppLoopEnergy(loop_id);

        // Option B: this level on the GPP, children scheduled.
        DpOut descend;
        descend.cycles = gpp_c;
        descend.energy = gpp_e;
        descend.unitCycles[0] = gpp_c;
        descend.unitEnergy[0] = gpp_e;
        descend.decCycles = static_cast<double>(gpp_c);
        descend.decEnergy = gpp_e;
        for (std::int32_t c : loop.children) {
            const DpOut sc = solve(c);
            const Cycle c_gpp_c = bm.gppLoopCycles(c);
            const PicoJoule c_gpp_e = bm.gppLoopEnergy(c);
            descend.cycles += sc.cycles;
            descend.cycles -= std::min(descend.cycles, c_gpp_c);
            descend.energy += sc.energy - c_gpp_e;
            descend.unitCycles[0] -=
                std::min(descend.unitCycles[0], c_gpp_c);
            descend.unitEnergy[0] -= c_gpp_e;
            for (int u = 0; u < kNumUnits; ++u) {
                descend.unitCycles[u] += sc.unitCycles[u];
                descend.unitEnergy[u] += sc.unitEnergy[u];
            }
            descend.choices.insert(descend.choices.end(),
                                   sc.choices.begin(),
                                   sc.choices.end());
            descend.decCycles +=
                sc.decCycles - static_cast<double>(c_gpp_c);
            descend.decEnergy += sc.decEnergy - c_gpp_e;
        }

        DpOut best = descend;

        // Option A: offload this whole loop to one BSA.
        for (std::size_t bi = 0; bi < kAllBsas.size(); ++bi) {
            if (!(mask & (1u << bi)))
                continue;
            const BsaKind bsa = kAllBsas[bi];
            const int u = unitIndex(bsa);
            const RegionUnitEval &ev = bm.unitEval(loop_id, u);
            if (!ev.feasible || gpp_c == 0)
                continue;

            DpOut cand;
            cand.cycles = ev.cycles;
            cand.energy = ev.energy;
            cand.unitCycles[u] = ev.cycles;
            cand.unitEnergy[u] = ev.energy;
            cand.choices.push_back(ExoChoice{loop_id, u});

            if (sched == SchedulerKind::Oracle) {
                // Measured metrics; <=10% slowdown allowance.
                if (static_cast<double>(ev.cycles) >
                    1.10 * static_cast<double>(gpp_c)) {
                    continue;
                }
                cand.decCycles = static_cast<double>(ev.cycles);
                cand.decEnergy = ev.energy;
            } else {
                // Profile-estimate beliefs (optimistic toward BSAs).
                const double est_speedup =
                    amdahlSpeedupEstimate(bm, tdg, loop_id, bsa);
                if (est_speedup < 0.95)
                    continue;
                cand.decCycles =
                    static_cast<double>(gpp_c) / est_speedup;
                cand.decEnergy = gpp_e * amdahlEnergyEstimate(bsa);
            }

            if (cand.score() < best.score())
                best = std::move(cand);
        }
        return best;
    }
};

} // namespace

ExoResult
scheduleExoCore(const BenchmarkModel &bm, const Tdg &tdg,
                unsigned bsa_mask, SchedulerKind sched)
{
    const ExoResult &base = bm.baseline();
    ExoResult res;
    res.cycles = base.cycles;
    res.energy = base.energy;
    res.unitCycles[0] = base.cycles;
    res.unitEnergy[0] = base.energy;

    if (bsa_mask == 0)
        return res;

    const Dp dp{bm, tdg, bsa_mask, sched};
    for (std::int32_t root : tdg.loops().roots()) {
        const DpOut out = dp.solve(root);
        const Cycle gpp_c = bm.gppLoopCycles(root);
        const PicoJoule gpp_e = bm.gppLoopEnergy(root);
        // Replace the root's GPP contribution with its schedule.
        res.cycles = res.cycles + out.cycles -
                     std::min(res.cycles, gpp_c);
        res.energy += out.energy - gpp_e;
        res.unitCycles[0] -= std::min(res.unitCycles[0], gpp_c);
        res.unitEnergy[0] -= gpp_e;
        for (int u = 0; u < kNumUnits; ++u) {
            res.unitCycles[u] += out.unitCycles[u];
            res.unitEnergy[u] += out.unitEnergy[u];
        }
        res.choices.insert(res.choices.end(), out.choices.begin(),
                           out.choices.end());
    }
    if (res.cycles == 0)
        res.cycles = 1;
    if (res.energy <= 0)
        res.energy = 1;
    return res;
}

} // namespace prism
