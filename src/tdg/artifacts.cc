#include "tdg/artifacts.hh"

#include "common/memo_cache.hh"
#include "trace/serialize.hh"

namespace prism
{

namespace
{

// Sanity caps for corrupt length fields (far above anything real,
// far below an OOM-sized allocation).
constexpr std::uint64_t kMaxSmallVec = 1ull << 24;

void
writeOccurrence(ArtifactWriter &w, const LoopOccurrence &occ)
{
    w.i32(occ.loopId);
    w.u64(occ.begin);
    w.u64(occ.end);
    w.vec(occ.iterStarts);
}

bool
readOccurrence(ArtifactReader &r, LoopOccurrence &occ,
               std::uint64_t trace_size)
{
    occ.loopId = r.i32();
    occ.begin = r.u64();
    occ.end = r.u64();
    return r.vec(occ.iterStarts, trace_size);
}

void
writeAccess(ArtifactWriter &w, const MemAccessPattern &a)
{
    w.u32(a.sid);
    w.b(a.isLoad);
    w.u8(a.memSize);
    w.u64(a.count);
    w.b(a.strideKnown);
    w.b(a.strideSet);
    w.i64(a.stride);
}

void
readAccess(ArtifactReader &r, MemAccessPattern &a)
{
    a.sid = r.u32();
    a.isLoad = r.b();
    a.memSize = r.u8();
    a.count = r.u64();
    a.strideKnown = r.b();
    a.strideSet = r.b();
    a.stride = r.i64();
}

void
writeUnitEval(ArtifactWriter &w, const RegionUnitEval &ev)
{
    w.b(ev.feasible);
    w.u64(ev.cycles);
    w.f64(ev.energy);
    w.u64(ev.gatedCycles);
    w.vec(ev.occCycles);
}

bool
readUnitEval(ArtifactReader &r, RegionUnitEval &ev,
             std::uint64_t num_occs)
{
    ev.feasible = r.b();
    ev.cycles = r.u64();
    ev.energy = r.f64();
    ev.gatedCycles = r.u64();
    return r.vec(ev.occCycles, num_occs);
}

void
writeExoResult(ArtifactWriter &w, const ExoResult &res)
{
    w.u64(res.cycles);
    w.f64(res.energy);
    for (Cycle c : res.unitCycles)
        w.u64(c);
    for (PicoJoule e : res.unitEnergy)
        w.f64(e);
    w.u64(res.choices.size());
    for (const ExoChoice &ch : res.choices) {
        w.i32(ch.loopId);
        w.i32(ch.unit);
    }
}

bool
readExoResult(ArtifactReader &r, ExoResult &res)
{
    res.cycles = r.u64();
    res.energy = r.f64();
    for (Cycle &c : res.unitCycles)
        c = r.u64();
    for (PicoJoule &e : res.unitEnergy)
        e = r.f64();
    const std::uint64_t n = r.count(kMaxSmallVec);
    res.choices.resize(n);
    for (ExoChoice &ch : res.choices) {
        ch.loopId = r.i32();
        ch.unit = r.i32();
    }
    return r.ok();
}

} // namespace

std::uint64_t
pipelineConfigHash(const PipelineConfig &cfg)
{
    ArtifactKey k;
    k.mix(std::string_view(cfg.core.name));
    k.mix(coreTimingHash(cfg));
    for (const AccelParams *a : {&cfg.cgra, &cfg.nsdf, &cfg.tracep}) {
        k.mix(a->issueWidth);
        k.mix(a->window);
        k.mix(a->memPorts);
        k.mix(a->wbBusWidth);
        k.mix(a->configCycles);
    }
    return k.hash();
}

std::uint64_t
coreTimingHash(const PipelineConfig &cfg)
{
    // Parameter-only (no display name): a parametric point identical
    // to a fixed CoreKind addresses the same components.
    ArtifactKey k;
    k.mix(cfg.core.inorder ? 1 : 0);
    k.mix(cfg.core.width);
    k.mix(cfg.core.robSize);
    k.mix(cfg.core.instWindow);
    k.mix(cfg.core.dcachePorts);
    k.mix(cfg.core.numAlu);
    k.mix(cfg.core.numMulDiv);
    k.mix(cfg.core.numFp);
    k.mix(cfg.core.frontendDepth);
    k.mix(cfg.core.mispredictPenalty);
    k.mix(cfg.core.simdLanes);
    k.mix(cfg.l1HitLatency);
    k.mix(cfg.l2HitLatency);
    return k.hash();
}

std::uint64_t
regionEvalConfigHash(const PipelineConfig &cfg, BsaKind bsa)
{
    ArtifactKey k;
    k.mix(coreTimingHash(cfg));
    k.mix(static_cast<std::uint64_t>(unitIndex(bsa)));
    const AccelParams *a = nullptr;
    switch (bsa) {
      case BsaKind::Simd: a = nullptr; break; // lanes live in core
      case BsaKind::DpCgra: a = &cfg.cgra; break;
      case BsaKind::Nsdf: a = &cfg.nsdf; break;
      case BsaKind::Tracep: a = &cfg.tracep; break;
    }
    if (a) {
        k.mix(a->issueWidth);
        k.mix(a->window);
        k.mix(a->memPorts);
        k.mix(a->wbBusWidth);
        k.mix(a->configCycles);
    }
    return k.hash();
}

ArtifactKey
tdgProfilesArtifactKey(const Program &prog, std::uint64_t max_insts)
{
    return ArtifactKey()
        .mix(programFingerprint(prog))
        .mix(max_insts);
}

ArtifactKey
baselineTablesKey(const Program &prog, std::uint64_t max_insts,
                  const PipelineConfig &cfg,
                  std::uint64_t code_version)
{
    return ArtifactKey()
        .mix(programFingerprint(prog))
        .mix(max_insts)
        .mix(coreTimingHash(cfg))
        .mix(code_version);
}

ArtifactKey
regionEvalKey(const Program &prog, std::uint64_t max_insts,
              const PipelineConfig &cfg, BsaKind bsa,
              std::uint64_t code_version)
{
    return ArtifactKey()
        .mix(programFingerprint(prog))
        .mix(max_insts)
        .mix(regionEvalConfigHash(cfg, bsa))
        .mix(code_version);
}

void
storeTdgProfiles(const ArtifactCache &cache, const std::string &name,
                 const Program &prog, std::uint64_t max_insts,
                 const TdgProfiles &profiles)
{
    cache.store(
        kTdgProfilesKind, name,
        tdgProfilesArtifactKey(prog, max_insts),
        [&](ArtifactWriter &w) {
            w.vec(profiles.loopMap.loopOf);
            w.u64(profiles.loopMap.occurrences.size());
            for (const LoopOccurrence &occ :
                 profiles.loopMap.occurrences)
                writeOccurrence(w, occ);
            w.vec(profiles.loopMap.occOf);

            w.u64(profiles.pathProfiles.size());
            for (const PathProfile &p : profiles.pathProfiles) {
                w.i32(p.loopId);
                w.u64(p.totalIters);
                w.u64(p.backEdgeTaken);
                w.u64(p.numStaticPaths);
                w.u64(p.paths.size());
                for (const PathProfile::PathInfo &pi : p.paths) {
                    w.u64(pi.id);
                    w.u64(pi.count);
                    w.vec(pi.blocks);
                }
            }

            w.u64(profiles.memProfiles.size());
            for (const LoopMemProfile &m : profiles.memProfiles) {
                w.i32(m.loopId);
                w.u64(m.itersObserved);
                w.b(m.loopCarriedStoreToLoad);
                w.u64(m.accesses.size());
                for (const MemAccessPattern &a : m.accesses)
                    writeAccess(w, a);
            }

            w.u64(profiles.depProfiles.size());
            for (const LoopDepProfile &d : profiles.depProfiles) {
                w.i32(d.loopId);
                w.u64(d.carriedDeps);
                w.vec(d.inductions);
                w.vec(d.reductions);
                w.b(d.otherRecurrence);
            }
        });
}

std::optional<TdgProfiles>
loadTdgProfiles(const ArtifactCache &cache, const std::string &name,
                const Program &prog, std::uint64_t max_insts,
                const Trace &trace, std::uint64_t num_loops)
{
    std::optional<TdgProfiles> result;
    const bool hit = cache.load(
        kTdgProfilesKind, name,
        tdgProfilesArtifactKey(prog, max_insts),
        [&](ArtifactReader &r) {
            TdgProfiles p;
            if (!r.vec(p.loopMap.loopOf, trace.size()))
                return false;
            const std::uint64_t nocc = r.count(trace.size() + 1);
            p.loopMap.occurrences.resize(nocc);
            for (LoopOccurrence &occ : p.loopMap.occurrences) {
                if (!readOccurrence(r, occ, trace.size()))
                    return false;
            }
            if (!r.vec(p.loopMap.occOf, trace.size()))
                return false;

            const std::uint64_t npath = r.count(num_loops);
            p.pathProfiles.resize(npath);
            for (PathProfile &pp : p.pathProfiles) {
                pp.loopId = r.i32();
                pp.totalIters = r.u64();
                pp.backEdgeTaken = r.u64();
                pp.numStaticPaths = r.u64();
                const std::uint64_t np = r.count(kMaxSmallVec);
                pp.paths.resize(np);
                for (PathProfile::PathInfo &pi : pp.paths) {
                    pi.id = r.u64();
                    pi.count = r.u64();
                    if (!r.vec(pi.blocks, kMaxSmallVec))
                        return false;
                }
            }

            const std::uint64_t nmem = r.count(num_loops);
            p.memProfiles.resize(nmem);
            for (LoopMemProfile &m : p.memProfiles) {
                m.loopId = r.i32();
                m.itersObserved = r.u64();
                m.loopCarriedStoreToLoad = r.b();
                const std::uint64_t na = r.count(kMaxSmallVec);
                m.accesses.resize(na);
                for (MemAccessPattern &a : m.accesses)
                    readAccess(r, a);
            }

            const std::uint64_t ndep = r.count(num_loops);
            p.depProfiles.resize(ndep);
            for (LoopDepProfile &d : p.depProfiles) {
                d.loopId = r.i32();
                d.carriedDeps = r.u64();
                if (!r.vec(d.inductions, kMaxSmallVec) ||
                    !r.vec(d.reductions, kMaxSmallVec))
                    return false;
                d.otherRecurrence = r.b();
            }
            if (!r.ok())
                return false;

            // Cross-checks against the trace and program this run
            // actually has: a payload that deserialized cleanly but
            // describes a different stream is still rejected.
            if (p.loopMap.loopOf.size() != trace.size() ||
                p.loopMap.occOf.size() != trace.size() ||
                p.pathProfiles.size() != num_loops ||
                p.memProfiles.size() != num_loops ||
                p.depProfiles.size() != num_loops)
                return false;

            result = std::move(p);
            return true;
        });
    if (!hit)
        result.reset();
    return result;
}

void
storeBaselineTables(const ArtifactCache &cache,
                    const std::string &name, const Program &prog,
                    std::uint64_t max_insts,
                    const PipelineConfig &cfg,
                    const BaselineTables &tables,
                    std::uint64_t code_version)
{
    cache.store(
        kBaseTimingKind, name,
        baselineTablesKey(prog, max_insts, cfg, code_version),
        [&](ArtifactWriter &w) {
            writeExoResult(w, tables.baseline);
            w.u64(tables.gpp.size());
            for (const RegionUnitEval &ev : tables.gpp)
                writeUnitEval(w, ev);
            w.vec(tables.occBaseStart);
            w.vec(tables.occBaseCycles);
            w.vec(tables.occBaseEnergy);
        });
}

std::optional<BaselineTables>
loadBaselineTables(const ArtifactCache &cache,
                   const std::string &name, const Tdg &tdg,
                   std::uint64_t max_insts,
                   const PipelineConfig &cfg,
                   std::uint64_t code_version)
{
    const std::uint64_t num_loops = tdg.loops().numLoops();
    const std::uint64_t num_occs = tdg.loopMap().occurrences.size();
    std::optional<BaselineTables> result;
    const bool hit = cache.load(
        kBaseTimingKind, name,
        baselineTablesKey(tdg.trace().program(), max_insts, cfg,
                          code_version),
        [&](ArtifactReader &r) {
            BaselineTables t;
            if (!readExoResult(r, t.baseline))
                return false;
            const std::uint64_t ng = r.count(num_loops);
            t.gpp.resize(ng);
            for (RegionUnitEval &ev : t.gpp) {
                if (!readUnitEval(r, ev, num_occs))
                    return false;
            }
            if (!r.vec(t.occBaseStart, num_occs) ||
                !r.vec(t.occBaseCycles, num_occs) ||
                !r.vec(t.occBaseEnergy, num_occs))
                return false;
            if (!r.ok())
                return false;

            // Shape must match the TDG this run built.
            if (t.gpp.size() != num_loops ||
                t.occBaseStart.size() != num_occs ||
                t.occBaseCycles.size() != num_occs ||
                t.occBaseEnergy.size() != num_occs)
                return false;

            result = std::move(t);
            return true;
        });
    if (!hit)
        result.reset();
    return result;
}

void
storeRegionEvalTable(const ArtifactCache &cache,
                     const std::string &name, const Program &prog,
                     std::uint64_t max_insts,
                     const PipelineConfig &cfg, BsaKind bsa,
                     const RegionEvalTable &table,
                     std::uint64_t code_version)
{
    cache.store(
        kRegionEvalKind, name,
        regionEvalKey(prog, max_insts, cfg, bsa, code_version),
        [&](ArtifactWriter &w) {
            w.u64(table.evals.size());
            for (const RegionUnitEval &ev : table.evals)
                writeUnitEval(w, ev);
        });
}

std::optional<RegionEvalTable>
loadRegionEvalTable(const ArtifactCache &cache,
                    const std::string &name, const Tdg &tdg,
                    std::uint64_t max_insts,
                    const PipelineConfig &cfg, BsaKind bsa,
                    std::uint64_t code_version)
{
    const std::uint64_t num_loops = tdg.loops().numLoops();
    const std::uint64_t num_occs = tdg.loopMap().occurrences.size();
    std::optional<RegionEvalTable> result;
    const bool hit = cache.load(
        kRegionEvalKind, name,
        regionEvalKey(tdg.trace().program(), max_insts, cfg, bsa,
                      code_version),
        [&](ArtifactReader &r) {
            RegionEvalTable t;
            const std::uint64_t n = r.count(num_loops);
            t.evals.resize(n);
            for (RegionUnitEval &ev : t.evals) {
                if (!readUnitEval(r, ev, num_occs))
                    return false;
            }
            if (!r.ok() || t.evals.size() != num_loops)
                return false;
            result = std::move(t);
            return true;
        });
    if (!hit)
        result.reset();
    return result;
}

std::uint64_t
tableBytes(const BaselineTables &t)
{
    std::uint64_t b = sizeof(BaselineTables);
    b += t.baseline.choices.size() * sizeof(ExoChoice);
    for (const RegionUnitEval &ev : t.gpp)
        b += sizeof(ev) + ev.occCycles.size() * sizeof(Cycle);
    b += t.occBaseStart.size() * sizeof(Cycle);
    b += t.occBaseCycles.size() * sizeof(Cycle);
    b += t.occBaseEnergy.size() * sizeof(PicoJoule);
    return b;
}

std::uint64_t
tableBytes(const RegionEvalTable &t)
{
    std::uint64_t b = sizeof(RegionEvalTable);
    for (const RegionUnitEval &ev : t.evals)
        b += sizeof(ev) + ev.occCycles.size() * sizeof(Cycle);
    return b;
}

namespace
{

/** RAM-tier address of a component: the disk address is already the
 *  full content identity (kind, version, key), reused verbatim. */
std::uint64_t
ramKey(const ArtifactKind &kind, const ArtifactKey &key)
{
    return ArtifactKey()
        .mix(std::string_view(kind.name))
        .mix(kind.version)
        .mix(key.hash())
        .hash();
}

} // namespace

std::shared_ptr<const BaselineTables>
getBaselineTables(const ArtifactCache *cache,
                  const std::string &name, const Tdg &tdg,
                  std::uint64_t max_insts, const PipelineConfig &cfg)
{
    const ArtifactKey key = baselineTablesKey(
        tdg.trace().program(), max_insts, cfg);
    return MemoCache::global().getOrCompute<BaselineTables>(
        ramKey(kBaseTimingKind, key),
        [&]() -> std::shared_ptr<const BaselineTables> {
            if (cache) {
                if (std::optional<BaselineTables> t =
                        loadBaselineTables(*cache, name, tdg,
                                           max_insts, cfg)) {
                    return std::make_shared<const BaselineTables>(
                        std::move(*t));
                }
            }
            auto fresh = std::make_shared<const BaselineTables>(
                computeBaselineTables(tdg, cfg));
            if (cache) {
                storeBaselineTables(*cache, name,
                                    tdg.trace().program(),
                                    max_insts, cfg, *fresh);
            }
            return fresh;
        },
        [](const BaselineTables &t) { return tableBytes(t); });
}

std::shared_ptr<const RegionEvalTable>
getRegionEvalTable(const ArtifactCache *cache,
                   const std::string &name, const Tdg &tdg,
                   const AnalyzerProvider &analyzer,
                   std::uint64_t max_insts,
                   const PipelineConfig &cfg, BsaKind bsa)
{
    const ArtifactKey key = regionEvalKey(
        tdg.trace().program(), max_insts, cfg, bsa);
    return MemoCache::global().getOrCompute<RegionEvalTable>(
        ramKey(kRegionEvalKind, key),
        [&]() -> std::shared_ptr<const RegionEvalTable> {
            if (cache) {
                if (std::optional<RegionEvalTable> t =
                        loadRegionEvalTable(*cache, name, tdg,
                                            max_insts, cfg, bsa)) {
                    return std::make_shared<const RegionEvalTable>(
                        std::move(*t));
                }
            }
            auto fresh = std::make_shared<const RegionEvalTable>(
                computeRegionEvalTable(tdg, analyzer(), cfg, bsa));
            if (cache) {
                storeRegionEvalTable(*cache, name,
                                     tdg.trace().program(),
                                     max_insts, cfg, bsa, *fresh);
            }
            return fresh;
        },
        [](const RegionEvalTable &t) { return tableBytes(t); });
}

std::unique_ptr<BenchmarkModel>
buildModelCached(const ArtifactCache *cache, const std::string &name,
                 const Tdg &tdg, std::uint64_t max_insts,
                 const PipelineConfig &cfg)
{
    ArtifactCacheHandle handle(cache);
    std::shared_ptr<const BaselineTables> base =
        getBaselineTables(cache, name, tdg, max_insts, cfg);

    // One shared analyzer across the (at most four) cold computes;
    // never built when every component is warm.
    std::unique_ptr<TdgAnalyzer> lazy;
    const AnalyzerProvider analyzer = [&]() -> const TdgAnalyzer & {
        if (!lazy)
            lazy = std::make_unique<TdgAnalyzer>(tdg);
        return *lazy;
    };

    std::array<std::shared_ptr<const RegionEvalTable>, 4> bsas;
    for (std::size_t i = 0; i < kAllBsas.size(); ++i) {
        bsas[i] = getRegionEvalTable(cache, name, tdg, analyzer,
                                     max_insts, cfg, kAllBsas[i]);
    }
    return std::make_unique<BenchmarkModel>(
        tdg, cfg, std::move(base), std::move(bsas));
}

} // namespace prism
