#include "tdg/artifacts.hh"

#include "trace/serialize.hh"

namespace prism
{

namespace
{

// Sanity caps for corrupt length fields (far above anything real,
// far below an OOM-sized allocation).
constexpr std::uint64_t kMaxSmallVec = 1ull << 24;

void
writeOccurrence(ArtifactWriter &w, const LoopOccurrence &occ)
{
    w.i32(occ.loopId);
    w.u64(occ.begin);
    w.u64(occ.end);
    w.vec(occ.iterStarts);
}

bool
readOccurrence(ArtifactReader &r, LoopOccurrence &occ,
               std::uint64_t trace_size)
{
    occ.loopId = r.i32();
    occ.begin = r.u64();
    occ.end = r.u64();
    return r.vec(occ.iterStarts, trace_size);
}

void
writeAccess(ArtifactWriter &w, const MemAccessPattern &a)
{
    w.u32(a.sid);
    w.b(a.isLoad);
    w.u8(a.memSize);
    w.u64(a.count);
    w.b(a.strideKnown);
    w.i64(a.stride);
}

void
readAccess(ArtifactReader &r, MemAccessPattern &a)
{
    a.sid = r.u32();
    a.isLoad = r.b();
    a.memSize = r.u8();
    a.count = r.u64();
    a.strideKnown = r.b();
    a.stride = r.i64();
}

void
writeUnitEval(ArtifactWriter &w, const RegionUnitEval &ev)
{
    w.b(ev.feasible);
    w.u64(ev.cycles);
    w.f64(ev.energy);
    w.u64(ev.gatedCycles);
    w.vec(ev.occCycles);
}

bool
readUnitEval(ArtifactReader &r, RegionUnitEval &ev,
             std::uint64_t num_occs)
{
    ev.feasible = r.b();
    ev.cycles = r.u64();
    ev.energy = r.f64();
    ev.gatedCycles = r.u64();
    return r.vec(ev.occCycles, num_occs);
}

void
writeExoResult(ArtifactWriter &w, const ExoResult &res)
{
    w.u64(res.cycles);
    w.f64(res.energy);
    for (Cycle c : res.unitCycles)
        w.u64(c);
    for (PicoJoule e : res.unitEnergy)
        w.f64(e);
    w.u64(res.choices.size());
    for (const ExoChoice &ch : res.choices) {
        w.i32(ch.loopId);
        w.i32(ch.unit);
    }
}

bool
readExoResult(ArtifactReader &r, ExoResult &res)
{
    res.cycles = r.u64();
    res.energy = r.f64();
    for (Cycle &c : res.unitCycles)
        c = r.u64();
    for (PicoJoule &e : res.unitEnergy)
        e = r.f64();
    const std::uint64_t n = r.count(kMaxSmallVec);
    res.choices.resize(n);
    for (ExoChoice &ch : res.choices) {
        ch.loopId = r.i32();
        ch.unit = r.i32();
    }
    return r.ok();
}

} // namespace

std::uint64_t
pipelineConfigHash(const PipelineConfig &cfg)
{
    ArtifactKey k;
    k.mix(std::string_view(cfg.core.name));
    k.mix(cfg.core.inorder ? 1 : 0);
    k.mix(cfg.core.width);
    k.mix(cfg.core.robSize);
    k.mix(cfg.core.instWindow);
    k.mix(cfg.core.dcachePorts);
    k.mix(cfg.core.numAlu);
    k.mix(cfg.core.numMulDiv);
    k.mix(cfg.core.numFp);
    k.mix(cfg.core.frontendDepth);
    k.mix(cfg.core.mispredictPenalty);
    k.mix(cfg.core.simdLanes);
    for (const AccelParams *a : {&cfg.cgra, &cfg.nsdf, &cfg.tracep}) {
        k.mix(a->issueWidth);
        k.mix(a->window);
        k.mix(a->memPorts);
        k.mix(a->wbBusWidth);
        k.mix(a->configCycles);
    }
    k.mix(cfg.l1HitLatency);
    k.mix(cfg.l2HitLatency);
    return k.hash();
}

ArtifactKey
tdgProfilesArtifactKey(const Program &prog, std::uint64_t max_insts)
{
    return ArtifactKey()
        .mix(programFingerprint(prog))
        .mix(max_insts);
}

ArtifactKey
modelArtifactKey(const Program &prog, std::uint64_t max_insts,
                 const PipelineConfig &cfg,
                 std::uint64_t code_version)
{
    return ArtifactKey()
        .mix(programFingerprint(prog))
        .mix(max_insts)
        .mix(pipelineConfigHash(cfg))
        .mix(code_version);
}

void
storeTdgProfiles(const ArtifactCache &cache, const std::string &name,
                 const Program &prog, std::uint64_t max_insts,
                 const TdgProfiles &profiles)
{
    cache.store(
        kTdgProfilesKind, name,
        tdgProfilesArtifactKey(prog, max_insts),
        [&](ArtifactWriter &w) {
            w.vec(profiles.loopMap.loopOf);
            w.u64(profiles.loopMap.occurrences.size());
            for (const LoopOccurrence &occ :
                 profiles.loopMap.occurrences)
                writeOccurrence(w, occ);
            w.vec(profiles.loopMap.occOf);

            w.u64(profiles.pathProfiles.size());
            for (const PathProfile &p : profiles.pathProfiles) {
                w.i32(p.loopId);
                w.u64(p.totalIters);
                w.u64(p.backEdgeTaken);
                w.u64(p.numStaticPaths);
                w.u64(p.paths.size());
                for (const PathProfile::PathInfo &pi : p.paths) {
                    w.u64(pi.id);
                    w.u64(pi.count);
                    w.vec(pi.blocks);
                }
            }

            w.u64(profiles.memProfiles.size());
            for (const LoopMemProfile &m : profiles.memProfiles) {
                w.i32(m.loopId);
                w.u64(m.itersObserved);
                w.b(m.loopCarriedStoreToLoad);
                w.u64(m.accesses.size());
                for (const MemAccessPattern &a : m.accesses)
                    writeAccess(w, a);
            }

            w.u64(profiles.depProfiles.size());
            for (const LoopDepProfile &d : profiles.depProfiles) {
                w.i32(d.loopId);
                w.u64(d.carriedDeps);
                w.vec(d.inductions);
                w.vec(d.reductions);
                w.b(d.otherRecurrence);
            }
        });
}

std::optional<TdgProfiles>
loadTdgProfiles(const ArtifactCache &cache, const std::string &name,
                const Program &prog, std::uint64_t max_insts,
                const Trace &trace, std::uint64_t num_loops)
{
    std::optional<TdgProfiles> result;
    const bool hit = cache.load(
        kTdgProfilesKind, name,
        tdgProfilesArtifactKey(prog, max_insts),
        [&](ArtifactReader &r) {
            TdgProfiles p;
            if (!r.vec(p.loopMap.loopOf, trace.size()))
                return false;
            const std::uint64_t nocc = r.count(trace.size() + 1);
            p.loopMap.occurrences.resize(nocc);
            for (LoopOccurrence &occ : p.loopMap.occurrences) {
                if (!readOccurrence(r, occ, trace.size()))
                    return false;
            }
            if (!r.vec(p.loopMap.occOf, trace.size()))
                return false;

            const std::uint64_t npath = r.count(num_loops);
            p.pathProfiles.resize(npath);
            for (PathProfile &pp : p.pathProfiles) {
                pp.loopId = r.i32();
                pp.totalIters = r.u64();
                pp.backEdgeTaken = r.u64();
                pp.numStaticPaths = r.u64();
                const std::uint64_t np = r.count(kMaxSmallVec);
                pp.paths.resize(np);
                for (PathProfile::PathInfo &pi : pp.paths) {
                    pi.id = r.u64();
                    pi.count = r.u64();
                    if (!r.vec(pi.blocks, kMaxSmallVec))
                        return false;
                }
            }

            const std::uint64_t nmem = r.count(num_loops);
            p.memProfiles.resize(nmem);
            for (LoopMemProfile &m : p.memProfiles) {
                m.loopId = r.i32();
                m.itersObserved = r.u64();
                m.loopCarriedStoreToLoad = r.b();
                const std::uint64_t na = r.count(kMaxSmallVec);
                m.accesses.resize(na);
                for (MemAccessPattern &a : m.accesses)
                    readAccess(r, a);
            }

            const std::uint64_t ndep = r.count(num_loops);
            p.depProfiles.resize(ndep);
            for (LoopDepProfile &d : p.depProfiles) {
                d.loopId = r.i32();
                d.carriedDeps = r.u64();
                if (!r.vec(d.inductions, kMaxSmallVec) ||
                    !r.vec(d.reductions, kMaxSmallVec))
                    return false;
                d.otherRecurrence = r.b();
            }
            if (!r.ok())
                return false;

            // Cross-checks against the trace and program this run
            // actually has: a payload that deserialized cleanly but
            // describes a different stream is still rejected.
            if (p.loopMap.loopOf.size() != trace.size() ||
                p.loopMap.occOf.size() != trace.size() ||
                p.pathProfiles.size() != num_loops ||
                p.memProfiles.size() != num_loops ||
                p.depProfiles.size() != num_loops)
                return false;

            result = std::move(p);
            return true;
        });
    if (!hit)
        result.reset();
    return result;
}

void
storeModelTables(const ArtifactCache &cache, const std::string &name,
                 std::uint64_t max_insts, const BenchmarkModel &model,
                 std::uint64_t code_version)
{
    const ModelTables t = model.tables();
    cache.store(
        kModelKind, name,
        modelArtifactKey(model.tdg().trace().program(),
                         max_insts, model.config(), code_version),
        [&](ArtifactWriter &w) {
            writeExoResult(w, t.baseline);
            w.u64(t.loopEvals.size());
            for (const LoopEval &le : t.loopEvals) {
                w.i32(le.loopId);
                w.u64(le.dynInsts);
                for (const RegionUnitEval &ev : le.unit)
                    writeUnitEval(w, ev);
            }
            w.vec(t.occBaseStart);
            w.vec(t.occBaseCycles);
            w.vec(t.occBaseEnergy);
        });
}

std::optional<ModelTables>
loadModelTables(const ArtifactCache &cache, const std::string &name,
                const Tdg &tdg, std::uint64_t max_insts,
                const PipelineConfig &cfg,
                std::uint64_t code_version)
{
    const std::uint64_t num_loops = tdg.loops().numLoops();
    const std::uint64_t num_occs = tdg.loopMap().occurrences.size();
    std::optional<ModelTables> result;
    const bool hit = cache.load(
        kModelKind, name,
        modelArtifactKey(tdg.trace().program(), max_insts, cfg,
                         code_version),
        [&](ArtifactReader &r) {
            ModelTables t;
            if (!readExoResult(r, t.baseline))
                return false;
            const std::uint64_t nle = r.count(num_loops);
            t.loopEvals.resize(nle);
            for (LoopEval &le : t.loopEvals) {
                le.loopId = r.i32();
                le.dynInsts = r.u64();
                for (RegionUnitEval &ev : le.unit) {
                    if (!readUnitEval(r, ev, num_occs))
                        return false;
                }
            }
            if (!r.vec(t.occBaseStart, num_occs) ||
                !r.vec(t.occBaseCycles, num_occs) ||
                !r.vec(t.occBaseEnergy, num_occs))
                return false;
            if (!r.ok())
                return false;

            // Shape must match the TDG this run built.
            if (t.loopEvals.size() != num_loops ||
                t.occBaseStart.size() != num_occs ||
                t.occBaseCycles.size() != num_occs ||
                t.occBaseEnergy.size() != num_occs)
                return false;

            result = std::move(t);
            return true;
        });
    if (!hit)
        result.reset();
    return result;
}

} // namespace prism
