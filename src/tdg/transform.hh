/**
 * @file
 * TDG transform framework. A BsaTransform rewrites the µDG of a
 * loop's occurrences into the combined core+accelerator stream
 * (paper Figure 4(d)/(e)): eliding instructions, converting opcodes,
 * inserting synthetic operations (masks, packing, communication,
 * configuration), and re-wiring dependence edges.
 *
 * Transforms are stateful across occurrences of a run (e.g. the
 * DP-CGRA configuration cache), so one instance models one attached
 * accelerator over one traced execution.
 */

#ifndef PRISM_TDG_TRANSFORM_HH
#define PRISM_TDG_TRANSFORM_HH

#include <cstdint>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "energy/area_model.hh"
#include "tdg/analyzer.hh"
#include "tdg/tdg.hh"
#include "uarch/udg.hh"

namespace prism
{

/** Result of transforming the occurrences of one loop. */
struct TransformOutput
{
    MStream stream;
    /** Stream index of each occurrence's first instruction. */
    std::vector<std::size_t> occBoundaries;
};

/** Base class of all BSA models. */
class BsaTransform
{
  public:
    BsaTransform(const Tdg &tdg, const TdgAnalyzer &analyzer)
        : tdg_(&tdg), analyzer_(&analyzer)
    {
    }
    virtual ~BsaTransform() = default;

    /** Which accelerator this transform models. */
    virtual BsaKind kind() const = 0;

    /** Whether this BSA can target the loop (from the analysis plan). */
    virtual bool canTarget(std::int32_t loop) const = 0;

    /**
     * Cache per-loop analysis state (plans, body order, slices) for
     * the transformOccurrence() calls that follow. Must be called
     * before the first occurrence of each loop.
     */
    virtual void beginLoop(std::int32_t loop) = 0;

    /**
     * Append the rewrite of one occurrence of the current loop
     * (beginLoop) to `out`. Dependence indices are relative to
     * `out`'s own indexing, so the same method serves both the
     * materializing transformLoop() path (shared stream, indices
     * absolute in it) and the streaming evaluator (cleared
     * per-occurrence window, indices window-local). The occurrence's
     * first emitted instruction is marked startRegion. Occurrences
     * must be fed in trace order: inter-occurrence state (e.g.
     * configuration caches) advances per call.
     */
    virtual void transformOccurrence(const LoopOccurrence &occ,
                                     MStream &out) = 0;

    /**
     * Rewrite all given occurrences of `loop` (in trace order) into
     * one accelerated stream. Each occurrence's first instruction is
     * marked startRegion; the harness times the stream standalone.
     * Convenience over beginLoop() + transformOccurrence().
     */
    TransformOutput transformLoop(
        std::int32_t loop,
        const std::vector<const LoopOccurrence *> &occs);

    /** Reset inter-occurrence state (e.g. configuration caches). */
    virtual void reset() {}

  protected:
    const Tdg *tdg_;
    const TdgAnalyzer *analyzer_;
};

/** Instantiate the model for a BSA kind. */
std::unique_ptr<BsaTransform> makeTransform(BsaKind kind, const Tdg &tdg,
                                            const TdgAnalyzer &analyzer);

// ---- Shared transform utilities ----

namespace xform
{

/**
 * Map from absolute dynamic index to output-stream index, flat over
 * a rebind()-declared dynamic range.
 *
 * This used to be an unordered_map, and it dominated cold model
 * construction: every BSA transform re-populated one map node per
 * trace instruction per occurrence (~one allocation each, hundreds of
 * thousands per model). All keys of one transform pass live inside
 * the occurrence's [begin, end) dynamic range, so a vector indexed by
 * (dyn - base) with an absent-sentinel does the same job with zero
 * steady-state allocations — rebind() reuses capacity and lookups
 * become a bounds check plus one load.
 *
 * Lookups outside the bound range (e.g. producers before the
 * occurrence) simply miss, matching the old map semantics.
 */
class DynToIdx
{
  public:
    /** Sentinel distinct from every legal stream index (>= -1). */
    static constexpr std::int64_t kAbsent =
        std::numeric_limits<std::int64_t>::min();

    /** Forget all entries and re-arm for dynamic range [b, e).
     *  Reuses storage: steady-state cost is one fill, no allocation. */
    void
    rebind(DynId b, DynId e)
    {
        base_ = b;
        idx_.assign(static_cast<std::size_t>(e - b), kAbsent);
    }

    /** Pointer to d's mapped stream index, or nullptr when absent
     *  (never inserted, or outside the bound range). */
    const std::int64_t *
    find(DynId d) const
    {
        if (d < base_)
            return nullptr;
        const std::size_t off = static_cast<std::size_t>(d - base_);
        if (off >= idx_.size() || idx_[off] == kAbsent)
            return nullptr;
        return &idx_[off];
    }

    /** Slot for d; d must lie inside the bound range. */
    std::int64_t &
    operator[](DynId d)
    {
        return idx_[static_cast<std::size_t>(d - base_)];
    }

  private:
    DynId base_ = 0;
    std::vector<std::int64_t> idx_;
};

/**
 * Append trace range [b, e) as core-context instructions, resolving
 * register/memory dependences through (and updating) `dyn_to_idx`.
 */
void appendCoreInsts(const Trace &trace, DynId b, DynId e, MStream &out,
                     DynToIdx &dyn_to_idx);

/** Latest definition site per register within an emitted stream. */
class RegDefMap
{
  public:
    /** Stream index of r's latest def, or -1. */
    std::int64_t
    lookup(RegId r) const
    {
        const auto it = map_.find(r);
        return it == map_.end() ? -1 : it->second;
    }

    void def(RegId r, std::int64_t idx) { map_[r] = idx; }
    void clear() { map_.clear(); }

  private:
    std::unordered_map<RegId, std::int64_t> map_;
};

/**
 * Greedy compound-functional-unit builder: merges dependent same-pool
 * ALU/FP operations (up to `max_ops`) into single CfuOp instructions
 * with serialized latency, as in BERET/SEED's size-based CFUs.
 */
class CfuBuilder
{
  public:
    CfuBuilder(MStream &out, ExecUnit unit, unsigned max_ops)
        : out_(&out), unit_(unit), maxOps_(max_ops)
    {
    }

    /**
     * Emit (or merge) one computational op with the given resolved
     * dependences. Returns the stream index holding the op.
     */
    std::int64_t emitOp(Opcode op, const std::vector<std::int64_t> &deps,
                        std::int64_t control_dep);

    /** Forget the open group (call at block/region boundaries). */
    void barrier() { curIdx_ = -1; }

  private:
    MStream *out_;
    ExecUnit unit_;
    unsigned maxOps_;
    std::int64_t curIdx_ = -1; ///< open CFU stream index
    unsigned curOps_ = 0;
    FuPool curPool_ = FuPool::Alu;
};

/**
 * Dynamic-instruction indices per static instruction within a trace
 * range (used to re-map memory latencies onto vectorized iterations
 * and to redirect residual-iteration dependences at elided producers).
 */
using Instances = std::unordered_map<StaticId, std::vector<DynId>>;

Instances collectInstances(const Trace &trace, DynId b, DynId e);

/**
 * Storage-reusing variant: per-sid vectors are cleared and refilled
 * in place (stale sids keep empty vectors, which every consumer
 * treats like an absent entry), so repeated per-group collection is
 * allocation-free in steady state.
 */
void collectInstances(const Trace &trace, DynId b, DynId e,
                      Instances &out);

} // namespace xform

} // namespace prism

#endif // PRISM_TDG_TRANSFORM_HH
