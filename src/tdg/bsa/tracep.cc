/**
 * @file
 * Trace-speculative processor (Trace-P) TDG transform — paper
 * Section 3.2.
 *
 * Iterations conforming to the profiled hot path execute on the
 * engine (ExecUnit::Tracep) with dataflow issue and *no* control
 * dependences — branches become checks, and compound instructions may
 * cross control boundaries (larger CFUs than NS-DF). Speculative
 * stores go to an iteration-versioned store buffer. An iteration that
 * diverges from the hot path triggers misspeculation: a recovery
 * bubble plus full re-execution of the iteration on the general core.
 */

#include "tdg/bsa/bsa.hh"

#include <algorithm>

#include "common/logging.hh"
#include "tdg/constructor.hh"

namespace prism
{

bool
TracepTransform::canTarget(std::int32_t loop) const
{
    return analyzer_->tracep(loop).usable();
}

void
TracepTransform::beginLoop(std::int32_t loop_id)
{
    plan_ = &analyzer_->tracep(loop_id);
    prism_assert(plan_->usable(),
                 "Trace-P transform on unplanned loop");
    loopId_ = loop_id;
    loop_ = &tdg_->loops().loop(loop_id);
}

void
TracepTransform::transformOccurrence(const LoopOccurrence &occ,
                                     MStream &s)
{
    const TracepPlan &plan = *plan_;
    const Loop &loop = *loop_;
    const Program &prog = tdg_->program();
    const Trace &trace = tdg_->trace();
    const AccelParams params = tracepParams();

    const std::size_t occ_start = s.size();

    if (!configured_.count(loopId_)) {
        if (configured_.size() >= 2)
            configured_.clear();
        configured_.insert(loopId_);
        MInst cfg;
        cfg.op = Opcode::AccelCfg;
        cfg.unit = ExecUnit::Core;
        cfg.fu = FuClass::None;
        cfg.lat = static_cast<std::uint8_t>(
            std::min<unsigned>(params.configCycles, 255));
        s.push_back(std::move(cfg));
    }
    {
        MInst snd;
        snd.op = Opcode::AccelSend;
        snd.unit = ExecUnit::Core;
        snd.fu = FuClass::IntAlu;
        s.push_back(snd);
        s.push_back(snd);
    }

    xform::DynToIdx &dyn_to_idx = dynToIdx_;
    dyn_to_idx.rebind(occ.begin, occ.end);
    bool pending_start = true; // first engine op serializes

    // Iterate iteration-wise: [iterStarts[k], next start).
    const auto &its = occ.iterStarts;
    for (std::size_t k = 0; k < its.size(); ++k) {
        const DynId ib = its[k];
        const DynId ie = (k + 1 < its.size()) ? its[k + 1] : occ.end;

        // Does this iteration follow the hot path exactly?
        std::vector<std::int32_t> &visited = visited_;
        visited.clear();
        for (DynId i = ib; i < ie; ++i) {
            const InstrRef &ref = prog.locate(trace[i].sid);
            if (ref.func == loop.func && ref.index == 0 &&
                loop.containsBlock(ref.block)) {
                visited.push_back(ref.block);
            }
        }
        const bool conforms = visited == plan.hotBlocks;

        if (!conforms) {
            // ---- Misspeculation: replay on the general core ----
            MInst flush;
            flush.op = Opcode::Nop;
            flush.unit = ExecUnit::Core;
            flush.fu = FuClass::None;
            flush.lat = 8; // squash + state recovery
            flush.startRegion = true;
            s.push_back(std::move(flush));
            const std::size_t replay_start = s.size();
            xform::appendCoreInsts(trace, ib, ie, s, dyn_to_idx);
            if (s.size() > replay_start)
                s[replay_start].startRegion = true;
            pending_start = true; // next engine op re-enters
            continue;
        }

        // ---- Speculative execution on the engine ----
        xform::CfuBuilder cfu(s, ExecUnit::Tracep, 4);
        for (DynId i = ib; i < ie; ++i) {
            const DynInst &di = trace[i];
            const OpInfo &oi = opInfo(di.op);

            std::vector<std::int64_t> &deps = depsScratch_;
            deps.clear();
            for (std::int64_t p : di.srcProd) {
                if (p == kNoProducer)
                    continue;
                if (const std::int64_t *idx =
                        dyn_to_idx.find(static_cast<DynId>(p)))
                    deps.push_back(*idx);
            }

            if (di.op == Opcode::Jmp)
                continue;

            if (oi.isCondBranch) {
                // Speculated: the branch becomes a check with no
                // control dependents.
                MInst mi;
                mi.op = Opcode::CmpEq;
                mi.unit = ExecUnit::Tracep;
                mi.fu = FuClass::IntAlu;
                mi.lat = 1;
                mi.sid = di.sid;
                int slot = 0;
                for (std::int64_t d : deps)
                    if (slot < 3)
                        mi.dep[slot++] =
                            static_cast<std::int32_t>(d);
                if (pending_start) {
                    mi.startRegion = true;
                    pending_start = false;
                }
                dyn_to_idx[i] = static_cast<std::int64_t>(s.size());
                s.push_back(std::move(mi));
                continue;
            }

            if (oi.isLoad || oi.isStore) {
                MInst mi;
                mi.op = di.op;
                mi.unit = ExecUnit::Tracep;
                mi.fu = FuClass::Mem;
                mi.lat = oi.latency;
                mi.memLat = di.memLat;
                mi.isLoad = oi.isLoad;
                mi.isStore = oi.isStore;
                mi.sid = di.sid;
                int slot = 0;
                for (std::int64_t d : deps)
                    if (slot < 3)
                        mi.dep[slot++] =
                            static_cast<std::int32_t>(d);
                if (mi.isLoad && di.memProd != kNoProducer) {
                    if (const std::int64_t *idx = dyn_to_idx.find(
                            static_cast<DynId>(di.memProd)))
                        mi.memDep =
                            static_cast<std::int32_t>(*idx);
                }
                if (pending_start) {
                    mi.startRegion = true;
                    pending_start = false;
                }
                dyn_to_idx[i] = static_cast<std::int64_t>(s.size());
                s.push_back(std::move(mi));
                continue;
            }

            const std::size_t before = s.size();
            const std::int64_t idx = cfu.emitOp(di.op, deps, -1);
            if (pending_start && s.size() > before) {
                s[before].startRegion = true;
                pending_start = false;
            }
            dyn_to_idx[i] = idx;
        }
    }

    {
        MInst rcv;
        rcv.op = Opcode::AccelRecv;
        rcv.unit = ExecUnit::Core;
        rcv.fu = FuClass::IntAlu;
        if (!s.empty())
            rcv.dep[0] = static_cast<std::int32_t>(s.size()) - 1;
        s.push_back(rcv);
    }

    if (s.size() > occ_start)
        s[occ_start].startRegion = true;
}

} // namespace prism
