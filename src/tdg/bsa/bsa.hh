/**
 * @file
 * The concrete BSA models of the ExoCore study (paper Table 2 and
 * Section 3.2), plus the paper's running fused-multiply-add example
 * (Figure 4). Each class implements the analysis-plan consumption and
 * graph-rewriting transform for one accelerator.
 *
 * All four models follow the streaming transform protocol of
 * BsaTransform: beginLoop() caches per-loop analysis state,
 * transformOccurrence() appends the rewrite of one occurrence.
 * Per-occurrence maps are class members cleared (not reallocated)
 * between occurrences, so steady-state transformation reuses their
 * storage.
 */

#ifndef PRISM_TDG_BSA_BSA_HH
#define PRISM_TDG_BSA_BSA_HH

#include <set>
#include <vector>

#include "tdg/transform.hh"

namespace prism
{

/**
 * Short-vector SIMD (auto-vectorization of independent-iteration
 * inner loops): if-conversion with masking, packing/unpacking for
 * non-contiguous memory, scalar residual iterations, horizontal
 * reduction epilogue. Vector instructions execute on the core.
 */
class SimdTransform : public BsaTransform
{
  public:
    using BsaTransform::BsaTransform;

    BsaKind kind() const override { return BsaKind::Simd; }
    bool canTarget(std::int32_t loop) const override;
    void beginLoop(std::int32_t loop) override;
    void transformOccurrence(const LoopOccurrence &occ,
                             MStream &out) override;

  private:
    // Per-loop state (beginLoop).
    const SimdPlan *plan_ = nullptr;
    const Loop *loop_ = nullptr;
    const LoopDepProfile *deps_ = nullptr;
    const LoopMemProfile *mem_ = nullptr;
    const Function *fn_ = nullptr;

    // Per-occurrence scratch (cleared, storage reused).
    xform::RegDefMap regs_;
    xform::DynToIdx dynToIdx_;
    xform::Instances inst_;
    std::vector<std::int64_t> parts_;
};

/**
 * Data-Parallel CGRA (DySER/Morphosys-like): the compute slice is
 * offloaded to a pipelined fabric; the access slice (memory, control,
 * induction) stays on the core, exchanging operands over explicit
 * send/receive instructions. Keeps a small configuration cache.
 */
class DpCgraTransform : public BsaTransform
{
  public:
    using BsaTransform::BsaTransform;

    BsaKind kind() const override { return BsaKind::DpCgra; }
    bool canTarget(std::int32_t loop) const override;
    void beginLoop(std::int32_t loop) override;
    void transformOccurrence(const LoopOccurrence &occ,
                             MStream &out) override;
    void reset() override { configured_.clear(); }

  private:
    std::set<std::int32_t> configured_; ///< config-cache contents

    // Per-loop state (beginLoop).
    std::int32_t loopId_ = -1;
    const Loop *loop_ = nullptr;
    const LoopDepProfile *deps_ = nullptr;
    const LoopMemProfile *mem_ = nullptr;
    const Function *fn_ = nullptr;
    std::vector<std::int32_t> body_;
    std::set<StaticId> computeSet_;
    std::set<StaticId> sendSet_;
    std::set<StaticId> recvSet_;

    // Per-occurrence scratch (cleared, storage reused).
    xform::RegDefMap coreRegs_;
    xform::RegDefMap fabricRegs_;
    std::unordered_map<RegId, std::int64_t> sendMap_;
    std::unordered_map<StaticId, std::int64_t> prevGroup_;
    xform::DynToIdx dynToIdx_;
    xform::Instances inst_;
};

/**
 * Non-speculative dataflow (SEED-like): whole loop nests execute as
 * dataflow with compound functional units; control becomes explicit
 * switch dependences; the core front-end is power-gated meanwhile.
 */
class NsdfTransform : public BsaTransform
{
  public:
    using BsaTransform::BsaTransform;

    BsaKind kind() const override { return BsaKind::Nsdf; }
    bool canTarget(std::int32_t loop) const override;
    void beginLoop(std::int32_t loop) override;
    void transformOccurrence(const LoopOccurrence &occ,
                             MStream &out) override;
    void reset() override { configured_.clear(); }

  private:
    std::set<std::int32_t> configured_;

    std::int32_t loopId_ = -1; ///< current loop (beginLoop)

    // Per-occurrence scratch (cleared, storage reused).
    xform::DynToIdx dynToIdx_;
    std::vector<std::int64_t> depsScratch_;
};

/**
 * Trace-speculative processor (BERET-like with dataflow issue):
 * iterations conforming to the hot path run speculatively with
 * cross-control CFUs and an iteration-versioned store buffer;
 * diverging iterations replay on the general core.
 */
class TracepTransform : public BsaTransform
{
  public:
    using BsaTransform::BsaTransform;

    BsaKind kind() const override { return BsaKind::Tracep; }
    bool canTarget(std::int32_t loop) const override;
    void beginLoop(std::int32_t loop) override;
    void transformOccurrence(const LoopOccurrence &occ,
                             MStream &out) override;
    void reset() override { configured_.clear(); }

  private:
    std::set<std::int32_t> configured_;

    // Per-loop state (beginLoop).
    std::int32_t loopId_ = -1;
    const TracepPlan *plan_ = nullptr;
    const Loop *loop_ = nullptr;

    // Per-occurrence scratch (cleared, storage reused).
    xform::DynToIdx dynToIdx_;
    std::vector<std::int64_t> depsScratch_;
    std::vector<std::int32_t> visited_;
};

/**
 * The paper's running example (Figure 4): transparently fuse a
 * single-use fmul feeding an fadd into one fma instruction. Operates
 * on whole streams at basic-block granularity rather than on loop
 * regions; used by the quickstart example and framework tests.
 */
class FmaTransform
{
  public:
    explicit FmaTransform(const Tdg &tdg);

    /** Number of (fmul, fadd) pairs the analysis planned to fuse. */
    std::size_t plannedPairs() const { return fmulToFadd_.size(); }

    /** Rewrite the whole trace with fma fusion applied. */
    MStream transform() const;

  private:
    const Tdg *tdg_;
    // fmul sid -> dependent fadd sid (the fusion plan)
    std::unordered_map<StaticId, StaticId> fmulToFadd_;
    std::set<StaticId> fusedFadds_;
};

} // namespace prism

#endif // PRISM_TDG_BSA_BSA_HH
