/**
 * @file
 * The paper's running example (Figure 4): transparent fused
 * multiply-add specialization. The analysis scans basic blocks for an
 * fadd whose fmul operand has a single use; the transform retypes the
 * fmul to fma (latency 4), elides the fadd, and re-attaches the
 * fadd's remaining input dependences to the fma.
 */

#include "tdg/bsa/bsa.hh"

#include "common/logging.hh"
#include "tdg/constructor.hh"

namespace prism
{

FmaTransform::FmaTransform(const Tdg &tdg) : tdg_(&tdg)
{
    const Program &prog = tdg.program();

    // Analysis (paper Figure 4(c)): for each basic block, find fadd
    // instructions with a single-use fmul dependence in the same
    // block.
    for (std::size_t f = 0; f < prog.functions().size(); ++f) {
        const Function &fn = prog.functions()[f];
        const Dfg &dfg = tdg.dfg(static_cast<std::int32_t>(f));
        for (const BasicBlock &bb : fn.blocks) {
            for (const Instr &in : bb.instrs) {
                if (in.op != Opcode::Fadd)
                    continue;
                for (RegId r : in.src) {
                    if (r == kNoReg)
                        continue;
                    const auto &defs = dfg.defsOf(r);
                    if (defs.size() != 1)
                        continue;
                    const Instr &def = prog.instr(defs.front());
                    if (def.op != Opcode::Fmul)
                        continue;
                    if (prog.blockOf(def.sid) != bb.id ||
                        prog.funcOf(def.sid) !=
                            static_cast<std::int32_t>(f)) {
                        continue;
                    }
                    if (dfg.usesOf(r).size() != 1)
                        continue; // fmul result must be single-use
                    if (fmulToFadd_.count(def.sid) ||
                        fusedFadds_.count(in.sid)) {
                        continue;
                    }
                    fmulToFadd_[def.sid] = in.sid;
                    fusedFadds_.insert(in.sid);
                    break;
                }
            }
        }
    }
}

MStream
FmaTransform::transform() const
{
    const Trace &trace = tdg_->trace();
    MStream out;
    out.reserve(trace.size());
    xform::DynToIdx dyn_to_idx;
    dyn_to_idx.rebind(0, trace.size());

    for (DynId i = 0; i < trace.size(); ++i) {
        const DynInst &di = trace[i];

        auto resolve = [&](std::int64_t p) -> std::int64_t {
            if (p == kNoProducer)
                return -1;
            const std::int64_t *idx =
                dyn_to_idx.find(static_cast<DynId>(p));
            return idx == nullptr ? -1 : *idx;
        };

        if (fmulToFadd_.count(di.sid)) {
            // Retype the multiply as the fused op.
            MInst mi = MInst::core(Opcode::Fma);
            mi.sid = di.sid;
            for (int s = 0; s < 3; ++s)
                mi.dep[s] = resolve(di.srcProd[s]);
            dyn_to_idx[i] = static_cast<std::int64_t>(out.size());
            out.push_back(std::move(mi));
            continue;
        }

        if (fusedFadds_.count(di.sid)) {
            // Elide the add: attach its other input dependences to
            // the dynamic fma it consumed.
            std::int64_t fma_idx = -1;
            for (std::int64_t p : di.srcProd) {
                if (p == kNoProducer)
                    continue;
                if (fmulToFadd_.count(
                        trace[static_cast<DynId>(p)].sid)) {
                    fma_idx = resolve(p);
                    break;
                }
            }
            // The fadd's other inputs must precede the fma in the
            // stream for the rewiring to remain a DAG.
            std::vector<std::int64_t> extra;
            bool fusable = fma_idx >= 0;
            if (fusable) {
                for (std::int64_t p : di.srcProd) {
                    if (p == kNoProducer)
                        continue;
                    if (fmulToFadd_.count(
                            trace[static_cast<DynId>(p)].sid)) {
                        continue; // the fused multiply itself
                    }
                    const std::int64_t dep = resolve(p);
                    if (dep >= fma_idx) {
                        fusable = false;
                        break;
                    }
                    if (dep >= 0)
                        extra.push_back(dep);
                }
            }
            if (!fusable) {
                // Keep the add unfused (producer outside the window
                // or input ordered after the multiply).
                MInst mi = toCoreInst(di);
                for (int s = 0; s < 3; ++s)
                    mi.dep[s] = resolve(di.srcProd[s]);
                dyn_to_idx[i] =
                    static_cast<std::int64_t>(out.size());
                out.push_back(std::move(mi));
                continue;
            }
            for (std::int64_t dep : extra)
                out.addExtraDep(static_cast<std::size_t>(fma_idx),
                                dep, 0);
            // Consumers of the fadd now read the fma.
            dyn_to_idx[i] = fma_idx;
            continue;
        }

        MInst mi = toCoreInst(di);
        for (int s = 0; s < 3; ++s)
            mi.dep[s] = resolve(di.srcProd[s]);
        if (mi.isLoad && di.memProd != kNoProducer)
            mi.memDep = resolve(di.memProd);
        dyn_to_idx[i] = static_cast<std::int64_t>(out.size());
        out.push_back(std::move(mi));
    }
    return out;
}

} // namespace prism
