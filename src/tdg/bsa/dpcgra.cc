/**
 * @file
 * Data-Parallel CGRA (DP-CGRA) TDG transform — paper Section 3.2.
 *
 * The compute slice executes on the reconfigurable fabric (ExecUnit::
 * Cgra) with per-iteration-group pipelining edges and +1 cycle routing
 * latency on dependences; the access slice (memory, induction, loop
 * control) stays on the core with SIMD-style vectorization.
 * Communication instructions (AccelSend/AccelRecv) are inserted along
 * interface edges, and a small configuration cache is modeled: a miss
 * at loop entry inserts configuration instructions.
 */

#include "tdg/bsa/bsa.hh"

#include <algorithm>

#include "common/logging.hh"
#include "tdg/constructor.hh"

namespace prism
{

namespace
{

using Instances = std::unordered_map<StaticId, std::vector<DynId>>;

std::uint16_t
groupMemLat(const Trace &trace, const Instances &inst, StaticId sid)
{
    const auto it = inst.find(sid);
    if (it == inst.end() || it->second.empty())
        return 4;
    std::uint16_t lat = 0;
    for (DynId d : it->second)
        lat = std::max(lat, trace[d].memLat);
    return lat;
}

void
mapInstances(const Instances &inst, StaticId sid, std::int64_t idx,
             xform::DynToIdx &dyn_to_idx)
{
    const auto it = inst.find(sid);
    if (it == inst.end())
        return;
    for (DynId d : it->second)
        dyn_to_idx[d] = idx;
}

} // namespace

bool
DpCgraTransform::canTarget(std::int32_t loop) const
{
    return analyzer_->cgra(loop).usable();
}

TransformOutput
DpCgraTransform::transformLoop(
    std::int32_t loop_id,
    const std::vector<const LoopOccurrence *> &occs)
{
    const CgraPlan &plan = analyzer_->cgra(loop_id);
    prism_assert(plan.usable(), "DP-CGRA transform on unplanned loop");
    const SimdPlan &simd = analyzer_->simd(loop_id);
    const Loop &loop = tdg_->loops().loop(loop_id);
    const LoopDepProfile &deps = tdg_->depProfile(loop_id);
    const LoopMemProfile &mem = tdg_->memProfile(loop_id);
    const Program &prog = tdg_->program();
    const Function &fn = prog.function(loop.func);
    const Trace &trace = tdg_->trace();
    const unsigned V = kVectorLen;
    const AccelParams params = dpCgraParams();

    // Body order: reuse SIMD's RPO when available, else compute from
    // the loop blocks directly (plan legality guarantees innermost).
    std::vector<std::int32_t> body = simd.bodyRpo;
    if (body.empty()) {
        body = loop.blocks;
        const Cfg cfg = Cfg::reconstruct(prog, loop.func);
        std::sort(body.begin(), body.end(),
                  [&cfg](std::int32_t a, std::int32_t b) {
                      return cfg.rpoIndex(a) < cfg.rpoIndex(b);
                  });
    }

    std::set<StaticId> compute_set(plan.computeSlice.begin(),
                                   plan.computeSlice.end());
    std::set<StaticId> send_set(plan.sendSrcs.begin(),
                                plan.sendSrcs.end());
    std::set<StaticId> recv_set(plan.recvSrcs.begin(),
                                plan.recvSrcs.end());

    TransformOutput out;
    MStream &s = out.stream;

    for (const LoopOccurrence *occ : occs) {
        out.occBoundaries.push_back(s.size());
        const std::size_t occ_start = s.size();

        // Configuration cache (4 entries, cleared wholesale on
        // overflow — a coarse LRU).
        if (!configured_.count(loop_id)) {
            if (configured_.size() >= 4)
                configured_.clear();
            configured_.insert(loop_id);
            MInst cfg;
            cfg.op = Opcode::AccelCfg;
            cfg.unit = ExecUnit::Core;
            cfg.fu = FuClass::None;
            cfg.lat = static_cast<std::uint8_t>(
                std::min<unsigned>(params.configCycles, 255));
            s.push_back(std::move(cfg));
        }

        xform::RegDefMap core_regs;   // values visible to the core
        xform::RegDefMap fabric_regs; // values inside the fabric
        std::unordered_map<RegId, std::int64_t> send_map;
        std::unordered_map<StaticId, std::int64_t> prev_group;
        xform::DynToIdx dyn_to_idx;
        const auto &its = occ->iterStarts;

        auto emit_group = [&](const Instances &inst) {
            for (std::int32_t b : body) {
                for (const Instr &in : fn.blocks[b].instrs) {
                    const OpInfo &oi = opInfo(in.op);
                    auto push = [&](MInst mi) {
                        const auto idx =
                            static_cast<std::int64_t>(s.size());
                        s.push_back(std::move(mi));
                        mapInstances(inst, in.sid, idx, dyn_to_idx);
                        return idx;
                    };
                    auto core_dep = [&](RegId r) {
                        return r == kNoReg ? -1 : core_regs.lookup(r);
                    };
                    auto fabric_dep = [&](RegId r) -> std::int64_t {
                        if (r == kNoReg)
                            return -1;
                        const std::int64_t f = fabric_regs.lookup(r);
                        if (f >= 0)
                            return f;
                        const auto it = send_map.find(r);
                        if (it != send_map.end())
                            return it->second;
                        return core_regs.lookup(r);
                    };

                    if (in.op == Opcode::Jmp)
                        continue;

                    const bool is_compute =
                        compute_set.count(in.sid) != 0;

                    if (oi.isCondBranch) {
                        const bool exits_or_latches =
                            in.target == loop.header ||
                            !loop.containsBlock(in.target) ||
                            fn.blocks[b].fallthrough == loop.header ||
                            !loop.containsBlock(
                                fn.blocks[b].fallthrough);
                        if (exits_or_latches) {
                            MInst mi = MInst::core(Opcode::Br);
                            mi.sid = in.sid;
                            mi.takenBranch = true; // back edge
                            mi.dep[0] = core_dep(in.src[0]);
                            push(std::move(mi));
                        } else {
                            // Internal control is predicated inside
                            // the fabric.
                            MInst mi;
                            mi.op = Opcode::Vsel;
                            mi.unit = ExecUnit::Cgra;
                            mi.fu = FuClass::IntAlu;
                            mi.lat = 2; // predicate + routing
                            mi.lanes = static_cast<std::uint8_t>(V);
                            mi.sid = in.sid;
                            mi.dep[0] = fabric_dep(in.src[0]);
                            push(std::move(mi));
                        }
                        continue;
                    }

                    if (!is_compute) {
                        // ---- access slice, on the core ----
                        if (deps.isInduction(in.sid)) {
                            MInst mi = MInst::core(in.op);
                            mi.sid = in.sid;
                            for (int k = 0; k < 3; ++k)
                                mi.dep[k] = core_dep(in.src[k]);
                            const std::int64_t idx =
                                push(std::move(mi));
                            core_regs.def(in.dst, idx);
                        } else if (oi.isLoad || oi.isStore) {
                            const MemAccessPattern *pat =
                                mem.find(in.sid);
                            const bool vec_ok =
                                pat && (pat->contiguous() ||
                                        pat->invariantAddress());
                            MInst mi = MInst::core(
                                oi.isLoad
                                    ? (vec_ok ? Opcode::Vld
                                              : Opcode::Ld)
                                    : (vec_ok ? Opcode::Vst
                                              : Opcode::St));
                            mi.sid = in.sid;
                            mi.dep[0] = core_dep(in.src[0]);
                            if (oi.isStore)
                                mi.dep[1] = core_dep(in.src[1]);
                            if (oi.isLoad) {
                                mi.memLat =
                                    groupMemLat(trace, inst, in.sid);
                            }
                            const std::int64_t idx =
                                push(std::move(mi));
                            if (oi.isLoad)
                                core_regs.def(in.dst, idx);
                        } else {
                            // Address arithmetic etc., vectorized on
                            // the core like SIMD would.
                            Opcode vop = vectorFormOf(in.op);
                            MInst mi = MInst::core(
                                vop == Opcode::Nop ? in.op : vop);
                            mi.sid = in.sid;
                            if (vop != Opcode::Nop) {
                                mi.lanes =
                                    static_cast<std::uint8_t>(V);
                            }
                            for (int k = 0; k < 3; ++k)
                                mi.dep[k] = core_dep(in.src[k]);
                            const std::int64_t idx =
                                push(std::move(mi));
                            if (in.dst != kNoReg)
                                core_regs.def(in.dst, idx);
                        }
                        // Feed the fabric if this def is an interface
                        // input.
                        if (in.dst != kNoReg &&
                            send_set.count(in.sid)) {
                            MInst snd;
                            snd.op = Opcode::AccelSend;
                            snd.unit = ExecUnit::Core;
                            snd.fu = FuClass::IntAlu;
                            snd.lat = 1;
                            snd.sid = in.sid;
                            snd.dep[0] = core_regs.lookup(in.dst);
                            const auto idx =
                                static_cast<std::int64_t>(s.size());
                            s.push_back(std::move(snd));
                            send_map[in.dst] = idx;
                        }
                        continue;
                    }

                    // ---- compute slice, in the fabric ----
                    Opcode vop = vectorFormOf(in.op);
                    MInst mi;
                    mi.op = vop == Opcode::Nop ? in.op : vop;
                    mi.unit = ExecUnit::Cgra;
                    mi.fu = oi.fu;
                    mi.lat = static_cast<std::uint8_t>(
                        oi.latency + 1); // +1 routing
                    mi.lanes = static_cast<std::uint8_t>(V);
                    mi.sid = in.sid;
                    for (int k = 0; k < 3; ++k)
                        mi.dep[k] = fabric_dep(in.src[k]);
                    const auto pg = prev_group.find(in.sid);
                    if (pg != prev_group.end())
                        mi.extraDeps.push_back({pg->second, 1});
                    const std::int64_t idx = push(std::move(mi));
                    prev_group[in.sid] = idx;
                    if (in.dst != kNoReg)
                        fabric_regs.def(in.dst, idx);

                    if (in.dst != kNoReg && recv_set.count(in.sid)) {
                        MInst rcv;
                        rcv.op = Opcode::AccelRecv;
                        rcv.unit = ExecUnit::Core;
                        rcv.fu = FuClass::IntAlu;
                        rcv.lat = 1;
                        rcv.sid = in.sid;
                        rcv.dep[0] = idx;
                        const auto ridx =
                            static_cast<std::int64_t>(s.size());
                        s.push_back(std::move(rcv));
                        core_regs.def(in.dst, ridx);
                    }
                }
            }
        };

        std::size_t g = 0;
        while (g + V <= its.size()) {
            const DynId gb = its[g];
            const DynId ge =
                (g + V < its.size()) ? its[g + V] : occ->end;
            emit_group(xform::collectInstances(trace, gb, ge));
            g += V;
        }
        if (g < its.size()) {
            xform::appendCoreInsts(trace, its[g], occ->end, s,
                                   dyn_to_idx);
        }

        if (s.size() > occ_start)
            s[occ_start].startRegion = true;
    }
    return out;
}

} // namespace prism
