/**
 * @file
 * Data-Parallel CGRA (DP-CGRA) TDG transform — paper Section 3.2.
 *
 * The compute slice executes on the reconfigurable fabric (ExecUnit::
 * Cgra) with per-iteration-group pipelining edges and +1 cycle routing
 * latency on dependences; the access slice (memory, induction, loop
 * control) stays on the core with SIMD-style vectorization.
 * Communication instructions (AccelSend/AccelRecv) are inserted along
 * interface edges, and a small configuration cache is modeled: a miss
 * at loop entry inserts configuration instructions.
 */

#include "tdg/bsa/bsa.hh"

#include <algorithm>

#include "common/logging.hh"
#include "tdg/constructor.hh"

namespace prism
{

namespace
{

std::uint16_t
groupMemLat(const Trace &trace, const xform::Instances &inst,
            StaticId sid)
{
    const auto it = inst.find(sid);
    if (it == inst.end() || it->second.empty())
        return 4;
    std::uint16_t lat = 0;
    for (DynId d : it->second)
        lat = std::max(lat, trace[d].memLat);
    return lat;
}

void
mapInstances(const xform::Instances &inst, StaticId sid,
             std::int64_t idx, xform::DynToIdx &dyn_to_idx)
{
    const auto it = inst.find(sid);
    if (it == inst.end())
        return;
    for (DynId d : it->second)
        dyn_to_idx[d] = idx;
}

} // namespace

bool
DpCgraTransform::canTarget(std::int32_t loop) const
{
    return analyzer_->cgra(loop).usable();
}

void
DpCgraTransform::beginLoop(std::int32_t loop_id)
{
    const CgraPlan &plan = analyzer_->cgra(loop_id);
    prism_assert(plan.usable(), "DP-CGRA transform on unplanned loop");
    const SimdPlan &simd = analyzer_->simd(loop_id);
    const Program &prog = tdg_->program();

    loopId_ = loop_id;
    loop_ = &tdg_->loops().loop(loop_id);
    deps_ = &tdg_->depProfile(loop_id);
    mem_ = &tdg_->memProfile(loop_id);
    fn_ = &prog.function(loop_->func);

    // Body order: reuse SIMD's RPO when available, else compute from
    // the loop blocks directly (plan legality guarantees innermost).
    body_ = simd.bodyRpo;
    if (body_.empty()) {
        body_ = loop_->blocks;
        const Cfg cfg = Cfg::reconstruct(prog, loop_->func);
        std::sort(body_.begin(), body_.end(),
                  [&cfg](std::int32_t a, std::int32_t b) {
                      return cfg.rpoIndex(a) < cfg.rpoIndex(b);
                  });
    }

    computeSet_.clear();
    computeSet_.insert(plan.computeSlice.begin(),
                       plan.computeSlice.end());
    sendSet_.clear();
    sendSet_.insert(plan.sendSrcs.begin(), plan.sendSrcs.end());
    recvSet_.clear();
    recvSet_.insert(plan.recvSrcs.begin(), plan.recvSrcs.end());
}

void
DpCgraTransform::transformOccurrence(const LoopOccurrence &occ,
                                     MStream &s)
{
    const Loop &loop = *loop_;
    const LoopDepProfile &deps = *deps_;
    const LoopMemProfile &mem = *mem_;
    const Function &fn = *fn_;
    const Trace &trace = tdg_->trace();
    const unsigned V = kVectorLen;
    const AccelParams params = dpCgraParams();

    const std::size_t occ_start = s.size();

    // Configuration cache (4 entries, cleared wholesale on
    // overflow — a coarse LRU).
    if (!configured_.count(loopId_)) {
        if (configured_.size() >= 4)
            configured_.clear();
        configured_.insert(loopId_);
        MInst cfg;
        cfg.op = Opcode::AccelCfg;
        cfg.unit = ExecUnit::Core;
        cfg.fu = FuClass::None;
        cfg.lat = static_cast<std::uint8_t>(
            std::min<unsigned>(params.configCycles, 255));
        s.push_back(std::move(cfg));
    }

    xform::RegDefMap &core_regs = coreRegs_;     // visible to the core
    xform::RegDefMap &fabric_regs = fabricRegs_; // inside the fabric
    auto &send_map = sendMap_;
    auto &prev_group = prevGroup_;
    xform::DynToIdx &dyn_to_idx = dynToIdx_;
    core_regs.clear();
    fabric_regs.clear();
    send_map.clear();
    prev_group.clear();
    dyn_to_idx.rebind(occ.begin, occ.end);
    const auto &its = occ.iterStarts;

    auto emit_group = [&](const xform::Instances &inst) {
        for (std::int32_t b : body_) {
            for (const Instr &in : fn.blocks[b].instrs) {
                const OpInfo &oi = opInfo(in.op);
                auto push = [&](MInst mi) {
                    const auto idx =
                        static_cast<std::int64_t>(s.size());
                    s.push_back(std::move(mi));
                    mapInstances(inst, in.sid, idx, dyn_to_idx);
                    return idx;
                };
                auto core_dep = [&](RegId r) {
                    return r == kNoReg ? -1 : core_regs.lookup(r);
                };
                auto fabric_dep = [&](RegId r) -> std::int64_t {
                    if (r == kNoReg)
                        return -1;
                    const std::int64_t f = fabric_regs.lookup(r);
                    if (f >= 0)
                        return f;
                    const auto it = send_map.find(r);
                    if (it != send_map.end())
                        return it->second;
                    return core_regs.lookup(r);
                };

                if (in.op == Opcode::Jmp)
                    continue;

                const bool is_compute =
                    computeSet_.count(in.sid) != 0;

                if (oi.isCondBranch) {
                    const bool exits_or_latches =
                        in.target == loop.header ||
                        !loop.containsBlock(in.target) ||
                        fn.blocks[b].fallthrough == loop.header ||
                        !loop.containsBlock(
                            fn.blocks[b].fallthrough);
                    if (exits_or_latches) {
                        MInst mi = MInst::core(Opcode::Br);
                        mi.sid = in.sid;
                        mi.takenBranch = true; // back edge
                        mi.dep[0] = core_dep(in.src[0]);
                        push(std::move(mi));
                    } else {
                        // Internal control is predicated inside
                        // the fabric.
                        MInst mi;
                        mi.op = Opcode::Vsel;
                        mi.unit = ExecUnit::Cgra;
                        mi.fu = FuClass::IntAlu;
                        mi.lat = 2; // predicate + routing
                        mi.lanes = static_cast<std::uint8_t>(V);
                        mi.sid = in.sid;
                        mi.dep[0] = fabric_dep(in.src[0]);
                        push(std::move(mi));
                    }
                    continue;
                }

                if (!is_compute) {
                    // ---- access slice, on the core ----
                    if (deps.isInduction(in.sid)) {
                        MInst mi = MInst::core(in.op);
                        mi.sid = in.sid;
                        for (int k = 0; k < 3; ++k)
                            mi.dep[k] = core_dep(in.src[k]);
                        const std::int64_t idx =
                            push(std::move(mi));
                        core_regs.def(in.dst, idx);
                    } else if (oi.isLoad || oi.isStore) {
                        const MemAccessPattern *pat =
                            mem.find(in.sid);
                        const bool vec_ok =
                            pat && (pat->contiguous() ||
                                    pat->invariantAddress());
                        MInst mi = MInst::core(
                            oi.isLoad
                                ? (vec_ok ? Opcode::Vld
                                          : Opcode::Ld)
                                : (vec_ok ? Opcode::Vst
                                          : Opcode::St));
                        mi.sid = in.sid;
                        mi.dep[0] = core_dep(in.src[0]);
                        if (oi.isStore)
                            mi.dep[1] = core_dep(in.src[1]);
                        if (oi.isLoad) {
                            mi.memLat =
                                groupMemLat(trace, inst, in.sid);
                        }
                        const std::int64_t idx =
                            push(std::move(mi));
                        if (oi.isLoad)
                            core_regs.def(in.dst, idx);
                    } else {
                        // Address arithmetic etc., vectorized on
                        // the core like SIMD would.
                        Opcode vop = vectorFormOf(in.op);
                        MInst mi = MInst::core(
                            vop == Opcode::Nop ? in.op : vop);
                        mi.sid = in.sid;
                        if (vop != Opcode::Nop) {
                            mi.lanes =
                                static_cast<std::uint8_t>(V);
                        }
                        for (int k = 0; k < 3; ++k)
                            mi.dep[k] = core_dep(in.src[k]);
                        const std::int64_t idx =
                            push(std::move(mi));
                        if (in.dst != kNoReg)
                            core_regs.def(in.dst, idx);
                    }
                    // Feed the fabric if this def is an interface
                    // input.
                    if (in.dst != kNoReg &&
                        sendSet_.count(in.sid)) {
                        MInst snd;
                        snd.op = Opcode::AccelSend;
                        snd.unit = ExecUnit::Core;
                        snd.fu = FuClass::IntAlu;
                        snd.lat = 1;
                        snd.sid = in.sid;
                        snd.dep[0] = static_cast<std::int32_t>(
                            core_regs.lookup(in.dst));
                        const auto idx =
                            static_cast<std::int64_t>(s.size());
                        s.push_back(std::move(snd));
                        send_map[in.dst] = idx;
                    }
                    continue;
                }

                // ---- compute slice, in the fabric ----
                Opcode vop = vectorFormOf(in.op);
                MInst mi;
                mi.op = vop == Opcode::Nop ? in.op : vop;
                mi.unit = ExecUnit::Cgra;
                mi.fu = oi.fu;
                mi.lat = static_cast<std::uint8_t>(
                    oi.latency + 1); // +1 routing
                mi.lanes = static_cast<std::uint8_t>(V);
                mi.sid = in.sid;
                for (int k = 0; k < 3; ++k)
                    mi.dep[k] = fabric_dep(in.src[k]);
                const auto pg = prev_group.find(in.sid);
                const std::int64_t pg_idx =
                    pg == prev_group.end() ? -1 : pg->second;
                const std::int64_t idx = push(std::move(mi));
                if (pg_idx >= 0)
                    s.addExtraDep(static_cast<std::size_t>(idx),
                                  pg_idx, 1);
                prev_group[in.sid] = idx;
                if (in.dst != kNoReg)
                    fabric_regs.def(in.dst, idx);

                if (in.dst != kNoReg && recvSet_.count(in.sid)) {
                    MInst rcv;
                    rcv.op = Opcode::AccelRecv;
                    rcv.unit = ExecUnit::Core;
                    rcv.fu = FuClass::IntAlu;
                    rcv.lat = 1;
                    rcv.sid = in.sid;
                    rcv.dep[0] = static_cast<std::int32_t>(idx);
                    const auto ridx =
                        static_cast<std::int64_t>(s.size());
                    s.push_back(std::move(rcv));
                    core_regs.def(in.dst, ridx);
                }
            }
        }
    };

    std::size_t g = 0;
    while (g + V <= its.size()) {
        const DynId gb = its[g];
        const DynId ge = (g + V < its.size()) ? its[g + V] : occ.end;
        xform::collectInstances(trace, gb, ge, inst_);
        emit_group(inst_);
        g += V;
    }
    if (g < its.size()) {
        xform::appendCoreInsts(trace, its[g], occ.end, s,
                               dyn_to_idx);
    }

    if (s.size() > occ_start)
        s[occ_start].startRegion = true;
}

} // namespace prism
