/**
 * @file
 * Non-speculative dataflow (NS-DF) TDG transform — paper Section 3.2.
 *
 * Whole (nested) loops execute as dataflow (ExecUnit::Nsdf): no
 * fetch/dispatch, issue when operands arrive, compound functional
 * units group dependent same-pool operations, control converts to
 * explicit switch dependences (every operation after a switch waits
 * for it — the non-speculative property), and results contend for the
 * writeback bus. Region entry transfers live values from the core;
 * the core front-end is power-gated while the engine runs.
 */

#include "tdg/bsa/bsa.hh"

#include <algorithm>

#include "common/logging.hh"
#include "tdg/constructor.hh"

namespace prism
{

bool
NsdfTransform::canTarget(std::int32_t loop) const
{
    return analyzer_->nsdf(loop).usable();
}

void
NsdfTransform::beginLoop(std::int32_t loop_id)
{
    prism_assert(analyzer_->nsdf(loop_id).usable(),
                 "NS-DF transform on unplanned loop");
    loopId_ = loop_id;
}

void
NsdfTransform::transformOccurrence(const LoopOccurrence &occ,
                                   MStream &s)
{
    const Trace &trace = tdg_->trace();
    const AccelParams params = nsdfParams();

    auto emit_live_xfer = [&s](Opcode op, std::int64_t dep) {
        MInst mi;
        mi.op = op;
        mi.unit = ExecUnit::Core;
        mi.fu = FuClass::IntAlu;
        mi.lat = 1;
        if (dep >= 0)
            mi.dep[0] = static_cast<std::int32_t>(dep);
        s.push_back(std::move(mi));
    };

    const std::size_t occ_start = s.size();

    if (!configured_.count(loopId_)) {
        if (configured_.size() >= 2)
            configured_.clear();
        configured_.insert(loopId_);
        MInst cfg;
        cfg.op = Opcode::AccelCfg;
        cfg.unit = ExecUnit::Core;
        cfg.fu = FuClass::None;
        cfg.lat = static_cast<std::uint8_t>(
            std::min<unsigned>(params.configCycles, 255));
        s.push_back(std::move(cfg));
    }
    // Live-in transfer from the core's register file.
    emit_live_xfer(Opcode::AccelSend, -1);
    emit_live_xfer(Opcode::AccelSend, -1);

    xform::DynToIdx &dyn_to_idx = dynToIdx_;
    dyn_to_idx.rebind(occ.begin, occ.end);
    std::int64_t last_switch = -1;
    std::int64_t last_df = -1;
    xform::CfuBuilder cfu(s, ExecUnit::Nsdf, 3);
    bool df_started = false;

    for (DynId i = occ.begin; i < occ.end; ++i) {
        const DynInst &di = trace[i];
        const OpInfo &oi = opInfo(di.op);

        std::vector<std::int64_t> &deps = depsScratch_;
        deps.clear();
        for (std::int64_t p : di.srcProd) {
            if (p == kNoProducer)
                continue;
            if (const std::int64_t *idx =
                    dyn_to_idx.find(static_cast<DynId>(p)))
                deps.push_back(*idx);
        }

        if (di.op == Opcode::Jmp)
            continue;

        if (oi.isCondBranch) {
            // Control converts to a dataflow switch.
            MInst mi;
            mi.op = Opcode::DfSwitch;
            mi.unit = ExecUnit::Nsdf;
            mi.fu = FuClass::IntAlu;
            mi.lat = 1;
            mi.sid = di.sid;
            int slot = 0;
            for (std::int64_t d : deps)
                if (slot < 3)
                    mi.dep[slot++] = static_cast<std::int32_t>(d);
            const std::int64_t prev_switch = last_switch;
            if (!df_started) {
                mi.startRegion = true;
                df_started = true;
            }
            last_switch = static_cast<std::int64_t>(s.size());
            last_df = last_switch;
            dyn_to_idx[i] = last_switch;
            s.push_back(std::move(mi));
            if (prev_switch >= 0)
                s.addExtraDep(static_cast<std::size_t>(last_switch),
                              prev_switch, 0);
            cfu.barrier();
            continue;
        }

        if (oi.isLoad || oi.isStore) {
            MInst mi;
            mi.op = di.op;
            mi.unit = ExecUnit::Nsdf;
            mi.fu = FuClass::Mem;
            mi.lat = oi.latency;
            mi.memLat = di.memLat;
            mi.isLoad = oi.isLoad;
            mi.isStore = oi.isStore;
            mi.sid = di.sid;
            int slot = 0;
            for (std::int64_t d : deps)
                if (slot < 3)
                    mi.dep[slot++] = static_cast<std::int32_t>(d);
            if (mi.isLoad && di.memProd != kNoProducer) {
                if (const std::int64_t *idx = dyn_to_idx.find(
                        static_cast<DynId>(di.memProd)))
                    mi.memDep = static_cast<std::int32_t>(*idx);
            }
            if (!df_started) {
                mi.startRegion = true;
                df_started = true;
            }
            const auto idx = static_cast<std::int64_t>(s.size());
            last_df = idx;
            dyn_to_idx[i] = idx;
            s.push_back(std::move(mi));
            if (last_switch >= 0)
                s.addExtraDep(static_cast<std::size_t>(idx),
                              last_switch, 0);
            continue;
        }

        // Computational op: goes through the CFU builder.
        const std::size_t before = s.size();
        const std::int64_t idx = cfu.emitOp(di.op, deps, last_switch);
        if (!df_started && s.size() > before) {
            s[before].startRegion = true;
            df_started = true;
        }
        last_df = std::max(last_df, idx);
        dyn_to_idx[i] = idx;
    }

    // Live-out transfer back to the core.
    emit_live_xfer(Opcode::AccelRecv, last_df);
    emit_live_xfer(Opcode::AccelRecv, last_df);

    if (s.size() > occ_start)
        s[occ_start].startRegion = true;
}

} // namespace prism
