/**
 * @file
 * SIMD (loop auto-vectorization) TDG transform — paper Section 3.2.
 *
 * µDG nodes from kVectorLen iterations are buffered; the first
 * iteration becomes the vectorized version with if-converted
 * not-taken-path instructions, masks along merging control paths,
 * scalarized non-contiguous memory with pack/unpack, and dynamic
 * memory latencies re-mapped onto the vector iteration. Remaining
 * iterations are elided; residual iterations below the vector length
 * run unmodified on the core.
 */

#include "tdg/bsa/bsa.hh"

#include <algorithm>

#include "common/logging.hh"
#include "tdg/constructor.hh"

namespace prism
{

namespace
{

/** Max dynamic load latency among a static load's group instances. */
std::uint16_t
groupMemLat(const Trace &trace, const xform::Instances &inst,
            StaticId sid, std::uint16_t fallback)
{
    const auto it = inst.find(sid);
    if (it == inst.end() || it->second.empty())
        return fallback;
    std::uint16_t lat = 0;
    for (DynId d : it->second)
        lat = std::max(lat, trace[d].memLat);
    return lat;
}

/** Redirect every elided group instance of `sid` to stream idx. */
void
mapInstances(const xform::Instances &inst, StaticId sid,
             std::int64_t idx, xform::DynToIdx &dyn_to_idx)
{
    const auto it = inst.find(sid);
    if (it == inst.end())
        return;
    for (DynId d : it->second)
        dyn_to_idx[d] = idx;
}

} // namespace

bool
SimdTransform::canTarget(std::int32_t loop) const
{
    return analyzer_->simd(loop).usable();
}

void
SimdTransform::beginLoop(std::int32_t loop_id)
{
    plan_ = &analyzer_->simd(loop_id);
    prism_assert(plan_->usable(), "SIMD transform on unplanned loop");
    loop_ = &tdg_->loops().loop(loop_id);
    deps_ = &tdg_->depProfile(loop_id);
    mem_ = &tdg_->memProfile(loop_id);
    fn_ = &tdg_->program().function(loop_->func);
}

void
SimdTransform::transformOccurrence(const LoopOccurrence &occ,
                                   MStream &s)
{
    const SimdPlan &plan = *plan_;
    const Loop &loop = *loop_;
    const LoopDepProfile &deps = *deps_;
    const LoopMemProfile &mem = *mem_;
    const Program &prog = tdg_->program();
    const Function &fn = *fn_;
    const Trace &trace = tdg_->trace();
    const unsigned V = kVectorLen;

    const std::size_t occ_start = s.size();
    xform::RegDefMap &regs = regs_;
    xform::DynToIdx &dyn_to_idx = dynToIdx_;
    regs.clear();
    dyn_to_idx.rebind(occ.begin, occ.end);
    const auto &its = occ.iterStarts;

    // Emits one vectorized iteration covering a group of V iterations.
    auto emit_group = [&](const xform::Instances &inst,
                          bool last_group) {
        for (std::int32_t b : plan.bodyRpo) {
            for (const Instr &in : fn.blocks[b].instrs) {
                const OpInfo &oi = opInfo(in.op);
                const auto idx_of = [&s]() {
                    return static_cast<std::int64_t>(s.size());
                };
                auto push = [&](MInst mi) {
                    const std::int64_t idx = idx_of();
                    s.push_back(std::move(mi));
                    mapInstances(inst, in.sid, idx, dyn_to_idx);
                    return idx;
                };
                auto dep_of = [&](RegId r) {
                    return r == kNoReg ? -1 : regs.lookup(r);
                };

                if (in.op == Opcode::Jmp)
                    continue;

                if (oi.isCondBranch) {
                    const bool exits_or_latches =
                        in.target == loop.header ||
                        !loop.containsBlock(in.target) ||
                        fn.blocks[b].fallthrough == loop.header ||
                        !loop.containsBlock(fn.blocks[b].fallthrough);
                    if (exits_or_latches) {
                        // Scalar loop control, once per group.
                        MInst mi = MInst::core(Opcode::Br);
                        mi.sid = in.sid;
                        mi.takenBranch = true; // back edge
                        mi.dep[0] = dep_of(in.src[0]);
                        push(std::move(mi));
                    } else {
                        // Internal control becomes a mask/blend op.
                        MInst mi = MInst::core(Opcode::Vmask);
                        mi.sid = in.sid;
                        mi.lanes = static_cast<std::uint8_t>(V);
                        mi.dep[0] = dep_of(in.src[0]);
                        push(std::move(mi));
                    }
                    continue;
                }

                if (deps.isInduction(in.sid)) {
                    // One scalar update per group (stride scaled).
                    MInst mi = MInst::core(in.op);
                    mi.sid = in.sid;
                    for (int k = 0; k < 3; ++k)
                        mi.dep[k] = dep_of(in.src[k]);
                    const std::int64_t idx = push(std::move(mi));
                    if (in.dst != kNoReg)
                        regs.def(in.dst, idx);
                    continue;
                }

                if (oi.isLoad || oi.isStore) {
                    const MemAccessPattern *pat = mem.find(in.sid);
                    const bool vec_ok =
                        pat && (pat->contiguous() ||
                                pat->invariantAddress());
                    if (vec_ok) {
                        MInst mi = MInst::core(
                            oi.isLoad ? Opcode::Vld : Opcode::Vst);
                        mi.sid = in.sid;
                        mi.dep[0] = dep_of(in.src[0]);
                        if (oi.isStore)
                            mi.dep[1] = dep_of(in.src[1]);
                        if (oi.isLoad) {
                            mi.memLat = groupMemLat(trace, inst,
                                                    in.sid, 4);
                        }
                        const std::int64_t idx = push(std::move(mi));
                        if (oi.isLoad)
                            regs.def(in.dst, idx);
                        continue;
                    }
                    // Non-contiguous: scalarize + pack/unpack.
                    if (oi.isLoad) {
                        std::vector<std::int64_t> &parts = parts_;
                        parts.clear();
                        const auto it = inst.find(in.sid);
                        for (unsigned k = 0; k < V; ++k) {
                            MInst mi = MInst::core(Opcode::Ld);
                            mi.sid = in.sid;
                            mi.dep[0] = dep_of(in.src[0]);
                            mi.memLat =
                                (it != inst.end() &&
                                 k < it->second.size())
                                    ? trace[it->second[k]].memLat
                                    : 4;
                            parts.push_back(
                                static_cast<std::int64_t>(s.size()));
                            s.push_back(std::move(mi));
                        }
                        MInst pack = MInst::core(Opcode::Vpack);
                        pack.sid = in.sid;
                        pack.lanes = static_cast<std::uint8_t>(V);
                        for (std::size_t k = 0;
                             k < parts.size() && k < 3; ++k) {
                            pack.dep[k] = static_cast<std::int32_t>(
                                parts[k]);
                        }
                        const std::int64_t idx = push(std::move(pack));
                        for (std::size_t k = 3; k < parts.size(); ++k)
                            s.addExtraDep(
                                static_cast<std::size_t>(idx),
                                parts[k], 0);
                        regs.def(in.dst, idx);
                    } else {
                        MInst un = MInst::core(Opcode::Vunpack);
                        un.sid = in.sid;
                        un.lanes = static_cast<std::uint8_t>(V);
                        un.dep[0] = dep_of(in.src[1]); // value vector
                        const std::int64_t un_idx = push(std::move(un));
                        for (unsigned k = 0; k < V; ++k) {
                            MInst mi = MInst::core(Opcode::St);
                            mi.sid = in.sid;
                            mi.dep[0] = dep_of(in.src[0]);
                            mi.dep[1] = static_cast<std::int32_t>(
                                un_idx);
                            s.push_back(std::move(mi));
                        }
                    }
                    continue;
                }

                // Default: the vector form of the operation. The
                // reduction's loop-carried input flows through the
                // register map, serializing groups realistically.
                Opcode vop = vectorFormOf(in.op);
                MInst mi = MInst::core(vop == Opcode::Nop ? in.op
                                                          : vop);
                mi.sid = in.sid;
                if (vop != Opcode::Nop)
                    mi.lanes = static_cast<std::uint8_t>(V);
                for (int k = 0; k < 3; ++k)
                    mi.dep[k] = dep_of(in.src[k]);
                const std::int64_t idx = push(std::move(mi));
                if (in.dst != kNoReg)
                    regs.def(in.dst, idx);
            }
        }
        (void)last_group;
    };

    std::size_t g = 0;
    while (g + V <= its.size()) {
        const DynId gb = its[g];
        const DynId ge = (g + V < its.size()) ? its[g + V] : occ.end;
        xform::collectInstances(trace, gb, ge, inst_);
        const bool last = g + V >= its.size();
        emit_group(inst_, last);
        g += V;
    }
    if (g < its.size()) {
        xform::appendCoreInsts(trace, its[g], occ.end, s,
                               dyn_to_idx);
    }

    // Horizontal reduction epilogue (log2(V) steps).
    for (StaticId rsid : deps.reductions) {
        const Instr &rin = prog.instr(rsid);
        std::int64_t acc = regs.lookup(rin.dst);
        for (unsigned step = 0; step < 2 && acc >= 0; ++step) {
            MInst mi = MInst::core(rin.op);
            mi.sid = rsid;
            mi.dep[0] = static_cast<std::int32_t>(acc);
            acc = static_cast<std::int64_t>(s.size());
            s.push_back(std::move(mi));
        }
    }

    if (s.size() > occ_start)
        s[occ_start].startRegion = true;
}

} // namespace prism
