#include "tdg/builder.hh"

#include <algorithm>

#include "analysis/check_ir.hh"
#include "common/logging.hh"
#include "ir/cfg.hh"
#include "ir/dominators.hh"

namespace prism
{

namespace
{

/** dst is also one of the sources: the self-update idiom. */
bool
isSelfDep(const Instr &in)
{
    if (in.dst == kNoReg)
        return false;
    for (RegId s : in.src) {
        if (s != kNoReg && s == in.dst)
            return true;
    }
    return false;
}

/** The non-dst operand of a self-dep instruction (kNoReg if none). */
RegId
otherOperand(const Instr &in)
{
    for (RegId s : in.src) {
        if (s != kNoReg && s != in.dst)
            return s;
    }
    return kNoReg;
}

bool
isReductionOp(Opcode op)
{
    switch (op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Fadd:
      case Opcode::Fsub:
      case Opcode::Fmul:
      case Opcode::Fma:
        return true;
      default:
        return false;
    }
}

} // namespace

TdgStatics::TdgStatics(const Program &prog)
    : forest(LoopForest::build(prog)), dfgs(buildAllDfgs(prog)),
      prog_(&prog)
{
    const std::size_t nloops = forest.numLoops();
    dags.resize(nloops);
    inductions.resize(nloops);
    reductions.resize(nloops);

    // One Cfg + Dominators per function, built lazily.
    std::vector<std::unique_ptr<Cfg>> cfgs(prog.functions().size());
    std::vector<std::unique_ptr<Dominators>> doms(
        prog.functions().size());
    auto cfg_of = [&](std::int32_t func) -> const Cfg & {
        if (!cfgs[func]) {
            cfgs[func] =
                std::make_unique<Cfg>(Cfg::reconstruct(prog, func));
        }
        return *cfgs[func];
    };
    auto dom_of = [&](std::int32_t func) -> const Dominators & {
        if (!doms[func]) {
            doms[func] = std::make_unique<Dominators>(
                Dominators::compute(cfg_of(func)));
        }
        return *doms[func];
    };

    // Ball-Larus numbering for every innermost loop, and the static
    // induction/reduction classification (same rules and iteration
    // order as the legacy profilePaths/profileDeps passes).
    for (const Loop &loop : forest.loops()) {
        if (!loop.innermost)
            continue;
        dags[loop.id] = std::make_unique<BallLarusDag>(
            prog, cfg_of(loop.func), loop);

        const Function &fn = prog.function(loop.func);
        const Dfg &dfg = dfgs.at(loop.func);
        const Dominators &dom = dom_of(loop.func);
        for (std::int32_t b : loop.blocks) {
            bool every_iteration = true;
            for (std::int32_t latch : loop.latches)
                every_iteration &= dom.dominates(b, latch);
            if (!every_iteration)
                continue;
            for (const Instr &in : fn.blocks[b].instrs) {
                if (!isSelfDep(in))
                    continue;
                const RegId other = otherOperand(in);
                const bool other_inv =
                    other == kNoReg ||
                    dfg.invariantIn(prog, other, loop);
                if ((in.op == Opcode::Add || in.op == Opcode::Sub) &&
                    other_inv) {
                    inductions[loop.id].push_back(in.sid);
                } else if (isReductionOp(in.op)) {
                    reductions[loop.id].push_back(in.sid);
                }
            }
        }
    }

    // headerLoopOf[func][block]: the loop this block is the header of
    // (unique — loops sharing a header are merged by LoopForest).
    std::vector<std::vector<std::int32_t>> header_loop_of(
        prog.functions().size());
    for (std::size_t f = 0; f < prog.functions().size(); ++f) {
        header_loop_of[f].assign(prog.functions()[f].blocks.size(), -1);
    }
    for (const Loop &loop : forest.loops())
        header_loop_of[loop.func][loop.header] = loop.id;

    // Per-sid dispatch records. Loop chains are shared per block.
    sidInfo.assign(prog.numInstrs(), SidInfo{});
    for (std::size_t f = 0; f < prog.functions().size(); ++f) {
        const Function &fn = prog.functions()[f];
        const std::int32_t fi = static_cast<std::int32_t>(f);
        for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
            const std::int32_t bi = static_cast<std::int32_t>(b);
            const std::int32_t inner = forest.innermostAt(fi, bi);

            // Chain of loops containing this block, outermost first.
            const std::uint32_t chain_base =
                static_cast<std::uint32_t>(chainPool.size());
            for (std::int32_t l = inner; l != -1;
                 l = forest.loop(l).parent) {
                chainPool.push_back(l);
            }
            std::reverse(chainPool.begin() + chain_base,
                         chainPool.end());
            const std::uint16_t chain_len = static_cast<std::uint16_t>(
                chainPool.size() - chain_base);

            const Loop *prof_loop =
                (inner != -1 && forest.loop(inner).innermost)
                    ? &forest.loop(inner)
                    : nullptr;
            const BallLarusDag *dag =
                prof_loop ? dags[prof_loop->id].get() : nullptr;

            for (std::size_t x = 0; x < fn.blocks[b].instrs.size();
                 ++x) {
                const Instr &in = fn.blocks[b].instrs[x];
                const OpInfo &oi = opInfo(in.op);
                SidInfo &si = sidInfo.at(in.sid);
                si.innermost = inner;
                si.headerLoop = header_loop_of[f][b];
                si.chainBase = chain_base;
                si.chainLen = chain_len;
                if (x == 0)
                    si.flags |= kFirstInBlock;
                if (oi.isCall)
                    si.flags |= kCall;
                if (oi.isRet)
                    si.flags |= kRet;
                if (oi.isLoad)
                    si.flags |= kLoad;
                if (oi.isLoad || oi.isStore)
                    si.flags |= kMem;
                if (x == 0 && prof_loop &&
                    bi == prof_loop->header) {
                    si.flags |= kHeaderInner;
                }

                if (in.op != Opcode::Br && in.op != Opcode::Jmp)
                    continue;
                si.flags |= kTerm;
                if (!dag)
                    continue;

                // Precompute both outgoing Ball-Larus edges; Jmp only
                // ever takes the `taken` edge.
                const auto classify = [&](std::int32_t next,
                                          std::int64_t &val, bool &exit,
                                          bool &to_header) {
                    const bool internal =
                        next != prof_loop->header &&
                        prof_loop->containsBlock(next);
                    val = internal ? dag->edgeValue(bi, next)
                                   : dag->exitValue(bi, next);
                    exit = !internal;
                    to_header = next == prof_loop->header;
                };
                classify(in.target, si.takenVal, si.takenExit,
                         si.takenToHeader);
                if (in.op == Opcode::Br) {
                    classify(fn.blocks[b].fallthrough, si.fallVal,
                             si.fallExit, si.fallToHeader);
                }
            }
        }
    }
}

TdgBuilder::TdgBuilder(const TdgStatics &statics)
    : st_(&statics), prog_(&statics.program())
{
}

void
TdgBuilder::begin(const Trace &trace)
{
    trace_ = &trace;
    out_ = TdgProfiles{};
    stack_.clear();
    depth_ = 0;
    fedUpTo_ = 0;

    const std::size_t nloops = st_->forest.numLoops();
    out_.pathProfiles.assign(nloops, PathProfile{});
    out_.memProfiles.assign(nloops, LoopMemProfile{});
    out_.depProfiles.assign(nloops, LoopDepProfile{});
    for (const Loop &loop : st_->forest.loops()) {
        out_.pathProfiles[loop.id].loopId = loop.id;
        out_.memProfiles[loop.id].loopId = loop.id;
        out_.depProfiles[loop.id].loopId = loop.id;
        if (loop.innermost) {
            out_.pathProfiles[loop.id].numStaticPaths =
                st_->dags[loop.id]->numPaths();
            out_.depProfiles[loop.id].inductions =
                st_->inductions[loop.id];
            out_.depProfiles[loop.id].reductions =
                st_->reductions[loop.id];
        }
    }
    pathCounts_.assign(nloops, {});

    if (memScratch_.size() < prog_->numInstrs())
        memScratch_.resize(prog_->numInstrs());
    touched_.clear();
    ++epoch_;
}

void
TdgBuilder::mergeAccess(LoopMemProfile &prof, StaticId sid,
                        const MemScratch &s)
{
    MemAccessPattern *p = nullptr;
    for (MemAccessPattern &cand : prof.accesses) {
        if (cand.sid == sid) {
            p = &cand;
            break;
        }
    }
    if (p == nullptr) {
        MemAccessPattern np;
        np.sid = sid;
        const Instr &in = prog_->instr(sid);
        np.isLoad = opInfo(in.op).isLoad;
        np.memSize = in.memSize;
        np.strideKnown = true; // refined below
        prof.accesses.push_back(np);
        p = &prof.accesses.back();
    }
    p->count += s.count;
    if (s.inconsistent || !s.strideSet) {
        // One execution gives no stride evidence; keep known only if
        // a stride was consistently observed.
        if (s.inconsistent)
            p->strideKnown = false;
    } else if (p->strideKnown) {
        // `strideSet`, not a count comparison: an earlier occurrence
        // may have contributed single executions without ever
        // measuring a stride.
        if (!p->strideSet) {
            p->stride = s.stride;
            p->strideSet = true;
        } else if (p->stride != s.stride) {
            p->strideKnown = false;
        }
    }
}

void
TdgBuilder::closeTop(DynId end)
{
    const Active top = stack_.back();
    stack_.pop_back();
    LoopOccurrence &occ = out_.loopMap.occurrences[top.occIndex];
    occ.end = end;
    if (!top.profiled)
        return;

    LoopMemProfile &prof = out_.memProfiles[top.loopId];
    prof.itersObserved += occ.numIters();
    for (StaticId sid : touched_)
        mergeAccess(prof, sid, memScratch_[sid]);
    touched_.clear();
    ++epoch_;
}

void
TdgBuilder::feed(DynId base, std::size_t n)
{
    prism_assert(trace_ != nullptr, "feed before begin");
    prism_assert(base == fedUpTo_, "fed out of order");
    prism_assert(base + n <= trace_->size(),
                 "fed past the appended trace");
    const Trace &trace = *trace_;
    const std::int32_t *chain_pool = st_->chainPool.data();

    for (DynId i = base; i < base + n; ++i) {
        const DynInst &di = trace[i];
        if constexpr (kCheckIr) {
            prism_assert(di.sid < st_->sidInfo.size(),
                         "CHECK_IR: sid %llu of inst %llu outside the "
                         "static program",
                         static_cast<unsigned long long>(di.sid),
                         static_cast<unsigned long long>(i));
            for (int s = 0; s < 3; ++s) {
                prism_assert(di.srcProd[s] == kNoProducer ||
                                 static_cast<DynId>(di.srcProd[s]) < i,
                             "CHECK_IR: producer slot %d of inst %llu "
                             "not strictly backward",
                             s, static_cast<unsigned long long>(i));
            }
            prism_assert(di.memProd == kNoProducer ||
                             static_cast<DynId>(di.memProd) < i,
                         "CHECK_IR: memory producer of inst %llu not "
                         "strictly backward",
                         static_cast<unsigned long long>(i));
        }
        const TdgStatics::SidInfo &info = st_->sidInfo[di.sid];

        // Pop loops whose frame has returned.
        while (!stack_.empty() && depth_ < stack_.back().entryDepth)
            closeTop(i);

        const bool inherited =
            !stack_.empty() && depth_ > stack_.back().entryDepth;

        if (!inherited) {
            const std::int32_t *chain = chain_pool + info.chainBase;
            const unsigned clen = info.chainLen;

            // Pop stack entries (at this depth) not in the chain.
            while (!stack_.empty() &&
                   stack_.back().entryDepth == depth_) {
                const std::int32_t top = stack_.back().loopId;
                bool keep = false;
                for (unsigned c = 0; c < clen; ++c) {
                    if (chain[c] == top) {
                        keep = true;
                        break;
                    }
                }
                if (keep)
                    break;
                closeTop(i);
            }

            // Push chain entries not yet on the stack.
            unsigned matched = 0;
            for (const Active &a : stack_) {
                if (a.entryDepth == depth_ && matched < clen &&
                    a.loopId == chain[matched]) {
                    ++matched;
                }
            }
            for (unsigned c = matched; c < clen; ++c) {
                LoopOccurrence occ;
                occ.loopId = chain[c];
                occ.begin = i;
                occ.end = i; // finalized on close
                out_.loopMap.occurrences.push_back(std::move(occ));
                Active a;
                a.loopId = chain[c];
                a.occIndex = static_cast<std::int32_t>(
                                 out_.loopMap.occurrences.size()) -
                             1;
                a.entryDepth = depth_;
                a.profiled = st_->forest.loop(chain[c]).innermost;
                out_.loopMap.occurrences[a.occIndex].iterStarts
                    .reserve(4);
                stack_.push_back(a);
            }

            // Header-entry instructions begin iterations.
            if (!stack_.empty() &&
                (info.flags & TdgStatics::kFirstInBlock) &&
                info.headerLoop != -1) {
                for (const Active &a : stack_) {
                    if (a.loopId == info.headerLoop) {
                        out_.loopMap.occurrences[a.occIndex].iterStarts
                            .push_back(i);
                        break; // headers are unique per loop
                    }
                }
            }
        }

        if (!stack_.empty()) {
            out_.loopMap.loopOf.push_back(stack_.back().loopId);
            out_.loopMap.occOf.push_back(stack_.back().occIndex);
        } else {
            out_.loopMap.loopOf.push_back(-1);
            out_.loopMap.occOf.push_back(-1);
        }

        // Profiling hooks: fire when the covering occurrence is an
        // innermost loop and this instruction is in its body (the
        // same filter as the legacy `ref.func == loop.func &&
        // loop.containsBlock(ref.block)` — for an innermost loop the
        // two are equivalent, including inherited recursion into the
        // same function).
        if (!stack_.empty()) {
            Active &top = stack_.back();
            if (top.profiled && info.innermost == top.loopId) {
                const LoopOccurrence &occ =
                    out_.loopMap.occurrences[top.occIndex];

                // ---- Ball-Larus path profiling ----
                if (info.flags & TdgStatics::kHeaderInner) {
                    top.inPath = true;
                    top.pathSum = 0;
                }
                if (top.inPath &&
                    (info.flags & TdgStatics::kTerm)) {
                    const bool taken = di.branchTaken;
                    const std::int64_t v =
                        taken ? info.takenVal : info.fallVal;
                    if (!(taken ? info.takenExit : info.fallExit)) {
                        prism_assert(v >= 0, "missing BL edge");
                        top.pathSum += static_cast<std::uint64_t>(v);
                    } else {
                        prism_assert(v >= 0, "missing BL exit edge");
                        PathProfile &pprof =
                            out_.pathProfiles[top.loopId];
                        ++pprof.totalIters;
                        if (taken ? info.takenToHeader
                                  : info.fallToHeader) {
                            ++pprof.backEdgeTaken;
                        }
                        ++pathCounts_[top.loopId]
                                     [top.pathSum +
                                      static_cast<std::uint64_t>(v)];
                        top.inPath = false;
                        top.pathSum = 0;
                    }
                }

                // ---- memory profiling ----
                if (info.flags & TdgStatics::kMem) {
                    MemScratch &s = memScratch_[di.sid];
                    if (s.epoch != epoch_) {
                        s = MemScratch{};
                        s.epoch = epoch_;
                        touched_.push_back(di.sid);
                    }
                    ++s.count;
                    if (s.seen) {
                        const std::int64_t delta =
                            static_cast<std::int64_t>(di.effAddr) -
                            static_cast<std::int64_t>(s.lastAddr);
                        if (!s.strideSet) {
                            s.stride = delta;
                            s.strideSet = true;
                        } else if (delta != s.stride) {
                            s.inconsistent = true;
                        }
                    }
                    s.seen = true;
                    s.lastAddr = di.effAddr;

                    // Loop-carried store-to-load dependence check.
                    if ((info.flags & TdgStatics::kLoad) &&
                        di.memProd != kNoProducer &&
                        static_cast<DynId>(di.memProd) >= occ.begin &&
                        static_cast<DynId>(di.memProd) < i &&
                        !occ.iterStarts.empty() &&
                        static_cast<DynId>(di.memProd) <
                            occ.iterStarts.back()) {
                        // Producer precedes the current iteration;
                        // carried iff it falls inside a prior one.
                        const auto it = std::upper_bound(
                            occ.iterStarts.begin(),
                            occ.iterStarts.end(),
                            static_cast<DynId>(di.memProd));
                        if (it != occ.iterStarts.begin()) {
                            out_.memProfiles[top.loopId]
                                .loopCarriedStoreToLoad = true;
                        }
                    }
                }

                // ---- carried register dependences ----
                if (!occ.iterStarts.empty()) {
                    const DynId cur_start = occ.iterStarts.back();
                    LoopDepProfile &dprof =
                        out_.depProfiles[top.loopId];
                    for (std::int64_t p : di.srcProd) {
                        if (p == kNoProducer ||
                            static_cast<DynId>(p) < occ.begin ||
                            static_cast<DynId>(p) >= cur_start) {
                            continue; // outside, or this iteration
                        }
                        const auto it = std::upper_bound(
                            occ.iterStarts.begin(),
                            occ.iterStarts.end(),
                            static_cast<DynId>(p));
                        if (it == occ.iterStarts.begin())
                            continue; // predates the first iteration
                        ++dprof.carriedDeps;

                        const StaticId prod_sid = trace[p].sid;
                        if (dprof.isInduction(prod_sid))
                            continue; // reading an induction: benign
                        if (prod_sid == di.sid &&
                            (dprof.isInduction(di.sid) ||
                             dprof.isReduction(di.sid))) {
                            continue; // the classified self-update
                        }
                        dprof.otherRecurrence = true;
                    }
                }
            }
        }

        if (info.flags & TdgStatics::kCall)
            ++depth_;
        else if ((info.flags & TdgStatics::kRet) && depth_ > 0)
            --depth_;
    }
    fedUpTo_ = base + n;
}

TdgProfiles
TdgBuilder::finish()
{
    while (!stack_.empty())
        closeTop(fedUpTo_);

    for (const Loop &loop : st_->forest.loops()) {
        if (!loop.innermost)
            continue;
        PathProfile &prof = out_.pathProfiles[loop.id];
        for (const auto &[id, count] : pathCounts_[loop.id]) {
            PathProfile::PathInfo pi;
            pi.id = id;
            pi.count = count;
            pi.blocks = st_->dags[loop.id]->decode(id);
            prof.paths.push_back(std::move(pi));
        }
        std::sort(prof.paths.begin(), prof.paths.end(),
                  [](const auto &a, const auto &b) {
                      return a.count > b.count;
                  });
    }

    trace_ = nullptr;
    return std::move(out_);
}

} // namespace prism
