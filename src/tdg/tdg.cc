#include "tdg/tdg.hh"

#include "common/logging.hh"

namespace prism
{

Tdg::Tdg(const Program &prog, Trace trace)
    : prog_(&prog), trace_(std::move(trace))
{
    TdgStatics st(prog);
    TdgBuilder b(st);
    b.begin(trace_);
    b.feed(0, trace_.size());
    adopt(std::move(st), b.finish());
}

Tdg::Tdg(const Program &prog, Trace trace, TdgStatics statics,
         TdgProfiles profiles)
    : prog_(&prog), trace_(std::move(trace))
{
    adopt(std::move(statics), std::move(profiles));
}

void
Tdg::adopt(TdgStatics statics, TdgProfiles profiles)
{
    loops_ = std::move(statics.forest);
    dfgs_ = std::move(statics.dfgs);
    loopMap_ = std::move(profiles.loopMap);
    pathProfiles_ = std::move(profiles.pathProfiles);
    memProfiles_ = std::move(profiles.memProfiles);
    depProfiles_ = std::move(profiles.depProfiles);
}

std::vector<const LoopOccurrence *>
Tdg::occurrencesOf(std::int32_t loop) const
{
    std::vector<const LoopOccurrence *> occs;
    for (const LoopOccurrence &occ : loopMap_.occurrences) {
        if (occ.loopId == loop)
            occs.push_back(&occ);
    }
    return occs;
}

std::uint64_t
Tdg::dynInstsOf(std::int32_t loop) const
{
    std::uint64_t n = 0;
    for (const LoopOccurrence &occ : loopMap_.occurrences) {
        if (occ.loopId == loop)
            n += occ.numInsts();
    }
    return n;
}

} // namespace prism
