#include "tdg/tdg.hh"

#include "common/logging.hh"

namespace prism
{

Tdg::Tdg(const Program &prog, Trace trace)
    : prog_(&prog), trace_(std::move(trace)),
      loops_(LoopForest::build(prog)),
      loopMap_(mapTraceToLoops(prog, trace_, loops_)),
      dfgs_(buildAllDfgs(prog)),
      pathProfiles_(profilePaths(prog, trace_, loops_, loopMap_)),
      memProfiles_(profileMemory(prog, trace_, loops_, loopMap_)),
      depProfiles_(profileDeps(prog, trace_, loops_, loopMap_, dfgs_))
{
}

std::vector<const LoopOccurrence *>
Tdg::occurrencesOf(std::int32_t loop) const
{
    std::vector<const LoopOccurrence *> occs;
    for (const LoopOccurrence &occ : loopMap_.occurrences) {
        if (occ.loopId == loop)
            occs.push_back(&occ);
    }
    return occs;
}

std::uint64_t
Tdg::dynInstsOf(std::int32_t loop) const
{
    std::uint64_t n = 0;
    for (const LoopOccurrence &occ : loopMap_.occurrences) {
        if (occ.loopId == loop)
            n += occ.numInsts();
    }
    return n;
}

} // namespace prism
