/**
 * @file
 * Fused single-pass TDG construction.
 *
 * The legacy constructor walked the materialized trace four times
 * (mapTraceToLoops, profilePaths, profileMemory, profileDeps). The
 * fused builder splits that work into:
 *
 *  - TdgStatics: everything derivable from the Program alone — the
 *    loop forest, per-function DFGs, Ball-Larus DAGs, static
 *    induction/reduction classification, and a per-static-instruction
 *    side table (SidInfo) with the loop chain, dispatch flags and
 *    precomputed Ball-Larus edge values each dynamic instruction
 *    needs.
 *
 *  - TdgBuilder: one incremental walk over the dynamic stream that
 *    maintains the active-loop-occurrence stack and applies the path,
 *    memory and dependence profiling hooks in the same pass. It is
 *    feed()-able batch-by-batch, so it fuses directly behind the
 *    streaming FrontEnd — DynInsts flow from the interpreter through
 *    annotation into TDG profiles without an intermediate full-trace
 *    walk.
 *
 * The profiles produced are semantically identical to the legacy
 * passes (which remain in src/ir as the reference implementations and
 * are differentially tested in tests/test_frontend_streaming.cc); the
 * only representational difference is the order of LoopMemProfile::
 * accesses, which legacy emitted in unordered_map hash order and the
 * builder emits in first-touch order (all consumers are
 * order-independent).
 */

#ifndef PRISM_TDG_BUILDER_HH
#define PRISM_TDG_BUILDER_HH

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "ir/dfg.hh"
#include "ir/induction.hh"
#include "ir/loops.hh"
#include "ir/mem_profile.hh"
#include "ir/path_profile.hh"
#include "prog/program.hh"
#include "trace/dyn_inst.hh"

namespace prism
{

/** Everything the TDG derives from the trace. */
struct TdgProfiles
{
    TraceLoopMap loopMap;
    std::vector<PathProfile> pathProfiles;
    std::vector<LoopMemProfile> memProfiles;
    std::vector<LoopDepProfile> depProfiles;
};

/**
 * Trace-independent TDG construction state for one Program. Build
 * once, reuse across traces (and across TdgBuilder runs).
 */
class TdgStatics
{
  public:
    explicit TdgStatics(const Program &prog);

    TdgStatics(TdgStatics &&) = default;
    TdgStatics &operator=(TdgStatics &&) = default;

    const Program &program() const { return *prog_; }

    LoopForest forest;
    std::vector<Dfg> dfgs;

    /** Ball-Larus numbering per innermost loop id (null otherwise). */
    std::vector<std::unique_ptr<BallLarusDag>> dags;

    /** Statically classified self-updates, per loop id. */
    std::vector<std::vector<StaticId>> inductions;
    std::vector<std::vector<StaticId>> reductions;

    // SidInfo::flags bits.
    static constexpr std::uint16_t kFirstInBlock = 1u << 0;
    static constexpr std::uint16_t kCall = 1u << 1;
    static constexpr std::uint16_t kRet = 1u << 2;
    static constexpr std::uint16_t kTerm = 1u << 3; // Br or Jmp
    static constexpr std::uint16_t kMem = 1u << 4;
    static constexpr std::uint16_t kLoad = 1u << 5;
    /** Header entry (index 0 of the header block) of the block's
     *  innermost loop — begins a Ball-Larus path. */
    static constexpr std::uint16_t kHeaderInner = 1u << 6;

    /**
     * Per-static-instruction dispatch record: location, loop chain,
     * event flags, and (for terminators inside profiled loops) the
     * precomputed Ball-Larus values of both outgoing edges. Edge
     * values stay -1 when no DAG edge exists; the builder asserts at
     * use, exactly like the legacy pass.
     */
    struct SidInfo
    {
        std::int32_t innermost = -1;   ///< innermost loop at the block
        std::int32_t headerLoop = -1;  ///< loop this block is header of
        std::uint32_t chainBase = 0;   ///< into chainPool, outermost 1st
        std::uint16_t chainLen = 0;
        std::uint16_t flags = 0;
        std::int64_t takenVal = -1;    ///< BL value of the taken edge
        std::int64_t fallVal = -1;     ///< ... of the fallthrough edge
        bool takenExit = false;        ///< taken edge terminates a path
        bool fallExit = false;
        bool takenToHeader = false;    ///< taken edge is the back edge
        bool fallToHeader = false;
    };

    std::vector<SidInfo> sidInfo; ///< indexed by StaticId
    std::vector<std::int32_t> chainPool;

  private:
    const Program *prog_;
};

/**
 * Incremental TDG profile construction over a streamed trace. Usage:
 *
 *   TdgBuilder b(statics);
 *   b.begin(trace);               // trace may still be empty
 *   ... trace.append(d, n); b.feed(base, n); ...  // append BEFORE feed
 *   TdgProfiles p = b.finish();
 *
 * feed(base, n) consumes trace[base, base+n); instructions must be
 * appended to the trace before they are fed (producer-index lookups
 * reach back into the trace).
 */
class TdgBuilder
{
  public:
    explicit TdgBuilder(const TdgStatics &statics);

    /** Start (or restart) building against `trace`. */
    void begin(const Trace &trace);

    /** Consume trace[base, base+n). */
    void feed(DynId base, std::size_t n);

    /** Close open occurrences and assemble the profiles. */
    TdgProfiles finish();

  private:
    struct Active
    {
        std::int32_t loopId = -1;
        std::int32_t occIndex = -1;
        unsigned entryDepth = 0;
        bool profiled = false; ///< innermost loop: hooks apply
        // Ball-Larus path state (profiled occurrences only).
        bool inPath = false;
        std::uint64_t pathSum = 0;
    };

    /** Per-static-access stride scratch, epoch-tagged so the active
     *  profiled occurrence owns it without clearing between runs. */
    struct MemScratch
    {
        std::uint64_t epoch = 0;
        Addr lastAddr = 0;
        bool seen = false;
        bool strideSet = false;
        bool inconsistent = false;
        std::int64_t stride = 0;
        std::uint64_t count = 0;
    };

    void closeTop(DynId end);
    void mergeAccess(LoopMemProfile &prof, StaticId sid,
                     const MemScratch &s);

    const TdgStatics *st_;
    const Program *prog_;
    const Trace *trace_ = nullptr;

    TdgProfiles out_;
    std::vector<Active> stack_;
    unsigned depth_ = 0;
    DynId fedUpTo_ = 0;

    std::vector<std::map<std::uint64_t, std::uint64_t>> pathCounts_;
    std::vector<MemScratch> memScratch_; ///< indexed by StaticId
    std::vector<StaticId> touched_;      ///< sids live in memScratch_
    std::uint64_t epoch_ = 1;
};

} // namespace prism

#endif // PRISM_TDG_BUILDER_HH
