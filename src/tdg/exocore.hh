/**
 * @file
 * ExoCore modeling: composition of a general-purpose core with a
 * subset of the four BSAs (paper Section 3), region-level accelerator
 * selection (Oracle and Amdahl-Tree schedulers, Sections 3.3/4), and
 * aggregate performance/energy accounting.
 *
 * Evaluation strategy: the untransformed TDG is timed once per core
 * by streaming fixed-size trace windows through the timing engine
 * (commit times, kept by global position, attribute cycles to
 * regions); every (candidate loop, BSA) pair is timed standalone by
 * transforming and timing one occurrence at a time through a
 * reusable window — neither the core stream nor any rewritten stream
 * is ever materialized whole. A scheduler then picks a
 * non-overlapping set of regions over the loop tree, and
 * program-level metrics compose from the attributed pieces.
 */

#ifndef PRISM_TDG_EXOCORE_HH
#define PRISM_TDG_EXOCORE_HH

#include <array>
#include <memory>
#include <mutex>
#include <vector>

#include "energy/energy_model.hh"
#include "tdg/analyzer.hh"
#include "tdg/tdg.hh"
#include "tdg/transform.hh"
#include "uarch/pipeline_model.hh"

namespace prism
{

/** Unit indices: 0 = GPP; 1..4 = SIMD, DP-CGRA, NS-DF, Trace-P. */
inline constexpr int kNumUnits = 5;

/** Unit index of a BSA (1-based; 0 is the general core). */
int unitIndex(BsaKind b);

/** Unit display name ("GPP", "SIMD", ...). */
const char *unitName(int unit);

/** Bitmask with all four BSAs attached. */
inline constexpr unsigned kFullBsaMask = 0xF;

/** Bit for one BSA within a bsa mask (kAllBsas order: S,D,N,T). */
unsigned bsaBit(BsaKind b);

/** Evaluation of one loop on one execution unit. */
struct RegionUnitEval
{
    bool feasible = false;
    Cycle cycles = 0;             ///< summed over all occurrences
    PicoJoule energy = 0;
    Cycle gatedCycles = 0;        ///< core front-end power-gated
    std::vector<Cycle> occCycles; ///< per-occurrence cycles
};

/** All unit evaluations of one loop. */
struct LoopEval
{
    std::int32_t loopId = -1;
    std::uint64_t dynInsts = 0;
    std::array<RegionUnitEval, kNumUnits> unit;
};

/** One region-to-unit assignment in a schedule. */
struct ExoChoice
{
    std::int32_t loopId = -1;
    int unit = 0; ///< 1..4
};

/** Composite metrics for one ExoCore configuration on one workload. */
struct ExoResult
{
    Cycle cycles = 0;
    PicoJoule energy = 0;
    std::array<Cycle, kNumUnits> unitCycles{};
    std::array<PicoJoule, kNumUnits> unitEnergy{};
    std::vector<ExoChoice> choices;

    /** Fraction of execution cycles spent on each unit. */
    double unitCycleFraction(int unit) const;
};

/** Region-selection policy. */
enum class SchedulerKind
{
    Oracle,     ///< measured energy-delay, <=10% slowdown allowance
    AmdahlTree, ///< profile-estimate Amdahl's-law tree traversal
};

/** A point on the Figure 14 dynamic-switching timeline. */
struct TimelinePoint
{
    Cycle baseStart = 0;  ///< baseline-time position of the region
    Cycle baseCycles = 0; ///< baseline cycles of this occurrence
    Cycle exoCycles = 0;  ///< accelerated cycles of this occurrence
    int unit = 0;
};

/**
 * The complete timing-run output of one BenchmarkModel: everything
 * expensive that construction computes, and exactly what the artifact
 * cache persists per (workload, core). A model restored from tables
 * is indistinguishable from a freshly built one — evaluate() composes
 * purely from these.
 */
struct ModelTables
{
    ExoResult baseline;
    std::vector<LoopEval> loopEvals;
    std::vector<Cycle> occBaseStart;
    std::vector<Cycle> occBaseCycles;
    std::vector<PicoJoule> occBaseEnergy;
};

/**
 * Evaluates one (workload TDG, general core) pair against all BSAs
 * and composes ExoCore configurations. Construction performs all
 * timing runs; evaluate() is cheap and can be called for all 16 BSA
 * subsets.
 */
class BenchmarkModel
{
  public:
    BenchmarkModel(const Tdg &tdg, CoreKind core);

    /**
     * As above, but with explicit machine parameters (accelerator
     * ablations; cfg.core must match coreConfig(core)'s kind).
     */
    BenchmarkModel(const Tdg &tdg, CoreKind core,
                   const PipelineConfig &cfg);

    /**
     * Warm-cache construction: adopt previously computed evaluation
     * tables instead of running the timing engine. Skips baseline
     * and BSA timing entirely — and the legality analyzer, which is
     * built lazily on first use (schedulers consult it; plain
     * evaluate() never does), so adopting tables performs no heap
     * allocation beyond the tables themselves.
     */
    BenchmarkModel(const Tdg &tdg, CoreKind core, ModelTables tables);

    CoreKind core() const { return core_; }
    const PipelineConfig &config() const { return pcfg_; }
    const Tdg &tdg() const { return *tdg_; }

    /**
     * Loop/transform legality analysis, built on first use. The cold
     * constructor needs it immediately (the BSA evaluations consult
     * it); a table-adopting warm build never does unless a scheduler
     * or caller asks, so warm construction stays allocation-free.
     * Thread-safe: concurrent readers race to a single build.
     */
    const TdgAnalyzer &analyzer() const;

    /** Snapshot of the evaluation tables (for the artifact cache). */
    ModelTables tables() const;

    /** Per-loop, per-unit evaluations (indexed by loop id). */
    const LoopEval &loopEval(std::int32_t loop) const
    {
        return loopEvals_.at(loop);
    }

    /** The general-core-only result. */
    const ExoResult &baseline() const { return baseline_; }

    /** Compose an ExoCore with the given BSA subset and scheduler. */
    ExoResult evaluate(unsigned bsa_mask,
                       SchedulerKind sched = SchedulerKind::Oracle)
        const;

    /** Occurrence-level switching timeline for a configuration. */
    std::vector<TimelinePoint>
    timeline(unsigned bsa_mask,
             SchedulerKind sched = SchedulerKind::Oracle) const;

    /** GPP cycles attributed to a loop (all occurrences). */
    Cycle gppLoopCycles(std::int32_t loop) const;
    /** GPP energy attributed to a loop (all occurrences). */
    PicoJoule gppLoopEnergy(std::int32_t loop) const;

  private:
    friend class OracleScheduler;
    friend class AmdahlTreeScheduler;

    void evaluateBaseline();
    void evaluateBsas();

    const Tdg *tdg_;
    CoreKind core_;
    PipelineConfig pcfg_;
    mutable std::once_flag analyzerOnce_;
    mutable std::unique_ptr<TdgAnalyzer> analyzer_;
    EnergyModel energyModel_;

    ExoResult baseline_;
    std::vector<LoopEval> loopEvals_;

    // Per-occurrence baseline attribution (indexed like
    // loopMap().occurrences).
    std::vector<Cycle> occBaseStart_;
    std::vector<Cycle> occBaseCycles_;
    std::vector<PicoJoule> occBaseEnergy_;
};

} // namespace prism

#endif // PRISM_TDG_EXOCORE_HH
