/**
 * @file
 * ExoCore modeling: composition of a general-purpose core with a
 * subset of the four BSAs (paper Section 3), region-level accelerator
 * selection (Oracle and Amdahl-Tree schedulers, Sections 3.3/4), and
 * aggregate performance/energy accounting.
 *
 * Evaluation strategy: the untransformed TDG is timed once per core
 * by streaming fixed-size trace windows through the timing engine
 * (commit times, kept by global position, attribute cycles to
 * regions); every (candidate loop, BSA) pair is timed standalone by
 * transforming and timing one occurrence at a time through a
 * reusable window — neither the core stream nor any rewritten stream
 * is ever materialized whole. A scheduler then picks a
 * non-overlapping set of regions over the loop tree, and
 * program-level metrics compose from the attributed pieces.
 */

#ifndef PRISM_TDG_EXOCORE_HH
#define PRISM_TDG_EXOCORE_HH

#include <array>
#include <memory>
#include <mutex>
#include <vector>

#include "energy/energy_model.hh"
#include "tdg/analyzer.hh"
#include "tdg/tdg.hh"
#include "tdg/transform.hh"
#include "uarch/pipeline_model.hh"

namespace prism
{

/** Unit indices: 0 = GPP; 1..4 = SIMD, DP-CGRA, NS-DF, Trace-P. */
inline constexpr int kNumUnits = 5;

/** Unit index of a BSA (1-based; 0 is the general core). */
int unitIndex(BsaKind b);

/** Unit display name ("GPP", "SIMD", ...). */
const char *unitName(int unit);

/** Bitmask with all four BSAs attached. */
inline constexpr unsigned kFullBsaMask = 0xF;

/** Bit for one BSA within a bsa mask (kAllBsas order: S,D,N,T). */
unsigned bsaBit(BsaKind b);

/** Evaluation of one loop on one execution unit. */
struct RegionUnitEval
{
    bool feasible = false;
    Cycle cycles = 0;             ///< summed over all occurrences
    PicoJoule energy = 0;
    Cycle gatedCycles = 0;        ///< core front-end power-gated
    std::vector<Cycle> occCycles; ///< per-occurrence cycles
};

/** One region-to-unit assignment in a schedule. */
struct ExoChoice
{
    std::int32_t loopId = -1;
    int unit = 0; ///< 1..4
};

/** Composite metrics for one ExoCore configuration on one workload. */
struct ExoResult
{
    Cycle cycles = 0;
    PicoJoule energy = 0;
    std::array<Cycle, kNumUnits> unitCycles{};
    std::array<PicoJoule, kNumUnits> unitEnergy{};
    std::vector<ExoChoice> choices;

    /** Fraction of execution cycles spent on each unit. */
    double unitCycleFraction(int unit) const;
};

/** Region-selection policy. */
enum class SchedulerKind
{
    Oracle,     ///< measured energy-delay, <=10% slowdown allowance
    AmdahlTree, ///< profile-estimate Amdahl's-law tree traversal
};

/** A point on the Figure 14 dynamic-switching timeline. */
struct TimelinePoint
{
    Cycle baseStart = 0;  ///< baseline-time position of the region
    Cycle baseCycles = 0; ///< baseline cycles of this occurrence
    Cycle exoCycles = 0;  ///< accelerated cycles of this occurrence
    int unit = 0;
};

/**
 * Component (a) of an evaluation: everything the baseline (core-only)
 * timing run produces for one (workload, core-timing parameters)
 * pair — the untransformed-stream result, the per-loop GPP
 * attribution, and the per-occurrence attribution arrays. Depends on
 * the core configuration and cache latencies only, never on
 * accelerator parameters: the untransformed stream contains no
 * accelerator-context instruction.
 */
struct BaselineTables
{
    ExoResult baseline;
    /** Per-loop GPP evaluation, indexed by loop id (unit 0). */
    std::vector<RegionUnitEval> gpp;
    // Per-occurrence baseline attribution (indexed like
    // loopMap().occurrences).
    std::vector<Cycle> occBaseStart;
    std::vector<Cycle> occBaseCycles;
    std::vector<PicoJoule> occBaseEnergy;
};

/**
 * Component (b): one BSA's standalone region evaluations for one
 * workload, indexed by loop id. Depends on the core configuration
 * (offload windows still carry core-context config/communication
 * instructions, and the energy table scales with the core) and on
 * *this* BSA's own AccelParams — never on the other BSAs', so a
 * table is reused verbatim across every BSA subset, budget, and
 * sibling-accelerator variation.
 */
struct RegionEvalTable
{
    std::vector<RegionUnitEval> evals;
};

/** Compute component (a) for (tdg, cfg). Deterministic. */
BaselineTables computeBaselineTables(const Tdg &tdg,
                                     const PipelineConfig &cfg);

/** Compute component (b) for (tdg, cfg, bsa). Deterministic. */
RegionEvalTable computeRegionEvalTable(const Tdg &tdg,
                                       const TdgAnalyzer &analyzer,
                                       const PipelineConfig &cfg,
                                       BsaKind bsa);

/**
 * Evaluates one (workload TDG, general core) pair against all BSAs
 * and composes ExoCore configurations. Construction performs all
 * timing runs (or adopts previously computed component tables);
 * evaluate() is the scheduler-only composition — microseconds, cheap
 * enough to call for every (BSA subset, scheduler, budget) point.
 */
class BenchmarkModel
{
  public:
    /** Cold build for a fixed core kind. */
    BenchmarkModel(const Tdg &tdg, CoreKind core);

    /**
     * Cold build with explicit machine parameters: any parametric
     * core point (see CoreParams) and/or accelerator ablations.
     */
    BenchmarkModel(const Tdg &tdg, const PipelineConfig &cfg);

    /** Back-compat spelling of the explicit-parameter cold build
     *  (accelerator ablations; cfg.core must match `core`'s kind). */
    BenchmarkModel(const Tdg &tdg, CoreKind core,
                   const PipelineConfig &cfg);

    /**
     * Warm construction: adopt shared component tables (from the
     * disk/RAM caches) without copying them. Skips every timing run
     * — and the legality analyzer, which is built lazily on first
     * use (schedulers consult it; plain evaluate() never does) — so
     * adoption performs no table allocation at all.
     */
    BenchmarkModel(
        const Tdg &tdg, const PipelineConfig &cfg,
        std::shared_ptr<const BaselineTables> base,
        std::array<std::shared_ptr<const RegionEvalTable>, 4> bsas);

    /**
     * Non-owning adoption for hot paths (zero refcount traffic, zero
     * allocation): the caller guarantees the tables outlive the
     * model. Used by the warm-eval bench and the search engine's
     * scheduler-only recomputation loop.
     */
    struct Borrowed
    {
        const BaselineTables *base = nullptr;
        std::array<const RegionEvalTable *, 4> bsa{};
    };
    BenchmarkModel(const Tdg &tdg, const PipelineConfig &cfg,
                   const Borrowed &tables);

    const PipelineConfig &config() const { return pcfg_; }
    const Tdg &tdg() const { return *tdg_; }

    /**
     * Loop/transform legality analysis, built on first use. The cold
     * constructor needs it immediately (the BSA evaluations consult
     * it); a table-adopting warm build never does unless a scheduler
     * or caller asks, so warm construction stays allocation-free.
     * Thread-safe: concurrent readers race to a single build.
     */
    const TdgAnalyzer &analyzer() const;

    /** Component (a), as adopted or computed. */
    const BaselineTables &baseTables() const { return *base_; }

    /** Component (b) for one BSA, as adopted or computed. */
    const RegionEvalTable &
    regionTable(BsaKind bsa) const
    {
        return *bsa_[static_cast<std::size_t>(unitIndex(bsa)) - 1];
    }

    /** One loop's evaluation on one unit (0 = GPP, 1..4 = BSAs). */
    const RegionUnitEval &
    unitEval(std::int32_t loop, int unit) const
    {
        const std::size_t l = static_cast<std::size_t>(loop);
        if (unit == 0)
            return base_->gpp.at(l);
        return bsa_.at(static_cast<std::size_t>(unit) - 1)
            ->evals.at(l);
    }

    /** The general-core-only result. */
    const ExoResult &baseline() const { return base_->baseline; }

    /** Compose an ExoCore with the given BSA subset and scheduler. */
    ExoResult evaluate(unsigned bsa_mask,
                       SchedulerKind sched = SchedulerKind::Oracle)
        const;

    /** Occurrence-level switching timeline for a configuration. */
    std::vector<TimelinePoint>
    timeline(unsigned bsa_mask,
             SchedulerKind sched = SchedulerKind::Oracle) const;

    /** GPP cycles attributed to a loop (all occurrences). */
    Cycle gppLoopCycles(std::int32_t loop) const;
    /** GPP energy attributed to a loop (all occurrences). */
    PicoJoule gppLoopEnergy(std::int32_t loop) const;

  private:
    const Tdg *tdg_;
    PipelineConfig pcfg_;
    mutable std::once_flag analyzerOnce_;
    mutable std::unique_ptr<TdgAnalyzer> analyzer_;
    EnergyModel energyModel_;

    // Owning references keep shared components alive; the raw
    // pointers are what accessors read (they point either into the
    // owned components or at caller-owned Borrowed tables).
    std::shared_ptr<const BaselineTables> baseOwned_;
    std::array<std::shared_ptr<const RegionEvalTable>, 4> bsaOwned_;
    const BaselineTables *base_ = nullptr;
    std::array<const RegionEvalTable *, 4> bsa_{};
};

} // namespace prism

#endif // PRISM_TDG_EXOCORE_HH
