/**
 * @file
 * Amdahl-Tree speedup/energy estimates (paper Figure 9): quick
 * per-(loop, BSA) predictions from static and profile information,
 * used by the Amdahl-Tree scheduler instead of measured values. The
 * estimates are intentionally optimistic about BSA benefits — the
 * paper reports its scheduler is "slightly over-calibrated towards
 * using the BSAs rather than the general core".
 */

#include "tdg/scheduler.hh"

#include <algorithm>

#include "common/logging.hh"

namespace prism
{

namespace
{

/** Fraction of a loop's static body that is control flow. */
double
controlFraction(const Tdg &tdg, const Loop &loop)
{
    const Function &fn = tdg.program().function(loop.func);
    double branches = 0;
    double total = 0;
    for (std::int32_t b : loop.blocks) {
        for (const Instr &in : fn.blocks[b].instrs) {
            total += 1.0;
            if (opInfo(in.op).isCondBranch)
                branches += 1.0;
        }
    }
    return total > 0 ? branches / total : 0.0;
}

} // namespace

double
amdahlSpeedupEstimate(const BenchmarkModel &bm, const Tdg &tdg,
                      std::int32_t loop_id, BsaKind bsa)
{
    const TdgAnalyzer &an = bm.analyzer();
    const Loop &loop = tdg.loops().loop(loop_id);
    constexpr double kOptimism = 1.15;

    switch (bsa) {
      case BsaKind::Simd: {
        const SimdPlan &plan = an.simd(loop_id);
        if (!plan.usable() || plan.groupInsts <= 0)
            return 0.0;
        const double ratio =
            static_cast<double>(kVectorLen) * plan.avgIterInsts /
            plan.groupInsts;
        return kOptimism * std::clamp(ratio, 0.5, 4.0);
      }
      case BsaKind::DpCgra: {
        const CgraPlan &plan = an.cgra(loop_id);
        if (!plan.usable())
            return 0.0;
        const double body = static_cast<double>(
            plan.computeSlice.size() + plan.accessSlice.size());
        const double residual =
            static_cast<double>(plan.accessSlice.size() +
                                plan.sendCount + plan.recvCount);
        if (residual <= 0)
            return kOptimism * 4.0;
        return kOptimism *
               std::clamp(body / (residual / 1.5), 0.5, 4.0);
      }
      case BsaKind::Nsdf: {
        const NsdfPlan &plan = an.nsdf(loop_id);
        if (!plan.usable())
            return 0.0;
        // Cheap issue width + large window help until control
        // dominates the critical path.
        const double ctl = controlFraction(tdg, loop);
        return kOptimism * std::clamp(1.5 - 2.5 * ctl, 0.7, 1.5);
      }
      case BsaKind::Tracep: {
        const TracepPlan &plan = an.tracep(loop_id);
        if (!plan.usable())
            return 0.0;
        return kOptimism *
               std::clamp(0.4 + 1.4 * plan.loopBackProb *
                                    plan.hotFraction,
                          0.5, 2.0);
      }
    }
    panic("bad bsa");
}

double
amdahlEnergyEstimate(BsaKind bsa)
{
    switch (bsa) {
      case BsaKind::Simd: return 0.55;
      case BsaKind::DpCgra: return 0.50;
      case BsaKind::Nsdf: return 0.38;
      case BsaKind::Tracep: return 0.45;
    }
    panic("bad bsa");
}

} // namespace prism
