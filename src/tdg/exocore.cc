#include "tdg/exocore.hh"

#include <algorithm>

#include "common/logging.hh"
#include "tdg/constructor.hh"
#include "tdg/scheduler.hh"

namespace prism
{

int
unitIndex(BsaKind b)
{
    switch (b) {
      case BsaKind::Simd: return 1;
      case BsaKind::DpCgra: return 2;
      case BsaKind::Nsdf: return 3;
      case BsaKind::Tracep: return 4;
    }
    panic("bad bsa");
}

const char *
unitName(int unit)
{
    switch (unit) {
      case 0: return "GPP";
      case 1: return "SIMD";
      case 2: return "DP-CGRA";
      case 3: return "NS-DF";
      case 4: return "Trace-P";
    }
    panic("bad unit");
}

unsigned
bsaBit(BsaKind b)
{
    for (std::size_t i = 0; i < kAllBsas.size(); ++i) {
        if (kAllBsas[i] == b)
            return 1u << i;
    }
    panic("bad bsa");
}

double
ExoResult::unitCycleFraction(int unit) const
{
    return cycles ? static_cast<double>(unitCycles.at(unit)) /
                        static_cast<double>(cycles)
                  : 0.0;
}

BenchmarkModel::BenchmarkModel(const Tdg &tdg, CoreKind core)
    : BenchmarkModel(tdg, core,
                     PipelineConfig{.core = coreConfig(core)})
{
}

BenchmarkModel::BenchmarkModel(const Tdg &tdg, CoreKind core,
                               const PipelineConfig &cfg)
    : tdg_(&tdg), core_(core), pcfg_(cfg)
{
    analyzer_ = std::make_unique<TdgAnalyzer>(tdg);
    energyModel_ = std::make_unique<EnergyModel>(
        pcfg_.core, static_cast<unsigned>(kAllBsas.size()));
    evaluateBaseline();
    evaluateBsas();
}

Cycle
BenchmarkModel::gppLoopCycles(std::int32_t loop) const
{
    return loopEvals_.at(loop).unit[0].cycles;
}

PicoJoule
BenchmarkModel::gppLoopEnergy(std::int32_t loop) const
{
    return loopEvals_.at(loop).unit[0].energy;
}

void
BenchmarkModel::evaluateBaseline()
{
    const Trace &trace = tdg_->trace();
    const MStream stream = buildCoreStream(trace);
    const PipelineModel model(pcfg_);
    const PipelineResult res = model.run(stream, true);

    baseline_.cycles = res.cycles;
    baseline_.energy = energyModel_->energy(res.events, res.cycles);
    baseline_.unitCycles[0] = res.cycles;
    baseline_.unitEnergy[0] = baseline_.energy;

    // Per-occurrence attribution from commit-time deltas.
    const auto &occs = tdg_->loopMap().occurrences;
    occBaseStart_.resize(occs.size());
    occBaseCycles_.resize(occs.size());
    occBaseEnergy_.resize(occs.size());
    for (std::size_t k = 0; k < occs.size(); ++k) {
        const LoopOccurrence &occ = occs[k];
        if (occ.end <= occ.begin) {
            occBaseStart_[k] = occBaseCycles_[k] = 0;
            occBaseEnergy_[k] = 0;
            continue;
        }
        const Cycle start =
            occ.begin > 0 ? res.commitAt[occ.begin - 1] : 0;
        const Cycle end = res.commitAt[occ.end - 1];
        occBaseStart_[k] = start;
        occBaseCycles_[k] = end > start ? end - start : 0;
        const EventCounts ev =
            tallyEvents(buildCoreStream(trace, occ.begin, occ.end),
                        pcfg_.l1HitLatency, pcfg_.l2HitLatency);
        occBaseEnergy_[k] =
            energyModel_->energy(ev, occBaseCycles_[k]);
    }

    // Fill each loop's GPP evaluation.
    loopEvals_.resize(tdg_->loops().numLoops());
    for (const Loop &loop : tdg_->loops().loops()) {
        LoopEval &le = loopEvals_[loop.id];
        le.loopId = loop.id;
        le.dynInsts = tdg_->dynInstsOf(loop.id);
        RegionUnitEval &gpp = le.unit[0];
        gpp.feasible = true;
        for (std::size_t k = 0; k < occs.size(); ++k) {
            if (occs[k].loopId != loop.id)
                continue;
            gpp.cycles += occBaseCycles_[k];
            gpp.energy += occBaseEnergy_[k];
            gpp.occCycles.push_back(occBaseCycles_[k]);
        }
    }
}

void
BenchmarkModel::evaluateBsas()
{
    const PipelineModel model(pcfg_);
    for (BsaKind bsa : kAllBsas) {
        auto transform = makeTransform(bsa, *tdg_, *analyzer_);
        const int u = unitIndex(bsa);
        for (const Loop &loop : tdg_->loops().loops()) {
            if (!transform->canTarget(loop.id))
                continue;
            const auto occs = tdg_->occurrencesOf(loop.id);
            if (occs.empty())
                continue;
            TransformOutput out =
                transform->transformLoop(loop.id, occs);
            if (out.stream.empty())
                continue;
            const PipelineResult res = model.run(out.stream, true);

            RegionUnitEval &ev = loopEvals_[loop.id].unit[u];
            ev.feasible = true;
            ev.cycles = res.cycles;

            // Fraction of work on the engine approximates the
            // front-end power-gating opportunity (offload BSAs only).
            Cycle gated = 0;
            if (bsa == BsaKind::Nsdf || bsa == BsaKind::Tracep) {
                const double frac =
                    out.stream.empty()
                        ? 0.0
                        : static_cast<double>(
                              res.events.unitInsts[static_cast<
                                  std::size_t>(
                                  bsa == BsaKind::Nsdf
                                      ? ExecUnit::Nsdf
                                      : ExecUnit::Tracep)]) /
                              static_cast<double>(out.stream.size());
                gated = static_cast<Cycle>(
                    static_cast<double>(res.cycles) * frac);
            }
            ev.gatedCycles = gated;
            ev.energy =
                energyModel_->energy(res.events, res.cycles, gated);

            // Per-occurrence cycles from the boundary commit deltas.
            ev.occCycles.reserve(out.occBoundaries.size());
            for (std::size_t k = 0; k < out.occBoundaries.size();
                 ++k) {
                const std::size_t b = out.occBoundaries[k];
                const std::size_t e =
                    k + 1 < out.occBoundaries.size()
                        ? out.occBoundaries[k + 1]
                        : out.stream.size();
                if (e <= b) {
                    ev.occCycles.push_back(0);
                    continue;
                }
                const Cycle start =
                    b > 0 ? res.commitAt[b - 1] : 0;
                const Cycle end = res.commitAt[e - 1];
                ev.occCycles.push_back(end > start ? end - start
                                                   : 0);
            }
        }
    }
}

ExoResult
BenchmarkModel::evaluate(unsigned bsa_mask, SchedulerKind sched) const
{
    return scheduleExoCore(*this, *tdg_, bsa_mask, sched);
}

std::vector<TimelinePoint>
BenchmarkModel::timeline(unsigned bsa_mask, SchedulerKind sched) const
{
    const ExoResult res = evaluate(bsa_mask, sched);
    std::vector<TimelinePoint> points;
    const auto &all_occs = tdg_->loopMap().occurrences;

    for (const ExoChoice &choice : res.choices) {
        const RegionUnitEval &ev =
            loopEvals_.at(choice.loopId).unit[choice.unit];
        std::size_t occ_idx = 0;
        for (std::size_t k = 0; k < all_occs.size(); ++k) {
            if (all_occs[k].loopId != choice.loopId)
                continue;
            TimelinePoint tp;
            tp.baseStart = occBaseStart_[k];
            tp.baseCycles = occBaseCycles_[k];
            tp.exoCycles = occ_idx < ev.occCycles.size()
                               ? ev.occCycles[occ_idx]
                               : occBaseCycles_[k];
            tp.unit = choice.unit;
            points.push_back(tp);
            ++occ_idx;
        }
    }
    std::sort(points.begin(), points.end(),
              [](const TimelinePoint &a, const TimelinePoint &b) {
                  return a.baseStart < b.baseStart;
              });
    return points;
}

} // namespace prism
