#include "tdg/exocore.hh"

#include <algorithm>
#include <span>

#include "common/arena.hh"
#include "common/logging.hh"
#include "tdg/constructor.hh"
#include "tdg/scheduler.hh"

namespace prism
{

namespace
{

/**
 * Per-thread construction scratch. Cold component computation is the
 * unit of work the sweep fans out across pool workers, and it used
 * to allocate its multi-megabyte timing buffers (and thousands of
 * small temporaries) fresh per model — every worker hammering the
 * global allocator at once. One reusable TimingScratch plus a
 * ScratchArena per thread makes steady-state construction touch
 * malloc only for the result tables that actually outlive the build.
 */
struct ModelScratch
{
    TimingScratch ts;
    ScratchArena arena;
};

ModelScratch &
modelScratch()
{
    thread_local ModelScratch s;
    return s;
}

/** Occurrences of `loop` in trace order, arena-backed (valid until
 *  the arena resets at the next component build on this thread). */
std::span<const LoopOccurrence *>
occurrencesOf(const Tdg &tdg, std::int32_t loop, ScratchArena &arena)
{
    const auto &all = tdg.loopMap().occurrences;
    std::size_t n = 0;
    for (const LoopOccurrence &occ : all)
        n += occ.loopId == loop ? 1 : 0;
    auto out = arena.alloc<const LoopOccurrence *>(n);
    std::size_t k = 0;
    for (const LoopOccurrence &occ : all) {
        if (occ.loopId == loop)
            out[k++] = &occ;
    }
    return out;
}

} // namespace

int
unitIndex(BsaKind b)
{
    switch (b) {
      case BsaKind::Simd: return 1;
      case BsaKind::DpCgra: return 2;
      case BsaKind::Nsdf: return 3;
      case BsaKind::Tracep: return 4;
    }
    panic("bad bsa");
}

const char *
unitName(int unit)
{
    switch (unit) {
      case 0: return "GPP";
      case 1: return "SIMD";
      case 2: return "DP-CGRA";
      case 3: return "NS-DF";
      case 4: return "Trace-P";
    }
    panic("bad unit");
}

unsigned
bsaBit(BsaKind b)
{
    for (std::size_t i = 0; i < kAllBsas.size(); ++i) {
        if (kAllBsas[i] == b)
            return 1u << i;
    }
    panic("bad bsa");
}

double
ExoResult::unitCycleFraction(int unit) const
{
    return cycles ? static_cast<double>(unitCycles.at(unit)) /
                        static_cast<double>(cycles)
                  : 0.0;
}

BaselineTables
computeBaselineTables(const Tdg &tdg, const PipelineConfig &cfg)
{
    const Trace &trace = tdg.trace();
    const PipelineModel model(cfg);
    const EnergyModel em(cfg.core,
                         static_cast<unsigned>(kAllBsas.size()));
    BaselineTables out;

    // Stream the untransformed trace through the timing engine in
    // fixed-size windows with absolute dependence indices; the
    // whole-trace core stream is never materialized.
    constexpr std::size_t kWindow = 1u << 16;
    TimingScratch &ts = modelScratch().ts;
    model.beginRun(ts);
    MStream &win = ts.window;
    for (DynId b = 0; b < trace.size(); b += kWindow) {
        const DynId e = std::min<DynId>(b + kWindow, trace.size());
        win.clear();
        appendCoreWindow(trace, b, e, win);
        model.runWindow(ts, win, 0, win.size(), false);
    }

    out.baseline.cycles = ts.cycles();
    out.baseline.energy = em.energy(ts.events, out.baseline.cycles);
    out.baseline.unitCycles[0] = out.baseline.cycles;
    out.baseline.unitEnergy[0] = out.baseline.energy;

    // Per-occurrence attribution from commit-time deltas (the commit
    // array is indexed by global position == trace index here).
    const auto &occs = tdg.loopMap().occurrences;
    out.occBaseStart.resize(occs.size());
    out.occBaseCycles.resize(occs.size());
    out.occBaseEnergy.resize(occs.size());
    for (std::size_t k = 0; k < occs.size(); ++k) {
        const LoopOccurrence &occ = occs[k];
        if (occ.end <= occ.begin) {
            out.occBaseStart[k] = out.occBaseCycles[k] = 0;
            out.occBaseEnergy[k] = 0;
            continue;
        }
        const Cycle start =
            occ.begin > 0 ? ts.commitAt(occ.begin - 1) : 0;
        const Cycle end = ts.commitAt(occ.end - 1);
        out.occBaseStart[k] = start;
        out.occBaseCycles[k] = end > start ? end - start : 0;
        const EventCounts ev =
            tallyEvents(trace, occ.begin, occ.end,
                        cfg.l1HitLatency, cfg.l2HitLatency);
        out.occBaseEnergy[k] = em.energy(ev, out.occBaseCycles[k]);
    }

    // Fill each loop's GPP evaluation.
    out.gpp.resize(tdg.loops().numLoops());
    for (const Loop &loop : tdg.loops().loops()) {
        RegionUnitEval &gpp = out.gpp[loop.id];
        gpp.feasible = true;
        std::size_t count = 0;
        for (std::size_t k = 0; k < occs.size(); ++k)
            count += occs[k].loopId == loop.id ? 1 : 0;
        gpp.occCycles.reserve(count);
        for (std::size_t k = 0; k < occs.size(); ++k) {
            if (occs[k].loopId != loop.id)
                continue;
            gpp.cycles += out.occBaseCycles[k];
            gpp.energy += out.occBaseEnergy[k];
            gpp.occCycles.push_back(out.occBaseCycles[k]);
        }
    }
    return out;
}

RegionEvalTable
computeRegionEvalTable(const Tdg &tdg, const TdgAnalyzer &analyzer,
                       const PipelineConfig &cfg, BsaKind bsa)
{
    const PipelineModel model(cfg);
    const EnergyModel em(cfg.core,
                         static_cast<unsigned>(kAllBsas.size()));
    TimingScratch &ts = modelScratch().ts;
    ScratchArena &arena = modelScratch().arena;
    // One component build = one arena generation (see arena.hh).
    arena.reset();

    RegionEvalTable table;
    table.evals.resize(tdg.loops().numLoops());

    auto transform = makeTransform(bsa, tdg, analyzer);
    for (const Loop &loop : tdg.loops().loops()) {
        if (!transform->canTarget(loop.id))
            continue;
        const auto occs = occurrencesOf(tdg, loop.id, arena);
        if (occs.empty())
            continue;

        // Transform + time occurrence-by-occurrence through the
        // scratch's reusable window: the rewritten stream of a
        // loop is never materialized as a whole.
        transform->beginLoop(loop.id);
        model.beginRun(ts);
        RegionUnitEval &ev = table.evals[loop.id];
        ev.occCycles.clear();
        ev.occCycles.reserve(occs.size());
        std::uint64_t emitted = 0;
        for (const LoopOccurrence *occ : occs) {
            ts.window.clear();
            transform->transformOccurrence(*occ, ts.window);
            if (ts.window.empty()) {
                ev.occCycles.push_back(0);
                continue;
            }
            const std::size_t wb = ts.pos;
            model.runWindow(ts, ts.window, 0, ts.window.size(),
                            true);
            const Cycle start = wb > 0 ? ts.commitAt(wb - 1) : 0;
            const Cycle end = ts.commitAt(ts.pos - 1);
            ev.occCycles.push_back(end > start ? end - start : 0);
            emitted += ts.window.size();
        }
        if (emitted == 0) {
            // Transform produced nothing at all: not feasible.
            ev.occCycles.clear();
            continue;
        }

        ev.feasible = true;
        ev.cycles = ts.cycles();

        // Fraction of work on the engine approximates the
        // front-end power-gating opportunity (offload BSAs only).
        Cycle gated = 0;
        if (bsa == BsaKind::Nsdf || bsa == BsaKind::Tracep) {
            const double frac =
                static_cast<double>(
                    ts.events.unitInsts[static_cast<std::size_t>(
                        bsa == BsaKind::Nsdf
                            ? ExecUnit::Nsdf
                            : ExecUnit::Tracep)]) /
                static_cast<double>(emitted);
            gated = static_cast<Cycle>(
                static_cast<double>(ev.cycles) * frac);
        }
        ev.gatedCycles = gated;
        ev.energy = em.energy(ts.events, ev.cycles, gated);
    }
    return table;
}

BenchmarkModel::BenchmarkModel(const Tdg &tdg, CoreKind core)
    : BenchmarkModel(tdg, PipelineConfig{.core = coreConfig(core)})
{
}

BenchmarkModel::BenchmarkModel(const Tdg &tdg, CoreKind core,
                               const PipelineConfig &cfg)
    : BenchmarkModel(tdg, cfg)
{
    (void)core; // identified by cfg.core already
}

BenchmarkModel::BenchmarkModel(const Tdg &tdg,
                               const PipelineConfig &cfg)
    : tdg_(&tdg), pcfg_(cfg),
      energyModel_(pcfg_.core,
                   static_cast<unsigned>(kAllBsas.size()))
{
    analyzer(); // cold builds consult it throughout
    baseOwned_ = std::make_shared<const BaselineTables>(
        computeBaselineTables(tdg, pcfg_));
    base_ = baseOwned_.get();
    for (std::size_t i = 0; i < kAllBsas.size(); ++i) {
        bsaOwned_[i] = std::make_shared<const RegionEvalTable>(
            computeRegionEvalTable(tdg, analyzer(), pcfg_,
                                   kAllBsas[i]));
        bsa_[i] = bsaOwned_[i].get();
    }
}

BenchmarkModel::BenchmarkModel(
    const Tdg &tdg, const PipelineConfig &cfg,
    std::shared_ptr<const BaselineTables> base,
    std::array<std::shared_ptr<const RegionEvalTable>, 4> bsas)
    : tdg_(&tdg), pcfg_(cfg),
      energyModel_(pcfg_.core,
                   static_cast<unsigned>(kAllBsas.size())),
      baseOwned_(std::move(base)), bsaOwned_(std::move(bsas))
{
    prism_assert(baseOwned_ &&
                     baseOwned_->gpp.size() ==
                         tdg.loops().numLoops(),
                 "baseline tables do not match this TDG");
    base_ = baseOwned_.get();
    for (std::size_t i = 0; i < bsaOwned_.size(); ++i) {
        prism_assert(bsaOwned_[i] &&
                         bsaOwned_[i]->evals.size() ==
                             tdg.loops().numLoops(),
                     "region-eval table does not match this TDG");
        bsa_[i] = bsaOwned_[i].get();
    }
}

BenchmarkModel::BenchmarkModel(const Tdg &tdg,
                               const PipelineConfig &cfg,
                               const Borrowed &tables)
    : tdg_(&tdg), pcfg_(cfg),
      energyModel_(pcfg_.core,
                   static_cast<unsigned>(kAllBsas.size()))
{
    prism_assert(tables.base != nullptr,
                 "borrowed baseline tables are null");
    base_ = tables.base;
    for (std::size_t i = 0; i < tables.bsa.size(); ++i) {
        prism_assert(tables.bsa[i] != nullptr,
                     "borrowed region-eval table is null");
        bsa_[i] = tables.bsa[i];
    }
}

const TdgAnalyzer &
BenchmarkModel::analyzer() const
{
    std::call_once(analyzerOnce_, [this] {
        analyzer_ = std::make_unique<TdgAnalyzer>(*tdg_);
    });
    return *analyzer_;
}

Cycle
BenchmarkModel::gppLoopCycles(std::int32_t loop) const
{
    return base_->gpp.at(loop).cycles;
}

PicoJoule
BenchmarkModel::gppLoopEnergy(std::int32_t loop) const
{
    return base_->gpp.at(loop).energy;
}

ExoResult
BenchmarkModel::evaluate(unsigned bsa_mask, SchedulerKind sched) const
{
    return scheduleExoCore(*this, *tdg_, bsa_mask, sched);
}

std::vector<TimelinePoint>
BenchmarkModel::timeline(unsigned bsa_mask, SchedulerKind sched) const
{
    const ExoResult res = evaluate(bsa_mask, sched);
    std::vector<TimelinePoint> points;
    const auto &all_occs = tdg_->loopMap().occurrences;

    for (const ExoChoice &choice : res.choices) {
        const RegionUnitEval &ev =
            unitEval(choice.loopId, choice.unit);
        std::size_t occ_idx = 0;
        for (std::size_t k = 0; k < all_occs.size(); ++k) {
            if (all_occs[k].loopId != choice.loopId)
                continue;
            TimelinePoint tp;
            tp.baseStart = base_->occBaseStart[k];
            tp.baseCycles = base_->occBaseCycles[k];
            tp.exoCycles = occ_idx < ev.occCycles.size()
                               ? ev.occCycles[occ_idx]
                               : base_->occBaseCycles[k];
            tp.unit = choice.unit;
            points.push_back(tp);
            ++occ_idx;
        }
    }
    std::sort(points.begin(), points.end(),
              [](const TimelinePoint &a, const TimelinePoint &b) {
                  return a.baseStart < b.baseStart;
              });
    return points;
}

} // namespace prism
