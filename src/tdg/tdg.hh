/**
 * @file
 * The Transformable Dependence Graph: the paper's central artifact.
 *
 * A Tdg couples (a) the µDG — the dynamic instruction stream with
 * embedded microarchitectural events, realized as DynInsts convertible
 * to MInst timing streams — with (b) the reconstructed Program IR
 * (CFG, DFG, loop forest) in one-to-one correspondence through static
 * instruction ids. TDG analyses (analyzer.hh) compute acceleration
 * plans over it; TDG transforms (transform.hh) rewrite its µDG to
 * model core+accelerator execution.
 */

#ifndef PRISM_TDG_TDG_HH
#define PRISM_TDG_TDG_HH

#include <memory>
#include <vector>

#include "ir/dfg.hh"
#include "ir/induction.hh"
#include "ir/loops.hh"
#include "ir/mem_profile.hh"
#include "ir/path_profile.hh"
#include "prog/program.hh"
#include "tdg/builder.hh"
#include "trace/dyn_inst.hh"

namespace prism
{

/**
 * The TDG for one traced execution. Construction runs all the IR
 * reconstruction and profiling passes (paper Figure 2's "TDG
 * Constructor"). The referenced Program must outlive the Tdg.
 */
class Tdg
{
  public:
    /** Build the TDG from a program and its recorded trace. */
    Tdg(const Program &prog, Trace trace);

    /**
     * Adopt profiles that were already built while the trace streamed
     * through a TdgBuilder (the fused front-end path): no further
     * trace walk happens here.
     */
    Tdg(const Program &prog, Trace trace, TdgStatics statics,
        TdgProfiles profiles);

    const Program &program() const { return *prog_; }
    const Trace &trace() const { return trace_; }

    const LoopForest &loops() const { return loops_; }
    const TraceLoopMap &loopMap() const { return loopMap_; }
    const std::vector<Dfg> &dfgs() const { return dfgs_; }
    const Dfg &dfg(std::int32_t func) const { return dfgs_.at(func); }

    /** Per-loop profiles, indexed by loop id. */
    const PathProfile &pathProfile(std::int32_t loop) const
    {
        return pathProfiles_.at(loop);
    }
    const LoopMemProfile &memProfile(std::int32_t loop) const
    {
        return memProfiles_.at(loop);
    }
    const LoopDepProfile &depProfile(std::int32_t loop) const
    {
        return depProfiles_.at(loop);
    }

    /** Occurrences (trace intervals) of a loop, in trace order. */
    std::vector<const LoopOccurrence *>
    occurrencesOf(std::int32_t loop) const;

    /** Dynamic instructions attributed to a loop (all occurrences). */
    std::uint64_t dynInstsOf(std::int32_t loop) const;

  private:
    void adopt(TdgStatics statics, TdgProfiles profiles);

    const Program *prog_;
    Trace trace_;
    LoopForest loops_;
    TraceLoopMap loopMap_;
    std::vector<Dfg> dfgs_;
    std::vector<PathProfile> pathProfiles_;
    std::vector<LoopMemProfile> memProfiles_;
    std::vector<LoopDepProfile> depProfiles_;
};

} // namespace prism

#endif // PRISM_TDG_TDG_HH
