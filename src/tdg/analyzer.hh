/**
 * @file
 * TDG analysis: decides which loops each BSA can legally and
 * profitably target, and computes the per-loop transformation "plan"
 * (paper Figure 2/4(c)). Plans combine static IR facts (slices, body
 * order, static sizes) with trace-derived profiles (memory strides,
 * carried dependences, path frequencies).
 */

#ifndef PRISM_TDG_ANALYZER_HH
#define PRISM_TDG_ANALYZER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "energy/area_model.hh"
#include "tdg/tdg.hh"

namespace prism
{

/** Vector length modeled for 256-bit SIMD over 64-bit lanes. */
inline constexpr unsigned kVectorLen = 4;

/** Plan for auto-vectorizing one innermost loop (SIMD BSA). */
struct SimdPlan
{
    bool legal = false;        ///< dependences & trip count permit
    bool profitable = false;   ///< if-conversion blowup within 2x
    std::string reason;        ///< first disqualifier (diagnostics)

    std::vector<std::int32_t> bodyRpo; ///< body blocks, reverse postorder
    double avgIterInsts = 0;   ///< path-weighted dynamic insts/iter
    double groupInsts = 0;     ///< est. insts per vectorized group
    unsigned numBranches = 0;  ///< conditional branches in the body

    bool usable() const { return legal && profitable; }
};

/** Plan for offloading compute to the DP-CGRA. */
struct CgraPlan
{
    bool legal = false;
    std::string reason;

    std::vector<StaticId> computeSlice; ///< offloaded to the fabric
    std::vector<StaticId> accessSlice;  ///< stays on the core
    std::vector<StaticId> sendSrcs;     ///< access defs sent to CGRA
    std::vector<StaticId> recvSrcs;     ///< compute defs received back
    unsigned sendCount = 0;  ///< core->CGRA operand edges per iter
    unsigned recvCount = 0;  ///< CGRA->core result edges per iter
    bool vectorized = false; ///< SIMD-style grouping applies

    bool usable() const { return legal; }
};

/** Plan for non-speculative dataflow offload (whole loop nests). */
struct NsdfPlan
{
    bool legal = false;
    std::string reason;
    std::uint32_t staticInsts = 0;

    bool usable() const { return legal; }
};

/** Plan for trace-speculative execution of a hot loop path. */
struct TracepPlan
{
    bool legal = false;
    std::string reason;

    std::vector<std::int32_t> hotBlocks; ///< the speculated trace
    double hotFraction = 0;
    double loopBackProb = 0;

    /** True if `block` lies on the hot path. */
    bool onHotPath(std::int32_t block) const;

    bool usable() const { return legal; }
};

/**
 * Runs all BSA analyses over a Tdg; plans are indexed by loop id.
 */
class TdgAnalyzer
{
  public:
    explicit TdgAnalyzer(const Tdg &tdg);

    const SimdPlan &simd(std::int32_t loop) const
    {
        return simd_.at(loop);
    }
    const CgraPlan &cgra(std::int32_t loop) const
    {
        return cgra_.at(loop);
    }
    const NsdfPlan &nsdf(std::int32_t loop) const
    {
        return nsdf_.at(loop);
    }
    const TracepPlan &tracep(std::int32_t loop) const
    {
        return tracep_.at(loop);
    }

    /** Whether the given BSA can target the given loop. */
    bool usable(BsaKind bsa, std::int32_t loop) const;

    const Tdg &tdg() const { return *tdg_; }

  private:
    void analyzeSimd(const Loop &loop);
    void analyzeCgra(const Loop &loop);
    void analyzeNsdf(const Loop &loop);
    void analyzeTracep(const Loop &loop);

    /** Mean iterations per occurrence of a loop. */
    double avgTripCount(const Loop &loop) const;

    const Tdg *tdg_;
    std::vector<SimdPlan> simd_;
    std::vector<CgraPlan> cgra_;
    std::vector<NsdfPlan> nsdf_;
    std::vector<TracepPlan> tracep_;
};

} // namespace prism

#endif // PRISM_TDG_ANALYZER_HH
