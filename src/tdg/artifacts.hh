/**
 * @file
 * Artifact-cache entries for the expensive products above the trace:
 * TDG profiles (one streaming pass over the dynamic stream) and the
 * two components of a BenchmarkModel evaluation — baseline core
 * timing (kind "basecore") and per-BSA region evaluations (kind
 * "regioneval"). With all three cached, a warm run skips
 * interpretation, TDG construction, and every model timing run —
 * only the microsecond mask/scheduler composition remains ("record
 * once, explore many", paper Section 2.6, extended to the full
 * pipeline and the parametric design-space search).
 *
 * Keys are honest per component: TDG profiles are identified by
 * (program fingerprint, instruction budget); baseline timing
 * additionally mixes only the core-timing parameters (core fields +
 * cache latencies — never accelerator parameters, which the
 * untransformed stream cannot observe); a region-eval table mixes
 * the core-timing parameters plus *its own* BSA's AccelParams —
 * never a sibling BSA's. Changing one accelerator's parameters thus
 * invalidates exactly that accelerator's tables, and a search over
 * budgets/masks/schedulers recomputes nothing at all. Each key also
 * mixes a model-code version fingerprint, so changing timing/
 * transform code (bump kModelCodeVersion) self-invalidates every
 * affected entry. Keys deliberately exclude the config's display
 * name: a parametric point identical to a fixed CoreKind shares its
 * components.
 *
 * Tiering: the get*()/buildModelCached() helpers consult the in-RAM
 * MemoCache first, then the on-disk cache, then compute — storing
 * back into both tiers — so a thousand-point search touches the
 * timing engine once per unique (workload, core) and the disk once
 * per process.
 */

#ifndef PRISM_TDG_ARTIFACTS_HH
#define PRISM_TDG_ARTIFACTS_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "common/artifact_cache.hh"
#include "tdg/builder.hh"
#include "tdg/exocore.hh"

namespace prism
{

/** TDG-profile namespace; version tracks the payload format AND the
 *  profiling passes that fill it. */
inline constexpr ArtifactKind kTdgProfilesKind{"tdgprof", 2};

/** Baseline-core-timing namespace; version tracks the payload
 *  format. */
inline constexpr ArtifactKind kBaseTimingKind{"basecore", 1};

/** Per-BSA region-evaluation namespace; version tracks the payload
 *  format. */
inline constexpr ArtifactKind kRegionEvalKind{"regioneval", 1};

/**
 * Fingerprint of the timing/energy/transform code that fills model
 * tables. Bump on any change to PipelineModel, EnergyModel, or the
 * BSA transforms; every cached component self-invalidates.
 */
inline constexpr std::uint64_t kModelCodeVersion = 1;

/** Content hash of every machine parameter a model depends on. */
std::uint64_t pipelineConfigHash(const PipelineConfig &cfg);

/**
 * Content hash of the parameters baseline core timing depends on:
 * all CoreConfig fields except the display name, plus the cache
 * latencies. Accelerator parameters are deliberately absent.
 */
std::uint64_t coreTimingHash(const PipelineConfig &cfg);

/**
 * Content hash of the parameters one BSA's region evaluations depend
 * on: the core-timing hash plus that BSA's own AccelParams (SIMD has
 * none beyond the core's lane count). Sibling BSAs' parameters are
 * deliberately absent.
 */
std::uint64_t regionEvalConfigHash(const PipelineConfig &cfg,
                                   BsaKind bsa);

/** Key of one workload's TDG profiles. */
ArtifactKey tdgProfilesArtifactKey(const Program &prog,
                                   std::uint64_t max_insts);

/** Key of one (workload, core-timing parameters) baseline table. */
ArtifactKey
baselineTablesKey(const Program &prog, std::uint64_t max_insts,
                  const PipelineConfig &cfg,
                  std::uint64_t code_version = kModelCodeVersion);

/** Key of one (workload, core, BSA-params) region-eval table. */
ArtifactKey
regionEvalKey(const Program &prog, std::uint64_t max_insts,
              const PipelineConfig &cfg, BsaKind bsa,
              std::uint64_t code_version = kModelCodeVersion);

/** Persist the profiles of one workload's TDG. */
void storeTdgProfiles(const ArtifactCache &cache,
                      const std::string &name, const Program &prog,
                      std::uint64_t max_insts,
                      const TdgProfiles &profiles);

/**
 * Look up cached TDG profiles. Validated against the trace (per-
 * instruction maps must cover it exactly) and `num_loops`; anything
 * inconsistent is a rejected miss.
 */
std::optional<TdgProfiles>
loadTdgProfiles(const ArtifactCache &cache, const std::string &name,
                const Program &prog, std::uint64_t max_insts,
                const Trace &trace, std::uint64_t num_loops);

/** Persist one workload's baseline-timing component. */
void storeBaselineTables(
    const ArtifactCache &cache, const std::string &name,
    const Program &prog, std::uint64_t max_insts,
    const PipelineConfig &cfg, const BaselineTables &tables,
    std::uint64_t code_version = kModelCodeVersion);

/**
 * Look up the cached baseline-timing component for (workload,
 * core-timing parameters). Validated against the TDG (loop count,
 * occurrence count); anything inconsistent is a rejected miss.
 */
std::optional<BaselineTables> loadBaselineTables(
    const ArtifactCache &cache, const std::string &name,
    const Tdg &tdg, std::uint64_t max_insts,
    const PipelineConfig &cfg,
    std::uint64_t code_version = kModelCodeVersion);

/** Persist one (workload, BSA) region-evaluation component. */
void storeRegionEvalTable(
    const ArtifactCache &cache, const std::string &name,
    const Program &prog, std::uint64_t max_insts,
    const PipelineConfig &cfg, BsaKind bsa,
    const RegionEvalTable &table,
    std::uint64_t code_version = kModelCodeVersion);

/**
 * Look up one cached region-evaluation component. Validated against
 * the TDG; anything inconsistent is a rejected miss.
 */
std::optional<RegionEvalTable> loadRegionEvalTable(
    const ArtifactCache &cache, const std::string &name,
    const Tdg &tdg, std::uint64_t max_insts,
    const PipelineConfig &cfg, BsaKind bsa,
    std::uint64_t code_version = kModelCodeVersion);

// ---- Tiered fetch: RAM LRU -> disk -> compute ----

/**
 * The baseline-timing component for (workload, cfg), from the
 * fastest tier that has it; computes and back-fills both tiers on a
 * full miss. `cache` may be null (RAM + compute only).
 */
std::shared_ptr<const BaselineTables>
getBaselineTables(const ArtifactCache *cache,
                  const std::string &name, const Tdg &tdg,
                  std::uint64_t max_insts,
                  const PipelineConfig &cfg);

/**
 * Lazy source of a legality analyzer: invoked only when a component
 * actually has to be computed cold, so warm fetches never pay the
 * analyzer build.
 */
using AnalyzerProvider = std::function<const TdgAnalyzer &()>;

/**
 * One BSA's region-evaluation component for (workload, cfg),
 * tiered as above. `analyzer` is only invoked on a full miss
 * (cold compute).
 */
std::shared_ptr<const RegionEvalTable>
getRegionEvalTable(const ArtifactCache *cache,
                   const std::string &name, const Tdg &tdg,
                   const AnalyzerProvider &analyzer,
                   std::uint64_t max_insts,
                   const PipelineConfig &cfg, BsaKind bsa);

/**
 * Assemble a full BenchmarkModel from the tiered component caches:
 * one getBaselineTables + four getRegionEvalTable fetches sharing
 * one ArtifactCacheHandle. Warm in RAM, this allocates only the
 * model object itself. (unique_ptr because BenchmarkModel is
 * immovable — it carries a once_flag.)
 */
std::unique_ptr<BenchmarkModel>
buildModelCached(const ArtifactCache *cache, const std::string &name,
                 const Tdg &tdg, std::uint64_t max_insts,
                 const PipelineConfig &cfg);

/** Approximate resident size of a component (RAM-tier budgeting). */
std::uint64_t tableBytes(const BaselineTables &t);
std::uint64_t tableBytes(const RegionEvalTable &t);

} // namespace prism

#endif // PRISM_TDG_ARTIFACTS_HH
