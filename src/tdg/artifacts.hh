/**
 * @file
 * Artifact-cache entries for the two expensive products above the
 * trace: TDG profiles (one streaming pass over the dynamic stream)
 * and BenchmarkModel evaluation tables (baseline region attribution
 * plus every (loop, BSA) timing run). With both cached, a warm run
 * skips interpretation, TDG construction, and all model timing —
 * only the cheap mask/scheduler composition remains ("record once,
 * explore many", paper Section 2.6, extended to the full pipeline).
 *
 * Keys: TDG profiles are identified by (program fingerprint,
 * instruction budget); model tables additionally mix the full
 * machine-configuration hash and a model-code version fingerprint,
 * so changing timing/transform code (bump kModelCodeVersion) or any
 * core/accelerator parameter invalidates exactly the affected
 * entries.
 */

#ifndef PRISM_TDG_ARTIFACTS_HH
#define PRISM_TDG_ARTIFACTS_HH

#include <cstdint>
#include <optional>
#include <string>

#include "common/artifact_cache.hh"
#include "tdg/builder.hh"
#include "tdg/exocore.hh"

namespace prism
{

/** TDG-profile namespace; version tracks the payload format AND the
 *  profiling passes that fill it. */
inline constexpr ArtifactKind kTdgProfilesKind{"tdgprof", 1};

/** Model-table namespace; version tracks the payload format. */
inline constexpr ArtifactKind kModelKind{"model", 1};

/**
 * Fingerprint of the timing/energy/transform code that fills model
 * tables. Bump on any change to PipelineModel, EnergyModel, or the
 * BSA transforms; every cached model table self-invalidates.
 */
inline constexpr std::uint64_t kModelCodeVersion = 1;

/** Content hash of every machine parameter a model depends on. */
std::uint64_t pipelineConfigHash(const PipelineConfig &cfg);

/** Key of one workload's TDG profiles. */
ArtifactKey tdgProfilesArtifactKey(const Program &prog,
                                   std::uint64_t max_insts);

/** Key of one (workload, machine configuration) model table. */
ArtifactKey
modelArtifactKey(const Program &prog, std::uint64_t max_insts,
                 const PipelineConfig &cfg,
                 std::uint64_t code_version = kModelCodeVersion);

/** Persist the profiles of one workload's TDG. */
void storeTdgProfiles(const ArtifactCache &cache,
                      const std::string &name, const Program &prog,
                      std::uint64_t max_insts,
                      const TdgProfiles &profiles);

/**
 * Look up cached TDG profiles. Validated against the trace (per-
 * instruction maps must cover it exactly) and `num_loops`; anything
 * inconsistent is a rejected miss.
 */
std::optional<TdgProfiles>
loadTdgProfiles(const ArtifactCache &cache, const std::string &name,
                const Program &prog, std::uint64_t max_insts,
                const Trace &trace, std::uint64_t num_loops);

/** Persist one model's evaluation tables (key from model.config()). */
void
storeModelTables(const ArtifactCache &cache, const std::string &name,
                 std::uint64_t max_insts, const BenchmarkModel &model,
                 std::uint64_t code_version = kModelCodeVersion);

/**
 * Look up cached model tables for (workload, machine configuration).
 * Validated against the TDG (loop count, occurrence count); anything
 * inconsistent is a rejected miss.
 */
std::optional<ModelTables>
loadModelTables(const ArtifactCache &cache, const std::string &name,
                const Tdg &tdg, std::uint64_t max_insts,
                const PipelineConfig &cfg,
                std::uint64_t code_version = kModelCodeVersion);

} // namespace prism

#endif // PRISM_TDG_ARTIFACTS_HH
