/**
 * @file
 * Sharded design-space sweep driver: the paper's "record once,
 * explore many configurations" loop (Section 2.6) as a reusable
 * subsystem. A sweep is the cross product
 *
 *     workloads x cores x BSA subsets
 *
 * evaluated against a reference (core, no-BSA) baseline, exactly the
 * Figure 12 characterization — but over any core list (up to all six
 * CoreKinds, not just the Table 4 four) and sliceable into shards so
 * independent processes (or CI jobs) each take a deterministic
 * fraction of the grid.
 *
 * Determinism contract: the grid order is fixed (core-major,
 * mask-minor, in the order `cores` was given), shard s of n takes
 * points whose grid index i satisfies i % n == s (round-robin, so
 * expensive cores spread across shards), and every metric is computed
 * from per-workload results accumulated in workload order. The
 * rendered table for a given (grid, shard) is therefore byte-
 * identical across thread counts — the serial-vs-parallel check in
 * the benches relies on this.
 *
 * Parallelism: workload loading, per-(workload, core) model
 * construction, and per-point evaluation each fan out on the given
 * pool. Construction tasks route their artifact-cache traffic
 * through a per-task ArtifactCacheHandle and their scratch through
 * the per-thread arenas (common/arena.hh), so workers do not contend
 * on shared counters or the global allocator.
 */

#ifndef PRISM_TDG_SWEEP_HH
#define PRISM_TDG_SWEEP_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.hh"
#include "tdg/exocore.hh"
#include "workloads/suite.hh"

namespace prism
{

/** What to sweep: cores, subset count, baseline, and shard slice. */
struct SweepGrid
{
    /** Cores to cross with BSA subsets (defaults to all six). */
    std::vector<CoreKind> cores;
    /** BSA subset masks [0, numMasks); 16 = every subset. */
    unsigned numMasks = 16;
    /** Baseline for speedup/energy normalization. */
    CoreKind refCore = CoreKind::IO2;
    /** Shard slice: this process takes grid indices i with
     *  i % shardCount == shardIndex. */
    unsigned shardIndex = 0;
    unsigned shardCount = 1;
};

/** One evaluated (core, BSA-subset) grid point. */
struct SweepPoint
{
    std::size_t gridIndex = 0; ///< position in the full grid order
    CoreKind core = CoreKind::IO2;
    unsigned mask = 0;
    std::string name;       ///< e.g. "OOO2-SDN"
    double speedup = 1.0;   ///< geomean vs refCore alone
    double energyEff = 1.0; ///< geomean refCore energy / energy
    double area = 1.0;      ///< vs refCore core area
};

/**
 * A design-space sweep over a set of workloads. Usage:
 *
 *     DesignSpaceSweep sweep(grid, allWorkloads());
 *     sweep.load(pool);              // traces + TDGs
 *     sweep.prepare(pool);           // per-(workload, core) models
 *     auto points = sweep.run(pool); // this shard's points
 *
 * load/prepare are mutate phases (each task writes its own slot);
 * run is a read phase over const models. dropModels() returns to the
 * pre-prepare state so timed legs can rebuild from scratch.
 */
class DesignSpaceSweep
{
  public:
    DesignSpaceSweep(SweepGrid grid,
                     std::span<const WorkloadSpec> workloads);
    ~DesignSpaceSweep();

    const SweepGrid &grid() const { return grid_; }

    /** Grid points of this shard, in grid order, metrics unset. */
    std::vector<SweepPoint> shardPoints() const;

    /** Cores this shard needs models for (its points' cores plus the
     *  reference core), in kAllCoreKinds order. */
    std::vector<CoreKind> shardCores() const;

    /** Load every workload (parallel; trace-cache-aware). */
    void load(ThreadPool &pool);

    /** Total trace instructions across loaded workloads (0 before
     *  load); the item count behind sweep throughput metrics. */
    std::size_t loadedInsts() const;

    /** Build every (workload, shard core) model, one task each. */
    void prepare(ThreadPool &pool);

    /** Drop built models (between timed legs). */
    void dropModels();

    /** Evaluate this shard's points (requires load + prepare). */
    std::vector<SweepPoint> run(ThreadPool &pool) const;

  private:
    struct Workload;

    SweepGrid grid_;
    std::vector<const WorkloadSpec *> specs_;
    std::vector<std::unique_ptr<Workload>> workloads_;
};

/**
 * Render points as the paper-style table (sorted by speedup,
 * descending; stable on ties by grid index). Fixed formatting: used
 * as the byte-identity witness across thread counts and shards.
 */
std::string renderSweepTable(std::vector<SweepPoint> points);

/** Total point count of the full (unsharded) grid. */
std::size_t sweepGridSize(const SweepGrid &grid);

} // namespace prism

#endif // PRISM_TDG_SWEEP_HH
