#include "tdg/transform.hh"

#include "common/logging.hh"
#include "tdg/bsa/bsa.hh"
#include "tdg/constructor.hh"

namespace prism
{

TransformOutput
BsaTransform::transformLoop(
    std::int32_t loop,
    const std::vector<const LoopOccurrence *> &occs)
{
    beginLoop(loop);
    TransformOutput out;
    for (const LoopOccurrence *occ : occs) {
        out.occBoundaries.push_back(out.stream.size());
        transformOccurrence(*occ, out.stream);
    }
    return out;
}

std::unique_ptr<BsaTransform>
makeTransform(BsaKind kind, const Tdg &tdg, const TdgAnalyzer &analyzer)
{
    switch (kind) {
      case BsaKind::Simd:
        return std::make_unique<SimdTransform>(tdg, analyzer);
      case BsaKind::DpCgra:
        return std::make_unique<DpCgraTransform>(tdg, analyzer);
      case BsaKind::Nsdf:
        return std::make_unique<NsdfTransform>(tdg, analyzer);
      case BsaKind::Tracep:
        return std::make_unique<TracepTransform>(tdg, analyzer);
    }
    panic("bad bsa kind");
}

namespace xform
{

void
appendCoreInsts(const Trace &trace, DynId b, DynId e, MStream &out,
                DynToIdx &dyn_to_idx)
{
    for (DynId i = b; i < e; ++i) {
        const DynInst &di = trace[i];
        MInst mi = toCoreInst(di);
        for (int s = 0; s < 3; ++s) {
            const std::int64_t p = di.srcProd[s];
            if (p == kNoProducer)
                continue;
            if (const std::int64_t *idx =
                    dyn_to_idx.find(static_cast<DynId>(p)))
                mi.dep[s] = *idx;
        }
        if (mi.isLoad && di.memProd != kNoProducer) {
            if (const std::int64_t *idx =
                    dyn_to_idx.find(static_cast<DynId>(di.memProd)))
                mi.memDep = *idx;
        }
        dyn_to_idx[i] = static_cast<std::int64_t>(out.size());
        out.push_back(std::move(mi));
    }
}

std::int64_t
CfuBuilder::emitOp(Opcode op, const std::vector<std::int64_t> &deps,
                   std::int64_t control_dep)
{
    const OpInfo &oi = opInfo(op);
    const FuPool pool = fuPoolOf(oi.fu);

    // Compound units serialize their members, so only short-latency
    // operations may join one; a long-latency op on a loop-carried
    // recurrence would otherwise stretch the recurrence by the whole
    // compound's latency.
    const bool mergeable = oi.latency <= 3;

    // Merge into the open CFU if this op depends on it, shares its FU
    // pool, and there is room (both in op count and total latency).
    if (mergeable && curIdx_ >= 0 && curOps_ < maxOps_ &&
        pool == curPool_ && (*out_)[curIdx_].lat + oi.latency <= 6) {
        bool depends = false;
        bool orderable = true;
        for (std::int64_t d : deps) {
            if (d == curIdx_)
                depends = true;
            // Merging must not create forward edges: every external
            // dependence has to precede the open CFU.
            if (d > curIdx_)
                orderable = false;
        }
        if (depends && orderable) {
            MInst &cfu = (*out_)[curIdx_];
            cfu.lat = static_cast<std::uint8_t>(
                std::min<unsigned>(cfu.lat + oi.latency, 255));
            cfu.lanes = static_cast<std::uint8_t>(cfu.lanes + 1);
            // External dependences of the member join the CFU.
            for (std::int64_t d : deps) {
                if (d >= 0 && d != curIdx_)
                    out_->addExtraDep(
                        static_cast<std::size_t>(curIdx_), d, 0);
            }
            ++curOps_;
            return curIdx_;
        }
    }

    MInst mi;
    mi.op = Opcode::CfuOp;
    mi.unit = unit_;
    mi.fu = oi.fu;
    mi.lat = oi.latency;
    mi.lanes = 1;
    int slot = 0;
    for (std::int64_t d : deps) {
        if (d >= 0 && slot < 3)
            mi.dep[slot++] = static_cast<std::int32_t>(d);
    }

    curIdx_ = static_cast<std::int64_t>(out_->size());
    curOps_ = 1;
    curPool_ = pool;
    out_->push_back(mi);
    // Dependences past the fixed slots, and the control edge, attach
    // through the stream's shared extra-dep storage.
    slot = 0;
    for (std::int64_t d : deps) {
        if (d < 0)
            continue;
        if (slot < 3) {
            ++slot;
            continue;
        }
        out_->addExtraDep(static_cast<std::size_t>(curIdx_), d, 0);
    }
    if (control_dep >= 0)
        out_->addExtraDep(static_cast<std::size_t>(curIdx_),
                          control_dep, 0);
    return curIdx_;
}

Instances
collectInstances(const Trace &trace, DynId b, DynId e)
{
    Instances m;
    collectInstances(trace, b, e, m);
    return m;
}

void
collectInstances(const Trace &trace, DynId b, DynId e, Instances &out)
{
    for (auto &kv : out)
        kv.second.clear();
    for (DynId i = b; i < e; ++i)
        out[trace[i].sid].push_back(i);
}

} // namespace xform

} // namespace prism
