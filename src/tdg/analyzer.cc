#include "tdg/analyzer.hh"

#include <algorithm>
#include <set>

#include "common/logging.hh"

namespace prism
{

bool
TracepPlan::onHotPath(std::int32_t block) const
{
    return std::find(hotBlocks.begin(), hotBlocks.end(), block) !=
           hotBlocks.end();
}

TdgAnalyzer::TdgAnalyzer(const Tdg &tdg) : tdg_(&tdg)
{
    const std::size_t n = tdg.loops().numLoops();
    simd_.resize(n);
    cgra_.resize(n);
    nsdf_.resize(n);
    tracep_.resize(n);
    for (const Loop &loop : tdg.loops().loops()) {
        analyzeSimd(loop);
        analyzeCgra(loop);
        analyzeNsdf(loop);
        analyzeTracep(loop);
    }
}

bool
TdgAnalyzer::usable(BsaKind bsa, std::int32_t loop) const
{
    switch (bsa) {
      case BsaKind::Simd: return simd(loop).usable();
      case BsaKind::DpCgra: return cgra(loop).usable();
      case BsaKind::Nsdf: return nsdf(loop).usable();
      case BsaKind::Tracep: return tracep(loop).usable();
    }
    panic("bad bsa");
}

double
TdgAnalyzer::avgTripCount(const Loop &loop) const
{
    std::uint64_t occs = 0;
    std::uint64_t iters = 0;
    for (const LoopOccurrence &occ : tdg_->loopMap().occurrences) {
        if (occ.loopId == loop.id) {
            ++occs;
            iters += occ.numIters();
        }
    }
    return occs ? static_cast<double>(iters) /
                      static_cast<double>(occs)
                : 0.0;
}

namespace
{

/** Body blocks of a loop in reverse postorder of the function CFG. */
std::vector<std::int32_t>
bodyRpoOrder(const Program &prog, const Loop &loop)
{
    const Cfg cfg = Cfg::reconstruct(prog, loop.func);
    std::vector<std::int32_t> body = loop.blocks;
    std::sort(body.begin(), body.end(),
              [&cfg](std::int32_t a, std::int32_t b) {
                  return cfg.rpoIndex(a) < cfg.rpoIndex(b);
              });
    return body;
}

/** Static instruction count of a sequence of blocks. */
double
pathInstCount(const Function &fn, const std::vector<std::int32_t> &blocks)
{
    double n = 0;
    for (std::int32_t b : blocks)
        n += static_cast<double>(fn.blocks[b].instrs.size());
    return n;
}

} // namespace

void
TdgAnalyzer::analyzeSimd(const Loop &loop)
{
    SimdPlan &plan = simd_[loop.id];
    auto reject = [&plan](const char *why) { plan.reason = why; };

    if (!loop.innermost)
        return reject("not innermost");
    if (loop.containsCall)
        return reject("contains call");

    const LoopDepProfile &deps = tdg_->depProfile(loop.id);
    if (!deps.vectorizableDeps())
        return reject("non-induction/reduction recurrence");

    const LoopMemProfile &mem = tdg_->memProfile(loop.id);
    if (mem.loopCarriedStoreToLoad)
        return reject("loop-carried memory dependence");

    const double trip = avgTripCount(loop);
    if (trip < static_cast<double>(kVectorLen))
        return reject("trip count below vector length");

    plan.legal = true;
    plan.bodyRpo = bodyRpoOrder(tdg_->program(), loop);

    // Path-weighted dynamic instructions per original iteration.
    const PathProfile &paths = tdg_->pathProfile(loop.id);
    const Function &fn = tdg_->program().function(loop.func);
    double weighted = 0;
    std::uint64_t counted = 0;
    for (const auto &pi : paths.paths) {
        weighted += static_cast<double>(pi.count) *
                    pathInstCount(fn, pi.blocks);
        counted += pi.count;
    }
    plan.avgIterInsts =
        counted ? weighted / static_cast<double>(counted)
                : static_cast<double>(loop.numStaticInstrs);

    // Estimated cost of one vectorized group (kVectorLen iterations):
    // every body instruction once (if-converted), packing for
    // non-contiguous memory, one mask per conditional branch, and the
    // scalar loop control.
    const LoopMemProfile &memprof = mem;
    double group = 0;
    for (std::int32_t b : plan.bodyRpo) {
        for (const Instr &in : fn.blocks[b].instrs) {
            const OpInfo &oi = opInfo(in.op);
            if (oi.isCondBranch) {
                ++plan.numBranches;
                group += 1.0; // the mask/blend op replacing it
                continue;
            }
            if (in.op == Opcode::Jmp)
                continue;
            if (oi.isLoad || oi.isStore) {
                const MemAccessPattern *p = memprof.find(in.sid);
                const bool contiguous = p && p->contiguous();
                const bool invariant = p && p->invariantAddress();
                if (contiguous || invariant) {
                    group += 1.0;
                } else {
                    group += static_cast<double>(kVectorLen) + 1.0;
                }
                continue;
            }
            group += 1.0;
        }
    }
    group += 2.0; // scalar induction + loop-back branch per group
    plan.groupInsts = group;

    const double converted_per_iter =
        group / static_cast<double>(kVectorLen);
    plan.profitable = converted_per_iter <= 2.0 * plan.avgIterInsts;
    if (!plan.profitable)
        plan.reason = "if-conversion blowup exceeds 2x";
}

void
TdgAnalyzer::analyzeCgra(const Loop &loop)
{
    CgraPlan &plan = cgra_[loop.id];
    auto reject = [&plan](const char *why) { plan.reason = why; };

    if (!loop.innermost)
        return reject("not innermost");
    if (loop.containsCall)
        return reject("contains call");

    const LoopDepProfile &deps = tdg_->depProfile(loop.id);
    if (!deps.vectorizableDeps())
        return reject("non-induction/reduction recurrence");
    const LoopMemProfile &mem = tdg_->memProfile(loop.id);
    if (mem.loopCarriedStoreToLoad)
        return reject("loop-carried memory dependence");
    if (avgTripCount(loop) < static_cast<double>(kVectorLen))
        return reject("trip count below pipeline depth");

    const Program &prog = tdg_->program();
    const Function &fn = prog.function(loop.func);
    const Dfg &dfg = tdg_->dfg(loop.func);

    // Access slice: memory operations, control, and inductions —
    // plus everything transitively feeding their *address/condition*
    // operands. A store's value operand is deliberately not
    // followed: producing stored values is exactly the computation
    // DySER offloads.
    std::set<StaticId> access_set;
    std::vector<StaticId> work;
    auto push_defs = [&](RegId r) {
        if (r == kNoReg)
            return;
        for (StaticId def : dfg.defsOf(r)) {
            const InstrRef &dref = prog.locate(def);
            if (dref.func == loop.func &&
                loop.containsBlock(dref.block)) {
                work.push_back(def);
            }
        }
    };
    for (std::int32_t b : loop.blocks) {
        for (const Instr &in : fn.blocks[b].instrs) {
            const OpInfo &oi = opInfo(in.op);
            if (oi.isLoad || oi.isStore) {
                access_set.insert(in.sid);
                push_defs(in.src[0]); // address base only
            } else if (oi.isBranch) {
                access_set.insert(in.sid);
                push_defs(in.src[0]); // condition (if any)
            }
        }
    }
    for (StaticId s : deps.inductions)
        work.push_back(s);
    while (!work.empty()) {
        const StaticId sid = work.back();
        work.pop_back();
        if (!access_set.insert(sid).second)
            continue;
        const Instr &in = prog.instr(sid);
        for (RegId r : in.src)
            push_defs(r);
    }

    std::vector<StaticId> compute;
    for (std::int32_t b : loop.blocks) {
        for (const Instr &in : fn.blocks[b].instrs) {
            if (!access_set.count(in.sid))
                compute.push_back(in.sid);
        }
    }

    if (compute.size() < 2)
        return reject("no separable computation");

    // Communication edges: access-slice values read by the compute
    // slice (sends) and compute values read by the access slice
    // (receives, e.g. store values).
    std::set<StaticId> compute_set(compute.begin(), compute.end());
    std::set<StaticId> send_srcs;
    std::set<StaticId> recv_srcs;
    for (std::int32_t b : loop.blocks) {
        for (const Instr &in : fn.blocks[b].instrs) {
            const bool in_compute = compute_set.count(in.sid) != 0;
            for (RegId r : in.src) {
                if (r == kNoReg)
                    continue;
                for (StaticId def : dfg.defsOf(r)) {
                    const InstrRef &dref = prog.locate(def);
                    if (dref.func != loop.func ||
                        !loop.containsBlock(dref.block)) {
                        continue;
                    }
                    const bool def_compute =
                        compute_set.count(def) != 0;
                    if (in_compute && !def_compute)
                        send_srcs.insert(def);
                    else if (!in_compute && def_compute)
                        recv_srcs.insert(def);
                }
            }
        }
    }
    plan.sendCount = static_cast<unsigned>(send_srcs.size());
    plan.recvCount = static_cast<unsigned>(recv_srcs.size());
    plan.sendSrcs.assign(send_srcs.begin(), send_srcs.end());
    plan.recvSrcs.assign(recv_srcs.begin(), recv_srcs.end());

    if (plan.sendCount + plan.recvCount > compute.size())
        return reject("more communication than computation");

    plan.computeSlice = std::move(compute);
    plan.accessSlice.assign(access_set.begin(), access_set.end());
    plan.vectorized = true;
    plan.legal = true;
}

void
TdgAnalyzer::analyzeNsdf(const Loop &loop)
{
    NsdfPlan &plan = nsdf_[loop.id];
    auto reject = [&plan](const char *why) { plan.reason = why; };

    if (loop.containsCall)
        return reject("not fully inlinable (calls)");

    // Include nested loops' sizes: blocks already cover the nest.
    plan.staticInsts = loop.numStaticInstrs;
    if (plan.staticInsts > 256)
        return reject("exceeds 256 static compound instructions");
    plan.legal = true;
}

void
TdgAnalyzer::analyzeTracep(const Loop &loop)
{
    TracepPlan &plan = tracep_[loop.id];
    auto reject = [&plan](const char *why) { plan.reason = why; };

    if (!loop.innermost)
        return reject("not an inner loop");
    if (loop.containsCall)
        return reject("contains call");

    const PathProfile &paths = tdg_->pathProfile(loop.id);
    plan.loopBackProb = paths.loopBackProbability();
    plan.hotFraction = paths.hotPathFraction();
    if (plan.loopBackProb <= 0.80)
        return reject("loop-back probability <= 80%");
    const PathProfile::PathInfo *hot = paths.hottest();
    // Below two-thirds conformance, replay costs swamp the benefit.
    if (hot == nullptr || plan.hotFraction < 2.0 / 3.0)
        return reject("no dominant hot path");

    const Function &fn = tdg_->program().function(loop.func);
    double hot_insts = 0;
    for (std::int32_t b : hot->blocks)
        hot_insts += static_cast<double>(fn.blocks[b].instrs.size());
    if (hot_insts > 128)
        return reject("hot trace exceeds configuration size");

    plan.hotBlocks = hot->blocks;
    plan.legal = true;
}

} // namespace prism
