#include "tdg/search.hh"

#include <algorithm>
#include <cstdlib>
#include <ostream>
#include <sstream>

#include "analysis/behavior.hh"
#include "common/artifact_cache.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "energy/area_model.hh"
#include "tdg/artifacts.hh"

namespace prism
{

namespace
{

/** splitmix64: tiny, deterministic, platform-independent. */
std::uint64_t
nextRand(std::uint64_t &state)
{
    state += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

/** Uniform pick from [lo, hi] (inclusive). */
unsigned
pick(std::uint64_t &state, unsigned lo, unsigned hi)
{
    return lo + static_cast<unsigned>(nextRand(state) %
                                      (hi - lo + 1));
}

std::vector<double>
effectiveBudgets(const SearchSpace &space)
{
    if (space.areaBudgets.empty())
        return {0.0};
    return space.areaBudgets;
}

std::string
pointName(const SearchSpace &space, const SearchPoint &p)
{
    std::string name = coreParamsName(space.cores[p.coreIdx]);
    if (p.mask != 0) {
        name += "-";
        for (std::size_t i = 0; i < kAllBsas.size(); ++i) {
            if (p.mask & (1u << i))
                name += bsaLetter(kAllBsas[i]);
        }
    }
    if (p.areaBudget > 0)
        name += "@" + fmt(p.areaBudget, 1);
    return name;
}

} // namespace

std::vector<CoreParams>
defaultCoreGrid()
{
    std::vector<CoreParams> cores;
    cores.reserve(16);
    // The six fixed kinds' parameter points anchor the grid (their
    // components are shared with everything else keyed on the same
    // parameters — the name is not part of the key).
    for (CoreKind kind : kAllCoreKinds)
        cores.push_back(coreParams(kind));

    // Ten parametric variants spanning the remaining axes.
    CoreParams io4 = coreParams(CoreKind::IO2);
    io4.width = 4;
    io4.numAlu = 3;
    cores.push_back(io4); // wide in-order

    CoreParams narrow_win = coreParams(CoreKind::OOO2);
    narrow_win.instWindow = 16;
    cores.push_back(narrow_win); // issue-window-starved OOO2

    CoreParams small_rob = coreParams(CoreKind::OOO4);
    small_rob.robSize = 64;
    cores.push_back(small_rob); // ROB-starved OOO4

    CoreParams wide_simd = coreParams(CoreKind::OOO4);
    wide_simd.simdLanes = 8;
    cores.push_back(wide_simd); // 8-lane vector OOO4

    CoreParams ported = coreParams(CoreKind::OOO2);
    ported.dcachePorts = 2;
    cores.push_back(ported); // dual-ported OOO2

    CoreParams fp_heavy = coreParams(CoreKind::OOO4);
    fp_heavy.numFp = 4;
    cores.push_back(fp_heavy); // FP-heavy OOO4

    CoreParams deep_fe = coreParams(CoreKind::OOO2);
    deep_fe.frontendDepth = 10;
    cores.push_back(deep_fe); // deep-frontend OOO2

    CoreParams fast_l2 = coreParams(CoreKind::OOO2);
    fast_l2.l2HitLatency = 14;
    cores.push_back(fast_l2); // near-L2 OOO2

    CoreParams slow_l1 = coreParams(CoreKind::OOO4);
    slow_l1.l1HitLatency = 6;
    cores.push_back(slow_l1); // slow-L1 OOO4

    CoreParams big_win = coreParams(CoreKind::OOO6);
    big_win.instWindow = 96;
    big_win.robSize = 256;
    cores.push_back(big_win); // window-rich OOO6

    return cores;
}

std::vector<CoreParams>
sampleCoreParams(std::size_t n, std::uint64_t seed)
{
    std::vector<CoreParams> cores;
    cores.reserve(n);
    std::uint64_t state = seed;
    for (std::size_t i = 0; i < n; ++i) {
        CoreParams p;
        p.inorder = pick(state, 0, 3) == 0; // ~25% in-order
        p.width = pick(state, 1, 8);
        if (p.inorder) {
            p.robSize = 0;
            p.instWindow = 0;
        } else {
            // Scale backend capacity to width so samples are
            // plausible machines, not pathological mismatches.
            p.robSize = p.width * pick(state, 16, 48);
            p.instWindow = p.width * pick(state, 8, 16);
        }
        p.dcachePorts = pick(state, 1, 3);
        p.numAlu = std::max(1u, p.width / 2 + pick(state, 0, 2));
        p.numMulDiv = pick(state, 1, 2);
        p.numFp = pick(state, 1, 4);
        p.frontendDepth = pick(state, 4, 12);
        p.simdLanes = 1u << pick(state, 1, 3); // 2/4/8
        p.l1HitLatency = pick(state, 2, 5);
        p.l2HitLatency = pick(state, 14, 38);
        cores.push_back(p);
    }
    return cores;
}

std::size_t
searchGridSize(const SearchSpace &space)
{
    const std::size_t cores = space.cores.empty()
                                  ? defaultCoreGrid().size()
                                  : space.cores.size();
    return cores * effectiveBudgets(space).size() * space.numMasks;
}

/** One workload slot: the loaded trace/TDG plus per-core models.
 *  Mutate-phase discipline: distinct tasks write distinct slots. */
struct DesignSearch::Workload
{
    const WorkloadSpec *spec = nullptr;
    std::unique_ptr<LoadedWorkload> lw;
    std::vector<std::unique_ptr<BenchmarkModel>> models;
    std::unique_ptr<BenchmarkModel> refModel;

    void
    load(std::size_t num_cores)
    {
        if (!lw)
            lw = LoadedWorkload::load(*spec);
        if (models.size() != num_cores)
            models.resize(num_cores);
    }

    void
    buildModel(const CoreParams &core, std::size_t slot)
    {
        prism_assert(lw != nullptr, "workload '%s' not loaded",
                     spec->name);
        auto &m = slot == models.size() ? refModel : models[slot];
        if (m)
            return;
        m = buildModelCached(ArtifactCache::global(), lw->name(),
                             lw->tdg(), lw->maxInsts(),
                             pipelineConfigFrom(core));
    }
};

DesignSearch::DesignSearch(SearchSpace space,
                           std::span<const WorkloadSpec> workloads)
    : space_(std::move(space))
{
    if (space_.cores.empty())
        space_.cores = defaultCoreGrid();
    if (space_.areaBudgets.empty())
        space_.areaBudgets = {0.0};
    prism_assert(space_.numMasks >= 1 && space_.numMasks <= 16,
                 "numMasks must be in [1, 16], got %u",
                 space_.numMasks);
    prism_assert(space_.shardCount >= 1 &&
                     space_.shardIndex < space_.shardCount,
                 "bad shard %u/%u", space_.shardIndex,
                 space_.shardCount);
    for (const WorkloadSpec &spec : workloads) {
        specs_.push_back(&spec);
        workloads_.push_back(std::make_unique<Workload>());
        workloads_.back()->spec = &spec;
    }
    prism_assert(!specs_.empty(),
                 "search needs at least one workload");
}

DesignSearch::~DesignSearch() = default;

std::vector<SearchPoint>
DesignSearch::shardPoints() const
{
    const std::vector<double> budgets = effectiveBudgets(space_);
    std::vector<SearchPoint> points;
    std::size_t gi = 0;
    for (std::size_t ci = 0; ci < space_.cores.size(); ++ci) {
        for (double budget : budgets) {
            for (unsigned mask = 0; mask < space_.numMasks;
                 ++mask, ++gi) {
                if (gi % space_.shardCount != space_.shardIndex)
                    continue;
                SearchPoint p;
                p.gridIndex = gi;
                p.coreIdx = ci;
                p.mask = mask;
                p.areaBudget = budget;
                p.name = pointName(space_, p);
                points.push_back(std::move(p));
            }
        }
    }
    return points;
}

std::vector<std::size_t>
DesignSearch::shardCoreIndices() const
{
    std::vector<bool> need(space_.cores.size(), false);
    for (const SearchPoint &p : shardPoints())
        need[p.coreIdx] = true;
    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < need.size(); ++i) {
        if (need[i])
            indices.push_back(i);
    }
    return indices;
}

void
DesignSearch::load(ThreadPool &pool)
{
    const std::size_t num_cores = space_.cores.size();
    pool.parallelFor(workloads_.size(), [&](std::size_t i) {
        workloads_[i]->load(num_cores);
    });
}

std::size_t
DesignSearch::loadedInsts() const
{
    std::size_t total = 0;
    for (const auto &w : workloads_) {
        if (w->lw)
            total += w->lw->tdg().trace().size();
    }
    return total;
}

void
DesignSearch::prepare(ThreadPool &pool)
{
    load(pool);
    // One task per (workload, needed core): the reference model
    // rides along as a sentinel slot past the core list.
    std::vector<std::size_t> cores = shardCoreIndices();
    const std::size_t ref_slot = space_.cores.size();
    cores.push_back(ref_slot);
    pool.parallelFor(
        workloads_.size() * cores.size(), [&](std::size_t t) {
            Workload &w = *workloads_[t / cores.size()];
            const std::size_t slot = cores[t % cores.size()];
            const CoreParams &core = slot == ref_slot
                                         ? space_.refCore
                                         : space_.cores[slot];
            w.buildModel(core, slot);
        });
}

void
DesignSearch::dropModels()
{
    for (auto &w : workloads_) {
        for (auto &m : w->models)
            m.reset();
        w->refModel.reset();
    }
}

const BenchmarkModel &
DesignSearch::model(std::size_t wl, std::size_t core_idx) const
{
    const Workload &w = *workloads_[wl];
    const auto &slot = core_idx == space_.cores.size()
                           ? w.refModel
                           : w.models[core_idx];
    prism_assert(slot != nullptr,
                 "model for '%s' core %zu not prepared",
                 w.spec->name, core_idx);
    return *slot;
}

std::vector<SearchPoint>
DesignSearch::run(ThreadPool &pool) const
{
    std::vector<SearchPoint> points = shardPoints();
    const std::size_t ref_slot = space_.cores.size();
    pool.parallelFor(points.size(), [&](std::size_t i) {
        SearchPoint &p = points[i];
        std::vector<double> perf;
        std::vector<double> eff;
        perf.reserve(workloads_.size());
        eff.reserve(workloads_.size());
        for (std::size_t wl = 0; wl < workloads_.size(); ++wl) {
            const ExoResult res =
                model(wl, p.coreIdx).evaluate(p.mask, space_.sched);
            const ExoResult &base = model(wl, ref_slot).baseline();
            perf.push_back(static_cast<double>(base.cycles) /
                           static_cast<double>(res.cycles));
            eff.push_back(base.energy / res.energy);
        }
        p.speedup = geomean(perf);
        p.energyEff = geomean(eff);
        p.area = exoCoreArea(space_.cores[p.coreIdx], p.mask);
        p.withinBudget =
            p.areaBudget <= 0 || p.area <= p.areaBudget;
    });
    return points;
}

void
DesignSearch::exportDataset(std::ostream &os) const
{
    const std::vector<SearchPoint> points = shardPoints();
    const std::size_t ref_slot = space_.cores.size();
    // v2: adds the per-workload static behavior features (sb_*),
    // derived from the guest IR alone (analysis/behavior.hh) so a
    // learned profitability model can separate what was predictable
    // before tracing from what only the trace revealed.
    os << "# prism-dataset v2\n"
       << "workload,suite,class,insts,loops,"
          "sb_innermost,sb_nsdf_yes,sb_simd_no,sb_cgra_no,"
          "sb_tracep_no,sb_ilp,sb_ctrl_height,sb_paths_log2,"
          "sb_affine_frac,sb_irregular_frac,sb_compute_frac,"
          "inorder,width,rob,iq,ports,alu,muldiv,fp,fe_depth,"
          "simd_lanes,l1_lat,l2_lat,mask,area_budget,sched,"
          "cycles,energy_pj,area_mm2,speedup_vs_ref,"
          "energy_eff_vs_ref\n";
    for (std::size_t wl = 0; wl < workloads_.size(); ++wl) {
        const Workload &w = *workloads_[wl];
        prism_assert(w.lw != nullptr, "workload '%s' not loaded",
                     w.spec->name);
        const ExoResult &base = model(wl, ref_slot).baseline();
        const TdgStatics statics(w.lw->program());
        const BehaviorSummary sb =
            summarizeBehavior(BehaviorAnalysis(statics));
        std::ostringstream sbcols;
        sbcols << sb.innermostLoops << ',' << sb.nsdfYes << ','
               << sb.simdNo << ',' << sb.cgraNo << ','
               << sb.tracepNo << ',' << fmt(sb.avgIlpBound, 4)
               << ',' << fmt(sb.avgControlHeight, 4) << ','
               << fmt(sb.avgPathsLog2, 4) << ','
               << fmt(sb.affineFraction, 4) << ','
               << fmt(sb.irregularFraction, 4) << ','
               << fmt(sb.avgComputeFraction, 4);
        for (const SearchPoint &p : points) {
            const CoreParams &c = space_.cores[p.coreIdx];
            const ExoResult res =
                model(wl, p.coreIdx).evaluate(p.mask, space_.sched);
            os << w.spec->name << ',' << w.spec->suite << ','
               << suiteClassName(w.spec->cls) << ','
               << w.lw->tdg().trace().size() << ','
               << w.lw->tdg().loops().numLoops() << ','
               << sbcols.str() << ','
               << (c.inorder ? 1 : 0) << ',' << c.width << ','
               << c.robSize << ',' << c.instWindow << ','
               << c.dcachePorts << ',' << c.numAlu << ','
               << c.numMulDiv << ',' << c.numFp << ','
               << c.frontendDepth << ',' << c.simdLanes << ','
               << c.l1HitLatency << ',' << c.l2HitLatency << ','
               << p.mask << ',' << fmt(p.areaBudget, 1) << ','
               << (space_.sched == SchedulerKind::Oracle
                       ? "oracle"
                       : "amdahl")
               << ',' << res.cycles << ',' << fmt(res.energy, 1)
               << ','
               << fmt(exoCoreArea(c, p.mask), 3) << ','
               << fmt(static_cast<double>(base.cycles) /
                          static_cast<double>(res.cycles),
                      4)
               << ',' << fmt(base.energy / res.energy, 4) << '\n';
        }
    }
}

std::vector<SearchPoint>
paretoFrontier(const std::vector<SearchPoint> &points)
{
    // Deterministic regardless of input order: sort a copy into the
    // output order up front, then test dominance within each budget
    // group.
    std::vector<SearchPoint> sorted = points;
    std::sort(sorted.begin(), sorted.end(),
              [](const SearchPoint &a, const SearchPoint &b) {
                  if (a.areaBudget != b.areaBudget)
                      return a.areaBudget < b.areaBudget;
                  if (a.speedup != b.speedup)
                      return a.speedup > b.speedup;
                  return a.gridIndex < b.gridIndex;
              });

    auto dominates = [](const SearchPoint &a, const SearchPoint &b) {
        const bool geq = a.speedup >= b.speedup &&
                         a.energyEff >= b.energyEff &&
                         a.area <= b.area;
        const bool strict = a.speedup > b.speedup ||
                            a.energyEff > b.energyEff ||
                            a.area < b.area;
        return geq && strict;
    };

    std::vector<SearchPoint> frontier;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        const SearchPoint &p = sorted[i];
        if (!p.withinBudget)
            continue;
        bool dominated = false;
        for (std::size_t j = 0; j < sorted.size() && !dominated;
             ++j) {
            if (j == i ||
                sorted[j].areaBudget != p.areaBudget ||
                !sorted[j].withinBudget)
                continue;
            // Tie-break exact duplicates by grid index so exactly
            // one representative survives.
            if (dominates(sorted[j], p) ||
                (sorted[j].speedup == p.speedup &&
                 sorted[j].energyEff == p.energyEff &&
                 sorted[j].area == p.area &&
                 sorted[j].gridIndex < p.gridIndex))
                dominated = true;
        }
        if (!dominated)
            frontier.push_back(p);
    }
    return frontier;
}

std::string
renderSearchTable(std::vector<SearchPoint> points, std::size_t limit)
{
    std::sort(points.begin(), points.end(),
              [](const SearchPoint &a, const SearchPoint &b) {
                  if (a.speedup != b.speedup)
                      return a.speedup > b.speedup;
                  return a.gridIndex < b.gridIndex;
              });
    if (limit != 0 && points.size() > limit)
        points.resize(limit);
    Table t({"config", "speedup", "energy eff.", "area (mm^2)",
             "fits"});
    for (const SearchPoint &p : points) {
        t.addRow({p.name, fmt(p.speedup, 2), fmt(p.energyEff, 2),
                  fmt(p.area, 2), p.withinBudget ? "yes" : "no"});
    }
    return t.render();
}

std::string
renderParetoFrontier(const std::vector<SearchPoint> &points)
{
    return renderSearchTable(paretoFrontier(points));
}

// ---- Flag-spec parsers (shared by drivers and their tests) --------

namespace
{

/** Consume a run of digits as unsigned; false on empty/overflow. */
bool
parseDigits(const std::string &s, std::size_t &pos, unsigned &out)
{
    const std::size_t start = pos;
    std::uint64_t v = 0;
    while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
        v = v * 10 + static_cast<std::uint64_t>(s[pos] - '0');
        if (v > 0xFFFFFFFFull)
            return false;
        ++pos;
    }
    if (pos == start)
        return false;
    out = static_cast<unsigned>(v);
    return true;
}

} // namespace

bool
parseShardSpec(const std::string &spec, unsigned &index,
               unsigned &count, std::string &error)
{
    // sscanf("%u/%u") would accept "1/4x", "+1/4", and " 1/4"; a
    // shard spec is exactly <digits>/<digits>.
    std::size_t pos = 0;
    unsigned idx = 0, cnt = 0;
    if (!parseDigits(spec, pos, idx) || pos >= spec.size() ||
        spec[pos] != '/' || (++pos, !parseDigits(spec, pos, cnt)) ||
        pos != spec.size()) {
        error = "expected I/N (two unsigned integers), got '" +
                spec + "'";
        return false;
    }
    if (cnt == 0) {
        error = "shard count must be positive, got '" + spec + "'";
        return false;
    }
    if (idx >= cnt) {
        error = "shard index must be < count, got '" + spec + "'";
        return false;
    }
    index = idx;
    count = cnt;
    return true;
}

bool
parseAreaBudgets(const std::string &csv,
                 std::vector<double> &budgets, std::string &error)
{
    std::vector<double> parsed;
    std::size_t start = 0;
    while (start <= csv.size()) {
        const std::size_t comma = csv.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? csv.size() : comma;
        const std::string entry = csv.substr(start, end - start);
        if (entry.empty()) {
            error = "empty budget entry in '" + csv + "'";
            return false;
        }
        char *stop = nullptr;
        const double v = std::strtod(entry.c_str(), &stop);
        if (stop != entry.c_str() + entry.size()) {
            error = "'" + entry + "' is not a number";
            return false;
        }
        if (!(v > 0)) {
            error = "budgets must be positive mm^2 (omit the flag "
                    "for an unbounded search), got '" +
                    entry + "'";
            return false;
        }
        parsed.push_back(v);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    if (parsed.empty()) {
        error = "no budget values given";
        return false;
    }
    budgets = std::move(parsed);
    return true;
}

} // namespace prism
