/**
 * @file
 * µDG stream construction: converts recorded DynInsts into MInst
 * timing streams with dependences remapped to stream indices. This is
 * the untransformed TDG(GPP, none) — the starting point every BSA
 * transform rewrites.
 */

#ifndef PRISM_TDG_CONSTRUCTOR_HH
#define PRISM_TDG_CONSTRUCTOR_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "trace/dyn_inst.hh"
#include "uarch/udg.hh"

namespace prism
{

/** Convert one DynInst to its core-context MInst (deps unset). */
MInst toCoreInst(const DynInst &di);

/**
 * Build the core stream for trace range [begin, end). Dependences on
 * producers outside the range become absent (kNoProducer semantics).
 */
MStream buildCoreStream(const Trace &trace, DynId begin, DynId end);

/** Whole-trace convenience. */
MStream buildCoreStream(const Trace &trace);

/**
 * Append trace range [b, e) as core-context MInsts whose dependence
 * indices are *absolute* trace positions (any producer p < i becomes
 * dep p). Consecutive windows built this way and fed to
 * PipelineModel::runWindow(..., local_deps=false) time exactly like
 * the whole-trace stream from buildCoreStream(), without ever
 * materializing it.
 */
void appendCoreWindow(const Trace &trace, DynId b, DynId e,
                      MStream &out);

/**
 * Append a batch of DynInsts (as handed out by FrontEnd::run, where
 * `base` is the dynamic index of d[0]) as core-context MInsts with
 * *absolute* dependence indices, exactly like appendCoreWindow but
 * without requiring a materialized Trace. Feeding every batch of a
 * run produces the same stream appendCoreWindow(trace, 0, n) would.
 */
void appendCoreBatch(const DynInst *d, std::size_t n, DynId base,
                     MStream &out);

/**
 * Build one stream by concatenating several trace ranges, separated
 * by region boundaries (startRegion on each range's first inst).
 * @param boundaries out: stream index of each range's first MInst.
 */
MStream buildCoreStreamRanges(
    const Trace &trace,
    const std::vector<std::pair<DynId, DynId>> &ranges,
    std::vector<std::size_t> &boundaries);

/**
 * Tally the energy events of a stream without running the timing
 * model (identical accounting to PipelineModel::run; used for
 * baseline region energy attribution).
 */
EventCounts tallyEvents(const MStream &stream, unsigned l1_hit = 4,
                        unsigned l2_hit = 26);

/**
 * Tally the events of trace range [b, e) as if it had been built
 * into a core stream first (identical counts to tallyEvents(
 * buildCoreStream(trace, b, e))), without allocating the stream.
 */
EventCounts tallyEvents(const Trace &trace, DynId b, DynId e,
                        unsigned l1_hit = 4, unsigned l2_hit = 26);

} // namespace prism

#endif // PRISM_TDG_CONSTRUCTOR_HH
