#include "analysis/behavior.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <set>
#include <sstream>

#include "common/logging.hh"
#include "ir/cfg.hh"
#include "ir/dominators.hh"

namespace prism
{

namespace
{

// ---------------------------------------------------------------
// The abstract evolution lattice. An AbsVal describes how one
// register's value changes across consecutive completed iterations
// of a single loop occurrence, at one program point.
// ---------------------------------------------------------------

struct AbsVal
{
    enum Kind : std::uint8_t
    {
        Top,         ///< unreached (join identity)
        Const,       ///< compile-time constant `v` every iteration
        Step,        ///< changes by exactly `v` per iteration
        StepUnknown, ///< fixed-but-unknown per-iteration delta
        Irregular,   ///< no claim
    };

    Kind kind = Top;
    std::int64_t v = 0;

    static AbsVal top() { return {Top, 0}; }
    static AbsVal cst(std::int64_t c) { return {Const, c}; }
    static AbsVal step(std::int64_t s) { return {Step, s}; }
    static AbsVal stepUnknown() { return {StepUnknown, 0}; }
    static AbsVal irregular() { return {Irregular, 0}; }

    bool isConst() const { return kind == Const; }
    /** Delta is a compile-time constant (Const => 0). */
    bool knownDelta() const { return kind == Const || kind == Step; }
    /** Delta is fixed within an occurrence, possibly unknown. */
    bool fixedDelta() const
    {
        return kind == Const || kind == Step || kind == StepUnknown;
    }
    /** Value is fixed across iterations of an occurrence. */
    bool invariant() const
    {
        return kind == Const || (kind == Step && v == 0);
    }
    std::int64_t delta() const { return kind == Const ? 0 : v; }
};

// Two's-complement wrapping arithmetic, mirroring the interpreter
// (and keeping the UBSan leg quiet).
std::int64_t
wadd(std::int64_t a, std::int64_t b)
{
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                     static_cast<std::uint64_t>(b));
}

std::int64_t
wsub(std::int64_t a, std::int64_t b)
{
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                     static_cast<std::uint64_t>(b));
}

std::int64_t
wmul(std::int64_t a, std::int64_t b)
{
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                     static_cast<std::uint64_t>(b));
}

std::int64_t
wshl(std::int64_t a, std::int64_t s)
{
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a)
                                     << (s & 63));
}

/**
 * Join of two abstract values at a control-flow merge. Strict on
 * purpose: two *different* fixed evolutions meeting at a merge can
 * alternate across iterations, which is not a fixed evolution — only
 * identical elements survive. (StepUnknown joins with itself, which
 * is sound because StepUnknown never backs a definite claim.)
 */
AbsVal
join(const AbsVal &a, const AbsVal &b)
{
    if (a.kind == AbsVal::Top)
        return b;
    if (b.kind == AbsVal::Top)
        return a;
    if (a.kind == b.kind &&
        (a.kind == AbsVal::StepUnknown || a.kind == AbsVal::Irregular ||
         a.v == b.v)) {
        return a;
    }
    return AbsVal::irregular();
}

/** Abstract transfer for one value-producing instruction. */
AbsVal
transfer(const Instr &in, const std::vector<AbsVal> &state)
{
    const auto rd = [&state](RegId r) { return state[r]; };

    switch (in.op) {
      case Opcode::Movi:
        return AbsVal::cst(in.imm);
      case Opcode::Mov:
        return rd(in.src[0]);

      case Opcode::Add: {
        const AbsVal a = rd(in.src[0]), b = rd(in.src[1]);
        if (a.isConst() && b.isConst())
            return AbsVal::cst(wadd(a.v, b.v));
        if (a.knownDelta() && b.knownDelta())
            return AbsVal::step(wadd(a.delta(), b.delta()));
        if (a.fixedDelta() && b.fixedDelta())
            return AbsVal::stepUnknown();
        return AbsVal::irregular();
      }
      case Opcode::Sub: {
        const AbsVal a = rd(in.src[0]), b = rd(in.src[1]);
        if (a.isConst() && b.isConst())
            return AbsVal::cst(wsub(a.v, b.v));
        if (a.knownDelta() && b.knownDelta())
            return AbsVal::step(wsub(a.delta(), b.delta()));
        if (a.fixedDelta() && b.fixedDelta())
            return AbsVal::stepUnknown();
        return AbsVal::irregular();
      }
      case Opcode::Mul: {
        const AbsVal a = rd(in.src[0]), b = rd(in.src[1]);
        if (a.isConst() && b.isConst())
            return AbsVal::cst(wmul(a.v, b.v));
        // c * affine: the delta scales by the constant.
        if (a.isConst() && b.knownDelta())
            return AbsVal::step(wmul(a.v, b.delta()));
        if (b.isConst() && a.knownDelta())
            return AbsVal::step(wmul(b.v, a.delta()));
        if (a.invariant() && b.invariant())
            return AbsVal::step(0);
        // invariant * affine: fixed (but unknown) delta per iteration.
        if (a.invariant() && b.fixedDelta())
            return AbsVal::stepUnknown();
        if (b.invariant() && a.fixedDelta())
            return AbsVal::stepUnknown();
        return AbsVal::irregular();
      }
      case Opcode::Shl: {
        const AbsVal a = rd(in.src[0]), b = rd(in.src[1]);
        if (a.isConst() && b.isConst())
            return AbsVal::cst(wshl(a.v, b.v));
        if (a.invariant() && b.invariant())
            return AbsVal::step(0);
        // (x + d) << c == (x << c) + (d << c) in modular arithmetic.
        if (b.isConst() && a.knownDelta())
            return AbsVal::step(wshl(a.delta(), b.v));
        if (b.invariant() && a.fixedDelta())
            return AbsVal::stepUnknown();
        return AbsVal::irregular();
      }

      case Opcode::Ld:
      case Opcode::Call:
        // Loads read mutable memory; calls read memory transitively.
        return AbsVal::irregular();

      default: {
        // Every remaining value producer is a pure function of its
        // register sources: fixed inputs give a fixed output.
        for (RegId r : in.src) {
            if (r != kNoReg && !state[r].invariant())
                return AbsVal::irregular();
        }
        return AbsVal::step(0);
      }
    }
}

// Self-update idiom helpers (same rules as the TdgStatics
// classifier in tdg/builder.cc).
bool
isSelfDep(const Instr &in)
{
    if (in.dst == kNoReg)
        return false;
    for (RegId s : in.src) {
        if (s != kNoReg && s == in.dst)
            return true;
    }
    return false;
}

RegId
otherOperand(const Instr &in)
{
    for (RegId s : in.src) {
        if (s != kNoReg && s != in.dst)
            return s;
    }
    return kNoReg;
}

/**
 * Header-in abstract value of a classified induction's register.
 * Between consecutive header entries the (unique) self-update runs
 * exactly once, so the register advances by the invariant operand:
 * a known Movi constant gives Step(+/-c), any other invariant gives
 * StepUnknown. Shapes the classifier admits but that are not affine
 * (i = i + i, i = c - i) degrade to Irregular.
 */
/**
 * Known constant value of a loop-invariant register, if provable:
 * its unique definition in the function is a Movi whose block
 * dominates the loop header. Dominance guarantees the Movi executed
 * at least once before any iteration reads the register (every
 * execution writes the same immediate, so "at least once" suffices),
 * and uniqueness plus call-frame isolation guarantee nothing else
 * wrote it since.
 */
const Instr *
uniqueMoviDef(const Program &prog, const Dfg &dfg,
              const Dominators &dom, const Loop &loop, RegId r)
{
    const std::vector<StaticId> &defs = dfg.defsOf(r);
    if (defs.size() != 1)
        return nullptr;
    const Instr &def = prog.instr(defs[0]);
    if (def.op != Opcode::Movi)
        return nullptr;
    const InstrRef &ref = prog.locate(defs[0]);
    if (loop.containsBlock(ref.block) ||
        !dom.dominates(ref.block, loop.header)) {
        return nullptr;
    }
    return &def;
}

AbsVal
inductionInit(const Program &prog, const Dfg &dfg,
              const Dominators &dom, const Loop &loop,
              const Instr &in)
{
    const RegId other = otherOperand(in);
    if (other == kNoReg)
        return AbsVal::irregular(); // i = i + i: geometric, not affine
    if (in.op == Opcode::Sub && in.src[0] != in.dst)
        return AbsVal::irregular(); // i = c - i: alternating
    if (!dfg.invariantIn(prog, other, loop))
        return AbsVal::irregular();
    if (const Instr *def =
            uniqueMoviDef(prog, dfg, dom, loop, other)) {
        const std::int64_t c = def->imm;
        return AbsVal::step(in.op == Opcode::Add ? c : wsub(0, c));
    }
    return AbsVal::stepUnknown();
}

AddrClass
classify(const AbsVal &v)
{
    switch (v.kind) {
      case AbsVal::Const:
        return AddrClass::Constant;
      case AbsVal::Step:
        return v.v == 0 ? AddrClass::Invariant : AddrClass::AffineConst;
      case AbsVal::StepUnknown:
        return AddrClass::AffineUnknown;
      default:
        return AddrClass::Irregular;
    }
}

std::size_t
bsaIndex(BsaKind b)
{
    return static_cast<std::size_t>(b);
}

Diag
loopDiag(const char *check, const LoopBehavior &lb, std::string msg,
         Diag::Severity sev)
{
    Diag d;
    d.severity = sev;
    d.check = check;
    d.loop = lb.loopId;
    d.func = lb.func;
    d.message = std::move(msg);
    return d;
}

} // namespace

const char *
addrClassName(AddrClass c)
{
    switch (c) {
      case AddrClass::Constant: return "constant";
      case AddrClass::Invariant: return "invariant";
      case AddrClass::AffineConst: return "affine";
      case AddrClass::AffineUnknown: return "affine-unknown";
      case AddrClass::Irregular: return "irregular";
    }
    return "?";
}

const char *
applicabilityName(Applicability a)
{
    switch (a) {
      case Applicability::No: return "no";
      case Applicability::Unknown: return "unknown";
      case Applicability::Yes: return "yes";
    }
    return "?";
}

BehaviorAnalysis::BehaviorAnalysis(const TdgStatics &statics)
    : statics_(&statics)
{
    const Program &prog = statics.program();
    loops_.resize(statics.forest.numLoops());

    // One Cfg + Dominators per function, built lazily (same pattern
    // as the TdgStatics constructor).
    std::vector<std::unique_ptr<Cfg>> cfgs(prog.functions().size());
    std::vector<std::unique_ptr<Dominators>> doms(
        prog.functions().size());
    for (const Loop &loop : statics.forest.loops()) {
        if (!cfgs[loop.func]) {
            cfgs[loop.func] = std::make_unique<Cfg>(
                Cfg::reconstruct(prog, loop.func));
            doms[loop.func] = std::make_unique<Dominators>(
                Dominators::compute(*cfgs[loop.func]));
        }
        analyzeLoop(loop, *cfgs[loop.func], *doms[loop.func]);
    }
}

void
BehaviorAnalysis::analyzeLoop(const Loop &loop, const Cfg &cfg,
                              const Dominators &dom)
{
    const Program &prog = statics_->program();
    const Function &fn = prog.function(loop.func);
    const Dfg &dfg = statics_->dfgs.at(loop.func);

    LoopBehavior &lb = loops_[loop.id];
    lb.loopId = loop.id;
    lb.func = loop.func;
    lb.innermost = loop.innermost;
    lb.containsCall = loop.containsCall;
    lb.staticInsts = loop.numStaticInstrs;
    lb.numBlocks = static_cast<std::uint32_t>(loop.blocks.size());
    lb.numInductions = static_cast<std::uint32_t>(
        statics_->inductions[loop.id].size());
    lb.numReductions = static_cast<std::uint32_t>(
        statics_->reductions[loop.id].size());

    // Per-block "executes exactly once per completed iteration":
    // the block dominates every latch (every header->latch path
    // passes it; an innermost body has no internal cycle, so it
    // cannot pass twice).
    std::vector<std::int32_t> body =
        loop.blocks; // sorted; re-sorted into RPO below
    std::sort(body.begin(), body.end(),
              [&cfg](std::int32_t a, std::int32_t b) {
                  return cfg.rpoIndex(a) < cfg.rpoIndex(b);
              });
    auto inBody = [&loop](std::int32_t b) {
        return loop.containsBlock(b);
    };
    std::vector<bool> everyIter(fn.blocks.size(), false);
    lb.straightLine = true;
    for (std::int32_t b : body) {
        bool every = true;
        for (std::int32_t latch : loop.latches)
            every &= dom.dominates(b, latch);
        everyIter[b] = every;
        lb.straightLine &= every;
    }

    // Control axis: conditional branches, Ball-Larus path count, and
    // longest/shortest acyclic paths over the body DAG (back edges to
    // the header and loop exits terminate a path).
    for (std::int32_t b : body) {
        const Instr *term = fn.blocks[b].terminator();
        if (term != nullptr && opInfo(term->op).isCondBranch)
            ++lb.numCondBranches;
    }
    if (loop.innermost && statics_->dags[loop.id])
        lb.staticPaths = statics_->dags[loop.id]->numPaths();

    {
        constexpr std::uint64_t kInf =
            std::numeric_limits<std::uint64_t>::max();
        std::vector<std::uint64_t> minIn(fn.blocks.size(), kInf);
        std::vector<std::uint64_t> maxIn(fn.blocks.size(), 0);
        std::vector<std::uint32_t> condIn(fn.blocks.size(), 0);
        std::vector<bool> reached(fn.blocks.size(), false);
        const auto blockInsts = [&fn](std::int32_t b) {
            return static_cast<std::uint64_t>(
                fn.blocks[b].instrs.size());
        };
        const auto blockCond = [&fn](std::int32_t b) {
            const Instr *t = fn.blocks[b].terminator();
            return (t != nullptr && opInfo(t->op).isCondBranch) ? 1u
                                                                : 0u;
        };
        minIn[loop.header] = blockInsts(loop.header);
        maxIn[loop.header] = blockInsts(loop.header);
        condIn[loop.header] = blockCond(loop.header);
        reached[loop.header] = true;

        std::uint64_t minPath = kInf, maxPath = 0;
        std::uint32_t height = 0;
        for (std::int32_t b : body) {
            if (!reached[b])
                continue; // conservatively unreachable inside the body
            bool terminal = false;
            for (std::int32_t succ : cfg.node(b).succs) {
                if (succ == loop.header || !inBody(succ)) {
                    terminal = true; // back edge or loop exit
                    continue;
                }
                // A retreating in-body edge would mean a nested cycle
                // (then this loop is not innermost and the DP is only
                // descriptive anyway); RPO order makes forward edges
                // process correctly.
                minIn[succ] = std::min(minIn[succ],
                                       minIn[b] + blockInsts(succ));
                maxIn[succ] = std::max(maxIn[succ],
                                       maxIn[b] + blockInsts(succ));
                condIn[succ] = std::max(condIn[succ],
                                        condIn[b] + blockCond(succ));
                reached[succ] = true;
            }
            if (terminal) {
                minPath = std::min(minPath, minIn[b]);
                maxPath = std::max(maxPath, maxIn[b]);
                height = std::max(height, condIn[b]);
            }
        }
        if (minPath != kInf) {
            lb.minPathInsts = static_cast<std::uint32_t>(minPath);
            lb.maxPathInsts = static_cast<std::uint32_t>(maxPath);
        }
        lb.controlHeight = height;
    }

    // Dataflow axis: a latency-weighted critical path through one
    // iteration's def-use chains (path-insensitive estimate; carried
    // idioms excluded, as a vectorized/pipelined execution would
    // rename them).
    if (loop.innermost) {
        std::vector<std::uint32_t> ready(fn.numRegs, 0);
        std::uint64_t latSum = 0;
        std::uint32_t crit = 0;
        for (std::int32_t b : body) {
            for (const Instr &in : fn.blocks[b].instrs) {
                const OpInfo &oi = opInfo(in.op);
                std::uint32_t start = 0;
                for (RegId r : in.src) {
                    if (r != kNoReg)
                        start = std::max(start, ready[r]);
                }
                const std::uint32_t done = start + oi.latency;
                latSum += oi.latency;
                crit = std::max(crit, done);
                if (in.dst != kNoReg)
                    ready[in.dst] = std::max(ready[in.dst], done);
            }
        }
        lb.critPathLatency = crit;
        lb.ilpBound = crit > 0 ? static_cast<double>(latSum) /
                                     static_cast<double>(crit)
                               : 0.0;
    }

    // Memory axis: abstract evolution of every address expression.
    // Loop-carried registers are initialized pessimistically — only
    // classified inductions with a unique in-loop definition carry a
    // step; every other in-loop-defined register starts Irregular —
    // so a single forward pass over the acyclic body is sound (no
    // optimistic fixpoint to converge to a self-justifying claim).
    if (loop.innermost) {
        std::vector<std::uint32_t> defCount(fn.numRegs, 0);
        for (std::int32_t b : body) {
            for (const Instr &in : fn.blocks[b].instrs) {
                if (in.dst != kNoReg)
                    ++defCount[in.dst];
            }
        }
        std::vector<AbsVal> init(fn.numRegs, AbsVal::step(0));
        for (RegId r = 0; r < fn.numRegs; ++r) {
            if (defCount[r] != 0) {
                init[r] = AbsVal::irregular();
            } else if (const Instr *def =
                           uniqueMoviDef(prog, dfg, dom, loop, r)) {
                init[r] = AbsVal::cst(def->imm);
            }
        }
        for (StaticId sid : statics_->inductions[loop.id]) {
            const Instr &in = prog.instr(sid);
            if (defCount[in.dst] == 1)
                init[in.dst] = inductionInit(prog, dfg, dom, loop, in);
        }

        // Block in-states: join of processed in-body predecessors;
        // the header's in-state is the (fixed) initialization.
        std::vector<std::vector<AbsVal>> outState(fn.blocks.size());
        std::vector<bool> processed(fn.blocks.size(), false);
        const std::vector<AbsVal> allIrregular(fn.numRegs,
                                               AbsVal::irregular());
        for (std::int32_t b : body) {
            std::vector<AbsVal> state;
            if (b == loop.header) {
                state = init;
            } else {
                state.assign(fn.numRegs, AbsVal::top());
                for (std::int32_t pred : cfg.node(b).preds) {
                    const std::vector<AbsVal> &ps =
                        (inBody(pred) && processed[pred])
                            ? outState[pred]
                            : allIrregular;
                    for (RegId r = 0; r < fn.numRegs; ++r)
                        state[r] = join(state[r], ps[r]);
                }
            }
            for (const Instr &in : fn.blocks[b].instrs) {
                const OpInfo &oi = opInfo(in.op);
                if (oi.isLoad || oi.isStore) {
                    StaticAccess acc;
                    acc.sid = in.sid;
                    acc.block = b;
                    acc.isLoad = oi.isLoad;
                    acc.memSize = in.memSize;
                    const AbsVal base = state[in.src[0]];
                    acc.cls = classify(base);
                    if (base.knownDelta())
                        acc.stride = base.delta();
                    acc.everyIteration = everyIter[b];
                    acc.definite = acc.everyIteration &&
                                   !loop.containsCall &&
                                   acc.cls != AddrClass::AffineUnknown &&
                                   acc.cls != AddrClass::Irregular;
                    lb.accesses.push_back(acc);
                }
                if (in.dst != kNoReg)
                    state[in.dst] = transfer(in, state);
            }
            outState[b] = std::move(state);
            processed[b] = true;
        }
        for (const StaticAccess &a : lb.accesses) {
            switch (a.cls) {
              case AddrClass::Constant: ++lb.numConstant; break;
              case AddrClass::Invariant: ++lb.numInvariant; break;
              case AddrClass::AffineConst: ++lb.numAffineConst; break;
              case AddrClass::AffineUnknown:
                ++lb.numAffineUnknown;
                break;
              case AddrClass::Irregular: ++lb.numIrregular; break;
            }
        }
    }

    // Recurrence axis: a self-update that provably executes every
    // iteration, is the register's only in-loop definition, and
    // matches no vectorizable idiom. Any trace where some occurrence
    // completes two iterations observes it as a carried non-idiom
    // dependence, so (call-free) SIMD/DP-CGRA legality cannot hold:
    // either the trip count is below the vector length or the
    // recurrence disqualifies the dependence check.
    {
        std::vector<std::uint32_t> defCount(fn.numRegs, 0);
        for (std::int32_t b : body) {
            for (const Instr &in : fn.blocks[b].instrs) {
                if (in.dst != kNoReg)
                    ++defCount[in.dst];
            }
        }
        const auto classified = [this, &loop](StaticId sid) {
            const auto &ind = statics_->inductions[loop.id];
            const auto &red = statics_->reductions[loop.id];
            return std::find(ind.begin(), ind.end(), sid) !=
                       ind.end() ||
                   std::find(red.begin(), red.end(), sid) != red.end();
        };
        for (std::int32_t b : body) {
            if (!everyIter[b])
                continue;
            for (const Instr &in : fn.blocks[b].instrs) {
                if (isSelfDep(in) && defCount[in.dst] == 1 &&
                    !classified(in.sid)) {
                    lb.certainRecurrence = true;
                }
            }
        }
    }

    // Separability axis: the DP-CGRA access/compute slicing,
    // re-derived from the IR alone. This mirrors
    // TdgAnalyzer::analyzeCgra exactly — the dynamic analyzer's
    // dependence profile copies its induction set from TdgStatics, so
    // the static slice is identical by construction.
    if (loop.innermost) {
        std::set<StaticId> access_set;
        std::vector<StaticId> work;
        auto push_defs = [&](RegId r) {
            if (r == kNoReg)
                return;
            for (StaticId def : dfg.defsOf(r)) {
                const InstrRef &dref = prog.locate(def);
                if (dref.func == loop.func &&
                    loop.containsBlock(dref.block)) {
                    work.push_back(def);
                }
            }
        };
        for (std::int32_t b : loop.blocks) {
            for (const Instr &in : fn.blocks[b].instrs) {
                const OpInfo &oi = opInfo(in.op);
                if (oi.isLoad || oi.isStore) {
                    access_set.insert(in.sid);
                    push_defs(in.src[0]); // address base only
                } else if (oi.isBranch) {
                    access_set.insert(in.sid);
                    push_defs(in.src[0]); // condition (if any)
                }
            }
        }
        for (StaticId s : statics_->inductions[loop.id])
            work.push_back(s);
        while (!work.empty()) {
            const StaticId sid = work.back();
            work.pop_back();
            if (!access_set.insert(sid).second)
                continue;
            const Instr &in = prog.instr(sid);
            for (RegId r : in.src)
                push_defs(r);
        }

        std::set<StaticId> compute_set;
        for (std::int32_t b : loop.blocks) {
            for (const Instr &in : fn.blocks[b].instrs) {
                if (!access_set.count(in.sid))
                    compute_set.insert(in.sid);
            }
        }
        std::set<StaticId> send_srcs, recv_srcs;
        for (std::int32_t b : loop.blocks) {
            for (const Instr &in : fn.blocks[b].instrs) {
                const bool in_compute =
                    compute_set.count(in.sid) != 0;
                for (RegId r : in.src) {
                    if (r == kNoReg)
                        continue;
                    for (StaticId def : dfg.defsOf(r)) {
                        const InstrRef &dref = prog.locate(def);
                        if (dref.func != loop.func ||
                            !loop.containsBlock(dref.block)) {
                            continue;
                        }
                        const bool def_compute =
                            compute_set.count(def) != 0;
                        if (in_compute && !def_compute)
                            send_srcs.insert(def);
                        else if (!in_compute && def_compute)
                            recv_srcs.insert(def);
                    }
                }
            }
        }
        lb.computeSliceSize =
            static_cast<std::uint32_t>(compute_set.size());
        lb.accessSliceSize =
            static_cast<std::uint32_t>(access_set.size());
        lb.sendCount = static_cast<std::uint32_t>(send_srcs.size());
        lb.recvCount = static_cast<std::uint32_t>(recv_srcs.size());
        lb.computeFraction =
            loop.numStaticInstrs > 0
                ? static_cast<double>(compute_set.size()) /
                      static_cast<double>(loop.numStaticInstrs)
                : 0.0;
    }

    // ---- Verdicts. Definite claims only where any trace must agree.
    const auto set = [&lb](BsaKind b, Applicability a,
                           const char *why) {
        lb.verdict[bsaIndex(b)] = a;
        lb.verdictWhy[bsaIndex(b)] = why;
    };

    // NS-DF legality is purely static: call-free nest within 256
    // compound instructions. Exact Yes/No, never Unknown.
    if (loop.containsCall) {
        set(BsaKind::Nsdf, Applicability::No,
            "not fully inlinable (calls)");
    } else if (loop.numStaticInstrs > 256) {
        set(BsaKind::Nsdf, Applicability::No,
            "exceeds 256 static compound instructions");
    } else {
        set(BsaKind::Nsdf, Applicability::Yes,
            "call-free nest within the configuration bound");
    }

    // SIMD: dynamic facts (trip count, carried memory dependences,
    // if-conversion profitability) keep the positive side Unknown.
    if (!loop.innermost) {
        set(BsaKind::Simd, Applicability::No, "not innermost");
    } else if (loop.containsCall) {
        set(BsaKind::Simd, Applicability::No, "contains call");
    } else if (lb.certainRecurrence) {
        set(BsaKind::Simd, Applicability::No,
            "statically-certain non-idiom recurrence");
    } else {
        set(BsaKind::Simd, Applicability::Unknown,
            "trip count, memory dependences and profitability are "
            "dynamic");
    }

    // DP-CGRA: the slice shape adds two further static rejections.
    if (!loop.innermost) {
        set(BsaKind::DpCgra, Applicability::No, "not innermost");
    } else if (loop.containsCall) {
        set(BsaKind::DpCgra, Applicability::No, "contains call");
    } else if (lb.certainRecurrence) {
        set(BsaKind::DpCgra, Applicability::No,
            "statically-certain non-idiom recurrence");
    } else if (lb.computeSliceSize < 2) {
        set(BsaKind::DpCgra, Applicability::No,
            "no separable computation");
    } else if (lb.sendCount + lb.recvCount > lb.computeSliceSize) {
        set(BsaKind::DpCgra, Applicability::No,
            "more communication than computation");
    } else {
        set(BsaKind::DpCgra, Applicability::Unknown,
            "trip count and memory dependences are dynamic");
    }

    // Trace-P: if even the shortest acyclic body path overflows the
    // 128-instruction trace, every hot path must.
    if (!loop.innermost) {
        set(BsaKind::Tracep, Applicability::No, "not an inner loop");
    } else if (loop.containsCall) {
        set(BsaKind::Tracep, Applicability::No, "contains call");
    } else if (lb.minPathInsts > 128) {
        set(BsaKind::Tracep, Applicability::No,
            "shortest acyclic path exceeds the trace configuration");
    } else {
        set(BsaKind::Tracep, Applicability::Unknown,
            "path distribution is dynamic");
    }
}

std::vector<Diag>
behaviorPredictions(const BehaviorAnalysis &ba)
{
    std::vector<Diag> out;
    static const std::array<const char *, kAllBsas.size()> kChecks = {
        "behavior-simd", "behavior-cgra", "behavior-nsdf",
        "behavior-tracep"};
    for (const LoopBehavior &lb : ba.loops()) {
        if (lb.loopId < 0)
            continue;
        for (BsaKind b : kAllBsas) {
            const Applicability a = lb.verdictFor(b);
            std::string msg = "static verdict ";
            msg += applicabilityName(a);
            msg += ": ";
            msg += lb.whyFor(b);
            out.push_back(loopDiag(kChecks[bsaIndex(b)], lb,
                                   std::move(msg),
                                   Diag::Severity::Warning));
        }
    }
    return out;
}

std::vector<Diag>
behaviorDifferential(const Tdg &tdg, const TdgAnalyzer &analyzer,
                     const BehaviorAnalysis &ba)
{
    std::vector<Diag> out;

    for (const LoopBehavior &lb : ba.loops()) {
        if (lb.loopId < 0)
            continue;

        for (BsaKind b : kAllBsas) {
            const Applicability a = lb.verdictFor(b);
            const bool usable = analyzer.usable(b, lb.loopId);
            if (a == Applicability::Yes && !usable) {
                out.push_back(loopDiag(
                    "behavior-verdict", lb,
                    std::string("static definitely-applicable but "
                                "dynamic rejects ") +
                        bsaName(b) + " (" + lb.whyFor(b) + ")",
                    Diag::Severity::Error));
            } else if (a == Applicability::No && usable) {
                out.push_back(loopDiag(
                    "behavior-verdict", lb,
                    std::string("static definitely-inapplicable but "
                                "dynamic accepts ") +
                        bsaName(b) + " (" + lb.whyFor(b) + ")",
                    Diag::Severity::Error));
            }
        }

        const LoopMemProfile &mem = tdg.memProfile(lb.loopId);
        for (const StaticAccess &acc : lb.accesses) {
            if (!acc.definite)
                continue;
            const MemAccessPattern *p = mem.find(acc.sid);
            if (p == nullptr || !p->strideSet)
                continue; // no occurrence measured a stride
            if (!p->strideKnown || p->stride != acc.stride) {
                std::ostringstream msg;
                msg << "static " << addrClassName(acc.cls)
                    << " stride " << acc.stride << " but dynamic "
                    << (p->strideKnown
                            ? "stride " + std::to_string(p->stride)
                            : std::string("stride is inconsistent"))
                    << " (sid " << acc.sid << ")";
                Diag d = loopDiag("behavior-stride", lb, msg.str(),
                                  Diag::Severity::Error);
                d.block = acc.block;
                out.push_back(d);
            }
        }
    }
    return out;
}

BehaviorSummary
summarizeBehavior(const BehaviorAnalysis &ba)
{
    BehaviorSummary s;
    std::uint64_t accesses = 0, definite = 0, irregular = 0;
    double ilp = 0, height = 0, paths = 0, compute = 0;
    for (const LoopBehavior &lb : ba.loops()) {
        if (lb.loopId < 0)
            continue;
        ++s.loops;
        if (lb.verdictFor(BsaKind::Nsdf) == Applicability::Yes)
            ++s.nsdfYes;
        if (lb.verdictFor(BsaKind::Simd) == Applicability::No)
            ++s.simdNo;
        if (lb.verdictFor(BsaKind::DpCgra) == Applicability::No)
            ++s.cgraNo;
        if (lb.verdictFor(BsaKind::Tracep) == Applicability::No)
            ++s.tracepNo;
        if (!lb.innermost)
            continue;
        ++s.innermostLoops;
        ilp += lb.ilpBound;
        height += lb.controlHeight;
        paths += lb.staticPaths > 0
                     ? std::log2(static_cast<double>(lb.staticPaths))
                     : 0.0;
        compute += lb.computeFraction;
        accesses += lb.accesses.size();
        definite += lb.numConstant + lb.numInvariant +
                    lb.numAffineConst;
        irregular += lb.numIrregular;
    }
    if (s.innermostLoops > 0) {
        const double n = static_cast<double>(s.innermostLoops);
        s.avgIlpBound = ilp / n;
        s.avgControlHeight = height / n;
        s.avgPathsLog2 = paths / n;
        s.avgComputeFraction = compute / n;
    }
    if (accesses > 0) {
        s.affineFraction = static_cast<double>(definite) /
                           static_cast<double>(accesses);
        s.irregularFraction = static_cast<double>(irregular) /
                              static_cast<double>(accesses);
    }
    return s;
}

void
writeBehaviorCsv(const BehaviorAnalysis &ba,
                 const std::string &workload, bool header,
                 std::ostream &os)
{
    if (header) {
        os << "workload,loop,func,innermost,contains_call,"
              "straight_line,static_insts,blocks,cond_branches,"
              "static_paths,control_height,min_path_insts,"
              "max_path_insts,crit_path_latency,ilp_bound,accesses,"
              "affine_const,affine_unknown,invariant,constant,"
              "irregular,compute_slice,access_slice,send,recv,"
              "compute_fraction,inductions,reductions,"
              "certain_recurrence,simd,cgra,nsdf,tracep\n";
    }
    char buf[64];
    const auto f4 = [&buf](double v) {
        std::snprintf(buf, sizeof(buf), "%.4f", v);
        return std::string(buf);
    };
    for (const LoopBehavior &lb : ba.loops()) {
        if (lb.loopId < 0)
            continue;
        os << workload << ',' << lb.loopId << ',' << lb.func << ','
           << (lb.innermost ? 1 : 0) << ','
           << (lb.containsCall ? 1 : 0) << ','
           << (lb.straightLine ? 1 : 0) << ',' << lb.staticInsts
           << ',' << lb.numBlocks << ',' << lb.numCondBranches << ','
           << lb.staticPaths << ',' << lb.controlHeight << ','
           << lb.minPathInsts << ',' << lb.maxPathInsts << ','
           << lb.critPathLatency << ',' << f4(lb.ilpBound) << ','
           << lb.accesses.size() << ',' << lb.numAffineConst << ','
           << lb.numAffineUnknown << ',' << lb.numInvariant << ','
           << lb.numConstant << ',' << lb.numIrregular << ','
           << lb.computeSliceSize << ',' << lb.accessSliceSize << ','
           << lb.sendCount << ',' << lb.recvCount << ','
           << f4(lb.computeFraction) << ',' << lb.numInductions
           << ',' << lb.numReductions << ','
           << (lb.certainRecurrence ? 1 : 0);
        for (BsaKind b : kAllBsas)
            os << ',' << applicabilityName(lb.verdictFor(b));
        os << '\n';
    }
}

std::string
renderBehaviorReport(const BehaviorAnalysis &ba)
{
    std::ostringstream os;
    for (const LoopBehavior &lb : ba.loops()) {
        if (lb.loopId < 0)
            continue;
        const Function &fn = ba.program().function(lb.func);
        os << "  loop " << lb.loopId << " (" << fn.name << ", "
           << lb.staticInsts << " insts, " << lb.numBlocks
           << " blocks" << (lb.innermost ? ", innermost" : "")
           << (lb.containsCall ? ", calls" : "") << ")\n";
        os << "    control: " << lb.numCondBranches << " cond br, "
           << lb.staticPaths << " paths, height "
           << lb.controlHeight << ", path insts ["
           << lb.minPathInsts << ", " << lb.maxPathInsts << "]\n";
        if (lb.innermost) {
            char ilp[32];
            std::snprintf(ilp, sizeof(ilp), "%.2f", lb.ilpBound);
            os << "    dataflow: ilp bound " << ilp
               << " (crit path " << lb.critPathLatency << ")\n";
            os << "    memory: " << lb.accesses.size()
               << " accesses (affine " << lb.numAffineConst
               << ", affine-unknown " << lb.numAffineUnknown
               << ", invariant " << lb.numInvariant << ", constant "
               << lb.numConstant << ", irregular " << lb.numIrregular
               << ")\n";
            char cf[32];
            std::snprintf(cf, sizeof(cf), "%.2f",
                          lb.computeFraction);
            os << "    separability: compute " << lb.computeSliceSize
               << " / access " << lb.accessSliceSize << " (send "
               << lb.sendCount << ", recv " << lb.recvCount
               << ", compute fraction " << cf << ")\n";
            os << "    recurrences: " << lb.numInductions
               << " inductions, " << lb.numReductions
               << " reductions"
               << (lb.certainRecurrence
                       ? ", certain non-idiom recurrence"
                       : "")
               << "\n";
        }
        os << "    verdicts:";
        for (BsaKind b : kAllBsas) {
            os << ' ' << bsaName(b) << '='
               << applicabilityName(lb.verdictFor(b));
        }
        os << '\n';
    }
    return os.str();
}

} // namespace prism
