/**
 * @file
 * Static behavior-space analysis: derive the paper's BSA-profitability
 * axes from the guest Program alone — no trace required.
 *
 * The dynamic pipeline (TdgBuilder -> TdgAnalyzer) observes behaviors:
 * memory strides, path frequencies, carried dependences. This pass
 * *predicts* them per loop from the IR, giving every loop a coordinate
 * in behavior space (control, memory regularity, ILP, separability,
 * recurrences) plus a three-valued applicability verdict per BSA.
 *
 * Soundness contract (enforced by behaviorDifferential and the
 * `behavior_differential` ctest): a *definite* static verdict never
 * contradicts the dynamic classification —
 *
 *  - Yes  => TdgAnalyzer::usable() is true on every trace;
 *  - No   => usable() is false on every trace;
 *  - Unknown makes no claim (profitability and trip counts are
 *    dynamic facts; the analyzer is never forced to guess).
 *
 * Only NS-DF admits a static Yes: its legality predicate (call-free
 * nest within the 256-compound-instruction bound) is purely static.
 * SIMD/DP-CGRA/Trace-P verdicts are No or Unknown, derived from facts
 * that force a dynamic rejection on *any* trace: nesting, calls, a
 * statically-certain non-idiom recurrence, a compute slice too small
 * (or out-communicated) for the fabric, or a body whose *shortest*
 * acyclic path already overflows the trace-cache configuration.
 *
 * Address-stride claims use a small abstract-evolution lattice per
 * register (see AbsVal in behavior.cc):
 *
 *      Top  >  Const(c) , Step(s) , StepUnknown  >  Irregular
 *
 * Step(s) at a program point means "across consecutive completed
 * iterations of one occurrence, the value at this point changes by
 * exactly s"; loop-carried registers are initialized pessimistically
 * (classified inductions pinned to their step, everything else
 * Irregular), so the one-pass forward evaluation over the acyclic
 * loop body never trusts an optimistic fixpoint.
 */

#ifndef PRISM_ANALYSIS_BEHAVIOR_HH
#define PRISM_ANALYSIS_BEHAVIOR_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "energy/area_model.hh"
#include "prog/verifier.hh"
#include "tdg/analyzer.hh"
#include "tdg/builder.hh"

namespace prism
{

/** Static classification of one memory access's address evolution. */
enum class AddrClass : std::uint8_t
{
    Constant,      ///< compile-time-constant address
    Invariant,     ///< loop-invariant address (value unknown)
    AffineConst,   ///< affine in the IV, stride known at compile time
    AffineUnknown, ///< affine in the IV, stride invariant but unknown
    Irregular,     ///< data-dependent (pointer chasing, gathers, ...)
};

/** Three-valued static applicability verdict (No < Unknown < Yes). */
enum class Applicability : std::uint8_t { No, Unknown, Yes };

const char *addrClassName(AddrClass c);
const char *applicabilityName(Applicability a);

/** Static view of one Ld/St inside a loop body. */
struct StaticAccess
{
    StaticId sid = kNoStatic;
    std::int32_t block = -1;
    bool isLoad = false;
    std::uint8_t memSize = 0;
    AddrClass cls = AddrClass::Irregular;
    std::int64_t stride = 0;  ///< valid for Constant/Invariant/AffineConst
    bool everyIteration = false; ///< block dominates all latches

    /**
     * True when the stride claim is a checkable guarantee: the class
     * is definite (not AffineUnknown/Irregular), the access executes
     * exactly once per completed iteration, and the loop is an
     * innermost call-free region (so no foreign frame can interleave
     * executions of this static instruction within an occurrence).
     */
    bool definite = false;
};

/** The static behavior coordinates of one loop. */
struct LoopBehavior
{
    std::int32_t loopId = -1;
    std::int32_t func = -1;
    bool innermost = false;
    bool containsCall = false;
    bool straightLine = false; ///< all body blocks on every iteration

    // Control axis.
    std::uint32_t staticInsts = 0;
    std::uint32_t numBlocks = 0;
    std::uint32_t numCondBranches = 0;
    std::uint64_t staticPaths = 0;  ///< Ball-Larus path count (innermost)
    std::uint32_t controlHeight = 0; ///< max cond branches on one path
    std::uint32_t minPathInsts = 0;  ///< shortest acyclic body path
    std::uint32_t maxPathInsts = 0;  ///< longest acyclic body path

    // Dataflow axis (innermost only).
    std::uint32_t critPathLatency = 0; ///< latency-weighted critical path
    double ilpBound = 0;               ///< body latency / critical path

    // Memory axis (innermost only).
    std::vector<StaticAccess> accesses;
    std::uint32_t numConstant = 0;
    std::uint32_t numInvariant = 0;
    std::uint32_t numAffineConst = 0;
    std::uint32_t numAffineUnknown = 0;
    std::uint32_t numIrregular = 0;

    // Separability axis (innermost only; mirrors the DP-CGRA slicer).
    std::uint32_t computeSliceSize = 0;
    std::uint32_t accessSliceSize = 0;
    std::uint32_t sendCount = 0;
    std::uint32_t recvCount = 0;
    double computeFraction = 0; ///< compute insts / body insts

    // Recurrence axis.
    std::uint32_t numInductions = 0;
    std::uint32_t numReductions = 0;
    /** A self-dependent update that is provably executed every
     *  iteration yet matches no vectorizable idiom: any trace with
     *  >= 2 iterations observes it as a disqualifying recurrence. */
    bool certainRecurrence = false;

    // Verdicts, indexed by static_cast<size_t>(BsaKind).
    std::array<Applicability, kAllBsas.size()> verdict{};
    std::array<const char *, kAllBsas.size()> verdictWhy{};

    Applicability verdictFor(BsaKind b) const
    {
        return verdict[static_cast<std::size_t>(b)];
    }
    const char *whyFor(BsaKind b) const
    {
        return verdictWhy[static_cast<std::size_t>(b)];
    }
};

/** Aggregate static behavior features of one workload program. */
struct BehaviorSummary
{
    std::uint32_t loops = 0;
    std::uint32_t innermostLoops = 0;
    std::uint32_t nsdfYes = 0;
    std::uint32_t simdNo = 0;
    std::uint32_t cgraNo = 0;
    std::uint32_t tracepNo = 0;
    double avgIlpBound = 0;       ///< mean over innermost loops
    double avgControlHeight = 0;  ///< mean over innermost loops
    double avgPathsLog2 = 0;      ///< mean log2(static paths)
    double affineFraction = 0;    ///< definite-stride accesses / all
    double irregularFraction = 0; ///< irregular accesses / all
    double avgComputeFraction = 0;
};

/**
 * Runs the static behavior derivation over every loop of a program.
 * Construct from TdgStatics (shared with the dynamic builder so the
 * induction/reduction classification is identical by construction).
 */
class BehaviorAnalysis
{
  public:
    explicit BehaviorAnalysis(const TdgStatics &statics);

    const std::vector<LoopBehavior> &loops() const { return loops_; }
    const LoopBehavior &loop(std::int32_t id) const
    {
        return loops_.at(id);
    }
    const TdgStatics &statics() const { return *statics_; }
    const Program &program() const { return statics_->program(); }

  private:
    void analyzeLoop(const Loop &loop, const Cfg &cfg,
                     const Dominators &dom);

    const TdgStatics *statics_;
    std::vector<LoopBehavior> loops_; ///< indexed by loop id
};

/**
 * Per-(loop, BSA) applicability predictions as structured warnings
 * (check "behavior-<bsa>"), one per loop and BSA, mirroring the
 * dynamic checks of tdg_verify. Never error-severity: predictions are
 * descriptions, not defects.
 */
std::vector<Diag> behaviorPredictions(const BehaviorAnalysis &ba);

/**
 * The static-vs-dynamic differential: check every definite static
 * claim against the dynamic TDG classification of the same program.
 * Returns error diagnostics for
 *  - "behavior-verdict": a definite Yes/No contradicting
 *    TdgAnalyzer::usable() for that (loop, BSA);
 *  - "behavior-stride": a definite static stride class contradicted
 *    by the observed per-access stride profile (only enforced when
 *    the trace carries real evidence: more dynamic executions of the
 *    access than loop occurrences, so some occurrence measured a
 *    stride).
 * An empty result is the soundness witness.
 */
std::vector<Diag> behaviorDifferential(const Tdg &tdg,
                                       const TdgAnalyzer &analyzer,
                                       const BehaviorAnalysis &ba);

/** Aggregate per-workload features for the search dataset export. */
BehaviorSummary summarizeBehavior(const BehaviorAnalysis &ba);

/**
 * Stable per-(workload, loop) feature vector, one CSV row per loop.
 * Emits a header when `header` is true; `workload` labels the rows.
 */
void writeBehaviorCsv(const BehaviorAnalysis &ba,
                      const std::string &workload, bool header,
                      std::ostream &os);

/** Human-readable per-loop axis report (prism_lint --behavior). */
std::string renderBehaviorReport(const BehaviorAnalysis &ba);

} // namespace prism

#endif // PRISM_ANALYSIS_BEHAVIOR_HH
