#include "analysis/tdg_verify.hh"

#include <algorithm>
#include <set>
#include <string>

#include "common/logging.hh"

namespace prism
{

namespace
{

Diag
loopDiag(const char *check, const Loop &loop, std::string msg,
         Diag::Severity sev = Diag::Severity::Error)
{
    Diag d;
    d.severity = sev;
    d.check = check;
    d.func = loop.func;
    d.block = loop.header;
    d.loop = loop.id;
    d.message = std::move(msg);
    return d;
}

double
avgTripCount(const Tdg &tdg, std::int32_t loop)
{
    std::uint64_t occs = 0;
    std::uint64_t iters = 0;
    for (const LoopOccurrence &occ : tdg.loopMap().occurrences) {
        if (occ.loopId == loop) {
            ++occs;
            iters += occ.numIters();
        }
    }
    return occs ? static_cast<double>(iters) /
                      static_cast<double>(occs)
                : 0.0;
}

/** All static ids of the loop body's blocks. */
std::set<StaticId>
bodySids(const Program &prog, const Loop &loop)
{
    std::set<StaticId> sids;
    const Function &fn = prog.function(loop.func);
    for (std::int32_t b : loop.blocks) {
        for (const Instr &in : fn.blocks[b].instrs)
            sids.insert(in.sid);
    }
    return sids;
}

/**
 * The carried-dependence preconditions shared by the two
 * vectorizing-class BSAs: every carried register dependence is a
 * classified induction/reduction (cross-checked statically), and no
 * carried memory dependence was observed.
 */
void
checkVectorDeps(const Tdg &tdg, const Loop &loop, const char *check,
                const TdgStatics *statics, std::vector<Diag> &out)
{
    const LoopDepProfile &deps = tdg.depProfile(loop.id);
    if (deps.otherRecurrence) {
        out.push_back(loopDiag(
            check, loop,
            "plan is marked legal but the dependence profile records "
            "a non-induction/reduction recurrence"));
    }
    const LoopMemProfile &mem = tdg.memProfile(loop.id);
    if (mem.loopCarriedStoreToLoad) {
        out.push_back(loopDiag(
            check, loop,
            "plan is marked legal but a loop-carried store-to-load "
            "dependence was observed"));
    }
    if (statics != nullptr &&
        loop.id < static_cast<std::int32_t>(statics->inductions.size())) {
        const auto &sind = statics->inductions[loop.id];
        const auto &sred = statics->reductions[loop.id];
        auto classified = [&](StaticId sid,
                              const std::vector<StaticId> &v) {
            return std::find(v.begin(), v.end(), sid) != v.end();
        };
        for (StaticId sid : deps.inductions) {
            if (!classified(sid, sind)) {
                Diag d = loopDiag(
                    check, loop,
                    "profiled induction sid " + std::to_string(sid) +
                        " is not statically classified as an "
                        "induction");
                d.instr = tdg.program().locate(sid).index;
                d.block = tdg.program().blockOf(sid);
                out.push_back(std::move(d));
            }
        }
        for (StaticId sid : deps.reductions) {
            if (!classified(sid, sred)) {
                Diag d = loopDiag(
                    check, loop,
                    "profiled reduction sid " + std::to_string(sid) +
                        " is not statically classified as a "
                        "reduction");
                d.instr = tdg.program().locate(sid).index;
                d.block = tdg.program().blockOf(sid);
                out.push_back(std::move(d));
            }
        }
    }
}

void
verifySimd(const Tdg &tdg, const TdgAnalyzer &an, const Loop &loop,
           const TdgStatics *statics, std::vector<Diag> &out)
{
    const SimdPlan &plan = an.simd(loop.id);
    if (!plan.usable())
        return;
    if (!loop.innermost) {
        out.push_back(loopDiag("simd-legal", loop,
                               "vectorization planned for a "
                               "non-innermost loop"));
    }
    if (loop.containsCall) {
        out.push_back(loopDiag("simd-legal", loop,
                               "vectorization planned for a loop "
                               "containing calls"));
    }
    checkVectorDeps(tdg, loop, "simd-legal", statics, out);
    if (avgTripCount(tdg, loop.id) <
        static_cast<double>(kVectorLen)) {
        out.push_back(loopDiag(
            "simd-legal", loop,
            "average trip count below the vector length"));
    }
    // The planned body must be exactly the loop body.
    std::vector<std::int32_t> planned = plan.bodyRpo;
    std::sort(planned.begin(), planned.end());
    std::vector<std::int32_t> body = loop.blocks;
    std::sort(body.begin(), body.end());
    if (planned != body) {
        out.push_back(loopDiag("simd-legal", loop,
                               "planned body blocks do not match the "
                               "loop body"));
    }
}

void
verifyCgra(const Tdg &tdg, const TdgAnalyzer &an, const Loop &loop,
           const TdgStatics *statics, std::vector<Diag> &out)
{
    const CgraPlan &plan = an.cgra(loop.id);
    if (!plan.usable())
        return;
    if (!loop.innermost) {
        out.push_back(loopDiag("cgra-legal", loop,
                               "offload planned for a non-innermost "
                               "loop"));
    }
    if (loop.containsCall) {
        out.push_back(loopDiag("cgra-legal", loop,
                               "offload planned for a loop containing "
                               "calls"));
    }
    checkVectorDeps(tdg, loop, "cgra-legal", statics, out);

    const std::set<StaticId> body = bodySids(tdg.program(), loop);
    const std::set<StaticId> compute(plan.computeSlice.begin(),
                                     plan.computeSlice.end());
    const std::set<StaticId> access(plan.accessSlice.begin(),
                                    plan.accessSlice.end());
    if (compute.size() < 2) {
        out.push_back(loopDiag("cgra-legal", loop,
                               "compute slice too small to offload"));
    }
    for (StaticId sid : compute) {
        if (access.count(sid)) {
            out.push_back(loopDiag(
                "cgra-legal", loop,
                "sid " + std::to_string(sid) +
                    " appears in both compute and access slices"));
        }
        if (!body.count(sid)) {
            out.push_back(loopDiag("cgra-legal", loop,
                                   "compute slice sid " +
                                       std::to_string(sid) +
                                       " lies outside the loop body"));
        }
    }
    for (StaticId sid : body) {
        if (!compute.count(sid) && !access.count(sid)) {
            out.push_back(loopDiag(
                "cgra-legal", loop,
                "body sid " + std::to_string(sid) +
                    " assigned to neither slice"));
        }
    }
    for (StaticId sid : plan.sendSrcs) {
        if (!access.count(sid)) {
            out.push_back(loopDiag(
                "cgra-legal", loop,
                "send source sid " + std::to_string(sid) +
                    " is not in the access slice"));
        }
    }
    for (StaticId sid : plan.recvSrcs) {
        if (!compute.count(sid)) {
            out.push_back(loopDiag(
                "cgra-legal", loop,
                "recv source sid " + std::to_string(sid) +
                    " is not in the compute slice"));
        }
    }

    // Regular strided memory is the DySER-class sweet spot; an
    // offloaded loop with unclassifiable strides deserves a flag even
    // though the model tolerates it (packing costs are charged).
    const LoopMemProfile &mem = tdg.memProfile(loop.id);
    for (const MemAccessPattern &p : mem.accesses) {
        if (p.count > 0 && !p.strideKnown) {
            Diag d = loopDiag("cgra-strides", loop,
                              "offloaded loop accesses memory with no "
                              "consistent stride (sid " +
                                  std::to_string(p.sid) + ")",
                              Diag::Severity::Warning);
            out.push_back(std::move(d));
        }
    }
}

void
verifyNsdf(const Tdg &tdg, const TdgAnalyzer &an, const Loop &loop,
           std::vector<Diag> &out)
{
    const NsdfPlan &plan = an.nsdf(loop.id);
    if (!plan.usable())
        return;
    if (loop.containsCall) {
        out.push_back(loopDiag("nsdf-legal", loop,
                               "dataflow offload planned for a loop "
                               "containing calls"));
    }
    if (plan.staticInsts > 256) {
        out.push_back(loopDiag(
            "nsdf-legal", loop,
            "plan exceeds the 256-compound-instruction "
            "configuration bound"));
    }
    std::uint32_t counted = 0;
    const Function &fn = tdg.program().function(loop.func);
    for (std::int32_t b : loop.blocks)
        counted += static_cast<std::uint32_t>(fn.blocks[b].instrs.size());
    if (counted != plan.staticInsts) {
        out.push_back(loopDiag(
            "nsdf-legal", loop,
            "plan claims " + std::to_string(plan.staticInsts) +
                " static instructions; the body holds " +
                std::to_string(counted)));
    }
}

void
verifyTracep(const Tdg &tdg, const TdgAnalyzer &an, const Loop &loop,
             std::vector<Diag> &out)
{
    const TracepPlan &plan = an.tracep(loop.id);
    if (!plan.usable())
        return;
    if (!loop.innermost) {
        out.push_back(loopDiag("tracep-legal", loop,
                               "trace speculation planned for a "
                               "non-innermost loop"));
    }
    if (loop.containsCall) {
        out.push_back(loopDiag("tracep-legal", loop,
                               "trace speculation planned for a loop "
                               "containing calls"));
    }
    if (plan.loopBackProb <= 0.80) {
        out.push_back(loopDiag(
            "tracep-legal", loop,
            "loop-back probability at or below the 80% threshold"));
    }
    if (plan.hotFraction < 2.0 / 3.0) {
        out.push_back(loopDiag(
            "tracep-legal", loop,
            "hot path covers fewer than 2/3 of iterations"));
    }
    if (plan.hotBlocks.empty()) {
        out.push_back(loopDiag("tracep-legal", loop,
                               "plan carries no hot path"));
        return;
    }
    if (plan.hotBlocks.front() != loop.header) {
        out.push_back(loopDiag(
            "tracep-legal", loop,
            "hot path does not start at the loop header"));
    }
    double hot_insts = 0;
    const Function &fn = tdg.program().function(loop.func);
    for (std::int32_t b : plan.hotBlocks) {
        if (!loop.containsBlock(b)) {
            out.push_back(loopDiag(
                "tracep-legal", loop,
                "hot path block bb" + std::to_string(b) +
                    " lies outside the loop body"));
            continue;
        }
        hot_insts += static_cast<double>(fn.blocks[b].instrs.size());
    }
    if (hot_insts > 128) {
        out.push_back(loopDiag(
            "tracep-legal", loop,
            "hot trace exceeds the 128-instruction configuration"));
    }
}

void
verifyLoopMap(const Tdg &tdg, std::vector<Diag> &out)
{
    const TraceLoopMap &map = tdg.loopMap();
    const std::size_t trace_size = tdg.trace().size();
    auto mapDiag = [&out](std::string msg) {
        Diag d;
        d.check = "loop-map";
        d.message = std::move(msg);
        out.push_back(std::move(d));
    };
    if (map.loopOf.size() != trace_size ||
        map.occOf.size() != trace_size) {
        mapDiag("per-instruction loop/occurrence maps do not cover "
                "the trace");
    }
    for (std::size_t k = 0; k < map.occurrences.size(); ++k) {
        const LoopOccurrence &occ = map.occurrences[k];
        if (occ.begin > occ.end || occ.end > trace_size) {
            mapDiag("occurrence " + std::to_string(k) +
                    " interval [" + std::to_string(occ.begin) + ", " +
                    std::to_string(occ.end) +
                    ") is inverted or out of bounds");
            continue;
        }
        DynId prev = occ.begin;
        for (DynId it : occ.iterStarts) {
            if (it < occ.begin || it >= occ.end) {
                mapDiag("occurrence " + std::to_string(k) +
                        " iteration start " + std::to_string(it) +
                        " outside its interval");
                break;
            }
            if (it < prev) {
                mapDiag("occurrence " + std::to_string(k) +
                        " iteration starts not ascending");
                break;
            }
            prev = it;
        }
    }
}

} // namespace

std::vector<Diag>
verifyBsaPreconditions(const Tdg &tdg, const TdgAnalyzer &analyzer,
                       std::int32_t loop, BsaKind kind,
                       const TdgStatics *statics)
{
    std::vector<Diag> out;
    const Loop &l = tdg.loops().loop(loop);
    switch (kind) {
      case BsaKind::Simd:
        verifySimd(tdg, analyzer, l, statics, out);
        break;
      case BsaKind::DpCgra:
        verifyCgra(tdg, analyzer, l, statics, out);
        break;
      case BsaKind::Nsdf:
        verifyNsdf(tdg, analyzer, l, out);
        break;
      case BsaKind::Tracep:
        verifyTracep(tdg, analyzer, l, out);
        break;
    }
    return out;
}

std::vector<Diag>
verifyTdg(const Tdg &tdg, const TdgAnalyzer &analyzer,
          const TdgStatics *statics)
{
    std::vector<Diag> out;
    verifyLoopMap(tdg, out);
    for (const Loop &loop : tdg.loops().loops()) {
        for (BsaKind kind : kAllBsas) {
            auto diags = verifyBsaPreconditions(tdg, analyzer, loop.id,
                                                kind, statics);
            out.insert(out.end(),
                       std::make_move_iterator(diags.begin()),
                       std::make_move_iterator(diags.end()));
        }
    }
    return out;
}

namespace
{

Diag
coreDiag(const char *check, const CoreParams &core, std::string msg)
{
    Diag d;
    d.check = check;
    d.message = coreParamsName(core) + ": " + std::move(msg);
    return d;
}

void
verifyCoreParams(const CoreParams &core, std::vector<Diag> &out)
{
    if (core.width == 0)
        out.push_back(coreDiag("core-params", core, "zero width"));
    if (core.numAlu == 0)
        out.push_back(coreDiag("core-params", core, "no ALUs"));
    if (core.numMulDiv == 0)
        out.push_back(coreDiag("core-params", core, "no mul/div unit"));
    if (core.numFp == 0)
        out.push_back(coreDiag("core-params", core, "no FP unit"));
    if (core.dcachePorts == 0)
        out.push_back(coreDiag("core-params", core, "no dcache port"));
    if (core.simdLanes == 0)
        out.push_back(coreDiag("core-params", core, "zero SIMD lanes"));
    if (core.inorder && core.robSize != 0) {
        out.push_back(coreDiag("core-params", core,
                               "in-order point carries ROB entries"));
    }
    if (!core.inorder && core.robSize == 0) {
        out.push_back(coreDiag("core-params", core,
                               "out-of-order point with no ROB"));
    }
    if (!core.inorder && core.instWindow > core.robSize) {
        out.push_back(coreDiag(
            "core-params", core,
            "scheduler window larger than the ROB"));
    }
    if (core.l2HitLatency < core.l1HitLatency) {
        out.push_back(coreDiag("core-params", core,
                               "L2 faster than L1"));
    }
}

void
verifyCoreRoundtrip(const CoreParams &core, std::vector<Diag> &out)
{
    const CoreConfig cfg = coreConfigFrom(core);
    const auto expect = [&](bool ok, const char *what) {
        if (!ok) {
            out.push_back(coreDiag(
                "core-roundtrip", core,
                std::string("materialized config drops '") + what +
                    "'"));
        }
    };
    expect(cfg.name == coreParamsName(core), "name");
    expect(cfg.inorder == core.inorder, "inorder");
    expect(cfg.width == core.width, "width");
    expect(cfg.robSize == core.robSize, "robSize");
    expect(cfg.instWindow == core.instWindow, "instWindow");
    expect(cfg.dcachePorts == core.dcachePorts, "dcachePorts");
    expect(cfg.numAlu == core.numAlu, "numAlu");
    expect(cfg.numMulDiv == core.numMulDiv, "numMulDiv");
    expect(cfg.numFp == core.numFp, "numFp");
    expect(cfg.frontendDepth == core.frontendDepth, "frontendDepth");
    expect(cfg.simdLanes == core.simdLanes, "simdLanes");
    expect(cfg.mispredictPenalty == core.frontendDepth + 4,
           "mispredictPenalty");
}

} // namespace

std::vector<Diag>
verifyTdgAtCore(const Tdg &tdg, const TdgAnalyzer &analyzer,
                const CoreParams &core, const TdgStatics *statics)
{
    std::vector<Diag> out = verifyTdg(tdg, analyzer, statics);
    verifyCoreParams(core, out);
    verifyCoreRoundtrip(core, out);

    // Core-parameterized plan check: SIMD legality fixed the trip
    // floor at kVectorLen; a wider core turns short loops into
    // partial vector groups. Flag (don't fail) those points.
    for (const Loop &loop : tdg.loops().loops()) {
        if (!analyzer.usable(BsaKind::Simd, loop.id))
            continue;
        const double trip = avgTripCount(tdg, loop.id);
        if (trip < static_cast<double>(core.simdLanes)) {
            out.push_back(loopDiag(
                "simd-lanes-trip", loop,
                "vectorized at " + std::to_string(core.simdLanes) +
                    " lanes but the average trip count is " +
                    std::to_string(trip) + ": partial groups at " +
                    coreParamsName(core),
                Diag::Severity::Warning));
        }
    }
    return out;
}

} // namespace prism
