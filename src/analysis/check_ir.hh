/**
 * @file
 * Compile-time switch for in-pipeline IR invariant assertions.
 *
 * Configured with -DPRISM_CHECK_IR=ON, the streaming front end
 * (TdgBuilder::feed) and the µDG constructors (appendCoreBatch and
 * friends) assert the layer-2 invariants of analysis/stream_verify
 * on every instruction as it streams through — backward-only
 * dependence indices, sids within the program, memory deps only on
 * loads. The guard is an `if constexpr` on kCheckIr, so a release
 * build (the default, kCheckIr == false) compiles the checks away
 * entirely: zero instructions, zero branches on the hot paths.
 *
 * Intended for debug builds:
 *   cmake -B build-check -S . -DPRISM_CHECK_IR=ON \
 *         -DCMAKE_BUILD_TYPE=Debug
 */

#ifndef PRISM_ANALYSIS_CHECK_IR_HH
#define PRISM_ANALYSIS_CHECK_IR_HH

namespace prism
{

#ifdef PRISM_CHECK_IR
inline constexpr bool kCheckIr = true;
#else
inline constexpr bool kCheckIr = false;
#endif

} // namespace prism

#endif // PRISM_ANALYSIS_CHECK_IR_HH
