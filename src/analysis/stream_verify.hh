/**
 * @file
 * Post-hoc legality verification of µDG instruction streams and BSA
 * transform outputs. The timing engine trusts MStreams completely —
 * a forward dependence index or a dangling spill-chain link would not
 * crash it, it would silently produce a plausible-but-wrong cycle
 * count. These checks re-establish the invariants the hand-packed
 * 32-bit representation cannot express in its types:
 *
 *  - "dep-bounds": register/memory/extra dependence indices point
 *    strictly backwards within the stream (which also proves the
 *    dependence graph acyclic within the window);
 *  - "mem-dep": memory dependences only on loads, and only at store
 *    producers; loads carry a nonzero dynamic latency;
 *  - "spill-chain": every instruction's extra-dep spill chain is
 *    resolvable — in-bounds links, no cycles, length consistent with
 *    numExtraDeps;
 *  - "regdef": dependence slots of untransformed core instructions
 *    agree with the static program — the producer writes exactly the
 *    register the consumer's source slot reads (RegDefMap
 *    consistency);
 *  - "occ-boundaries": a TransformOutput's occurrence markers are
 *    strictly increasing, in bounds, and each marks a startRegion
 *    instruction (well-nested region serialization).
 */

#ifndef PRISM_ANALYSIS_STREAM_VERIFY_HH
#define PRISM_ANALYSIS_STREAM_VERIFY_HH

#include <vector>

#include "prog/verifier.hh"
#include "tdg/transform.hh"
#include "uarch/udg.hh"

namespace prism
{

/**
 * Verify one stream. `prog` (optional) enables the regdef
 * cross-check between dependence slots and static register operands.
 */
std::vector<Diag> verifyStream(const MStream &s,
                               const Program *prog = nullptr);

/**
 * Verify a transform's output: the stream itself plus the occurrence
 * boundary/startRegion structure.
 */
std::vector<Diag> verifyTransformOutput(const TransformOutput &out,
                                        const Program *prog = nullptr);

} // namespace prism

#endif // PRISM_ANALYSIS_STREAM_VERIFY_HH
