#include "analysis/prog_analysis.hh"

#include <algorithm>
#include <cstdint>
#include <string>

#include "common/logging.hh"
#include "ir/cfg.hh"
#include "ir/dominators.hh"

namespace prism
{

namespace
{

/** Fixed-width bitset over a function's virtual registers. */
class RegSet
{
  public:
    explicit RegSet(std::size_t n_regs)
        : words_((n_regs + 63) / 64, 0), numRegs_(n_regs)
    {
    }

    void set(RegId r) { words_[r / 64] |= 1ull << (r % 64); }
    bool test(RegId r) const
    {
        return (words_[r / 64] >> (r % 64)) & 1u;
    }

    void
    setAll()
    {
        for (std::uint64_t &w : words_)
            w = ~0ull;
    }

    /** this &= o; returns true if anything changed. */
    bool
    intersect(const RegSet &o)
    {
        bool changed = false;
        for (std::size_t i = 0; i < words_.size(); ++i) {
            const std::uint64_t next = words_[i] & o.words_[i];
            changed |= next != words_[i];
            words_[i] = next;
        }
        return changed;
    }

    bool
    assign(const RegSet &o)
    {
        const bool changed = words_ != o.words_;
        words_ = o.words_;
        return changed;
    }

  private:
    std::vector<std::uint64_t> words_;
    std::size_t numRegs_;
};

Diag
mkDiag(const char *check, std::int32_t func, std::int32_t block,
       std::int32_t instr, std::string msg,
       Diag::Severity sev = Diag::Severity::Error)
{
    Diag d;
    d.severity = sev;
    d.check = check;
    d.func = func;
    d.block = block;
    d.instr = instr;
    d.message = std::move(msg);
    return d;
}

/**
 * Definite-assignment dataflow: IN[b] = ∩ OUT[pred]; OUT[b] = IN[b] ∪
 * defs(b). Entry starts with the argument registers; unreachable
 * blocks are skipped (reported separately). Reports every use of a
 * register that some path reaches undefined.
 */
void
checkDefBeforeUse(const Function &fn, const Cfg &cfg,
                  std::vector<Diag> &out)
{
    const std::size_t nb = fn.blocks.size();
    std::vector<RegSet> in(nb, RegSet(fn.numRegs));
    std::vector<RegSet> outset(nb, RegSet(fn.numRegs));

    // Optimistic initialization: everything defined, then the
    // intersection meet removes definitions not present on all paths.
    for (std::size_t b = 0; b < nb; ++b) {
        in[b].setAll();
        outset[b].setAll();
    }
    RegSet entry_in(fn.numRegs);
    for (RegId a = 0; a < fn.numArgs; ++a)
        entry_in.set(a);
    in[cfg.entry()].assign(entry_in);

    auto transfer = [&fn](const RegSet &src, std::int32_t b) {
        RegSet s = src;
        for (const Instr &ins : fn.blocks[b].instrs) {
            if (ins.dst != kNoReg && ins.dst < fn.numRegs)
                s.set(ins.dst);
        }
        return s;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (std::int32_t b : cfg.rpo()) {
            if (b != cfg.entry()) {
                RegSet meet(fn.numRegs);
                meet.setAll();
                const auto &preds = cfg.node(b).preds;
                if (preds.empty()) {
                    meet = RegSet(fn.numRegs); // dead head: nothing
                } else {
                    for (std::int32_t p : preds)
                        meet.intersect(outset[p]);
                }
                changed |= in[b].assign(meet);
            }
            changed |= outset[b].assign(transfer(in[b], b));
        }
    }

    // Report pass: walk each reachable block with its IN set.
    for (std::int32_t b : cfg.rpo()) {
        RegSet live = in[b];
        const BasicBlock &bb = fn.blocks[b];
        for (std::size_t i = 0; i < bb.instrs.size(); ++i) {
            const Instr &ins = bb.instrs[i];
            for (RegId r : ins.src) {
                if (r == kNoReg || r >= fn.numRegs)
                    continue; // reg-range is the verifier's check
                if (!live.test(r)) {
                    out.push_back(mkDiag(
                        "def-before-use", fn.id, b,
                        static_cast<std::int32_t>(i),
                        "register r" + std::to_string(r) +
                            " may be read before any definition"));
                }
            }
            if (ins.dst != kNoReg && ins.dst < fn.numRegs)
                live.set(ins.dst);
        }
    }
}

/**
 * Reducibility: every retreating edge found by the DFS must be a back
 * edge in the dominator sense (head dominates tail); otherwise the
 * cycle it closes is not a natural loop.
 */
void
checkReducibility(const Function &fn, const Cfg &cfg,
                  const Dominators &dom, std::vector<Diag> &out)
{
    const std::size_t nb = fn.blocks.size();
    enum : std::uint8_t { White, Grey, Black };
    std::vector<std::uint8_t> color(nb, White);
    // Iterative DFS keeping (node, next-successor) frames.
    std::vector<std::pair<std::int32_t, std::size_t>> stack;
    stack.emplace_back(cfg.entry(), 0);
    color[cfg.entry()] = Grey;
    while (!stack.empty()) {
        auto &[u, next] = stack.back();
        const auto &succs = cfg.node(u).succs;
        if (next == succs.size()) {
            color[u] = Black;
            stack.pop_back();
            continue;
        }
        const std::int32_t v = succs[next++];
        if (color[v] == White) {
            color[v] = Grey;
            stack.emplace_back(v, 0);
        } else if (color[v] == Grey && !dom.dominates(v, u)) {
            out.push_back(mkDiag(
                "irreducible-loop", fn.id, u, -1,
                "retreating edge to bb" + std::to_string(v) +
                    " whose head does not dominate it; the cycle is "
                    "not a natural loop"));
        }
    }
}

void
analyzeFunction(const Program &p, const Function &fn,
                std::vector<Diag> &out)
{
    const Cfg cfg = Cfg::reconstruct(p, fn.id);

    // Unreachable blocks (everything downstream skips them).
    for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
        if (cfg.rpoIndex(static_cast<std::int32_t>(b)) < 0) {
            out.push_back(mkDiag("unreachable-block", fn.id,
                                 static_cast<std::int32_t>(b), -1,
                                 "block is unreachable from the "
                                 "function entry"));
        }
    }

    // Fallthrough off the end: a reachable block with no successors
    // must terminate in Ret.
    bool has_reachable_ret = false;
    for (std::int32_t b : cfg.rpo()) {
        const BasicBlock &bb = fn.blocks[b];
        const Instr *term = bb.terminator();
        if (term != nullptr && term->op == Opcode::Ret) {
            has_reachable_ret = true;
            continue;
        }
        if (cfg.node(b).succs.empty()) {
            out.push_back(mkDiag(
                "fallthrough-off-end", fn.id, b,
                static_cast<std::int32_t>(bb.instrs.size()) - 1,
                "control reaches the end of the block with no "
                "successor and no Ret"));
        }
    }
    if (!has_reachable_ret) {
        out.push_back(mkDiag("no-return", fn.id, -1, -1,
                             "function has no reachable Ret"));
    }

    const Dominators dom = Dominators::compute(cfg);
    checkReducibility(fn, cfg, dom, out);
    checkDefBeforeUse(fn, cfg, out);
}

/** Warn about functions the entry function can never call into. */
void
checkCallGraph(const Program &p, std::vector<Diag> &out)
{
    const std::size_t nf = p.functions().size();
    std::vector<bool> reached(nf, false);
    std::vector<std::int32_t> work{p.entryFunction()};
    reached[p.entryFunction()] = true;
    while (!work.empty()) {
        const std::int32_t f = work.back();
        work.pop_back();
        for (const BasicBlock &bb : p.functions()[f].blocks) {
            for (const Instr &in : bb.instrs) {
                if (!opInfo(in.op).isCall)
                    continue;
                if (in.target < 0 ||
                    in.target >= static_cast<std::int32_t>(nf)) {
                    continue; // target-range is the verifier's check
                }
                if (!reached[in.target]) {
                    reached[in.target] = true;
                    work.push_back(in.target);
                }
            }
        }
    }
    for (std::size_t f = 0; f < nf; ++f) {
        if (!reached[f]) {
            out.push_back(mkDiag("dead-function",
                                 static_cast<std::int32_t>(f), -1, -1,
                                 "function is unreachable in the call "
                                 "graph from the entry function",
                                 Diag::Severity::Warning));
        }
    }
}

} // namespace

std::vector<Diag>
analyzeProgram(const Program &p)
{
    prism_assert(p.finalized(), "analysis requires a finalized program");
    std::vector<Diag> out = check(p);

    // The CFG passes assume structurally sound terminators; skip them
    // when the structural layer already found errors.
    if (hasErrors(out))
        return out;

    for (const Function &fn : p.functions())
        analyzeFunction(p, fn, out);
    checkCallGraph(p, out);
    return out;
}

void
analyzeOrDie(const Program &p)
{
    const std::vector<Diag> diags = analyzeProgram(p);
    for (const Diag &d : diags) {
        if (d.isError())
            panic("program analysis failed: %s",
                  toString(d, &p).c_str());
    }
}

} // namespace prism
