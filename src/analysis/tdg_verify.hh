/**
 * @file
 * Static verification of BSA transform legality: before a transform's
 * transformOccurrence() is allowed to rewrite a loop, the analysis
 * plan that claims the loop is targetable is re-derived independently
 * from the TDG's profiles and the statically classified recurrences
 * (TdgStatics), in the spirit of the legality checks vectorizing
 * compilers perform before committing a rewrite.
 *
 * Per-BSA preconditions verified against a `usable` plan:
 *  - SIMD ("simd-legal"): innermost, call-free, every loop-carried
 *    register dependence a classified induction/reduction idiom (and
 *    each cross-checked against the static classifier), no carried
 *    store-to-load dependence, trip count at least the vector length;
 *  - DP-CGRA ("cgra-legal"): the SIMD dependence conditions, plus
 *    compute/access slices that are disjoint, cover the loop body,
 *    and communicate only across declared send/recv sources;
 *    irregular (unknown-stride) memory on an offloaded loop is
 *    reported as a warning ("cgra-strides");
 *  - NS-DF ("nsdf-legal"): call-free nest within the 256-compound-
 *    instruction configuration bound, re-counted from the blocks;
 *  - Trace-P ("tracep-legal"): innermost, call-free, loop-back
 *    probability > 80%, a dominant hot path (>= 2/3 of iterations)
 *    that stays inside the loop body, starts at the header, and fits
 *    the 128-instruction trace configuration.
 *
 * Whole-TDG structural checks ("loop-map"): occurrence intervals in
 * bounds and non-inverted, iteration starts ascending and contained.
 */

#ifndef PRISM_ANALYSIS_TDG_VERIFY_HH
#define PRISM_ANALYSIS_TDG_VERIFY_HH

#include <vector>

#include "energy/area_model.hh"
#include "prog/verifier.hh"
#include "tdg/analyzer.hh"
#include "tdg/builder.hh"
#include "tdg/tdg.hh"
#include "uarch/core_config.hh"

namespace prism
{

/**
 * Re-derive the preconditions behind one (loop, BSA) plan the
 * analyzer marked usable. Plans not marked usable pass vacuously —
 * rejecting a loop is always legal. `statics` (optional) enables the
 * induction/reduction cross-check against the static classifier.
 */
std::vector<Diag> verifyBsaPreconditions(const Tdg &tdg,
                                         const TdgAnalyzer &analyzer,
                                         std::int32_t loop,
                                         BsaKind kind,
                                         const TdgStatics *statics
                                         = nullptr);

/** Verify every (loop, BSA) pair plus the loop-map structure. */
std::vector<Diag> verifyTdg(const Tdg &tdg, const TdgAnalyzer &analyzer,
                            const TdgStatics *statics = nullptr);

/**
 * Legality re-derivation at one parametric CoreParams point (a
 * prism_search grid/sample point, not just the six fixed cores).
 * Runs the core-independent verifyTdg() checks, then the
 * core-parameterized invariants:
 *  - "core-params": the point itself is well-formed (nonzero width /
 *    FU counts / lanes, an in-order point carries no ROB entries);
 *  - "core-roundtrip": coreConfigFrom() materializes exactly the
 *    requested parameters with the deterministic synthesized name
 *    (coreParamsName) and the makeCore mispredict-penalty relation;
 *  - "simd-lanes-trip" (warning): a usable SIMD plan whose average
 *    trip count is below this core's vector width degenerates to
 *    partial groups at this point.
 */
std::vector<Diag> verifyTdgAtCore(const Tdg &tdg,
                                  const TdgAnalyzer &analyzer,
                                  const CoreParams &core,
                                  const TdgStatics *statics = nullptr);

} // namespace prism

#endif // PRISM_ANALYSIS_TDG_VERIFY_HH
