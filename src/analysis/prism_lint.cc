/**
 * @file
 * prism_lint: standalone whole-pipeline static analysis driver.
 *
 * Three phases, each optional:
 *  1. guest-program dataflow analysis over every selected workload
 *     kernel (analysis/prog_analysis.hh) — always runs;
 *  2. TDG verification — loop-map structure and BSA plan legality
 *     cross-checks (analysis/tdg_verify.hh) plus core-stream
 *     verification, when any BSA phase is selected;
 *  3. transform-output verification — every usable (loop, BSA) pair
 *     is transformed and the emitted stream checked post-hoc
 *     (analysis/stream_verify.hh).
 *
 * Exit status: 0 when no error-severity diagnostics were produced
 * (warnings print but do not fail), 1 otherwise. Wired into CTest
 * under the `lint` label as `prism_lint --all-workloads --all-bsas`.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/behavior.hh"
#include "analysis/prog_analysis.hh"
#include "analysis/stream_verify.hh"
#include "analysis/tdg_verify.hh"
#include "common/artifact_cache.hh"
#include "common/logging.hh"
#include "prog/builder.hh"
#include "sim/memory.hh"
#include "tdg/analyzer.hh"
#include "tdg/builder.hh"
#include "tdg/constructor.hh"
#include "tdg/transform.hh"
#include "workloads/suite.hh"

namespace prism
{
namespace
{

struct Options
{
    std::vector<std::string> workloads; ///< empty + all == everything
    bool allWorkloads = false;
    bool micro = false;
    std::vector<BsaKind> bsas;
    std::uint64_t maxInsts = 60'000;
    bool verbose = false;
    bool behavior = false;     ///< static behavior axes + predictions
    bool differential = false; ///< static-vs-dynamic cross-check
    bool json = false;         ///< one JSON object per diagnostic
    std::string featuresPath;  ///< per-(workload, loop) feature CSV
    std::string cacheDir;
};

[[noreturn]] void
usage(int code)
{
    std::fprintf(
        code == 0 ? stdout : stderr,
        "usage: prism_lint [options]\n"
        "  --all-workloads       lint every Table 3 workload\n"
        "  --workload=NAME       lint one workload (repeatable)\n"
        "  --micro               also lint the vertical "
        "microbenchmarks\n"
        "  --all-bsas            verify plans + transform outputs for "
        "all BSAs\n"
        "  --bsa=KIND            one of simd|cgra|nsdf|tracep "
        "(repeatable)\n"
        "  --max-insts=N         trace budget per workload "
        "(default 60000)\n"
        "  --behavior            static behavior axes + per-(loop, "
        "BSA) predictions\n"
        "  --differential        cross-check static verdicts/strides "
        "against the\n"
        "                        dynamic TDG profile (implies a "
        "trace)\n"
        "  --features=FILE       write the per-(workload, loop) "
        "static feature CSV\n"
        "  --json                emit one JSON object per diagnostic "
        "on stdout\n"
        "  --cache-dir=DIR       reuse recorded traces/profiles\n"
        "  --verbose             print clean results too\n");
    std::exit(code);
}

BsaKind
parseBsa(const std::string &s)
{
    if (s == "simd" || s == "s")
        return BsaKind::Simd;
    if (s == "cgra" || s == "dpcgra" || s == "d")
        return BsaKind::DpCgra;
    if (s == "nsdf" || s == "n")
        return BsaKind::Nsdf;
    if (s == "tracep" || s == "t")
        return BsaKind::Tracep;
    fatal("unknown BSA '%s'", s.c_str());
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto val = [&arg](const char *flag) -> const char * {
            const std::size_t n = std::strlen(flag);
            if (arg.compare(0, n, flag) == 0 && arg[n] == '=')
                return arg.c_str() + n + 1;
            return nullptr;
        };
        if (arg == "--all-workloads") {
            opt.allWorkloads = true;
        } else if (arg == "--micro") {
            opt.micro = true;
        } else if (arg == "--all-bsas") {
            opt.bsas.assign(kAllBsas.begin(), kAllBsas.end());
        } else if (arg == "--behavior") {
            opt.behavior = true;
        } else if (arg == "--differential") {
            opt.differential = true;
        } else if (arg == "--json") {
            opt.json = true;
        } else if (arg == "--verbose" || arg == "-v") {
            opt.verbose = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else if (const char *v = val("--workload")) {
            opt.workloads.emplace_back(v);
        } else if (const char *v = val("--bsa")) {
            opt.bsas.push_back(parseBsa(v));
        } else if (const char *v = val("--max-insts")) {
            opt.maxInsts = std::strtoull(v, nullptr, 10);
        } else if (const char *v = val("--features")) {
            opt.featuresPath = v;
        } else if (const char *v = val("--cache-dir")) {
            opt.cacheDir = v;
        } else {
            std::fprintf(stderr, "prism_lint: unknown option '%s'\n",
                         arg.c_str());
            usage(2);
        }
    }
    if (!opt.allWorkloads && opt.workloads.empty())
        usage(2);
    return opt;
}

std::vector<const WorkloadSpec *>
selectWorkloads(const Options &opt)
{
    std::vector<const WorkloadSpec *> specs;
    if (opt.allWorkloads) {
        for (const WorkloadSpec &w : allWorkloads())
            specs.push_back(&w);
        if (opt.micro) {
            for (const WorkloadSpec &w : microbenchmarks())
                specs.push_back(&w);
        }
    }
    for (const std::string &name : opt.workloads)
        specs.push_back(&findWorkload(name));
    return specs;
}

/** Per-run diagnostic tally and printer. */
class Reporter
{
  public:
    Reporter(bool verbose, bool json) : verbose_(verbose), json_(json)
    {
    }

    /** Report one check context; returns the number of errors. */
    std::size_t
    report(const std::string &context, const std::vector<Diag> &diags,
           const Program *prog)
    {
        const std::size_t errors = numErrors(diags);
        errors_ += errors;
        warnings_ += diags.size() - errors;
        if (diags.empty()) {
            if (verbose_ && !json_)
                std::printf("  %-40s clean\n", context.c_str());
            return 0;
        }
        for (const Diag &d : diags) {
            if (json_) {
                // Splice the run context into the per-diag object so
                // each stdout line is one self-contained record.
                const std::string j = toJson(d, prog);
                std::printf("{\"context\":\"%s\",%s\n",
                            jsonEscape(context).c_str(),
                            j.c_str() + 1);
            } else {
                std::printf("  %s: %s\n", context.c_str(),
                            toString(d, prog).c_str());
            }
        }
        return errors;
    }

    std::size_t errors() const { return errors_; }
    std::size_t warnings() const { return warnings_; }

  private:
    bool verbose_;
    bool json_;
    std::size_t errors_ = 0;
    std::size_t warnings_ = 0;
};

/**
 * Static behavior phase for one workload: per-loop axis report,
 * per-(loop, BSA) prediction diagnostics, and the feature CSV row(s).
 */
void
lintBehavior(const std::string &name, const Program &prog,
             const BehaviorAnalysis &ba, const Options &opt,
             Reporter &rep, std::ofstream &features,
             bool &featuresHeader)
{
    if (opt.behavior) {
        if (!opt.json) {
            std::printf("%s behavior:\n%s", name.c_str(),
                        renderBehaviorReport(ba).c_str());
        }
        rep.report(name + "/behavior", behaviorPredictions(ba),
                   &prog);
    }
    if (features.is_open()) {
        writeBehaviorCsv(ba, name, featuresHeader, features);
        featuresHeader = false;
    }
}

void
lintTransforms(const LoadedWorkload &lw, const Options &opt,
               Reporter &rep)
{
    const Tdg &tdg = lw.tdg();
    const Program &prog = lw.program();
    const TdgAnalyzer analyzer(tdg);
    const TdgStatics statics(prog);

    rep.report(lw.name() + "/tdg", verifyTdg(tdg, analyzer, &statics),
               &prog);
    rep.report(lw.name() + "/core-stream",
               verifyStream(buildCoreStream(tdg.trace()), &prog),
               &prog);

    for (const Loop &loop : tdg.loops().loops()) {
        for (BsaKind kind : opt.bsas) {
            if (!analyzer.usable(kind, loop.id))
                continue;
            const auto occs = tdg.occurrencesOf(loop.id);
            if (occs.empty())
                continue;
            auto tf = makeTransform(kind, tdg, analyzer);
            if (!tf->canTarget(loop.id)) {
                Diag d;
                d.check = "plan-transform-skew";
                d.loop = loop.id;
                d.func = loop.func;
                d.message = "analyzer marks the loop usable but the "
                            "transform refuses to target it";
                rep.report(lw.name() + "/" + bsaName(kind), {d},
                           &prog);
                continue;
            }
            const TransformOutput out =
                tf->transformLoop(loop.id, occs);
            rep.report(lw.name() + "/" + bsaName(kind) + "/loop" +
                           std::to_string(loop.id),
                       verifyTransformOutput(out, &prog), &prog);
        }
    }
}

int
run(const Options &opt)
{
    if (!opt.cacheDir.empty())
        ArtifactCache::setGlobalDir(opt.cacheDir);

    const auto specs = selectWorkloads(opt);
    Reporter rep(opt.verbose, opt.json);

    std::ofstream features;
    bool featuresHeader = true;
    if (!opt.featuresPath.empty()) {
        features.open(opt.featuresPath);
        if (!features)
            fatal("cannot write '%s'", opt.featuresPath.c_str());
    }

    std::fprintf(opt.json ? stderr : stdout,
                 "prism_lint: %zu workload(s), %zu BSA(s), "
                 "max-insts %llu\n",
                 specs.size(), opt.bsas.size(),
                 static_cast<unsigned long long>(opt.maxInsts));

    const bool wantBehavior = opt.behavior || opt.differential ||
                              !opt.featuresPath.empty();
    for (const WorkloadSpec *spec : specs) {
        // Phase 1: guest-program dataflow analysis (no trace needed).
        ProgramBuilder pb;
        SimMemory mem;
        std::vector<std::int64_t> args;
        spec->build(pb, mem, args);
        const Program prog = pb.build();
        rep.report(std::string(spec->name) + "/program",
                   analyzeProgram(prog), &prog);

        // Phases 2+3: trace-dependent verification.
        if (!opt.bsas.empty() || opt.differential) {
            const auto lw = LoadedWorkload::load(*spec, opt.maxInsts);
            if (!opt.bsas.empty())
                lintTransforms(*lw, opt, rep);
            if (wantBehavior) {
                // Phase 4: static behavior derivation, cross-checked
                // against the dynamic profile of the same program.
                const TdgStatics statics(lw->program());
                const BehaviorAnalysis ba(statics);
                lintBehavior(lw->name(), lw->program(), ba, opt, rep,
                             features, featuresHeader);
                if (opt.differential) {
                    const TdgAnalyzer analyzer(lw->tdg());
                    rep.report(
                        lw->name() + "/behavior-differential",
                        behaviorDifferential(lw->tdg(), analyzer, ba),
                        &lw->program());
                }
            }
        } else if (wantBehavior) {
            // Phase 4, trace-free: static behavior axes only.
            const TdgStatics statics(prog);
            const BehaviorAnalysis ba(statics);
            lintBehavior(spec->name, prog, ba, opt, rep, features,
                         featuresHeader);
        }
    }

    std::fprintf(opt.json ? stderr : stdout,
                 "prism_lint: %zu error(s), %zu warning(s)\n",
                 rep.errors(), rep.warnings());
    return rep.errors() == 0 ? 0 : 1;
}

} // namespace
} // namespace prism

int
main(int argc, char **argv)
{
    return prism::run(prism::parseArgs(argc, argv));
}
