/**
 * @file
 * Guest-program dataflow analysis: whole-CFG checks that go beyond
 * the per-instruction structural verifier (prog/verifier.hh). Runs
 * compiler-style verification passes over the reconstructed CFG —
 * dominators, definite-assignment dataflow, loop-shape checks — so a
 * malformed workload kernel is reported with structural coordinates
 * instead of surfacing as a corrupt trace or a wrong speedup table.
 *
 * Checks (each a Diag::check slug):
 *  - "unreachable-block": block not reachable from the entry;
 *  - "fallthrough-off-end": a reachable block whose control can fall
 *    off the function without a Ret;
 *  - "def-before-use": a virtual register read that some path
 *    reaches with the register never written (arguments count as
 *    defined on entry);
 *  - "irreducible-loop": a retreating CFG edge whose head does not
 *    dominate its tail — the region is not a natural loop and no BSA
 *    transform region-forms over it;
 *  - "no-return": a function with no reachable Ret;
 *  - "dead-function" (warning): a function unreachable in the call
 *    graph from the entry function.
 */

#ifndef PRISM_ANALYSIS_PROG_ANALYSIS_HH
#define PRISM_ANALYSIS_PROG_ANALYSIS_HH

#include <vector>

#include "prog/program.hh"
#include "prog/verifier.hh"

namespace prism
{

/**
 * Run all dataflow checks over a finalized program. Includes the
 * structural verifier's diagnostics (the dataflow passes assume
 * structurally sound blocks, so both layers report together).
 */
std::vector<Diag> analyzeProgram(const Program &p);

/** Run analyzeProgram() and panic with the first error, if any. */
void analyzeOrDie(const Program &p);

} // namespace prism

#endif // PRISM_ANALYSIS_PROG_ANALYSIS_HH
