#include "analysis/stream_verify.hh"

#include <string>

namespace prism
{

namespace
{

Diag
streamDiag(const char *check, std::size_t idx, std::string msg)
{
    Diag d;
    d.check = check;
    d.streamIdx = static_cast<std::int64_t>(idx);
    d.message = std::move(msg);
    return d;
}

/** Attach the static coordinates of `sid` to a stream diagnostic. */
void
locate(Diag &d, const Program *prog, StaticId sid)
{
    if (prog == nullptr || sid == kNoStatic ||
        sid >= prog->numInstrs()) {
        return;
    }
    const InstrRef &ref = prog->locate(sid);
    d.func = ref.func;
    d.block = ref.block;
    d.instr = ref.index;
}

void
checkDepBounds(const MStream &s, std::size_t i, const MInst &mi,
               std::vector<Diag> &out)
{
    for (int slot = 0; slot < 3; ++slot) {
        const std::int32_t d = mi.dep[slot];
        if (d >= static_cast<std::int64_t>(i)) {
            out.push_back(streamDiag(
                "dep-bounds", i,
                "register dep slot " + std::to_string(slot) +
                    " points forward to " + std::to_string(d) +
                    " (cycle within the window)"));
        } else if (d < -1) {
            out.push_back(streamDiag(
                "dep-bounds", i,
                "register dep slot " + std::to_string(slot) +
                    " holds invalid index " + std::to_string(d)));
        }
    }
    if (mi.memDep >= static_cast<std::int64_t>(i)) {
        out.push_back(streamDiag(
            "dep-bounds", i,
            "memory dep points forward to " +
                std::to_string(mi.memDep)));
    } else if (mi.memDep < -1) {
        out.push_back(streamDiag("dep-bounds", i,
                                 "memory dep holds invalid index " +
                                     std::to_string(mi.memDep)));
    }
}

/**
 * Walk the spill chain by hand with bounds checks — the ExtraDepRange
 * iterator trusts chain links, which is exactly what a verifier must
 * not do on a possibly-corrupt stream. Returns false if the chain is
 * unresolvable (further extra-dep checks on this inst are skipped).
 */
bool
checkSpillChain(const MStream &s, std::size_t i, const MInst &mi,
                std::vector<Diag> &out)
{
    const std::size_t pool_size = s.spillSize();
    const unsigned spilled =
        mi.numExtraDeps > kInlineExtraDeps
            ? mi.numExtraDeps - kInlineExtraDeps
            : 0;
    if (spilled == 0) {
        if (mi.spillHead != kNoSpill) {
            out.push_back(streamDiag(
                "spill-chain", i,
                "instruction with " + std::to_string(mi.numExtraDeps) +
                    " extra deps has a dangling spill head"));
            return false;
        }
        return true;
    }
    std::uint32_t node = mi.spillHead;
    for (unsigned k = 0; k < spilled; ++k) {
        if (node == kNoSpill) {
            out.push_back(streamDiag(
                "spill-chain", i,
                "spill chain ends after " + std::to_string(k) +
                    " nodes; numExtraDeps implies " +
                    std::to_string(spilled)));
            return false;
        }
        if (node >= pool_size) {
            out.push_back(streamDiag(
                "spill-chain", i,
                "spill link " + std::to_string(node) +
                    " outside the pool of " +
                    std::to_string(pool_size) + " nodes"));
            return false;
        }
        node = s.spillPool()[node].next;
    }
    // A chain longer than numExtraDeps means a stale or shared tail;
    // a cycle would also land here (the bounded walk above cannot
    // loop forever, so excess length is the observable symptom).
    if (node != kNoSpill) {
        out.push_back(streamDiag(
            "spill-chain", i,
            "spill chain continues past the " +
                std::to_string(spilled) +
                " nodes numExtraDeps accounts for"));
        return false;
    }
    return true;
}

void
checkExtraDeps(const MStream &s, std::size_t i, const MInst &mi,
               std::vector<Diag> &out)
{
    if (!checkSpillChain(s, i, mi, out))
        return;
    for (const ExtraDep &xd : s.extraDeps(i)) {
        if (xd.idx >= static_cast<std::int64_t>(i)) {
            out.push_back(streamDiag(
                "dep-bounds", i,
                "extra dep points forward to " +
                    std::to_string(xd.idx) +
                    " (cycle within the window)"));
        } else if (xd.idx < 0) {
            out.push_back(streamDiag(
                "dep-bounds", i, "extra dep holds invalid index " +
                                     std::to_string(xd.idx)));
        }
    }
}

void
checkMemShape(const MStream &s, std::size_t i, const MInst &mi,
              std::vector<Diag> &out, const Program *prog)
{
    if (mi.isLoad && mi.isStore) {
        Diag d = streamDiag("mem-dep", i,
                            "instruction marked both load and store");
        locate(d, prog, mi.sid);
        out.push_back(std::move(d));
    }
    if (mi.isLoad && mi.memLat == 0) {
        Diag d = streamDiag("mem-dep", i,
                            "load without a dynamic memory latency");
        locate(d, prog, mi.sid);
        out.push_back(std::move(d));
    }
    if (!mi.isLoad && mi.memDep >= 0) {
        out.push_back(streamDiag(
            "mem-dep", i, "memory dep on a non-load instruction"));
    }
    if (mi.isLoad && mi.memDep >= 0 &&
        mi.memDep < static_cast<std::int64_t>(i)) {
        const MInst &prod = s[static_cast<std::size_t>(mi.memDep)];
        if (!prod.isStore) {
            out.push_back(streamDiag(
                "mem-dep", i,
                "memory dep producer " + std::to_string(mi.memDep) +
                    " is not a store"));
        }
    }
}

/**
 * RegDefMap consistency: an untransformed core instruction's
 * register-dependence slot must point at a producer that statically
 * writes the register the slot reads. Transform-inserted (synthetic)
 * producers or consumers, and producers in a different function
 * (call/return value flow crosses register spaces), are exempt — the
 * static register identities do not correspond there.
 */
void
checkRegDefConsistency(const MStream &s, std::size_t i,
                       const MInst &mi, const Program &prog,
                       std::vector<Diag> &out)
{
    if (mi.unit != ExecUnit::Core || mi.sid == kNoStatic)
        return;
    if (mi.sid >= prog.numInstrs())
        return; // sid-range reported elsewhere
    const Instr &cons = prog.instr(mi.sid);
    if (opInfo(cons.op).isSynthetic)
        return;
    // A transform that rewrites the opcode (Ld -> Vld, or an inserted
    // AccelSend/Vpack reusing the source instruction's sid) rewires
    // dep slots away from the static src registers; the slot <->
    // register correspondence only holds while the opcode survives.
    if (mi.op != cons.op)
        return;
    for (int slot = 0; slot < 3; ++slot) {
        const std::int32_t d = mi.dep[slot];
        if (d < 0 || d >= static_cast<std::int64_t>(i))
            continue; // dep-bounds reported elsewhere
        const MInst &pmi = s[static_cast<std::size_t>(d)];
        if (pmi.unit != ExecUnit::Core || pmi.sid == kNoStatic ||
            pmi.sid >= prog.numInstrs()) {
            continue;
        }
        const Instr &pin = prog.instr(pmi.sid);
        if (opInfo(pin.op).isSynthetic || pmi.op != pin.op)
            continue;
        if (prog.funcOf(pmi.sid) != prog.funcOf(mi.sid))
            continue; // cross-function value flow (call args/returns)
        const RegId read = cons.src[slot];
        if (read == kNoReg) {
            Diag diag = streamDiag(
                "regdef", i,
                "dep slot " + std::to_string(slot) +
                    " set but the instruction reads no register "
                    "there");
            locate(diag, &prog, mi.sid);
            out.push_back(std::move(diag));
            continue;
        }
        if (pin.dst != read) {
            Diag diag = streamDiag(
                "regdef", i,
                "dep slot " + std::to_string(slot) + " reads r" +
                    std::to_string(read) + " but producer " +
                    std::to_string(d) + " writes " +
                    (pin.dst == kNoReg ? std::string("no register")
                                       : "r" + std::to_string(pin.dst)));
            locate(diag, &prog, mi.sid);
            out.push_back(std::move(diag));
        }
    }
}

void
checkSidRange(const MStream &, std::size_t i, const MInst &mi,
              const Program &prog, std::vector<Diag> &out)
{
    if (mi.sid != kNoStatic && mi.sid >= prog.numInstrs()) {
        out.push_back(streamDiag(
            "sid-range", i,
            "static id " + std::to_string(mi.sid) +
                " outside the program's " +
                std::to_string(prog.numInstrs()) + " instructions"));
    }
}

} // namespace

std::vector<Diag>
verifyStream(const MStream &s, const Program *prog)
{
    std::vector<Diag> out;
    for (std::size_t i = 0; i < s.size(); ++i) {
        const MInst &mi = s[i];
        checkDepBounds(s, i, mi, out);
        checkExtraDeps(s, i, mi, out);
        checkMemShape(s, i, mi, out, prog);
        if (prog != nullptr) {
            checkSidRange(s, i, mi, *prog, out);
            checkRegDefConsistency(s, i, mi, *prog, out);
        }
    }
    return out;
}

std::vector<Diag>
verifyTransformOutput(const TransformOutput &t, const Program *prog)
{
    std::vector<Diag> out = verifyStream(t.stream, prog);
    const std::size_t n = t.stream.size();
    for (std::size_t k = 0; k < t.occBoundaries.size(); ++k) {
        const std::size_t b = t.occBoundaries[k];
        if (b > n) {
            out.push_back(streamDiag(
                "occ-boundaries", b,
                "occurrence " + std::to_string(k) +
                    " starts beyond the stream end"));
            continue;
        }
        if (k > 0 && b < t.occBoundaries[k - 1]) {
            out.push_back(streamDiag(
                "occ-boundaries", b,
                "occurrence " + std::to_string(k) +
                    " starts before occurrence " +
                    std::to_string(k - 1)));
        }
        // An occurrence may legally be empty (boundary == next
        // boundary or == size); only non-empty ones must lead with a
        // region-serialization marker.
        const std::size_t next = k + 1 < t.occBoundaries.size()
                                     ? t.occBoundaries[k + 1]
                                     : n;
        if (b < next && b < n && !t.stream[b].startRegion) {
            out.push_back(streamDiag(
                "occ-boundaries", b,
                "occurrence " + std::to_string(k) +
                    " does not begin with a startRegion marker"));
        }
    }
    return out;
}

} // namespace prism
