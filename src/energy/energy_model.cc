#include "energy/energy_model.hh"

#include <cmath>

#include "common/logging.hh"
#include "energy/sram_model.hh"

namespace prism
{

EnergyModel::EnergyModel(const CoreConfig &core,
                         unsigned num_attached_bsas)
{
    EnergyTable &t = table_;

    // Structure scale: wider machines with larger windows pay more
    // per instruction in rename/wakeup/select/commit (McPAT trend).
    const double w = static_cast<double>(core.width);
    const double rob = core.inorder
                           ? 0.0
                           : static_cast<double>(core.robSize);
    const double ooo_scale =
        core.inorder ? 0.0 : std::sqrt((w * rob) / (2.0 * 64.0));

    // I-cache read share of fetch from the CACTI substitute.
    const SramEstimate icache =
        estimateSram({32 * 1024, 2, 64 / 4, 1, 1});
    t.fetch = icache.readEnergy * 0.6 + 1.0 + 0.4 * w;

    if (core.inorder) {
        t.dispatch = 1.5;
        t.issue = 0.5;
        t.commit = 0.5;
    } else {
        t.dispatch = 2.0 + 3.5 * ooo_scale;  // rename + ROB + IQ insert
        t.issue = 1.0 + 3.0 * ooo_scale;     // wakeup + select
        t.commit = 0.5 + 1.5 * ooo_scale;    // ROB read + ARF update
    }
    t.regRead = 0.8 + 0.25 * w;
    t.regWrite = 1.2 + 0.35 * w;

    const SramEstimate l1 =
        estimateSram({64 * 1024, 2, 64, core.dcachePorts, 1});
    const SramEstimate l2 = estimateSram({2 * 1024 * 1024, 8, 64, 1, 1});
    t.l1d = l1.readEnergy;
    t.l2 = l2.readEnergy;
    t.dram = 120.0;

    t.branchPredict = 2.0;
    // Flushing a wider/deeper machine wastes more in-flight work.
    t.mispredictFlush = core.inorder ? 4.0 : 8.0 + 10.0 * ooo_scale;

    // Leakage: calibrated so per-cycle static energy tracks core size.
    if (core.inorder) {
        t.coreLeakage = 8.0;
        t.coreFrontendLeakage = 3.0;
    } else {
        t.coreLeakage = 10.0 + 22.0 * (w * std::sqrt(rob)) / 16.0;
        t.coreFrontendLeakage = 0.45 * t.coreLeakage;
    }
    t.accelLeakage = 3.0 * static_cast<double>(num_attached_bsas);
}

EnergyBreakdown
EnergyModel::breakdown(const EventCounts &ev, Cycle cycles,
                       Cycle gated_cycles) const
{
    const EnergyTable &t = table_;
    EnergyBreakdown b;

    const auto n = [](std::uint64_t v) {
        return static_cast<double>(v);
    };

    b.corePipeline = n(ev.coreFetches) * t.fetch +
                     n(ev.coreDispatches) * t.dispatch +
                     n(ev.coreIssues) * t.issue +
                     n(ev.coreCommits) * t.commit +
                     n(ev.coreRegReads) * t.regRead +
                     n(ev.coreRegWrites) * t.regWrite;

    const double fu_cost[4] = {t.fuAlu, t.fuMulDiv, t.fuFp, t.fuAgu};
    double fu = 0.0;
    double accel_ops = 0.0;
    for (std::size_t u = 0; u < kNumExecUnits; ++u) {
        for (std::size_t p = 0; p < 4; ++p)
            fu += n(ev.fuOps[u][p]) * fu_cost[p];
        if (u != static_cast<std::size_t>(ExecUnit::Core))
            accel_ops += n(ev.unitInsts[u]);
    }
    b.functionalUnits = fu;

    b.memory = n(ev.loads + ev.stores) * t.l1d +
               n(ev.l2Accesses) * t.l2 + n(ev.memAccesses) * t.dram;

    b.control = n(ev.branches) * t.branchPredict +
                n(ev.mispredicts) * t.mispredictFlush;

    b.accelerator = accel_ops * t.accelOpOverhead +
                    n(ev.accelConfigs) * t.accelConfig +
                    n(ev.accelComms) * t.accelComm +
                    n(ev.dfSwitches) * t.dfSwitch +
                    n(ev.accelWbBusXfers) * t.wbBusXfer +
                    n(ev.storeBufWrites) * t.storeBufWrite;

    prism_assert(gated_cycles <= cycles, "gated cycles exceed total");
    b.leakage = static_cast<double>(cycles) *
                    (t.coreLeakage + t.accelLeakage) -
                static_cast<double>(gated_cycles) *
                    t.coreFrontendLeakage;
    return b;
}

PicoJoule
EnergyModel::energy(const EventCounts &ev, Cycle cycles,
                    Cycle gated_cycles) const
{
    return breakdown(ev, cycles, gated_cycles).total();
}

} // namespace prism
