/**
 * @file
 * Area model (22nm). Core areas follow McPAT-like magnitudes; BSA
 * areas follow the respective publications ([17] DySER, [18] BERET,
 * [36] SEED), as the paper does in Section 4. Areas exclude the
 * shared L2 (design comparisons in Figure 12 are over core-private
 * area).
 */

#ifndef PRISM_ENERGY_AREA_MODEL_HH
#define PRISM_ENERGY_AREA_MODEL_HH

#include "common/types.hh"
#include "uarch/core_config.hh"

namespace prism
{

/** Which BSA, for area/selection purposes. */
enum class BsaKind { Simd, DpCgra, Nsdf, Tracep };

/** All BSAs, in the paper's S/D/N/T naming order. */
constexpr std::array<BsaKind, 4> kAllBsas = {
    BsaKind::Simd, BsaKind::DpCgra, BsaKind::Nsdf, BsaKind::Tracep};

/** One-letter code used in Figure 12 config names (S/D/N/T). */
char bsaLetter(BsaKind b);

/** Human-readable BSA name. */
const char *bsaName(BsaKind b);

/** Core area including L1 caches, mm^2 at 22nm. */
MilliMeter2 coreArea(CoreKind kind);

/**
 * Parametric core area for arbitrary CoreParams points: L1s + front
 * end linear in width, FU pool per unit, and (for OOO) a rename/
 * window/bypass term growing as width^1.25 * sqrt(ROB) — a fit to
 * the six fixed kinds' McPAT-trend table above (within ~3% at each).
 */
MilliMeter2 coreArea(const CoreParams &p);

/** Additional area of one attached BSA, mm^2 at 22nm. */
MilliMeter2 bsaArea(BsaKind kind);

/** Area of a core plus a set of BSAs (bitmask over kAllBsas order). */
MilliMeter2 exoCoreArea(CoreKind core, unsigned bsa_mask);

/** Parametric-core variant of exoCoreArea. */
MilliMeter2 exoCoreArea(const CoreParams &p, unsigned bsa_mask);

} // namespace prism

#endif // PRISM_ENERGY_AREA_MODEL_HH
