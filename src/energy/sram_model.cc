#include "energy/sram_model.hh"

#include <cmath>

#include "common/logging.hh"

namespace prism
{

SramEstimate
estimateSram(const SramConfig &cfg)
{
    prism_assert(cfg.sizeBytes > 0 && cfg.assoc > 0, "bad SRAM shape");

    // Calibration anchors (22nm, CACTI-like magnitudes):
    //   64KiB 2-way cache: ~8 pJ/read, ~0.12 mm^2, ~2 pJ/cyc leakage.
    const double kb = static_cast<double>(cfg.sizeBytes) / 1024.0;
    const double size_scale = std::sqrt(kb / 64.0);
    const double assoc_scale =
        1.0 + 0.15 * (static_cast<double>(cfg.assoc) - 2.0);
    const double port_scale =
        0.5 * static_cast<double>(cfg.readPorts + cfg.writePorts);
    const double line_scale =
        std::sqrt(static_cast<double>(cfg.lineBytes) / 64.0);

    SramEstimate est;
    est.readEnergy =
        8.0 * size_scale * assoc_scale * line_scale;
    est.writeEnergy = est.readEnergy * 1.2;
    est.leakagePerCycle = 2.0 * (kb / 64.0) * port_scale;
    est.area = 0.12 * (kb / 64.0) * (0.7 + 0.3 * port_scale);
    return est;
}

} // namespace prism
