/**
 * @file
 * McPAT-substitute event-based energy model. The pipeline model
 * tallies energy events (EventCounts); this module converts them to
 * energy, with per-structure costs scaled by the core configuration
 * (wider cores pay more per instruction in rename/issue/commit
 * structures) and leakage proportional to cycles. NS-DF and Trace-P
 * offload regions may power-gate the core front-end (paper 3.1), which
 * callers express through `gatedCycles`.
 *
 * Absolute joules are synthetic; all results in the evaluation are
 * relative energies, as in the paper's own validation methodology.
 */

#ifndef PRISM_ENERGY_ENERGY_MODEL_HH
#define PRISM_ENERGY_ENERGY_MODEL_HH

#include <string>

#include "common/types.hh"
#include "uarch/core_config.hh"
#include "uarch/udg.hh"

namespace prism
{

/** Per-event energy table for one machine configuration (pJ). */
struct EnergyTable
{
    // Core pipeline, per event
    double fetch = 0;
    double dispatch = 0;
    double issue = 0;
    double commit = 0;
    double regRead = 0;
    double regWrite = 0;

    // Functional units, per op (by Table 4 pool)
    double fuAlu = 2.0;
    double fuMulDiv = 6.0;
    double fuFp = 8.0;
    double fuAgu = 2.0;

    // Memory hierarchy, per access
    double l1d = 8.0;
    double l2 = 25.0;
    double dram = 120.0;

    // Control
    double branchPredict = 2.0;
    double mispredictFlush = 0;

    // Accelerator structures
    double accelOpOverhead = 1.5; ///< dataflow tag match / routing
    double accelConfig = 200.0;
    double accelComm = 3.0;
    double dfSwitch = 1.0;
    double wbBusXfer = 1.0;
    double storeBufWrite = 2.0;

    // Leakage, per cycle
    double coreLeakage = 0;
    double coreFrontendLeakage = 0; ///< gateable share of coreLeakage
    double accelLeakage = 3.0;      ///< per attached BSA
};

/** Energy broken into coarse components (diagnostics/plots). */
struct EnergyBreakdown
{
    PicoJoule corePipeline = 0;
    PicoJoule functionalUnits = 0;
    PicoJoule memory = 0;
    PicoJoule control = 0;
    PicoJoule accelerator = 0;
    PicoJoule leakage = 0;

    PicoJoule total() const
    {
        return corePipeline + functionalUnits + memory + control +
               accelerator + leakage;
    }
};

/**
 * Event-to-energy conversion for a given core. Instances are cheap;
 * build one per core configuration.
 */
class EnergyModel
{
  public:
    explicit EnergyModel(const CoreConfig &core,
                         unsigned num_attached_bsas = 0);

    /**
     * Total energy of a run.
     * @param cycles total execution cycles (leakage)
     * @param gated_cycles cycles during which the core front-end was
     *        power-gated (offload-engine regions)
     */
    PicoJoule energy(const EventCounts &ev, Cycle cycles,
                     Cycle gated_cycles = 0) const;

    /** Component-wise version of energy(). */
    EnergyBreakdown breakdown(const EventCounts &ev, Cycle cycles,
                              Cycle gated_cycles = 0) const;

    const EnergyTable &table() const { return table_; }

  private:
    EnergyTable table_;
};

} // namespace prism

#endif // PRISM_ENERGY_ENERGY_MODEL_HH
