#include "energy/area_model.hh"

#include <cmath>

#include "common/logging.hh"

namespace prism
{

char
bsaLetter(BsaKind b)
{
    switch (b) {
      case BsaKind::Simd: return 'S';
      case BsaKind::DpCgra: return 'D';
      case BsaKind::Nsdf: return 'N';
      case BsaKind::Tracep: return 'T';
    }
    panic("bad BSA");
}

const char *
bsaName(BsaKind b)
{
    switch (b) {
      case BsaKind::Simd: return "SIMD";
      case BsaKind::DpCgra: return "DP-CGRA";
      case BsaKind::Nsdf: return "NS-DF";
      case BsaKind::Tracep: return "Trace-P";
    }
    panic("bad BSA");
}

MilliMeter2
coreArea(CoreKind kind)
{
    // Core + L1s, 22nm. Magnitudes follow McPAT trends: OOO cost grows
    // superlinearly with width (rename, bypass, window CAMs).
    switch (kind) {
      case CoreKind::IO2: return 1.5;
      case CoreKind::OOO1: return 1.9;
      case CoreKind::OOO2: return 2.6;
      case CoreKind::OOO4: return 5.4;
      case CoreKind::OOO6: return 8.6;
      case CoreKind::OOO8: return 12.5;
    }
    panic("bad core kind");
}

MilliMeter2
coreArea(const CoreParams &p)
{
    const double fu = 0.10 * p.numAlu + 0.15 * p.numMulDiv +
                      0.25 * p.numFp + 0.30 * p.dcachePorts;
    const double frontend = 0.10 * p.width;
    if (p.inorder)
        return 0.4 + frontend + fu; // no rename/ROB/window CAMs
    const double ooo = 0.036 * std::pow(p.width, 1.25) *
                       std::sqrt(static_cast<double>(p.robSize));
    return 0.8 + frontend + fu + ooo;
}

MilliMeter2
bsaArea(BsaKind kind)
{
    switch (kind) {
      case BsaKind::Simd: return 0.6;    // vector RF + 256b datapath
      case BsaKind::DpCgra: return 0.9;  // 64-FU fabric [17]
      case BsaKind::Nsdf: return 0.8;    // SEED-like dataflow [36]
      case BsaKind::Tracep: return 0.7;  // BERET-like engine [18]
    }
    panic("bad BSA");
}

namespace
{

MilliMeter2
withBsas(MilliMeter2 area, unsigned bsa_mask)
{
    for (std::size_t i = 0; i < kAllBsas.size(); ++i) {
        if (bsa_mask & (1u << i))
            area += bsaArea(kAllBsas[i]);
    }
    return area;
}

} // namespace

MilliMeter2
exoCoreArea(CoreKind core, unsigned bsa_mask)
{
    return withBsas(coreArea(core), bsa_mask);
}

MilliMeter2
exoCoreArea(const CoreParams &p, unsigned bsa_mask)
{
    return withBsas(coreArea(p), bsa_mask);
}

} // namespace prism
