/**
 * @file
 * CACTI-substitute analytical SRAM model (22nm). Provides access
 * energy, leakage power, and area for cache-like and buffer-like
 * structures. The absolute values are calibrated to published 22nm
 * magnitudes; the model's purpose — consistent *relative* scaling of
 * structure cost with capacity, associativity, and port count — is
 * what the paper's methodology needs.
 */

#ifndef PRISM_ENERGY_SRAM_MODEL_HH
#define PRISM_ENERGY_SRAM_MODEL_HH

#include <cstdint>

#include "common/types.hh"

namespace prism
{

/** Geometry of an SRAM structure. */
struct SramConfig
{
    std::uint64_t sizeBytes = 64 * 1024;
    unsigned assoc = 2;       ///< 1 for RAM-style buffers
    unsigned lineBytes = 64;  ///< access granularity
    unsigned readPorts = 1;
    unsigned writePorts = 1;
};

/** Derived cost estimates for an SRAM structure. */
struct SramEstimate
{
    PicoJoule readEnergy = 0;   ///< per access
    PicoJoule writeEnergy = 0;  ///< per access
    PicoJoule leakagePerCycle = 0;
    MilliMeter2 area = 0;
};

/**
 * Estimate the cost of an SRAM structure at 22nm. Energy scales with
 * sqrt(capacity) (bitline/wordline length) and associativity (parallel
 * tag+data read); leakage and area scale linearly with capacity and
 * port count.
 */
SramEstimate estimateSram(const SramConfig &cfg);

} // namespace prism

#endif // PRISM_ENERGY_SRAM_MODEL_HH
