/**
 * @file
 * Content-addressed on-disk artifact store: "record once, explore
 * many" (paper Section 2.6) generalized beyond traces to every
 * expensive derived artifact — TDG profiles, per-(workload, core)
 * model evaluation tables, and whatever future kinds register.
 *
 * Each artifact belongs to a typed namespace (ArtifactKind): a short
 * slug plus a code-version fingerprint that is baked into every key,
 * so entries self-invalidate whenever the producing code declares a
 * new version — a stale file is simply never looked up again (zero
 * silent staleness). The caller mixes the content identity (program
 * fingerprint, instruction budget, machine-configuration hash, ...)
 * into an ArtifactKey; the cache addresses files by the combined
 * (kind, version, key) hash and repeats that hash in the file header
 * so a copied or renamed entry is rejected on load.
 *
 * Robustness mirrors the trace serializer: writes go to a unique
 * temp file renamed into place (an interrupted run can never leave a
 * half-written entry under the final path), and every read is
 * checked — a truncated, corrupt, or mismatched file counts as a
 * miss, is logged, and will be overwritten by the next store.
 *
 * Thread-safety: all members are safe to call concurrently; the
 * process-wide instance is installed once (before workers start) via
 * setGlobalDir().
 */

#ifndef PRISM_COMMON_ARTIFACT_CACHE_HH
#define PRISM_COMMON_ARTIFACT_CACHE_HH

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstring>
#include <functional>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace prism
{

// The compact binary payloads are written in native byte order; all
// supported targets are little-endian (matching the explicit
// little-endian trace format).
static_assert(std::endian::native == std::endian::little,
              "artifact payloads assume a little-endian target");

/**
 * A typed namespace within the artifact store. `version` is the
 * producing code's fingerprint: bump it whenever the payload format
 * *or the computation that fills it* changes, and every existing
 * entry of the kind self-invalidates (the version participates in
 * the content address).
 */
struct ArtifactKind
{
    const char *name;      ///< short slug, e.g. "trace", "model"
    std::uint64_t version; ///< code/format fingerprint
};

/** FNV-1a accumulator for the content-identity half of an address. */
class ArtifactKey
{
  public:
    ArtifactKey &
    mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h_ ^= (v >> (8 * i)) & 0xFF;
            h_ *= 0x100000001B3ull;
        }
        return *this;
    }

    ArtifactKey &
    mix(std::string_view s)
    {
        for (const char c : s) {
            h_ ^= static_cast<unsigned char>(c);
            h_ *= 0x100000001B3ull;
        }
        mix(static_cast<std::uint64_t>(s.size()));
        return *this;
    }

    std::uint64_t hash() const { return h_; }

  private:
    std::uint64_t h_ = 0xCBF29CE484222325ull;
};

/** Byte-counted payload writer over an output stream. */
class ArtifactWriter
{
  public:
    explicit ArtifactWriter(std::ostream &os) : os_(&os) {}

    void
    bytes(const void *p, std::size_t n)
    {
        os_->write(static_cast<const char *>(p),
                   static_cast<std::streamsize>(n));
        bytes_ += n;
    }

    void u64(std::uint64_t v) { bytes(&v, sizeof v); }
    void i64(std::int64_t v) { bytes(&v, sizeof v); }
    void u32(std::uint32_t v) { bytes(&v, sizeof v); }
    void i32(std::int32_t v) { bytes(&v, sizeof v); }
    void u8(std::uint8_t v) { bytes(&v, sizeof v); }
    void b(bool v) { u8(v ? 1 : 0); }

    void
    f64(double v)
    {
        // Bit-exact round trip: cache-loaded doubles must compare
        // equal to freshly computed ones.
        u64(std::bit_cast<std::uint64_t>(v));
    }

    /** A vector of trivially-copyable elements: count + raw bytes. */
    template <typename T>
    void
    vec(const std::vector<T> &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        u64(v.size());
        if (!v.empty())
            bytes(v.data(), v.size() * sizeof(T));
    }

    /**
     * The underlying stream, for payloads with their own serializer
     * (e.g. the packed trace records). Pair with noteRawBytes() to
     * keep the byte counters honest.
     */
    std::ostream &stream() { return *os_; }
    void noteRawBytes(std::uint64_t n) { bytes_ += n; }

    bool ok() const { return static_cast<bool>(*os_); }
    std::uint64_t bytesWritten() const { return bytes_; }

  private:
    std::ostream *os_;
    std::uint64_t bytes_ = 0;
};

/**
 * Checked payload reader: every accessor validates stream state, and
 * a short read latches fail() instead of yielding garbage. Callers
 * read optimistically and test ok() once at the end.
 */
class ArtifactReader
{
  public:
    explicit ArtifactReader(std::istream &is) : is_(&is) {}

    bool
    bytes(void *p, std::size_t n)
    {
        if (failed_)
            return false;
        is_->read(static_cast<char *>(p),
                  static_cast<std::streamsize>(n));
        if (!*is_ ||
            is_->gcount() != static_cast<std::streamsize>(n)) {
            failed_ = true;
            return false;
        }
        bytes_ += n;
        return true;
    }

    std::uint64_t
    u64()
    {
        std::uint64_t v = 0;
        bytes(&v, sizeof v);
        return v;
    }

    std::int64_t
    i64()
    {
        std::int64_t v = 0;
        bytes(&v, sizeof v);
        return v;
    }

    std::uint32_t
    u32()
    {
        std::uint32_t v = 0;
        bytes(&v, sizeof v);
        return v;
    }

    std::int32_t
    i32()
    {
        std::int32_t v = 0;
        bytes(&v, sizeof v);
        return v;
    }

    std::uint8_t
    u8()
    {
        std::uint8_t v = 0;
        bytes(&v, sizeof v);
        return v;
    }

    bool b() { return u8() != 0; }
    double f64() { return std::bit_cast<double>(u64()); }

    /**
     * Read an element count with a sanity cap, so a corrupt length
     * field can never drive a huge allocation. Fails the stream and
     * returns 0 when the recorded count exceeds `limit`.
     */
    std::uint64_t
    count(std::uint64_t limit)
    {
        const std::uint64_t n = u64();
        if (n > limit) {
            failed_ = true;
            return 0;
        }
        return n;
    }

    /** A vector written by ArtifactWriter::vec. */
    template <typename T>
    bool
    vec(std::vector<T> &out, std::uint64_t limit)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        const std::uint64_t n = count(limit);
        if (failed_)
            return false;
        out.resize(n);
        return n == 0 || bytes(out.data(), n * sizeof(T));
    }

    /**
     * The underlying stream, for payloads with their own checked
     * deserializer (e.g. the packed trace records). Pair with
     * noteRawBytes() to keep the byte counters honest.
     */
    std::istream &stream() { return *is_; }
    void noteRawBytes(std::uint64_t n) { bytes_ += n; }

    /** Latch a failure discovered by the caller (bad invariant). */
    void fail() { failed_ = true; }

    bool ok() const { return !failed_ && static_cast<bool>(*is_); }

    /** True when the payload consumed the file exactly. */
    bool
    atEof() const
    {
        return is_->peek() == std::istream::traits_type::eof();
    }

    std::uint64_t bytesRead() const { return bytes_; }

  private:
    std::istream *is_;
    std::uint64_t bytes_ = 0;
    bool failed_ = false;
};

/** Monotone per-kind counters describing cache effectiveness. */
struct ArtifactStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;   ///< lookups with no usable file
    std::uint64_t rejected = 0; ///< files present but failed validation
    std::uint64_t stores = 0;
    std::uint64_t bytesRead = 0;    ///< file bytes of hits (incl. header)
    std::uint64_t bytesWritten = 0; ///< file bytes of stores (incl. header)

    ArtifactStats &operator+=(const ArtifactStats &o);
};

class ArtifactCache;

/**
 * A per-thread view of one ArtifactCache for sweep workers: while a
 * handle is alive on a thread, every load/store that thread performs
 * against the handle's cache records its statistics into the
 * handle's private (non-atomic) counters instead of the shared ones,
 * and the totals are folded into the shared counters in one batch
 * when the handle flushes or dies. Sweeps that probe the cache for
 * every (workload, core) model thus stop ping-ponging the shared
 * stats cache lines between workers.
 *
 * Handles nest (the previous handle is restored on destruction) and
 * are strictly thread-local: create one on the thread that does the
 * cache traffic, never share one across tasks.
 */
class ArtifactCacheHandle
{
  public:
    /** Bind to `cache` (nullptr = inert no-op handle). */
    explicit ArtifactCacheHandle(const ArtifactCache *cache);
    ~ArtifactCacheHandle();

    ArtifactCacheHandle(const ArtifactCacheHandle &) = delete;
    ArtifactCacheHandle &operator=(const ArtifactCacheHandle &) =
        delete;

    const ArtifactCache *cache() const { return cache_; }

    /** Fold the private counters into the shared ones now. */
    void flush();

    /** Private counters for one kind accumulated so far. */
    ArtifactStats localStats(const ArtifactKind &kind) const;

  private:
    friend class ArtifactCache;

    struct KindStats
    {
        const char *name;
        ArtifactStats stats;
    };

    ArtifactStats &localFor(const char *name);

    const ArtifactCache *cache_;
    ArtifactCacheHandle *prev_ = nullptr; ///< nesting chain
    std::vector<KindStats> kinds_;
};

class ArtifactCache
{
  public:
    /** Open (creating if needed) a cache rooted at `dir`; fatal if
     *  the directory cannot be created. */
    explicit ArtifactCache(std::string dir);

    const std::string &dir() const { return dir_; }

    /**
     * On-disk location of one artifact. `stem` is a human-readable
     * prefix (typically the workload name) that participates in the
     * address; the content identity lives in (kind, key).
     */
    std::string pathFor(const ArtifactKind &kind,
                        std::string_view stem,
                        const ArtifactKey &key) const;

    /**
     * Persist one artifact: header plus whatever `payload` writes.
     * Atomic (unique temp file + rename); fatal on I/O failure, so a
     * store either completes or the process stops — never a partial
     * file under the final path.
     */
    void store(const ArtifactKind &kind, std::string_view stem,
               const ArtifactKey &key,
               const std::function<void(ArtifactWriter &)> &payload)
        const;

    /**
     * Look up one artifact. Returns false on a miss; a
     * present-but-invalid file (truncated, corrupt, wrong key,
     * `payload` returning false, trailing bytes) counts as a
     * rejected miss and is logged. `payload` must leave the reader
     * ok() and fully consumed to count as a hit.
     */
    bool load(const ArtifactKind &kind, std::string_view stem,
              const ArtifactKey &key,
              const std::function<bool(ArtifactReader &)> &payload)
        const;

    /** One on-disk entry surfaced by enumerate(). */
    struct Entry
    {
        std::string stem; ///< human-readable prefix (workload name)
        std::string kind; ///< kind slug, e.g. "basecore"
        std::string path; ///< absolute/relative file path as stored
        std::uint64_t bytes = 0;
    };

    /**
     * List every artifact currently on disk, optionally restricted
     * to one kind slug (empty = all kinds). Sorted by (kind, stem,
     * path) so output is stable across filesystems. Entries whose
     * names do not parse as `<stem>-<kind>-<hex16>.art` are skipped.
     */
    std::vector<Entry> enumerate(std::string_view kind = {}) const;

    /** Counters for one kind (zeros if never touched). */
    ArtifactStats stats(const ArtifactKind &kind) const;

    /** (kind slug, counters) for every kind touched, in first-touch
     *  order. */
    std::vector<std::pair<std::string, ArtifactStats>> allStats()
        const;

    // ---- Process-wide opt-in instance (e.g. from --cache-dir) ----

    /** Install the global cache; empty dir disables it. */
    static void setGlobalDir(const std::string &dir);

    /** The installed global cache, or nullptr when disabled. */
    static const ArtifactCache *global();

  private:
    friend class ArtifactCacheHandle;

    /**
     * One shared counter on its own destructive-interference
     * boundary. The six counters of a kind used to share two cache
     * lines, so concurrent sweep workers bumping hits/bytesRead
     * false-shared against each other; padding plus the
     * ArtifactCacheHandle batching removes that traffic.
     */
    struct alignas(64) PaddedCounter
    {
        std::atomic<std::uint64_t> v{0};
    };

    struct Counters
    {
        std::string name;
        PaddedCounter hits;
        PaddedCounter misses;
        PaddedCounter rejected;
        PaddedCounter stores;
        PaddedCounter bytesRead;
        PaddedCounter bytesWritten;
    };

    /** Full content address of (kind, key): version-baked. */
    static std::uint64_t addressOf(const ArtifactKind &kind,
                                   const ArtifactKey &key);

    Counters &countersFor(const char *name) const;

    /** Add one lookup/store outcome to the stats, routed through the
     *  calling thread's ArtifactCacheHandle when one is bound. */
    void record(const ArtifactKind &kind,
                const ArtifactStats &delta) const;

    /** Fold a batched delta straight into the shared counters. */
    void applyDelta(const char *name,
                    const ArtifactStats &delta) const;

    std::string dir_;
    mutable std::mutex mu_; ///< guards kinds_ registration
    mutable std::vector<std::unique_ptr<Counters>> kinds_;
};

} // namespace prism

#endif // PRISM_COMMON_ARTIFACT_CACHE_HH
