/**
 * @file
 * Small statistics helpers used by the evaluation harness: running
 * moments, geometric means, and fixed-bucket histograms.
 */

#ifndef PRISM_COMMON_STATS_HH
#define PRISM_COMMON_STATS_HH

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace prism
{

/** Arithmetic mean of a sequence; 0 for an empty sequence. */
double mean(std::span<const double> xs);

/**
 * Geometric mean; the paper reports geomean speedups and energy
 * ratios. Non-positive policy: a geomean is only defined over
 * strictly positive values, but a single zero-cycle or zero-energy
 * region must not abort an entire design-space sweep — non-positive
 * (and NaN) inputs are *skipped* and counted in one warn() per call,
 * and the mean is taken over the remaining values. Returns 0 for
 * empty input or when every value was skipped.
 */
double geomean(std::span<const double> xs);

/**
 * Harmonic mean. Same non-positive policy as geomean(): skip with a
 * logged count; 0 for empty/all-skipped input.
 */
double harmonicMean(std::span<const double> xs);

/**
 * Sample (N-1 denominator) standard deviation; 0 for fewer than two
 * samples. Callers treat stddev() as an estimate from a sample of
 * workloads or design points, hence Bessel's correction (before
 * 2026-08 this was the population N-denominator statistic).
 */
double stddev(std::span<const double> xs);

/**
 * Mean absolute relative error between projections and references:
 * mean(|proj/ref - 1|). Used for Table 1 style validation summaries.
 */
double meanAbsRelError(std::span<const double> projected,
                       std::span<const double> reference);

/**
 * Incremental accumulator of count/mean/min/max/variance without
 * storing samples (Welford's algorithm).
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double x);

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Population variance; 0 with fewer than two samples. */
    double variance() const;

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Histogram over [lo, hi) with uniformly sized buckets; samples outside
 * the range are clamped into the first/last bucket.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets);

    void add(double x);

    std::size_t numBuckets() const { return counts_.size(); }
    std::uint64_t bucketCount(std::size_t i) const { return counts_.at(i); }
    std::uint64_t total() const { return total_; }

    /** Inclusive lower edge of bucket i. */
    double bucketLo(std::size_t i) const;

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

} // namespace prism

#endif // PRISM_COMMON_STATS_HH
