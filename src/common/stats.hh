/**
 * @file
 * Small statistics helpers used by the evaluation harness: running
 * moments, geometric means, and fixed-bucket histograms.
 */

#ifndef PRISM_COMMON_STATS_HH
#define PRISM_COMMON_STATS_HH

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace prism
{

/** Arithmetic mean of a sequence; 0 for an empty sequence. */
double mean(std::span<const double> xs);

/**
 * Geometric mean of a sequence of strictly positive values; the paper
 * reports geomean speedups and energy ratios. Returns 0 for empty input.
 */
double geomean(std::span<const double> xs);

/** Harmonic mean of strictly positive values; 0 for empty input. */
double harmonicMean(std::span<const double> xs);

/** Population standard deviation; 0 for fewer than two samples. */
double stddev(std::span<const double> xs);

/**
 * Mean absolute relative error between projections and references:
 * mean(|proj/ref - 1|). Used for Table 1 style validation summaries.
 */
double meanAbsRelError(std::span<const double> projected,
                       std::span<const double> reference);

/**
 * Incremental accumulator of count/mean/min/max/variance without
 * storing samples (Welford's algorithm).
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double x);

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Population variance; 0 with fewer than two samples. */
    double variance() const;

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Histogram over [lo, hi) with uniformly sized buckets; samples outside
 * the range are clamped into the first/last bucket.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets);

    void add(double x);

    std::size_t numBuckets() const { return counts_.size(); }
    std::uint64_t bucketCount(std::size_t i) const { return counts_.at(i); }
    std::uint64_t total() const { return total_; }

    /** Inclusive lower edge of bucket i. */
    double bucketLo(std::size_t i) const;

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

} // namespace prism

#endif // PRISM_COMMON_STATS_HH
