#include "common/memo_cache.hh"

#include <cstdio>
#include <cstdlib>

namespace prism
{

std::shared_ptr<const void>
MemoCache::get(std::uint64_t key)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) {
        ++stats_.misses;
        return nullptr;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    ++stats_.hits;
    return it->second->value;
}

void
MemoCache::put(std::uint64_t key, std::shared_ptr<const void> value,
               std::uint64_t bytes)
{
    if (!value || bytes > maxBytes_)
        return;
    std::lock_guard<std::mutex> lk(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
        // Refresh: keep the first value (immutable content under a
        // content address — racers computed the same thing).
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    lru_.push_front(Entry{key, std::move(value), bytes});
    map_.emplace(key, lru_.begin());
    stats_.bytes += bytes;
    ++stats_.insertions;
    evictLocked();
}

void
MemoCache::evictLocked()
{
    while (stats_.bytes > maxBytes_ && !lru_.empty()) {
        const Entry &victim = lru_.back();
        stats_.bytes -= victim.bytes;
        map_.erase(victim.key);
        lru_.pop_back();
        ++stats_.evictions;
    }
}

void
MemoCache::clear()
{
    std::lock_guard<std::mutex> lk(mu_);
    lru_.clear();
    map_.clear();
    stats_.bytes = 0;
}

MemoCache::Stats
MemoCache::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
}

std::string
MemoCache::summary() const
{
    const Stats s = stats();
    const std::uint64_t lookups = s.hits + s.misses;
    const double hitPct =
        lookups ? 100.0 * static_cast<double>(s.hits) /
                      static_cast<double>(lookups)
                : 0.0;
    char buf[192];
    std::snprintf(
        buf, sizeof buf,
        "RAM cache: %llu hits, %llu misses (%.1f%% hit), "
        "%llu insertions, %llu evictions, %.1f/%.1f MiB resident",
        static_cast<unsigned long long>(s.hits),
        static_cast<unsigned long long>(s.misses), hitPct,
        static_cast<unsigned long long>(s.insertions),
        static_cast<unsigned long long>(s.evictions),
        static_cast<double>(s.bytes) / (1024.0 * 1024.0),
        static_cast<double>(maxBytes_) / (1024.0 * 1024.0));
    return buf;
}

MemoCache &
MemoCache::global()
{
    static MemoCache *cache = [] {
        std::uint64_t mb = 256;
        if (const char *env = std::getenv("PRISM_RAM_CACHE_MB"))
            mb = static_cast<std::uint64_t>(
                std::strtoull(env, nullptr, 10));
        return new MemoCache(mb << 20);
    }();
    return *cache;
}

} // namespace prism
