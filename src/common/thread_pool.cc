#include "common/thread_pool.hh"

#include <algorithm>
#include <cstdlib>
#include <memory>

#ifdef __linux__
#include <sched.h>
#endif

#include "common/logging.hh"

namespace prism
{

unsigned
defaultThreadCount()
{
    if (const char *env = std::getenv("PRISM_THREADS")) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return static_cast<unsigned>(v);
        warn("ignoring invalid PRISM_THREADS value '%s'", env);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

unsigned
availableParallelism()
{
#ifdef __linux__
    cpu_set_t set;
    if (sched_getaffinity(0, sizeof(set), &set) == 0) {
        const int n = CPU_COUNT(&set);
        if (n > 0)
            return static_cast<unsigned>(n);
    }
#endif
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

/**
 * Shared state of one parallelFor call. Index claiming and the
 * in-flight count are updated under one lock so a claimed item is
 * always visible as active until it completes; helper tasks that
 * outlive the call (stealable entries still queued) hold the loop
 * via shared_ptr and see an exhausted index range.
 */
struct ThreadPool::ForLoop
{
    std::size_t n = 0;
    const std::function<void(std::size_t)> *fn = nullptr;

    std::mutex mu;
    std::condition_variable doneCv;
    std::size_t nextIdx = 0; ///< guarded by mu
    std::size_t active = 0;  ///< items currently executing
    std::exception_ptr error;

    /** Claim the next index; false when drained or poisoned. */
    bool
    claim(std::size_t &i)
    {
        std::lock_guard<std::mutex> g(mu);
        if (error || nextIdx >= n)
            return false;
        i = nextIdx++;
        ++active;
        return true;
    }

    /** Mark one claimed item finished (ok or with an exception). */
    void
    complete(std::exception_ptr err)
    {
        std::lock_guard<std::mutex> g(mu);
        if (err && !error)
            error = std::move(err);
        if (--active == 0 && (nextIdx >= n || error))
            doneCv.notify_all();
    }
};

ThreadPool::ThreadPool(unsigned threads)
    : numThreads_(threads > 0 ? threads : defaultThreadCount())
{
    // More execution contexts than CPUs only adds context-switch
    // churn; cap spawned workers at what can actually run (the caller
    // is one context). PRISM_OVERSUBSCRIBE restores the old behavior.
    unsigned contexts = numThreads_;
    if (!std::getenv("PRISM_OVERSUBSCRIBE"))
        contexts = std::min(numThreads_, availableParallelism());
    workers_.reserve(contexts - 1);
    for (unsigned t = 1; t < contexts; ++t)
        workers_.emplace_back([this, t] { workerMain(t); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> g(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::drain(ForLoop &loop)
{
    std::size_t i = 0;
    while (loop.claim(i)) {
        std::exception_ptr err;
        try {
            (*loop.fn)(i);
        } catch (...) {
            err = std::current_exception();
        }
        loop.complete(err);
    }
}

void
ThreadPool::workerMain(unsigned)
{
    for (;;) {
        std::shared_ptr<ForLoop> loop;
        {
            std::unique_lock<std::mutex> lk(mu_);
            cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop requested and nothing to steal
            loop = std::move(queue_.front().loop);
            queue_.pop_front();
        }
        drain(*loop);
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;

    auto loop = std::make_shared<ForLoop>();
    loop->n = n;
    loop->fn = &fn;

    // One stealable helper per worker (never more than useful).
    const std::size_t helpers =
        std::min<std::size_t>(workers_.size(), n > 1 ? n - 1 : 0);
    if (helpers > 0) {
        {
            std::lock_guard<std::mutex> g(mu_);
            for (std::size_t h = 0; h < helpers; ++h)
                queue_.push_back(Task{loop});
        }
        cv_.notify_all();
    }

    // The caller participates: nested submission from inside a work
    // item drains its own inner loop here, guaranteeing progress.
    drain(*loop);

    {
        std::unique_lock<std::mutex> lk(loop->mu);
        loop->doneCv.wait(lk, [&] { return loop->active == 0; });
    }
    if (loop->error)
        std::rethrow_exception(loop->error);
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

} // namespace prism
