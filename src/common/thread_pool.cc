#include "common/thread_pool.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>

#ifdef __linux__
#include <sched.h>
#endif

#include "common/logging.hh"

namespace prism
{

namespace
{

/** Reject absurd PRISM_THREADS values (also catches negatives, which
 *  strtoul wraps to huge numbers) instead of spawning them. */
constexpr unsigned long kMaxReasonableThreads = 4096;

} // namespace

unsigned
defaultThreadCount()
{
    // Precedence (see thread_pool.hh): an explicit ctor argument
    // never reaches this function; PRISM_THREADS is consulted here;
    // availableParallelism() is the fallback.
    if (const char *env = std::getenv("PRISM_THREADS")) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        const bool numeric = end != env && *end == '\0';
        if (numeric && v > 0 && v <= kMaxReasonableThreads)
            return static_cast<unsigned>(v);
        if (numeric && v == 0) {
            warn("PRISM_THREADS=0 is not a valid thread count; "
                 "using the %u available CPU(s) instead",
                 availableParallelism());
        } else if (numeric) {
            warn("PRISM_THREADS=%s is out of range (max %lu); "
                 "using the %u available CPU(s) instead",
                 env, kMaxReasonableThreads, availableParallelism());
        } else {
            warn("ignoring non-numeric PRISM_THREADS value '%s'; "
                 "using the %u available CPU(s) instead",
                 env, availableParallelism());
        }
    }
    return availableParallelism();
}

unsigned
availableParallelism()
{
#ifdef __linux__
    cpu_set_t set;
    if (sched_getaffinity(0, sizeof(set), &set) == 0) {
        const int n = CPU_COUNT(&set);
        if (n > 0)
            return static_cast<unsigned>(n);
    }
#endif
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

/**
 * Shared state of one parallelFor call. The index range is claimed
 * in contiguous chunks with a single atomic fetch-add per chunk —
 * there is no lock anywhere on the claim path. Completion is
 * detected from two atomics: `next` past the range end (no chunk
 * left to start) and `inflight` zero (no claimed chunk still
 * running); the mutex/condvar pair exists only so the owner can
 * sleep until that transition. Helper tasks that outlive the call
 * (stealable entries still queued) hold the loop via shared_ptr and
 * observe an exhausted index range.
 */
struct ThreadPool::ForLoop
{
    std::size_t n = 0;
    std::size_t chunk = 1;
    const std::function<void(std::size_t)> *fn = nullptr;

    /** Next unclaimed index; claims advance it by `chunk`. Poisoning
     *  forces it past n so no further chunk starts. */
    std::atomic<std::size_t> next{0};
    /** Chunks claimed (or mid-claim) and not yet finished. */
    std::atomic<std::size_t> inflight{0};
    /** Set on the first exception: running chunks bail between
     *  items, unclaimed items are skipped. */
    std::atomic<bool> poisoned{false};

    std::mutex mu; ///< guards `error` and the completion wakeup
    std::condition_variable doneCv;
    std::exception_ptr error;

    /**
     * Claim protocol memory ordering: every operation on `next` and
     * `inflight` is seq_cst (the defaults below). drain() increments
     * `inflight` before advancing `next`; done() reads them in the
     * opposite order, so under the single total order a reader that
     * sees a claim's `next` advance must also see its `inflight`
     * increment — the owner can never observe "range exhausted, none
     * in flight" while a chunk is still between claim and
     * completion. These are per-chunk (not per-index) operations, so
     * the stronger ordering costs nothing measurable.
     */
    bool
    done() const
    {
        return next.load() >= n && inflight.load() == 0;
    }

    /** Record the first failure and stop the loop early. */
    void
    poison(std::exception_ptr err)
    {
        {
            std::lock_guard<std::mutex> g(mu);
            if (!error)
                error = std::move(err);
        }
        poisoned.store(true, std::memory_order_relaxed);
        // Push the claim cursor past the end so no new chunk starts.
        // A concurrent fetch-add may still slip one last chunk
        // through; its items just run, which the contract allows.
        next.store(n);
    }
};

std::size_t
ThreadPool::chunkSizeFor(std::size_t n, unsigned contexts)
{
    // ~8 chunks per context: claim traffic is one fetch-add per
    // chunk, and an 8x surplus of chunks over contexts keeps uneven
    // per-item costs balanced (the classic guided-scheduling
    // compromise without its tail of tiny claims). The split is
    // clamped to at most n chunks: for tiny ranges on wide machines
    // the unclamped heuristic would hand most contexts an empty claim
    // (an inflight/next fetch-add pair each, just to discover the
    // range is exhausted).
    if (n == 0)
        return 1;
    const std::size_t parts = std::min<std::size_t>(
        std::max<std::size_t>(1, std::size_t{contexts} * 8), n);
    return std::max<std::size_t>(1, (n + parts - 1) / parts);
}

ThreadPool::ThreadPool(unsigned threads)
    : numThreads_(threads > 0 ? threads : defaultThreadCount())
{
    // More execution contexts than CPUs only adds context-switch
    // churn; cap spawned workers at what can actually run (the caller
    // is one context). PRISM_OVERSUBSCRIBE restores the old behavior.
    unsigned contexts = numThreads_;
    if (!std::getenv("PRISM_OVERSUBSCRIBE")) {
        const unsigned avail = availableParallelism();
        contexts = std::min(numThreads_, avail);
        if (contexts < numThreads_) {
            // Once per process: pools are created freely (every bench
            // leg, every test), and the clamp is a host property.
            static std::atomic<bool> warned{false};
            if (!warned.exchange(true)) {
                warn("thread pool: %u contexts requested but only %u "
                     "CPU(s) available; clamping spawned workers "
                     "(set PRISM_OVERSUBSCRIBE=1 to override)",
                     numThreads_, avail);
            }
        }
    }
    workers_.reserve(contexts - 1);
    for (unsigned t = 1; t < contexts; ++t)
        workers_.emplace_back([this, t] { workerMain(t); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> g(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::finishChunk(ForLoop &loop)
{
    // The decrement releases this chunk's writes to the owner, and
    // the final decrement acquires every earlier chunk's (seq_cst
    // implies both).
    if (loop.inflight.fetch_sub(1) == 1 &&
        loop.next.load() >= loop.n) {
        // Possibly the completing transition: wake the owner. Taking
        // the mutex orders this notify after the owner's predicate
        // check, so the wakeup cannot be lost.
        std::lock_guard<std::mutex> g(loop.mu);
        loop.doneCv.notify_all();
    }
}

void
ThreadPool::drain(ForLoop &loop)
{
    for (;;) {
        // Publish the in-flight claim *before* taking it: otherwise
        // the owner could observe next >= n with inflight still zero
        // while this chunk runs, and return early (see the ordering
        // note on ForLoop::done).
        loop.inflight.fetch_add(1);
        const std::size_t b = loop.next.fetch_add(loop.chunk);
        if (b >= loop.n) {
            finishChunk(loop);
            return;
        }
        const std::size_t e = std::min(b + loop.chunk, loop.n);
        try {
            for (std::size_t i = b; i < e; ++i) {
                if (loop.poisoned.load(std::memory_order_relaxed))
                    break;
                (*loop.fn)(i);
            }
        } catch (...) {
            loop.poison(std::current_exception());
        }
        finishChunk(loop);
    }
}

void
ThreadPool::workerMain(unsigned)
{
    for (;;) {
        std::shared_ptr<ForLoop> loop;
        {
            std::unique_lock<std::mutex> lk(mu_);
            cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop requested and nothing to steal
            loop = std::move(queue_.front().loop);
            queue_.pop_front();
        }
        drain(*loop);
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn,
                        std::size_t grain)
{
    if (n == 0)
        return;

    auto loop = std::make_shared<ForLoop>();
    loop->n = n;
    loop->chunk = grain > 0 ? grain
                            : chunkSizeFor(n, effectiveContexts());
    loop->fn = &fn;

    // One stealable helper per worker, never more than there are
    // chunks to claim beyond the caller's own.
    const std::size_t chunks = (n + loop->chunk - 1) / loop->chunk;
    const std::size_t helpers =
        std::min<std::size_t>(workers_.size(),
                              chunks > 1 ? chunks - 1 : 0);
    if (helpers > 0) {
        {
            std::lock_guard<std::mutex> g(mu_);
            for (std::size_t h = 0; h < helpers; ++h)
                queue_.push_back(Task{loop});
        }
        // Wake exactly as many workers as there are tasks to steal:
        // notify_all on a small loop over a wide pool stampedes every
        // idle worker through the queue mutex just to find nothing.
        if (helpers >= workers_.size()) {
            cv_.notify_all();
        } else {
            for (std::size_t h = 0; h < helpers; ++h)
                cv_.notify_one();
        }
    }

    // The caller participates: nested submission from inside a work
    // item drains its own inner loop here, guaranteeing progress.
    drain(*loop);

    {
        std::unique_lock<std::mutex> lk(loop->mu);
        loop->doneCv.wait(lk, [&] { return loop->done(); });
    }
    if (loop->error)
        std::rethrow_exception(loop->error);
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

} // namespace prism
