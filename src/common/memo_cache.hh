/**
 * @file
 * In-RAM memoization tier in front of the on-disk artifact cache: a
 * process-wide, byte-budgeted LRU of immutable component tables
 * keyed by the same content addresses the disk cache uses. A search
 * that revisits a (workload, core) pair pays neither a timing run
 * nor a file read — the shared_ptr from the first build is handed
 * straight back.
 *
 * Entries are type-erased shared_ptr<const void>; the typed helpers
 * in tdg/artifacts.hh are the intended access path. Eviction is
 * strictly by recency against a byte budget (default 256 MiB,
 * override with PRISM_RAM_CACHE_MB); an in-use entry stays alive
 * through its callers' shared_ptrs even after eviction, so eviction
 * only ever drops the cache's own reference.
 *
 * Thread-safety: all members are safe to call concurrently (one
 * mutex; operations are O(1) map/list splices).
 */

#ifndef PRISM_COMMON_MEMO_CACHE_HH
#define PRISM_COMMON_MEMO_CACHE_HH

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace prism
{

class MemoCache
{
  public:
    /** Monotone effectiveness counters (snapshot via stats()). */
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t insertions = 0;
        std::uint64_t evictions = 0;
        std::uint64_t bytes = 0; ///< currently resident
    };

    /** Cache with an explicit byte budget. */
    explicit MemoCache(std::uint64_t max_bytes)
        : maxBytes_(max_bytes)
    {
    }

    /** Look up `key`; refreshes recency on a hit. */
    std::shared_ptr<const void> get(std::uint64_t key);

    /**
     * Insert (or refresh) `key` -> `value`, charging `bytes` against
     * the budget, then evict least-recently-used entries until the
     * budget holds again. Values larger than the whole budget are
     * simply not retained.
     */
    void put(std::uint64_t key, std::shared_ptr<const void> value,
             std::uint64_t bytes);

    /** Drop every entry (counters are kept). */
    void clear();

    Stats stats() const;

    /** One-line human-readable render of stats(), e.g.
     *  "RAM cache: 12 hits, 4 misses (75.0% hit), 4 insertions,
     *   0 evictions, 1.2/256.0 MiB resident". For status output in
     *  drivers; the serve daemon exposes the raw counters instead. */
    std::string summary() const;

    std::uint64_t maxBytes() const { return maxBytes_; }

    /**
     * The process-wide instance, sized from PRISM_RAM_CACHE_MB
     * (megabytes; 0 disables retention) or the 256 MiB default.
     */
    static MemoCache &global();

    /**
     * Typed convenience: return the cached T under `key`, or compute,
     * insert (charging `bytes(value)`) and return it. `compute` may
     * run concurrently on racing threads; the first insertion wins
     * and later racers return their own (identical) value.
     */
    template <typename T, typename Compute, typename Bytes>
    std::shared_ptr<const T>
    getOrCompute(std::uint64_t key, Compute &&compute,
                 Bytes &&bytes)
    {
        if (auto hit = get(key))
            return std::static_pointer_cast<const T>(hit);
        std::shared_ptr<const T> value = compute();
        if (value)
            put(key, value, bytes(*value));
        return value;
    }

  private:
    struct Entry
    {
        std::uint64_t key;
        std::shared_ptr<const void> value;
        std::uint64_t bytes;
    };

    void evictLocked();

    const std::uint64_t maxBytes_;
    mutable std::mutex mu_;
    std::list<Entry> lru_; ///< front = most recent
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator>
        map_;
    Stats stats_;
};

} // namespace prism

#endif // PRISM_COMMON_MEMO_CACHE_HH
