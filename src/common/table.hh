/**
 * @file
 * Plain-text table formatting used by the benchmark harness to print
 * paper-style tables and figure series to stdout.
 */

#ifndef PRISM_COMMON_TABLE_HH
#define PRISM_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace prism
{

/**
 * A simple left/right-aligned ASCII table. Columns are sized to fit.
 * Numeric cells should be pre-formatted by the caller (see fmt()).
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must match the header width. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** Render the table, including a header rule. */
    std::string render() const;

    std::size_t numRows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_; // empty row == separator
};

/** Format a double with the given number of decimal places. */
std::string fmt(double v, int places = 2);

/** Format a ratio as e.g. "2.61x". */
std::string fmtX(double v, int places = 2);

/** Format a fraction as a percentage, e.g. "40.2%". */
std::string fmtPct(double frac, int places = 1);

} // namespace prism

#endif // PRISM_COMMON_TABLE_HH
