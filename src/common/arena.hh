/**
 * @file
 * Bump-allocated scratch arena for hot construction paths, and a
 * per-thread instance for the design-space sweeps.
 *
 * A cold BenchmarkModel build used to be a global-malloc contention
 * fight: hundreds of thousands of short-lived node allocations per
 * model, multiplied by every pool worker building models at once.
 * The arena gives each worker thread a private, reusable slab:
 * allocation is a pointer bump, deallocation is a single reset, and
 * after the first model on a thread the steady state touches the
 * global allocator only when the arena must grow.
 *
 * Lifetime rules (also documented in DESIGN.md):
 *  - spans returned by alloc() are valid until the next reset() of
 *    the same arena — callers reset at the *start* of a construction
 *    unit (one BenchmarkModel build), never mid-unit;
 *  - the arena is not thread-safe; threadScratchArena() hands every
 *    thread its own, so pool tasks never share one;
 *  - only trivially-destructible element types are allowed (reset()
 *    runs no destructors).
 */

#ifndef PRISM_COMMON_ARENA_HH
#define PRISM_COMMON_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace prism
{

class ScratchArena
{
  public:
    ScratchArena() = default;
    ScratchArena(const ScratchArena &) = delete;
    ScratchArena &operator=(const ScratchArena &) = delete;

    /** Uninitialized storage for n elements of T. */
    template <typename T>
    std::span<T>
    alloc(std::size_t n)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena memory is reclaimed without running "
                      "destructors");
        if (n == 0)
            return {};
        void *p = allocBytes(n * sizeof(T), alignof(T));
        return {static_cast<T *>(p), n};
    }

    /** Reclaim everything allocated since the last reset; keeps the
     *  largest block so steady-state use never re-allocates. */
    void
    reset()
    {
        if (blocks_.size() > 1) {
            // Keep only the biggest block (the last one: growth is
            // geometric), so repeated use converges to one slab.
            blocks_.front() = std::move(blocks_.back());
            blocks_.resize(1);
        }
        cur_ = blocks_.empty() ? nullptr : blocks_.front().data.get();
        end_ = blocks_.empty()
                   ? nullptr
                   : blocks_.front().data.get() +
                         blocks_.front().size;
        used_ = 0;
    }

    /** Bytes handed out since the last reset. */
    std::size_t bytesUsed() const { return used_; }

  private:
    struct Block
    {
        std::unique_ptr<std::byte[]> data;
        std::size_t size = 0;
    };

    void *
    allocBytes(std::size_t n, std::size_t align)
    {
        auto p = reinterpret_cast<std::uintptr_t>(cur_);
        const std::uintptr_t aligned = (p + align - 1) & ~(align - 1);
        if (cur_ == nullptr ||
            aligned + n > reinterpret_cast<std::uintptr_t>(end_)) {
            grow(n + align);
            return allocBytes(n, align);
        }
        cur_ = reinterpret_cast<std::byte *>(aligned + n);
        used_ += n;
        return reinterpret_cast<void *>(aligned);
    }

    void
    grow(std::size_t at_least)
    {
        const std::size_t prev =
            blocks_.empty() ? 0 : blocks_.back().size;
        const std::size_t size =
            std::max<std::size_t>({at_least, prev * 2, 64 * 1024});
        Block b;
        b.data = std::make_unique<std::byte[]>(size);
        b.size = size;
        cur_ = b.data.get();
        end_ = b.data.get() + size;
        blocks_.push_back(std::move(b));
    }

    std::vector<Block> blocks_;
    std::byte *cur_ = nullptr;
    std::byte *end_ = nullptr;
    std::size_t used_ = 0;
};

/** This thread's private scratch arena (created on first use). */
inline ScratchArena &
threadScratchArena()
{
    thread_local ScratchArena arena;
    return arena;
}

} // namespace prism

#endif // PRISM_COMMON_ARENA_HH
