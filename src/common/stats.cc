#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace prism
{

double
mean(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
geomean(std::span<const double> xs)
{
    std::size_t skipped = 0;
    std::size_t n = 0;
    double log_sum = 0.0;
    for (double x : xs) {
        if (!(x > 0.0)) {
            ++skipped; // also catches NaN
            continue;
        }
        log_sum += std::log(x);
        ++n;
    }
    if (skipped > 0) {
        warn("geomean: skipped %zu non-positive of %zu values",
             skipped, xs.size());
    }
    if (n == 0)
        return 0.0;
    return std::exp(log_sum / static_cast<double>(n));
}

double
harmonicMean(std::span<const double> xs)
{
    std::size_t skipped = 0;
    std::size_t n = 0;
    double inv_sum = 0.0;
    for (double x : xs) {
        if (!(x > 0.0)) {
            ++skipped; // also catches NaN
            continue;
        }
        inv_sum += 1.0 / x;
        ++n;
    }
    if (skipped > 0) {
        warn("harmonicMean: skipped %zu non-positive of %zu values",
             skipped, xs.size());
    }
    if (n == 0)
        return 0.0;
    return static_cast<double>(n) / inv_sum;
}

double
stddev(std::span<const double> xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    // Sample (N-1) statistic: callers treat stddev() as an estimate
    // from a sample of workloads/design points, not a population.
    return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double
meanAbsRelError(std::span<const double> projected,
                std::span<const double> reference)
{
    prism_assert(projected.size() == reference.size(),
                 "error vectors must align");
    if (projected.empty())
        return 0.0;
    double acc = 0.0;
    for (std::size_t i = 0; i < projected.size(); ++i) {
        prism_assert(reference[i] != 0.0, "reference value must be nonzero");
        acc += std::abs(projected[i] / reference[i] - 1.0);
    }
    return acc / static_cast<double>(projected.size());
}

void
RunningStat::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double
RunningStat::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0)
{
    prism_assert(hi > lo && buckets > 0, "bad histogram shape");
}

void
Histogram::add(double x)
{
    const double frac = (x - lo_) / (hi_ - lo_);
    auto idx = static_cast<std::int64_t>(
        frac * static_cast<double>(counts_.size()));
    idx = std::clamp<std::int64_t>(
        idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
}

double
Histogram::bucketLo(std::size_t i) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
        static_cast<double>(counts_.size());
}

} // namespace prism
