#include "common/table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace prism
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    prism_assert(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    prism_assert(cells.size() == headers_.size(),
                 "row width mismatches header");
    rows_.push_back(std::move(cells));
}

void
Table::addSeparator()
{
    rows_.emplace_back(); // empty row encodes a separator
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto rule = [&widths]() {
        std::string s;
        for (std::size_t w : widths)
            s += "+" + std::string(w + 2, '-');
        s += "+\n";
        return s;
    };
    auto line = [&widths](const std::vector<std::string> &cells) {
        std::string s;
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string &cell = c < cells.size() ? cells[c] : "";
            s += "| " + cell + std::string(widths[c] - cell.size() + 1, ' ');
        }
        s += "|\n";
        return s;
    };

    std::string out = rule();
    out += line(headers_);
    out += rule();
    for (const auto &row : rows_) {
        if (row.empty())
            out += rule();
        else
            out += line(row);
    }
    out += rule();
    return out;
}

std::string
fmt(double v, int places)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", places, v);
    return buf;
}

std::string
fmtX(double v, int places)
{
    return fmt(v, places) + "x";
}

std::string
fmtPct(double frac, int places)
{
    return fmt(frac * 100.0, places) + "%";
}

} // namespace prism
