/**
 * @file
 * Fundamental scalar types shared by all Prism modules.
 */

#ifndef PRISM_COMMON_TYPES_HH
#define PRISM_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace prism
{

/** A simulated clock cycle count. */
using Cycle = std::uint64_t;

/** A simulated byte address in guest memory. */
using Addr = std::uint64_t;

/** Index of a static instruction within a whole Program (global). */
using StaticId = std::uint32_t;

/** Index of a dynamic instruction within a trace. */
using DynId = std::uint64_t;

/** A virtual register id, local to a guest Function. */
using RegId = std::uint32_t;

/** Sentinel for "no register". */
inline constexpr RegId kNoReg = std::numeric_limits<RegId>::max();

/** Sentinel for "no producing dynamic instruction". */
inline constexpr std::int64_t kNoProducer = -1;

/** Sentinel for "no static instruction". */
inline constexpr StaticId kNoStatic = std::numeric_limits<StaticId>::max();

/** Energy in picojoules. */
using PicoJoule = double;

/** Area in square millimeters (22nm, as in the paper). */
using MilliMeter2 = double;

} // namespace prism

#endif // PRISM_COMMON_TYPES_HH
