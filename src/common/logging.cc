#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace prism
{

namespace
{
LogLevel g_level = LogLevel::Warn;
} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

namespace detail
{

std::string
vformat(const char *fmt, std::va_list ap)
{
    std::va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

void
assertFail(const char *cond, const char *file, int line, const char *fmt,
           ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    const std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: assertion '%s' failed at %s:%d: %s\n",
                 cond, file, line, msg.c_str());
    std::abort();
}

} // namespace detail

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    const std::string msg = detail::vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    const std::string msg = detail::vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (g_level < LogLevel::Warn)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    const std::string msg = detail::vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (g_level < LogLevel::Inform)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    const std::string msg = detail::vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace prism
