#include "common/artifact_cache.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/logging.hh"

namespace prism
{

namespace
{

/** File header: magic, then the full content address. */
constexpr std::uint64_t kArtifactMagic = 0x5052534D41525431ull; // "PRSMART1"

std::unique_ptr<ArtifactCache> g_cache; // installed before workers

/** The innermost ArtifactCacheHandle bound on this thread. */
thread_local ArtifactCacheHandle *t_handle = nullptr;

} // namespace

ArtifactStats &
ArtifactStats::operator+=(const ArtifactStats &o)
{
    hits += o.hits;
    misses += o.misses;
    rejected += o.rejected;
    stores += o.stores;
    bytesRead += o.bytesRead;
    bytesWritten += o.bytesWritten;
    return *this;
}

ArtifactCacheHandle::ArtifactCacheHandle(const ArtifactCache *cache)
    : cache_(cache)
{
    if (cache_ != nullptr) {
        prev_ = t_handle;
        t_handle = this;
    }
}

ArtifactCacheHandle::~ArtifactCacheHandle()
{
    if (cache_ != nullptr) {
        flush();
        t_handle = prev_;
    }
}

void
ArtifactCacheHandle::flush()
{
    for (KindStats &k : kinds_) {
        cache_->applyDelta(k.name, k.stats);
        k.stats = ArtifactStats{};
    }
}

ArtifactStats
ArtifactCacheHandle::localStats(const ArtifactKind &kind) const
{
    for (const KindStats &k : kinds_) {
        // Kind slugs are string literals; compare contents, not
        // addresses, so kinds declared in different TUs still match.
        if (std::strcmp(k.name, kind.name) == 0)
            return k.stats;
    }
    return {};
}

ArtifactStats &
ArtifactCacheHandle::localFor(const char *name)
{
    for (KindStats &k : kinds_) {
        if (std::strcmp(k.name, name) == 0)
            return k.stats;
    }
    kinds_.push_back(KindStats{name, {}});
    return kinds_.back().stats;
}

ArtifactCache::ArtifactCache(std::string dir) : dir_(std::move(dir))
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
        fatal("cannot create artifact cache directory '%s': %s",
              dir_.c_str(), ec.message().c_str());
    }
}

std::uint64_t
ArtifactCache::addressOf(const ArtifactKind &kind,
                         const ArtifactKey &key)
{
    // The kind's code-version fingerprint is part of the address:
    // bumping it orphans every existing entry of the kind.
    return ArtifactKey()
        .mix(std::string_view(kind.name))
        .mix(kind.version)
        .mix(key.hash())
        .hash();
}

std::string
ArtifactCache::pathFor(const ArtifactKind &kind,
                       std::string_view stem,
                       const ArtifactKey &key) const
{
    std::ostringstream os;
    os << dir_ << '/' << stem << '-' << kind.name << '-' << std::hex
       << addressOf(kind, key) << ".art";
    return os.str();
}

std::vector<ArtifactCache::Entry>
ArtifactCache::enumerate(std::string_view kind) const
{
    std::vector<Entry> out;
    std::error_code ec;
    for (const auto &de :
         std::filesystem::directory_iterator(dir_, ec)) {
        if (!de.is_regular_file())
            continue;
        const std::string fname = de.path().filename().string();
        if (!fname.ends_with(".art"))
            continue;
        // Parse `<stem>-<kind>-<hex>.art` from the right: the hash
        // and the kind slug never contain '-', the stem may.
        const std::string base =
            fname.substr(0, fname.size() - 4);
        const std::size_t hash_dash = base.rfind('-');
        if (hash_dash == std::string::npos)
            continue;
        const std::string hex = base.substr(hash_dash + 1);
        if (hex.empty() ||
            hex.find_first_not_of("0123456789abcdef") !=
                std::string::npos)
            continue;
        const std::size_t kind_dash = base.rfind('-', hash_dash - 1);
        if (kind_dash == std::string::npos || kind_dash == 0)
            continue;
        Entry e;
        e.stem = base.substr(0, kind_dash);
        e.kind = base.substr(kind_dash + 1,
                             hash_dash - kind_dash - 1);
        if (!kind.empty() && e.kind != kind)
            continue;
        e.path = de.path().string();
        e.bytes = de.file_size(ec);
        out.push_back(std::move(e));
    }
    std::sort(out.begin(), out.end(),
              [](const Entry &a, const Entry &b) {
                  if (a.kind != b.kind)
                      return a.kind < b.kind;
                  if (a.stem != b.stem)
                      return a.stem < b.stem;
                  return a.path < b.path;
              });
    return out;
}

void
ArtifactCache::store(
    const ArtifactKind &kind, std::string_view stem,
    const ArtifactKey &key,
    const std::function<void(ArtifactWriter &)> &payload) const
{
    const std::string path = pathFor(kind, stem, key);

    // Unique sibling + rename: an interrupted write can never leave
    // a partial file under `path`, and concurrent writers of the
    // same address are last-writer-wins with a complete file either
    // way.
    std::ostringstream tmp_name;
    tmp_name << path << ".tmp." << std::this_thread::get_id();
    const std::string tmp = tmp_name.str();
    std::uint64_t payload_bytes = 0;
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            fatal("cannot open '%s' for writing", tmp.c_str());
        ArtifactWriter w(os);
        w.u64(kArtifactMagic);
        w.u64(addressOf(kind, key));
        payload(w);
        payload_bytes = w.bytesWritten();
        os.flush();
        if (!os) {
            os.close();
            std::remove(tmp.c_str());
            fatal("short write to '%s'", tmp.c_str());
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::remove(tmp.c_str());
        fatal("cannot rename '%s' to '%s': %s", tmp.c_str(),
              path.c_str(), ec.message().c_str());
    }

    ArtifactStats delta;
    delta.stores = 1;
    delta.bytesWritten = payload_bytes;
    record(kind, delta);
}

bool
ArtifactCache::load(
    const ArtifactKind &kind, std::string_view stem,
    const ArtifactKey &key,
    const std::function<bool(ArtifactReader &)> &payload) const
{
    const std::string path = pathFor(kind, stem, key);

    std::ifstream is(path, std::ios::binary);
    if (!is) {
        ArtifactStats delta;
        delta.misses = 1;
        record(kind, delta);
        return false;
    }

    ArtifactReader r(is);
    const char *why = nullptr;
    if (r.u64() != kArtifactMagic || !r.ok()) {
        why = "not a Prism artifact file";
    } else if (r.u64() != addressOf(kind, key) || !r.ok()) {
        // A copied/renamed entry, or hand-edited header: the file's
        // recorded address disagrees with its location.
        why = "recorded key does not match its address";
    } else if (!payload(r) || !r.ok()) {
        why = "truncated or corrupt payload";
    } else if (!r.atEof()) {
        why = "trailing bytes after payload";
    }

    if (why) {
        ArtifactStats delta;
        delta.rejected = 1;
        delta.misses = 1;
        record(kind, delta);
        warn("artifact cache: rejecting %s '%s' (%s); will "
             "recompute",
             kind.name, path.c_str(), why);
        return false;
    }
    ArtifactStats delta;
    delta.hits = 1;
    delta.bytesRead = r.bytesRead();
    record(kind, delta);
    return true;
}

void
ArtifactCache::record(const ArtifactKind &kind,
                      const ArtifactStats &delta) const
{
    // A bound handle keeps the update thread-private (no shared
    // cache-line traffic on the hot sweep path); otherwise fold into
    // the shared counters immediately.
    if (t_handle != nullptr && t_handle->cache() == this) {
        t_handle->localFor(kind.name) += delta;
        return;
    }
    applyDelta(kind.name, delta);
}

void
ArtifactCache::applyDelta(const char *name,
                          const ArtifactStats &delta) const
{
    Counters &c = countersFor(name);
    constexpr auto relaxed = std::memory_order_relaxed;
    if (delta.hits)
        c.hits.v.fetch_add(delta.hits, relaxed);
    if (delta.misses)
        c.misses.v.fetch_add(delta.misses, relaxed);
    if (delta.rejected)
        c.rejected.v.fetch_add(delta.rejected, relaxed);
    if (delta.stores)
        c.stores.v.fetch_add(delta.stores, relaxed);
    if (delta.bytesRead)
        c.bytesRead.v.fetch_add(delta.bytesRead, relaxed);
    if (delta.bytesWritten)
        c.bytesWritten.v.fetch_add(delta.bytesWritten, relaxed);
}

ArtifactCache::Counters &
ArtifactCache::countersFor(const char *name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &k : kinds_) {
        if (k->name == name)
            return *k;
    }
    kinds_.push_back(std::make_unique<Counters>());
    kinds_.back()->name = name;
    return *kinds_.back();
}

ArtifactStats
ArtifactCache::stats(const ArtifactKind &kind) const
{
    const Counters &c = countersFor(kind.name);
    ArtifactStats s;
    s.hits = c.hits.v.load(std::memory_order_relaxed);
    s.misses = c.misses.v.load(std::memory_order_relaxed);
    s.rejected = c.rejected.v.load(std::memory_order_relaxed);
    s.stores = c.stores.v.load(std::memory_order_relaxed);
    s.bytesRead = c.bytesRead.v.load(std::memory_order_relaxed);
    s.bytesWritten = c.bytesWritten.v.load(std::memory_order_relaxed);
    return s;
}

std::vector<std::pair<std::string, ArtifactStats>>
ArtifactCache::allStats() const
{
    std::vector<std::pair<std::string, ArtifactStats>> out;
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &k : kinds_) {
        ArtifactStats s;
        s.hits = k->hits.v.load(std::memory_order_relaxed);
        s.misses = k->misses.v.load(std::memory_order_relaxed);
        s.rejected = k->rejected.v.load(std::memory_order_relaxed);
        s.stores = k->stores.v.load(std::memory_order_relaxed);
        s.bytesRead = k->bytesRead.v.load(std::memory_order_relaxed);
        s.bytesWritten =
            k->bytesWritten.v.load(std::memory_order_relaxed);
        out.emplace_back(k->name, s);
    }
    return out;
}

void
ArtifactCache::setGlobalDir(const std::string &dir)
{
    g_cache = dir.empty() ? nullptr
                          : std::make_unique<ArtifactCache>(dir);
}

const ArtifactCache *
ArtifactCache::global()
{
    return g_cache.get();
}

} // namespace prism
