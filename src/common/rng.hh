/**
 * @file
 * Deterministic xorshift128+ RNG. Workload input generation must be
 * reproducible across runs and platforms, so we avoid std::mt19937's
 * distribution-implementation variance by generating everything here.
 */

#ifndef PRISM_COMMON_RNG_HH
#define PRISM_COMMON_RNG_HH

#include <cstdint>

#include "common/logging.hh"

namespace prism
{

/** Deterministic, seedable pseudo-random generator (xorshift128+). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
    {
        // SplitMix64 seeding so nearby seeds give unrelated streams.
        auto next = [&seed]() {
            seed += 0x9E3779B97F4A7C15ull;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
            return z ^ (z >> 31);
        };
        s0_ = next();
        s1_ = next();
        if (s0_ == 0 && s1_ == 0)
            s1_ = 1;
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = s0_;
        const std::uint64_t y = s1_;
        s0_ = y;
        x ^= x << 23;
        s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1_ + y;
    }

    /** Uniform integer in [0, bound). bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        prism_assert(bound != 0, "Rng::below(0)");
        return next() % bound;
    }

    /** Uniform integer in [lo, hi], inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        prism_assert(hi >= lo, "Rng::range bounds inverted");
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p of true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    std::uint64_t s0_;
    std::uint64_t s1_;
};

} // namespace prism

#endif // PRISM_COMMON_RNG_HH
