/**
 * @file
 * gem5-style status/error reporting: panic, fatal, warn, inform.
 *
 * panic()  - an internal Prism invariant was violated (a bug in Prism).
 * fatal()  - the user asked for something impossible (bad config/input).
 * warn()   - something is approximated or partially implemented.
 * inform() - plain status output.
 */

#ifndef PRISM_COMMON_LOGGING_HH
#define PRISM_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace prism
{

/** Verbosity filter for inform()/warn(); messages below are dropped. */
enum class LogLevel { Silent, Warn, Inform };

/** Set the process-wide log level (default: Warn). */
void setLogLevel(LogLevel level);

/** Current process-wide log level. */
LogLevel logLevel();

/** Abort with a formatted message; use for internal invariant violations. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit(1) with a formatted message; use for user errors. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning about approximated or suspicious behavior. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Helpers used by the macros below. */
namespace detail
{
std::string vformat(const char *fmt, std::va_list ap);

/** Implementation of prism_assert's failure path. */
[[noreturn]] void assertFail(const char *cond, const char *file, int line,
                             const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));
} // namespace detail

} // namespace prism

/** Assert an internal invariant with a message; compiled in all builds. */
#define prism_assert(cond, ...)                                            \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::prism::detail::assertFail(#cond, __FILE__, __LINE__,         \
                                        __VA_ARGS__);                      \
        }                                                                  \
    } while (0)

#endif // PRISM_COMMON_LOGGING_HH
