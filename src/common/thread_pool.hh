/**
 * @file
 * Work-stealing thread pool and data-parallel helpers for the
 * design-space exploration engine. The paper's TDG methodology makes
 * every (workload, core, BSA-subset) evaluation an independent unit
 * of work ("record once, explore many configurations", Section 2.6);
 * this pool runs those units across cores.
 *
 * Guarantees:
 *  - deterministic result placement: parallelMap()/parallelFor()
 *    index results by input position, so output order never depends
 *    on scheduling;
 *  - exception propagation: the first exception thrown by a work
 *    item is captured and rethrown on the calling thread after the
 *    loop drains (items not yet claimed when the exception lands are
 *    skipped);
 *  - nested submission: a work item may itself call parallelFor()
 *    on the same pool; the inner call participates in execution, so
 *    progress is guaranteed even with every worker busy.
 *
 * Index claiming is lock-free: workers grab contiguous chunks of the
 * index range with one atomic fetch-add per chunk (not one mutex
 * acquisition per index), so fine-grained loops no longer serialize
 * on the claim lock. Chunks are sized so the range splits into ~8
 * chunks per execution context — small enough to balance uneven item
 * costs, large enough that the claim traffic is negligible — and a
 * caller can force a specific grain when it knows better.
 *
 * Thread-count precedence (the single source of truth):
 *  1. an explicit positive ThreadPool(threads) constructor argument
 *     (e.g. from a --threads flag) always wins;
 *  2. otherwise PRISM_THREADS, when set to a positive integer
 *     (invalid values — zero, negative, non-numeric, absurdly large —
 *     are rejected with a warning, never silently honored);
 *  3. otherwise availableParallelism(): the CPUs this process may
 *     actually run on (affinity mask aware), not the raw hardware
 *     count.
 * Whatever the requested count, *spawned workers* are additionally
 * clamped to availableParallelism() — extra contexts would only
 * context-switch against each other — unless PRISM_OVERSUBSCRIBE is
 * set. size() reports the requested count; effectiveContexts() the
 * clamped one actually running.
 */

#ifndef PRISM_COMMON_THREAD_POOL_HH
#define PRISM_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace prism
{

/**
 * Default concurrency level: PRISM_THREADS if set to a valid positive
 * integer (invalid values warn and are ignored), else
 * availableParallelism(). See the precedence note in the file header.
 */
unsigned defaultThreadCount();

/**
 * CPUs actually available to this process: the scheduling-affinity
 * mask size where supported (cgroup cpusets and taskset shrink it
 * below hardware_concurrency), else hardware_concurrency, at least 1.
 */
unsigned availableParallelism();

/**
 * A work-stealing thread pool with `threads` total execution
 * contexts: the caller of parallelFor() plus (threads - 1) worker
 * threads. ThreadPool(1) therefore executes strictly serially on the
 * calling thread — useful as the baseline leg of serial-vs-parallel
 * comparisons — while still honoring the same code path.
 *
 * Worker threads are clamped to availableParallelism(): requesting
 * more contexts than the machine can run concurrently spawns only as
 * many workers as there are CPUs (the rest would just context-switch
 * against each other). size() still reports the requested count,
 * effectiveContexts() the clamped one, and setting
 * PRISM_OVERSUBSCRIBE disables the clamp.
 */
class ThreadPool
{
  public:
    /** Create a pool; 0 means defaultThreadCount(). */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total execution contexts requested (caller + workers). */
    unsigned size() const { return numThreads_; }

    /** Contexts actually running after the availableParallelism()
     *  clamp (caller + spawned workers). */
    unsigned
    effectiveContexts() const
    {
        return static_cast<unsigned>(workers_.size()) + 1;
    }

    /**
     * Run fn(i) for every i in [0, n). Blocks until all items have
     * finished; the calling thread executes items too. Rethrows the
     * first exception thrown by any item (remaining unclaimed items
     * are skipped). `grain` > 0 forces that many consecutive indices
     * per atomic claim; 0 picks chunkSizeFor(n, effectiveContexts()).
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn,
                     std::size_t grain = 0);

    /**
     * Automatic chunk size: splits n into ~8 chunks per context so
     * uneven item costs still balance while claim traffic stays one
     * atomic op per chunk. Exposed for the concurrency tests.
     */
    static std::size_t chunkSizeFor(std::size_t n, unsigned contexts);

    /** The process-wide shared pool (size defaultThreadCount()). */
    static ThreadPool &global();

  private:
    struct ForLoop;

    /** One stealable unit: drain chunks from a ForLoop. */
    struct Task
    {
        std::shared_ptr<ForLoop> loop;
    };

    void workerMain(unsigned self);
    static void drain(ForLoop &loop);
    static void finishChunk(ForLoop &loop);

    unsigned numThreads_;

    std::mutex mu_;
    std::condition_variable cv_;
    std::deque<Task> queue_; ///< pending helper tasks (stealable)
    bool stop_ = false;

    std::vector<std::thread> workers_;
};

/**
 * Map fn over items on `pool`, returning results in input order
 * regardless of execution interleaving.
 */
template <typename T, typename Fn>
auto
parallelMap(ThreadPool &pool, const std::vector<T> &items, Fn fn)
    -> std::vector<decltype(fn(items.front()))>
{
    using R = decltype(fn(items.front()));
    std::vector<R> out(items.size());
    pool.parallelFor(items.size(),
                     [&](std::size_t i) { out[i] = fn(items[i]); });
    return out;
}

/** parallelMap over indices [0, n). */
template <typename Fn>
auto
parallelMapIndex(ThreadPool &pool, std::size_t n, Fn fn)
    -> std::vector<decltype(fn(std::size_t{0}))>
{
    using R = decltype(fn(std::size_t{0}));
    std::vector<R> out(n);
    pool.parallelFor(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
}

} // namespace prism

#endif // PRISM_COMMON_THREAD_POOL_HH
