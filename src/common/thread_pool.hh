/**
 * @file
 * Work-stealing thread pool and data-parallel helpers for the
 * design-space exploration engine. The paper's TDG methodology makes
 * every (workload, core, BSA-subset) evaluation an independent unit
 * of work ("record once, explore many configurations", Section 2.6);
 * this pool runs those units across cores.
 *
 * Guarantees:
 *  - deterministic result placement: parallelMap()/parallelFor()
 *    index results by input position, so output order never depends
 *    on scheduling;
 *  - exception propagation: the first exception thrown by a work
 *    item is captured and rethrown on the calling thread after the
 *    loop drains;
 *  - nested submission: a work item may itself call parallelFor()
 *    on the same pool; the inner call participates in execution, so
 *    progress is guaranteed even with every worker busy;
 *  - `PRISM_THREADS` overrides the default worker count process-wide.
 */

#ifndef PRISM_COMMON_THREAD_POOL_HH
#define PRISM_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace prism
{

/**
 * Default concurrency level: the PRISM_THREADS environment variable
 * if set to a positive integer, else std::thread::hardware_concurrency
 * (at least 1).
 */
unsigned defaultThreadCount();

/**
 * CPUs actually available to this process: the scheduling-affinity
 * mask size where supported (cgroup cpusets and taskset shrink it
 * below hardware_concurrency), else hardware_concurrency, at least 1.
 */
unsigned availableParallelism();

/**
 * A work-stealing thread pool with `threads` total execution
 * contexts: the caller of parallelFor() plus (threads - 1) worker
 * threads. ThreadPool(1) therefore executes strictly serially on the
 * calling thread — useful as the baseline leg of serial-vs-parallel
 * comparisons — while still honoring the same code path.
 *
 * Worker threads are clamped to availableParallelism(): requesting
 * more contexts than the machine can run concurrently spawns only as
 * many workers as there are CPUs (the rest would just context-switch
 * against each other). size() still reports the requested count, and
 * setting PRISM_OVERSUBSCRIBE disables the clamp.
 */
class ThreadPool
{
  public:
    /** Create a pool; 0 means defaultThreadCount(). */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total execution contexts (caller + workers). */
    unsigned size() const { return numThreads_; }

    /**
     * Run fn(i) for every i in [0, n). Blocks until all items have
     * finished; the calling thread executes items too. Rethrows the
     * first exception thrown by any item (remaining unclaimed items
     * are skipped).
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /** The process-wide shared pool (size defaultThreadCount()). */
    static ThreadPool &global();

  private:
    struct ForLoop;

    /** One stealable unit: drain indices from a ForLoop. */
    struct Task
    {
        std::shared_ptr<ForLoop> loop;
    };

    void workerMain(unsigned self);
    static void drain(ForLoop &loop);

    unsigned numThreads_;

    std::mutex mu_;
    std::condition_variable cv_;
    std::deque<Task> queue_; ///< pending helper tasks (stealable)
    bool stop_ = false;

    std::vector<std::thread> workers_;
};

/**
 * Map fn over items on `pool`, returning results in input order
 * regardless of execution interleaving.
 */
template <typename T, typename Fn>
auto
parallelMap(ThreadPool &pool, const std::vector<T> &items, Fn fn)
    -> std::vector<decltype(fn(items.front()))>
{
    using R = decltype(fn(items.front()));
    std::vector<R> out(items.size());
    pool.parallelFor(items.size(),
                     [&](std::size_t i) { out[i] = fn(items[i]); });
    return out;
}

/** parallelMap over indices [0, n). */
template <typename Fn>
auto
parallelMapIndex(ThreadPool &pool, std::size_t n, Fn fn)
    -> std::vector<decltype(fn(std::size_t{0}))>
{
    using R = decltype(fn(std::size_t{0}));
    std::vector<R> out(n);
    pool.parallelFor(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
}

} // namespace prism

#endif // PRISM_COMMON_THREAD_POOL_HH
