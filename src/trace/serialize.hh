/**
 * @file
 * Trace serialization. Generating a TDG "first requires TDG
 * generation through a conventional simulator" (paper Section 2.6);
 * the generated trace can then be reused to explore many core and
 * accelerator configurations. This module persists recorded traces
 * so exploration runs skip regeneration.
 *
 * The format is a compact little-endian binary: a header with a
 * program fingerprint (so a trace is never replayed against the
 * wrong binary), then one packed record per dynamic instruction.
 */

#ifndef PRISM_TRACE_SERIALIZE_HH
#define PRISM_TRACE_SERIALIZE_HH

#include <string>

#include "trace/dyn_inst.hh"

namespace prism
{

/**
 * Structural fingerprint of a program (instruction count, opcodes,
 * operand shape). Stable across process runs; changes whenever the
 * program's instructions change.
 */
std::uint64_t programFingerprint(const Program &prog);

/** Write a trace to `path`; fatal on I/O failure. */
void saveTrace(const Trace &trace, const std::string &path);

/**
 * Read a trace previously written with saveTrace. Fatal if the file
 * is missing/corrupt or was recorded from a different program.
 */
Trace loadTrace(const Program &prog, const std::string &path);

/** True if `path` holds a trace matching `prog` (no exceptions). */
bool traceFileMatches(const Program &prog, const std::string &path);

} // namespace prism

#endif // PRISM_TRACE_SERIALIZE_HH
