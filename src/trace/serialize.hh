/**
 * @file
 * Trace serialization. Generating a TDG "first requires TDG
 * generation through a conventional simulator" (paper Section 2.6);
 * the generated trace can then be reused to explore many core and
 * accelerator configurations. This module persists recorded traces
 * so exploration runs skip regeneration.
 *
 * The format is a compact little-endian binary: a header with a
 * magic number, a format version, and a program fingerprint (so a
 * trace is never replayed against the wrong binary), then one packed
 * record per dynamic instruction.
 *
 * Robustness: every read is checked against stream state, so a
 * truncated or corrupt file (e.g. a cache write interrupted mid-way)
 * is reported as an error instead of yielding garbage records.
 * Writes go through a temporary file renamed into place, so a
 * half-written file can never appear under the final path.
 */

#ifndef PRISM_TRACE_SERIALIZE_HH
#define PRISM_TRACE_SERIALIZE_HH

#include <istream>
#include <optional>
#include <ostream>
#include <string>

#include "trace/dyn_inst.hh"

namespace prism
{

/**
 * Structural fingerprint of a program (instruction count, opcodes,
 * operand shape). Stable across process runs; changes whenever the
 * program's instructions change.
 */
std::uint64_t programFingerprint(const Program &prog);

/**
 * Write just the record payload (count + packed records) of a trace
 * to a stream — the piece shared between standalone trace files and
 * artifact-cache entries (which carry their own validated header).
 */
void writeTracePayload(std::ostream &os, const Trace &trace);

/**
 * Read a payload written by writeTracePayload into `out` (which must
 * be empty and bound to the right program). Returns false with a
 * reason in `*error` on a short or corrupt payload; does NOT check
 * for trailing bytes (the caller owns the framing).
 */
bool readTracePayload(std::istream &is, Trace &out,
                      std::string *error = nullptr);

/**
 * Write a trace to `path` atomically (temp file + rename); fatal on
 * I/O failure.
 */
void saveTrace(const Trace &trace, const std::string &path);

/**
 * Read a trace previously written with saveTrace, validating magic,
 * format version, program fingerprint, and record payload length.
 * Returns nullopt (with a human-readable reason in `*error` when
 * non-null) if the file is missing, truncated, corrupt, or was
 * recorded from a different program.
 */
std::optional<Trace> tryLoadTrace(const Program &prog,
                                  const std::string &path,
                                  std::string *error = nullptr);

/**
 * Read a trace previously written with saveTrace. Fatal if the file
 * is missing/corrupt or was recorded from a different program.
 */
Trace loadTrace(const Program &prog, const std::string &path);

/** True if `path` holds a trace matching `prog` (no exceptions). */
bool traceFileMatches(const Program &prog, const std::string &path);

} // namespace prism

#endif // PRISM_TRACE_SERIALIZE_HH
