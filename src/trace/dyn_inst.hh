/**
 * @file
 * Dynamic instruction records: the trace the TDG is constructed from.
 *
 * Each DynInst carries both architectural facts (opcode, operands'
 * producing instructions, effective address, branch direction) and the
 * embedded microarchitectural events the paper's constructor records
 * (dynamic memory latency from the cache hierarchy, branch predictor
 * outcome). This makes the TDG input-dependent, as in the paper.
 */

#ifndef PRISM_TRACE_DYN_INST_HH
#define PRISM_TRACE_DYN_INST_HH

#include <array>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/types.hh"
#include "isa/isa.hh"
#include "prog/program.hh"

namespace prism
{

/**
 * One dynamic instruction in a trace.
 *
 * Layout is audited for the streaming front end: no heap-allocated
 * members (the record is trivially copyable, so batches move with
 * memcpy and serialize field-by-field), hot fields — the ones every
 * constructor/annotation/timing pass touches (sid, op, flags, memLat)
 * — lead the struct, and the whole record is exactly one cache line.
 */
struct DynInst
{
    StaticId sid = kNoStatic;  ///< static instruction this executes
    Opcode op = Opcode::Nop;   ///< cached opcode
    std::uint8_t memSize = 0;

    bool branchTaken = false;
    bool mispredicted = false;

    /** Load-use latency from the cache model (loads only). */
    std::uint16_t memLat = 0;

    Addr effAddr = 0;          ///< effective address (memory ops)

    /**
     * Producing dynamic-instruction index for each register source
     * slot; kNoProducer when the value predates the trace window.
     */
    std::array<std::int64_t, 3> srcProd = {kNoProducer, kNoProducer,
                                           kNoProducer};

    /** Dynamic index of the most recent store to this load's address. */
    std::int64_t memProd = kNoProducer;

    /** Architectural result (debug / analysis aid). */
    std::int64_t value = 0;
};

static_assert(sizeof(DynInst) == 64,
              "DynInst must stay one cache line");
static_assert(std::is_trivially_copyable_v<DynInst>,
              "DynInst must have no heap-allocated members");

/**
 * A full recorded execution: the dynamic instruction stream plus the
 * program it came from. Analyses take (program, trace) pairs.
 */
class Trace
{
  public:
    explicit Trace(const Program *prog) : prog_(prog) {}

    const Program &program() const { return *prog_; }

    void push(const DynInst &di) { insts_.push_back(di); }

    /** Bulk-append a front-end batch. */
    void
    append(const DynInst *d, std::size_t n)
    {
        insts_.insert(insts_.end(), d, d + n);
    }

    std::size_t size() const { return insts_.size(); }
    bool empty() const { return insts_.empty(); }

    const DynInst &operator[](DynId i) const { return insts_[i]; }
    DynInst &operator[](DynId i) { return insts_[i]; }

    const std::vector<DynInst> &insts() const { return insts_; }

    void reserve(std::size_t n) { insts_.reserve(n); }

    /** Drop all instructions; capacity is retained for reuse. */
    void clear() { insts_.clear(); }

  private:
    const Program *prog_;
    std::vector<DynInst> insts_;
};

} // namespace prism

#endif // PRISM_TRACE_DYN_INST_HH
