#include "trace/trace_cache.hh"

#include <filesystem>
#include <memory>
#include <sstream>

#include "common/logging.hh"

namespace prism
{

namespace
{
std::unique_ptr<TraceCache> g_cache; // installed before workers start
} // namespace

TraceCache::TraceCache(std::string dir) : dir_(std::move(dir))
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
        fatal("cannot create trace cache directory '%s': %s",
              dir_.c_str(), ec.message().c_str());
    }
}

std::string
TraceCache::pathFor(const std::string &name, const Program &prog,
                    std::uint64_t max_insts) const
{
    std::ostringstream os;
    os << dir_ << '/' << name << '-' << std::hex
       << programFingerprint(prog) << std::dec << '-' << max_insts
       << ".trc";
    return os.str();
}

std::optional<Trace>
TraceCache::load(const std::string &name, const Program &prog,
                 std::uint64_t max_insts) const
{
    const std::string path = pathFor(name, prog, max_insts);
    std::error_code ec;
    if (!std::filesystem::exists(path, ec) || ec) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    std::string err;
    std::optional<Trace> trace = tryLoadTrace(prog, path, &err);
    if (!trace) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        misses_.fetch_add(1, std::memory_order_relaxed);
        warn("trace cache: rejecting '%s' (%s); will regenerate",
             path.c_str(), err.c_str());
        return std::nullopt;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    return trace;
}

void
TraceCache::store(const std::string &name, const Program &prog,
                  std::uint64_t max_insts, const Trace &trace) const
{
    saveTrace(trace, pathFor(name, prog, max_insts));
    stores_.fetch_add(1, std::memory_order_relaxed);
}

TraceCacheStats
TraceCache::stats() const
{
    TraceCacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.rejected = rejected_.load(std::memory_order_relaxed);
    s.stores = stores_.load(std::memory_order_relaxed);
    return s;
}

void
TraceCache::setGlobalDir(const std::string &dir)
{
    g_cache = dir.empty() ? nullptr
                          : std::make_unique<TraceCache>(dir);
}

const TraceCache *
TraceCache::global()
{
    return g_cache.get();
}

} // namespace prism
