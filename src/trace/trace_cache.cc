#include "trace/trace_cache.hh"

namespace prism
{

ArtifactKey
traceArtifactKey(const Program &prog, std::uint64_t max_insts)
{
    return ArtifactKey()
        .mix(programFingerprint(prog))
        .mix(max_insts);
}

std::optional<Trace>
loadCachedTrace(const ArtifactCache &cache, const std::string &name,
                const Program &prog, std::uint64_t max_insts)
{
    std::optional<Trace> result;
    const bool hit = cache.load(
        kTraceArtifactKind, name, traceArtifactKey(prog, max_insts),
        [&](ArtifactReader &r) {
            // The artifact header already proved the address (and
            // with it the program fingerprint); fingerprint is
            // repeated in the payload as a defense-in-depth check
            // against key collisions.
            if (r.u64() != programFingerprint(prog))
                return false;
            Trace trace(&prog);
            if (!readTracePayload(r.stream(), trace))
                return false;
            r.noteRawBytes(8 + trace.size() * 64);
            result = std::move(trace);
            return true;
        });
    if (!hit)
        result.reset();
    return result;
}

void
storeCachedTrace(const ArtifactCache &cache, const std::string &name,
                 const Program &prog, std::uint64_t max_insts,
                 const Trace &trace)
{
    cache.store(kTraceArtifactKind, name,
                traceArtifactKey(prog, max_insts),
                [&](ArtifactWriter &w) {
                    w.u64(programFingerprint(prog));
                    writeTracePayload(w.stream(), trace);
                    w.noteRawBytes(8 + trace.size() * 64);
                });
}

} // namespace prism
