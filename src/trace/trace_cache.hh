/**
 * @file
 * Trace entries in the artifact store: "record once, explore many
 * configurations" (paper Section 2.6) across *process* runs.
 * Generated traces are persisted in the content-addressed artifact
 * cache keyed by workload name, program fingerprint, and instruction
 * budget; repeated exploration runs load the recorded trace instead
 * of re-simulating the workload.
 *
 * The artifact store supplies atomic writes and checked reads; the
 * payload reuses serialize.cc's packed-record format, so a cache file
 * that fails validation is treated as a miss and overwritten.
 */

#ifndef PRISM_TRACE_TRACE_CACHE_HH
#define PRISM_TRACE_TRACE_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>

#include "common/artifact_cache.hh"
#include "trace/serialize.hh"

namespace prism
{

/**
 * Trace artifact namespace. The version tracks the packed-record
 * payload format (serialize.cc's kFormatVersion lineage): bump it
 * whenever the record layout changes.
 */
inline constexpr ArtifactKind kTraceArtifactKind{"trace", 2};

/** Content identity of one recorded trace. */
ArtifactKey traceArtifactKey(const Program &prog,
                             std::uint64_t max_insts);

/**
 * Look up a recorded trace in `cache`. A present-but-invalid file
 * (truncated, corrupt, wrong program) counts as a rejected miss, is
 * logged, and will be overwritten by the next store.
 */
std::optional<Trace> loadCachedTrace(const ArtifactCache &cache,
                                     const std::string &name,
                                     const Program &prog,
                                     std::uint64_t max_insts);

/** Persist a recorded trace for future runs (atomic write). */
void storeCachedTrace(const ArtifactCache &cache,
                      const std::string &name, const Program &prog,
                      std::uint64_t max_insts, const Trace &trace);

} // namespace prism

#endif // PRISM_TRACE_TRACE_CACHE_HH
