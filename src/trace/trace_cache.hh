/**
 * @file
 * On-disk trace cache: "record once, explore many configurations"
 * (paper Section 2.6) across *process* runs. Generated traces are
 * persisted in a cache directory keyed by workload name, program
 * fingerprint, and instruction budget; repeated exploration runs
 * load the recorded trace instead of re-simulating the workload.
 *
 * Entries are written atomically (serialize.cc's temp-file + rename)
 * and validated on load, so an interrupted run can at worst leave a
 * stale temp file, never a corrupt hit: a cache file that fails
 * validation is treated as a miss and overwritten.
 *
 * Thread-safety: all members are safe to call concurrently; the
 * process-wide instance is installed once (before workers start) via
 * setGlobalDir().
 */

#ifndef PRISM_TRACE_TRACE_CACHE_HH
#define PRISM_TRACE_TRACE_CACHE_HH

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "trace/serialize.hh"

namespace prism
{

/** Monotone counters describing cache effectiveness. */
struct TraceCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;   ///< lookups with no usable file
    std::uint64_t rejected = 0; ///< files present but failed validation
    std::uint64_t stores = 0;
};

class TraceCache
{
  public:
    /** Open (creating if needed) a cache rooted at `dir`; fatal if
     *  the directory cannot be created. */
    explicit TraceCache(std::string dir);

    const std::string &dir() const { return dir_; }

    /** Cache file path for one (workload, program, budget) key. */
    std::string pathFor(const std::string &name, const Program &prog,
                        std::uint64_t max_insts) const;

    /**
     * Look up a recorded trace. A present-but-invalid file (trun-
     * cated, corrupt, wrong program) counts as a miss, is logged,
     * and will be overwritten by the next store().
     */
    std::optional<Trace> load(const std::string &name,
                              const Program &prog,
                              std::uint64_t max_insts) const;

    /** Persist a recorded trace for future runs (atomic write). */
    void store(const std::string &name, const Program &prog,
               std::uint64_t max_insts, const Trace &trace) const;

    /** Counters for this cache instance. */
    TraceCacheStats stats() const;

    // ---- Process-wide opt-in instance (e.g. from --cache-dir) ----

    /** Install the global cache; empty dir disables it. */
    static void setGlobalDir(const std::string &dir);

    /** The installed global cache, or nullptr when disabled. */
    static const TraceCache *global();

  private:
    std::string dir_;
    mutable std::atomic<std::uint64_t> hits_{0};
    mutable std::atomic<std::uint64_t> misses_{0};
    mutable std::atomic<std::uint64_t> rejected_{0};
    mutable std::atomic<std::uint64_t> stores_{0};
};

} // namespace prism

#endif // PRISM_TRACE_TRACE_CACHE_HH
