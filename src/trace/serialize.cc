#include "trace/serialize.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/logging.hh"

namespace prism
{

namespace
{

constexpr std::uint64_t kMagic = 0x5052534D54524331ull; // "PRSMTRC1"
constexpr std::uint64_t kFormatVersion = 2;

void
writeU64(std::ostream &os, std::uint64_t v)
{
    char buf[8];
    for (int i = 0; i < 8; ++i)
        buf[i] = static_cast<char>(v >> (8 * i));
    os.write(buf, 8);
}

/** Checked read: false on short read or an already-failed stream. */
bool
tryReadU64(std::istream &is, std::uint64_t &v)
{
    char buf[8];
    is.read(buf, 8);
    if (!is || is.gcount() != 8)
        return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(buf[i]))
             << (8 * i);
    }
    return true;
}

/** FNV-1a over a byte. */
void
mix(std::uint64_t &h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xFF;
        h *= 0x100000001B3ull;
    }
}

struct PackedDyn
{
    // Fixed 64-byte record, little-endian fields.
    std::uint64_t fields[8];
};

PackedDyn
pack(const DynInst &di)
{
    PackedDyn p{};
    p.fields[0] = (static_cast<std::uint64_t>(di.sid)) |
                  (static_cast<std::uint64_t>(di.op) << 32) |
                  (static_cast<std::uint64_t>(di.memSize) << 40) |
                  (static_cast<std::uint64_t>(di.branchTaken) << 48) |
                  (static_cast<std::uint64_t>(di.mispredicted) << 49);
    p.fields[1] = di.memLat;
    p.fields[2] = di.effAddr;
    p.fields[3] = static_cast<std::uint64_t>(di.srcProd[0]);
    p.fields[4] = static_cast<std::uint64_t>(di.srcProd[1]);
    p.fields[5] = static_cast<std::uint64_t>(di.srcProd[2]);
    p.fields[6] = static_cast<std::uint64_t>(di.memProd);
    p.fields[7] = static_cast<std::uint64_t>(di.value);
    return p;
}

DynInst
unpack(const PackedDyn &p)
{
    DynInst di;
    di.sid = static_cast<StaticId>(p.fields[0] & 0xFFFFFFFF);
    di.op = static_cast<Opcode>((p.fields[0] >> 32) & 0xFF);
    di.memSize =
        static_cast<std::uint8_t>((p.fields[0] >> 40) & 0xFF);
    di.branchTaken = (p.fields[0] >> 48) & 1;
    di.mispredicted = (p.fields[0] >> 49) & 1;
    di.memLat = static_cast<std::uint16_t>(p.fields[1]);
    di.effAddr = p.fields[2];
    di.srcProd[0] = static_cast<std::int64_t>(p.fields[3]);
    di.srcProd[1] = static_cast<std::int64_t>(p.fields[4]);
    di.srcProd[2] = static_cast<std::int64_t>(p.fields[5]);
    di.memProd = static_cast<std::int64_t>(p.fields[6]);
    di.value = static_cast<std::int64_t>(p.fields[7]);
    return di;
}

/** Validated header contents. */
struct Header
{
    std::uint64_t fingerprint = 0;
};

/**
 * Read and validate magic/version/fingerprint against `prog`.
 * Returns nullopt with a reason in `error` on any mismatch.
 */
std::optional<Header>
readHeader(std::istream &is, const Program &prog,
           const std::string &path, std::string &error)
{
    std::uint64_t magic = 0;
    std::uint64_t version = 0;
    Header h;
    if (!tryReadU64(is, magic) || !tryReadU64(is, version) ||
        !tryReadU64(is, h.fingerprint)) {
        error = "'" + path + "': truncated trace header";
        return std::nullopt;
    }
    if (magic != kMagic) {
        error = "'" + path + "' is not a Prism trace file";
        return std::nullopt;
    }
    if (version != kFormatVersion) {
        std::ostringstream os;
        os << "'" << path << "': unsupported trace format version "
           << version << " (expected " << kFormatVersion << ")";
        error = os.str();
        return std::nullopt;
    }
    if (h.fingerprint != programFingerprint(prog)) {
        error = "trace '" + path +
                "' was recorded from a different program";
        return std::nullopt;
    }
    return h;
}

} // namespace

std::uint64_t
programFingerprint(const Program &prog)
{
    prism_assert(prog.finalized(), "fingerprint needs finalization");
    std::uint64_t h = 0xCBF29CE484222325ull;
    mix(h, prog.numInstrs());
    for (StaticId s = 0; s < prog.numInstrs(); ++s) {
        const Instr &in = prog.instr(s);
        mix(h, static_cast<std::uint64_t>(in.op));
        mix(h, in.dst);
        mix(h, in.src[0]);
        mix(h, in.src[1]);
        mix(h, in.src[2]);
        mix(h, static_cast<std::uint64_t>(in.imm));
        mix(h, static_cast<std::uint64_t>(in.target));
    }
    return h;
}

void
writeTracePayload(std::ostream &os, const Trace &trace)
{
    writeU64(os, trace.size());
    for (DynId i = 0; i < trace.size(); ++i) {
        const PackedDyn p = pack(trace[i]);
        for (std::uint64_t f : p.fields)
            writeU64(os, f);
    }
}

bool
readTracePayload(std::istream &is, Trace &out, std::string *error)
{
    std::uint64_t count = 0;
    if (!tryReadU64(is, count)) {
        if (error)
            *error = "truncated trace payload (missing count)";
        return false;
    }
    out.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        PackedDyn p;
        for (std::uint64_t &f : p.fields) {
            if (!tryReadU64(is, f)) {
                if (error) {
                    std::ostringstream msg;
                    msg << "truncated trace payload: header "
                        << "promises " << count
                        << " records, payload ends after "
                        << out.size();
                    *error = msg.str();
                }
                return false;
            }
        }
        out.push(unpack(p));
    }
    return true;
}

void
saveTrace(const Trace &trace, const std::string &path)
{
    // Write to a unique sibling and rename into place so that an
    // interrupted write can never leave a partial file under `path`
    // (concurrent writers of the same path are also safe: rename is
    // atomic and last-writer-wins with a complete file either way).
    std::ostringstream tmp_name;
    tmp_name << path << ".tmp." << std::this_thread::get_id();
    const std::string tmp = tmp_name.str();
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            fatal("cannot open '%s' for writing", tmp.c_str());
        writeU64(os, kMagic);
        writeU64(os, kFormatVersion);
        writeU64(os, programFingerprint(trace.program()));
        writeTracePayload(os, trace);
        os.flush();
        if (!os) {
            os.close();
            std::remove(tmp.c_str());
            fatal("short write to '%s'", tmp.c_str());
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::remove(tmp.c_str());
        fatal("cannot rename '%s' to '%s': %s", tmp.c_str(),
              path.c_str(), ec.message().c_str());
    }
}

std::optional<Trace>
tryLoadTrace(const Program &prog, const std::string &path,
             std::string *error)
{
    std::string err;
    std::optional<Trace> result;
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        err = "cannot open trace file '" + path + "'";
    } else if (readHeader(is, prog, path, err)) {
        Trace trace(&prog);
        std::string payload_err;
        if (!readTracePayload(is, trace, &payload_err)) {
            err = "truncated trace file '" + path +
                  "': " + payload_err;
        } else if (is.peek() != std::ifstream::traits_type::eof()) {
            err = "trailing bytes after trace payload in '" + path +
                  "'";
        } else {
            result = std::move(trace);
        }
    }
    if (!result && error)
        *error = err;
    return result;
}

Trace
loadTrace(const Program &prog, const std::string &path)
{
    std::string err;
    std::optional<Trace> t = tryLoadTrace(prog, path, &err);
    if (!t)
        fatal("%s", err.c_str());
    return std::move(*t);
}

bool
traceFileMatches(const Program &prog, const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    std::string err;
    return readHeader(is, prog, path, err).has_value();
}

} // namespace prism
