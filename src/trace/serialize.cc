#include "trace/serialize.hh"

#include <cstdio>
#include <fstream>

#include "common/logging.hh"

namespace prism
{

namespace
{

constexpr std::uint64_t kMagic = 0x5052534D54524331ull; // "PRSMTRC1"

void
writeU64(std::ostream &os, std::uint64_t v)
{
    char buf[8];
    for (int i = 0; i < 8; ++i)
        buf[i] = static_cast<char>(v >> (8 * i));
    os.write(buf, 8);
}

std::uint64_t
readU64(std::istream &is)
{
    char buf[8];
    is.read(buf, 8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(buf[i]))
             << (8 * i);
    }
    return v;
}

/** FNV-1a over a byte. */
void
mix(std::uint64_t &h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xFF;
        h *= 0x100000001B3ull;
    }
}

struct PackedDyn
{
    // Fixed 64-byte record, little-endian fields.
    std::uint64_t fields[8];
};

PackedDyn
pack(const DynInst &di)
{
    PackedDyn p{};
    p.fields[0] = (static_cast<std::uint64_t>(di.sid)) |
                  (static_cast<std::uint64_t>(di.op) << 32) |
                  (static_cast<std::uint64_t>(di.memSize) << 40) |
                  (static_cast<std::uint64_t>(di.branchTaken) << 48) |
                  (static_cast<std::uint64_t>(di.mispredicted) << 49);
    p.fields[1] = di.memLat;
    p.fields[2] = di.effAddr;
    p.fields[3] = static_cast<std::uint64_t>(di.srcProd[0]);
    p.fields[4] = static_cast<std::uint64_t>(di.srcProd[1]);
    p.fields[5] = static_cast<std::uint64_t>(di.srcProd[2]);
    p.fields[6] = static_cast<std::uint64_t>(di.memProd);
    p.fields[7] = static_cast<std::uint64_t>(di.value);
    return p;
}

DynInst
unpack(const PackedDyn &p)
{
    DynInst di;
    di.sid = static_cast<StaticId>(p.fields[0] & 0xFFFFFFFF);
    di.op = static_cast<Opcode>((p.fields[0] >> 32) & 0xFF);
    di.memSize =
        static_cast<std::uint8_t>((p.fields[0] >> 40) & 0xFF);
    di.branchTaken = (p.fields[0] >> 48) & 1;
    di.mispredicted = (p.fields[0] >> 49) & 1;
    di.memLat = static_cast<std::uint16_t>(p.fields[1]);
    di.effAddr = p.fields[2];
    di.srcProd[0] = static_cast<std::int64_t>(p.fields[3]);
    di.srcProd[1] = static_cast<std::int64_t>(p.fields[4]);
    di.srcProd[2] = static_cast<std::int64_t>(p.fields[5]);
    di.memProd = static_cast<std::int64_t>(p.fields[6]);
    di.value = static_cast<std::int64_t>(p.fields[7]);
    return di;
}

} // namespace

std::uint64_t
programFingerprint(const Program &prog)
{
    prism_assert(prog.finalized(), "fingerprint needs finalization");
    std::uint64_t h = 0xCBF29CE484222325ull;
    mix(h, prog.numInstrs());
    for (StaticId s = 0; s < prog.numInstrs(); ++s) {
        const Instr &in = prog.instr(s);
        mix(h, static_cast<std::uint64_t>(in.op));
        mix(h, in.dst);
        mix(h, in.src[0]);
        mix(h, in.src[1]);
        mix(h, in.src[2]);
        mix(h, static_cast<std::uint64_t>(in.imm));
        mix(h, static_cast<std::uint64_t>(in.target));
    }
    return h;
}

void
saveTrace(const Trace &trace, const std::string &path)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        fatal("cannot open '%s' for writing", path.c_str());
    writeU64(os, kMagic);
    writeU64(os, programFingerprint(trace.program()));
    writeU64(os, trace.size());
    for (DynId i = 0; i < trace.size(); ++i) {
        const PackedDyn p = pack(trace[i]);
        for (std::uint64_t f : p.fields)
            writeU64(os, f);
    }
    if (!os)
        fatal("short write to '%s'", path.c_str());
}

Trace
loadTrace(const Program &prog, const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("cannot open trace file '%s'", path.c_str());
    if (readU64(is) != kMagic)
        fatal("'%s' is not a Prism trace file", path.c_str());
    if (readU64(is) != programFingerprint(prog)) {
        fatal("trace '%s' was recorded from a different program",
              path.c_str());
    }
    const std::uint64_t n = readU64(is);
    Trace trace(&prog);
    trace.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        PackedDyn p;
        for (std::uint64_t &f : p.fields)
            f = readU64(is);
        if (!is)
            fatal("truncated trace file '%s'", path.c_str());
        trace.push(unpack(p));
    }
    return trace;
}

bool
traceFileMatches(const Program &prog, const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    if (readU64(is) != kMagic)
        return false;
    return static_cast<bool>(is) &&
           readU64(is) == programFingerprint(prog);
}

} // namespace prism
