/**
 * @file
 * Aggregate statistics over a trace: opcode mix, branch behavior,
 * memory behavior. Used by tests, workload characterization, and the
 * behavior-space classification of Figure 6.
 */

#ifndef PRISM_TRACE_TRACE_STATS_HH
#define PRISM_TRACE_TRACE_STATS_HH

#include <array>
#include <cstdint>
#include <string>

#include "trace/dyn_inst.hh"

namespace prism
{

/** Summary statistics of a dynamic trace. */
struct TraceStats
{
    std::uint64_t numInsts = 0;
    std::uint64_t numLoads = 0;
    std::uint64_t numStores = 0;
    std::uint64_t numBranches = 0;      ///< conditional only
    std::uint64_t numTaken = 0;
    std::uint64_t numMispredicted = 0;
    std::uint64_t numFp = 0;
    std::uint64_t numMemLatTotal = 0;   ///< sum of load latencies

    std::array<std::uint64_t, kNumOpcodes> opCounts{};

    /** Fraction of conditional branches mispredicted. */
    double mispredictRate() const;

    /** Fraction of instructions that are conditional branches. */
    double branchFraction() const;

    /** Mean load-use latency. */
    double avgLoadLatency() const;

    /** Multi-line human-readable rendering. */
    std::string toString() const;
};

/** Compute statistics over an entire trace. */
TraceStats computeStats(const Trace &trace);

} // namespace prism

#endif // PRISM_TRACE_TRACE_STATS_HH
