#include "trace/trace_stats.hh"

#include <sstream>

namespace prism
{

double
TraceStats::mispredictRate() const
{
    return numBranches ? static_cast<double>(numMispredicted) /
                             static_cast<double>(numBranches)
                       : 0.0;
}

double
TraceStats::branchFraction() const
{
    return numInsts ? static_cast<double>(numBranches) /
                          static_cast<double>(numInsts)
                    : 0.0;
}

double
TraceStats::avgLoadLatency() const
{
    return numLoads ? static_cast<double>(numMemLatTotal) /
                          static_cast<double>(numLoads)
                    : 0.0;
}

std::string
TraceStats::toString() const
{
    std::ostringstream os;
    os << "insts=" << numInsts
       << " loads=" << numLoads
       << " stores=" << numStores
       << " branches=" << numBranches
       << " taken=" << numTaken
       << " mispred=" << numMispredicted
       << " fp=" << numFp
       << " avgLoadLat=" << avgLoadLatency();
    return os.str();
}

TraceStats
computeStats(const Trace &trace)
{
    TraceStats s;
    for (const DynInst &di : trace.insts()) {
        ++s.numInsts;
        ++s.opCounts[static_cast<std::size_t>(di.op)];
        const OpInfo &oi = opInfo(di.op);
        if (oi.isLoad) {
            ++s.numLoads;
            s.numMemLatTotal += di.memLat;
        }
        if (oi.isStore)
            ++s.numStores;
        if (oi.isCondBranch) {
            ++s.numBranches;
            if (di.branchTaken)
                ++s.numTaken;
            if (di.mispredicted)
                ++s.numMispredicted;
        }
        if (oi.isFp)
            ++s.numFp;
    }
    return s;
}

} // namespace prism
