/**
 * @file
 * The benchmark registry (paper Table 3): ~45 kernels across six
 * suites, each a behavioral analogue of its namesake (see DESIGN.md's
 * substitution table), plus the "vertical microbenchmarks" used for
 * the OOO cross-validation experiment.
 */

#ifndef PRISM_WORKLOADS_SUITE_HH
#define PRISM_WORKLOADS_SUITE_HH

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "prog/builder.hh"
#include "sim/trace_gen.hh"
#include "tdg/tdg.hh"

namespace prism
{

/** Workload regularity class (Figure 11's grouping). */
enum class SuiteClass { Regular, SemiRegular, Irregular };

/** Display name of a suite class. */
const char *suiteClassName(SuiteClass c);

/** A registered workload kernel. */
struct WorkloadSpec
{
    const char *name;
    const char *suite;
    SuiteClass cls;
    /** Build the guest program and stage its input data/arguments. */
    void (*build)(ProgramBuilder &pb, SimMemory &mem,
                  std::vector<std::int64_t> &args);
    std::uint64_t maxInsts = 400'000;
};

/** All Table 3 workloads. */
std::span<const WorkloadSpec> allWorkloads();

/** Vertical microbenchmarks (OOO cross-validation, Section 2.5). */
std::span<const WorkloadSpec> microbenchmarks();

/** Find a workload (searches both lists); fatal if unknown. */
const WorkloadSpec &findWorkload(const std::string &name);

// Per-suite registration (implemented one suite per file).
std::span<const WorkloadSpec> tptWorkloads();
std::span<const WorkloadSpec> parboilWorkloads();
std::span<const WorkloadSpec> specfpWorkloads();
std::span<const WorkloadSpec> mediabenchWorkloads();
std::span<const WorkloadSpec> tpchWorkloads();
std::span<const WorkloadSpec> specintWorkloads();

/**
 * Process-wide instruction-budget override (0 = use each spec's
 * default). Install before workers start; reduced budgets let
 * smoke-test runs stay fast while sharing the bench binaries.
 */
void setMaxInstsOverride(std::uint64_t max_insts);

/**
 * A fully materialized workload: program built, inputs staged, trace
 * recorded, TDG constructed.
 *
 * When a process-wide artifact cache is installed (ArtifactCache::
 * setGlobalDir), load() first consults it: on a trace hit the
 * interpreter run is skipped entirely, and on a TDG-profile hit the
 * profiling walk is skipped too — the TDG assembles from recorded
 * artifacts (paper Section 2.6); on a miss the generated trace and
 * profiles are stored for future runs. load() is safe to call
 * concurrently for different specs (the parallel sweep driver does
 * so).
 */
class LoadedWorkload
{
  public:
    /** Build + trace + construct the TDG for a workload. */
    static std::unique_ptr<LoadedWorkload>
    load(const WorkloadSpec &spec, std::uint64_t max_insts_override = 0);

    const WorkloadSpec &spec() const { return *spec_; }
    const std::string &name() const { return name_; }
    const Tdg &tdg() const { return *tdg_; }
    const Program &program() const { return prog_; }

    /** The effective instruction budget this load ran with. */
    std::uint64_t maxInsts() const { return maxInsts_; }

    /** True if the trace came from the on-disk cache. genResult()'s
     *  simulator statistics are only meaningful when this is false. */
    bool fromCache() const { return fromCache_; }

    /** True if the TDG profiles came from the on-disk cache (no
     *  profiling walk over the trace happened). */
    bool profilesFromCache() const { return profilesFromCache_; }

    const TraceGenResult &genResult() const { return genResult_; }

  private:
    LoadedWorkload() = default;

    const WorkloadSpec *spec_ = nullptr;
    std::string name_;
    Program prog_;
    TraceGenResult genResult_;
    std::uint64_t maxInsts_ = 0;
    bool fromCache_ = false;
    bool profilesFromCache_ = false;
    std::unique_ptr<Tdg> tdg_;
};

} // namespace prism

#endif // PRISM_WORKLOADS_SUITE_HH
