/**
 * @file
 * SPECint analogues (paper Table 3, "irregular"): pointer chasing
 * (mcf), string matching (gzip), dictionary/hash probing (parser),
 * sorting and move-to-front (bzip2), branchy table dispatch (gcc),
 * board scans (sjeng, gobmk), heap-based search (astar), Viterbi DP
 * (hmmer), placement cost evaluation (vpr), and mixed codec loops
 * (h264ref, which Figure 14 traces).
 */

#include "workloads/suite.hh"

#include "workloads/kernel_util.hh"

namespace prism
{

namespace
{

void
buildGzip(ProgramBuilder &pb, SimMemory &mem,
          std::vector<std::int64_t> &args)
{
    Rng rng(6001);
    Arena arena;
    const std::int64_t n = 16000;
    const Addr text = arena.alloc(n * 8);
    const Addr out = arena.alloc(n * 8);
    // Low-entropy text so back-reference matches run long (LZ hot
    // loops iterate many times per match).
    for (std::int64_t i = 0; i < n; ++i)
        mem.writeI64(text + i * 8, rng.range(0, 1));

    auto &f = pb.func("main", 2);
    const RegId t_b = f.arg(0);
    const RegId o_b = f.arg(1);
    const RegId eight = f.movi(8);
    const RegId one = f.movi(1);
    const RegId n_r = f.movi(n - 64);

    // LZ-style: for each position, extend a match against a fixed
    // back-reference until mismatch (data-dependent while).
    const RegId pos = f.reg();
    f.moviTo(pos, 64);
    whileLoop(
        f, [&]() { return f.cmplt(pos, n_r); },
        [&]() {
            const RegId len = f.reg();
            f.moviTo(len, 0);
            const RegId limit = f.movi(32);
            whileLoop(
                f,
                [&]() {
                    const RegId off = f.mul(f.add(pos, len), eight);
                    const RegId a = f.ld(f.add(t_b, off), 0);
                    const RegId back =
                        f.mul(f.sub(f.add(pos, len), f.movi(63)),
                              eight);
                    const RegId b = f.ld(f.add(t_b, back), 0);
                    const RegId eq = f.cmpeq(a, b);
                    const RegId more = f.cmplt(len, limit);
                    return f.and_(eq, more);
                },
                [&]() { f.addTo(len, len, one); });
            f.st(f.add(o_b, f.mul(pos, eight)), 0, len);
            f.addTo(pos, pos, f.add(len, one));
        });
    f.retVoid();
    args = {static_cast<std::int64_t>(text),
            static_cast<std::int64_t>(out)};
}

void
buildMcf(ProgramBuilder &pb, SimMemory &mem,
         std::vector<std::int64_t> &args, std::uint64_t seed)
{
    Rng rng(seed);
    Arena arena;
    // Arc list: each node points to a pseudo-random successor; costs
    // updated along chains (pointer chasing, cache-hostile).
    const std::int64_t nodes = 16384;
    const Addr next = arena.alloc(nodes * 8);
    const Addr cost = arena.alloc(nodes * 8);
    for (std::int64_t i = 0; i < nodes; ++i)
        mem.writeI64(next + i * 8, rng.range(0, nodes - 1));
    fillI64(mem, cost, nodes, rng, 0, 100);

    auto &f = pb.func("main", 2);
    const RegId nx_b = f.arg(0);
    const RegId c_b = f.arg(1);
    const RegId eight = f.movi(8);
    const RegId chains = f.movi(600);
    const RegId hops = f.movi(40);
    const RegId one = f.movi(1);

    countedLoop(f, 0, 600, 1, [&](RegId chain) {
        (void)chains;
        const RegId node = f.reg();
        f.movTo(node, f.and_(chain, f.movi(16383)));
        const RegId h = f.reg();
        f.moviTo(h, 0);
        const RegId acc = f.reg();
        f.moviTo(acc, 0);
        whileLoop(
            f, [&]() { return f.cmplt(h, hops); },
            [&]() {
                const RegId off = f.mul(node, eight);
                const RegId c = f.ld(f.add(c_b, off), 0);
                f.addTo(acc, acc, c);
                const RegId nn = f.ld(f.add(nx_b, off), 0);
                f.movTo(node, nn);
                f.addTo(h, h, one);
            });
        // Relax the chain start's cost if the path was cheaper.
        const RegId off0 = f.mul(f.and_(chain, f.movi(16383)),
                                 eight);
        const RegId old = f.ld(f.add(c_b, off0), 0);
        const RegId lt = f.cmplt(acc, old);
        const RegId val = f.sel(lt, acc, old);
        f.st(f.add(c_b, off0), 0, val);
    });
    f.retVoid();
    args = {static_cast<std::int64_t>(next),
            static_cast<std::int64_t>(cost)};
}

void
buildMcf181(ProgramBuilder &pb, SimMemory &mem,
            std::vector<std::int64_t> &args)
{
    buildMcf(pb, mem, args, 6002);
}

void
buildMcf429(ProgramBuilder &pb, SimMemory &mem,
            std::vector<std::int64_t> &args)
{
    buildMcf(pb, mem, args, 6003);
}

void
buildVpr(ProgramBuilder &pb, SimMemory &mem,
         std::vector<std::int64_t> &args)
{
    Rng rng(6004);
    Arena arena;
    const std::int64_t cells = 2200;
    const Addr x = arena.alloc(cells * 8);
    const Addr y = arena.alloc(cells * 8);
    const Addr net = arena.alloc(cells * 8);
    const Addr cost = arena.alloc(cells * 8);
    fillI64(mem, x, cells, rng, 0, 63);
    fillI64(mem, y, cells, rng, 0, 63);
    fillI64(mem, net, cells, rng, 0, cells - 1);

    auto &f = pb.func("main", 4);
    const RegId x_b = f.arg(0);
    const RegId y_b = f.arg(1);
    const RegId n_b = f.arg(2);
    const RegId c_b = f.arg(3);
    const RegId eight = f.movi(8);
    const RegId zero = f.movi(0);

    countedLoop(f, 0, cells, 1, [&](RegId c) {
        const RegId off = f.mul(c, eight);
        const RegId xi = f.ld(f.add(x_b, off), 0);
        const RegId yi = f.ld(f.add(y_b, off), 0);
        const RegId peer = f.ld(f.add(n_b, off), 0);
        const RegId poff = f.mul(peer, eight);
        const RegId xj = f.ld(f.add(x_b, poff), 0);
        const RegId yj = f.ld(f.add(y_b, poff), 0);
        const RegId dx = f.sub(xi, xj);
        const RegId dy = f.sub(yi, yj);
        const RegId adx =
            f.sel(f.cmplt(dx, zero), f.sub(zero, dx), dx);
        const RegId ady =
            f.sel(f.cmplt(dy, zero), f.sub(zero, dy), dy);
        const RegId bb = f.add(adx, ady);
        // Congestion penalty on long wires (biased branch).
        const RegId lim = f.movi(48);
        const RegId over = f.cmplt(lim, bb);
        const RegId pen = f.reg();
        f.moviTo(pen, 0);
        ifElse(f, over, [&]() {
            f.movTo(pen, f.mul(bb, f.movi(3)));
        });
        f.st(f.add(c_b, off), 0, f.add(bb, pen));
    });
    f.retVoid();
    args = {static_cast<std::int64_t>(x),
            static_cast<std::int64_t>(y),
            static_cast<std::int64_t>(net),
            static_cast<std::int64_t>(cost)};
}

void
buildParser(ProgramBuilder &pb, SimMemory &mem,
            std::vector<std::int64_t> &args)
{
    Rng rng(6005);
    Arena arena;
    const std::int64_t buckets = 1024;
    const std::int64_t chain = 4;
    const std::int64_t words = 5000;
    const Addr table = arena.alloc(buckets * chain * 8);
    const Addr query = arena.alloc(words * 8);
    const Addr hits = arena.alloc(words * 8);
    fillI64(mem, table, buckets * chain, rng, 0, 1 << 16);
    fillI64(mem, query, words, rng, 0, 1 << 16);

    auto &f = pb.func("main", 3);
    const RegId t_b = f.arg(0);
    const RegId q_b = f.arg(1);
    const RegId h_b = f.arg(2);
    const RegId eight = f.movi(8);
    const RegId mask = f.movi(buckets - 1);
    const RegId chainsz = f.movi(chain * 8);
    const RegId one = f.movi(1);

    countedLoop(f, 0, words, 1, [&](RegId w) {
        const RegId key = f.ld(f.add(q_b, f.mul(w, eight)), 0);
        // Hash: mix and mask.
        const RegId h1 = f.xor_(key, f.shr(key, f.movi(5)));
        const RegId bucket = f.and_(h1, mask);
        const RegId base = f.add(t_b, f.mul(bucket, chainsz));
        const RegId found = f.reg();
        const RegId k = f.reg();
        f.moviTo(found, 0);
        f.moviTo(k, 0);
        const RegId chain_r = f.movi(chain);
        whileLoop(
            f,
            [&]() {
                const RegId more = f.cmplt(k, chain_r);
                const RegId notf = f.cmpeq(found, f.movi(0));
                return f.and_(more, notf);
            },
            [&]() {
                const RegId e =
                    f.ld(f.add(base, f.mul(k, eight)), 0);
                const RegId eq = f.cmpeq(e, key);
                f.selTo(found, eq, one, found);
                f.addTo(k, k, one);
            });
        f.st(f.add(h_b, f.mul(w, eight)), 0, found);
    });
    f.retVoid();
    args = {static_cast<std::int64_t>(table),
            static_cast<std::int64_t>(query),
            static_cast<std::int64_t>(hits)};
}

void
buildBzip2(ProgramBuilder &pb, SimMemory &mem,
           std::vector<std::int64_t> &args, std::uint64_t seed)
{
    Rng rng(seed);
    Arena arena;
    const std::int64_t n = 256;
    const std::int64_t passes = 40;
    const Addr data = arena.alloc(n * 8);
    const Addr mtf = arena.alloc(n * 8);
    fillI64(mem, data, n, rng, 0, 255);
    for (std::int64_t i = 0; i < n; ++i)
        mem.writeI64(mtf + i * 8, i);

    auto &f = pb.func("main", 2);
    const RegId d_b = f.arg(0);
    const RegId m_b = f.arg(1);
    const RegId eight = f.movi(8);
    const RegId one = f.movi(1);
    const RegId n_r = f.movi(n);

    countedLoop(f, 0, passes, 1, [&](RegId) {
        // Bubble pass (branch-heavy compare/swap, like the block
        // sort's inner comparisons).
        countedLoop(f, 0, n - 1, 1, [&](RegId i) {
            const RegId off = f.mul(i, eight);
            const RegId p = f.add(d_b, off);
            const RegId a = f.ld(p, 0);
            const RegId b = f.ld(p, 8);
            const RegId gt = f.cmplt(b, a);
            ifElse(f, gt, [&]() {
                f.st(p, 0, b);
                f.st(p, 8, a);
            });
        });
        // Move-to-front scan with a data-dependent search.
        countedLoop(f, 0, 64, 1, [&](RegId i) {
            const RegId v =
                f.ld(f.add(d_b, f.mul(i, eight)), 0);
            const RegId j = f.reg();
            const RegId found = f.reg();
            f.moviTo(j, 0);
            f.moviTo(found, 0);
            whileLoop(
                f,
                [&]() {
                    const RegId more = f.cmplt(j, n_r);
                    const RegId notf =
                        f.cmpeq(found, f.movi(0));
                    return f.and_(more, notf);
                },
                [&]() {
                    const RegId e =
                        f.ld(f.add(m_b, f.mul(j, eight)), 0);
                    const RegId eq = f.cmpeq(e, v);
                    f.selTo(found, eq, one, found);
                    f.addTo(j, j, one);
                });
        });
    });
    f.retVoid();
    args = {static_cast<std::int64_t>(data),
            static_cast<std::int64_t>(mtf)};
}

void
buildBzip2_256(ProgramBuilder &pb, SimMemory &mem,
               std::vector<std::int64_t> &args)
{
    buildBzip2(pb, mem, args, 6006);
}

void
buildBzip2_401(ProgramBuilder &pb, SimMemory &mem,
               std::vector<std::int64_t> &args)
{
    buildBzip2(pb, mem, args, 6007);
}

void
buildGcc(ProgramBuilder &pb, SimMemory &mem,
         std::vector<std::int64_t> &args)
{
    Rng rng(6008);
    Arena arena;
    const std::int64_t insns = 7000;
    const Addr opcodes = arena.alloc(insns * 8);
    const Addr operands = arena.alloc(insns * 8);
    const Addr out = arena.alloc(insns * 8);
    fillI64(mem, opcodes, insns, rng, 0, 5);
    fillI64(mem, operands, insns, rng, 0, 1000);

    auto &f = pb.func("main", 3);
    const RegId op_b = f.arg(0);
    const RegId or_b = f.arg(1);
    const RegId out_b = f.arg(2);
    const RegId eight = f.movi(8);

    // Instruction-dispatch loop: a chain of opcode tests (the jump
    // table of a compiler's folding pass).
    countedLoop(f, 0, insns, 1, [&](RegId i) {
        const RegId off = f.mul(i, eight);
        const RegId op = f.ld(f.add(op_b, off), 0);
        const RegId v = f.ld(f.add(or_b, off), 0);
        const RegId res = f.reg();
        f.moviTo(res, 0);
        const RegId is0 = f.cmpeq(op, f.movi(0));
        ifElse(
            f, is0,
            [&]() { f.movTo(res, f.add(v, v)); },
            [&]() {
                const RegId is1 = f.cmpeq(op, f.movi(1));
                ifElse(
                    f, is1,
                    [&]() { f.movTo(res, f.mul(v, f.movi(3))); },
                    [&]() {
                        const RegId is2 =
                            f.cmpeq(op, f.movi(2));
                        ifElse(
                            f, is2,
                            [&]() {
                                f.movTo(res,
                                        f.shr(v, f.movi(1)));
                            },
                            [&]() {
                                f.movTo(res,
                                        f.xor_(v, f.movi(85)));
                            });
                    });
            });
        f.st(f.add(out_b, off), 0, res);
    });
    f.retVoid();
    args = {static_cast<std::int64_t>(opcodes),
            static_cast<std::int64_t>(operands),
            static_cast<std::int64_t>(out)};
}

void
buildSjeng(ProgramBuilder &pb, SimMemory &mem,
           std::vector<std::int64_t> &args)
{
    Rng rng(6009);
    Arena arena;
    const std::int64_t boards = 500;
    const std::int64_t sq = 64;
    const Addr board = arena.alloc(boards * sq * 8);
    const Addr score = arena.alloc(boards * 8);
    fillI64(mem, board, boards * sq, rng, -6, 6);

    auto &f = pb.func("main", 2);
    const RegId b_b = f.arg(0);
    const RegId s_b = f.arg(1);
    const RegId eight = f.movi(8);
    const RegId sqsz = f.movi(sq * 8);
    const RegId zero = f.movi(0);

    countedLoop(f, 0, boards, 1, [&](RegId b) {
        const RegId base = f.add(b_b, f.mul(b, sqsz));
        const RegId acc = f.reg();
        f.moviTo(acc, 0);
        countedLoop(f, 0, sq, 1, [&](RegId s) {
            const RegId p =
                f.ld(f.add(base, f.mul(s, eight)), 0);
            const RegId occupied =
                f.cmpeq(f.cmpeq(p, zero), zero);
            ifElse(f, occupied, [&]() {
                const RegId mine = f.cmplt(zero, p);
                ifElse(
                    f, mine,
                    [&]() {
                        f.addTo(acc, acc, f.mul(p, p));
                    },
                    [&]() {
                        f.addTo(acc, acc, p);
                    });
            });
        });
        f.st(f.add(s_b, f.mul(b, eight)), 0, acc);
    });
    f.retVoid();
    args = {static_cast<std::int64_t>(board),
            static_cast<std::int64_t>(score)};
}

void
buildAstar(ProgramBuilder &pb, SimMemory &mem,
           std::vector<std::int64_t> &args)
{
    Rng rng(6010);
    Arena arena;
    const std::int64_t heap_n = 256;
    const std::int64_t ops = 3000;
    const Addr heap = arena.alloc(heap_n * 8);
    const Addr keys = arena.alloc(ops * 8);
    fillI64(mem, heap, heap_n, rng, 0, 1 << 20);
    fillI64(mem, keys, ops, rng, 0, 1 << 20);

    auto &f = pb.func("main", 2);
    const RegId h_b = f.arg(0);
    const RegId k_b = f.arg(1);
    const RegId eight = f.movi(8);
    const RegId one = f.movi(1);
    const RegId two = f.movi(2);
    const RegId heap_r = f.movi(heap_n);

    // Sift-down passes: data-dependent descent through the heap.
    countedLoop(f, 0, ops, 1, [&](RegId o) {
        const RegId key =
            f.ld(f.add(k_b, f.mul(o, eight)), 0);
        const RegId pos = f.reg();
        f.moviTo(pos, 0);
        f.st(h_b, 0, key);
        const RegId going = f.reg();
        f.moviTo(going, 1);
        whileLoop(
            f,
            [&]() {
                const RegId l =
                    f.add(f.mul(pos, two), one);
                const RegId in = f.cmplt(l, heap_r);
                return f.and_(in, going);
            },
            [&]() {
                const RegId l =
                    f.add(f.mul(pos, two), one);
                const RegId loff = f.mul(l, eight);
                const RegId lv = f.ld(f.add(h_b, loff), 0);
                const RegId poff = f.mul(pos, eight);
                const RegId pv = f.ld(f.add(h_b, poff), 0);
                const RegId swap = f.cmplt(lv, pv);
                ifElse(
                    f, swap,
                    [&]() {
                        f.st(f.add(h_b, poff), 0, lv);
                        f.st(f.add(h_b, loff), 0, pv);
                        f.movTo(pos, l);
                    },
                    [&]() { f.moviTo(going, 0); });
            });
    });
    f.retVoid();
    args = {static_cast<std::int64_t>(heap),
            static_cast<std::int64_t>(keys)};
}

void
buildHmmer(ProgramBuilder &pb, SimMemory &mem,
           std::vector<std::int64_t> &args)
{
    Rng rng(6011);
    Arena arena;
    const std::int64_t states = 64;
    const std::int64_t seq = 700;
    const Addr emit = arena.alloc(states * 8);
    const Addr trans = arena.alloc(states * 8);
    const Addr dp = arena.alloc(2 * states * 8);
    fillI64(mem, emit, states, rng, -10, 10);
    fillI64(mem, trans, states, rng, -5, 0);

    auto &f = pb.func("main", 3);
    const RegId e_b = f.arg(0);
    const RegId t_b = f.arg(1);
    const RegId dp_b = f.arg(2);
    const RegId eight = f.movi(8);
    const RegId rowsz = f.movi(states * 8);

    // Viterbi-like DP: per sequence position, per state, a max over
    // predecessors (sel-heavy, carried across rows through memory).
    countedLoop(f, 0, seq, 1, [&](RegId pos) {
        const RegId parity = f.and_(pos, f.movi(1));
        const RegId cur =
            f.add(dp_b, f.mul(parity, rowsz));
        const RegId prev = f.add(
            dp_b,
            f.mul(f.xor_(parity, f.movi(1)), rowsz));
        countedLoop(f, 1, states, 1, [&](RegId s) {
            const RegId soff = f.mul(s, eight);
            const RegId stay = f.ld(f.add(prev, soff), 0);
            const RegId move = f.ld(f.add(prev, soff), -8);
            const RegId tcost =
                f.ld(f.add(t_b, soff), 0);
            const RegId moved = f.add(move, tcost);
            const RegId better = f.cmplt(stay, moved);
            const RegId best = f.sel(better, moved, stay);
            const RegId ecost = f.ld(f.add(e_b, soff), 0);
            f.st(f.add(cur, soff), 0, f.add(best, ecost));
        });
    });
    f.retVoid();
    args = {static_cast<std::int64_t>(emit),
            static_cast<std::int64_t>(trans),
            static_cast<std::int64_t>(dp)};
}

void
buildGobmk(ProgramBuilder &pb, SimMemory &mem,
           std::vector<std::int64_t> &args)
{
    Rng rng(6012);
    Arena arena;
    const std::int64_t sz = 19 * 19;
    const std::int64_t positions = 700;
    const Addr board = arena.alloc(positions * sz * 8);
    const Addr lib = arena.alloc(positions * 8);
    for (std::int64_t i = 0; i < positions * sz; ++i)
        mem.writeI64(board + i * 8, rng.range(0, 2)); // 0/1/2

    auto &f = pb.func("main", 2);
    const RegId b_b = f.arg(0);
    const RegId l_b = f.arg(1);
    const RegId eight = f.movi(8);
    const RegId bsz = f.movi(sz * 8);
    const RegId zero = f.movi(0);
    const RegId one = f.movi(1);

    countedLoop(f, 0, positions, 1, [&](RegId p) {
        const RegId base = f.add(b_b, f.mul(p, bsz));
        const RegId libs = f.reg();
        f.moviTo(libs, 0);
        countedLoop(f, 19, sz - 19, 1, [&](RegId s) {
            const RegId soff = f.mul(s, eight);
            const RegId v = f.ld(f.add(base, soff), 0);
            const RegId stone = f.cmpeq(v, one);
            ifElse(f, stone, [&]() {
                // Count empty orthogonal neighbors.
                const RegId nn = f.ld(f.add(base, soff), -19 * 8);
                const RegId ss = f.ld(f.add(base, soff), 19 * 8);
                const RegId ww = f.ld(f.add(base, soff), -8);
                const RegId ee = f.ld(f.add(base, soff), 8);
                const RegId c1 = f.cmpeq(nn, zero);
                const RegId c2 = f.cmpeq(ss, zero);
                const RegId c3 = f.cmpeq(ww, zero);
                const RegId c4 = f.cmpeq(ee, zero);
                const RegId sum =
                    f.add(f.add(c1, c2), f.add(c3, c4));
                f.addTo(libs, libs, sum);
            });
        });
        f.st(f.add(l_b, f.mul(p, eight)), 0, libs);
    });
    f.retVoid();
    args = {static_cast<std::int64_t>(board),
            static_cast<std::int64_t>(lib)};
}

void
buildH264ref(ProgramBuilder &pb, SimMemory &mem,
             std::vector<std::int64_t> &args)
{
    Rng rng(6013);
    Arena arena;
    // Alternating phases like the encoder reference code: SAD-like
    // motion search (regular), then entropy-ish bit accounting
    // (irregular), per macroblock row.
    const std::int64_t mbs = 120;
    const std::int64_t blk = 16;
    const Addr cur = arena.alloc(mbs * blk * 8);
    const Addr ref = arena.alloc(mbs * blk * 8);
    const Addr bitsv = arena.alloc(mbs * 8);
    fillI64(mem, cur, mbs * blk, rng, 0, 255);
    fillI64(mem, ref, mbs * blk, rng, 0, 255);

    auto &f = pb.func("main", 3);
    const RegId c_b = f.arg(0);
    const RegId r_b = f.arg(1);
    const RegId o_b = f.arg(2);
    const RegId eight = f.movi(8);
    const RegId blksz = f.movi(blk * 8);
    const RegId zero = f.movi(0);
    const RegId one = f.movi(1);

    countedLoop(f, 0, 14, 1, [&](RegId) {
        // Phase 1: motion SAD over all macroblocks.
        countedLoop(f, 0, mbs, 1, [&](RegId m) {
            const RegId co = f.add(c_b, f.mul(m, blksz));
            const RegId ro = f.add(r_b, f.mul(m, blksz));
            RegId acc = f.movi(0);
            for (int k = 0; k < blk; ++k) {
                const RegId a = f.ld(co, k * 8);
                const RegId b = f.ld(ro, k * 8);
                const RegId d = f.sub(a, b);
                const RegId neg = f.cmplt(d, zero);
                acc = f.add(acc, f.sel(neg, f.sub(zero, d), d));
            }
            f.st(f.add(o_b, f.mul(m, eight)), 0, acc);
        });
        // Phase 2: bit-length accounting with value-dependent
        // control.
        countedLoop(f, 0, mbs, 1, [&](RegId m) {
            const RegId sad =
                f.ld(f.add(o_b, f.mul(m, eight)), 0);
            const RegId bits = f.reg();
            const RegId v = f.reg();
            f.moviTo(bits, 0);
            f.movTo(v, sad);
            whileLoop(
                f, [&]() { return f.cmplt(zero, v); },
                [&]() {
                    f.addTo(bits, bits, one);
                    f.movTo(v, f.shr(v, one));
                });
            f.st(f.add(o_b, f.mul(m, eight)), 0, bits);
        });
    });
    f.retVoid();
    args = {static_cast<std::int64_t>(cur),
            static_cast<std::int64_t>(ref),
            static_cast<std::int64_t>(bitsv)};
}

const std::vector<WorkloadSpec> kSpecint = {
    {"164.gzip", "SPECint", SuiteClass::Irregular, buildGzip,
     350'000},
    {"181.mcf", "SPECint", SuiteClass::Irregular, buildMcf181,
     300'000},
    {"175.vpr", "SPECint", SuiteClass::Irregular, buildVpr,
     300'000},
    {"197.parser", "SPECint", SuiteClass::Irregular, buildParser,
     350'000},
    {"256.bzip2", "SPECint", SuiteClass::Irregular, buildBzip2_256,
     350'000},
    {"401.bzip2", "SPECint", SuiteClass::Irregular, buildBzip2_401,
     350'000},
    {"429.mcf", "SPECint", SuiteClass::Irregular, buildMcf429,
     300'000},
    {"403.gcc", "SPECint", SuiteClass::Irregular, buildGcc,
     300'000},
    {"458.sjeng", "SPECint", SuiteClass::Irregular, buildSjeng,
     350'000},
    {"473.astar", "SPECint", SuiteClass::Irregular, buildAstar,
     300'000},
    {"456.hmmer", "SPECint", SuiteClass::Irregular, buildHmmer,
     350'000},
    {"445.gobmk", "SPECint", SuiteClass::Irregular, buildGobmk,
     350'000},
    {"464.h264ref", "SPECint", SuiteClass::Irregular, buildH264ref,
     400'000},
};

} // namespace

std::span<const WorkloadSpec>
specintWorkloads()
{
    return kSpecint;
}

} // namespace prism
