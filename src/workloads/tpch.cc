/**
 * @file
 * TPC-H analogues (paper Table 3, "semi-regular"): query 1 (scan +
 * predicated aggregation over lineitem-like rows) and query 2
 * (selective nested-loop join with a rare match). Q1's predicate is
 * highly biased (Trace-P friendly); Q2 exercises a two-level loop
 * with an inner probe.
 */

#include "workloads/suite.hh"

#include "workloads/kernel_util.hh"

namespace prism
{

namespace
{

void
buildTpchQ1(ProgramBuilder &pb, SimMemory &mem,
            std::vector<std::int64_t> &args)
{
    Rng rng(4001);
    Arena arena;
    const std::int64_t rows = 9000;
    // Columnar layout: shipdate, qty, price, discount.
    const Addr shipdate = arena.alloc(rows * 8);
    const Addr qty = arena.alloc(rows * 8);
    const Addr price = arena.alloc(rows * 8);
    const Addr disc = arena.alloc(rows * 8);
    const Addr agg = arena.alloc(4 * 8);
    fillI64(mem, shipdate, rows, rng, 0, 2500);
    fillF64(mem, qty, rows, rng, 1.0, 50.0);
    fillF64(mem, price, rows, rng, 100.0, 1000.0);
    fillF64(mem, disc, rows, rng, 0.0, 0.1);

    auto &f = pb.func("main", 5);
    const RegId sd_b = f.arg(0);
    const RegId q_b = f.arg(1);
    const RegId p_b = f.arg(2);
    const RegId d_b = f.arg(3);
    const RegId agg_b = f.arg(4);
    const RegId eight = f.movi(8);
    const RegId datelim = f.movi(2400); // ~96% of rows pass
    const RegId sum_qty = f.reg();
    const RegId sum_rev = f.reg();
    const RegId count = f.reg();
    f.fmoviTo(sum_qty, 0.0);
    f.fmoviTo(sum_rev, 0.0);
    f.moviTo(count, 0);
    const RegId one = f.movi(1);
    const RegId onef = f.fmovi(1.0);

    countedLoop(f, 0, rows, 1, [&](RegId r) {
        const RegId off = f.mul(r, eight);
        const RegId date = f.ld(f.add(sd_b, off), 0);
        const RegId pass = f.cmple(date, datelim);
        // Highly biased predicate: hot path includes the update.
        ifElse(f, pass, [&]() {
            const RegId qv = f.ld(f.add(q_b, off), 0);
            const RegId pv = f.ld(f.add(p_b, off), 0);
            const RegId dv = f.ld(f.add(d_b, off), 0);
            const RegId rev = f.fmul(pv, f.fsub(onef, dv));
            f.faddTo(sum_qty, sum_qty, qv);
            f.faddTo(sum_rev, sum_rev, rev);
            f.addTo(count, count, one);
        });
    });
    f.st(agg_b, 0, sum_qty);
    f.st(agg_b, 8, sum_rev);
    f.st(agg_b, 16, count);
    f.retVoid();
    args = {static_cast<std::int64_t>(shipdate),
            static_cast<std::int64_t>(qty),
            static_cast<std::int64_t>(price),
            static_cast<std::int64_t>(disc),
            static_cast<std::int64_t>(agg)};
}

void
buildTpchQ2(ProgramBuilder &pb, SimMemory &mem,
            std::vector<std::int64_t> &args)
{
    Rng rng(4002);
    Arena arena;
    const std::int64_t parts = 600;
    const std::int64_t suppliers = 130;
    const Addr pkey = arena.alloc(parts * 8);
    const Addr skey = arena.alloc(suppliers * 8);
    const Addr scost = arena.alloc(suppliers * 8);
    const Addr out = arena.alloc(parts * 8);
    fillI64(mem, pkey, parts, rng, 0, 255);
    fillI64(mem, skey, suppliers, rng, 0, 255);
    fillF64(mem, scost, suppliers, rng, 1.0, 100.0);

    auto &f = pb.func("main", 4);
    const RegId pk_b = f.arg(0);
    const RegId sk_b = f.arg(1);
    const RegId sc_b = f.arg(2);
    const RegId out_b = f.arg(3);
    const RegId eight = f.movi(8);

    countedLoop(f, 0, parts, 1, [&](RegId p) {
        const RegId key =
            f.ld(f.add(pk_b, f.mul(p, eight)), 0);
        const RegId best = f.reg();
        f.fmoviTo(best, 1e30);
        countedLoop(f, 0, suppliers, 1, [&](RegId s) {
            const RegId soff = f.mul(s, eight);
            const RegId sk = f.ld(f.add(sk_b, soff), 0);
            const RegId match = f.cmpeq(sk, key);
            // Rare match (~1/256): hot path skips the update.
            ifElse(f, match, [&]() {
                const RegId cost =
                    f.ld(f.add(sc_b, soff), 0);
                const RegId lt = f.fcmplt(cost, best);
                f.selTo(best, lt, cost, best);
            });
        });
        f.st(f.add(out_b, f.mul(p, eight)), 0, best);
    });
    f.retVoid();
    args = {static_cast<std::int64_t>(pkey),
            static_cast<std::int64_t>(skey),
            static_cast<std::int64_t>(scost),
            static_cast<std::int64_t>(out)};
}

const std::vector<WorkloadSpec> kTpch = {
    {"tpch1", "TPCH", SuiteClass::SemiRegular, buildTpchQ1, 350'000},
    {"tpch2", "TPCH", SuiteClass::SemiRegular, buildTpchQ2, 350'000},
};

} // namespace

std::span<const WorkloadSpec>
tpchWorkloads()
{
    return kTpch;
}

} // namespace prism
