/**
 * @file
 * SPECfp analogues (paper Table 3, "semi-regular"): 433.milc,
 * 444.namd, 450.soplex, 453.povray, 482.sphinx3. Mixed-behavior FP
 * codes: dense complex algebra (milc), cutoff-gated force loops
 * (namd), sparse pivoting (soplex), branchy shading (povray), and
 * Gaussian scoring with pruning (sphinx3).
 */

#include "workloads/suite.hh"

#include "workloads/kernel_util.hh"

namespace prism
{

namespace
{

void
buildMilc(ProgramBuilder &pb, SimMemory &mem,
          std::vector<std::int64_t> &args)
{
    Rng rng(3001);
    Arena arena;
    const std::int64_t sites = 700;
    // 3x3 complex matrix per site, stored as 18 doubles.
    const Addr a = arena.alloc(sites * 18 * 8);
    const Addr b = arena.alloc(sites * 18 * 8);
    const Addr c = arena.alloc(sites * 18 * 8);
    fillF64(mem, a, sites * 18, rng, -1.0, 1.0);
    fillF64(mem, b, sites * 18, rng, -1.0, 1.0);

    auto &f = pb.func("main", 3);
    const RegId a_b = f.arg(0);
    const RegId b_b = f.arg(1);
    const RegId c_b = f.arg(2);
    const RegId matsz = f.movi(18 * 8);

    countedLoop(f, 0, sites, 1, [&](RegId s) {
        const RegId ao = f.add(a_b, f.mul(s, matsz));
        const RegId bo = f.add(b_b, f.mul(s, matsz));
        const RegId co = f.add(c_b, f.mul(s, matsz));
        // One row of the SU(3) multiply per site (unrolled).
        for (std::int64_t i = 0; i < 3; ++i) {
            RegId acc_r = f.fmovi(0.0);
            RegId acc_i = f.fmovi(0.0);
            for (std::int64_t k = 0; k < 3; ++k) {
                const RegId ar = f.ld(ao, (i * 6 + k * 2) * 8);
                const RegId ai =
                    f.ld(ao, (i * 6 + k * 2 + 1) * 8);
                const RegId br = f.ld(bo, (k * 6) * 8);
                const RegId bi = f.ld(bo, (k * 6 + 1) * 8);
                acc_r = f.fadd(acc_r, f.fsub(f.fmul(ar, br),
                                             f.fmul(ai, bi)));
                acc_i = f.fadd(acc_i, f.fadd(f.fmul(ar, bi),
                                             f.fmul(ai, br)));
            }
            f.st(co, (i * 6) * 8, acc_r);
            f.st(co, (i * 6 + 1) * 8, acc_i);
        }
    });
    f.retVoid();
    args = {static_cast<std::int64_t>(a),
            static_cast<std::int64_t>(b),
            static_cast<std::int64_t>(c)};
}

void
buildNamd(ProgramBuilder &pb, SimMemory &mem,
          std::vector<std::int64_t> &args)
{
    Rng rng(3002);
    Arena arena;
    const std::int64_t pairs = 9000;
    const Addr px = arena.alloc(pairs * 8);
    const Addr py = arena.alloc(pairs * 8);
    const Addr forces = arena.alloc(pairs * 8);
    fillF64(mem, px, pairs, rng, 0.0, 8.0);
    fillF64(mem, py, pairs, rng, 0.0, 8.0);

    auto &f = pb.func("main", 3);
    const RegId x_b = f.arg(0);
    const RegId y_b = f.arg(1);
    const RegId f_b = f.arg(2);
    const RegId eight = f.movi(8);
    const RegId cutoff = f.fmovi(9.0);
    const RegId eps = f.fmovi(0.1);

    countedLoop(f, 0, pairs, 1, [&](RegId p) {
        const RegId off = f.mul(p, eight);
        const RegId dx = f.ld(f.add(x_b, off), 0);
        const RegId dy = f.ld(f.add(y_b, off), 0);
        const RegId r2 = f.fma(dx, dx, f.fmul(dy, dy));
        const RegId in = f.fcmplt(r2, cutoff);
        const RegId fr = f.reg();
        f.fmoviTo(fr, 0.0);
        // Branchy cutoff: only ~close pairs compute the expensive
        // interaction (taken most of the time at this density).
        ifElse(f, in, [&]() {
            const RegId rinv = f.fdiv(f.fmovi(1.0),
                                      f.fadd(r2, eps));
            const RegId r6 = f.fmul(f.fmul(rinv, rinv), rinv);
            const RegId lj = f.fmul(r6, f.fsub(r6, f.fmovi(1.0)));
            f.movTo(fr, lj);
        });
        f.st(f.add(f_b, off), 0, fr);
    });
    f.retVoid();
    args = {static_cast<std::int64_t>(px),
            static_cast<std::int64_t>(py),
            static_cast<std::int64_t>(forces)};
}

void
buildSoplex(ProgramBuilder &pb, SimMemory &mem,
            std::vector<std::int64_t> &args)
{
    Rng rng(3003);
    Arena arena;
    const std::int64_t rows = 900;
    const std::int64_t nnz_per_row = 9;
    const std::int64_t cols = 2048;
    const std::int64_t nnz = rows * nnz_per_row;
    const Addr colidx = arena.alloc(nnz * 8);
    const Addr vals = arena.alloc(nnz * 8);
    const Addr x = arena.alloc(cols * 8);
    const Addr piv = arena.alloc(rows * 8);
    fillI64(mem, colidx, nnz, rng, 0, cols - 1);
    fillF64(mem, vals, nnz, rng, -2.0, 2.0);
    fillF64(mem, x, cols, rng, -1.0, 1.0);

    auto &f = pb.func("main", 4);
    const RegId ci_b = f.arg(0);
    const RegId v_b = f.arg(1);
    const RegId x_b = f.arg(2);
    const RegId piv_b = f.arg(3);
    const RegId eight = f.movi(8);
    const RegId rowsz = f.movi(nnz_per_row * 8);
    const RegId zero_f = f.fmovi(0.0);

    countedLoop(f, 0, rows, 1, [&](RegId r) {
        const RegId base = f.mul(r, rowsz);
        const RegId best = f.reg();
        f.fmoviTo(best, 0.0);
        countedLoop(f, 0, nnz_per_row, 1, [&](RegId k) {
            const RegId koff =
                f.add(base, f.mul(k, eight));
            const RegId col = f.ld(f.add(ci_b, koff), 0);
            const RegId v = f.ld(f.add(v_b, koff), 0);
            const RegId xv =
                f.ld(f.add(x_b, f.mul(col, eight)), 0);
            const RegId prod = f.fmul(v, xv);
            // Pivot selection: keep the largest magnitude.
            const RegId neg = f.fsub(zero_f, prod);
            const RegId isneg = f.fcmplt(prod, zero_f);
            const RegId mag = f.sel(isneg, neg, prod);
            const RegId gt = f.fcmplt(best, mag);
            f.selTo(best, gt, mag, best);
        });
        f.st(f.add(piv_b, f.mul(r, eight)), 0, best);
    });
    f.retVoid();
    args = {static_cast<std::int64_t>(colidx),
            static_cast<std::int64_t>(vals),
            static_cast<std::int64_t>(x),
            static_cast<std::int64_t>(piv)};
}

void
buildPovray(ProgramBuilder &pb, SimMemory &mem,
            std::vector<std::int64_t> &args)
{
    Rng rng(3004);
    Arena arena;
    const std::int64_t rays = 2600;
    const std::int64_t spheres = 10;
    const Addr dirs = arena.alloc(rays * 8);
    const Addr sx = arena.alloc(spheres * 8);
    const Addr img = arena.alloc(rays * 8);
    fillF64(mem, dirs, rays, rng, -1.0, 1.0);
    fillF64(mem, sx, spheres, rng, -1.0, 1.0);

    auto &f = pb.func("main", 3);
    const RegId d_b = f.arg(0);
    const RegId s_b = f.arg(1);
    const RegId img_b = f.arg(2);
    const RegId eight = f.movi(8);
    const RegId zero_f = f.fmovi(0.0);

    countedLoop(f, 0, rays, 1, [&](RegId r) {
        const RegId dir = f.ld(f.add(d_b, f.mul(r, eight)), 0);
        const RegId hit = f.reg();
        f.fmoviTo(hit, 0.0);
        countedLoop(f, 0, spheres, 1, [&](RegId s) {
            const RegId cx =
                f.ld(f.add(s_b, f.mul(s, eight)), 0);
            const RegId b = f.fmul(dir, cx);
            const RegId disc = f.fma(b, b, f.fmovi(-0.25));
            const RegId has = f.fcmplt(zero_f, disc);
            // Data-dependent shading branch (varying direction).
            ifElse(
                f, has,
                [&]() {
                    const RegId t = f.fsqrt(disc);
                    const RegId shade =
                        f.fdiv(f.fmovi(1.0),
                               f.fadd(t, f.fmovi(0.5)));
                    f.faddTo(hit, hit, shade);
                },
                [&]() {
                    f.faddTo(hit, hit, f.fmovi(0.01));
                });
        });
        f.st(f.add(img_b, f.mul(r, eight)), 0, hit);
    });
    f.retVoid();
    args = {static_cast<std::int64_t>(dirs),
            static_cast<std::int64_t>(sx),
            static_cast<std::int64_t>(img)};
}

void
buildSphinx3(ProgramBuilder &pb, SimMemory &mem,
             std::vector<std::int64_t> &args)
{
    Rng rng(3005);
    Arena arena;
    const std::int64_t frames = 160;
    const std::int64_t gaussians = 32;
    const std::int64_t dims = 8;
    const Addr feat = arena.alloc(frames * dims * 8);
    const Addr means = arena.alloc(gaussians * dims * 8);
    const Addr scores = arena.alloc(frames * 8);
    fillF64(mem, feat, frames * dims, rng, -1.0, 1.0);
    fillF64(mem, means, gaussians * dims, rng, -1.0, 1.0);

    auto &f = pb.func("main", 3);
    const RegId ft_b = f.arg(0);
    const RegId mn_b = f.arg(1);
    const RegId sc_b = f.arg(2);
    const RegId eight = f.movi(8);
    const RegId dimsz = f.movi(dims * 8);
    const RegId prune = f.fmovi(4.0);

    countedLoop(f, 0, frames, 1, [&](RegId fr) {
        const RegId fo = f.add(ft_b, f.mul(fr, dimsz));
        const RegId best = f.reg();
        f.fmoviTo(best, 1e30);
        countedLoop(f, 0, gaussians, 1, [&](RegId g) {
            const RegId mo = f.add(mn_b, f.mul(g, dimsz));
            const RegId d = f.reg();
            f.fmoviTo(d, 0.0);
            // Pruned scoring: bail out of the dimension loop early
            // when the partial distance already exceeds the beam.
            const RegId k = f.reg();
            f.moviTo(k, 0);
            const RegId dims_r = f.movi(dims);
            const RegId one = f.movi(1);
            whileLoop(
                f,
                [&]() {
                    const RegId more = f.cmplt(k, dims_r);
                    const RegId ok = f.fcmplt(d, prune);
                    return f.and_(more, ok);
                },
                [&]() {
                    const RegId koff = f.mul(k, eight);
                    const RegId x =
                        f.ld(f.add(fo, koff), 0);
                    const RegId m =
                        f.ld(f.add(mo, koff), 0);
                    const RegId diff = f.fsub(x, m);
                    const RegId nd = f.fma(diff, diff, d);
                    f.movTo(d, nd);
                    f.addTo(k, k, one);
                });
            const RegId lt = f.fcmplt(d, best);
            f.selTo(best, lt, d, best);
        });
        f.st(f.add(sc_b, f.mul(fr, eight)), 0, best);
    });
    f.retVoid();
    args = {static_cast<std::int64_t>(feat),
            static_cast<std::int64_t>(means),
            static_cast<std::int64_t>(scores)};
}

const std::vector<WorkloadSpec> kSpecfp = {
    {"433.milc", "SPECfp", SuiteClass::SemiRegular, buildMilc,
     350'000},
    {"444.namd", "SPECfp", SuiteClass::SemiRegular, buildNamd,
     300'000},
    {"450.soplex", "SPECfp", SuiteClass::SemiRegular, buildSoplex,
     350'000},
    {"453.povray", "SPECfp", SuiteClass::SemiRegular, buildPovray,
     350'000},
    {"482.sphinx3", "SPECfp", SuiteClass::SemiRegular, buildSphinx3,
     350'000},
};

} // namespace

std::span<const WorkloadSpec>
specfpWorkloads()
{
    return kSpecfp;
}

} // namespace prism
