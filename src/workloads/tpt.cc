/**
 * @file
 * Intel TPT microbenchmark analogues (paper Table 3, "regular"):
 * conv, merge, nbody, radar, treesearch, vr. Each kernel reproduces
 * its namesake's behavioral profile: conv/nbody/radar are clean
 * data-parallel FP loops; merge has data-dependent control; tree-
 * search is pointer-chasing; vr mixes data-parallel sampling with an
 * early-exit branch.
 */

#include "workloads/suite.hh"

#include "workloads/kernel_util.hh"

namespace prism
{

namespace
{

void
buildConv(ProgramBuilder &pb, SimMemory &mem,
          std::vector<std::int64_t> &args)
{
    Rng rng(1001);
    Arena arena;
    const std::int64_t n = 6000;
    const std::int64_t k = 8;
    const Addr in = arena.alloc((n + k) * 8);
    const Addr wts = arena.alloc(k * 8);
    const Addr out = arena.alloc(n * 8);
    fillF64(mem, in, n + k, rng, -1.0, 1.0);
    fillF64(mem, wts, k, rng, -0.5, 0.5);

    auto &f = pb.func("main", 3);
    const RegId in_b = f.arg(0);
    const RegId w_b = f.arg(1);
    const RegId out_b = f.arg(2);
    std::vector<RegId> w;
    for (std::int64_t t = 0; t < k; ++t)
        w.push_back(f.ld(w_b, t * 8));
    const RegId eight = f.movi(8);

    countedLoop(f, 0, n, 1, [&](RegId i) {
        const RegId off = f.mul(i, eight);
        const RegId p = f.add(in_b, off);
        RegId acc = f.fmovi(0.0);
        for (std::int64_t t = 0; t < k; ++t) {
            const RegId x = f.ld(p, t * 8);
            acc = f.fma(x, w[t], acc);
        }
        const RegId q = f.add(out_b, off);
        f.st(q, 0, acc);
    });
    f.retVoid();
    args = {static_cast<std::int64_t>(in),
            static_cast<std::int64_t>(wts),
            static_cast<std::int64_t>(out)};
}

void
buildMerge(ProgramBuilder &pb, SimMemory &mem,
           std::vector<std::int64_t> &args)
{
    Rng rng(1002);
    Arena arena;
    const std::int64_t n = 16000;
    const Addr a = arena.alloc(n * 8);
    const Addr b = arena.alloc(n * 8);
    const Addr out = arena.alloc(2 * n * 8);
    fillSortedI64(mem, a, n, rng, 0, 9);
    fillSortedI64(mem, b, n, rng, 0, 9);

    auto &f = pb.func("main", 3);
    const RegId a_b = f.arg(0);
    const RegId b_b = f.arg(1);
    const RegId out_b = f.arg(2);
    const RegId i = f.reg();
    const RegId j = f.reg();
    const RegId kk = f.reg();
    f.moviTo(i, 0);
    f.moviTo(j, 0);
    f.moviTo(kk, 0);
    const RegId n_r = f.movi(n);
    const RegId one = f.movi(1);
    const RegId eight = f.movi(8);

    whileLoop(
        f,
        [&]() {
            const RegId ci = f.cmplt(i, n_r);
            const RegId cj = f.cmplt(j, n_r);
            return f.and_(ci, cj);
        },
        [&]() {
            const RegId ai =
                f.ld(f.add(a_b, f.mul(i, eight)), 0);
            const RegId bj =
                f.ld(f.add(b_b, f.mul(j, eight)), 0);
            const RegId c = f.cmple(ai, bj);
            const RegId outp = f.add(out_b, f.mul(kk, eight));
            ifElse(
                f, c,
                [&]() {
                    f.st(outp, 0, ai);
                    f.addTo(i, i, one);
                },
                [&]() {
                    f.st(outp, 0, bj);
                    f.addTo(j, j, one);
                });
            f.addTo(kk, kk, one);
        });
    f.retVoid();
    args = {static_cast<std::int64_t>(a),
            static_cast<std::int64_t>(b),
            static_cast<std::int64_t>(out)};
}

void
buildNbody(ProgramBuilder &pb, SimMemory &mem,
           std::vector<std::int64_t> &args)
{
    Rng rng(1003);
    Arena arena;
    const std::int64_t n = 96;
    const Addr x = arena.alloc(n * 8);
    const Addr y = arena.alloc(n * 8);
    const Addr fx = arena.alloc(n * 8);
    fillF64(mem, x, n, rng, -10.0, 10.0);
    fillF64(mem, y, n, rng, -10.0, 10.0);

    auto &f = pb.func("main", 3);
    const RegId x_b = f.arg(0);
    const RegId y_b = f.arg(1);
    const RegId fx_b = f.arg(2);
    const RegId eight = f.movi(8);
    const RegId eps = f.fmovi(0.01);

    countedLoop(f, 0, n, 1, [&](RegId i) {
        const RegId ioff = f.mul(i, eight);
        const RegId xi = f.ld(f.add(x_b, ioff), 0);
        const RegId yi = f.ld(f.add(y_b, ioff), 0);
        const RegId acc = f.reg();
        f.fmoviTo(acc, 0.0);
        countedLoop(f, 0, n, 1, [&](RegId j) {
            const RegId joff = f.mul(j, eight);
            const RegId xj = f.ld(f.add(x_b, joff), 0);
            const RegId yj = f.ld(f.add(y_b, joff), 0);
            const RegId dx = f.fsub(xj, xi);
            const RegId dy = f.fsub(yj, yi);
            const RegId r2a = f.fma(dx, dx, eps);
            const RegId r2 = f.fma(dy, dy, r2a);
            const RegId r = f.fsqrt(r2);
            const RegId r3 = f.fmul(r2, r);
            const RegId inv = f.fdiv(dx, r3);
            f.faddTo(acc, acc, inv);
        });
        f.st(f.add(fx_b, ioff), 0, acc);
    });
    f.retVoid();
    args = {static_cast<std::int64_t>(x),
            static_cast<std::int64_t>(y),
            static_cast<std::int64_t>(fx)};
}

void
buildRadar(ProgramBuilder &pb, SimMemory &mem,
           std::vector<std::int64_t> &args)
{
    Rng rng(1004);
    Arena arena;
    const std::int64_t n = 4000;
    const std::int64_t taps = 12;
    const Addr re = arena.alloc((n + taps) * 8);
    const Addr im = arena.alloc((n + taps) * 8);
    const Addr out = arena.alloc(n * 8);
    fillF64(mem, re, n + taps, rng, -1.0, 1.0);
    fillF64(mem, im, n + taps, rng, -1.0, 1.0);

    auto &f = pb.func("main", 3);
    const RegId re_b = f.arg(0);
    const RegId im_b = f.arg(1);
    const RegId out_b = f.arg(2);
    const RegId eight = f.movi(8);
    const RegId wr = f.fmovi(0.7);
    const RegId wi = f.fmovi(-0.3);

    countedLoop(f, 0, n, 1, [&](RegId i) {
        const RegId off = f.mul(i, eight);
        const RegId pr = f.add(re_b, off);
        const RegId pi = f.add(im_b, off);
        RegId acc_r = f.fmovi(0.0);
        RegId acc_i = f.fmovi(0.0);
        for (std::int64_t t = 0; t < taps; t += 4) {
            const RegId xr = f.ld(pr, t * 8);
            const RegId xi = f.ld(pi, t * 8);
            // Complex multiply-accumulate with fixed coefficients.
            const RegId t1 = f.fmul(xr, wr);
            const RegId t2 = f.fmul(xi, wi);
            const RegId t3 = f.fmul(xr, wi);
            const RegId t4 = f.fmul(xi, wr);
            acc_r = f.fadd(acc_r, f.fsub(t1, t2));
            acc_i = f.fadd(acc_i, f.fadd(t3, t4));
        }
        const RegId mag = f.fma(acc_r, acc_r, f.fmul(acc_i, acc_i));
        f.st(f.add(out_b, off), 0, mag);
    });
    f.retVoid();
    args = {static_cast<std::int64_t>(re),
            static_cast<std::int64_t>(im),
            static_cast<std::int64_t>(out)};
}

void
buildTreesearch(ProgramBuilder &pb, SimMemory &mem,
                std::vector<std::int64_t> &args)
{
    Rng rng(1005);
    Arena arena;
    // Implicit balanced BST in an array: node i has children 2i+1,
    // 2i+2; keys laid out so in-order is sorted.
    const std::int64_t nodes = 4095; // depth 12
    const std::int64_t queries = 4000;
    const Addr keys = arena.alloc(nodes * 8);
    const Addr qs = arena.alloc(queries * 8);
    const Addr out = arena.alloc(queries * 8);
    // Heap-ordered keys: parent splits the range.
    std::function<void(std::int64_t, std::int64_t, std::int64_t)>
        fill = [&](std::int64_t idx, std::int64_t lo,
                   std::int64_t hi) {
            if (idx >= nodes || lo > hi)
                return;
            const std::int64_t mid = lo + (hi - lo) / 2;
            mem.writeI64(keys + idx * 8, mid);
            fill(2 * idx + 1, lo, mid - 1);
            fill(2 * idx + 2, mid + 1, hi);
        };
    fill(0, 0, 1 << 20);
    fillI64(mem, qs, queries, rng, 0, 1 << 20);

    auto &f = pb.func("main", 3);
    const RegId keys_b = f.arg(0);
    const RegId qs_b = f.arg(1);
    const RegId out_b = f.arg(2);
    const RegId eight = f.movi(8);
    const RegId one = f.movi(1);
    const RegId two = f.movi(2);
    const RegId nodes_r = f.movi(nodes);

    countedLoop(f, 0, queries, 1, [&](RegId q) {
        const RegId qv = f.ld(f.add(qs_b, f.mul(q, eight)), 0);
        const RegId node = f.reg();
        const RegId found = f.reg();
        f.moviTo(node, 0);
        f.moviTo(found, 0);
        whileLoop(
            f, [&]() { return f.cmplt(node, nodes_r); },
            [&]() {
                const RegId key =
                    f.ld(f.add(keys_b, f.mul(node, eight)), 0);
                const RegId eq = f.cmpeq(key, qv);
                const RegId sum = f.add(found, key);
                f.selTo(found, eq, sum, found);
                const RegId lt = f.cmplt(qv, key);
                const RegId l =
                    f.add(f.mul(node, two), one);
                const RegId r = f.add(l, one);
                f.selTo(node, lt, l, r);
            });
        f.st(f.add(out_b, f.mul(q, eight)), 0, found);
    });
    f.retVoid();
    args = {static_cast<std::int64_t>(keys),
            static_cast<std::int64_t>(qs),
            static_cast<std::int64_t>(out)};
}

void
buildVr(ProgramBuilder &pb, SimMemory &mem,
        std::vector<std::int64_t> &args)
{
    Rng rng(1006);
    Arena arena;
    const std::int64_t rays = 1200;
    const std::int64_t steps = 64;
    const Addr volume = arena.alloc(steps * rays * 8);
    const Addr out = arena.alloc(rays * 8);
    // Mostly low densities so most rays march far (high loop-back
    // probability with a rare early exit).
    for (std::int64_t i = 0; i < steps * rays; ++i) {
        const double d =
            rng.chance(0.02) ? 0.5 + rng.uniform() : rng.uniform() * 0.02;
        mem.writeF64(volume + i * 8, d);
    }

    auto &f = pb.func("main", 2);
    const RegId vol_b = f.arg(0);
    const RegId out_b = f.arg(1);
    const RegId eight = f.movi(8);
    const RegId steps_r = f.movi(steps);
    const RegId one = f.movi(1);
    const RegId thresh = f.fmovi(0.95);
    const RegId rays_r = f.movi(rays);

    countedLoop(f, 0, rays, 1, [&](RegId ray) {
        const RegId opacity = f.reg();
        const RegId t = f.reg();
        f.fmoviTo(opacity, 0.0);
        f.moviTo(t, 0);
        whileLoop(
            f,
            [&]() {
                const RegId more = f.cmplt(t, steps_r);
                const RegId below = f.fcmplt(opacity, thresh);
                return f.and_(more, below);
            },
            [&]() {
                const RegId idx = f.add(f.mul(t, rays_r), ray);
                const RegId d =
                    f.ld(f.add(vol_b, f.mul(idx, eight)), 0);
                // opacity += (1 - opacity) * d
                const RegId rem =
                    f.fsub(f.fmovi(1.0), opacity);
                const RegId contrib = f.fmul(rem, d);
                f.faddTo(opacity, opacity, contrib);
                f.addTo(t, t, one);
            });
        f.st(f.add(out_b, f.mul(ray, eight)), 0, opacity);
    });
    f.retVoid();
    args = {static_cast<std::int64_t>(volume),
            static_cast<std::int64_t>(out)};
}

const std::vector<WorkloadSpec> kTpt = {
    {"conv", "TPT", SuiteClass::Regular, buildConv, 300'000},
    {"merge", "TPT", SuiteClass::Regular, buildMerge, 300'000},
    {"nbody", "TPT", SuiteClass::Regular, buildNbody, 300'000},
    {"radar", "TPT", SuiteClass::Regular, buildRadar, 300'000},
    {"treesearch", "TPT", SuiteClass::Regular, buildTreesearch,
     300'000},
    {"vr", "TPT", SuiteClass::Regular, buildVr, 300'000},
};

} // namespace

std::span<const WorkloadSpec>
tptWorkloads()
{
    return kTpt;
}

} // namespace prism
