/**
 * @file
 * Helpers for writing workload kernels against the guest ISA:
 * structured loop/conditional emission and input-data staging.
 */

#ifndef PRISM_WORKLOADS_KERNEL_UTIL_HH
#define PRISM_WORKLOADS_KERNEL_UTIL_HH

#include <functional>

#include "common/rng.hh"
#include "prog/builder.hh"
#include "sim/memory.hh"

namespace prism
{

/**
 * Emit a do-while counted loop:
 *   for (i = start; i < end; i += step) body(i)
 * The body may create internal control flow; the induction update and
 * back edge are appended to whatever block the body ends in. Requires
 * end > start (executes at least once).
 */
void countedLoop(FunctionBuilder &f, std::int64_t start,
                 std::int64_t end, std::int64_t step,
                 const std::function<void(RegId)> &body);

/** Counted loop with register bounds (still do-while form). */
void countedLoopR(FunctionBuilder &f, RegId start, RegId end,
                  std::int64_t step,
                  const std::function<void(RegId)> &body);

/**
 * Emit if/else with a merge block. Values assigned inside the arms
 * must go through caller-allocated registers (movTo/addTo etc.).
 */
void ifElse(FunctionBuilder &f, RegId cond,
            const std::function<void()> &then_fn,
            const std::function<void()> &else_fn = {});

/**
 * Emit a while loop: while (cond_fn() != 0) body(). The condition is
 * evaluated in the header; cond_fn must emit the computation and
 * return the condition register.
 */
void whileLoop(FunctionBuilder &f,
               const std::function<RegId()> &cond_fn,
               const std::function<void()> &body);

/** Bump allocator for staging guest arrays. */
class Arena
{
  public:
    explicit Arena(Addr base = 0x10000) : next_(base) {}

    Addr
    alloc(std::uint64_t bytes, std::uint64_t align = 64)
    {
        next_ = (next_ + align - 1) & ~(align - 1);
        const Addr a = next_;
        next_ += bytes;
        return a;
    }

  private:
    Addr next_;
};

/** Fill guest memory with n random doubles in [lo, hi). */
void fillF64(SimMemory &mem, Addr base, std::size_t n, Rng &rng,
             double lo = 0.0, double hi = 1.0);

/** Fill guest memory with n random int64s in [lo, hi]. */
void fillI64(SimMemory &mem, Addr base, std::size_t n, Rng &rng,
             std::int64_t lo, std::int64_t hi);

/** Fill guest memory with n sorted random int64s starting at lo. */
void fillSortedI64(SimMemory &mem, Addr base, std::size_t n, Rng &rng,
                   std::int64_t lo, std::int64_t max_gap);

} // namespace prism

#endif // PRISM_WORKLOADS_KERNEL_UTIL_HH
