#include "workloads/suite.hh"

#include <atomic>

#include "analysis/prog_analysis.hh"
#include "common/logging.hh"
#include "prog/builder.hh"
#include "tdg/artifacts.hh"
#include "tdg/builder.hh"
#include "trace/trace_cache.hh"

namespace prism
{

const char *
suiteClassName(SuiteClass c)
{
    switch (c) {
      case SuiteClass::Regular: return "regular";
      case SuiteClass::SemiRegular: return "semi-regular";
      case SuiteClass::Irregular: return "irregular";
    }
    panic("bad suite class");
}

std::span<const WorkloadSpec>
allWorkloads()
{
    static const std::vector<WorkloadSpec> all = [] {
        std::vector<WorkloadSpec> v;
        auto add = [&v](std::span<const WorkloadSpec> s) {
            v.insert(v.end(), s.begin(), s.end());
        };
        add(tptWorkloads());
        add(parboilWorkloads());
        add(specfpWorkloads());
        add(mediabenchWorkloads());
        add(tpchWorkloads());
        add(specintWorkloads());
        return v;
    }();
    return all;
}

const WorkloadSpec &
findWorkload(const std::string &name)
{
    for (const WorkloadSpec &w : allWorkloads()) {
        if (name == w.name)
            return w;
    }
    for (const WorkloadSpec &w : microbenchmarks()) {
        if (name == w.name)
            return w;
    }
    fatal("unknown workload '%s'", name.c_str());
}

namespace
{
std::atomic<std::uint64_t> g_max_insts_override{0};
} // namespace

void
setMaxInstsOverride(std::uint64_t max_insts)
{
    g_max_insts_override.store(max_insts, std::memory_order_relaxed);
}

std::unique_ptr<LoadedWorkload>
LoadedWorkload::load(const WorkloadSpec &spec,
                     std::uint64_t max_insts_override)
{
    auto lw = std::unique_ptr<LoadedWorkload>(new LoadedWorkload());
    lw->spec_ = &spec;
    lw->name_ = spec.name;

    ProgramBuilder pb;
    SimMemory mem;
    std::vector<std::int64_t> args;
    spec.build(pb, mem, args);
    lw->prog_ = pb.build();
#ifndef NDEBUG
    // Debug builds run the full dataflow analyzer on every kernel at
    // load, so a workload regression is caught at the source instead
    // of surfacing as a corrupt trace downstream. Release builds rely
    // on the structural verify() inside pb.build() plus the explicit
    // prism_lint CTest leg.
    analyzeOrDie(lw->prog_);
#endif

    if (!max_insts_override) {
        max_insts_override =
            g_max_insts_override.load(std::memory_order_relaxed);
    }
    TraceGenConfig cfg;
    cfg.maxInsts =
        max_insts_override ? max_insts_override : spec.maxInsts;
    lw->maxInsts_ = cfg.maxInsts;

    const ArtifactCache *cache = ArtifactCache::global();
    if (cache) {
        if (std::optional<Trace> cached = loadCachedTrace(
                *cache, lw->name_, lw->prog_, cfg.maxInsts)) {
            lw->fromCache_ = true;
            TdgStatics statics(lw->prog_);
            if (std::optional<TdgProfiles> profiles =
                    loadTdgProfiles(*cache, lw->name_, lw->prog_,
                                    cfg.maxInsts, *cached,
                                    statics.forest.numLoops())) {
                // Fully warm: no walk over the trace at all.
                lw->profilesFromCache_ = true;
                lw->tdg_ = std::make_unique<Tdg>(
                    lw->prog_, std::move(*cached),
                    std::move(statics), std::move(*profiles));
                return lw;
            }
            // Trace hit, profile miss: rebuild the profiles with one
            // streaming pass and store them for next time.
            TdgBuilder builder(statics);
            builder.begin(*cached);
            builder.feed(0, cached->size());
            TdgProfiles profiles = builder.finish();
            storeTdgProfiles(*cache, lw->name_, lw->prog_,
                             cfg.maxInsts, profiles);
            lw->tdg_ = std::make_unique<Tdg>(
                lw->prog_, std::move(*cached), std::move(statics),
                std::move(profiles));
            return lw;
        }
    }

    // Fused streaming path: DynInst batches flow from the FrontEnd
    // into the trace and the TDG builder in one pass — the profiles
    // are complete the moment execution finishes.
    Trace trace(&lw->prog_);
    trace.reserve(cfg.maxInsts / 4);
    TdgStatics statics(lw->prog_);
    TdgBuilder builder(statics);
    builder.begin(trace);
    FrontEnd fe(lw->prog_, mem, cfg);
    lw->genResult_ =
        fe.run(args, [&](const DynInst *d, std::size_t n, DynId base) {
            trace.append(d, n); // append BEFORE feed: feed reads back
            builder.feed(base, n);
        });
    prism_assert(!trace.empty(), "workload '%s' produced no trace",
                 spec.name);
    TdgProfiles profiles = builder.finish();
    if (cache) {
        storeCachedTrace(*cache, lw->name_, lw->prog_, cfg.maxInsts,
                         trace);
        storeTdgProfiles(*cache, lw->name_, lw->prog_, cfg.maxInsts,
                         profiles);
    }
    lw->tdg_ = std::make_unique<Tdg>(lw->prog_, std::move(trace),
                                     std::move(statics),
                                     std::move(profiles));
    return lw;
}

} // namespace prism
