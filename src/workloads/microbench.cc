/**
 * @file
 * "Vertical" microbenchmarks (paper Section 2.5): small kernels each
 * stressing one microarchitectural axis — ILP extremes, memory
 * behavior extremes, branch-predictability extremes, FP mixes, and
 * call-heavy code. Used for the OOO1<->OOO8 cross-validation of the
 * µDG core model against the discrete-event reference simulator.
 */

#include "workloads/suite.hh"

#include "workloads/kernel_util.hh"

namespace prism
{

namespace
{

void
buildIlpChain(ProgramBuilder &pb, SimMemory &mem,
              std::vector<std::int64_t> &args)
{
    (void)mem;
    auto &f = pb.func("main", 0);
    const RegId acc = f.reg();
    f.moviTo(acc, 1);
    const RegId three = f.movi(3);
    countedLoop(f, 0, 12000, 1, [&](RegId) {
        // Serial multiply chain: ILP ~= 1/3.
        f.mulTo(acc, acc, three);
        f.addTo(acc, acc, three);
        f.mulTo(acc, acc, three);
    });
    f.ret(acc);
    args = {};
}

void
buildIlpWide(ProgramBuilder &pb, SimMemory &mem,
             std::vector<std::int64_t> &args)
{
    (void)mem;
    auto &f = pb.func("main", 0);
    std::vector<RegId> accs;
    for (int k = 0; k < 8; ++k) {
        accs.push_back(f.reg());
        f.moviTo(accs[k], k);
    }
    const RegId one = f.movi(1);
    countedLoop(f, 0, 9000, 1, [&](RegId) {
        for (int k = 0; k < 8; ++k)
            f.addTo(accs[k], accs[k], one);
    });
    f.ret(accs[0]);
    args = {};
}

void
buildMemStream(ProgramBuilder &pb, SimMemory &mem,
               std::vector<std::int64_t> &args)
{
    Rng rng(7003);
    Arena arena;
    const std::int64_t n = 24000;
    const Addr a = arena.alloc(n * 8);
    const Addr b = arena.alloc(n * 8);
    fillI64(mem, a, n, rng, 0, 100);

    auto &f = pb.func("main", 2);
    const RegId a_b = f.arg(0);
    const RegId b_b = f.arg(1);
    const RegId eight = f.movi(8);
    countedLoop(f, 0, n, 1, [&](RegId i) {
        const RegId off = f.mul(i, eight);
        const RegId v = f.ld(f.add(a_b, off), 0);
        f.st(f.add(b_b, off), 0, f.add(v, v));
    });
    f.retVoid();
    args = {static_cast<std::int64_t>(a),
            static_cast<std::int64_t>(b)};
}

void
buildMemRandom(ProgramBuilder &pb, SimMemory &mem,
               std::vector<std::int64_t> &args)
{
    Rng rng(7004);
    Arena arena;
    const std::int64_t n = 1 << 18; // 2 MB, larger than L2's sets
    const Addr a = arena.alloc(n * 8);
    const Addr idx = arena.alloc(12000 * 8);
    fillI64(mem, idx, 12000, rng, 0, n - 1);

    auto &f = pb.func("main", 2);
    const RegId a_b = f.arg(0);
    const RegId i_b = f.arg(1);
    const RegId eight = f.movi(8);
    const RegId acc = f.reg();
    f.moviTo(acc, 0);
    countedLoop(f, 0, 12000, 1, [&](RegId i) {
        const RegId k =
            f.ld(f.add(i_b, f.mul(i, eight)), 0);
        const RegId v =
            f.ld(f.add(a_b, f.mul(k, eight)), 0);
        f.addTo(acc, acc, v);
    });
    f.ret(acc);
    args = {static_cast<std::int64_t>(a),
            static_cast<std::int64_t>(idx)};
}

void
buildBranchPred(ProgramBuilder &pb, SimMemory &mem,
                std::vector<std::int64_t> &args)
{
    (void)mem;
    auto &f = pb.func("main", 0);
    const RegId acc = f.reg();
    f.moviTo(acc, 0);
    const RegId one = f.movi(1);
    const RegId seven = f.movi(7);
    countedLoop(f, 0, 20000, 1, [&](RegId i) {
        // Periodic pattern: easily learned by gshare.
        const RegId c = f.cmpeq(f.and_(i, seven), seven);
        ifElse(f, c, [&]() { f.addTo(acc, acc, one); });
    });
    f.ret(acc);
    args = {};
}

void
buildBranchRand(ProgramBuilder &pb, SimMemory &mem,
                std::vector<std::int64_t> &args)
{
    Rng rng(7006);
    Arena arena;
    const std::int64_t n = 20000;
    const Addr bits = arena.alloc(n * 8);
    fillI64(mem, bits, n, rng, 0, 1);

    auto &f = pb.func("main", 1);
    const RegId b_b = f.arg(0);
    const RegId eight = f.movi(8);
    const RegId acc = f.reg();
    f.moviTo(acc, 0);
    const RegId one = f.movi(1);
    countedLoop(f, 0, n, 1, [&](RegId i) {
        const RegId v =
            f.ld(f.add(b_b, f.mul(i, eight)), 0);
        ifElse(
            f, v, [&]() { f.addTo(acc, acc, one); },
            [&]() { f.addTo(acc, acc, f.movi(2)); });
    });
    f.ret(acc);
    args = {static_cast<std::int64_t>(bits)};
}

void
buildFpMix(ProgramBuilder &pb, SimMemory &mem,
           std::vector<std::int64_t> &args)
{
    Rng rng(7007);
    Arena arena;
    const std::int64_t n = 8000;
    const Addr a = arena.alloc(n * 8);
    fillF64(mem, a, n, rng, 0.5, 2.0);

    auto &f = pb.func("main", 1);
    const RegId a_b = f.arg(0);
    const RegId eight = f.movi(8);
    const RegId acc = f.reg();
    f.fmoviTo(acc, 1.0);
    countedLoop(f, 0, n, 1, [&](RegId i) {
        const RegId v =
            f.ld(f.add(a_b, f.mul(i, eight)), 0);
        const RegId s = f.fsqrt(v);
        const RegId d = f.fdiv(v, f.fadd(s, f.fmovi(0.1)));
        f.faddTo(acc, acc, d);
    });
    f.ret(acc);
    args = {static_cast<std::int64_t>(a)};
}

void
buildCalls(ProgramBuilder &pb, SimMemory &mem,
           std::vector<std::int64_t> &args)
{
    (void)mem;
    auto &leaf = pb.func("leaf", 2);
    {
        const RegId a = leaf.arg(0);
        const RegId b = leaf.arg(1);
        const RegId s = leaf.add(a, b);
        const RegId t = leaf.mul(s, leaf.movi(3));
        leaf.ret(t);
    }
    auto &f = pb.func("main", 0);
    const RegId acc = f.reg();
    f.moviTo(acc, 0);
    countedLoop(f, 0, 8000, 1, [&](RegId i) {
        const RegId r = f.call(leaf.id(), {acc, i});
        f.movTo(acc, r);
    });
    f.ret(acc);
    args = {};
}

const std::vector<WorkloadSpec> kMicro = {
    {"ilp-chain", "vertical", SuiteClass::Regular, buildIlpChain,
     120'000},
    {"ilp-wide", "vertical", SuiteClass::Regular, buildIlpWide,
     150'000},
    {"mem-stream", "vertical", SuiteClass::Regular, buildMemStream,
     200'000},
    {"mem-random", "vertical", SuiteClass::Irregular, buildMemRandom,
     120'000},
    {"branch-pred", "vertical", SuiteClass::Regular, buildBranchPred,
     200'000},
    {"branch-rand", "vertical", SuiteClass::Irregular,
     buildBranchRand, 250'000},
    {"fp-mix", "vertical", SuiteClass::Regular, buildFpMix, 120'000},
    {"calls", "vertical", SuiteClass::Irregular, buildCalls,
     120'000},
};

} // namespace

std::span<const WorkloadSpec>
microbenchmarks()
{
    return kMicro;
}

} // namespace prism
