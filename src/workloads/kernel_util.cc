#include "workloads/kernel_util.hh"

namespace prism
{

void
countedLoop(FunctionBuilder &f, std::int64_t start, std::int64_t end,
            std::int64_t step, const std::function<void(RegId)> &body)
{
    const RegId start_r = f.movi(start);
    const RegId end_r = f.movi(end);
    countedLoopR(f, start_r, end_r, step, body);
}

void
countedLoopR(FunctionBuilder &f, RegId start, RegId end,
             std::int64_t step, const std::function<void(RegId)> &body)
{
    const RegId i = f.reg();
    f.movTo(i, start);
    const RegId step_r = f.movi(step);
    const std::int32_t loop_b = f.newBlock();
    const std::int32_t exit_b = f.newBlock();
    f.jmp(loop_b);
    f.setBlock(loop_b);
    body(i);
    f.addTo(i, i, step_r);
    const RegId c = f.cmplt(i, end);
    f.br(c, loop_b, exit_b);
    f.setBlock(exit_b);
}

void
ifElse(FunctionBuilder &f, RegId cond,
       const std::function<void()> &then_fn,
       const std::function<void()> &else_fn)
{
    const std::int32_t then_b = f.newBlock();
    const std::int32_t merge_b = f.newBlock();
    if (else_fn) {
        const std::int32_t else_b = f.newBlock();
        f.br(cond, then_b, else_b);
        f.setBlock(else_b);
        else_fn();
        f.jmp(merge_b);
    } else {
        f.br(cond, then_b, merge_b);
    }
    f.setBlock(then_b);
    then_fn();
    f.jmp(merge_b);
    f.setBlock(merge_b);
}

void
whileLoop(FunctionBuilder &f, const std::function<RegId()> &cond_fn,
          const std::function<void()> &body)
{
    const std::int32_t head_b = f.newBlock();
    const std::int32_t body_b = f.newBlock();
    const std::int32_t exit_b = f.newBlock();
    f.jmp(head_b);
    f.setBlock(head_b);
    const RegId c = cond_fn();
    f.br(c, body_b, exit_b);
    f.setBlock(body_b);
    body();
    f.jmp(head_b);
    f.setBlock(exit_b);
}

void
fillF64(SimMemory &mem, Addr base, std::size_t n, Rng &rng, double lo,
        double hi)
{
    for (std::size_t i = 0; i < n; ++i)
        mem.writeF64(base + i * 8, lo + rng.uniform() * (hi - lo));
}

void
fillI64(SimMemory &mem, Addr base, std::size_t n, Rng &rng,
        std::int64_t lo, std::int64_t hi)
{
    for (std::size_t i = 0; i < n; ++i)
        mem.writeI64(base + i * 8, rng.range(lo, hi));
}

void
fillSortedI64(SimMemory &mem, Addr base, std::size_t n, Rng &rng,
              std::int64_t lo, std::int64_t max_gap)
{
    std::int64_t v = lo;
    for (std::size_t i = 0; i < n; ++i) {
        v += rng.range(0, max_gap);
        mem.writeI64(base + i * 8, v);
    }
}

} // namespace prism
