/**
 * @file
 * Parboil analogues (paper Table 3, "regular"): cutcp, fft, kmeans,
 * lbm, mm, sad, needle, nnw, spmv, stencil, tpacf. The set spans
 * clean dense loops (mm, stencil, sad), gather patterns (spmv),
 * cutoff conditionals (cutcp), strided FP (fft), and dynamic-
 * programming recurrences (needle) and histogramming (tpacf) that
 * defeat vectorization.
 */

#include "workloads/suite.hh"

#include "workloads/kernel_util.hh"

namespace prism
{

namespace
{

void
buildCutcp(ProgramBuilder &pb, SimMemory &mem,
           std::vector<std::int64_t> &args)
{
    Rng rng(2001);
    Arena arena;
    const std::int64_t atoms = 220;
    const std::int64_t grid = 220;
    const Addr ax = arena.alloc(atoms * 8);
    const Addr ay = arena.alloc(atoms * 8);
    const Addr gx = arena.alloc(grid * 8);
    const Addr pot = arena.alloc(grid * 8);
    fillF64(mem, ax, atoms, rng, 0.0, 16.0);
    fillF64(mem, ay, atoms, rng, 0.0, 16.0);
    fillF64(mem, gx, grid, rng, 0.0, 16.0);

    auto &f = pb.func("main", 4);
    const RegId ax_b = f.arg(0);
    const RegId ay_b = f.arg(1);
    const RegId gx_b = f.arg(2);
    const RegId pot_b = f.arg(3);
    const RegId eight = f.movi(8);
    const RegId cutoff2 = f.fmovi(4.0);
    const RegId eps = f.fmovi(0.05);

    countedLoop(f, 0, grid, 1, [&](RegId g) {
        const RegId goff = f.mul(g, eight);
        const RegId px = f.ld(f.add(gx_b, goff), 0);
        const RegId acc = f.reg();
        f.fmoviTo(acc, 0.0);
        countedLoop(f, 0, atoms, 1, [&](RegId a) {
            const RegId aoff = f.mul(a, eight);
            const RegId x = f.ld(f.add(ax_b, aoff), 0);
            const RegId y = f.ld(f.add(ay_b, aoff), 0);
            const RegId dx = f.fsub(x, px);
            const RegId r2 = f.fma(dx, dx, f.fmul(y, eps));
            // Within cutoff? (if-convertible conditional update)
            const RegId in = f.fcmplt(r2, cutoff2);
            const RegId inv = f.fdiv(f.fmovi(1.0),
                                     f.fadd(r2, eps));
            const RegId upd = f.fadd(acc, inv);
            f.selTo(acc, in, upd, acc);
        });
        f.st(f.add(pot_b, goff), 0, acc);
    });
    f.retVoid();
    args = {static_cast<std::int64_t>(ax),
            static_cast<std::int64_t>(ay),
            static_cast<std::int64_t>(gx),
            static_cast<std::int64_t>(pot)};
}

void
buildFft(ProgramBuilder &pb, SimMemory &mem,
         std::vector<std::int64_t> &args)
{
    Rng rng(2002);
    Arena arena;
    const std::int64_t n = 4096;
    const Addr re = arena.alloc(n * 8);
    const Addr im = arena.alloc(n * 8);
    fillF64(mem, re, n, rng, -1.0, 1.0);
    fillF64(mem, im, n, rng, -1.0, 1.0);

    auto &f = pb.func("main", 2);
    const RegId re_b = f.arg(0);
    const RegId im_b = f.arg(1);
    const RegId eight = f.movi(8);
    const RegId wr = f.fmovi(0.92387953);
    const RegId wi = f.fmovi(-0.38268343);

    // Radix-2 stages with fixed twiddle (behavioral stand-in):
    // butterflies at stride 2^s.
    for (std::int64_t s = 1; s <= 4; ++s) {
        const std::int64_t half = std::int64_t{1} << s;
        countedLoop(f, 0, n - half, half * 2, [&](RegId base) {
            const RegId boff = f.mul(base, eight);
            const RegId p0r = f.add(re_b, boff);
            const RegId p0i = f.add(im_b, boff);
            const RegId ar = f.ld(p0r, 0);
            const RegId ai = f.ld(p0i, 0);
            const RegId br = f.ld(p0r, half * 8);
            const RegId bi = f.ld(p0i, half * 8);
            const RegId tr = f.fsub(f.fmul(br, wr),
                                    f.fmul(bi, wi));
            const RegId ti = f.fadd(f.fmul(br, wi),
                                    f.fmul(bi, wr));
            f.st(p0r, 0, f.fadd(ar, tr));
            f.st(p0i, 0, f.fadd(ai, ti));
            f.st(p0r, half * 8, f.fsub(ar, tr));
            f.st(p0i, half * 8, f.fsub(ai, ti));
        });
    }
    f.retVoid();
    args = {static_cast<std::int64_t>(re),
            static_cast<std::int64_t>(im)};
}

void
buildKmeans(ProgramBuilder &pb, SimMemory &mem,
            std::vector<std::int64_t> &args)
{
    Rng rng(2003);
    Arena arena;
    const std::int64_t points = 1600;
    const std::int64_t dims = 8;
    const std::int64_t clusters = 4;
    const Addr pts = arena.alloc(points * dims * 8);
    const Addr ctr = arena.alloc(clusters * dims * 8);
    const Addr assign = arena.alloc(points * 8);
    fillF64(mem, pts, points * dims, rng);
    fillF64(mem, ctr, clusters * dims, rng);

    auto &f = pb.func("main", 3);
    const RegId pts_b = f.arg(0);
    const RegId ctr_b = f.arg(1);
    const RegId as_b = f.arg(2);
    const RegId eight = f.movi(8);
    const RegId dimsz = f.movi(dims * 8);

    countedLoop(f, 0, points, 1, [&](RegId p) {
        const RegId po = f.add(pts_b, f.mul(p, dimsz));
        const RegId best = f.reg();
        const RegId bestd = f.reg();
        f.moviTo(best, 0);
        f.fmoviTo(bestd, 1e30);
        for (std::int64_t c = 0; c < clusters; ++c) {
            RegId d = f.fmovi(0.0);
            for (std::int64_t k = 0; k < dims; ++k) {
                const RegId x = f.ld(po, k * 8);
                const RegId y =
                    f.ld(ctr_b, (c * dims + k) * 8);
                const RegId diff = f.fsub(x, y);
                d = f.fma(diff, diff, d);
            }
            const RegId lt = f.fcmplt(d, bestd);
            f.selTo(bestd, lt, d, bestd);
            const RegId cr = f.movi(c);
            f.selTo(best, lt, cr, best);
        }
        f.st(f.add(as_b, f.mul(p, eight)), 0, best);
    });
    f.retVoid();
    args = {static_cast<std::int64_t>(pts),
            static_cast<std::int64_t>(ctr),
            static_cast<std::int64_t>(assign)};
}

void
buildLbm(ProgramBuilder &pb, SimMemory &mem,
         std::vector<std::int64_t> &args)
{
    Rng rng(2004);
    Arena arena;
    const std::int64_t cells = 2600;
    const std::int64_t q = 5; // lattice directions
    const Addr src = arena.alloc(cells * q * 8);
    const Addr dst = arena.alloc(cells * q * 8);
    const Addr flags = arena.alloc(cells * 8);
    fillF64(mem, src, cells * q, rng, 0.0, 0.2);
    for (std::int64_t i = 0; i < cells; ++i)
        mem.writeI64(flags + i * 8, rng.chance(0.07) ? 1 : 0);

    auto &f = pb.func("main", 3);
    const RegId src_b = f.arg(0);
    const RegId dst_b = f.arg(1);
    const RegId fl_b = f.arg(2);
    const RegId eight = f.movi(8);
    const RegId rowsz = f.movi(q * 8);
    const RegId omega = f.fmovi(0.6);

    countedLoop(f, 1, cells - 1, 1, [&](RegId c) {
        const RegId base = f.add(src_b, f.mul(c, rowsz));
        RegId rho = f.fmovi(0.0);
        std::vector<RegId> fi;
        for (std::int64_t d = 0; d < q; ++d) {
            const RegId v = f.ld(base, d * 8);
            fi.push_back(v);
            rho = f.fadd(rho, v);
        }
        const RegId flag =
            f.ld(f.add(fl_b, f.mul(c, eight)), 0);
        const RegId obst = f.cmpeq(flag, f.movi(1));
        const RegId out = f.add(dst_b, f.mul(c, rowsz));
        for (std::int64_t d = 0; d < q; ++d) {
            // Relax toward equilibrium; bounce back at obstacles.
            const RegId eq = f.fmul(rho, omega);
            const RegId relaxed =
                f.fadd(fi[d], f.fmul(omega, f.fsub(eq, fi[d])));
            const RegId bounced = fi[(d + 2) % q];
            const RegId val = f.sel(obst, bounced, relaxed);
            f.st(out, d * 8, val);
        }
    });
    f.retVoid();
    args = {static_cast<std::int64_t>(src),
            static_cast<std::int64_t>(dst),
            static_cast<std::int64_t>(flags)};
}

void
buildMm(ProgramBuilder &pb, SimMemory &mem,
        std::vector<std::int64_t> &args)
{
    Rng rng(2005);
    Arena arena;
    const std::int64_t n = 44; // n^3 inner iterations
    const Addr a = arena.alloc(n * n * 8);
    const Addr bt = arena.alloc(n * n * 8); // B transposed
    const Addr c = arena.alloc(n * n * 8);
    fillF64(mem, a, n * n, rng, -1.0, 1.0);
    fillF64(mem, bt, n * n, rng, -1.0, 1.0);

    auto &f = pb.func("main", 3);
    const RegId a_b = f.arg(0);
    const RegId bt_b = f.arg(1);
    const RegId c_b = f.arg(2);
    const RegId eight = f.movi(8);
    const RegId rowsz = f.movi(n * 8);

    countedLoop(f, 0, n, 1, [&](RegId i) {
        const RegId arow = f.add(a_b, f.mul(i, rowsz));
        const RegId crow = f.add(c_b, f.mul(i, rowsz));
        countedLoop(f, 0, n, 1, [&](RegId j) {
            const RegId brow = f.add(bt_b, f.mul(j, rowsz));
            const RegId acc = f.reg();
            f.fmoviTo(acc, 0.0);
            countedLoop(f, 0, n, 1, [&](RegId k) {
                const RegId koff = f.mul(k, eight);
                const RegId x = f.ld(f.add(arow, koff), 0);
                const RegId y = f.ld(f.add(brow, koff), 0);
                const RegId prod = f.fmul(x, y);
                f.faddTo(acc, acc, prod);
            });
            f.st(f.add(crow, f.mul(j, eight)), 0, acc);
        });
    });
    f.retVoid();
    args = {static_cast<std::int64_t>(a),
            static_cast<std::int64_t>(bt),
            static_cast<std::int64_t>(c)};
}

void
buildSad(ProgramBuilder &pb, SimMemory &mem,
         std::vector<std::int64_t> &args)
{
    Rng rng(2006);
    Arena arena;
    const std::int64_t blocks = 300;
    const std::int64_t blk = 16;
    const Addr cur = arena.alloc(blocks * blk * 8);
    const Addr ref = arena.alloc(blocks * blk * 8);
    const Addr out = arena.alloc(blocks * 8);
    fillI64(mem, cur, blocks * blk, rng, 0, 255);
    fillI64(mem, ref, blocks * blk, rng, 0, 255);

    auto &f = pb.func("main", 3);
    const RegId cur_b = f.arg(0);
    const RegId ref_b = f.arg(1);
    const RegId out_b = f.arg(2);
    const RegId eight = f.movi(8);
    const RegId blksz = f.movi(blk * 8);
    const RegId zero = f.movi(0);

    countedLoop(f, 0, blocks, 1, [&](RegId b) {
        const RegId co = f.add(cur_b, f.mul(b, blksz));
        const RegId ro = f.add(ref_b, f.mul(b, blksz));
        RegId acc = f.movi(0);
        for (std::int64_t k = 0; k < blk; ++k) {
            const RegId x = f.ld(co, k * 8);
            const RegId y = f.ld(ro, k * 8);
            const RegId d = f.sub(x, y);
            const RegId neg = f.sub(zero, d);
            const RegId isneg = f.cmplt(d, zero);
            const RegId ad = f.sel(isneg, neg, d);
            acc = f.add(acc, ad);
        }
        f.st(f.add(out_b, f.mul(b, eight)), 0, acc);
    });
    f.retVoid();
    args = {static_cast<std::int64_t>(cur),
            static_cast<std::int64_t>(ref),
            static_cast<std::int64_t>(out)};
}

void
buildNeedle(ProgramBuilder &pb, SimMemory &mem,
            std::vector<std::int64_t> &args)
{
    Rng rng(2007);
    Arena arena;
    const std::int64_t n = 360; // DP matrix rows/cols
    const Addr score = arena.alloc((n + 1) * (n + 1) * 8);
    const Addr seq1 = arena.alloc(n * 8);
    const Addr seq2 = arena.alloc(n * 8);
    fillI64(mem, seq1, n, rng, 0, 3);
    fillI64(mem, seq2, n, rng, 0, 3);

    auto &f = pb.func("main", 3);
    const RegId sc_b = f.arg(0);
    const RegId s1_b = f.arg(1);
    const RegId s2_b = f.arg(2);
    const RegId eight = f.movi(8);
    const RegId rowsz = f.movi((n + 1) * 8);
    const RegId gap = f.movi(-1);
    const RegId match = f.movi(2);
    const RegId mismatch = f.movi(-1);

    countedLoop(f, 1, n + 1, 1, [&](RegId i) {
        const RegId row = f.add(sc_b, f.mul(i, rowsz));
        const RegId prow = f.sub(row, rowsz);
        const RegId c1 =
            f.ld(f.add(s1_b, f.mul(f.sub(i, f.movi(1)), eight)), 0);
        countedLoop(f, 1, n + 1, 1, [&](RegId j) {
            const RegId joff = f.mul(j, eight);
            const RegId up = f.ld(f.add(prow, joff), 0);
            const RegId left =
                f.ld(f.add(row, joff), -8); // score[i][j-1]
            const RegId diag = f.ld(f.add(prow, joff), -8);
            const RegId c2 = f.ld(
                f.add(s2_b, f.mul(f.sub(j, f.movi(1)), eight)),
                0);
            const RegId eq = f.cmpeq(c1, c2);
            const RegId sub = f.sel(eq, match, mismatch);
            const RegId dscore = f.add(diag, sub);
            const RegId uscore = f.add(up, gap);
            const RegId lscore = f.add(left, gap);
            const RegId m1 =
                f.sel(f.cmplt(uscore, dscore), dscore, uscore);
            const RegId m2 =
                f.sel(f.cmplt(lscore, m1), m1, lscore);
            f.st(f.add(row, joff), 0, m2);
        });
    });
    f.retVoid();
    args = {static_cast<std::int64_t>(score),
            static_cast<std::int64_t>(seq1),
            static_cast<std::int64_t>(seq2)};
}

void
buildNnw(ProgramBuilder &pb, SimMemory &mem,
         std::vector<std::int64_t> &args)
{
    Rng rng(2008);
    Arena arena;
    const std::int64_t in_n = 64;
    const std::int64_t out_n = 48;
    const std::int64_t batches = 40;
    const Addr w = arena.alloc(in_n * out_n * 8);
    const Addr x = arena.alloc(batches * in_n * 8);
    const Addr y = arena.alloc(batches * out_n * 8);
    fillF64(mem, w, in_n * out_n, rng, -0.3, 0.3);
    fillF64(mem, x, batches * in_n, rng, -1.0, 1.0);

    auto &f = pb.func("main", 3);
    const RegId w_b = f.arg(0);
    const RegId x_b = f.arg(1);
    const RegId y_b = f.arg(2);
    const RegId eight = f.movi(8);
    const RegId insz = f.movi(in_n * 8);
    const RegId half = f.fmovi(0.5);
    const RegId quarter = f.fmovi(0.25);

    countedLoop(f, 0, batches, 1, [&](RegId b) {
        const RegId xo = f.add(x_b, f.mul(b, insz));
        countedLoop(f, 0, out_n, 1, [&](RegId o) {
            const RegId wrow = f.add(w_b, f.mul(o, insz));
            const RegId acc = f.reg();
            f.fmoviTo(acc, 0.0);
            countedLoop(f, 0, in_n, 1, [&](RegId k) {
                const RegId koff = f.mul(k, eight);
                const RegId xv = f.ld(f.add(xo, koff), 0);
                const RegId wv = f.ld(f.add(wrow, koff), 0);
                const RegId prod = f.fmul(xv, wv);
                f.faddTo(acc, acc, prod);
            });
            // Cheap sigmoid-like activation: 0.5 + 0.25*a
            const RegId act = f.fma(acc, quarter, half);
            const RegId oo = f.add(
                f.add(y_b, f.mul(b, f.movi(out_n * 8))),
                f.mul(o, eight));
            f.st(oo, 0, act);
        });
    });
    f.retVoid();
    args = {static_cast<std::int64_t>(w),
            static_cast<std::int64_t>(x),
            static_cast<std::int64_t>(y)};
}

void
buildSpmv(ProgramBuilder &pb, SimMemory &mem,
          std::vector<std::int64_t> &args)
{
    Rng rng(2009);
    Arena arena;
    const std::int64_t rows = 1400;
    const std::int64_t nnz_per_row = 12;
    const std::int64_t cols = 4096;
    const std::int64_t nnz = rows * nnz_per_row;
    const Addr rowptr = arena.alloc((rows + 1) * 8);
    const Addr colidx = arena.alloc(nnz * 8);
    const Addr vals = arena.alloc(nnz * 8);
    const Addr x = arena.alloc(cols * 8);
    const Addr y = arena.alloc(rows * 8);
    for (std::int64_t r = 0; r <= rows; ++r)
        mem.writeI64(rowptr + r * 8, r * nnz_per_row);
    fillI64(mem, colidx, nnz, rng, 0, cols - 1);
    fillF64(mem, vals, nnz, rng, -1.0, 1.0);
    fillF64(mem, x, cols, rng, -1.0, 1.0);

    auto &f = pb.func("main", 5);
    const RegId rp_b = f.arg(0);
    const RegId ci_b = f.arg(1);
    const RegId v_b = f.arg(2);
    const RegId x_b = f.arg(3);
    const RegId y_b = f.arg(4);
    const RegId eight = f.movi(8);

    countedLoop(f, 0, rows, 1, [&](RegId r) {
        const RegId roff = f.mul(r, eight);
        const RegId lo = f.ld(f.add(rp_b, roff), 0);
        const RegId hi = f.ld(f.add(rp_b, roff), 8);
        const RegId acc = f.reg();
        f.fmoviTo(acc, 0.0);
        countedLoopR(f, lo, hi, 1, [&](RegId k) {
            const RegId koff = f.mul(k, eight);
            const RegId col =
                f.ld(f.add(ci_b, koff), 0);
            const RegId v = f.ld(f.add(v_b, koff), 0);
            const RegId xv =
                f.ld(f.add(x_b, f.mul(col, eight)), 0);
            const RegId prod = f.fmul(v, xv);
            f.faddTo(acc, acc, prod);
        });
        f.st(f.add(y_b, roff), 0, acc);
    });
    f.retVoid();
    args = {static_cast<std::int64_t>(rowptr),
            static_cast<std::int64_t>(colidx),
            static_cast<std::int64_t>(vals),
            static_cast<std::int64_t>(x),
            static_cast<std::int64_t>(y)};
}

void
buildStencil(ProgramBuilder &pb, SimMemory &mem,
             std::vector<std::int64_t> &args)
{
    Rng rng(2010);
    Arena arena;
    const std::int64_t w = 160;
    const std::int64_t h = 110;
    const Addr in = arena.alloc(w * h * 8);
    const Addr out = arena.alloc(w * h * 8);
    fillF64(mem, in, w * h, rng, 0.0, 1.0);

    auto &f = pb.func("main", 2);
    const RegId in_b = f.arg(0);
    const RegId out_b = f.arg(1);
    const RegId eight = f.movi(8);
    const RegId rowsz = f.movi(w * 8);
    const RegId c0 = f.fmovi(0.5);
    const RegId c1 = f.fmovi(0.125);

    countedLoop(f, 1, h - 1, 1, [&](RegId y) {
        const RegId row = f.add(in_b, f.mul(y, rowsz));
        const RegId orow = f.add(out_b, f.mul(y, rowsz));
        countedLoop(f, 1, w - 1, 1, [&](RegId x) {
            const RegId xo = f.mul(x, eight);
            const RegId p = f.add(row, xo);
            const RegId ctr = f.ld(p, 0);
            const RegId left = f.ld(p, -8);
            const RegId right = f.ld(p, 8);
            const RegId up = f.ld(p, -w * 8);
            const RegId down = f.ld(p, w * 8);
            const RegId sum = f.fadd(f.fadd(left, right),
                                     f.fadd(up, down));
            const RegId val = f.fma(sum, c1, f.fmul(ctr, c0));
            f.st(f.add(orow, xo), 0, val);
        });
    });
    f.retVoid();
    args = {static_cast<std::int64_t>(in),
            static_cast<std::int64_t>(out)};
}

void
buildTpacf(ProgramBuilder &pb, SimMemory &mem,
           std::vector<std::int64_t> &args)
{
    Rng rng(2011);
    Arena arena;
    const std::int64_t points = 420;
    const std::int64_t bins = 32;
    const Addr d = arena.alloc(points * 8);
    const Addr hist = arena.alloc(bins * 8);
    fillF64(mem, d, points, rng, 0.0, 1.0);

    auto &f = pb.func("main", 2);
    const RegId d_b = f.arg(0);
    const RegId h_b = f.arg(1);
    const RegId eight = f.movi(8);
    const RegId binscale = f.fmovi(static_cast<double>(bins - 1));
    const RegId one = f.movi(1);

    countedLoop(f, 0, points, 1, [&](RegId i) {
        const RegId xi = f.ld(f.add(d_b, f.mul(i, eight)), 0);
        countedLoop(f, 0, points, 1, [&](RegId j) {
            const RegId xj =
                f.ld(f.add(d_b, f.mul(j, eight)), 0);
            const RegId diff = f.fsub(xi, xj);
            const RegId a2 = f.fmul(diff, diff);
            const RegId binf = f.fmul(a2, binscale);
            const RegId bin = f.cvtfi(binf);
            // Histogram update: carried memory dependence.
            const RegId slot = f.add(h_b, f.mul(bin, eight));
            const RegId cur = f.ld(slot, 0);
            f.st(slot, 0, f.add(cur, one));
        });
    });
    f.retVoid();
    args = {static_cast<std::int64_t>(d),
            static_cast<std::int64_t>(hist)};
}

const std::vector<WorkloadSpec> kParboil = {
    {"cutcp", "Parboil", SuiteClass::Regular, buildCutcp, 350'000},
    {"fft", "Parboil", SuiteClass::Regular, buildFft, 300'000},
    {"kmeans", "Parboil", SuiteClass::Regular, buildKmeans, 350'000},
    {"lbm", "Parboil", SuiteClass::Regular, buildLbm, 300'000},
    {"mm", "Parboil", SuiteClass::Regular, buildMm, 350'000},
    {"sad", "Parboil", SuiteClass::Regular, buildSad, 300'000},
    {"needle", "Parboil", SuiteClass::Regular, buildNeedle, 350'000},
    {"nnw", "Parboil", SuiteClass::Regular, buildNnw, 350'000},
    {"spmv", "Parboil", SuiteClass::Regular, buildSpmv, 350'000},
    {"stencil", "Parboil", SuiteClass::Regular, buildStencil,
     300'000},
    {"tpacf", "Parboil", SuiteClass::Regular, buildTpacf, 350'000},
};

} // namespace

std::span<const WorkloadSpec>
parboilWorkloads()
{
    return kParboil;
}

} // namespace prism
