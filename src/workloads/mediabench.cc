/**
 * @file
 * Mediabench analogues (paper Table 3, "semi-regular"). Media codecs
 * are multi-phase: a transform phase (DCT-like, data-parallel), a
 * quantization phase (predicated integer math), an entropy phase
 * (bit-twiddling with data-dependent control), prediction/SAD phases
 * (integer data-parallel with reductions) and filter phases with
 * true recurrences (GSM's LPC). Each benchmark composes these with
 * its own mix, so different loops of one application prefer
 * different BSAs — the within-application affinity the paper's
 * Figures 13-15 study.
 */

#include "workloads/suite.hh"

#include "workloads/kernel_util.hh"

namespace prism
{

namespace
{

/** DCT-like phase: 8-wide butterflies over `blocks` blocks. */
void
emitDct(FunctionBuilder &f, RegId in_b, RegId out_b,
        std::int64_t blocks)
{
    const RegId blksz = f.movi(64); // 8 doubles
    const RegId c0 = f.fmovi(0.70710678);
    const RegId c1 = f.fmovi(0.38268343);
    countedLoop(f, 0, blocks, 1, [&](RegId b) {
        const RegId po = f.add(in_b, f.mul(b, blksz));
        const RegId qo = f.add(out_b, f.mul(b, blksz));
        std::vector<RegId> x;
        for (int k = 0; k < 8; ++k)
            x.push_back(f.ld(po, k * 8));
        for (int k = 0; k < 4; ++k) {
            const RegId s = f.fadd(x[k], x[7 - k]);
            const RegId d = f.fsub(x[k], x[7 - k]);
            const RegId t0 = f.fma(s, c0, f.fmul(d, c1));
            const RegId t1 = f.fsub(f.fmul(s, c1),
                                    f.fmul(d, c0));
            f.st(qo, k * 8, t0);
            f.st(qo, (7 - k) * 8, t1);
        }
    });
}

/** Quantization phase: divide, clamp via select. */
void
emitQuant(FunctionBuilder &f, RegId in_b, RegId out_b, std::int64_t n)
{
    const RegId eight = f.movi(8);
    const RegId qstep = f.movi(13);
    const RegId maxq = f.movi(255);
    const RegId minq = f.movi(-255);
    countedLoop(f, 0, n, 1, [&](RegId i) {
        const RegId off = f.mul(i, eight);
        const RegId v = f.ld(f.add(in_b, off), 0);
        const RegId q = f.div(v, qstep);
        const RegId hi = f.cmplt(maxq, q);
        const RegId q1 = f.sel(hi, maxq, q);
        const RegId lo = f.cmplt(q1, minq);
        const RegId q2 = f.sel(lo, minq, q1);
        f.st(f.add(out_b, off), 0, q2);
    });
}

/**
 * Entropy/VLC phase: per-symbol bit emission with value-dependent
 * branches (irregular control; defeats vectorization).
 */
void
emitVlc(FunctionBuilder &f, RegId in_b, RegId out_b, std::int64_t n)
{
    const RegId eight = f.movi(8);
    const RegId zero = f.movi(0);
    const RegId one = f.movi(1);
    const RegId bits = f.reg();
    const RegId word = f.reg();
    const RegId outpos = f.reg();
    f.moviTo(bits, 0);
    f.moviTo(word, 0);
    f.moviTo(outpos, 0);
    const RegId sixteen = f.movi(16);
    countedLoop(f, 0, n, 1, [&](RegId i) {
        const RegId v = f.ld(f.add(in_b, f.mul(i, eight)), 0);
        const RegId isz = f.cmpeq(v, zero);
        ifElse(
            f, isz,
            [&]() {
                // Zero-run: 1 bit.
                f.addTo(bits, bits, one);
            },
            [&]() {
                // Magnitude-dependent length: 4 or 9 bits.
                const RegId neg = f.cmplt(v, zero);
                const RegId mag = f.sel(neg, f.sub(zero, v), v);
                const RegId big = f.cmplt(sixteen, mag);
                ifElse(
                    f, big,
                    [&]() {
                        f.addTo(bits, bits, f.movi(9));
                        f.addTo(word, word,
                                f.shl(mag, f.movi(3)));
                    },
                    [&]() {
                        f.addTo(bits, bits, f.movi(4));
                        f.addTo(word, word, mag);
                    });
            });
        // Flush a 16-bit word when full.
        const RegId full = f.cmplt(sixteen, bits);
        ifElse(f, full, [&]() {
            f.st(f.add(out_b, f.mul(outpos, eight)), 0, word);
            f.addTo(outpos, outpos, one);
            f.moviTo(word, 0);
            f.moviTo(bits, 0);
        });
    });
}

/** Motion/SAD phase: integer absolute-difference reduction. */
void
emitSad(FunctionBuilder &f, RegId a_b, RegId b_b, RegId out_b,
        std::int64_t blocks)
{
    const RegId blksz = f.movi(16 * 8);
    const RegId eight = f.movi(8);
    const RegId zero = f.movi(0);
    countedLoop(f, 0, blocks, 1, [&](RegId b) {
        const RegId po = f.add(a_b, f.mul(b, blksz));
        const RegId qo = f.add(b_b, f.mul(b, blksz));
        RegId acc = f.movi(0);
        for (int k = 0; k < 16; ++k) {
            const RegId x = f.ld(po, k * 8);
            const RegId y = f.ld(qo, k * 8);
            const RegId d = f.sub(x, y);
            const RegId neg = f.cmplt(d, zero);
            acc = f.add(acc, f.sel(neg, f.sub(zero, d), d));
        }
        f.st(f.add(out_b, f.mul(b, eight)), 0, acc);
    });
}

/** LPC/IIR filter phase: a true loop-carried FP recurrence. */
void
emitLpc(FunctionBuilder &f, RegId in_b, RegId out_b, std::int64_t n)
{
    const RegId eight = f.movi(8);
    const RegId a1 = f.fmovi(0.6);
    const RegId a2 = f.fmovi(-0.2);
    const RegId s1 = f.reg();
    const RegId s2 = f.reg();
    f.fmoviTo(s1, 0.0);
    f.fmoviTo(s2, 0.0);
    countedLoop(f, 0, n, 1, [&](RegId i) {
        const RegId off = f.mul(i, eight);
        const RegId x = f.ld(f.add(in_b, off), 0);
        const RegId y = f.fadd(x, f.fma(s1, a1, f.fmul(s2, a2)));
        f.st(f.add(out_b, off), 0, y);
        f.movTo(s2, s1);
        f.movTo(s1, y);
    });
}

/** Upsample/interpolation phase: regular averaging. */
void
emitInterp(FunctionBuilder &f, RegId in_b, RegId out_b,
           std::int64_t n)
{
    const RegId eight = f.movi(8);
    const RegId half = f.fmovi(0.5);
    countedLoop(f, 0, n - 1, 1, [&](RegId i) {
        const RegId off = f.mul(i, eight);
        const RegId p = f.add(in_b, off);
        const RegId x0 = f.ld(p, 0);
        const RegId x1 = f.ld(p, 8);
        const RegId m = f.fmul(f.fadd(x0, x1), half);
        f.st(f.add(out_b, off), 0, m);
    });
}

/** Shared staging: several numbered buffers. */
struct MediaBufs
{
    Addr buf[6];
    explicit MediaBufs(Arena &arena, std::int64_t elems)
    {
        for (auto &b : buf)
            b = arena.alloc(elems * 8);
    }
};

using Phase = void (*)(FunctionBuilder &, const MediaBufs &,
                       const std::vector<RegId> &);

/** Common kernel skeleton: stage data, run `frames` outer passes. */
template <typename EmitBody>
void
mediaKernel(ProgramBuilder &pb, SimMemory &mem,
            std::vector<std::int64_t> &args, std::uint64_t seed,
            std::int64_t elems, std::int64_t frames,
            EmitBody emit_body)
{
    Rng rng(seed);
    Arena arena;
    MediaBufs bufs(arena, elems);
    fillF64(mem, bufs.buf[0], elems, rng, -1.0, 1.0);
    fillI64(mem, bufs.buf[1], elems, rng, -40, 40);
    fillI64(mem, bufs.buf[2], elems, rng, 0, 255);
    fillF64(mem, bufs.buf[3], elems, rng, -1.0, 1.0);

    auto &f = pb.func("main", 3);
    const RegId b0 = f.arg(0);
    const RegId b1 = f.arg(1);
    const RegId b2 = f.arg(2);
    // Remaining buffers as immediates.
    const RegId b3 = f.movi(static_cast<std::int64_t>(bufs.buf[3]));
    const RegId b4 = f.movi(static_cast<std::int64_t>(bufs.buf[4]));
    const RegId b5 = f.movi(static_cast<std::int64_t>(bufs.buf[5]));
    std::vector<RegId> bregs = {b0, b1, b2, b3, b4, b5};

    countedLoop(f, 0, frames, 1,
                [&](RegId) { emit_body(f, bregs); });
    f.retVoid();
    args = {static_cast<std::int64_t>(bufs.buf[0]),
            static_cast<std::int64_t>(bufs.buf[1]),
            static_cast<std::int64_t>(bufs.buf[2])};
}

// --- Benchmarks: each composes phases with its own mix. ---

void
buildCjpeg(ProgramBuilder &pb, SimMemory &mem,
           std::vector<std::int64_t> &args)
{
    mediaKernel(pb, mem, args, 5001, 2048, 6,
                [](FunctionBuilder &f, const std::vector<RegId> &b) {
                    emitDct(f, b[0], b[3], 128);
                    emitQuant(f, b[1], b[4], 768);
                    emitVlc(f, b[4], b[5], 512);
                });
}

void
buildDjpeg(ProgramBuilder &pb, SimMemory &mem,
           std::vector<std::int64_t> &args)
{
    mediaKernel(pb, mem, args, 5002, 2048, 6,
                [](FunctionBuilder &f, const std::vector<RegId> &b) {
                    emitVlc(f, b[1], b[5], 400);
                    emitDct(f, b[0], b[3], 128); // IDCT-like
                    emitInterp(f, b[3], b[4], 1024);
                });
}

void
buildGsmdecode(ProgramBuilder &pb, SimMemory &mem,
               std::vector<std::int64_t> &args)
{
    mediaKernel(pb, mem, args, 5003, 2048, 8,
                [](FunctionBuilder &f, const std::vector<RegId> &b) {
                    emitLpc(f, b[0], b[3], 1200);
                    emitInterp(f, b[3], b[4], 800);
                });
}

void
buildGsmencode(ProgramBuilder &pb, SimMemory &mem,
               std::vector<std::int64_t> &args)
{
    mediaKernel(pb, mem, args, 5004, 2048, 8,
                [](FunctionBuilder &f, const std::vector<RegId> &b) {
                    emitLpc(f, b[0], b[3], 1000);
                    emitQuant(f, b[1], b[4], 900);
                    emitVlc(f, b[4], b[5], 300);
                });
}

void
buildCjpeg2(ProgramBuilder &pb, SimMemory &mem,
            std::vector<std::int64_t> &args)
{
    mediaKernel(pb, mem, args, 5005, 3072, 5,
                [](FunctionBuilder &f, const std::vector<RegId> &b) {
                    emitDct(f, b[0], b[3], 192);
                    emitDct(f, b[3], b[4], 192); // second pass
                    emitQuant(f, b[1], b[5], 1024);
                    emitVlc(f, b[5], b[4], 640);
                });
}

void
buildDjpeg2(ProgramBuilder &pb, SimMemory &mem,
            std::vector<std::int64_t> &args)
{
    mediaKernel(pb, mem, args, 5006, 3072, 5,
                [](FunctionBuilder &f, const std::vector<RegId> &b) {
                    emitVlc(f, b[1], b[5], 500);
                    emitDct(f, b[0], b[3], 160);
                    emitInterp(f, b[3], b[4], 1500);
                    emitInterp(f, b[4], b[5], 1500);
                });
}

void
buildH263enc(ProgramBuilder &pb, SimMemory &mem,
             std::vector<std::int64_t> &args)
{
    mediaKernel(pb, mem, args, 5007, 4096, 4,
                [](FunctionBuilder &f, const std::vector<RegId> &b) {
                    emitSad(f, b[1], b[2], b[4], 200);
                    emitDct(f, b[0], b[3], 128);
                    emitQuant(f, b[4], b[5], 600);
                    emitVlc(f, b[5], b[4], 320);
                });
}

void
buildH264dec(ProgramBuilder &pb, SimMemory &mem,
             std::vector<std::int64_t> &args)
{
    mediaKernel(pb, mem, args, 5008, 4096, 4,
                [](FunctionBuilder &f, const std::vector<RegId> &b) {
                    emitVlc(f, b[1], b[5], 700);  // CABAC-ish
                    emitInterp(f, b[0], b[3], 1600); // MC filter
                    emitDct(f, b[3], b[4], 96);   // inverse xform
                });
}

void
buildJpg2000dec(ProgramBuilder &pb, SimMemory &mem,
                std::vector<std::int64_t> &args)
{
    mediaKernel(pb, mem, args, 5009, 4096, 4,
                [](FunctionBuilder &f, const std::vector<RegId> &b) {
                    emitVlc(f, b[1], b[5], 400);
                    // Wavelet lifting ~ interp passes.
                    emitInterp(f, b[0], b[3], 1800);
                    emitInterp(f, b[3], b[4], 1800);
                });
}

void
buildJpg2000enc(ProgramBuilder &pb, SimMemory &mem,
                std::vector<std::int64_t> &args)
{
    mediaKernel(pb, mem, args, 5010, 4096, 4,
                [](FunctionBuilder &f, const std::vector<RegId> &b) {
                    emitInterp(f, b[0], b[3], 1800);
                    emitInterp(f, b[3], b[4], 1800);
                    emitQuant(f, b[1], b[5], 1000);
                    emitVlc(f, b[5], b[4], 500);
                });
}

void
buildMpeg2dec(ProgramBuilder &pb, SimMemory &mem,
              std::vector<std::int64_t> &args)
{
    mediaKernel(pb, mem, args, 5011, 4096, 4,
                [](FunctionBuilder &f, const std::vector<RegId> &b) {
                    emitVlc(f, b[1], b[5], 350);
                    emitDct(f, b[0], b[3], 144);
                    emitInterp(f, b[3], b[4], 1200);
                });
}

void
buildMpeg2enc(ProgramBuilder &pb, SimMemory &mem,
              std::vector<std::int64_t> &args)
{
    mediaKernel(pb, mem, args, 5012, 4096, 4,
                [](FunctionBuilder &f, const std::vector<RegId> &b) {
                    emitSad(f, b[1], b[2], b[4], 260);
                    emitDct(f, b[0], b[3], 144);
                    emitQuant(f, b[4], b[5], 800);
                    emitVlc(f, b[5], b[4], 400);
                });
}

const std::vector<WorkloadSpec> kMediabench = {
    {"cjpeg-1", "Mediabench", SuiteClass::SemiRegular, buildCjpeg,
     400'000},
    {"djpeg-1", "Mediabench", SuiteClass::SemiRegular, buildDjpeg,
     400'000},
    {"gsmdecode", "Mediabench", SuiteClass::SemiRegular,
     buildGsmdecode, 350'000},
    {"gsmencode", "Mediabench", SuiteClass::SemiRegular,
     buildGsmencode, 350'000},
    {"cjpeg-2", "Mediabench", SuiteClass::SemiRegular, buildCjpeg2,
     400'000},
    {"djpeg-2", "Mediabench", SuiteClass::SemiRegular, buildDjpeg2,
     400'000},
    {"h263enc", "Mediabench", SuiteClass::SemiRegular, buildH263enc,
     400'000},
    {"h264dec", "Mediabench", SuiteClass::SemiRegular, buildH264dec,
     400'000},
    {"jpg2000dec", "Mediabench", SuiteClass::SemiRegular,
     buildJpg2000dec, 400'000},
    {"jpg2000enc", "Mediabench", SuiteClass::SemiRegular,
     buildJpg2000enc, 400'000},
    {"mpeg2dec", "Mediabench", SuiteClass::SemiRegular,
     buildMpeg2dec, 400'000},
    {"mpeg2enc", "Mediabench", SuiteClass::SemiRegular,
     buildMpeg2enc, 400'000},
};

} // namespace

std::span<const WorkloadSpec>
mediabenchWorkloads()
{
    return kMediabench;
}

} // namespace prism
