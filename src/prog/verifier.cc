#include "prog/verifier.hh"

#include <sstream>

#include "common/logging.hh"

namespace prism
{

namespace
{

void
checkInstr(const Program &p, const Function &fn, const BasicBlock &bb,
           std::size_t idx, const Instr &in,
           std::vector<std::string> &errs)
{
    const OpInfo &oi = opInfo(in.op);
    auto err = [&](const std::string &msg) {
        std::ostringstream os;
        os << fn.name << "/bb" << bb.id << "[" << idx
           << "] (" << opName(in.op) << "): " << msg;
        errs.push_back(os.str());
    };

    if (oi.isSynthetic)
        err("synthetic opcode in guest program");

    if (oi.writesDst && in.dst == kNoReg)
        err("missing destination register");
    if (!oi.writesDst && !oi.isCall && in.dst != kNoReg)
        err("unexpected destination register");

    auto check_reg = [&](RegId r) {
        if (r != kNoReg && r >= fn.numRegs)
            err("register out of range");
    };
    check_reg(in.dst);
    for (RegId s : in.src)
        check_reg(s);

    if (oi.isLoad || oi.isStore) {
        if (in.memSize != 1 && in.memSize != 2 && in.memSize != 4 &&
            in.memSize != 8) {
            err("bad memory access size");
        }
        if (in.src[0] == kNoReg)
            err("memory op missing base register");
        if (oi.isStore && in.src[1] == kNoReg)
            err("store missing value register");
    }

    if (oi.isCall) {
        if (in.target < 0 ||
            in.target >= static_cast<std::int32_t>(p.functions().size())) {
            err("call target out of range");
        } else {
            const Function &callee = p.functions()[in.target];
            int given = 0;
            for (RegId s : in.src) {
                if (s != kNoReg)
                    ++given;
            }
            if (given != callee.numArgs)
                err("call argument count mismatches callee");
        }
    } else if (oi.isBranch && !oi.isRet) {
        if (in.target < 0 ||
            in.target >= static_cast<std::int32_t>(fn.blocks.size())) {
            err("branch target out of range");
        }
    }

    if (in.op == Opcode::Br && in.src[0] == kNoReg)
        err("conditional branch missing condition register");
}

} // namespace

std::vector<std::string>
check(const Program &p)
{
    std::vector<std::string> errs;
    prism_assert(p.finalized(), "verify requires a finalized program");

    for (const Function &fn : p.functions()) {
        for (const BasicBlock &bb : fn.blocks) {
            if (bb.instrs.empty()) {
                errs.push_back(fn.name + ": empty block");
                continue;
            }
            // Terminators must be last and unique.
            for (std::size_t i = 0; i < bb.instrs.size(); ++i) {
                const OpInfo &oi = opInfo(bb.instrs[i].op);
                const bool is_term = oi.isBranch && !oi.isCall;
                if (is_term && i + 1 != bb.instrs.size()) {
                    errs.push_back(fn.name + ": terminator not at end of bb"
                                   + std::to_string(bb.id));
                }
                checkInstr(p, fn, bb, i, bb.instrs[i], errs);
            }
            const Instr *term = bb.terminator();
            if (term == nullptr) {
                errs.push_back(fn.name + ": bb" + std::to_string(bb.id) +
                               " lacks a terminator");
            } else if (term->op == Opcode::Br) {
                if (bb.fallthrough < 0 ||
                    bb.fallthrough >=
                        static_cast<std::int32_t>(fn.blocks.size())) {
                    errs.push_back(fn.name + ": bb" +
                                   std::to_string(bb.id) +
                                   " conditional branch without valid "
                                   "fallthrough");
                }
            }
        }
    }
    return errs;
}

void
verify(const Program &p)
{
    const auto errs = check(p);
    if (!errs.empty())
        panic("program verification failed: %s", errs.front().c_str());
}

} // namespace prism
