#include "prog/verifier.hh"

#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace prism
{

std::string
toString(const Diag &d, const Program *p)
{
    std::ostringstream os;
    os << (d.isError() ? "error" : "warning") << "[" << d.check << "]";
    if (d.func >= 0) {
        os << " ";
        if (p != nullptr &&
            d.func < static_cast<std::int32_t>(p->functions().size())) {
            os << p->functions()[d.func].name;
        } else {
            os << "fn" << d.func;
        }
        if (d.block >= 0) {
            os << "/bb" << d.block;
            if (d.instr >= 0)
                os << "[" << d.instr << "]";
        }
    }
    if (d.loop >= 0)
        os << " loop " << d.loop;
    if (d.streamIdx >= 0)
        os << " @" << d.streamIdx;
    os << ": " << d.message;
    return os.str();
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
toJson(const Diag &d, const Program *p)
{
    std::ostringstream os;
    os << "{\"severity\":\""
       << (d.isError() ? "error" : "warning") << "\",\"check\":\""
       << jsonEscape(d.check) << "\"";
    if (d.func >= 0) {
        os << ",\"func\":" << d.func;
        if (p != nullptr &&
            d.func < static_cast<std::int32_t>(p->functions().size())) {
            os << ",\"func_name\":\""
               << jsonEscape(p->functions()[d.func].name) << "\"";
        }
    }
    if (d.block >= 0)
        os << ",\"block\":" << d.block;
    if (d.instr >= 0)
        os << ",\"instr\":" << d.instr;
    if (d.loop >= 0)
        os << ",\"loop\":" << d.loop;
    if (d.streamIdx >= 0)
        os << ",\"stream_idx\":" << d.streamIdx;
    os << ",\"message\":\"" << jsonEscape(d.message) << "\"}";
    return os.str();
}

bool
hasErrors(const std::vector<Diag> &diags)
{
    for (const Diag &d : diags) {
        if (d.isError())
            return true;
    }
    return false;
}

std::size_t
numErrors(const std::vector<Diag> &diags)
{
    std::size_t n = 0;
    for (const Diag &d : diags)
        n += d.isError() ? 1 : 0;
    return n;
}

namespace
{

/** Diagnostic factory bound to one structural position. */
struct DiagSink
{
    std::vector<Diag> *out;
    std::int32_t func = -1;
    std::int32_t block = -1;
    std::int32_t instr = -1;

    void
    operator()(const char *check, const std::string &msg) const
    {
        Diag d;
        d.check = check;
        d.func = func;
        d.block = block;
        d.instr = instr;
        d.message = msg;
        out->push_back(std::move(d));
    }
};

void
checkInstr(const Program &p, const Function &fn, const BasicBlock &bb,
           std::size_t idx, const Instr &in, std::vector<Diag> &errs)
{
    const OpInfo &oi = opInfo(in.op);
    const DiagSink err{&errs, fn.id, bb.id,
                       static_cast<std::int32_t>(idx)};
    const std::string op(opName(in.op));

    if (oi.isSynthetic)
        err("synthetic-op", "synthetic opcode " + op +
                                " in guest program");

    if (oi.writesDst && in.dst == kNoReg)
        err("operand-shape", op + " missing destination register");
    if (!oi.writesDst && !oi.isCall && in.dst != kNoReg)
        err("operand-shape", op + " has unexpected destination register");

    auto check_reg = [&](RegId r) {
        if (r != kNoReg && r >= fn.numRegs) {
            err("reg-range", "register r" + std::to_string(r) +
                                 " outside the function's " +
                                 std::to_string(fn.numRegs) +
                                 "-register space");
        }
    };
    check_reg(in.dst);
    for (RegId s : in.src)
        check_reg(s);

    if (oi.isLoad || oi.isStore) {
        if (in.memSize != 1 && in.memSize != 2 && in.memSize != 4 &&
            in.memSize != 8) {
            err("operand-shape", "bad memory access size " +
                                     std::to_string(in.memSize));
        }
        if (in.src[0] == kNoReg)
            err("operand-shape", op + " missing base register");
        if (oi.isStore && in.src[1] == kNoReg)
            err("operand-shape", "store missing value register");
    }

    if (oi.isCall) {
        if (in.target < 0 ||
            in.target >= static_cast<std::int32_t>(p.functions().size())) {
            err("target-range", "call target " +
                                    std::to_string(in.target) +
                                    " is not a function");
        } else {
            const Function &callee = p.functions()[in.target];
            int given = 0;
            for (RegId s : in.src) {
                if (s != kNoReg)
                    ++given;
            }
            if (given != callee.numArgs) {
                err("call-args", "call passes " + std::to_string(given) +
                                     " arguments; " + callee.name +
                                     " declares " +
                                     std::to_string(callee.numArgs));
            }
        }
    } else if (oi.isBranch && !oi.isRet) {
        if (in.target < 0 ||
            in.target >= static_cast<std::int32_t>(fn.blocks.size())) {
            err("target-range", "branch target " +
                                    std::to_string(in.target) +
                                    " is not a block");
        }
    }

    if (in.op == Opcode::Br && in.src[0] == kNoReg)
        err("operand-shape", "conditional branch missing condition "
                             "register");
}

} // namespace

std::vector<Diag>
check(const Program &p)
{
    std::vector<Diag> errs;
    prism_assert(p.finalized(), "verify requires a finalized program");

    for (const Function &fn : p.functions()) {
        for (const BasicBlock &bb : fn.blocks) {
            const DiagSink berr{&errs, fn.id, bb.id, -1};
            if (bb.instrs.empty()) {
                berr("empty-block", "block has no instructions");
                continue;
            }
            // Terminators must be last and unique.
            for (std::size_t i = 0; i < bb.instrs.size(); ++i) {
                const OpInfo &oi = opInfo(bb.instrs[i].op);
                const bool is_term = oi.isBranch && !oi.isCall;
                if (is_term && i + 1 != bb.instrs.size()) {
                    DiagSink terr{&errs, fn.id, bb.id,
                                  static_cast<std::int32_t>(i)};
                    terr("terminator", "terminator not at end of block");
                }
                checkInstr(p, fn, bb, i, bb.instrs[i], errs);
            }
            const Instr *term = bb.terminator();
            if (term == nullptr) {
                berr("terminator", "block lacks a terminator");
            } else if (term->op == Opcode::Br) {
                if (bb.fallthrough < 0 ||
                    bb.fallthrough >=
                        static_cast<std::int32_t>(fn.blocks.size())) {
                    berr("target-range",
                         "conditional branch without valid fallthrough");
                }
            }
        }
    }
    return errs;
}

void
verify(const Program &p)
{
    const auto errs = check(p);
    if (!errs.empty()) {
        panic("program verification failed: %s",
              toString(errs.front(), &p).c_str());
    }
}

} // namespace prism
