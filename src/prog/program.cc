#include "prog/program.hh"

#include <sstream>

#include "common/logging.hh"

namespace prism
{

int
Instr::numSrcRegs() const
{
    int n = 0;
    for (RegId r : src) {
        if (r != kNoReg)
            ++n;
    }
    return n;
}

const Instr *
BasicBlock::terminator() const
{
    if (instrs.empty())
        return nullptr;
    const Instr &last = instrs.back();
    return opInfo(last.op).isBranch && !opInfo(last.op).isCall ? &last
                                                               : nullptr;
}

std::size_t
Function::numInstrs() const
{
    std::size_t n = 0;
    for (const auto &bb : blocks)
        n += bb.instrs.size();
    return n;
}

std::int32_t
Program::addFunction(Function f)
{
    prism_assert(!finalized_, "program already finalized");
    const auto id = static_cast<std::int32_t>(functions_.size());
    f.id = id;
    functions_.push_back(std::move(f));
    return id;
}

void
Program::finalize()
{
    prism_assert(!finalized_, "program already finalized");
    prism_assert(!functions_.empty(), "program has no functions");

    flat_.clear();
    funcBlockStart_.clear();
    funcBlockStart_.resize(functions_.size());

    StaticId sid = 0;
    for (std::size_t fi = 0; fi < functions_.size(); ++fi) {
        Function &fn = functions_[fi];
        prism_assert(!fn.blocks.empty(), "function '%s' has no blocks",
                     fn.name.c_str());
        funcBlockStart_[fi].reserve(fn.blocks.size());
        for (std::size_t bi = 0; bi < fn.blocks.size(); ++bi) {
            BasicBlock &bb = fn.blocks[bi];
            bb.id = static_cast<std::int32_t>(bi);
            funcBlockStart_[fi].push_back(sid);
            prism_assert(!bb.instrs.empty(),
                         "empty block %zu in '%s'", bi, fn.name.c_str());
            for (std::size_t ii = 0; ii < bb.instrs.size(); ++ii) {
                bb.instrs[ii].sid = sid;
                flat_.push_back(InstrRef{
                    static_cast<std::int32_t>(fi),
                    static_cast<std::int32_t>(bi),
                    static_cast<std::int32_t>(ii)});
                ++sid;
            }
        }
    }
    finalized_ = true;
}

std::int32_t
Program::entryFunction() const
{
    for (std::size_t i = 0; i < functions_.size(); ++i) {
        if (functions_[i].name == "main")
            return static_cast<std::int32_t>(i);
    }
    return 0;
}

const Instr &
Program::instr(StaticId sid) const
{
    const InstrRef &ref = flat_.at(sid);
    return functions_[ref.func].blocks[ref.block].instrs[ref.index];
}

StaticId
Program::blockStart(std::int32_t func, std::int32_t block) const
{
    return funcBlockStart_.at(func).at(block);
}

StaticId
Program::funcStart(std::int32_t func) const
{
    return funcBlockStart_.at(func).at(0);
}

std::string
Program::disassemble(const Instr &in) const
{
    std::ostringstream os;
    os << opName(in.op);
    if (in.dst != kNoReg)
        os << " r" << in.dst;
    for (RegId s : in.src) {
        if (s != kNoReg)
            os << " r" << s;
    }
    const OpInfo &oi = opInfo(in.op);
    if (in.op == Opcode::Movi || oi.isLoad || oi.isStore) {
        os << " #" << in.imm;
    }
    if (oi.isCall) {
        os << " @" << functions_.at(in.target).name;
    } else if (oi.isBranch && !oi.isRet && in.target >= 0) {
        os << " ->bb" << in.target;
    }
    if (in.isSpill)
        os << " ;spill";
    return os.str();
}

std::string
Program::disassemble() const
{
    std::ostringstream os;
    for (const Function &fn : functions_) {
        os << fn.name << ": (" << static_cast<int>(fn.numArgs)
           << " args, " << fn.numRegs << " regs)\n";
        for (const BasicBlock &bb : fn.blocks) {
            os << "  bb" << bb.id;
            if (bb.fallthrough >= 0)
                os << " (ft->bb" << bb.fallthrough << ")";
            os << ":\n";
            for (const Instr &in : bb.instrs) {
                os << "    ";
                if (in.sid != kNoStatic)
                    os << "[" << in.sid << "] ";
                os << disassemble(in) << "\n";
            }
        }
    }
    return os.str();
}

} // namespace prism
