#include "prog/builder.hh"

#include <bit>

#include "common/logging.hh"
#include "prog/verifier.hh"

namespace prism
{

FunctionBuilder::FunctionBuilder(ProgramBuilder *owner, std::int32_t id,
                                 std::string name, std::uint8_t num_args)
    : owner_(owner), id_(id)
{
    (void)owner_;
    fn_.name = std::move(name);
    fn_.numArgs = num_args;
    fn_.numRegs = num_args;
    newBlock();
    setBlock(0);
}

RegId
FunctionBuilder::arg(int i) const
{
    prism_assert(i >= 0 && i < fn_.numArgs, "argument index out of range");
    return static_cast<RegId>(i);
}

RegId
FunctionBuilder::reg()
{
    return fn_.numRegs++;
}

std::int32_t
FunctionBuilder::newBlock()
{
    fn_.blocks.emplace_back();
    return static_cast<std::int32_t>(fn_.blocks.size()) - 1;
}

void
FunctionBuilder::setBlock(std::int32_t b)
{
    prism_assert(b >= 0 &&
                 b < static_cast<std::int32_t>(fn_.blocks.size()),
                 "no such block");
    cur_ = b;
}

BasicBlock &
FunctionBuilder::curBlock()
{
    prism_assert(cur_ >= 0, "no current block");
    BasicBlock &bb = fn_.blocks[cur_];
    prism_assert(bb.terminator() == nullptr,
                 "emitting into terminated block %d", cur_);
    return bb;
}

RegId
FunctionBuilder::emitDst(Opcode op, RegId a, RegId b, RegId c,
                         std::int64_t imm)
{
    const RegId d = reg();
    emitTo(op, d, a, b, c, imm);
    return d;
}

void
FunctionBuilder::emitTo(Opcode op, RegId d, RegId a, RegId b, RegId c,
                        std::int64_t imm)
{
    Instr in;
    in.op = op;
    in.dst = d;
    in.src = {a, b, c};
    in.imm = imm;
    curBlock().instrs.push_back(in);
}

void
FunctionBuilder::emit(Instr in)
{
    curBlock().instrs.push_back(in);
}

// ---- integer ----

RegId
FunctionBuilder::movi(std::int64_t imm)
{
    return emitDst(Opcode::Movi, kNoReg, kNoReg, kNoReg, imm);
}

RegId FunctionBuilder::mov(RegId a) { return emitDst(Opcode::Mov, a); }
RegId FunctionBuilder::add(RegId a, RegId b)
{ return emitDst(Opcode::Add, a, b); }

RegId
FunctionBuilder::addi(RegId a, std::int64_t imm)
{
    return add(a, movi(imm));
}

RegId FunctionBuilder::sub(RegId a, RegId b)
{ return emitDst(Opcode::Sub, a, b); }
RegId FunctionBuilder::and_(RegId a, RegId b)
{ return emitDst(Opcode::And, a, b); }
RegId FunctionBuilder::or_(RegId a, RegId b)
{ return emitDst(Opcode::Or, a, b); }
RegId FunctionBuilder::xor_(RegId a, RegId b)
{ return emitDst(Opcode::Xor, a, b); }
RegId FunctionBuilder::shl(RegId a, RegId b)
{ return emitDst(Opcode::Shl, a, b); }
RegId FunctionBuilder::shr(RegId a, RegId b)
{ return emitDst(Opcode::Shr, a, b); }
RegId FunctionBuilder::mul(RegId a, RegId b)
{ return emitDst(Opcode::Mul, a, b); }
RegId FunctionBuilder::div(RegId a, RegId b)
{ return emitDst(Opcode::Div, a, b); }
RegId FunctionBuilder::rem(RegId a, RegId b)
{ return emitDst(Opcode::Rem, a, b); }
RegId FunctionBuilder::cmpeq(RegId a, RegId b)
{ return emitDst(Opcode::CmpEq, a, b); }
RegId FunctionBuilder::cmplt(RegId a, RegId b)
{ return emitDst(Opcode::CmpLt, a, b); }
RegId FunctionBuilder::cmple(RegId a, RegId b)
{ return emitDst(Opcode::CmpLe, a, b); }
RegId FunctionBuilder::sel(RegId c, RegId a, RegId b)
{ return emitDst(Opcode::Sel, c, a, b); }

// ---- floating point ----

RegId
FunctionBuilder::fmovi(double v)
{
    return emitDst(Opcode::Movi, kNoReg, kNoReg, kNoReg,
                   std::bit_cast<std::int64_t>(v));
}

RegId FunctionBuilder::fadd(RegId a, RegId b)
{ return emitDst(Opcode::Fadd, a, b); }
RegId FunctionBuilder::fsub(RegId a, RegId b)
{ return emitDst(Opcode::Fsub, a, b); }
RegId FunctionBuilder::fmul(RegId a, RegId b)
{ return emitDst(Opcode::Fmul, a, b); }
RegId FunctionBuilder::fdiv(RegId a, RegId b)
{ return emitDst(Opcode::Fdiv, a, b); }
RegId FunctionBuilder::fsqrt(RegId a)
{ return emitDst(Opcode::Fsqrt, a); }
RegId FunctionBuilder::fma(RegId a, RegId b, RegId acc)
{ return emitDst(Opcode::Fma, a, b, acc); }
RegId FunctionBuilder::fcmplt(RegId a, RegId b)
{ return emitDst(Opcode::FcmpLt, a, b); }
RegId FunctionBuilder::fcmpeq(RegId a, RegId b)
{ return emitDst(Opcode::FcmpEq, a, b); }
RegId FunctionBuilder::cvtif(RegId a)
{ return emitDst(Opcode::CvtIF, a); }
RegId FunctionBuilder::cvtfi(RegId a)
{ return emitDst(Opcode::CvtFI, a); }

// ---- in-place ----

void
FunctionBuilder::moviTo(RegId d, std::int64_t imm)
{
    emitTo(Opcode::Movi, d, kNoReg, kNoReg, kNoReg, imm);
}

void
FunctionBuilder::fmoviTo(RegId d, double v)
{
    emitTo(Opcode::Movi, d, kNoReg, kNoReg, kNoReg,
           std::bit_cast<std::int64_t>(v));
}

void FunctionBuilder::movTo(RegId d, RegId a)
{ emitTo(Opcode::Mov, d, a); }
void FunctionBuilder::addTo(RegId d, RegId a, RegId b)
{ emitTo(Opcode::Add, d, a, b); }
void FunctionBuilder::subTo(RegId d, RegId a, RegId b)
{ emitTo(Opcode::Sub, d, a, b); }
void FunctionBuilder::mulTo(RegId d, RegId a, RegId b)
{ emitTo(Opcode::Mul, d, a, b); }
void FunctionBuilder::faddTo(RegId d, RegId a, RegId b)
{ emitTo(Opcode::Fadd, d, a, b); }
void FunctionBuilder::fmulTo(RegId d, RegId a, RegId b)
{ emitTo(Opcode::Fmul, d, a, b); }
void FunctionBuilder::selTo(RegId d, RegId c, RegId a, RegId b)
{ emitTo(Opcode::Sel, d, c, a, b); }

// ---- memory ----

RegId
FunctionBuilder::ld(RegId base, std::int64_t off, std::uint8_t size,
                    bool spill)
{
    const RegId d = reg();
    Instr in;
    in.op = Opcode::Ld;
    in.dst = d;
    in.src = {base, kNoReg, kNoReg};
    in.imm = off;
    in.memSize = size;
    in.isSpill = spill;
    curBlock().instrs.push_back(in);
    return d;
}

void
FunctionBuilder::st(RegId base, std::int64_t off, RegId val,
                    std::uint8_t size, bool spill)
{
    Instr in;
    in.op = Opcode::St;
    in.src = {base, val, kNoReg};
    in.imm = off;
    in.memSize = size;
    in.isSpill = spill;
    curBlock().instrs.push_back(in);
}

// ---- control ----

void
FunctionBuilder::br(RegId cond, std::int32_t taken, std::int32_t ft)
{
    Instr in;
    in.op = Opcode::Br;
    in.src = {cond, kNoReg, kNoReg};
    in.target = taken;
    BasicBlock &bb = curBlock();
    bb.instrs.push_back(in);
    bb.fallthrough = ft;
}

void
FunctionBuilder::jmp(std::int32_t target)
{
    Instr in;
    in.op = Opcode::Jmp;
    in.target = target;
    curBlock().instrs.push_back(in);
}

void
FunctionBuilder::ret(RegId v)
{
    Instr in;
    in.op = Opcode::Ret;
    in.src = {v, kNoReg, kNoReg};
    curBlock().instrs.push_back(in);
}

void
FunctionBuilder::retVoid()
{
    Instr in;
    in.op = Opcode::Ret;
    curBlock().instrs.push_back(in);
}

RegId
FunctionBuilder::call(std::int32_t callee, const std::vector<RegId> &args)
{
    prism_assert(args.size() <= 3, "call supports at most 3 arguments");
    Instr in;
    in.op = Opcode::Call;
    in.dst = reg();
    for (std::size_t i = 0; i < args.size(); ++i)
        in.src[i] = args[i];
    in.target = callee;
    curBlock().instrs.push_back(in);
    return in.dst;
}

// ---- ProgramBuilder ----

FunctionBuilder &
ProgramBuilder::func(const std::string &name, std::uint8_t num_args)
{
    const auto id = static_cast<std::int32_t>(funcs_.size());
    funcs_.push_back(FunctionBuilder(this, id, name, num_args));
    return funcs_.back();
}

Program
ProgramBuilder::build()
{
    Program p;
    for (auto &fb : funcs_)
        p.addFunction(std::move(fb.fn_));
    funcs_.clear();
    p.finalize();
    verify(p);
    return p;
}

} // namespace prism
