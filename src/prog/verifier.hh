/**
 * @file
 * Structural verification of guest programs. Catches malformed
 * workloads at build time instead of as mysterious trace artifacts.
 */

#ifndef PRISM_PROG_VERIFIER_HH
#define PRISM_PROG_VERIFIER_HH

#include <string>
#include <vector>

#include "prog/program.hh"

namespace prism
{

/**
 * Check structural invariants of a finalized program and return the
 * list of violations (empty = valid):
 *  - every block ends in exactly one terminator, at the end;
 *  - branch/jump/fallthrough targets are in-range blocks;
 *  - call targets are in-range functions;
 *  - register ids are within the function's register space;
 *  - instruction operand shapes match their opcode (dst presence,
 *    memory size sanity);
 *  - no synthetic (transform-only) opcodes appear.
 */
std::vector<std::string> check(const Program &p);

/** Run check() and panic with the first violation, if any. */
void verify(const Program &p);

} // namespace prism

#endif // PRISM_PROG_VERIFIER_HH
