/**
 * @file
 * Structural verification of guest programs, and the structured
 * diagnostic record shared by every static-analysis layer (the
 * structural verifier here, the dataflow analyzer and TDG legality
 * verifier in src/analysis). Catches malformed workloads at build
 * time instead of as mysterious trace artifacts.
 */

#ifndef PRISM_PROG_VERIFIER_HH
#define PRISM_PROG_VERIFIER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "prog/program.hh"

namespace prism
{

/**
 * One static-analysis finding, locating the offending construct by
 * structural indices rather than prose. Every producer fills the
 * indices it knows and leaves the rest at -1:
 *
 *  - program checks: func / block / instr (index within the block);
 *  - TDG legality checks: loop (global loop id), plus func when the
 *    loop's function is known;
 *  - stream checks: streamIdx (MInst position within the stream).
 */
struct Diag
{
    enum class Severity : std::uint8_t { Error, Warning };

    Severity severity = Severity::Error;
    std::string check;            ///< short check slug ("def-before-use")
    std::int32_t func = -1;
    std::int32_t block = -1;
    std::int32_t instr = -1;      ///< instruction index within block
    std::int32_t loop = -1;       ///< global loop id (TDG checks)
    std::int64_t streamIdx = -1;  ///< MInst index (stream checks)
    std::string message;

    bool isError() const { return severity == Severity::Error; }
};

/** Render a diagnostic; `p` (optional) resolves function names. */
std::string toString(const Diag &d, const Program *p = nullptr);

/** JSON string escaping (quotes, backslash, control characters). */
std::string jsonEscape(const std::string &s);

/**
 * Render a diagnostic as one self-contained JSON object (machine
 * consumption: `prism_lint --json`). Always emits `severity`,
 * `check`, and `message`; structural coordinates (`func`, `block`,
 * `instr`, `loop`, `stream_idx`) appear only when known (>= 0), and
 * `func_name` when `p` can resolve the function index.
 */
std::string toJson(const Diag &d, const Program *p = nullptr);

/** True if any diagnostic in the list is an error. */
bool hasErrors(const std::vector<Diag> &diags);

/** Count of error-severity diagnostics. */
std::size_t numErrors(const std::vector<Diag> &diags);

/**
 * Check structural invariants of a finalized program and return the
 * violations (empty = valid):
 *  - every block ends in exactly one terminator, at the end;
 *  - branch/jump/fallthrough targets are in-range blocks;
 *  - call targets are in-range functions;
 *  - register ids are within the function's register space;
 *  - instruction operand shapes match their opcode (dst presence,
 *    memory size sanity);
 *  - no synthetic (transform-only) opcodes appear.
 */
std::vector<Diag> check(const Program &p);

/** Run check() and panic with the first violation, if any. */
void verify(const Program &p);

} // namespace prism

#endif // PRISM_PROG_VERIFIER_HH
