/**
 * @file
 * Guest program representation: Program / Function / BasicBlock / Instr.
 *
 * A Program is Prism's stand-in for the paper's compiled benchmark
 * binary. Workload kernels construct Programs through ProgramBuilder;
 * the functional simulator executes them; the IR module *reconstructs*
 * a CFG/DFG from the flattened ("binary") view, exactly as the paper
 * reconstructs its Program IR from the binary plus the trace.
 */

#ifndef PRISM_PROG_PROGRAM_HH
#define PRISM_PROG_PROGRAM_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/isa.hh"

namespace prism
{

/** One static instruction. */
struct Instr
{
    Opcode op = Opcode::Nop;
    RegId dst = kNoReg;
    std::array<RegId, 3> src = {kNoReg, kNoReg, kNoReg};
    std::int64_t imm = 0;

    /**
     * Control target: successor block index (same function) for Br/Jmp,
     * callee function index for Call; unused otherwise.
     */
    std::int32_t target = -1;

    std::uint8_t memSize = 8;  ///< access size in bytes for Ld/St
    bool isSpill = false;      ///< builder-marked register spill (2.7)

    /** Global static id; assigned by Program::finalize(). */
    StaticId sid = kNoStatic;

    /** Number of register sources actually used. */
    int numSrcRegs() const;
};

/**
 * A basic block: straight-line instructions ending in an (optional)
 * terminator. `fallthrough` is the successor taken when the terminator
 * is a not-taken conditional branch, or when there is no terminator.
 */
struct BasicBlock
{
    std::vector<Instr> instrs;
    std::int32_t fallthrough = -1; ///< block index, -1 = none (Ret/Jmp)
    std::int32_t id = -1;

    /** The terminator instruction, or nullptr if none. */
    const Instr *terminator() const;
};

/** A guest function with its own virtual register space. */
struct Function
{
    std::string name;
    std::vector<BasicBlock> blocks;
    RegId numRegs = 0;     ///< virtual registers used (args occupy 0..n-1)
    std::uint8_t numArgs = 0;
    std::int32_t id = -1;

    /** Total static instruction count. */
    std::size_t numInstrs() const;
};

/** Locates a static instruction inside the program structure. */
struct InstrRef
{
    std::int32_t func = -1;
    std::int32_t block = -1;
    std::int32_t index = -1; ///< within block
};

/**
 * A whole guest program. After finalize(), every instruction carries a
 * global StaticId and the program exposes a flattened, binary-like view
 * used by trace generation and IR reconstruction.
 */
class Program
{
  public:
    /** Append a function; returns its index. */
    std::int32_t addFunction(Function f);

    /**
     * Assign StaticIds in (function, block, instruction) order, build
     * the flat index, and sanity-check structural invariants. Must be
     * called once, after which the program is immutable.
     */
    void finalize();

    bool finalized() const { return finalized_; }

    const std::vector<Function> &functions() const { return functions_; }
    Function &function(std::int32_t i) { return functions_.at(i); }
    const Function &function(std::int32_t i) const
    {
        return functions_.at(i);
    }

    /** Index of the entry function ("main" by convention, else 0). */
    std::int32_t entryFunction() const;

    /** Total static instructions across all functions. */
    std::size_t numInstrs() const { return flat_.size(); }

    /** Structural location of a static instruction. */
    const InstrRef &locate(StaticId sid) const { return flat_.at(sid); }

    /** The instruction with the given global id. */
    const Instr &instr(StaticId sid) const;

    /** First StaticId of a block. */
    StaticId blockStart(std::int32_t func, std::int32_t block) const;

    /** First StaticId of a function. */
    StaticId funcStart(std::int32_t func) const;

    /** Function containing the given instruction. */
    std::int32_t funcOf(StaticId sid) const { return locate(sid).func; }

    /** Block index (within its function) containing the instruction. */
    std::int32_t blockOf(StaticId sid) const { return locate(sid).block; }

    /** Human-readable disassembly of the whole program. */
    std::string disassemble() const;

    /** Disassemble one instruction. */
    std::string disassemble(const Instr &in) const;

  private:
    std::vector<Function> functions_;
    std::vector<InstrRef> flat_;
    std::vector<std::vector<StaticId>> funcBlockStart_;
    bool finalized_ = false;
};

} // namespace prism

#endif // PRISM_PROG_PROGRAM_HH
