/**
 * @file
 * Fluent construction API for guest programs. Workload kernels are
 * written against FunctionBuilder; it takes the place of the compiler
 * front-end in the paper's toolchain.
 *
 * Conventions:
 *  - every basic block must end in an explicit terminator
 *    (br / jmp / ret); br names both the taken and fallthrough blocks;
 *  - value-producing emitters allocate and return a fresh virtual
 *    register; the *To variants write a caller-chosen register (used
 *    for loop-carried values);
 *  - function arguments occupy registers 0..numArgs-1.
 */

#ifndef PRISM_PROG_BUILDER_HH
#define PRISM_PROG_BUILDER_HH

#include <deque>
#include <string>
#include <vector>

#include "prog/program.hh"

namespace prism
{

class ProgramBuilder;

/** Builds one guest function; obtained from ProgramBuilder::func(). */
class FunctionBuilder
{
  public:
    /** Register holding argument i. */
    RegId arg(int i) const;

    /** Allocate a fresh virtual register. */
    RegId reg();

    /** Create a new (empty) basic block; returns its index. */
    std::int32_t newBlock();

    /** Redirect emission to the given block. */
    void setBlock(std::int32_t b);

    /** Block currently being emitted into. */
    std::int32_t currentBlock() const { return cur_; }

    /** Index of this function within the program. */
    std::int32_t id() const { return id_; }

    // ---- integer ----
    RegId movi(std::int64_t imm);
    RegId mov(RegId a);
    RegId add(RegId a, RegId b);
    RegId addi(RegId a, std::int64_t imm); ///< add immediate (movi+add)
    RegId sub(RegId a, RegId b);
    RegId and_(RegId a, RegId b);
    RegId or_(RegId a, RegId b);
    RegId xor_(RegId a, RegId b);
    RegId shl(RegId a, RegId b);
    RegId shr(RegId a, RegId b);
    RegId mul(RegId a, RegId b);
    RegId div(RegId a, RegId b);
    RegId rem(RegId a, RegId b);
    RegId cmpeq(RegId a, RegId b);
    RegId cmplt(RegId a, RegId b);
    RegId cmple(RegId a, RegId b);
    RegId sel(RegId c, RegId a, RegId b); ///< c ? a : b

    // ---- floating point (raw double bits in registers) ----
    RegId fmovi(double v);
    RegId fadd(RegId a, RegId b);
    RegId fsub(RegId a, RegId b);
    RegId fmul(RegId a, RegId b);
    RegId fdiv(RegId a, RegId b);
    RegId fsqrt(RegId a);
    RegId fma(RegId a, RegId b, RegId acc); ///< a*b + acc
    RegId fcmplt(RegId a, RegId b);
    RegId fcmpeq(RegId a, RegId b);
    RegId cvtif(RegId a);
    RegId cvtfi(RegId a);

    // ---- in-place variants for loop-carried registers ----
    void moviTo(RegId d, std::int64_t imm);
    void fmoviTo(RegId d, double v);
    void movTo(RegId d, RegId a);
    void addTo(RegId d, RegId a, RegId b);
    void subTo(RegId d, RegId a, RegId b);
    void mulTo(RegId d, RegId a, RegId b);
    void faddTo(RegId d, RegId a, RegId b);
    void fmulTo(RegId d, RegId a, RegId b);
    void selTo(RegId d, RegId c, RegId a, RegId b);

    // ---- memory ----
    RegId ld(RegId base, std::int64_t off, std::uint8_t size = 8,
             bool spill = false);
    void st(RegId base, std::int64_t off, RegId val,
            std::uint8_t size = 8, bool spill = false);

    // ---- control ----
    /** Conditional terminator: goto taken if cond != 0, else ft. */
    void br(RegId cond, std::int32_t taken, std::int32_t ft);
    /** Unconditional terminator. */
    void jmp(std::int32_t target);
    /** Return with a value. */
    void ret(RegId v);
    /** Return without a value. */
    void retVoid();
    /** Call another function (<=3 args); returns result register. */
    RegId call(std::int32_t callee, const std::vector<RegId> &args);

    /** Raw emission escape hatch. */
    void emit(Instr in);

  private:
    friend class ProgramBuilder;
    FunctionBuilder(ProgramBuilder *owner, std::int32_t id,
                    std::string name, std::uint8_t num_args);

    BasicBlock &curBlock();
    RegId emitDst(Opcode op, RegId a = kNoReg, RegId b = kNoReg,
                  RegId c = kNoReg, std::int64_t imm = 0);
    void emitTo(Opcode op, RegId d, RegId a = kNoReg, RegId b = kNoReg,
                RegId c = kNoReg, std::int64_t imm = 0);

    ProgramBuilder *owner_;
    Function fn_;
    std::int32_t id_;
    std::int32_t cur_ = -1;
};

/** Builds a whole guest program. */
class ProgramBuilder
{
  public:
    /**
     * Create a function; `num_args` arguments arrive in registers
     * 0..num_args-1. An initial block 0 is created and selected.
     */
    FunctionBuilder &func(const std::string &name,
                          std::uint8_t num_args = 0);

    /**
     * Move all functions into a finalized, verified Program.
     * The builder is left empty.
     */
    Program build();

  private:
    std::deque<FunctionBuilder> funcs_;
};

} // namespace prism

#endif // PRISM_PROG_BUILDER_HH
