/**
 * @file
 * Windowed cycle-indexed resource accounting. The paper (Section 2.7)
 * works around the graph representation's difficulty with contention
 * by keeping "a windowed cycle-indexed data structure to record which
 * TDG node holds which resource", granting resources in instruction
 * order. This is that structure.
 */

#ifndef PRISM_UARCH_RESOURCE_TABLE_HH
#define PRISM_UARCH_RESOURCE_TABLE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace prism
{

/**
 * Tracks per-cycle usage of a resource with fixed per-cycle capacity
 * over a sliding window of cycles. acquire() grants the earliest
 * available cycle at or after the requested one, in call order.
 */
class ResourceTable
{
  public:
    /**
     * @param capacity units available per cycle (0 = unlimited)
     * @param window_cycles sliding window size (power of two)
     */
    explicit ResourceTable(unsigned capacity,
                           std::size_t window_cycles = 16384);

    /**
     * Reserve one unit at the earliest cycle >= `earliest` with free
     * capacity, and return that cycle. Requests older than the window
     * base are granted at the window base (approximation consistent
     * with in-order resource granting). Inline: this is called once
     * or twice per instruction by the timing hot loop, and the common
     * case (capacity free at `earliest`, no window slide) is a couple
     * of loads.
     */
    Cycle
    acquire(Cycle earliest)
    {
        if (capacity_ == 0)
            return earliest; // unlimited

        if (earliest < base_)
            earliest = base_;
        else if (earliest >= base_ + window_)
            slideTo(earliest);

        Cycle c = earliest;
        while (used_[c & mask_] >= capacity_) {
            ++c;
            if (c >= base_ + window_)
                slideTo(c);
        }
        ++used_[c & mask_];
        return c;
    }

    /** Reserve `n` units at potentially different cycles; returns the
     *  cycle of the last unit (used for multi-lane vector ops). */
    Cycle acquireMany(Cycle earliest, unsigned n);

    unsigned capacity() const { return capacity_; }

    /** Clear all reservations. */
    void reset();

    /**
     * Re-target the table at a new per-cycle capacity and clear all
     * reservations, reusing the existing window storage (no
     * allocation). Used by TimingScratch between runs.
     */
    void
    reinit(unsigned capacity)
    {
        capacity_ = capacity;
        reset();
    }

  private:
    void slideTo(Cycle cycle);

    unsigned capacity_;
    std::size_t window_;
    std::size_t mask_;
    std::vector<std::uint16_t> used_;
    Cycle base_ = 0; ///< cycle of slot 0's current epoch
};

} // namespace prism

#endif // PRISM_UARCH_RESOURCE_TABLE_HH
