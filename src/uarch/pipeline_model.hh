/**
 * @file
 * The µDG timing model: a streaming longest-path computation over the
 * implicit dependence graph of an MInst stream (see udg.hh).
 *
 * Core-context instructions traverse Fetch/Dispatch/Execute/Complete/
 * Commit nodes with edges for fetch/dispatch/commit width, frontend
 * depth, ROB occupancy, issue-window occupancy, data dependences,
 * store-to-load forwarding, FU and cache-port contention, and branch
 * mispredict redirect — the paper's Figure 4 edge set. Accelerator-
 * context operations traverse Execute/Complete with dataflow issue,
 * operand-window, memory-port and writeback-bus constraints. Region
 * boundaries serialize via MInst::startRegion.
 *
 * The engine is windowed (paper Section 2.4): a run is armed with
 * beginRun(), fed any partition of the stream through runWindow()
 * calls, and closed with finish(). All mutable state lives in a
 * caller-owned TimingScratch whose buffers persist across runs, so
 * the steady-state timing loop allocates nothing, and callers can
 * transform + time one loop occurrence at a time through the
 * scratch's reusable output window. The one-shot run() wrappers are
 * sugar over the same path and produce identical cycles, events, and
 * binding profiles.
 */

#ifndef PRISM_UARCH_PIPELINE_MODEL_HH
#define PRISM_UARCH_PIPELINE_MODEL_HH

#include <vector>

#include "uarch/core_config.hh"
#include "uarch/timing_scratch.hh"
#include "uarch/udg.hh"

namespace prism
{

/** Full machine configuration for a timing run. */
struct PipelineConfig
{
    CoreConfig core = coreConfig(CoreKind::OOO2);
    AccelParams cgra = dpCgraParams();
    AccelParams nsdf = nsdfParams();
    AccelParams tracep = tracepParams();

    /** Latency thresholds classifying a load as L2 / DRAM access. */
    unsigned l1HitLatency = 4;
    unsigned l2HitLatency = 26;
};

/**
 * Machine configuration for a parametric core point: the synthesized
 * CoreConfig plus the core-owned cache latencies; accelerator
 * parameters keep their defaults (the search treats them as separate
 * axes when it varies them).
 */
PipelineConfig pipelineConfigFrom(const CoreParams &p);

/** Output of a timing run. */
struct PipelineResult
{
    Cycle cycles = 0;            ///< total execution time
    EventCounts events;

    /** What bound each instruction's issue (always collected). */
    BindProfile binding;

    /** Per-instruction completion times (if requested). */
    std::vector<Cycle> completeAt;
    /** Per-instruction commit times (if requested). */
    std::vector<Cycle> commitAt;

    /** Instructions per cycle over the stream. */
    double ipc(std::size_t num_insts) const
    {
        return cycles ? static_cast<double>(num_insts) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

/**
 * Runs the longest-path timing computation. Stateless between runs;
 * one instance may be reused (all run state lives in TimingScratch).
 */
class PipelineModel
{
  public:
    explicit PipelineModel(const PipelineConfig &cfg) : cfg_(cfg) {}

    /**
     * Arm `ts` for a fresh run under this configuration: reset the
     * carried frontier, re-target resource tables, and size the
     * history rings. Buffer capacity is retained.
     * @param keep_per_inst retain per-instruction complete/commit
     *        times in the finish() result (needed for region
     *        attribution).
     */
    void beginRun(TimingScratch &ts,
                  bool keep_per_inst = false) const;

    /**
     * Feed instructions s[b..e) to the run in `ts`.
     *
     * Positioning contract: s[i] occupies global position
     * `ts.pos - b + i`, i.e. the window continues exactly where the
     * previous one left off. Two shapes satisfy it:
     *  - a persistent stream fed in consecutive chunks
     *    (`runWindow(ts, s, prev, next, ...)` with ts.pos == prev);
     *  - per-window buffers fed whole (`b == 0`), where ts.pos is
     *    the global position of the buffer's first instruction.
     *
     * Dependence indices (dep/memDep/extra deps) are interpreted per
     * `local_deps`:
     *  - false: indices are global positions (a persistent stream,
     *    or a window built from a trace slice with absolute
     *    producer indices);
     *  - true: indices are local to `s` (a transform-emitted window
     *    whose producers all live in the same window).
     */
    void runWindow(TimingScratch &ts, const MStream &s,
                   std::size_t b, std::size_t e,
                   bool local_deps) const;

    /** Close the run and collect its result. */
    PipelineResult finish(TimingScratch &ts) const;

    /** One-shot: time a whole stream through caller scratch. */
    PipelineResult run(const MStream &stream, TimingScratch &ts,
                       bool keep_per_inst = false) const;

    /**
     * One-shot convenience over a thread-local scratch. Safe under
     * the thread pool (each worker gets its own scratch); not
     * reentrant within one thread.
     */
    PipelineResult run(const MStream &stream,
                       bool keep_per_inst = false) const;

    const PipelineConfig &config() const { return cfg_; }

  private:
    PipelineConfig cfg_;
};

} // namespace prism

#endif // PRISM_UARCH_PIPELINE_MODEL_HH
