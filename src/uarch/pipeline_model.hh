/**
 * @file
 * The µDG timing model: a streaming longest-path computation over the
 * implicit dependence graph of an MInst stream (see udg.hh).
 *
 * Core-context instructions traverse Fetch/Dispatch/Execute/Complete/
 * Commit nodes with edges for fetch/dispatch/commit width, frontend
 * depth, ROB occupancy, issue-window occupancy, data dependences,
 * store-to-load forwarding, FU and cache-port contention, and branch
 * mispredict redirect — the paper's Figure 4 edge set. Accelerator-
 * context operations traverse Execute/Complete with dataflow issue,
 * operand-window, memory-port and writeback-bus constraints. Region
 * boundaries serialize via MInst::startRegion.
 */

#ifndef PRISM_UARCH_PIPELINE_MODEL_HH
#define PRISM_UARCH_PIPELINE_MODEL_HH

#include <vector>

#include "uarch/core_config.hh"
#include "uarch/udg.hh"

namespace prism
{

/** Full machine configuration for a timing run. */
struct PipelineConfig
{
    CoreConfig core = coreConfig(CoreKind::OOO2);
    AccelParams cgra = dpCgraParams();
    AccelParams nsdf = nsdfParams();
    AccelParams tracep = tracepParams();

    /** Latency thresholds classifying a load as L2 / DRAM access. */
    unsigned l1HitLatency = 4;
    unsigned l2HitLatency = 26;
};

/**
 * Which dependence-graph edge class determined an instruction's
 * issue time — the per-node critical-path attribution the paper's
 * Appendix A recommends inspecting ("examining which edges are on
 * the critical path for some code region").
 */
enum class BindKind : std::uint8_t
{
    Frontend,  ///< fetch/dispatch pipeline (width, redirect, depth)
    DataDep,   ///< register data dependence
    MemDep,    ///< store-to-load dependence
    Transform, ///< transform-added edge (pipelining, control, comm)
    InOrder,   ///< in-order issue constraint (IO cores)
    FuBusy,    ///< FU / cache-port contention
    Window,    ///< issue-window or accelerator operand storage
    Issue,     ///< accelerator issue-width contention
    Region,    ///< region-boundary serialization
    NumKinds,
};

/** Display name of a BindKind. */
const char *bindKindName(BindKind k);

/** Tally of binding constraints over a run. */
struct BindProfile
{
    std::array<std::uint64_t, static_cast<std::size_t>(
                                  BindKind::NumKinds)>
        counts{};

    /** Fraction of instructions bound by `k`. */
    double fraction(BindKind k) const;

    /** Total instructions profiled. */
    std::uint64_t total() const;
};

/** Output of a timing run. */
struct PipelineResult
{
    Cycle cycles = 0;            ///< total execution time
    EventCounts events;

    /** What bound each instruction's issue (always collected). */
    BindProfile binding;

    /** Per-instruction completion times (if requested). */
    std::vector<Cycle> completeAt;
    /** Per-instruction commit times (if requested). */
    std::vector<Cycle> commitAt;

    /** Instructions per cycle over the stream. */
    double ipc(std::size_t num_insts) const
    {
        return cycles ? static_cast<double>(num_insts) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

/**
 * Runs the longest-path timing computation. Stateless between run()
 * calls; one instance may be reused.
 */
class PipelineModel
{
  public:
    explicit PipelineModel(const PipelineConfig &cfg) : cfg_(cfg) {}

    /**
     * Time an instruction stream.
     * @param keep_per_inst retain per-instruction complete/commit
     *        times in the result (needed for region attribution).
     */
    PipelineResult run(const MStream &stream,
                       bool keep_per_inst = false) const;

    const PipelineConfig &config() const { return cfg_; }

  private:
    PipelineConfig cfg_;
};

} // namespace prism

#endif // PRISM_UARCH_PIPELINE_MODEL_HH
