/**
 * @file
 * General-purpose core configurations (paper Table 4) and accelerator
 * hardware parameters. The common memory system: 2-way 32KiB I$ and
 * 64KiB L1D$ (4-cycle), 8-way 2MB L2$ (22-cycle hit).
 */

#ifndef PRISM_UARCH_CORE_CONFIG_HH
#define PRISM_UARCH_CORE_CONFIG_HH

#include <array>
#include <cstdint>
#include <string>

#include "isa/isa.hh"

namespace prism
{

/** Identifiers for the cores studied in the paper. */
enum class CoreKind { IO2, OOO1, OOO2, OOO4, OOO6, OOO8 };

/** All core kinds in Table 4 order (plus the validation-only ones). */
constexpr std::array<CoreKind, 6> kAllCoreKinds = {
    CoreKind::IO2, CoreKind::OOO1, CoreKind::OOO2,
    CoreKind::OOO4, CoreKind::OOO6, CoreKind::OOO8};

/** The four cores of the design-space exploration (Table 4). */
constexpr std::array<CoreKind, 4> kTable4Cores = {
    CoreKind::IO2, CoreKind::OOO2, CoreKind::OOO4, CoreKind::OOO6};

/** Microarchitectural parameters of a general-purpose core. */
struct CoreConfig
{
    std::string name;
    bool inorder = false;
    unsigned width = 2;            ///< fetch/dispatch/issue/WB width
    unsigned robSize = 64;         ///< 0 for in-order
    unsigned instWindow = 32;      ///< scheduler entries (OOO)
    unsigned dcachePorts = 1;
    unsigned numAlu = 2;
    unsigned numMulDiv = 1;
    unsigned numFp = 1;
    unsigned frontendDepth = 5;    ///< fetch-to-dispatch stages
    unsigned mispredictPenalty = 8;///< redirect bubble beyond resolve
    unsigned simdLanes = 4;        ///< 256-bit SIMD over 64-bit lanes

    /** Capacity of the Table 4 FU pool. */
    unsigned fuCount(FuPool pool) const;
};

/** The configuration for a core kind (Table 4 parameters). */
const CoreConfig &coreConfig(CoreKind kind);

/** Parse "IO2"/"OOO2"/... (fatal on unknown). */
CoreKind coreKindFromName(const std::string &name);

/**
 * A point in the parametric general-core space: every knob a timing
 * run reads, by value, with no name attached. The six fixed
 * CoreKinds are just six points of this space (coreParams()); the
 * design-space search (tdg/search.hh) generates arbitrary others.
 * Cache latencies ride along because the timing engine and the
 * baseline energy attribution both consume them.
 */
struct CoreParams
{
    bool inorder = false;
    unsigned width = 2;         ///< fetch/dispatch/issue/WB width
    unsigned robSize = 64;      ///< 0 for in-order
    unsigned instWindow = 32;   ///< scheduler entries (OOO)
    unsigned dcachePorts = 1;
    unsigned numAlu = 2;
    unsigned numMulDiv = 1;
    unsigned numFp = 1;
    unsigned frontendDepth = 5; ///< mispredict penalty = depth + 4
    unsigned simdLanes = 4;
    unsigned l1HitLatency = 4;
    unsigned l2HitLatency = 26;

    bool operator==(const CoreParams &) const = default;
};

/** The parameters of a fixed core kind (Table 4 values). */
CoreParams coreParams(CoreKind kind);

/**
 * Materialize a CoreConfig from parameters. The name is synthesized
 * deterministically from the values (e.g. "ooo4.r128q48.p2a3m1f2.d6"),
 * so two equal parameter sets always render identically; cache keys
 * never consult the name.
 */
CoreConfig coreConfigFrom(const CoreParams &p);

/** The synthesized name coreConfigFrom() would assign. */
std::string coreParamsName(const CoreParams &p);

/** Hardware parameters of an offload/accelerator engine. */
struct AccelParams
{
    unsigned issueWidth = 4;   ///< ops beginning execution per cycle
    unsigned window = 64;      ///< operand storage / in-flight ops
    unsigned memPorts = 1;     ///< own cache interface ports
    unsigned wbBusWidth = 2;   ///< results written back per cycle
    unsigned configCycles = 64;///< cost to (re)configure
};

/** DP-CGRA: 64 FUs, vector interface, config cache (paper 3.1). */
AccelParams dpCgraParams();
/** NS-DF: SEED-like distributed dataflow, 256 compound insts. */
AccelParams nsdfParams();
/** Trace-P: BERET-like trace processor with dataflow issue. */
AccelParams tracepParams();

} // namespace prism

#endif // PRISM_UARCH_CORE_CONFIG_HH
