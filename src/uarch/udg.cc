#include "uarch/udg.hh"

#include <sstream>
#include <string>

#include "common/logging.hh"

namespace prism
{

MInst
MInst::core(Opcode op_)
{
    MInst mi;
    mi.op = op_;
    const OpInfo &oi = opInfo(op_);
    mi.fu = oi.fu;
    mi.lat = oi.latency;
    mi.isLoad = oi.isLoad;
    mi.isStore = oi.isStore;
    mi.isCondBranch = oi.isCondBranch;
    return mi;
}

EventCounts &
EventCounts::operator+=(const EventCounts &o)
{
    coreFetches += o.coreFetches;
    coreDispatches += o.coreDispatches;
    coreIssues += o.coreIssues;
    coreCommits += o.coreCommits;
    coreRegReads += o.coreRegReads;
    coreRegWrites += o.coreRegWrites;
    for (std::size_t u = 0; u < kNumExecUnits; ++u) {
        for (std::size_t p = 0; p < 4; ++p)
            fuOps[u][p] += o.fuOps[u][p];
        unitInsts[u] += o.unitInsts[u];
    }
    loads += o.loads;
    stores += o.stores;
    l2Accesses += o.l2Accesses;
    memAccesses += o.memAccesses;
    branches += o.branches;
    mispredicts += o.mispredicts;
    accelConfigs += o.accelConfigs;
    accelComms += o.accelComms;
    dfSwitches += o.dfSwitches;
    cfuOps += o.cfuOps;
    accelWbBusXfers += o.accelWbBusXfers;
    storeBufWrites += o.storeBufWrites;
    return *this;
}

std::vector<std::string>
checkStream(const MStream &stream)
{
    std::vector<std::string> errs;
    auto err = [&errs](std::size_t i, const char *msg) {
        std::ostringstream os;
        os << "inst " << i << ": " << msg;
        errs.push_back(os.str());
    };
    for (std::size_t i = 0; i < stream.size(); ++i) {
        const MInst &mi = stream[i];
        for (std::int64_t d : mi.dep) {
            if (d >= static_cast<std::int64_t>(i))
                err(i, "forward register dependence");
        }
        if (mi.memDep >= static_cast<std::int64_t>(i))
            err(i, "forward memory dependence");
        for (const ExtraDep &xd : stream.extraDeps(i)) {
            if (xd.idx >= static_cast<std::int64_t>(i))
                err(i, "forward extra dependence");
        }
        if (mi.isLoad && mi.memLat == 0)
            err(i, "load without memory latency");
        if (mi.isLoad && mi.isStore)
            err(i, "instruction both load and store");
    }
    return errs;
}


} // namespace prism
