/**
 * @file
 * Reusable scratch state for the streaming µDG timing engine.
 *
 * The paper's Section 2.4 observes that µDG timing only ever needs a
 * bounded window of history — node times further back than the ROB /
 * issue-window / fetch-width horizon can never be read again by a
 * structural edge, and data edges always point backwards. The
 * TimingScratch here is the materialization of that argument: ring
 * buffers for the bounded-horizon node times, cycle-indexed resource
 * tables, reusable sorted rings for the out-of-order occupancy
 * thresholds, and a reusable transform-output window. A caller owns one scratch
 * and reuses it across any number of runs; after the first run at a
 * given problem size the steady-state timing loop performs no heap
 * allocation at all.
 *
 * Contents are engine-internal working state: callers should treat a
 * scratch as opaque apart from cycles()/commitAt() (read-only results
 * while a streaming run is in flight) and window (the reusable
 * transform output buffer).
 */

#ifndef PRISM_UARCH_TIMING_SCRATCH_HH
#define PRISM_UARCH_TIMING_SCRATCH_HH

#include <array>
#include <cstdint>
#include <vector>

#include "uarch/core_config.hh"
#include "uarch/resource_table.hh"
#include "uarch/udg.hh"

namespace prism
{

/**
 * Which dependence-graph edge class determined an instruction's
 * issue time — the per-node critical-path attribution the paper's
 * Appendix A recommends inspecting ("examining which edges are on
 * the critical path for some code region").
 */
enum class BindKind : std::uint8_t
{
    Frontend,  ///< fetch/dispatch pipeline (width, redirect, depth)
    DataDep,   ///< register data dependence
    MemDep,    ///< store-to-load dependence
    Transform, ///< transform-added edge (pipelining, control, comm)
    InOrder,   ///< in-order issue constraint (IO cores)
    FuBusy,    ///< FU / cache-port contention
    Window,    ///< issue-window or accelerator operand storage
    Issue,     ///< accelerator issue-width contention
    Region,    ///< region-boundary serialization
    NumKinds,
};

/** Display name of a BindKind. */
const char *bindKindName(BindKind k);

/** Tally of binding constraints over a run. */
struct BindProfile
{
    std::array<std::uint64_t, static_cast<std::size_t>(
                                  BindKind::NumKinds)>
        counts{};

    /** Fraction of instructions bound by `k`. */
    double fraction(BindKind k) const;

    /** Total instructions profiled. */
    std::uint64_t total() const;

    bool operator==(const BindProfile &) const = default;
};

/**
 * Min-multiset of the k largest values pushed so far, over a
 * reusable buffer. Models out-of-order occupancy release: with k
 * entries of storage, a new entrant waits for the k-th largest
 * outstanding time.
 *
 * Implemented as a sorted ring (ascending from the head, minimum at
 * the head) rather than a heap. pushBounded() runs once per
 * instruction in the timing hot loop, and issue times arrive
 * near-monotonically — a new time is usually at or near the maximum
 * of the window. Eviction is then head advance plus an
 * insertion-sort step from the tail that almost always terminates
 * after zero or one moves, where any heap pays a full O(log k)
 * sift with a data-dependent branch per level (measured ~2-3x
 * slower on representative streams).
 */
class TopKTimes
{
  public:
    void
    clear()
    {
        head_ = 0;
        n_ = 0;
    }

    std::size_t size() const { return n_; }
    Cycle top() const { return buf_[head_ & mask_]; }

    /**
     * Bounded insert: keep the k largest of everything pushed.
     * Equivalent to a push followed by dropping the minimum once
     * size exceeds k. `k` must not change between clear() calls.
     */
    void
    pushBounded(Cycle c, std::size_t k)
    {
        if (n_ < k) {
            if (n_ == 0)
                ensure(k);
            Cycle *const b = buf_.data();
            std::size_t j = head_ + n_;
            while (j > head_ && b[(j - 1) & mask_] > c) {
                b[j & mask_] = b[(j - 1) & mask_];
                --j;
            }
            b[j & mask_] = c;
            ++n_;
            return;
        }
        if (n_ == 0 || c <= buf_[head_ & mask_])
            return;
        ++head_; // evict the minimum
        Cycle *const b = buf_.data();
        std::size_t j = head_ + n_ - 1;
        while (j > head_ && b[(j - 1) & mask_] > c) {
            b[j & mask_] = b[(j - 1) & mask_];
            --j;
        }
        b[j & mask_] = c;
    }

  private:
    void
    ensure(std::size_t k)
    {
        std::size_t cap = 8;
        while (cap < k)
            cap <<= 1;
        if (buf_.size() < cap)
            buf_.resize(cap);
        mask_ = buf_.size() - 1;
        head_ = 0;
    }

    std::vector<Cycle> buf_;
    std::size_t mask_ = 0;
    std::size_t head_ = 0; ///< monotonically advancing ring index
    std::size_t n_ = 0;
};

/**
 * All working state of one streaming timing run. Reusable: call
 * PipelineModel::beginRun() to (re)arm it for a configuration, feed
 * windows through runWindow(), read the result with finish(). All
 * buffers retain capacity across runs, so steady-state reuse is
 * allocation-free.
 */
struct TimingScratch
{
    // ---- carried frontier (reset by beginRun) ----
    Cycle lastFetch = 0;
    Cycle pendingFetchMin = 0;   ///< mispredict redirect floor
    bool fetchGroupBroken = false; ///< prev core inst taken branch
    Cycle lastCoreCommit = 0;
    Cycle lastCoreExecute = 0;   ///< for in-order issue
    Cycle regionMaxP = 0;        ///< max completion over all insts
    Cycle totalCycles = 0;
    std::size_t pos = 0;         ///< global positions consumed
    std::size_t coreCount = 0;   ///< core-context insts seen
    bool keepPerInst = false;

    // ---- node-time storage ----
    /**
     * Complete (P) and commit (C) times by global position. Data
     * dependences may reach arbitrarily far back and commit times
     * seed region attribution, so these two are full arrays; they
     * grow monotonically and keep capacity across runs. Fetch,
     * dispatch, and commit times are only ever read at bounded
     * distance (fetch width / ROB size) over *core* instructions, so
     * they also live in rings keyed by core-inst ordinal — direct
     * loads, no indirection through global positions.
     */
    std::vector<Cycle> completeAtBuf;
    std::vector<Cycle> commitAtBuf;
    std::vector<Cycle> ringF;
    std::vector<Cycle> ringD;
    std::vector<Cycle> ringC;
    std::size_t ringMask = 0;

    /** Issue-window (scheduler) occupancy threshold. */
    TopKTimes iq;

    // ---- structural resources ----
    ResourceTable fuAlu{0};
    ResourceTable fuMulDiv{0};
    ResourceTable fuFp{0};
    ResourceTable dports{0};

    struct AccelScratch
    {
        AccelParams params;
        ResourceTable issue{0};
        ResourceTable memPorts{0};
        ResourceTable wbBus{0};
        TopKTimes windowTop; ///< operand-storage occupancy
    };

    AccelScratch cgra;
    AccelScratch nsdf;
    AccelScratch tracep;

    // ---- accumulated outputs ----
    EventCounts events;
    BindProfile binding;

    /**
     * Reusable transform-output window: callers clear() it, emit one
     * loop occurrence into it, and feed it to runWindow() — without
     * ever materializing the whole rewritten stream.
     */
    MStream window;

    // ---- read-only views while a run is in flight ----

    /** Total cycles over everything fed so far. */
    Cycle cycles() const { return totalCycles; }

    /** Commit time of the instruction at global position `gp`. */
    Cycle
    commitAt(std::size_t gp) const
    {
        return commitAtBuf[gp];
    }
};

} // namespace prism

#endif // PRISM_UARCH_TIMING_SCRATCH_HH
