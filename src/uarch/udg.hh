/**
 * @file
 * The microarchitectural dependence graph (µDG) instruction stream.
 *
 * A modeled execution is a sequence of MInst records. Each MInst
 * expands to pipeline-stage nodes (Fetch/Dispatch/Execute/Complete/
 * Commit for core-context instructions; Execute/Complete for
 * dataflow-context accelerator operations), and its fields encode the
 * incoming dependence edges: data dependences, memory dependences,
 * transform-added edges (extra deps), and region-serialization bounds.
 * The pipeline model (pipeline_model.hh) performs the longest-path
 * timing computation over this implicit graph, honoring structural
 * edges (width, ROB, issue window, FU/port/bus contention) from the
 * core/accelerator configuration.
 *
 * TDG transforms rewrite streams of MInsts: eliding nodes, changing
 * opcodes/latencies, and adding or removing edges — the graph
 * re-writing of the paper's Figure 4.
 *
 * Storage discipline: an MStream is two contiguous arrays — the
 * instruction records and a shared spill pool for the rare extra
 * dependence edges that exceed an MInst's fixed inline slots. There is
 * no per-instruction heap allocation, dependence indices are 32-bit,
 * and a cleared stream retains its capacity, so transform windows can
 * be rebuilt allocation-free in steady state (the paper's Section 2.4
 * windowed-processing argument).
 */

#ifndef PRISM_UARCH_UDG_HH
#define PRISM_UARCH_UDG_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "isa/isa.hh"

namespace prism
{

/** Which execution engine an instruction runs on. */
enum class ExecUnit : std::uint8_t
{
    Core,   ///< general-purpose pipeline (includes SIMD vector insts)
    Cgra,   ///< DP-CGRA fabric op (runs concurrently with the core)
    Nsdf,   ///< non-speculative dataflow op
    Tracep, ///< trace-processor op
};

/** Number of ExecUnit values (for fixed-size tallies). */
inline constexpr std::size_t kNumExecUnits = 4;

/**
 * An extra dependence edge added by a transform. `idx` is the
 * producer's stream index; 32 bits bound streams to 2^31 instructions
 * (asserted by MStream::push_back), which keeps an MInst compact.
 */
struct ExtraDep
{
    std::int32_t idx = -1;  ///< producer index within the stream
    std::uint16_t lat = 0;  ///< edge latency in cycles
};

/** Inline extra-dep slots per MInst before spilling to the stream. */
inline constexpr unsigned kInlineExtraDeps = 2;

/** Sentinel for "no spill chain". */
inline constexpr std::uint32_t kNoSpill = 0xFFFFFFFFu;

/** One modeled (possibly transformed) instruction. */
struct MInst
{
    Opcode op = Opcode::Nop;
    ExecUnit unit = ExecUnit::Core;
    FuClass fu = FuClass::IntAlu;
    std::uint8_t lat = 1;        ///< execute latency (non-memory)
    std::uint16_t memLat = 0;    ///< dynamic load latency
    std::uint8_t lanes = 1;      ///< vector lanes (energy/FU accounting)

    bool isLoad = false;
    bool isStore = false;
    bool isCondBranch = false;
    bool mispredicted = false;

    /**
     * Any taken control transfer (conditional taken, jump, call,
     * return): ends the fetch group — cores cannot fetch across a
     * taken branch in one cycle.
     */
    bool takenBranch = false;

    /**
     * Serialize against everything earlier: execution may not begin
     * until all prior instructions complete. Set by transforms at
     * offload-region entry/exit (the paper's "fully switch between a
     * core and accelerator model").
     */
    bool startRegion = false;

    /** Total transform-added edges (inline slots + spill chain). */
    std::uint16_t numExtraDeps = 0;

    /** Producing stream indices for register sources (-1 = none). */
    std::array<std::int32_t, 3> dep = {-1, -1, -1};

    /** Producing store's stream index for loads (-1 = none). */
    std::int32_t memDep = -1;

    /** Inline storage for the first transform-added edges. */
    std::array<ExtraDep, kInlineExtraDeps> inlineDeps{};

    /** Head of this instruction's spill chain (kNoSpill = none). */
    std::uint32_t spillHead = kNoSpill;

    /** Originating static instruction (kNoStatic for synthetic). */
    StaticId sid = kNoStatic;

    /** Convenience: construct a core-context instruction. */
    static MInst core(Opcode op);
};

/**
 * A modeled instruction stream (one window or one whole run): a
 * contiguous MInst array plus the shared spill pool for extra
 * dependence edges beyond an instruction's inline slots.
 *
 * The vector-like subset (push_back/size/operator[]/iteration/
 * reserve/clear) mirrors std::vector<MInst>; clear() keeps both
 * arrays' capacity so a stream can serve as a reusable transform
 * output window.
 */
class MStream
{
  public:
    /** A spilled extra dep plus the next chain link. */
    struct SpillNode
    {
        ExtraDep dep;
        std::uint32_t next = kNoSpill;
    };

    MStream() = default;

    bool empty() const { return insts_.empty(); }
    std::size_t size() const { return insts_.size(); }
    void reserve(std::size_t n) { insts_.reserve(n); }

    /** Drop all instructions and spill edges, keeping capacity. */
    void
    clear()
    {
        insts_.clear();
        spill_.clear();
    }

    MInst &operator[](std::size_t i) { return insts_[i]; }
    const MInst &operator[](std::size_t i) const { return insts_[i]; }
    MInst &back() { return insts_.back(); }
    const MInst &back() const { return insts_.back(); }

    void
    push_back(MInst mi)
    {
        prism_assert(insts_.size() <
                         static_cast<std::size_t>(INT32_MAX),
                     "stream exceeds 2^31 instructions");
        insts_.push_back(mi);
    }

    auto begin() { return insts_.begin(); }
    auto end() { return insts_.end(); }
    auto begin() const { return insts_.begin(); }
    auto end() const { return insts_.end(); }

    const std::vector<MInst> &insts() const { return insts_; }

    /**
     * Attach a transform-added dependence edge to instruction `at`.
     * The first kInlineExtraDeps edges store inline; later ones go to
     * the shared spill pool. Edges may be attached to any already
     * pushed instruction (transforms patch earlier CFUs).
     */
    void
    addExtraDep(std::size_t at, std::int64_t producer,
                std::uint16_t lat)
    {
        prism_assert(at < insts_.size(), "extra dep on absent inst");
        MInst &mi = insts_[at];
        const auto idx = static_cast<std::int32_t>(producer);
        if (mi.numExtraDeps < kInlineExtraDeps) {
            mi.inlineDeps[mi.numExtraDeps] = {idx, lat};
            ++mi.numExtraDeps;
            return;
        }
        prism_assert(spill_.size() < kNoSpill, "spill pool overflow");
        const auto node = static_cast<std::uint32_t>(spill_.size());
        spill_.push_back({{idx, lat}, kNoSpill});
        if (mi.spillHead == kNoSpill) {
            mi.spillHead = node;
        } else {
            std::uint32_t tail = mi.spillHead;
            while (spill_[tail].next != kNoSpill)
                tail = spill_[tail].next;
            spill_[tail].next = node;
        }
        ++mi.numExtraDeps;
    }

    /** Forward-iterable view over one instruction's extra deps. */
    class ExtraDepRange
    {
      public:
        class iterator
        {
          public:
            iterator(const MInst *mi, const SpillNode *pool,
                     unsigned k, std::uint32_t node)
                : mi_(mi), pool_(pool), k_(k), node_(node)
            {
            }

            const ExtraDep &
            operator*() const
            {
                if (k_ < kInlineExtraDeps)
                    return mi_->inlineDeps[k_];
                return pool_[node_].dep;
            }

            iterator &
            operator++()
            {
                if (k_ < kInlineExtraDeps) {
                    ++k_;
                    if (k_ == kInlineExtraDeps &&
                        k_ < mi_->numExtraDeps) {
                        node_ = mi_->spillHead;
                    }
                } else {
                    node_ = pool_[node_].next;
                }
                ++count_;
                return *this;
            }

            bool
            operator!=(const iterator &) const
            {
                return count_ < std::min<unsigned>(
                                    mi_->numExtraDeps, limit());
            }

          private:
            unsigned
            limit() const
            {
                return mi_->numExtraDeps;
            }

            const MInst *mi_;
            const SpillNode *pool_;
            unsigned k_;
            std::uint32_t node_;
            unsigned count_ = 0;
        };

        ExtraDepRange(const MInst *mi, const SpillNode *pool)
            : mi_(mi), pool_(pool)
        {
        }

        iterator begin() const { return {mi_, pool_, 0, kNoSpill}; }
        iterator end() const { return {mi_, pool_, 0, kNoSpill}; }
        bool empty() const { return mi_->numExtraDeps == 0; }
        std::size_t size() const { return mi_->numExtraDeps; }

      private:
        const MInst *mi_;
        const SpillNode *pool_;
    };

    /** Extra deps of instruction `i` (inline slots, then spill). */
    ExtraDepRange
    extraDeps(std::size_t i) const
    {
        return {&insts_[i], spill_.data()};
    }

    /** Spill pool accessor for hot loops that inline the walk. */
    const SpillNode *spillPool() const { return spill_.data(); }

    /** Number of spill nodes (bounds for verifying chain links). */
    std::size_t spillSize() const { return spill_.size(); }

  private:
    std::vector<MInst> insts_;
    std::vector<SpillNode> spill_;
};

/**
 * Energy-relevant event tallies accumulated by the pipeline model;
 * consumed by the McPAT-like energy model.
 */
struct EventCounts
{
    // Core front-end / back-end
    std::uint64_t coreFetches = 0;
    std::uint64_t coreDispatches = 0;   ///< rename+ROB+IQ writes
    std::uint64_t coreIssues = 0;
    std::uint64_t coreCommits = 0;
    std::uint64_t coreRegReads = 0;
    std::uint64_t coreRegWrites = 0;

    // Functional-unit work, by pool, attributed per execution unit.
    std::array<std::array<std::uint64_t, 4>, kNumExecUnits> fuOps{};

    // Memory
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t l2Accesses = 0;        ///< approximated from latency
    std::uint64_t memAccesses = 0;       ///< DRAM accesses (approx.)

    // Control
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;

    // Accelerator-specific
    std::uint64_t accelConfigs = 0;
    std::uint64_t accelComms = 0;        ///< send/recv transfers
    std::uint64_t dfSwitches = 0;
    std::uint64_t cfuOps = 0;
    std::uint64_t accelWbBusXfers = 0;
    std::uint64_t storeBufWrites = 0;    ///< Trace-P versioned stores

    // Per-unit instruction counts (cycle attribution uses these too).
    std::array<std::uint64_t, kNumExecUnits> unitInsts{};

    /** Element-wise accumulate. */
    EventCounts &operator+=(const EventCounts &o);

    bool operator==(const EventCounts &) const = default;
};

/** Tally of FU-pool index for an FuClass (0..3). Inline: consulted
 *  once per instruction by the timing hot loop's event tallies. */
inline std::size_t
fuPoolIndex(FuClass c)
{
    switch (fuPoolOf(c)) {
      case FuPool::Alu: return 0;
      case FuPool::MulDiv: return 1;
      case FuPool::Fp: return 2;
      case FuPool::MemPort: return 3;
      case FuPool::None: return 0; // counted nowhere meaningful
    }
    return 0;
}

/**
 * Structural validation of a stream: all dependence indices must
 * point strictly backwards and loads must carry a latency. Returns
 * human-readable violations (empty = valid). Transform outputs are
 * checked with this in tests.
 */
std::vector<std::string> checkStream(const MStream &stream);

} // namespace prism

#endif // PRISM_UARCH_UDG_HH
