/**
 * @file
 * The microarchitectural dependence graph (µDG) instruction stream.
 *
 * A modeled execution is a sequence of MInst records. Each MInst
 * expands to pipeline-stage nodes (Fetch/Dispatch/Execute/Complete/
 * Commit for core-context instructions; Execute/Complete for
 * dataflow-context accelerator operations), and its fields encode the
 * incoming dependence edges: data dependences, memory dependences,
 * transform-added edges (extraDeps), and region-serialization bounds.
 * The pipeline model (pipeline_model.hh) performs the longest-path
 * timing computation over this implicit graph, honoring structural
 * edges (width, ROB, issue window, FU/port/bus contention) from the
 * core/accelerator configuration.
 *
 * TDG transforms rewrite streams of MInsts: eliding nodes, changing
 * opcodes/latencies, and adding or removing edges — the graph
 * re-writing of the paper's Figure 4.
 */

#ifndef PRISM_UARCH_UDG_HH
#define PRISM_UARCH_UDG_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/isa.hh"

namespace prism
{

/** Which execution engine an instruction runs on. */
enum class ExecUnit : std::uint8_t
{
    Core,   ///< general-purpose pipeline (includes SIMD vector insts)
    Cgra,   ///< DP-CGRA fabric op (runs concurrently with the core)
    Nsdf,   ///< non-speculative dataflow op
    Tracep, ///< trace-processor op
};

/** Number of ExecUnit values (for fixed-size tallies). */
inline constexpr std::size_t kNumExecUnits = 4;

/** An extra dependence edge added by a transform. */
struct ExtraDep
{
    std::int64_t idx = -1;  ///< producer index within the stream
    std::uint16_t lat = 0;  ///< edge latency in cycles
};

/** One modeled (possibly transformed) instruction. */
struct MInst
{
    Opcode op = Opcode::Nop;
    ExecUnit unit = ExecUnit::Core;
    FuClass fu = FuClass::IntAlu;
    std::uint8_t lat = 1;        ///< execute latency (non-memory)
    std::uint16_t memLat = 0;    ///< dynamic load latency
    std::uint8_t lanes = 1;      ///< vector lanes (energy/FU accounting)

    bool isLoad = false;
    bool isStore = false;
    bool isCondBranch = false;
    bool mispredicted = false;

    /**
     * Any taken control transfer (conditional taken, jump, call,
     * return): ends the fetch group — cores cannot fetch across a
     * taken branch in one cycle.
     */
    bool takenBranch = false;

    /**
     * Serialize against everything earlier: execution may not begin
     * until all prior instructions complete. Set by transforms at
     * offload-region entry/exit (the paper's "fully switch between a
     * core and accelerator model").
     */
    bool startRegion = false;

    /** Producing stream indices for register sources (-1 = none). */
    std::array<std::int64_t, 3> dep = {-1, -1, -1};

    /** Producing store's stream index for loads (-1 = none). */
    std::int64_t memDep = -1;

    /** Transform-added edges (pipelining, communication, ...). */
    std::vector<ExtraDep> extraDeps;

    /** Originating static instruction (kNoStatic for synthetic). */
    StaticId sid = kNoStatic;

    /** Convenience: construct a core-context instruction. */
    static MInst core(Opcode op);
};

/** A modeled instruction stream (one window or one whole run). */
using MStream = std::vector<MInst>;

/**
 * Energy-relevant event tallies accumulated by the pipeline model;
 * consumed by the McPAT-like energy model.
 */
struct EventCounts
{
    // Core front-end / back-end
    std::uint64_t coreFetches = 0;
    std::uint64_t coreDispatches = 0;   ///< rename+ROB+IQ writes
    std::uint64_t coreIssues = 0;
    std::uint64_t coreCommits = 0;
    std::uint64_t coreRegReads = 0;
    std::uint64_t coreRegWrites = 0;

    // Functional-unit work, by pool, attributed per execution unit.
    std::array<std::array<std::uint64_t, 4>, kNumExecUnits> fuOps{};

    // Memory
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t l2Accesses = 0;        ///< approximated from latency
    std::uint64_t memAccesses = 0;       ///< DRAM accesses (approx.)

    // Control
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;

    // Accelerator-specific
    std::uint64_t accelConfigs = 0;
    std::uint64_t accelComms = 0;        ///< send/recv transfers
    std::uint64_t dfSwitches = 0;
    std::uint64_t cfuOps = 0;
    std::uint64_t accelWbBusXfers = 0;
    std::uint64_t storeBufWrites = 0;    ///< Trace-P versioned stores

    // Per-unit instruction counts (cycle attribution uses these too).
    std::array<std::uint64_t, kNumExecUnits> unitInsts{};

    /** Element-wise accumulate. */
    EventCounts &operator+=(const EventCounts &o);
};

/** Tally of FU-pool index for an FuClass (0..3). */
std::size_t fuPoolIndex(FuClass c);

/**
 * Structural validation of a stream: all dependence indices must
 * point strictly backwards and loads must carry a latency. Returns
 * human-readable violations (empty = valid). Transform outputs are
 * checked with this in tests.
 */
std::vector<std::string> checkStream(const MStream &stream);

} // namespace prism

#endif // PRISM_UARCH_UDG_HH
