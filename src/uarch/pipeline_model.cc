#include "uarch/pipeline_model.hh"

#include <algorithm>

#include "common/logging.hh"
#include "uarch/resource_table.hh"

namespace prism
{

PipelineConfig
pipelineConfigFrom(const CoreParams &p)
{
    PipelineConfig cfg;
    cfg.core = coreConfigFrom(p);
    cfg.l1HitLatency = p.l1HitLatency;
    cfg.l2HitLatency = p.l2HitLatency;
    return cfg;
}

const char *
bindKindName(BindKind k)
{
    switch (k) {
      case BindKind::Frontend: return "frontend";
      case BindKind::DataDep: return "data-dep";
      case BindKind::MemDep: return "mem-dep";
      case BindKind::Transform: return "transform-edge";
      case BindKind::InOrder: return "in-order";
      case BindKind::FuBusy: return "fu/port";
      case BindKind::Window: return "window/rob";
      case BindKind::Issue: return "accel-issue";
      case BindKind::Region: return "region";
      case BindKind::NumKinds: break;
    }
    panic("bad bind kind");
}

double
BindProfile::fraction(BindKind k) const
{
    const std::uint64_t t = total();
    return t ? static_cast<double>(
                   counts[static_cast<std::size_t>(k)]) /
                   static_cast<double>(t)
             : 0.0;
}

std::uint64_t
BindProfile::total() const
{
    std::uint64_t t = 0;
    for (std::uint64_t c : counts)
        t += c;
    return t;
}

void
PipelineModel::beginRun(TimingScratch &ts, bool keep_per_inst) const
{
    const CoreConfig &core = cfg_.core;

    ts.lastFetch = 0;
    ts.pendingFetchMin = 0;
    ts.fetchGroupBroken = false;
    ts.lastCoreCommit = 0;
    ts.lastCoreExecute = 0;
    ts.regionMaxP = 0;
    ts.totalCycles = 0;
    ts.pos = 0;
    ts.coreCount = 0;
    ts.keepPerInst = keep_per_inst;
    ts.events = EventCounts{};
    ts.binding = BindProfile{};

    // History rings must reach the deepest bounded-horizon lookup
    // (fetch width and ROB size, both over core-inst ordinals).
    const std::size_t hist =
        std::max<std::size_t>({core.width, core.robSize,
                               core.instWindow, 8}) + 1;
    std::size_t cap = 1;
    while (cap < hist)
        cap <<= 1;
    if (ts.ringF.size() < cap) {
        ts.ringF.resize(cap);
        ts.ringD.resize(cap);
        ts.ringC.resize(cap);
    }
    ts.ringMask = cap - 1;

    ts.iq.clear();
    ts.fuAlu.reinit(core.numAlu);
    ts.fuMulDiv.reinit(core.numMulDiv);
    ts.fuFp.reinit(core.numFp);
    ts.dports.reinit(core.dcachePorts);

    auto arm = [](TimingScratch::AccelScratch &a,
                  const AccelParams &p) {
        a.params = p;
        a.issue.reinit(p.issueWidth);
        a.memPorts.reinit(p.memPorts);
        a.wbBus.reinit(p.wbBusWidth);
        a.windowTop.clear();
    };
    arm(ts.cgra, cfg_.cgra);
    arm(ts.nsdf, cfg_.nsdf);
    arm(ts.tracep, cfg_.tracep);
}

void
PipelineModel::runWindow(TimingScratch &ts, const MStream &s,
                         std::size_t b, std::size_t e,
                         bool local_deps) const
{
    if (b >= e)
        return;
    prism_assert(b <= ts.pos, "window behind the run frontier");

    const CoreConfig &core = cfg_.core;

    // Global position of s[i] is posBase + i (see header contract).
    const std::size_t posBase = ts.pos - b;
    const std::size_t need = posBase + e;
    if (ts.completeAtBuf.size() < need) {
        ts.completeAtBuf.resize(need);
        ts.commitAtBuf.resize(need);
    }
    Cycle *const P = ts.completeAtBuf.data();
    Cycle *const C = ts.commitAtBuf.data();

    // The frontier scalars, event tallies, and bind counters are all
    // 64-bit members of `ts`, so stores through P/C (same value type)
    // could alias them as far as the compiler can prove — which would
    // force every member back to memory each iteration. Working on
    // address-never-escapes locals and flushing once at the end keeps
    // them in registers across the loop.
    Cycle lastFetch = ts.lastFetch;
    Cycle pendingFetchMin = ts.pendingFetchMin;
    bool fetchGroupBroken = ts.fetchGroupBroken;
    Cycle lastCoreCommit = ts.lastCoreCommit;
    Cycle lastCoreExecute = ts.lastCoreExecute;
    Cycle regionMaxP = ts.regionMaxP;
    Cycle totalCycles = ts.totalCycles;
    std::size_t coreCount = ts.coreCount;

    Cycle *const ringF = ts.ringF.data();
    Cycle *const ringD = ts.ringD.data();
    Cycle *const ringC = ts.ringC.data();
    const std::size_t ringMask = ts.ringMask;

    const bool inorder = core.inorder;
    const unsigned width = core.width;
    const unsigned robSize = core.robSize;
    const unsigned instWindow = core.instWindow;
    const unsigned frontendDepth = core.frontendDepth;
    const unsigned mispredictPenalty = core.mispredictPenalty;
    const unsigned l1Hit = cfg_.l1HitLatency;
    const unsigned l2Hit = cfg_.l2HitLatency;

    // Deps in a window are either window-local or global positions;
    // translating is one add against a per-window base.
    const std::size_t depBase = local_deps ? posBase : 0;

    EventCounts ev;
    std::uint64_t coreInsts = 0; ///< batches 5 per-inst event adds
    std::array<std::uint64_t,
               static_cast<std::size_t>(BindKind::NumKinds)>
        bindc{};

    auto fu_table = [&ts](FuClass c) -> ResourceTable & {
        switch (fuPoolOf(c)) {
          case FuPool::MulDiv: return ts.fuMulDiv;
          case FuPool::Fp: return ts.fuFp;
          case FuPool::MemPort: return ts.dports;
          default: return ts.fuAlu;
        }
    };
    auto accel_of =
        [&ts](ExecUnit u) -> TimingScratch::AccelScratch & {
        switch (u) {
          case ExecUnit::Cgra: return ts.cgra;
          case ExecUnit::Nsdf: return ts.nsdf;
          case ExecUnit::Tracep: return ts.tracep;
          default: panic("not an accelerator unit");
        }
    };

    for (std::size_t i = b; i < e; ++i) {
        const MInst &mi = s[i];
        const std::size_t gp = posBase + i;

        // Gather data-dependence readiness, tracking which edge
        // class is the latest (the critical incoming edge).
        Cycle ready = 0;
        BindKind ready_kind = BindKind::Frontend;
        for (std::int32_t d0 : mi.dep) {
            if (d0 >= 0) {
                const std::size_t d =
                    depBase + static_cast<std::size_t>(d0);
                prism_assert(d < gp, "forward dependence in stream");
                if (P[d] > ready) {
                    ready = P[d];
                    ready_kind = BindKind::DataDep;
                }
            }
        }
        if (mi.memDep >= 0) {
            const std::size_t d =
                depBase + static_cast<std::size_t>(mi.memDep);
            prism_assert(d < gp, "forward memory dependence");
            if (P[d] > ready) {
                ready = P[d];
                ready_kind = BindKind::MemDep;
            }
        }
        if (mi.numExtraDeps != 0) {
            for (const ExtraDep &xd : s.extraDeps(i)) {
                if (xd.idx >= 0) {
                    const std::size_t d =
                        depBase + static_cast<std::size_t>(xd.idx);
                    prism_assert(d < gp, "forward extra dependence");
                    if (P[d] + xd.lat > ready) {
                        ready = P[d] + xd.lat;
                        ready_kind = BindKind::Transform;
                    }
                }
            }
        }
        BindKind bind = BindKind::Frontend;

        const Cycle region_bound = mi.startRegion ? regionMaxP : 0;

        if (mi.unit == ExecUnit::Core) {
            // ---- Fetch ----
            Cycle f = std::max({lastFetch, pendingFetchMin,
                                region_bound});
            if (fetchGroupBroken)
                f = std::max(f, lastFetch + 1);
            if (coreCount >= width) {
                const std::size_t ord = coreCount - width;
                f = std::max(f, ringF[ord & ringMask] + 1);
            }
            lastFetch = f;
            pendingFetchMin = 0;
            fetchGroupBroken = mi.takenBranch;

            // ---- Dispatch ----
            Cycle d = f + frontendDepth;
            if (coreCount >= width) {
                const std::size_t ord = coreCount - width;
                d = std::max(d, ringD[ord & ringMask] + 1);
            }
            bool d_window_bound = false;
            if (!inorder) {
                if (coreCount >= robSize) {
                    const std::size_t ord = coreCount - robSize;
                    const Cycle cb = ringC[ord & ringMask];
                    if (cb + 1 > d) {
                        d = cb + 1;
                        d_window_bound = true;
                    }
                }
                if (ts.iq.size() >= instWindow &&
                    ts.iq.top() > d) {
                    d = ts.iq.top();
                    d_window_bound = true;
                }
            }

            // ---- Execute (issue) ----
            Cycle ex = d;
            if (d_window_bound)
                bind = BindKind::Window;
            if (mi.startRegion)
                bind = BindKind::Region;
            if (ready > ex) {
                ex = ready;
                bind = ready_kind;
            }
            if (inorder && lastCoreExecute > ex) {
                ex = lastCoreExecute;
                bind = BindKind::InOrder;
            }
            if (mi.fu != FuClass::None) {
                const Cycle got = fu_table(mi.fu).acquire(ex);
                if (got > ex)
                    bind = BindKind::FuBusy;
                ex = got;
            }
            ++bindc[static_cast<std::size_t>(bind)];
            lastCoreExecute = std::max(lastCoreExecute, ex);
            if (!inorder)
                ts.iq.pushBounded(ex, instWindow);

            // ---- Complete ----
            const Cycle lat = mi.isLoad ? mi.memLat : mi.lat;
            const Cycle p = ex + std::max<Cycle>(lat, 1);
            P[gp] = p;

            // ---- Commit ----
            Cycle c = std::max(p, lastCoreCommit);
            if (coreCount >= width) {
                const std::size_t ord = coreCount - width;
                c = std::max(c, ringC[ord & ringMask] + 1);
            }
            C[gp] = c;
            lastCoreCommit = c;

            if (mi.isCondBranch && mi.mispredicted) {
                pendingFetchMin =
                    std::max(pendingFetchMin,
                             p + mispredictPenalty);
            }

            const std::size_t slot = coreCount & ringMask;
            ringF[slot] = f;
            ringD[slot] = d;
            ringC[slot] = c;
            ++coreCount;

            // ---- Events ----
            ++coreInsts; // fetch/dispatch/issue/commit, one each
            const OpInfo &oi = opInfo(mi.op);
            ev.coreRegReads += oi.numSrcs;
            if (oi.writesDst)
                ++ev.coreRegWrites;
            if (mi.fu != FuClass::None) {
                ev.fuOps[static_cast<std::size_t>(ExecUnit::Core)]
                        [fuPoolIndex(mi.fu)] += mi.lanes;
            }
        } else {
            // ---- Accelerator dataflow op ----
            TimingScratch::AccelScratch &acc = accel_of(mi.unit);
            BindKind abind = ready_kind;
            Cycle ex = ready;
            if (region_bound > ex) {
                ex = region_bound;
                abind = BindKind::Region;
            }
            if (acc.windowTop.size() >= acc.params.window &&
                acc.windowTop.top() > ex) {
                ex = acc.windowTop.top();
                abind = BindKind::Window;
            }
            {
                const Cycle got = acc.issue.acquire(ex);
                if (got > ex)
                    abind = BindKind::Issue;
                ex = got;
            }
            if ((mi.isLoad || mi.isStore) &&
                acc.params.memPorts > 0) {
                const Cycle got = acc.memPorts.acquire(ex);
                if (got > ex)
                    abind = BindKind::FuBusy;
                ex = got;
            }
            ++bindc[static_cast<std::size_t>(abind)];

            const Cycle lat = mi.isLoad ? mi.memLat : mi.lat;
            Cycle p = ex + std::max<Cycle>(lat, 1);
            const OpInfo &oi = opInfo(mi.op);
            if (oi.writesDst && acc.params.wbBusWidth > 0) {
                p = acc.wbBus.acquire(p);
                ++ev.accelWbBusXfers;
            }
            P[gp] = p;
            C[gp] = p;
            acc.windowTop.pushBounded(p, acc.params.window);

            // ---- Events ----
            if (mi.fu != FuClass::None) {
                ev.fuOps[static_cast<std::size_t>(mi.unit)]
                        [fuPoolIndex(mi.fu)] += mi.lanes;
            }
            ++ev.unitInsts[static_cast<std::size_t>(mi.unit)];
            if (mi.op == Opcode::CfuOp)
                ++ev.cfuOps;
            if (mi.op == Opcode::DfSwitch)
                ++ev.dfSwitches;
            if (mi.isStore && mi.unit == ExecUnit::Tracep)
                ++ev.storeBufWrites;
        }

        // Shared event classes.
        switch (mi.op) {
          case Opcode::AccelCfg: ++ev.accelConfigs; break;
          case Opcode::AccelSend:
          case Opcode::AccelRecv: ++ev.accelComms; break;
          default: break;
        }
        if (mi.isLoad) {
            ++ev.loads;
            if (mi.memLat > l1Hit)
                ++ev.l2Accesses;
            if (mi.memLat > l1Hit + l2Hit)
                ++ev.memAccesses;
        }
        if (mi.isStore)
            ++ev.stores;
        if (mi.isCondBranch) {
            ++ev.branches;
            if (mi.mispredicted)
                ++ev.mispredicts;
        }

        regionMaxP = std::max(regionMaxP, P[gp]);
        totalCycles = std::max(totalCycles, C[gp]);
    }

    ts.lastFetch = lastFetch;
    ts.pendingFetchMin = pendingFetchMin;
    ts.fetchGroupBroken = fetchGroupBroken;
    ts.lastCoreCommit = lastCoreCommit;
    ts.lastCoreExecute = lastCoreExecute;
    ts.regionMaxP = regionMaxP;
    ts.totalCycles = totalCycles;
    ts.coreCount = coreCount;
    ev.coreFetches += coreInsts;
    ev.coreDispatches += coreInsts;
    ev.coreIssues += coreInsts;
    ev.coreCommits += coreInsts;
    ev.unitInsts[static_cast<std::size_t>(ExecUnit::Core)] +=
        coreInsts;
    ts.events += ev;
    for (std::size_t k = 0; k < bindc.size(); ++k)
        ts.binding.counts[k] += bindc[k];

    ts.pos = posBase + e;
}

PipelineResult
PipelineModel::finish(TimingScratch &ts) const
{
    PipelineResult res;
    res.cycles = ts.totalCycles;
    res.events = ts.events;
    res.binding = ts.binding;
    if (ts.keepPerInst) {
        res.completeAt.assign(ts.completeAtBuf.begin(),
                              ts.completeAtBuf.begin() +
                                  static_cast<std::ptrdiff_t>(ts.pos));
        res.commitAt.assign(ts.commitAtBuf.begin(),
                            ts.commitAtBuf.begin() +
                                static_cast<std::ptrdiff_t>(ts.pos));
    }
    return res;
}

PipelineResult
PipelineModel::run(const MStream &stream, TimingScratch &ts,
                   bool keep_per_inst) const
{
    beginRun(ts, keep_per_inst);
    runWindow(ts, stream, 0, stream.size(), false);
    return finish(ts);
}

PipelineResult
PipelineModel::run(const MStream &stream, bool keep_per_inst) const
{
    // One scratch per thread: safe under the thread pool's
    // parallelFor (each worker thread reuses its own buffers), and
    // the engine never calls back into user code mid-run, so no
    // reentrancy hazard.
    static thread_local TimingScratch scratch;
    return run(stream, scratch, keep_per_inst);
}

} // namespace prism
